// Distributed campaign scaling: the wall-clock price of the lease
// queue, 1 worker against 4 draining the same plan. Cell cost is
// dominated by an injected provisioning latency (a driver whose
// Provision sleeps, standing in for a hosted VM round-trip), so the
// measured ratio is queue coordination — claims, barriers, polls —
// not local CPU parallelism, and holds on a single-core runner.
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/swrepo"
	"repro/internal/valtest"
)

// benchCellLatency is the injected per-cell provisioning latency. Large
// against the queue's per-cell overhead (a CAS claim, a few polls, a
// few ms of suite CPU), small enough that the benchmark stays in CI
// budget: 12 cells serial is ~1s, 4 workers ~250ms.
const benchCellLatency = 80 * time.Millisecond

// slowHostDriver wraps the in-process platform driver with a fixed
// provisioning delay — the shape of a driver that round-trips to a
// remote VM host before any test can run.
type slowHostDriver struct {
	inner valtest.Driver
	delay time.Duration
}

func (d *slowHostDriver) Name() string { return "bench-host" }

func (d *slowHostDriver) Provision(req valtest.ProvisionRequest) (*valtest.Context, error) {
	time.Sleep(d.delay)
	return d.inner.Provision(req)
}

func (d *slowHostDriver) RunTest(t valtest.Test, ctx *valtest.Context) valtest.Result {
	return d.inner.RunTest(t, ctx)
}

func (d *slowHostDriver) Collect(ctx *valtest.Context, res valtest.Result) valtest.Result {
	return d.inner.Collect(ctx, res)
}

// benchDefs returns three tiny experiment definitions: enough suite
// structure to exercise the real execution path, small enough that CPU
// time per cell is negligible next to the injected latency.
func benchDefs() []experiments.Definition {
	var defs []experiments.Definition
	for i, name := range []string{"BX1", "BX2", "BX3"} {
		spec := swrepo.DefaultSpec(name)
		spec.Packages = 10
		spec.MinUnits, spec.MaxUnits = 1, 2
		defs = append(defs, experiments.Definition{
			Name:            name,
			Level:           experiments.Level3,
			Seed:            uint64(9000 + i),
			RepoSpec:        spec,
			Chains:          1,
			ChainEvents:     20,
			StandaloneTests: 2,
		})
	}
	return defs
}

// benchWorker is one worker of the distributed drain: its own system
// (own repos, own plan) over the shared store, exactly the topology of
// an spd -worker process minus the HTTP hop.
type benchWorker struct {
	eng  *campaign.Engine
	plan *campaign.Plan
}

// setupDistributed builds a fresh shared store and n independent
// workers, each with the bench experiments and the slow-host driver
// registered, each holding its own deterministic plan of the same 12
// validate cells (3 experiments × 4 paper configurations).
func setupDistributed(b *testing.B, n int) (*storage.Store, []benchWorker) {
	b.Helper()
	store := storage.NewStore()
	workers := make([]benchWorker, n)
	for i := range workers {
		sys := core.NewWith(store, platform.NewRegistry())
		for _, def := range benchDefs() {
			if err := sys.RegisterExperiment(def); err != nil {
				b.Fatal(err)
			}
		}
		sys.RegisterDriver(&slowHostDriver{
			inner: &valtest.PlatformDriver{Builder: sys.Builder},
			delay: benchCellLatency,
		})
		exts, err := experiments.StandardSet(sys.Catalogue)
		if err != nil {
			b.Fatal(err)
		}
		var cells []campaign.Cell
		for _, cfg := range platform.PaperConfigs()[:4] {
			for _, exp := range sys.Experiments() {
				cells = append(cells, campaign.Cell{
					Experiment: exp, Config: cfg, Externals: exts,
					Mode: campaign.ModeValidate, Tag: "bench", Driver: "bench-host",
				})
			}
		}
		eng := campaign.New(sys, 1)
		plan, err := eng.Plan(cells)
		if err != nil {
			b.Fatal(err)
		}
		if plan.RunCount() != len(cells) {
			b.Fatalf("fresh store plans %d of %d cells", plan.RunCount(), len(cells))
		}
		workers[i] = benchWorker{eng: eng, plan: plan}
	}
	return store, workers
}

// drainDistributed races every worker through its plan concurrently
// and asserts each stale cell executed exactly once across the fleet.
func drainDistributed(b *testing.B, workers []benchWorker) {
	b.Helper()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		executed int
		firstErr error
	)
	total := workers[0].plan.RunCount()
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w benchWorker) {
			defer wg.Done()
			opts := campaign.QueueOptions{
				Worker: fmt.Sprintf("bench-w%d", i),
				TTL:    2 * time.Second,
				Poll:   time.Millisecond,
			}
			_, stats, err := w.eng.DrainPlan(context.Background(), w.plan, opts)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			} else if err == nil {
				executed += stats.Executed
			}
		}(i, w)
	}
	wg.Wait()
	if firstErr != nil {
		b.Fatal(firstErr)
	}
	if executed != total {
		b.Fatalf("fleet executed %d cells, want exactly %d", executed, total)
	}
}

// BenchmarkDistributedCampaign drains the same 12-cell plan with 1
// worker and with 4 concurrent workers sharing a store, and reports
// the wall-clock ratio as the "speedup" metric (acceptance: ≥3× at 4
// workers). Setup (repo generation, suite builds, planning) happens
// off the clock; only the drain is timed.
func BenchmarkDistributedCampaign(b *testing.B) {
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			// The single-worker baseline for the speedup metric,
			// measured off the clock so each arm reports against the
			// same yardstick.
			_, solo := setupDistributed(b, 1)
			baseStart := nowMono()
			drainDistributed(b, solo)
			baseDur := nowMono() - baseStart

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				_, fleet := setupDistributed(b, n)
				b.StartTimer()
				drainDistributed(b, fleet)
			}
			perOp := b.Elapsed() / time.Duration(b.N)
			if perOp > 0 {
				b.ReportMetric(float64(baseDur)/float64(perOp), "speedup")
			}
		})
	}
}
