// Serving-tier load benchmarks: what one spserve process costs per
// request over an archive-scale store, and what the render cache and
// position-keyed conditional serving buy. BenchmarkServeHot prices the
// three steady states the serving tier distinguishes — a full render
// (cache disabled), a render-cache hit, and an If-None-Match 304 — and
// reports the cached and 304 variants' speedup over the uncached render
// path as a vs-uncached metric (the acceptance bar is ≥ 5× on the
// 100k-run store). The load/* sub-benchmarks drive the same handler
// through a real HTTP server with concurrent clients and report
// requests per second.
package repro

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/storage"
)

func BenchmarkServeHot(b *testing.B) {
	const n = 100000
	dir := synthStore(b, n)
	view, err := storage.OpenReadOnly(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer view.Close()

	// Two servers over the same view: cold renders every request (the
	// pre-cache behavior), hot is the production configuration. A long
	// refresh interval keeps both benches pricing the serving path, not
	// the journal re-tail.
	cold, err := serve.NewWith(view, serve.Options{Title: "bench", RefreshEvery: time.Hour, CacheEntries: -1})
	if err != nil {
		b.Fatal(err)
	}
	hot, err := serve.NewWith(view, serve.Options{Title: "bench", RefreshEvery: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	coldH, hotH := cold.Handler(), hot.Handler()

	do := func(h http.Handler, path, inm string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	routes := []struct{ name, path string }{
		{"matrix-html", "/"},
		{"matrix-json", "/api/v1/matrix"},
		{"runs-json", "/api/v1/runs?limit=2000"},
	}
	for _, rt := range routes {
		// The uncached per-op duration anchors the vs-uncached ratios the
		// cached and 304 variants report.
		var uncachedPerOp time.Duration
		b.Run(rt.name+"/uncached", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if w := do(coldH, rt.path, ""); w.Code != 200 {
					b.Fatalf("GET %s = %d", rt.path, w.Code)
				}
			}
			uncachedPerOp = b.Elapsed() / time.Duration(b.N)
		})

		b.Run(rt.name+"/cached", func(b *testing.B) {
			if w := do(hotH, rt.path, ""); w.Code != 200 { // warm the cache
				b.Fatalf("warmup GET %s = %d", rt.path, w.Code)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if w := do(hotH, rt.path, ""); w.Code != 200 {
					b.Fatalf("GET %s = %d", rt.path, w.Code)
				}
			}
			b.StopTimer()
			if perOp := b.Elapsed() / time.Duration(b.N); perOp > 0 && uncachedPerOp > 0 {
				b.ReportMetric(float64(uncachedPerOp)/float64(perOp), "vs-uncached")
			}
		})

		b.Run(rt.name+"/304", func(b *testing.B) {
			etag := do(hotH, rt.path, "").Header().Get("ETag")
			if etag == "" {
				b.Fatalf("GET %s carries no ETag", rt.path)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if w := do(hotH, rt.path, etag); w.Code != http.StatusNotModified {
					b.Fatalf("conditional GET %s = %d, want 304", rt.path, w.Code)
				}
			}
			b.StopTimer()
			if perOp := b.Elapsed() / time.Duration(b.N); perOp > 0 && uncachedPerOp > 0 {
				b.ReportMetric(float64(uncachedPerOp)/float64(perOp), "vs-uncached")
			}
		})
	}

	// The load driver: concurrent clients over a real listener, the
	// shape a fleet of polling dashboards puts on one spserve.
	ts := httptest.NewServer(hotH)
	defer ts.Close()
	client := ts.Client()
	fetch := func(path, inm string) (int, error) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			return 0, err
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck — drained for keep-alive reuse
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	code, err := fetch("/", "")
	if err != nil || code != 200 {
		b.Fatalf("load warmup = %d, %v", code, err)
	}
	etag := do(hotH, "/", "").Header().Get("ETag")

	loads := []struct {
		name, inm string
		want      int
	}{
		{"load/cached", "", 200},
		{"load/304", etag, http.StatusNotModified},
	}
	for _, ld := range loads {
		b.Run(ld.name, func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					code, err := fetch("/", ld.inm)
					if err != nil {
						b.Fatal(err)
					}
					if code != ld.want {
						b.Fatalf("GET / = %d, want %d", code, ld.want)
					}
				}
			})
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "req/s")
			}
		})
	}
}
