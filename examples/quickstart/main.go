// Quickstart: stand up an sp-system, register an experiment, run one
// validation pass on the reference platform and print the run report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/swrepo"
)

func main() {
	// The framework: platform catalogue, external software catalogue,
	// common storage, simulated clock — all wired by core.New.
	sys := core.New()

	// A small experiment: 15 packages, one full analysis chain and a
	// handful of standalone tests (H1-scale workloads live in
	// experiments.H1()).
	spec := swrepo.DefaultSpec("demo")
	spec.Packages = 15
	def := experiments.Definition{
		Name:            "DEMO",
		Level:           experiments.Level4,
		Seed:            42,
		RepoSpec:        spec,
		Chains:          1,
		ChainEvents:     1000,
		StandaloneTests: 12,
	}
	if err := sys.RegisterExperiment(def); err != nil {
		log.Fatal(err)
	}

	// The externals installed in the image: ROOT 5.34 + CERNLIB + MCGen.
	exts, err := experiments.StandardSet(sys.Catalogue)
	if err != nil {
		log.Fatal(err)
	}

	// One validation run on the reference platform: builds all packages,
	// runs compile tests, the chain (MC generation → simulation →
	// reconstruction → DST/ODS/HAT → analysis → validation) and the
	// standalone tests, and records everything under a unique run ID.
	rec, err := sys.Validate("DEMO", platform.ReferenceConfig(), exts, "quickstart baseline")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.TextRun(rec))
	fmt.Printf("\nrun passed: %t — all inputs and outputs kept on the common storage under %q\n",
		rec.Passed(), rec.RunID)
}
