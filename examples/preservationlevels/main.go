// preservationlevels walks through all four DPHEP preservation levels of
// the paper's Table 1 on one sp-system instance: archiving and searching
// documentation (level 1), exporting simplified outreach formats
// (level 2), and running the technical validation that keeps levels 3
// and 4 alive.
//
//	go run ./examples/preservationlevels
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/docsys"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/swrepo"
)

func main() {
	fmt.Println("Table 1 — DPHEP preservation levels:")
	for _, row := range experiments.Table1() {
		fmt.Printf("  level %d: %s\n           use case: %s\n", row.Level, row.Model, row.UseCase)
	}
	fmt.Println()

	sys := core.New()
	spec := swrepo.DefaultSpec("h1")
	spec.Packages = 15
	def := experiments.Definition{
		Name: "H1", Level: experiments.Level4, Seed: 5,
		RepoSpec: spec, Chains: 1, ChainEvents: 2000, StandaloneTests: 8,
	}
	if err := sys.RegisterExperiment(def); err != nil {
		log.Fatal(err)
	}

	// --- Level 1: documentation ---------------------------------------
	docs := []struct {
		cat             docsys.Category
		title, abstract string
		year            int
	}{
		{docsys.CatPublication, "Inclusive DIS cross sections at HERA", "neutral current measurements with the full H1 data set", 2012},
		{docsys.CatThesis, "Search for excited leptons", "limits on compositeness scales", 2010},
		{docsys.CatManual, "H1 reconstruction software guide", "building and running h1reco", 2008},
	}
	for _, d := range docs {
		if _, err := sys.Docs.Add("H1", d.cat, d.title, d.abstract, d.year, []byte("(archived body)")); err != nil {
			log.Fatal(err)
		}
	}
	hits, err := sys.Docs.Search("H1", "cross sections")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("level 1: %d documents archived; search 'cross sections' -> %d hit(s):\n",
		sys.Docs.Count(), len(hits))
	for _, h := range hits {
		fmt.Printf("  [%s] %s (%d)\n", h.ID, h.Title, h.Year)
	}

	// --- Levels 3/4: the validated analysis chain ----------------------
	exts, err := experiments.StandardSet(sys.Catalogue)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := sys.Validate("H1", platform.OriginalConfig(), exts, "level 4 validation")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlevels 3/4: validation run %s passed=%t (%d jobs; full chain from MC generation)\n",
		rec.RunID, rec.Passed(), len(rec.Jobs))

	// --- Level 2: simplified formats from the validated chain ----------
	csvKey, jsonKey, err := sys.ExportLevel2("H1", rec.RunID, "chain01")
	if err != nil {
		log.Fatal(err)
	}
	csvData, err := sys.Store.Get("level2", csvKey)
	if err != nil {
		log.Fatal(err)
	}
	lines := strings.SplitN(string(csvData), "\n", 4)
	fmt.Printf("\nlevel 2: exported %s and %s\n", csvKey, jsonKey)
	fmt.Println("  CSV preview (readable without any experiment software):")
	for _, line := range lines[:3] {
		fmt.Printf("    %s\n", line)
	}
	sums, err := docsys.ImportCSV(csvData)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d events available for outreach and training analyses\n", len(sums))
}
