// migration reproduces the paper's SL6/64-bit migration story: the
// experiment's software validates cleanly on its home platform, fails
// on the migration target — including a silent physics-level failure
// from a long-standing bug that only data validation can catch — and
// the adapt-and-validate loop diagnoses, fixes and revalidates it.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/swrepo"
)

func main() {
	sys := core.New()

	// A repository with HERA-era hazards: legacy idioms (K&R C) that new
	// compilers reject, and latent defects (uninitialized reads,
	// 64-bit-unsafe casts) that silently change physics on new platforms.
	spec := swrepo.DefaultSpec("h1")
	spec.Packages = 25
	spec.LegacyFraction = 0.5
	spec.DefectRate = 0.08
	def := experiments.Definition{
		Name:            "H1",
		Level:           experiments.Level4,
		Seed:            77,
		RepoSpec:        spec,
		Chains:          1,
		ChainEvents:     1500,
		StandaloneTests: 20,
	}
	if err := sys.RegisterExperiment(def); err != nil {
		log.Fatal(err)
	}
	exts, err := experiments.StandardSet(sys.Catalogue)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 — baseline on the home platform (SL5/32bit gcc4.1, where
	// the latent 64-bit defects are still dormant).
	baseline, err := sys.Validate("H1", platform.OriginalConfig(), exts, "baseline capture")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline %s on %s: passed=%t (%d jobs)\n",
		baseline.RunID, baseline.Config, baseline.Passed(), len(baseline.Jobs))

	// Step 2 — raw attempt on the migration target, no fixes.
	sl6 := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
	attempt, err := sys.Validate("H1", sl6, exts, "raw SL6 attempt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw attempt %s on %s: passed=%t\n\n", attempt.RunID, attempt.Config, attempt.Passed())

	// Step 3 — the paper's prescribed examination: diff against the last
	// successful run, attribute the regressions.
	diff, attr, err := sys.Diagnose(attempt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.TextDiff(diff))
	fmt.Printf("\n=> intervention by: %s\n\n", attr.Responsible())

	// Step 4 — adapt and validate: the migration campaign applies the
	// interventions and reruns until green.
	rep, err := sys.MigrateExperiment("H1", sl6, exts, "SL6/64bit migration")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign converged=%t in %d iterations, %d interventions\n",
		rep.Succeeded, len(rep.Iterations), rep.TotalInterventions())
	for _, it := range rep.Iterations {
		fmt.Printf("  %s: passed=%t interventions=%d\n", it.RunID, it.Passed, len(it.Interventions))
		for i, iv := range it.Interventions {
			if i == 4 {
				fmt.Printf("    ... and %d more\n", len(it.Interventions)-4)
				break
			}
			fmt.Printf("    %s — %s\n", iv.Patch.ID, iv.Reason)
		}
	}

	// Step 5 — the validated recipe, deployable on any production
	// resource ("an institute cluster, grid, cloud, sky, quantum
	// computer, and so on").
	if !rep.Succeeded {
		return
	}
	fmt.Println()
	fmt.Print(rep.Recipe())

	// Step 6 — a production site certifies the deployment: rebuild the
	// environment from the recipe and re-run the full validation.
	im, cert, err := sys.DeployRecipe("H1", rep.Recipe())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeployment certified: image %s (%s), run %s passed=%t\n",
		im.ID, im.Label(), cert.RunID, cert.Passed())
}
