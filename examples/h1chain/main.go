// h1chain runs the full H1-style level-4 analysis chain by hand — MC
// generation, detector simulation, reconstruction, multi-level file
// production (GEN → SIM → DST → ODS → HAT) and physics analysis — and
// renders the resulting distributions, showing what the chain stages of
// the validation suite actually exercise.
//
//	go run ./examples/h1chain
package main

import (
	"fmt"
	"log"

	"repro/internal/hepfile"
	"repro/internal/hepsim"
)

func main() {
	const events = 20000

	// MC generation: a 30 GeV resonance over soft background.
	gen, err := hepsim.NewGenerator(hepsim.DefaultGenConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	genEvents := gen.GenerateN(events)
	genFile, err := hepfile.WriteEvents(hepfile.GEN, genEvents)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GEN : %d events, %d bytes\n", len(genEvents), len(genFile))

	// Detector simulation (no platform effects: the reference config).
	det := hepsim.DefaultDetector(8)
	simEvents, err := det.SimulateAll(genEvents, hepsim.Effects{})
	if err != nil {
		log.Fatal(err)
	}
	simFile, err := hepfile.WriteEvents(hepfile.SIM, simEvents)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SIM : %d events, %d bytes\n", len(simEvents), len(simFile))

	// Reconstruction to DST.
	recs, err := hepsim.ReconstructAll(simEvents, hepsim.Effects{})
	if err != nil {
		log.Fatal(err)
	}
	dstFile, err := hepfile.WriteReco(hepfile.DST, recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DST : %d events, %d bytes\n", len(recs), len(dstFile))

	// ODS selection: leading pT above 2 GeV, at least two particles.
	var selected []hepsim.RecoEvent
	for _, r := range recs {
		if r.LeadPt >= 2 && r.Multiplicity >= 2 {
			selected = append(selected, r)
		}
	}
	odsFile, err := hepfile.WriteReco(hepfile.ODS, selected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ODS : %d events selected, %d bytes\n", len(selected), len(odsFile))

	// HAT ntuple.
	sums := make([]hepsim.Summary, len(selected))
	for i, r := range selected {
		sums[i] = hepsim.Summarize(r)
	}
	hatFile, err := hepfile.WriteSummaries(sums)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HAT : %d summaries, %d bytes\n\n", len(sums), len(hatFile))

	// Physics analysis: the distributions validation compares.
	res := hepsim.Analyze(sums, gen.Config().ResonanceMass)
	fmt.Println(res.Mass.Render(50))
	fmt.Printf("mass peak: mean=%.2f GeV stddev=%.2f GeV over %d entries\n",
		res.Mass.Mean(), res.Mass.StdDev(), res.Mass.Entries())

	// Integrity: every file level carries a CRC; corrupting one byte is
	// detected at read time.
	bad := make([]byte, len(hatFile))
	copy(bad, hatFile)
	bad[len(bad)/2] ^= 0xFF
	if _, err := hepfile.ReadSummaries(bad); err != nil {
		fmt.Printf("\ncorrupted HAT file rejected as expected: %v\n", err)
	}
}
