// freezevsmigrate compares the two preservation strategies of the
// paper's §2 over a simulated 2013–2028 horizon: freezing the last
// working environment versus actively migrating and validating. Real
// migration campaigns run at every platform release; the frozen stack
// decays once its OS leaves vendor support.
//
//	go run ./examples/freezevsmigrate
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lifetime"
	"repro/internal/swrepo"
)

func main() {
	reg := lifetime.ExtendedRegistry()
	sys := core.NewWithRegistry(reg)

	spec := swrepo.DefaultSpec("h1")
	spec.Packages = 15
	spec.LegacyFraction = 0.4
	spec.DefectRate = 0.05
	def := experiments.Definition{
		Name:            "H1",
		Level:           experiments.Level4,
		Seed:            13,
		RepoSpec:        spec,
		Chains:          1,
		ChainEvents:     500,
		StandaloneTests: 10,
	}
	if err := sys.RegisterExperiment(def); err != nil {
		log.Fatal(err)
	}
	exts, err := experiments.StandardSet(sys.Catalogue)
	if err != nil {
		log.Fatal(err)
	}

	params := lifetime.DefaultParams(exts)
	params.End = time.Date(2028, 1, 1, 0, 0, 0, 0, time.UTC)

	planner, err := sys.Planner("H1")
	if err != nil {
		log.Fatal(err)
	}
	frozen, migrated, err := lifetime.Compare(params, reg, planner)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("year   freeze               migrate")
	for i := range frozen.Points {
		f, m := frozen.Points[i], migrated.Points[i]
		fmt.Printf("%d   %-4s %s%-10s   %-4s %s\n",
			f.Year, f.OS, gauge(f.Usability), "", m.OS, gauge(m.Usability))
	}
	fmt.Printf("\nusable years over the horizon: freeze=%.1f, migrate=%.1f\n",
		frozen.UsableYears, migrated.UsableYears)
	fmt.Printf("the migrating stack performed %d migrations costing %d interventions\n",
		migrated.TotalMigrations, migrated.TotalInterventions)
	fmt.Println("\nthe paper's conclusion, quantified: freezing works for the medium")
	fmt.Println("term; adapting and validating substantially extends the lifetime.")
}

func gauge(u float64) string {
	n := int(u*10 + 0.5)
	return fmt.Sprintf("%4.2f %-10s", u, strings.Repeat("#", n))
}
