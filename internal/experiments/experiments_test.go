package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/buildsys"
	"repro/internal/chain"
	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/swrepo"
	"repro/internal/valtest"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table 1 has %d rows, want 4", len(rows))
	}
	if rows[0].Level != Level1 || rows[3].Level != Level4 {
		t.Fatal("levels out of order")
	}
	if !strings.Contains(rows[0].Model, "documentation") {
		t.Errorf("level 1 model = %q", rows[0].Model)
	}
	if !strings.Contains(rows[1].UseCase, "Outreach") {
		t.Errorf("level 2 use case = %q", rows[1].UseCase)
	}
	if !strings.Contains(rows[3].Model, "simulation and reconstruction") {
		t.Errorf("level 4 model = %q", rows[3].Model)
	}
}

func TestAllExperimentsInFigure3Order(t *testing.T) {
	defs := All()
	if len(defs) != 3 {
		t.Fatalf("experiments = %d", len(defs))
	}
	want := []string{"ZEUS", "H1", "HERMES"}
	for i, d := range defs {
		if d.Name != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, d.Name, want[i])
		}
	}
}

func TestH1SizedPerFigure2(t *testing.T) {
	d := H1()
	repo, err := d.BuildRepo()
	if err != nil {
		t.Fatal(err)
	}
	if repo.Len() != 100 {
		t.Fatalf("H1 packages = %d, want ≈100 (Figure 2)", repo.Len())
	}
	suite, err := d.BuildSuite(repo)
	if err != nil {
		t.Fatal(err)
	}
	if suite.Len() != 500 {
		t.Fatalf("H1 suite = %d tests, want 500 (Figure 2: 'up to 500 tests in total')", suite.Len())
	}
	counts := suite.CountByCategory()
	if counts[valtest.CatCompile] != 100 {
		t.Fatalf("compile tests = %d, want 100", counts[valtest.CatCompile])
	}
	if counts[valtest.CatChain] != 14 { // 2 chains × 7 stages
		t.Fatalf("chain tests = %d, want 14", counts[valtest.CatChain])
	}
	if counts[valtest.CatStandalone] != 386 {
		t.Fatalf("standalone tests = %d, want 386", counts[valtest.CatStandalone])
	}
}

func TestExperimentLevels(t *testing.T) {
	if H1().Level != Level4 || ZEUS().Level != Level4 || HERMES().Level != Level3 {
		t.Fatal("preservation levels wrong")
	}
}

func TestLevel4ChainsHaveFullStageWiring(t *testing.T) {
	d := H1()
	repo, _ := d.BuildRepo()
	specs, err := d.ChainSpecs(repo)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("chains = %d", len(specs))
	}
	for _, st := range []chain.Stage{chain.StageGen, chain.StageSim, chain.StageReco, chain.StageAnalysis} {
		if specs[0].StagePackages[st] == "" {
			t.Errorf("level 4 chain missing package for stage %v", st)
		}
	}
}

func TestLevel3ChainsOnlyAnalysisWired(t *testing.T) {
	d := HERMES()
	repo, _ := d.BuildRepo()
	specs, err := d.ChainSpecs(repo)
	if err != nil {
		t.Fatal(err)
	}
	sp := specs[0]
	if sp.StagePackages[chain.StageAnalysis] == "" {
		t.Fatal("level 3 chain missing analysis package")
	}
	if _, ok := sp.StagePackages[chain.StageGen]; ok {
		t.Fatal("level 3 chain should not wire generation packages")
	}
}

func TestSuitesAreDeterministic(t *testing.T) {
	d := ZEUS()
	repoA, _ := d.BuildRepo()
	repoB, _ := d.BuildRepo()
	suiteA, err := d.BuildSuite(repoA)
	if err != nil {
		t.Fatal(err)
	}
	suiteB, err := d.BuildSuite(repoB)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := suiteA.Tests(), suiteB.Tests()
	if len(ta) != len(tb) {
		t.Fatal("suite sizes differ across builds")
	}
	for i := range ta {
		if ta[i].Name() != tb[i].Name() {
			t.Fatalf("test %d name differs: %s vs %s", i, ta[i].Name(), tb[i].Name())
		}
	}
}

func TestPaperExternalSets(t *testing.T) {
	cat := externals.NewCatalogue()
	sets, err := PaperExternalSets(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 5 {
		t.Fatalf("sets = %d, want 5 (ROOT 5.26–5.34)", len(sets))
	}
	for _, s := range sets {
		if s.Len() != 3 {
			t.Fatalf("set %s has %d products, want 3", s, s.Len())
		}
		if _, ok := s.Get(externals.ROOT); !ok {
			t.Fatalf("set %s missing ROOT", s)
		}
	}
}

func TestChainSpecsRequireAnalysisPackage(t *testing.T) {
	d := H1()
	repo := swrepo.NewRepository("H1") // no packages at all
	if _, err := d.ChainSpecs(repo); err == nil {
		t.Fatal("ChainSpecs accepted a repository without analysis packages")
	}
	if _, err := d.BuildSuite(repo); err == nil {
		t.Fatal("BuildSuite accepted an empty repository")
	}
}

func TestBuildRepoRejectsBadSpec(t *testing.T) {
	d := H1()
	d.RepoSpec.Packages = 0
	if _, err := d.BuildRepo(); err == nil {
		t.Fatal("BuildRepo accepted zero packages")
	}
}

func TestZEUSAndHERMESCensus(t *testing.T) {
	for _, tc := range []struct {
		def      Definition
		packages int
		tests    int
	}{
		{ZEUS(), 60, 200},
		{HERMES(), 40, 127},
	} {
		repo, err := tc.def.BuildRepo()
		if err != nil {
			t.Fatal(err)
		}
		if repo.Len() != tc.packages {
			t.Errorf("%s packages = %d, want %d", tc.def.Name, repo.Len(), tc.packages)
		}
		suite, err := tc.def.BuildSuite(repo)
		if err != nil {
			t.Fatal(err)
		}
		if suite.Len() != tc.tests {
			t.Errorf("%s suite = %d tests, want %d", tc.def.Name, suite.Len(), tc.tests)
		}
	}
}

func TestStandaloneTestSkipsWhenPackageBroken(t *testing.T) {
	repo := swrepo.NewRepository("X")
	repo.MustAdd(&swrepo.Package{Name: "p", Units: []*swrepo.SourceUnit{{
		Name: "a.cc", Language: swrepo.LangCxx,
		Traits: []platform.Trait{platform.TraitCxx11}, // cannot build on gcc4.1
		Lines:  100,
	}}})
	test := standaloneTest("X", "standalone/p/t000", "p")

	store := storage.NewStore()
	reg := platform.NewRegistry()
	cat := externals.NewCatalogue()
	exts, _ := StandardSet(cat)
	build, err := buildsys.NewBuilder(reg, store).Build(repo, platform.ReferenceConfig(), exts)
	if err != nil {
		t.Fatal(err)
	}
	res := test.Run(&valtest.Context{
		Store: store, Env: storage.Env{}, Config: platform.ReferenceConfig(),
		Registry: reg, Externals: exts, Repo: repo, Build: build,
	})
	if res.Outcome != valtest.OutcomeSkip {
		t.Fatalf("standalone test on broken package = %v (%s), want skip", res.Outcome, res.Detail)
	}
}

func TestStandaloneTestLifecycle(t *testing.T) {
	// Run one standalone test end to end: first run establishes the
	// reference, an identical rerun passes, a migration with an active
	// bias fails. The package carries the uninitialized-memory defect
	// deterministically, so we build the repository by hand.
	repo := swrepo.NewRepository("X")
	repo.MustAdd(&swrepo.Package{Name: "p", Units: []*swrepo.SourceUnit{{
		Name: "a.cc", Language: swrepo.LangCxx,
		Traits: []platform.Trait{platform.TraitCxx98, platform.TraitUninitMemory},
		Lines:  100,
	}}})
	// The bias hits a deterministic 1-in-16 subset of observable IDs, so
	// run a batch of tests: all must pass on the reference and on an
	// identical rerun, and at least one must fail after the migration.
	var tests []valtest.Test
	for i := 0; i < 50; i++ {
		tests = append(tests, standaloneTest("X", fmt.Sprintf("standalone/p/t%03d", i), "p"))
	}

	store := storage.NewStore()
	reg := platform.NewRegistry()
	cat := externals.NewCatalogue()
	exts, _ := StandardSet(cat)

	mkCtx := func(cfg platform.Config) *valtest.Context {
		build, err := buildsys.NewBuilder(reg, store).Build(repo, cfg, exts)
		if err != nil {
			t.Fatal(err)
		}
		return &valtest.Context{
			Store: store, Env: storage.Env{storage.EnvWorkDir: "w"},
			Config: cfg, Registry: reg, Externals: exts, Repo: repo, Build: build,
		}
	}

	ref := mkCtx(platform.ReferenceConfig())
	for _, test := range tests {
		res := test.Run(ref)
		if res.Outcome != valtest.OutcomePass || !strings.Contains(res.Detail, "reference established") {
			t.Fatalf("first run of %s = %+v", test.Name(), res)
		}
	}
	for _, test := range tests {
		if res := test.Run(ref); res.Outcome != valtest.OutcomePass {
			t.Fatalf("rerun of %s = %+v", test.Name(), res)
		}
	}

	sl6 := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
	mig := mkCtx(sl6)
	failures := 0
	for _, test := range tests {
		res := test.Run(mig)
		switch res.Outcome {
		case valtest.OutcomePass:
		case valtest.OutcomeFail:
			failures++
		default:
			t.Fatalf("migration run of %s = %+v", test.Name(), res)
		}
	}
	if failures == 0 {
		t.Fatal("uninit-memory bias caught by no standalone test across 50 observables")
	}
	if failures == len(tests) {
		t.Fatal("bias hit every observable — subset model broken")
	}
}
