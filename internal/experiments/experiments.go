// Package experiments defines the participating collaborations — H1,
// ZEUS and HERMES, the HERA experiments whose validation campaign the
// paper reports — together with the DPHEP preservation-level taxonomy of
// Table 1.
//
// Each Definition sizes a synthetic software repository and validation
// suite to match the paper's Figure 2: for H1, "the compilation of
// approximately 100 individual H1 software packages" plus validation
// tests "expected to comprise of up to 500 tests in total", split into
// parallel standalone tests and sequential analysis chains.
package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/chain"
	"repro/internal/externals"
	"repro/internal/hepsim"
	"repro/internal/simrand"
	"repro/internal/swrepo"
	"repro/internal/valtest"
)

// Level is a DPHEP preservation level (Table 1).
type Level int

const (
	// Level1 preserves additional documentation.
	Level1 Level = 1
	// Level2 preserves the data in a simplified format.
	Level2 Level = 2
	// Level3 preserves analysis-level software and data format.
	Level3 Level = 3
	// Level4 preserves simulation and reconstruction software and basic
	// level data.
	Level4 Level = 4
)

// LevelInfo is one row of Table 1.
type LevelInfo struct {
	Level   Level
	Model   string
	UseCase string
}

// Table1 returns the DPHEP preservation levels exactly as the paper's
// Table 1 defines them.
func Table1() []LevelInfo {
	return []LevelInfo{
		{Level1, "Provide additional documentation",
			"Publication related info search"},
		{Level2, "Preserve the data in a simplified format",
			"Outreach, simple training analyses"},
		{Level3, "Preserve the analysis level software and data format",
			"Full scientific analyses based on the existing reconstruction"},
		{Level4, "Preserve the simulation and reconstruction software as well as basic level data",
			"Retain the full potential of the experimental data"},
	}
}

// Definition describes one experiment's participation in the sp-system.
type Definition struct {
	// Name is the collaboration, e.g. "H1".
	Name string
	// Level is the preservation level pursued; it determines the suite's
	// scope (level 4 adds full simulation/reconstruction chains).
	Level Level
	// Seed isolates all of the experiment's random streams.
	Seed uint64
	// RepoSpec sizes the synthetic software repository.
	RepoSpec swrepo.GenSpec
	// Chains is the number of full analysis chains in the suite.
	Chains int
	// ChainEvents is the Monte-Carlo statistics per chain.
	ChainEvents int
	// StandaloneTests is the number of standalone executable tests.
	StandaloneTests int
}

// H1 returns the H1 definition: a full level 4 programme sized per
// Figure 2 (≈100 packages, ≈500 tests in total).
func H1() Definition {
	spec := swrepo.DefaultSpec("h1")
	return Definition{
		Name:            "H1",
		Level:           Level4,
		Seed:            101,
		RepoSpec:        spec,
		Chains:          2,
		ChainEvents:     2000,
		StandaloneTests: 386, // 100 compile + 2*7 chain + 386 standalone = 500
	}
}

// ZEUS returns the ZEUS definition (level 4, smaller test census).
func ZEUS() Definition {
	spec := swrepo.DefaultSpec("zeus")
	spec.Packages = 60
	return Definition{
		Name:            "ZEUS",
		Level:           Level4,
		Seed:            202,
		RepoSpec:        spec,
		Chains:          1,
		ChainEvents:     1500,
		StandaloneTests: 133, // 60 + 7 + 133 = 200
	}
}

// HERMES returns the HERMES definition (level 3: analysis-level software
// on the existing reconstruction).
func HERMES() Definition {
	spec := swrepo.DefaultSpec("hermes")
	spec.Packages = 40
	return Definition{
		Name:            "HERMES",
		Level:           Level3,
		Seed:            303,
		RepoSpec:        spec,
		Chains:          1,
		ChainEvents:     1000,
		StandaloneTests: 80,
	}
}

// All returns the three HERA experiments of the paper's campaign, in the
// order of Figure 3 (ZEUS, H1, HERMES top to bottom).
func All() []Definition {
	return []Definition{ZEUS(), H1(), HERMES()}
}

// QuickScale shrinks a definition's workloads for fast demonstration
// runs (the front ends' -quick flag) while preserving the suite
// structure. Every front end must scale through this one helper: the
// suite definition feeds runner.InputDigest, so two processes scaling
// differently would compute different digests over the same store and
// re-validate cells that are in fact up-to-date.
func QuickScale(def Definition) Definition {
	def.RepoSpec.Packages = min(def.RepoSpec.Packages, 20)
	def.ChainEvents = 300
	def.StandaloneTests = min(def.StandaloneTests, 20)
	return def
}

// BuildRepo generates the experiment's software repository.
func (d Definition) BuildRepo() (*swrepo.Repository, error) {
	return swrepo.Generate(d.RepoSpec, simrand.New(d.Seed))
}

// firstOfKind returns the name of the first package of the given kind.
func firstOfKind(repo *swrepo.Repository, kind swrepo.PackageKind) (string, error) {
	for _, p := range repo.Packages() {
		if p.Kind == kind {
			return p.Name, nil
		}
	}
	return "", fmt.Errorf("experiments: repository %s has no %v package", repo.Experiment, kind)
}

// ChainSpecs returns the experiment's analysis-chain specifications,
// wired to concrete packages in the repository. Level 4 experiments run
// the full chain from Monte-Carlo generation; level 3 chains exercise
// only analysis-level code (their upstream stages run framework-provided
// clean code, mirroring "analyses based on the existing
// reconstruction").
func (d Definition) ChainSpecs(repo *swrepo.Repository) ([]chain.Spec, error) {
	anaPkg, err := firstOfKind(repo, swrepo.KindAnalysis)
	if err != nil {
		return nil, err
	}
	var specs []chain.Spec
	for i := 0; i < d.Chains; i++ {
		sp := chain.DefaultSpec(fmt.Sprintf("chain%02d", i+1), d.ChainEvents, d.Seed+uint64(i)*17)
		sp.StagePackages = map[chain.Stage]string{
			chain.StageAnalysis: anaPkg,
		}
		if d.Level >= Level4 {
			genPkg, err := firstOfKind(repo, swrepo.KindGenerator)
			if err != nil {
				return nil, err
			}
			simPkg, err := firstOfKind(repo, swrepo.KindSimulation)
			if err != nil {
				return nil, err
			}
			recoPkg, err := firstOfKind(repo, swrepo.KindReconstruction)
			if err != nil {
				return nil, err
			}
			sp.StagePackages[chain.StageGen] = genPkg
			sp.StagePackages[chain.StageSim] = simPkg
			sp.StagePackages[chain.StageReco] = recoPkg
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// BuildSuite assembles the experiment's full validation suite against
// the given repository: compile tests for every package, the analysis
// chains, and the standalone executable tests.
func (d Definition) BuildSuite(repo *swrepo.Repository) (*valtest.Suite, error) {
	suite := valtest.NewSuite(d.Name)
	// The full definition is the suite's provenance: parameters like
	// ChainEvents or Seed change test *outcomes* without changing test
	// names, so they must reach the input digest through the
	// fingerprint or a re-validation after changing them would be
	// wrongly skipped as up-to-date.
	suite.Fingerprint = fmt.Sprintf("%+v", d)

	// Figure 2, part one: compilation of every package.
	for _, p := range repo.Packages() {
		if err := suite.Add(&valtest.CompileTest{Pkg: p.Name}); err != nil {
			return nil, err
		}
	}

	// Figure 2, part two: sequential analysis chains...
	specs, err := d.ChainSpecs(repo)
	if err != nil {
		return nil, err
	}
	for _, sp := range specs {
		tests, err := sp.Tests()
		if err != nil {
			return nil, err
		}
		for _, t := range tests {
			if err := suite.Add(t); err != nil {
				return nil, err
			}
		}
	}

	// ...and parallel standalone executable tests, cycled over the
	// packages so that each test inherits a real package's traits.
	pkgs := repo.Packages()
	for i := 0; i < d.StandaloneTests; i++ {
		pkg := pkgs[i%len(pkgs)]
		name := fmt.Sprintf("standalone/%s/t%03d", pkg.Name, i)
		if err := suite.Add(standaloneTest(d.Name, name, pkg.Name)); err != nil {
			return nil, err
		}
	}
	if err := suite.Validate(); err != nil {
		return nil, err
	}
	return suite, nil
}

// standaloneTest builds a self-validating executable test: it computes a
// deterministic observable with the package's runtime effects applied
// and compares it against the stored reference (establishing it on first
// success) — a miniature of the chain's data validation, which is
// exactly what the HERA experiments' standalone tests do.
func standaloneTest(experiment, name, pkgName string) valtest.Test {
	return &valtest.FuncTest{
		TestName: name,
		Cat:      valtest.CatStandalone,
		Fn: func(ctx *valtest.Context) valtest.Result {
			if ctx.Build != nil {
				if pr, ok := ctx.Build.Find(pkgName); ok && !pr.Succeeded() {
					return valtest.Result{
						Outcome: valtest.OutcomeSkip,
						Detail:  fmt.Sprintf("package %s did not build (%v)", pkgName, pr.Status),
					}
				}
			}
			pkg, err := ctx.Repo.Get(pkgName)
			if err != nil {
				return valtest.Result{Outcome: valtest.OutcomeError, Detail: err.Error()}
			}
			eff, err := hepsim.EffectsFor(ctx.Config, ctx.Registry, pkg.Traits(),
				ctx.Externals.NumericRev(externals.ROOT))
			if err != nil {
				return valtest.Result{Outcome: valtest.OutcomeError, Detail: err.Error()}
			}
			if eff.Crash {
				return valtest.Result{
					Outcome: valtest.OutcomeError,
					Detail:  "executable crashed (miscompiled aliasing violation)",
				}
			}

			// Deterministic per-test observable and simulated runtime
			// (standalone executables take seconds to minutes).
			rng := simrand.New(0).Derive(experiment, name)
			id := int64(rng.Uint64() % (1 << 30))
			value := 1 + rng.Float64()
			cost := time.Duration(10+rng.Intn(110)) * time.Second
			if eff.Corrupted(id) {
				value = 1e9 + float64(id%997)
			}
			if eff.Biased(id) {
				value *= 1 + eff.MassBias
			}
			if eff.FPShift != 0 {
				value *= 1 + eff.FPShift
			}

			refKey := experiment + "/" + name
			refData, err := ctx.Store.Get(chain.RefsNS, refKey)
			if err != nil {
				// First pass establishes the reference.
				if _, err := ctx.Store.Put(chain.RefsNS, refKey, []byte(fmt.Sprintf("%.17g", value))); err != nil {
					return valtest.Result{Outcome: valtest.OutcomeError, Detail: err.Error()}
				}
				return valtest.Result{Outcome: valtest.OutcomePass, Detail: "reference established", Cost: cost}
			}
			var ref float64
			if _, err := fmt.Sscanf(string(refData), "%g", &ref); err != nil {
				return valtest.Result{Outcome: valtest.OutcomeError, Detail: "corrupt reference"}
			}
			rel := math.Abs(value-ref) / math.Abs(ref)
			if rel > 1e-9 {
				return valtest.Result{
					Outcome:   valtest.OutcomeFail,
					Detail:    fmt.Sprintf("observable shifted by %.3g relative to reference", rel),
					Statistic: rel,
					Cost:      cost,
				}
			}
			return valtest.Result{Outcome: valtest.OutcomePass, Detail: "matches reference", Statistic: rel, Cost: cost}
		},
	}
}

// PaperExternalSets returns, for each ROOT version the paper names, the
// full external set installed in the sp-system images (that ROOT plus
// CERNLIB and the era-appropriate MCGen).
func PaperExternalSets(cat *externals.Catalogue) ([]*externals.Set, error) {
	var sets []*externals.Set
	cern, err := cat.Get(externals.CERNLIB, "2006")
	if err != nil {
		return nil, err
	}
	mc, err := cat.Get(externals.MCGen, "1.4")
	if err != nil {
		return nil, err
	}
	for _, v := range []string{"5.26", "5.28", "5.30", "5.32", "5.34"} {
		root, err := cat.Get(externals.ROOT, v)
		if err != nil {
			return nil, err
		}
		set, err := externals.NewSet(root, cern, mc)
		if err != nil {
			return nil, err
		}
		sets = append(sets, set)
	}
	return sets, nil
}

// StandardSet returns the workhorse external set of the 2013 campaign:
// ROOT 5.34 with CERNLIB and MCGen.
func StandardSet(cat *externals.Catalogue) (*externals.Set, error) {
	root, err := cat.Get(externals.ROOT, "5.34")
	if err != nil {
		return nil, err
	}
	cern, err := cat.Get(externals.CERNLIB, "2006")
	if err != nil {
		return nil, err
	}
	mc, err := cat.Get(externals.MCGen, "1.4")
	if err != nil {
		return nil, err
	}
	return externals.NewSet(root, cern, mc)
}
