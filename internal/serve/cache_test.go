package serve

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// condGet issues one GET with explicit conditional / negotiation
// headers, bypassing the transport's transparent gzip so the wire
// headers are observable.
func condGet(t *testing.T, ts *httptest.Server, path string, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// TestConditionalGetRoundTrip drives the issue's 200 → 304 → append →
// 200 cycle on a disk store, and pins the acceptance criterion that a
// 304 performs zero index queries and zero template renders.
func TestConditionalGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	wstore, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wstore.Close()
	rn := runner.New(wstore, simclock.New())
	record(t, wstore, rn, "H1", "first", valtest.OutcomePass)

	rstore, err := storage.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rstore.Close()
	srv, err := New(rstore, "cond", 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/", "/api/v1/matrix", "/api/v1/runs", "/api/v1/names", "/api/v1/position"} {
		t.Run(path, func(t *testing.T) {
			code, body, hdr := condGet(t, ts, path, map[string]string{"Accept-Encoding": "identity"})
			if code != 200 {
				t.Fatalf("GET %s = %d", path, code)
			}
			etag := hdr.Get("ETag")
			if etag == "" || !strings.HasPrefix(etag, `"`) {
				t.Fatalf("GET %s ETag = %q, want a quoted strong validator", path, etag)
			}
			if v := hdr.Get("Vary"); !strings.Contains(v, "Accept-Encoding") {
				t.Errorf("GET %s Vary = %q", path, v)
			}
			if cc := hdr.Get("Cache-Control"); cc != "no-cache" {
				t.Errorf("GET %s Cache-Control = %q, want no-cache", path, cc)
			}

			// Revalidation is a 304 echoing the tag, with no body.
			code, notBody, hdr304 := condGet(t, ts, path, map[string]string{"If-None-Match": etag})
			if code != http.StatusNotModified || len(notBody) != 0 {
				t.Fatalf("conditional GET %s = %d (%d body bytes), want bare 304", path, code, len(notBody))
			}
			if hdr304.Get("ETag") != etag {
				t.Errorf("304 ETag = %q, want %q", hdr304.Get("ETag"), etag)
			}
			// A multi-member If-None-Match (as caches send) matches too.
			if code, _, _ := condGet(t, ts, path, map[string]string{"If-None-Match": `"bogus", ` + etag}); code != http.StatusNotModified {
				t.Errorf("multi-member If-None-Match on %s = %d, want 304", path, code)
			}

			// The writer appends; the stale tag stops matching and the new
			// body carries a new tag.
			record(t, wstore, rn, "H1", "append behind "+path, valtest.OutcomePass)
			code, body2, hdr2 := condGet(t, ts, path, map[string]string{"If-None-Match": etag, "Accept-Encoding": "identity"})
			if code != 200 {
				t.Fatalf("GET %s after append = %d, want 200 (stale tag must not match)", path, code)
			}
			if tag2 := hdr2.Get("ETag"); tag2 == etag || tag2 == "" {
				t.Errorf("ETag did not advance across the append: %q", tag2)
			}
			if bytes.Equal(body, body2) && path != "/api/v1/position" {
				// Position changed by definition; every listing body must too.
				if path == "/" || strings.HasPrefix(path, "/api") {
					t.Errorf("GET %s body identical across the append", path)
				}
			}
		})
	}
}

// Test304ZeroWork pins the acceptance criterion directly: the 304 fast
// path touches neither the bookkeeping index nor a template.
func Test304ZeroWork(t *testing.T) {
	dir := t.TempDir()
	wstore, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wstore.Close()
	rn := runner.New(wstore, simclock.New())
	record(t, wstore, rn, "H1", "only", valtest.OutcomePass)

	rstore, err := storage.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rstore.Close()
	srv, err := New(rstore, "zero", 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, _, hdr := condGet(t, ts, "/", nil)
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag to revalidate against")
	}
	queries, renders, nm := srv.indexQueries.Load(), srv.renders.Load(), srv.notModified.Load()
	for i := 0; i < 5; i++ {
		if code, _, _ := condGet(t, ts, "/", map[string]string{"If-None-Match": etag}); code != http.StatusNotModified {
			t.Fatalf("revalidation %d = %d, want 304", i, code)
		}
	}
	if got := srv.indexQueries.Load(); got != queries {
		t.Errorf("304s performed %d index queries, want 0", got-queries)
	}
	if got := srv.renders.Load(); got != renders {
		t.Errorf("304s performed %d renders, want 0", got-renders)
	}
	if got := srv.notModified.Load(); got != nm+5 {
		t.Errorf("not_modified counter advanced by %d, want 5", got-nm)
	}
}

// TestImmutableRunPageValidator: per-run pages revalidate to 304 even
// across writer appends — the record is immutable, so its validator
// survives position changes.
func TestImmutableRunPageValidator(t *testing.T) {
	dir := t.TempDir()
	wstore, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wstore.Close()
	rn := runner.New(wstore, simclock.New())
	rec := record(t, wstore, rn, "H1", "pinned", valtest.OutcomePass)

	rstore, err := storage.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rstore.Close()
	srv, err := New(rstore, "imm", 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, _, hdr := condGet(t, ts, "/runs/"+rec.RunID, nil)
	etag := hdr.Get("ETag")
	if etag == "" || !strings.Contains(etag, "imm") {
		t.Fatalf("run page ETag = %q, want an immutable-form validator", etag)
	}
	record(t, wstore, rn, "H1", "unrelated append", valtest.OutcomePass)
	code, _, _ := condGet(t, ts, "/runs/"+rec.RunID, map[string]string{"If-None-Match": etag})
	if code != http.StatusNotModified {
		t.Fatalf("immutable run page revalidation after append = %d, want 304", code)
	}
}

// TestRenderCacheAcrossCompaction: a live compaction bumps the snapshot
// generation; the validator and cache key must both move so clients
// revalidate to a fresh render, not a stale cached body.
func TestRenderCacheAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	wstore, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wstore.Close()
	rn := runner.New(wstore, simclock.New())
	record(t, wstore, rn, "H1", "pre-compact", valtest.OutcomePass)

	rstore, err := storage.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rstore.Close()
	srv, err := New(rstore, "compact", 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm the cache: miss, then hit, under the generation-1 validator.
	_, body1, hdr := condGet(t, ts, "/", map[string]string{"Accept-Encoding": "identity"})
	etag1 := hdr.Get("ETag")
	misses1, hits1 := srv.misses.Load(), srv.hits.Load()
	condGet(t, ts, "/", map[string]string{"Accept-Encoding": "identity"})
	if srv.hits.Load() != hits1+1 || srv.misses.Load() != misses1 {
		t.Fatalf("second identical GET did not hit the cache (hits %d→%d, misses %d→%d)",
			hits1, srv.hits.Load(), misses1, srv.misses.Load())
	}

	// The writer compacts under the live reader and appends another run.
	cs, err := wstore.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Generation < 1 {
		t.Fatalf("compaction generation = %d, want ≥ 1", cs.Generation)
	}
	rec2 := record(t, wstore, rn, "H1", "post-compact", valtest.OutcomePass)

	// The old validator must not match, and the answer must be a fresh
	// render reflecting the post-compaction history — not the cached
	// generation-1 body.
	code, body2, hdr2 := condGet(t, ts, "/", map[string]string{"If-None-Match": etag1, "Accept-Encoding": "identity"})
	if code != 200 {
		t.Fatalf("GET / with the pre-compaction tag = %d, want 200", code)
	}
	etag2 := hdr2.Get("ETag")
	if etag2 == etag1 || etag2 == "" {
		t.Fatalf("validator did not move across the compaction: %q", etag2)
	}
	if bytes.Equal(body1, body2) {
		t.Fatal("post-compaction body identical to the cached pre-compaction render")
	}
	if !strings.Contains(string(body2), rec2.RunID) {
		t.Fatalf("post-compaction render missing the new run %s", rec2.RunID)
	}
	misses2 := srv.misses.Load()
	if misses2 <= misses1 {
		t.Fatal("post-compaction response was served from the stale cache, not rendered")
	}
	// The new validator is stable: it revalidates to 304 like any other.
	if code, _, _ := condGet(t, ts, "/", map[string]string{"If-None-Match": etag2}); code != http.StatusNotModified {
		t.Fatalf("post-compaction revalidation = %d, want 304", code)
	}
}

// TestGzipNegotiation: HTML and JSON bodies negotiate gzip with correct
// Vary and a per-coding validator; both representation tags revalidate.
func TestGzipNegotiation(t *testing.T) {
	store := storage.NewStore()
	rn := runner.New(store, simclock.New())
	record(t, store, rn, "H1", "a run so pages clear the gzip floor", valtest.OutcomePass)
	record(t, store, rn, "ZEUS", "second experiment pads the matrix", valtest.OutcomeFail)
	srv, err := New(store, "gzip", 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/", "/api/v1/runs"} {
		t.Run(path, func(t *testing.T) {
			code, plain, hdrID := condGet(t, ts, path, map[string]string{"Accept-Encoding": "identity"})
			if code != 200 || hdrID.Get("Content-Encoding") != "" {
				t.Fatalf("identity GET %s = %d enc %q", path, code, hdrID.Get("Content-Encoding"))
			}
			if len(plain) < storage.GzipMinSize {
				t.Fatalf("fixture body only %d bytes — below the gzip floor, test is vacuous", len(plain))
			}

			code, packed, hdrGz := condGet(t, ts, path, map[string]string{"Accept-Encoding": "gzip"})
			if code != 200 || hdrGz.Get("Content-Encoding") != "gzip" {
				t.Fatalf("gzip GET %s = %d enc %q", path, code, hdrGz.Get("Content-Encoding"))
			}
			if !strings.Contains(hdrGz.Get("Vary"), "Accept-Encoding") {
				t.Errorf("gzip response Vary = %q", hdrGz.Get("Vary"))
			}
			gzTag, idTag := hdrGz.Get("ETag"), hdrID.Get("ETag")
			if !strings.Contains(gzTag, "+gzip") || strings.Contains(idTag, "+gzip") {
				t.Errorf("per-coding validators wrong: identity %q, gzip %q", idTag, gzTag)
			}
			zr, err := gzip.NewReader(bytes.NewReader(packed))
			if err != nil {
				t.Fatal(err)
			}
			unpacked, err := io.ReadAll(zr)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(unpacked, plain) {
				t.Fatalf("gzip body decodes to %d bytes, identity body is %d", len(unpacked), len(plain))
			}
			if len(packed) >= len(plain) {
				t.Errorf("gzip representation (%d bytes) not smaller than identity (%d)", len(packed), len(plain))
			}

			// Either representation's tag revalidates the resource.
			for _, tag := range []string{idTag, gzTag} {
				if code, _, _ := condGet(t, ts, path, map[string]string{"If-None-Match": tag}); code != http.StatusNotModified {
					t.Errorf("If-None-Match %q on %s = %d, want 304", tag, path, code)
				}
			}
		})
	}
}

// TestSSERunRecorded: an /events subscriber sees run-recorded within one
// heartbeat interval of a writer append, with the heartbeat clock driven
// by the test instead of real time.
func TestSSERunRecorded(t *testing.T) {
	dir := t.TempDir()
	wstore, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wstore.Close()
	rn := runner.New(wstore, simclock.New())
	record(t, wstore, rn, "H1", "pre-subscribe", valtest.OutcomePass)

	rstore, err := storage.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rstore.Close()
	srv, err := New(rstore, "sse", 0)
	if err != nil {
		t.Fatal(err)
	}
	beats := make(chan struct{})
	srv.newHeartbeat = func() waitFunc {
		return func(stop <-chan struct{}) bool {
			select {
			case <-beats:
				return true
			case <-stop:
				return false
			}
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(resp.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("GET /events = %d (%s)", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	waitLine := func(want string) string {
		t.Helper()
		for {
			select {
			case ln, ok := <-lines:
				if !ok {
					t.Fatalf("stream closed waiting for %q", want)
				}
				if strings.Contains(ln, want) {
					return ln
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("timed out waiting for %q", want)
			}
		}
	}
	waitLine(": stream open")

	// The writer appends with zero page traffic; one heartbeat tick's
	// refresh must detect it and push the event before the keep-alive.
	record(t, wstore, rn, "H1", "appended live", valtest.OutcomePass)
	beats <- struct{}{}
	waitLine("event: " + EventRunRecorded)
	data := waitLine("data: ")
	if !strings.Contains(data, `"total_runs":2`) {
		t.Fatalf("run-recorded payload = %q, want total_runs 2", data)
	}
	waitLine(": heartbeat")

	// A quiet tick heartbeats without fabricating events.
	beats <- struct{}{}
	if ln := waitLine(": heartbeat"); strings.Contains(ln, "event:") {
		t.Fatalf("quiet tick produced an event: %q", ln)
	}
}
