package serve

import (
	"container/list"
	"sync"
)

// defaultCacheEntries bounds the render cache when Options leaves it
// zero. Entries are whole rendered bodies; with the per-body size cap
// below the cache tops out around half a gigabyte in the worst case
// and far less in practice (matrix pages and JSON pages are small).
const defaultCacheEntries = 512

// maxCachedBody is the largest body the cache will hold. Anything
// bigger (a pathological runs page near the 5000-run cap) is rendered
// per request rather than crowding out hundreds of normal entries.
const maxCachedBody = 1 << 20

// cacheEntry is one rendered body with the headers it was negotiated
// under. etag is "" for volatile bodies (served, never stored).
type cacheEntry struct {
	key     string
	body    []byte
	ctype   string
	etag    string
	gzipped bool
	// immutable marks a body that can never change for its URL (per-run
	// pages): served with the blob route's long-lived Cache-Control
	// instead of no-cache, so downstream caches stop revalidating it.
	immutable bool
}

// renderCache is a bounded LRU of rendered bodies. Invalidation is
// implicit: keys embed the position validator, so entries belonging to
// superseded positions are simply never looked up again and age out of
// the LRU tail. purge exists only for history regression, where old
// validators could otherwise collide with the recreated store's.
type renderCache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List               // guarded by mu; front is most recently used
	items     map[string]*list.Element // guarded by mu
	evictions int64                    // guarded by mu
}

// newRenderCache sizes a cache: 0 entries means the default, negative
// disables caching (a nil cache; every method is nil-safe).
func newRenderCache(entries int) *renderCache {
	if entries < 0 {
		return nil
	}
	if entries == 0 {
		entries = defaultCacheEntries
	}
	return &renderCache{max: entries, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *renderCache) get(key string) (*cacheEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

func (c *renderCache) put(key string, e *cacheEntry) {
	if c == nil || len(e.body) > maxCachedBody {
		return
	}
	e.key = key
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// purge drops every entry — called only when the served history
// regresses (store recreated), where stale keys could collide with the
// new history's validators.
func (c *renderCache) purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

func (c *renderCache) stats() (entries int, evictions int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.evictions
}
