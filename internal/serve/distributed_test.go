package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/runner"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// The broadcaster's replay ring: publishes are numbered, a subscriber
// carrying a Last-Event-ID gets exactly the events after it, and the
// ring stays bounded for clients arbitrarily far behind.
func TestBroadcasterReplayRing(t *testing.T) {
	b := newBroadcaster()
	total := eventReplayLimit + 44
	for i := 0; i < total; i++ {
		b.publish(Event{Type: EventRunRecorded, Data: EventData{TotalRuns: i + 1}})
	}

	// A fresh connection (no Last-Event-ID) replays nothing.
	ch, replay := b.subscribe(0)
	defer b.unsubscribe(ch)
	if len(replay) != 0 {
		t.Fatalf("fresh subscriber got %d replayed events, want 0", len(replay))
	}

	// A client that saw event N resumes at N+1.
	last := uint64(total - 3)
	ch2, replay2 := b.subscribe(last)
	defer b.unsubscribe(ch2)
	if len(replay2) != 3 {
		t.Fatalf("resume from %d replayed %d events, want 3", last, len(replay2))
	}
	for i, ev := range replay2 {
		if ev.ID != last+uint64(i)+1 {
			t.Fatalf("replay[%d].ID = %d, want %d", i, ev.ID, last+uint64(i)+1)
		}
	}

	// A client further behind than the ring gets the whole bounded ring,
	// oldest retained event first — never more than the limit.
	ch3, replay3 := b.subscribe(1)
	defer b.unsubscribe(ch3)
	if len(replay3) != eventReplayLimit {
		t.Fatalf("deep resume replayed %d events, want the ring bound %d", len(replay3), eventReplayLimit)
	}
	if first := replay3[0].ID; first != uint64(total-eventReplayLimit+1) {
		t.Fatalf("deep resume starts at ID %d, want %d", first, total-eventReplayLimit+1)
	}

	// Replay and live delivery don't overlap: an event published after
	// the subscription arrives on the channel, not in the slice.
	b.publish(Event{Type: EventPlanRecorded})
	select {
	case ev := <-ch2:
		if ev.ID != uint64(total+1) {
			t.Fatalf("live event ID %d, want %d", ev.ID, total+1)
		}
	default:
		t.Fatal("post-subscribe publish not delivered live")
	}
}

// TestSSEResume drives the HTTP surface: events carry id: fields, and a
// reconnect with Last-Event-ID receives the missed events before
// anything else — the EventSource auto-reconnect contract.
func TestSSEResume(t *testing.T) {
	store := storage.NewStore()
	srv, err := New(store, "sse-resume", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.newHeartbeat = func() waitFunc {
		return func(stop <-chan struct{}) bool {
			<-stop
			return false
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	openStream := func(lastID string) (*http.Response, func(want string) string, context.CancelFunc) {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		lines := make(chan string, 64)
		go func() {
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				lines <- sc.Text()
			}
			close(lines)
		}()
		waitLine := func(want string) string {
			t.Helper()
			for {
				select {
				case ln, ok := <-lines:
					if !ok {
						t.Fatalf("stream closed waiting for %q", want)
					}
					if strings.Contains(ln, want) {
						return ln
					}
				case <-time.After(10 * time.Second):
					t.Fatalf("timed out waiting for %q", want)
				}
			}
		}
		return resp, waitLine, cancel
	}

	// First connection: watch three live events go by, numbered.
	resp, waitLine, cancel := openStream("")
	waitLine(": stream open")
	for i := 1; i <= 3; i++ {
		srv.events.publish(Event{Type: EventRunRecorded, Data: EventData{TotalRuns: i}})
	}
	if ln := waitLine("id: "); ln != "id: 1" {
		t.Fatalf("first event line %q, want id: 1", ln)
	}
	waitLine("id: 2")
	waitLine("id: 3")
	cancel()
	resp.Body.Close()

	// The connection drops after event 1: the reconnect replays 2 and 3
	// immediately, before any live traffic or heartbeat.
	resp2, waitLine2, cancel2 := openStream("1")
	defer cancel2()
	defer resp2.Body.Close()
	waitLine2(": stream open")
	if ln := waitLine2("id: "); ln != "id: 2" {
		t.Fatalf("resumed stream starts at %q, want id: 2", ln)
	}
	waitLine2("id: 3")
	data := waitLine2("data: ")
	if !strings.Contains(data, `"total_runs":3`) {
		t.Fatalf("replayed payload %q, want the original event data", data)
	}
}

// Per-run pages are immutable resources: served (and 304-revalidated)
// with the blob route's long-lived immutable Cache-Control, while the
// mutable matrix stays no-cache (pinned in cache_test).
func TestRunPageImmutableCacheControl(t *testing.T) {
	store := storage.NewStore()
	rn := runner.New(store, simclock.New())
	rec := record(t, store, rn, "H1", "immutable page", valtest.OutcomePass)
	srv, err := New(store, "imm", 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _, hdr := get(t, ts, "/runs/"+rec.RunID)
	if code != 200 {
		t.Fatalf("GET run page = %d", code)
	}
	cc := hdr.Get("Cache-Control")
	if !strings.Contains(cc, "immutable") || !strings.Contains(cc, "max-age=") || !strings.Contains(cc, "public") {
		t.Fatalf("run page Cache-Control = %q, want public, max-age, immutable", cc)
	}
	// Revalidation (a client that cached before the header changed, or
	// past max-age) stays immutable too.
	code304, _, hdr304 := condGet(t, ts, "/runs/"+rec.RunID, map[string]string{"If-None-Match": hdr.Get("ETag")})
	if code304 != http.StatusNotModified {
		t.Fatalf("conditional GET run page = %d, want 304", code304)
	}
	if cc := hdr304.Get("Cache-Control"); !strings.Contains(cc, "immutable") {
		t.Fatalf("304 Cache-Control = %q, want immutable", cc)
	}
}

// /healthz surfaces the distributed campaign's lease ledger: held and
// expired counts, steal totals, and per-worker live progress — derived
// from the same records the workers coordinate through.
func TestHealthzLeases(t *testing.T) {
	store := storage.NewStore()
	srv, err := New(store, "leases", 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// No leases: the block is absent entirely.
	code, body, _ := get(t, ts, "/healthz")
	if code != 200 {
		t.Fatalf("GET /healthz = %d", code)
	}
	if strings.Contains(body, `"leases"`) {
		t.Fatalf("lease-free store reports a leases block: %s", body)
	}

	// One worker holds a cell, another has completed one.
	digestA := strings.Repeat("a", 64)
	digestB := strings.Repeat("b", 64)
	m1 := campaign.NewLeaseManager(store, "w1", time.Hour, nil)
	if _, st, _, err := m1.Claim(digestA, "cell-a"); err != nil || st != campaign.ClaimWon {
		t.Fatalf("claim a: %v %v", st, err)
	}
	m2 := campaign.NewLeaseManager(store, "w2", time.Hour, nil)
	lease, st, _, err := m2.Claim(digestB, "cell-b")
	if err != nil || st != campaign.ClaimWon {
		t.Fatalf("claim b: %v %v", st, err)
	}
	if err := m2.Complete(lease, "run-0042", true); err != nil {
		t.Fatal(err)
	}

	code, body, _ = get(t, ts, "/healthz")
	if code != 200 {
		t.Fatalf("GET /healthz = %d", code)
	}
	var doc struct {
		Leases *leaseStatsDoc `json:"leases"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("healthz body: %v\n%s", err, body)
	}
	if doc.Leases == nil {
		t.Fatalf("no leases block: %s", body)
	}
	if doc.Leases.Held != 1 || doc.Leases.Done != 1 || doc.Leases.Expired != 0 {
		t.Fatalf("leases block %+v, want 1 held 1 done", doc.Leases)
	}
	if doc.Leases.Workers["w2"] != 1 || len(doc.Leases.Workers) != 1 {
		t.Fatalf("per-worker progress %+v, want w2 with 1 completed", doc.Leases.Workers)
	}
}
