package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/chain"
	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/swrepo"
	"repro/internal/valtest"
)

// record runs one two-test suite (one pass with a kept artifact, one
// with the given outcome) against the store and returns the record.
func record(t *testing.T, store *storage.Store, rn *runner.Runner, exp, desc string, second valtest.Outcome) *runner.RunRecord {
	t.Helper()
	suite := valtest.NewSuite(exp)
	suite.MustAdd(&valtest.FuncTest{TestName: "keeper", Cat: valtest.CatStandalone,
		Fn: func(ctx *valtest.Context) valtest.Result {
			key := ctx.Env[storage.EnvRunID] + "/artifact"
			if _, err := ctx.Store.Put(chain.FilesNS, key, []byte("kept output of "+desc)); err != nil {
				return valtest.Result{Outcome: valtest.OutcomeError, Detail: err.Error()}
			}
			return valtest.Result{Outcome: valtest.OutcomePass, OutputKey: key}
		}})
	suite.MustAdd(&valtest.FuncTest{TestName: "other", Cat: valtest.CatStandalone,
		Fn: func(*valtest.Context) valtest.Result {
			return valtest.Result{Outcome: second, Detail: "synthetic"}
		}})
	cat := externals.NewCatalogue()
	root, _ := cat.Get(externals.ROOT, "5.34")
	ctx := &valtest.Context{
		Store:     store,
		Env:       storage.Env{},
		Config:    platform.ReferenceConfig(),
		Registry:  platform.NewRegistry(),
		Externals: externals.MustSet(root),
		Repo:      swrepo.NewRepository(exp),
	}
	rec, err := rn.Run(suite, ctx, desc)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestEndpoints(t *testing.T) {
	store := storage.NewStore()
	rn := runner.New(store, simclock.New())
	good := record(t, store, rn, "H1", "baseline", valtest.OutcomePass)
	bad := record(t, store, rn, "H1", "regressed", valtest.OutcomeFail)

	srv, err := New(store, "test status", 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	t.Run("matrix", func(t *testing.T) {
		code, body, hdr := get(t, ts, "/")
		if code != 200 {
			t.Fatalf("GET / = %d", code)
		}
		if !strings.Contains(hdr.Get("Content-Type"), "text/html") {
			t.Errorf("content type %q", hdr.Get("Content-Type"))
		}
		for _, want := range []string{"test status", "H1", `href="/runs/` + bad.RunID + `"`, "2 validation runs"} {
			if !strings.Contains(body, want) {
				t.Errorf("matrix page missing %q:\n%s", want, body)
			}
		}
	})

	t.Run("run page", func(t *testing.T) {
		code, body, _ := get(t, ts, "/runs/"+good.RunID)
		if code != 200 {
			t.Fatalf("GET /runs/%s = %d", good.RunID, code)
		}
		job, ok := good.Find("keeper")
		if !ok || job.Result.OutputKey == "" {
			t.Fatal("fixture lost its artifact")
		}
		hash, err := store.Hash(chain.FilesNS, job.Result.OutputKey)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{good.RunID, "keeper", `href="/api/v1/blob/` + hash + `"`} {
			if !strings.Contains(body, want) {
				t.Errorf("run page missing %q:\n%s", want, body)
			}
		}
	})

	t.Run("run 404", func(t *testing.T) {
		for _, path := range []string{"/runs/run-9999", "/runs/", "/runs/a/b"} {
			if code, _, _ := get(t, ts, path); code != 404 {
				t.Errorf("GET %s = %d, want 404", path, code)
			}
		}
	})

	t.Run("diff", func(t *testing.T) {
		code, body, _ := get(t, ts, "/diff/"+bad.RunID)
		if code != 200 {
			t.Fatalf("GET /diff = %d", code)
		}
		for _, want := range []string{good.RunID, bad.RunID, "REGRESSION other"} {
			if !strings.Contains(body, want) {
				t.Errorf("diff missing %q:\n%s", want, body)
			}
		}
		// First run has no baseline: still a page, not a 404.
		code, body, _ = get(t, ts, "/diff/"+good.RunID)
		if code != 200 || !strings.Contains(body, "no baseline") {
			t.Errorf("GET /diff/%s = %d %q", good.RunID, code, body)
		}
		if code, _, _ := get(t, ts, "/diff/run-9999"); code != 404 {
			t.Errorf("diff of unknown run = %d, want 404", code)
		}
	})

	t.Run("blob", func(t *testing.T) {
		job, _ := good.Find("keeper")
		hash, err := store.Hash(chain.FilesNS, job.Result.OutputKey)
		if err != nil {
			t.Fatal(err)
		}
		code, body, _ := get(t, ts, "/api/v1/blob/"+hash)
		if code != 200 || body != "kept output of baseline" {
			t.Fatalf("GET blob = %d %q", code, body)
		}
		if code, _, _ := get(t, ts, "/api/v1/blob/"+strings.Repeat("0", 64)); code != 404 {
			t.Errorf("missing blob = %d, want 404", code)
		}
		// A malformed hash is rejected before the backend is touched.
		if code, _, _ := get(t, ts, "/api/v1/blob/"); code != 400 {
			t.Errorf("empty blob hash = %d, want 400", code)
		}
	})

	t.Run("api matrix", func(t *testing.T) {
		code, body, hdr := get(t, ts, "/api/v1/matrix")
		if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
			t.Fatalf("GET /api/v1/matrix = %d %q", code, hdr.Get("Content-Type"))
		}
		var doc struct {
			TotalRuns int `json:"total_runs"`
			Cells     []struct {
				Experiment, RunID string
				Pass, Fail        int
			} `json:"cells"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatal(err)
		}
		if doc.TotalRuns != 2 || len(doc.Cells) != 1 {
			t.Fatalf("api matrix = %+v", doc)
		}
		if c := doc.Cells[0]; c.Experiment != "H1" || c.RunID != bad.RunID || c.Fail != 1 {
			t.Fatalf("cell = %+v", c)
		}
	})

	t.Run("api runs", func(t *testing.T) {
		code, body, _ := get(t, ts, "/api/v1/runs")
		if code != 200 {
			t.Fatalf("GET /api/v1/runs = %d", code)
		}
		var doc struct {
			Runs []struct {
				RunID  string `json:"run_id"`
				Passed bool   `json:"passed"`
				Jobs   int    `json:"jobs"`
			} `json:"runs"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatal(err)
		}
		if len(doc.Runs) != 2 || doc.Runs[0].RunID != good.RunID || !doc.Runs[0].Passed ||
			doc.Runs[1].Passed || doc.Runs[1].Jobs != 2 {
			t.Fatalf("api runs = %+v", doc.Runs)
		}
	})

	t.Run("healthz", func(t *testing.T) {
		code, body, _ := get(t, ts, "/healthz")
		if code != 200 || !strings.Contains(body, `"status":"ok"`) || !strings.Contains(body, `"runs":2`) {
			t.Fatalf("GET /healthz = %d %q", code, body)
		}
		if !strings.Contains(body, `"cache"`) {
			t.Fatalf("healthz missing the cache block: %q", body)
		}
	})

	t.Run("unknown path", func(t *testing.T) {
		if code, _, _ := get(t, ts, "/nope"); code != 404 {
			t.Errorf("GET /nope = %d, want 404", code)
		}
	})
}

// TestEndpointsEmptyStore: a store with zero runs serves empty-but-valid
// pages, not errors.
func TestEndpointsEmptyStore(t *testing.T) {
	srv, err := New(storage.NewStore(), "empty", 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body, _ := get(t, ts, "/")
	if code != 200 || !strings.Contains(body, "0 validation runs") {
		t.Fatalf("GET / = %d %q", code, body)
	}
	code, body, _ = get(t, ts, "/api/v1/matrix")
	if code != 200 || !strings.Contains(body, `"total_runs":0`) {
		t.Fatalf("GET /api/v1/matrix = %d %q", code, body)
	}
	code, body, _ = get(t, ts, "/healthz")
	if code != 200 || !strings.Contains(body, `"runs":0`) {
		t.Fatalf("GET /healthz = %d %q", code, body)
	}
	if code, _, _ := get(t, ts, "/runs/run-0001"); code != 404 {
		t.Fatalf("run page on empty store = %d, want 404", code)
	}
}

// TestServeLiveStore: a writer handle (standing in for `spsys campaign
// -store`) holds the exclusive lock and keeps appending runs while the
// server, over the shared-lock read-only view of the same directory,
// serves pages that refresh to include them.
func TestServeLiveStore(t *testing.T) {
	dir := t.TempDir()
	wstore, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wstore.Close()
	rn := runner.New(wstore, simclock.New())
	first := record(t, wstore, rn, "H1", "first", valtest.OutcomePass)

	rstore, err := storage.OpenReadOnly(dir)
	if err != nil {
		t.Fatalf("read-only open while the campaign writer is live: %v", err)
	}
	defer rstore.Close()
	srv, err := New(rstore, "live", 0) // refresh on every request
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body, _ := get(t, ts, "/"); code != 200 || !strings.Contains(body, first.RunID) {
		t.Fatalf("initial matrix = %d, missing %s", code, first.RunID)
	}

	// The writer keeps recording; each new run shows up on the next
	// request without any writer cooperation.
	for i := 0; i < 3; i++ {
		rec := record(t, wstore, rn, "H1", fmt.Sprintf("live append %d", i), valtest.OutcomeFail)
		code, body, _ := get(t, ts, "/runs/"+rec.RunID)
		if code != 200 || !strings.Contains(body, rec.Description) {
			t.Fatalf("run page for freshly appended %s = %d", rec.RunID, code)
		}
		code, body, _ = get(t, ts, "/api/v1/runs")
		if code != 200 || !strings.Contains(body, rec.RunID) {
			t.Fatalf("api runs missing freshly appended %s", rec.RunID)
		}
	}
	code, body, _ := get(t, ts, "/healthz")
	if code != 200 || !strings.Contains(body, `"runs":4`) {
		t.Fatalf("healthz after live appends = %d %q", code, body)
	}
	// The diff of the latest failure resolves against the live baseline.
	code, body, _ = get(t, ts, "/diff/run-0004")
	if code != 200 || !strings.Contains(body, first.RunID) {
		t.Fatalf("live diff = %d %q", code, body)
	}
}

// TestRefreshThrottle: with a long refresh interval, a request between
// refreshes serves the stale-but-consistent last state.
func TestRefreshThrottle(t *testing.T) {
	dir := t.TempDir()
	wstore, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wstore.Close()
	rn := runner.New(wstore, simclock.New())
	record(t, wstore, rn, "H1", "first", valtest.OutcomePass)

	rstore, err := storage.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rstore.Close()
	srv, err := New(rstore, "throttled", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Substitute a hand-advanced clock for the cron.Wall seam so the
	// throttle's both sides are observable without sleeping. The test
	// advances the clock between requests while handler goroutines read
	// it, so the offset is atomic.
	base := srv.lastRefresh
	var elapsed atomic.Int64
	srv.now = func() time.Time { return base.Add(time.Duration(elapsed.Load())) }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	record(t, wstore, rn, "H1", "second", valtest.OutcomePass)
	if _, body, _ := get(t, ts, "/api/v1/runs"); strings.Contains(body, "run-0002") {
		t.Fatal("throttled server refreshed before its interval")
	}

	// One tick short of the interval: still throttled.
	elapsed.Store(int64(time.Hour - time.Nanosecond))
	if _, body, _ := get(t, ts, "/api/v1/runs"); strings.Contains(body, "run-0002") {
		t.Fatal("throttled server refreshed one tick before its interval")
	}

	// At the interval: the next request re-tails the journal and the
	// writer's second run appears.
	elapsed.Store(int64(time.Hour))
	if _, body, _ := get(t, ts, "/api/v1/runs"); !strings.Contains(body, "run-0002") {
		t.Fatalf("server did not refresh once its interval elapsed: %q", body)
	}
}

// TestPlanEndpointAndMatrixFreshness covers the producer-plan surface:
// without a recorded plan the matrix has no freshness column and
// /api/v1/plan is a 404; once a campaign records its plan, the skipped
// cells show as up-to-date on the matrix page and the full plan is
// served as JSON.
func TestPlanEndpointAndMatrixFreshness(t *testing.T) {
	store := storage.NewStore()
	rn := runner.New(store, simclock.New())
	rec := record(t, store, rn, "H1", "baseline", valtest.OutcomePass)

	srv, err := New(store, "plan test", 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _, _ := get(t, ts, "/api/v1/plan"); code != http.StatusNotFound {
		t.Fatalf("/api/v1/plan with no plan: %d, want 404", code)
	}
	if _, body, _ := get(t, ts, "/"); strings.Contains(body, "Freshness") {
		t.Fatal("matrix shows a freshness column with no recorded plan")
	}

	planRec := campaign.PlanRecord{
		PlannedAt: rec.Timestamp,
		Skips:     1,
		Cells: []campaign.PlanCellRecord{{
			Experiment: rec.Experiment, Config: rec.Config, Externals: rec.Externals,
			Mode: "validate", Digest: rec.InputDigest, Decision: "skip",
			Reason: "up-to-date: green " + rec.RunID + " has this input digest", PriorRunID: rec.RunID,
		}},
	}
	data, err := json.Marshal(planRec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put(campaign.PlanNS, campaign.LatestPlanKey, data); err != nil {
		t.Fatal(err)
	}

	code, body, _ := get(t, ts, "/api/v1/plan")
	if code != http.StatusOK {
		t.Fatalf("/api/v1/plan: %d, want 200", code)
	}
	var back campaign.PlanRecord
	if err := json.Unmarshal([]byte(body), &back); err != nil {
		t.Fatalf("/api/v1/plan is not a plan record: %v\n%s", err, body)
	}
	if len(back.Cells) != 1 || back.Cells[0].Decision != "skip" || back.Cells[0].PriorRunID != rec.RunID {
		t.Fatalf("/api/v1/plan round-trip wrong: %+v", back)
	}

	_, home, _ := get(t, ts, "/")
	if !strings.Contains(home, "Freshness") {
		t.Fatalf("matrix page missing freshness column:\n%s", home)
	}
	if !strings.Contains(home, "up-to-date ("+rec.RunID+")") {
		t.Fatalf("matrix page does not mark the skipped cell up-to-date:\n%s", home)
	}
}

// TestRunsPagination drives the /api/v1/runs cursor protocol: bounded
// pages, a next_after cursor that walks the full list exactly once, a
// clamped limit, and the per-experiment filter.
func TestRunsPagination(t *testing.T) {
	store := storage.NewStore()
	rn := runner.New(store, simclock.New())
	for i := 0; i < 5; i++ {
		record(t, store, rn, "H1", fmt.Sprintf("h1 run %d", i), valtest.OutcomePass)
	}
	for i := 0; i < 2; i++ {
		record(t, store, rn, "ZEUS", fmt.Sprintf("zeus run %d", i), valtest.OutcomePass)
	}
	srv, err := New(store, "paged", 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type page struct {
		Runs []struct {
			RunID      string `json:"run_id"`
			Experiment string `json:"experiment"`
		} `json:"runs"`
		Total     int    `json:"total"`
		NextAfter string `json:"next_after"`
	}
	getPage := func(query string) page {
		t.Helper()
		code, body, _ := get(t, ts, "/api/v1/runs"+query)
		if code != http.StatusOK {
			t.Fatalf("GET /api/v1/runs%s = %d", query, code)
		}
		var p page
		if err := json.Unmarshal([]byte(body), &p); err != nil {
			t.Fatalf("bad page JSON: %v\n%s", err, body)
		}
		return p
	}

	// Walk the full list in pages of 3: 3 + 3 + 1.
	var walked []string
	cursor, pages := "", 0
	for {
		p := getPage("?limit=3&after=" + cursor)
		pages++
		if p.Total != 7 {
			t.Fatalf("total = %d, want 7", p.Total)
		}
		if len(p.Runs) > 3 {
			t.Fatalf("page of %d runs exceeds limit 3", len(p.Runs))
		}
		for _, r := range p.Runs {
			walked = append(walked, r.RunID)
		}
		if p.NextAfter == "" {
			break
		}
		cursor = p.NextAfter
		if pages > 5 {
			t.Fatal("runaway pagination")
		}
	}
	if len(walked) != 7 || pages != 3 {
		t.Fatalf("walked %d runs over %d pages, want 7 over 3", len(walked), pages)
	}
	seen := map[string]bool{}
	for _, id := range walked {
		if seen[id] {
			t.Fatalf("run %s served twice", id)
		}
		seen[id] = true
	}

	// Default limit bounds the response even with no query, and a huge
	// requested limit is clamped (can't observe the clamp at 7 runs,
	// but it must not error).
	if p := getPage(""); len(p.Runs) != 7 || p.NextAfter != "" {
		t.Fatalf("default page = %d runs, next %q", len(p.Runs), p.NextAfter)
	}
	if p := getPage("?limit=999999"); len(p.Runs) != 7 {
		t.Fatalf("clamped page = %d runs", len(p.Runs))
	}

	// Per-experiment cursor; total reflects the filtered scope.
	p := getPage("?experiment=ZEUS&limit=1")
	if len(p.Runs) != 1 || p.Runs[0].Experiment != "ZEUS" || p.NextAfter == "" {
		t.Fatalf("ZEUS page = %+v", p)
	}
	if p.Total != 2 {
		t.Fatalf("filtered total = %d, want 2 (the experiment's runs, not the store's)", p.Total)
	}
	p2 := getPage("?experiment=ZEUS&limit=5&after=" + p.NextAfter)
	if len(p2.Runs) != 1 || p2.Runs[0].Experiment != "ZEUS" || p2.NextAfter != "" {
		t.Fatalf("ZEUS tail page = %+v", p2)
	}
}

// TestV1Routes drives the versioned surface: every JSON route answers
// under /api/v1/, errors share the envelope, and the pre-v1 aliases —
// kept for exactly one deprecation release — are gone.
func TestV1Routes(t *testing.T) {
	store := storage.NewStore()
	rn := runner.New(store, simclock.New())
	rec := record(t, store, rn, "H1", "baseline", valtest.OutcomePass)
	srv, err := New(store, "v1 test", 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	t.Run("moved routes", func(t *testing.T) {
		for _, path := range []string{"/api/v1/matrix", "/api/v1/runs", "/api/v1/position", "/api/v1/names", "/api/v1/blobs"} {
			code, body, hdr := get(t, ts, path)
			if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
				t.Errorf("GET %s = %d (%s)", path, code, hdr.Get("Content-Type"))
			}
			if hdr.Get("Deprecation") != "" {
				t.Errorf("GET %s carries a Deprecation header on the v1 surface", path)
			}
			if !json.Valid([]byte(body)) {
				t.Errorf("GET %s is not JSON: %q", path, body)
			}
		}
	})

	t.Run("error envelope", func(t *testing.T) {
		for path, wantCode := range map[string]int{
			"/api/v1/plan":     404, // no plan recorded
			"/api/v1/nope":     404, // unknown API route
			"/api/v1/blob/zzz": 400, // malformed hash
			"/api/v1/blob/" + strings.Repeat("0", 64): 404,
		} {
			code, body, _ := get(t, ts, path)
			if code != wantCode {
				t.Errorf("GET %s = %d, want %d", path, code, wantCode)
			}
			var doc storage.APIErrorDoc
			if err := json.Unmarshal([]byte(body), &doc); err != nil || doc.Error.Code == "" || doc.Error.Message == "" {
				t.Errorf("GET %s error body is not the envelope: %q", path, body)
			}
		}
	})

	t.Run("legacy aliases removed", func(t *testing.T) {
		job, _ := rec.Find("keeper")
		hash, err := store.Hash(chain.FilesNS, job.Result.OutputKey)
		if err != nil {
			t.Fatal(err)
		}
		// The deprecation window announced in the v1 migration is over:
		// the pre-v1 paths are plain 404s, not redirects or handlers.
		for _, legacy := range []string{"/api/matrix", "/api/plan", "/api/runs", "/blob/" + hash} {
			code, _, hdr := get(t, ts, legacy)
			if code != 404 {
				t.Errorf("GET %s = %d, want 404 (alias removed)", legacy, code)
			}
			if hdr.Get("Deprecation") != "" {
				t.Errorf("GET %s still carries a Deprecation header", legacy)
			}
		}
	})

	t.Run("blob headers", func(t *testing.T) {
		job, _ := rec.Find("keeper")
		hash, err := store.Hash(chain.FilesNS, job.Result.OutputKey)
		if err != nil {
			t.Fatal(err)
		}
		code, body, hdr := get(t, ts, "/api/v1/blob/"+hash)
		if code != 200 {
			t.Fatalf("GET v1 blob = %d", code)
		}
		if got := hdr.Get("Content-Length"); got != fmt.Sprint(len(body)) {
			t.Errorf("Content-Length = %q, body is %d bytes", got, len(body))
		}
		if cc := hdr.Get("Cache-Control"); !strings.Contains(cc, "immutable") {
			t.Errorf("Cache-Control = %q, want immutable", cc)
		}
		if hdr.Get("X-Content-SHA256") != hash || hdr.Get("ETag") != `"`+hash+`"` {
			t.Errorf("verification headers wrong: sha=%q etag=%q", hdr.Get("X-Content-SHA256"), hdr.Get("ETag"))
		}
		// HEAD answers with the same headers and no body.
		resp, err := ts.Client().Head(ts.URL + "/api/v1/blob/" + hash)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || resp.Header.Get("X-Content-SHA256") != hash {
			t.Errorf("HEAD blob = %d sha=%q", resp.StatusCode, resp.Header.Get("X-Content-SHA256"))
		}
		// Revalidating with the content-hash tag is a 304.
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/blob/"+hash, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", `"`+hash+`"`)
		resp, err = ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("conditional blob GET = %d, want 304", resp.StatusCode)
		}
	})

	t.Run("position", func(t *testing.T) {
		code, body, _ := get(t, ts, "/api/v1/position")
		var doc storage.PositionDoc
		if code != 200 || json.Unmarshal([]byte(body), &doc) != nil {
			t.Fatalf("GET /api/v1/position = %d %q", code, body)
		}
		if doc.Bindings == 0 {
			t.Errorf("position reports zero bindings on a populated store: %q", body)
		}
	})
}
