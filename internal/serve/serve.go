// Package serve implements the sp-system status service behind the
// spserve command: the paper's §3.3 "script-based web pages ... used to
// record and display available validation runs", served live from a
// durable common storage as HTML pages and a versioned JSON API.
//
// The package exists apart from cmd/spserve so the serving tier is
// load-testable from the repository's root benchmarks: BenchmarkServeHot
// drives Server.Handler straight against the 100k-run synth store.
//
// # The position-keyed cache contract
//
// Every dynamic response is derived purely from (a) the store's name
// history up to its current storage.Position — snapshot generation plus
// applied journal offset — and (b) the page templates, identified by
// report.SiteFormat. The journal is append-only within a generation and
// compaction bumps the generation, so a (Position, generation) pair
// never names two different histories; it is a sound strong validator.
// The server therefore:
//
//   - stamps each response with an ETag derived from (site format,
//     Position) — "sp<format>-g<gen>-o<off>-e<epoch>" — and answers
//     If-None-Match revalidations with 304 before touching the
//     bookkeeping index or any template: a steady-state poll costs
//     header parsing plus the throttled (and position-short-circuited)
//     Refresh;
//   - keeps a bounded LRU of rendered bodies keyed on (route, params,
//     validator, content coding). The key embeds the validator, so a
//     Refresh that observes a new position invalidates every cached
//     body implicitly — entries under dead validators age out of the
//     LRU; nothing is ever served stale;
//   - caches per-run pages under an "imm<epoch>" key instead: run
//     records are immutable, so the page never changes while the store
//     lives. The epoch increments only when the served history
//     *regresses* (the store was torn down and recreated, or compacted
//     backwards), which also purges the cache — validators from the
//     old history can never match the new one.
//
// The validator is sampled before the body is rendered, mirroring the
// under-claim discipline of Index.Refresh and the /names pages: under a
// live writer a body can be newer than its ETag claims, never older,
// and the next poll re-converges.
//
// Stores without positional history (the in-memory backend) fall back
// to a served-content revision counter bumped whenever a refresh
// observes a different (run count, plan binding) fingerprint.
//
// # The /events push vocabulary
//
// GET /events is a Server-Sent Events stream. Each event's data is a
// JSON object carrying total_runs and (when the store has positional
// history) the current position. Types:
//
//	run-recorded        a refresh observed the indexed run count grow
//	plan-recorded       the latest campaign plan binding changed
//	generation-changed  the store compacted into a new snapshot
//	                    generation (or was recreated)
//
// Comment lines (": heartbeat") flow on the refresh cadence through the
// cron clock seam, keeping intermediaries from idling the connection
// out and driving the refresh that detects events even when no page
// traffic arrives.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bookkeep"
	"repro/internal/buildsys"
	"repro/internal/campaign"
	"repro/internal/chain"
	"repro/internal/cron"
	"repro/internal/report"
	"repro/internal/storage"
)

// Options configures a Server beyond the store it serves.
type Options struct {
	// Title is the HTML page and JSON matrix title.
	Title string
	// RefreshEvery bounds how often the store is re-tailed: at most one
	// refresh per interval, taken lazily on request arrival (0: every
	// request). It is also the /events heartbeat cadence.
	RefreshEvery time.Duration
	// CacheEntries bounds the render cache: 0 means the default
	// (defaultCacheEntries), negative disables caching entirely (every
	// request renders; conditional serving still works).
	CacheEntries int
}

// FollowStatus is the /healthz follow block a replica reports. LagBytes
// is the span of source journal the replica has not yet covered
// (generation-matched byte offsets); -1 means the lag is momentarily
// incomparable — the source compacted into a new generation, or it
// cannot be reached — and the next sync re-converges.
type FollowStatus struct {
	Source string `json:"source"`
	Every  string `json:"every"`
	Syncs  int    `json:"syncs"`
	// SkippedSyncs counts cadence ticks short-circuited because the
	// primary's /position had not moved since the last completed sync —
	// converged ticks that cost one probe instead of a full name walk.
	SkippedSyncs int    `json:"skipped_syncs"`
	LagBytes     int64  `json:"lag_bytes"`
	SourceErr    string `json:"source_error,omitempty"`
	LastSyncErr  string `json:"last_sync_error,omitempty"`
}

// FollowReporter is implemented by the replication loop (cmd/spserve's
// follower); /healthz surfaces its status on replicas.
type FollowReporter interface {
	FollowStatus() FollowStatus
}

// Server holds the read view, the incremental index over it, the
// refresh throttle, the render cache and the event broadcaster. It is
// safe for concurrent request handling: the store view and index are
// individually thread-safe, the cache and broadcaster carry their own
// mutexes, and the refresh/validator state sits behind s.mu.
type Server struct {
	store *storage.Store
	index *bookkeep.Index
	title string
	// follow is non-nil in follower mode; /healthz surfaces its
	// replication status. Set via SetFollow before serving.
	follow FollowReporter

	refreshEvery time.Duration
	// now is the clock source behind the refresh throttle: cron.Wall()
	// in production, a hand-advanced function in tests (the same seam
	// shape as cron.Driver), so throttle behavior is testable without
	// sleeping.
	now func() time.Time
	// cache is the bounded render cache; nil when disabled.
	cache *renderCache
	// events fans refresh-detected changes out to /events subscribers.
	events *broadcaster
	// newHeartbeat builds one /events connection's tick source:
	// cron.Driver on the refresh cadence in production, a channel-fed
	// stub in tests so SSE timing is driven without sleeping.
	newHeartbeat func() waitFunc

	// Serving-tier counters, exposed on /healthz. indexQueries counts
	// request-path index accesses (through idx); the conditional-GET
	// fast path must never bump it or renders — pinned by test.
	indexQueries atomic.Int64
	renders      atomic.Int64
	hits         atomic.Int64
	misses       atomic.Int64
	notModified  atomic.Int64

	mu          sync.Mutex
	lastRefresh time.Time // guarded by mu
	lastErr     error     // guarded by mu
	// planRec and planNotes cache the store's latest recorded campaign
	// plan, reloaded inside the throttled refresh so matrix-page and
	// /api/v1/plan traffic never pays a store read per request.
	planRec   *campaign.PlanRecord // guarded by mu
	planNotes map[string]string    // guarded by mu
	// servedPos is the position key every validator and cache key hangs
	// off: the store position the served state is known to cover,
	// sampled by the last refresh *before* the index caught up (the
	// under-claim direction).
	servedPos   storage.Position // guarded by mu
	servedPosOK bool             // guarded by mu
	// servedRev is the content-fingerprint fallback validator for
	// positionless (in-memory) stores, bumped when a refresh observes a
	// changed fingerprint.
	servedRev int64 // guarded by mu
	// epoch increments when the served history regresses (store torn
	// down and recreated); it is folded into every validator so tags
	// minted against the old history can never match the new one.
	epoch int64 // guarded by mu
	// lastTotal and lastPlanHash are the change-detection fingerprint
	// the refresh diffs to emit /events and advance servedRev.
	lastTotal    int    // guarded by mu
	lastPlanHash string // guarded by mu
}

// New builds a Server over any Store (the read-only disk view in
// production, an in-memory store in tests) with the index fully loaded
// and the default cache size.
func New(store *storage.Store, title string, refreshEvery time.Duration) (*Server, error) {
	return NewWith(store, Options{Title: title, RefreshEvery: refreshEvery})
}

// NewWith is New with explicit Options.
func NewWith(store *storage.Store, o Options) (*Server, error) {
	x, err := bookkeep.BuildIndex(store)
	if err != nil {
		return nil, err
	}
	now := cron.Wall()
	s := &Server{
		store:        store,
		index:        x,
		title:        o.Title,
		refreshEvery: o.RefreshEvery,
		now:          now,
		lastRefresh:  now(),
		cache:        newRenderCache(o.CacheEntries),
		events:       newBroadcaster(),
	}
	every := o.RefreshEvery
	if every <= 0 {
		every = time.Second
	}
	s.newHeartbeat = driverHeartbeat(every)
	s.reloadPlanLocked()
	s.servedPos, s.servedPosOK = store.Position()
	s.lastTotal = x.TotalRuns()
	s.lastPlanHash = s.planHash()
	return s, nil
}

// SetFollow attaches the replication reporter /healthz surfaces. Call
// before serving.
func (s *Server) SetFollow(f FollowReporter) { s.follow = f }

// TotalRuns reports the indexed run count (startup logging).
func (s *Server) TotalRuns() int { return s.index.TotalRuns() }

// idx returns the bookkeeping index for request-path queries, counting
// the access. The conditional-GET fast path and the refresh internals
// must not go through here: a 304 performs zero index queries (pinned
// by test), and the refresh's own position compare is the sanctioned
// steady-state cost.
func (s *Server) idx() *bookkeep.Index {
	s.indexQueries.Add(1)
	return s.index
}

// planHash resolves the latest-plan binding's content hash — the cheap
// plan-change fingerprint ("" when no plan is recorded).
func (s *Server) planHash() string {
	hash, err := s.store.Hash(campaign.PlanNS, campaign.LatestPlanKey)
	if err != nil {
		return ""
	}
	return hash
}

// refresh re-tails the store and catches the index up, at most once per
// refreshEvery. A refresh failure is remembered for /healthz but does
// not take pages down — the service keeps answering from its last good
// state. When the journal position has not moved the call stops after
// the position compare: no plan reload, no event diffing.
func (s *Server) refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.refreshEvery > 0 && s.now().Sub(s.lastRefresh) < s.refreshEvery {
		return
	}
	s.lastRefresh = s.now()
	if err := s.store.Refresh(); err != nil {
		s.lastErr = err
		return
	}
	// The position is sampled *before* the index catches up: the
	// validator may under-claim (a run landing mid-catch-up is served
	// but not yet claimed by the ETag) but never over-claim — the same
	// discipline as Index.Refresh and the /names pages.
	pos, posOK := s.store.Position()
	s.lastErr = s.index.Refresh()
	if posOK && s.servedPosOK && pos == s.servedPos && s.lastErr == nil {
		return // journal unmoved: nothing changed behind this position
	}
	s.reloadPlanLocked()
	s.observeLocked(pos, posOK)
}

// observeLocked diffs the freshly refreshed state against the last
// served fingerprint: it advances the validator, publishes /events and
// handles history regression. The caller holds s.mu.
func (s *Server) observeLocked(pos storage.Position, posOK bool) {
	total := s.index.TotalRuns()
	planHash := s.planHash()
	regressed := posOK && s.servedPosOK &&
		(pos.Generation < s.servedPos.Generation ||
			(pos.Generation == s.servedPos.Generation && pos.Offset < s.servedPos.Offset))
	if regressed || total < s.lastTotal {
		// The history shrank under us — the store was torn down and
		// recreated. Fold a new epoch into every validator (the new
		// history could coincidentally reach the old one's position) and
		// drop every cached body.
		s.epoch++
		s.servedRev++
		s.cache.purge()
	}
	data := EventData{TotalRuns: total}
	if posOK {
		p := pos
		data.Position = &p
	}
	if total > s.lastTotal {
		s.events.publish(Event{Type: EventRunRecorded, Data: data})
	}
	if planHash != s.lastPlanHash {
		s.events.publish(Event{Type: EventPlanRecorded, Data: data})
	}
	if posOK && s.servedPosOK && pos.Generation != s.servedPos.Generation {
		s.events.publish(Event{Type: EventGenerationChanged, Data: data})
	}
	if !posOK && (total != s.lastTotal || planHash != s.lastPlanHash) {
		s.servedRev++
	}
	s.servedPos, s.servedPosOK = pos, posOK
	s.lastTotal, s.lastPlanHash = total, planHash
}

// reloadPlanLocked refreshes the cached producer plan and its per-cell
// note map. The caller holds s.mu (or, in NewWith, sole ownership).
// A plan load *failure* (corrupt record) keeps the last good plan —
// freshness annotations go stale rather than taking pages down — but a
// store that simply has no plan clears the cache: the read view
// survives the store being torn down and recreated (Store.Refresh
// reloads it), and the old store's plan must not describe the new
// store's cells.
func (s *Server) reloadPlanLocked() {
	plan, err := campaign.LoadLatestPlan(s.store)
	if err != nil {
		return
	}
	if plan == nil {
		s.planRec, s.planNotes = nil, nil
		return
	}
	notes := make(map[string]string, len(plan.Cells))
	for _, c := range plan.Cells {
		if c.Decision == "skip" {
			// An executed cell outranks a skipped one when a plan
			// touches the same (experiment, config, externals) twice.
			if _, dup := notes[c.Key()]; !dup {
				notes[c.Key()] = "up-to-date (" + c.PriorRunID + ")"
			}
		} else {
			notes[c.Key()] = "revalidated"
		}
	}
	s.planRec, s.planNotes = plan, notes
}

// validatorCore returns the ETag/cache-key core for the current served
// state: position-keyed when the store has positional history, the
// served-content revision otherwise. The immutable form (per-run
// pages) depends only on the epoch.
func (s *Server) validatorCore(immutable bool) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if immutable {
		return "sp" + report.SiteFormat() + "-imm" + strconv.FormatInt(s.epoch, 10)
	}
	if s.servedPosOK {
		return fmt.Sprintf("sp%s-g%d-o%d-e%d",
			report.SiteFormat(), s.servedPos.Generation, s.servedPos.Offset, s.epoch)
	}
	return "sp" + report.SiteFormat() + "-r" + strconv.FormatInt(s.servedRev, 10)
}

// rendered is one render closure's output. A nil return means the
// closure already wrote its own (error) response.
type rendered struct {
	body  []byte
	ctype string
	// volatile marks a body that may still change at this same position
	// key — a run page whose kept artifact is not yet visible through
	// the read view. It is served without a validator and never cached,
	// so it converges as soon as the artifact lands.
	volatile bool
}

// serveCached is the conditional-GET + render-cache front every dynamic
// route goes through: refresh, validator, If-None-Match short-circuit,
// cache probe, render, negotiate gzip, store, write — in that order, so
// a 304 touches neither the index nor a template and a cache hit costs
// one map lookup.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, immutable bool, render func(http.ResponseWriter) *rendered) {
	s.refresh()
	core := s.validatorCore(immutable)
	w.Header().Set("Vary", "Accept-Encoding")
	idTag, gzTag := `"`+core+`"`, `"`+core+`+gzip"`
	if tag, ok := storage.NoneMatch(r, idTag, gzTag); ok {
		s.notModified.Add(1)
		w.Header().Set("ETag", tag)
		w.Header().Set("Cache-Control", cacheControlFor(immutable))
		w.WriteHeader(http.StatusNotModified)
		return
	}
	wantGzip := storage.AcceptsGzip(r)
	enc := "id"
	if wantGzip {
		enc = "gz"
	}
	ck := key + "|" + core + "|" + enc
	if e, ok := s.cache.get(ck); ok {
		s.hits.Add(1)
		writeRendered(w, e)
		return
	}
	s.misses.Add(1)
	out := render(w)
	if out == nil {
		return
	}
	s.renders.Add(1)
	e := &cacheEntry{body: out.body, ctype: out.ctype, etag: idTag, immutable: immutable}
	if wantGzip && len(out.body) >= storage.GzipMinSize {
		if gz, err := storage.GzipBytes(out.body); err == nil && len(gz) < len(out.body) {
			e.body, e.gzipped, e.etag = gz, true, gzTag
		}
	}
	if out.volatile {
		e.etag = ""
	} else {
		s.cache.put(ck, e)
	}
	writeRendered(w, e)
}

// cacheControlFor picks the Cache-Control policy: immutable routes
// (per-run pages — a run ID is minted once and its record never
// rewritten) get the blob route's year-long immutable directive, so
// downstream caches stop revalidating entirely; everything else is
// no-cache — hold it, but revalidate (the ETag makes that a 304).
func cacheControlFor(immutable bool) string {
	if immutable {
		return "public, max-age=31536000, immutable"
	}
	return "no-cache"
}

// writeRendered writes one (possibly cached) body with its negotiated
// headers.
func writeRendered(w http.ResponseWriter, e *cacheEntry) {
	w.Header().Set("Content-Type", e.ctype)
	if e.etag != "" {
		w.Header().Set("ETag", e.etag)
		w.Header().Set("Cache-Control", cacheControlFor(e.immutable))
	}
	if e.gzipped {
		w.Header().Set("Content-Encoding", "gzip")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(e.body)))
	w.Write(e.body)
}

// Handler wires the endpoint table (DESIGN.md holds the same table with
// the compatibility policy). Path parameters are parsed by hand,
// keeping the mux compatible with every supported Go version. The
// store-level routes (blob/names/blobs/position) come from the storage
// package's APIHandler — the same handler the remote backend is the
// client of — wired to this server's throttled refresh; the exact
// patterns for matrix/plan/runs win over the /api/v1/ subtree mount.
// The pre-v1 aliases (/blob/, /api/matrix, /api/plan, /api/runs) served
// their one deprecation release and are gone.
func (s *Server) Handler() http.Handler {
	api := storage.NewAPIHandler(s.store, s.refresh)
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.serveMatrix)
	mux.HandleFunc("/runs/", s.serveRun)
	mux.HandleFunc("/diff/", s.serveDiff)
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.HandleFunc("/events", s.serveEvents)

	// The versioned JSON surface.
	mux.Handle("/api/v1/", http.StripPrefix("/api/v1", api))
	mux.HandleFunc("/api/v1/matrix", s.serveAPIMatrix)
	mux.HandleFunc("/api/v1/plan", s.serveAPIPlan)
	mux.HandleFunc("/api/v1/runs", s.serveAPIRuns)
	return mux
}

const htmlType = "text/html; charset=utf-8"

func (s *Server) serveMatrix(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r) // the catch-all pattern must not answer for arbitrary paths
		return
	}
	s.serveCached(w, r, "/", false, func(w http.ResponseWriter) *rendered {
		x := s.idx()
		page, err := report.HTMLMatrixNoted(s.title, x.Matrix(), x.TotalRuns(),
			func(runID string) string { return "/runs/" + runID }, s.planNote())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return nil
		}
		return &rendered{body: []byte(page), ctype: htmlType}
	})
}

// pathParam extracts the single path parameter after prefix, rejecting
// empty values and further slashes.
func pathParam(path, prefix string) (string, bool) {
	p := strings.TrimPrefix(path, prefix)
	if p == "" || strings.Contains(p, "/") {
		return "", false
	}
	return p, true
}

func (s *Server) serveRun(w http.ResponseWriter, r *http.Request) {
	id, ok := pathParam(r.URL.Path, "/runs/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	// Run records are immutable: the page caches under the epoch key and
	// keeps revalidating to 304 for as long as the store lives.
	s.serveCached(w, r, "/runs/"+id, true, func(w http.ResponseWriter) *rendered {
		rec, err := s.idx().Run(id)
		if err != nil {
			http.NotFound(w, r)
			return nil
		}
		// Output links are content-addressed: resolve each kept
		// artifact's storage key to its blob hash at render time, so the
		// link stays valid forever even if the key were ever rebound.
		// Chain tests keep outputs in the files namespace; build jobs
		// keep their tarballs in the artifacts namespace.
		volatile := false
		page, err := report.HTMLRunLinked(rec, func(key string) string {
			for _, ns := range []string{chain.FilesNS, buildsys.ArtifactNS} {
				if hash, err := s.store.Hash(ns, key); err == nil {
					return "/api/v1/blob/" + hash
				}
			}
			volatile = true
			return "" // not yet visible through the read view: no link
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return nil
		}
		return &rendered{body: []byte(page), ctype: htmlType, volatile: volatile}
	})
}

func (s *Server) serveDiff(w http.ResponseWriter, r *http.Request) {
	id, ok := pathParam(r.URL.Path, "/diff/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	// Not immutable: the diff target is the run's *latest successful
	// predecessor*, which changes as the campaign records runs.
	s.serveCached(w, r, "/diff/"+id, false, func(w http.ResponseWriter) *rendered {
		x := s.idx()
		rec, err := x.Run(id)
		if err != nil {
			http.NotFound(w, r)
			return nil
		}
		var body string
		if d, err := x.DiffAgainstLastSuccess(rec); err != nil {
			// The run exists but has no successful predecessor — a normal
			// state for the first runs of an experiment, not a 404.
			body = fmt.Sprintf("no baseline for %s: %v\n", id, err)
		} else {
			body = report.TextDiff(d)
		}
		return &rendered{body: []byte(body), ctype: "text/plain; charset=utf-8"}
	})
}

// planNote maps the cached producer plan onto matrix cells:
// "up-to-date (run-NNNN)" for cells the producer skipped,
// "revalidated" for cells it executed. It returns nil (no freshness
// column) when the store carries no plan — e.g. one recorded before the
// planner existed.
func (s *Server) planNote() func(bookkeep.Cell) string {
	s.mu.Lock()
	notes := s.planNotes
	s.mu.Unlock()
	if notes == nil {
		return nil
	}
	return func(c bookkeep.Cell) string {
		return notes[campaign.CellKey(c.Experiment, c.Config, c.Externals)]
	}
}

func (s *Server) serveAPIPlan(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "/api/v1/plan", false, func(w http.ResponseWriter) *rendered {
		s.mu.Lock()
		plan := s.planRec
		s.mu.Unlock()
		if plan == nil {
			storage.WriteAPIError(w, http.StatusNotFound, "not_found", "no campaign plan recorded")
			return nil
		}
		body, err := json.Marshal(plan)
		if err != nil {
			storage.WriteAPIError(w, http.StatusInternalServerError, "internal", err.Error())
			return nil
		}
		return &rendered{body: append(body, '\n'), ctype: "application/json"}
	})
}

func (s *Server) serveAPIMatrix(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "/api/v1/matrix", false, func(w http.ResponseWriter) *rendered {
		x := s.idx()
		body, err := json.Marshal(struct {
			Title     string          `json:"title"`
			TotalRuns int             `json:"total_runs"`
			Cells     []bookkeep.Cell `json:"cells"`
		}{s.title, x.TotalRuns(), x.Matrix()})
		if err != nil {
			storage.WriteAPIError(w, http.StatusInternalServerError, "internal", err.Error())
			return nil
		}
		return &rendered{body: append(body, '\n'), ctype: "application/json"}
	})
}

// runSummary is one /api/v1/runs entry.
type runSummary struct {
	RunID       string `json:"run_id"`
	Description string `json:"description"`
	Experiment  string `json:"experiment"`
	Config      string `json:"config"`
	Externals   string `json:"externals"`
	Revision    int    `json:"revision"`
	Timestamp   int64  `json:"timestamp"`
	Jobs        int    `json:"jobs"`
	Passed      bool   `json:"passed"`
}

// Pagination bounds for /api/v1/runs: the default page, and the hard
// cap a client-supplied limit is clamped to. No request can make the
// service serialize the full run list of a long-lived archive.
const (
	defaultRunsLimit = 500
	maxRunsLimit     = 5000
)

// parseRunsQuery extracts limit/after/experiment from the request, with
// clamped defaults.
func parseRunsQuery(r *http.Request) (limit int, after, experiment string) {
	q := r.URL.Query()
	limit = defaultRunsLimit
	if v := q.Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = n
		}
	}
	if limit > maxRunsLimit {
		limit = maxRunsLimit
	}
	return limit, q.Get("after"), q.Get("experiment")
}

// serveAPIRuns answers the paged run listing: up to `limit` runs
// (default 500, capped) strictly after the `after` cursor, in execution
// order, with `next_after` carrying the cursor for the following page
// ("" on the last page). `experiment` restricts the walk to one
// experiment's runs via its per-experiment cursor. The cache key folds
// in the canonicalized query, so each page caches independently.
func (s *Server) serveAPIRuns(w http.ResponseWriter, r *http.Request) {
	key := "/api/v1/runs"
	if q := r.URL.Query().Encode(); q != "" {
		key += "?" + q
	}
	s.serveCached(w, r, key, false, func(w http.ResponseWriter) *rendered {
		limit, after, experiment := parseRunsQuery(r)
		x := s.idx()
		var metas []*bookkeep.RunMeta
		var next string
		total := x.TotalRuns()
		if experiment != "" {
			metas, next = x.RunsForPage(experiment, "", after, limit)
			total = x.TotalRunsFor(experiment)
		} else {
			metas, next = x.RunsPage(after, limit)
		}
		out := make([]runSummary, len(metas))
		for i, m := range metas {
			out[i] = runSummary{
				RunID: m.RunID, Description: m.Description, Experiment: m.Experiment,
				Config: m.Config, Externals: m.Externals, Revision: m.Revision,
				Timestamp: m.Timestamp, Jobs: m.Jobs, Passed: m.Passed,
			}
		}
		body, err := json.Marshal(struct {
			Runs      []runSummary `json:"runs"`
			Total     int          `json:"total"` // runs in the listing's scope (the experiment's when filtered)
			NextAfter string       `json:"next_after,omitempty"`
		}{out, total, next})
		if err != nil {
			storage.WriteAPIError(w, http.StatusInternalServerError, "internal", err.Error())
			return nil
		}
		return &rendered{body: append(body, '\n'), ctype: "application/json"}
	})
}

// cacheStatsDoc is the /healthz serving-tier block.
type cacheStatsDoc struct {
	Entries     int   `json:"entries"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Renders     int64 `json:"renders"`
	NotModified int64 `json:"not_modified"`
	Evictions   int64 `json:"evictions"`
}

// healthDoc is the /healthz body. Position carries the served store's
// journal position + snapshot generation (absent on stores without
// positional history); Follow appears on replicas; Cache reports the
// serving tier's render-cache and conditional-GET counters.
type healthDoc struct {
	Status   string            `json:"status"`
	Runs     int               `json:"runs"`
	Position *storage.Position `json:"position,omitempty"`
	Follow   *FollowStatus     `json:"follow,omitempty"`
	Cache    *cacheStatsDoc    `json:"cache,omitempty"`
	Leases   *leaseStatsDoc    `json:"leases,omitempty"`
	LastErr  string            `json:"last_error,omitempty"`
}

// leaseStatsDoc is the /healthz distributed-execution block, derived
// from the store's cell lease records: how many cells are being
// executed right now (and by whom), how many holders have gone silent
// past their deadline, and how much stealing the campaign has needed.
// Absent entirely when the store carries no leases (no distributed
// campaign has touched it).
type leaseStatsDoc struct {
	Held     int `json:"held"`
	Expired  int `json:"expired"`
	Done     int `json:"done"`
	Released int `json:"released"`
	Steals   int `json:"steals"`
	// Workers maps each worker to the cells it has completed — the
	// per-worker progress view of a distributed campaign.
	Workers map[string]int `json:"workers,omitempty"`
}

// serveHealthz is deliberately uncached and validator-free: it is the
// monitoring probe, and its position/lag content must always be live.
func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	s.refresh()
	s.mu.Lock()
	lastErr := s.lastErr
	s.mu.Unlock()
	doc := healthDoc{Status: "ok", Runs: s.index.TotalRuns()}
	code := http.StatusOK
	if lastErr != nil {
		// Still serving (from the last good state), but stale: say so.
		doc.Status, code, doc.LastErr = "degraded", http.StatusServiceUnavailable, lastErr.Error()
	}
	if pos, ok := s.store.Position(); ok {
		doc.Position = &pos
	}
	entries, evictions := s.cache.stats()
	doc.Cache = &cacheStatsDoc{
		Entries:     entries,
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Renders:     s.renders.Load(),
		NotModified: s.notModified.Load(),
		Evictions:   evictions,
	}
	if recs := campaign.LoadLeases(s.store); len(recs) > 0 {
		lsum := campaign.SummarizeLeases(recs, s.now())
		doc.Leases = &leaseStatsDoc{
			Held:     lsum.Held,
			Expired:  lsum.Expired,
			Done:     lsum.Done,
			Released: lsum.Released,
			Steals:   lsum.Steals,
			Workers:  lsum.Workers,
		}
	}
	if s.follow != nil {
		fs := s.follow.FollowStatus()
		doc.Follow = &fs
		if fs.LastSyncErr != "" && doc.Status == "ok" {
			// The replica serves its last good state, but it is falling
			// behind: degraded, same as a failed re-tail.
			doc.Status, code = "degraded", http.StatusServiceUnavailable
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(doc)
}
