package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/cron"
	"repro/internal/storage"
)

// The /events vocabulary. All three are detected by the refresh's
// position/fingerprint diff (observeLocked); the package doc lists
// their meaning.
const (
	EventRunRecorded       = "run-recorded"
	EventPlanRecorded      = "plan-recorded"
	EventGenerationChanged = "generation-changed"
)

// EventData is every event's JSON payload.
type EventData struct {
	TotalRuns int `json:"total_runs"`
	// Position is the served store's position after the change; absent
	// on stores without positional history.
	Position *storage.Position `json:"position,omitempty"`
}

// Event is one /events emission. ID is the stream-wide sequence number
// (1-based, assigned at publish) the SSE wire format exposes as the
// `id:` field, which browsers echo back as Last-Event-ID on reconnect.
type Event struct {
	ID   uint64
	Type string
	Data EventData
}

// eventReplayLimit bounds the broadcaster's replay ring: a reconnecting
// client can recover at most this many missed events. A client further
// behind gets whatever the ring still holds and re-converges through
// its next conditional poll — SSE here is a nudge, not a reliable log,
// and the ring only has to cover ordinary reconnect windows.
const eventReplayLimit = 256

// broadcaster fans events out to the live /events connections and keeps
// the bounded replay ring that makes reconnects resumable. Publish
// never blocks: a subscriber whose buffer is full misses the event live
// but can recover it from the ring on its next reconnect.
type broadcaster struct {
	mu     sync.Mutex
	subs   map[chan Event]struct{} // guarded by mu
	nextID uint64                  // guarded by mu; ID the next publish assigns
	ring   []Event                 // guarded by mu; the last ≤eventReplayLimit events, oldest first
}

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[chan Event]struct{}), nextID: 1}
}

// subscribe registers a live subscriber. lastID carries the client's
// Last-Event-ID (0: a fresh connection); the returned slice holds the
// ring's events after it, to be written before any live event — the
// registration and the replay snapshot happen under one lock, so no
// event falls between them.
func (b *broadcaster) subscribe(lastID uint64) (chan Event, []Event) {
	ch := make(chan Event, 16)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs[ch] = struct{}{}
	var replay []Event
	if lastID > 0 {
		for _, ev := range b.ring {
			if ev.ID > lastID {
				replay = append(replay, ev)
			}
		}
	}
	return ch, replay
}

func (b *broadcaster) unsubscribe(ch chan Event) {
	b.mu.Lock()
	delete(b.subs, ch)
	b.mu.Unlock()
}

func (b *broadcaster) publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ev.ID = b.nextID
	b.nextID++
	b.ring = append(b.ring, ev)
	if len(b.ring) > eventReplayLimit {
		b.ring = b.ring[len(b.ring)-eventReplayLimit:]
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
		default: // slow consumer: drop, the ring covers its reconnect
		}
	}
}

// waitFunc blocks until the next /events heartbeat tick; false ends the
// connection's tick loop (stop closed or the cadence cannot fire).
type waitFunc func(stop <-chan struct{}) bool

// driverHeartbeat builds per-connection tick sources on the given
// cadence through the cron clock seam — the only real-time surface the
// serving tier touches. Tests substitute a channel-fed stub on the
// Server field instead of sleeping.
func driverHeartbeat(every time.Duration) func() waitFunc {
	return func() waitFunc {
		next, err := cron.Every(every)
		if err != nil {
			return func(<-chan struct{}) bool { return false }
		}
		d := cron.NewDriver(next)
		return func(stop <-chan struct{}) bool {
			_, ok, werr := d.Wait(stop)
			return ok && werr == nil
		}
	}
}

// writeSSE emits one event in the text/event-stream wire format. The
// id field makes the stream resumable: browsers send the last seen id
// back as Last-Event-ID when EventSource auto-reconnects.
func writeSSE(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev.Data)
	if err != nil {
		return err
	}
	if ev.ID > 0 {
		_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, data)
	} else {
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	}
	return err
}

// lastEventID parses the reconnecting client's Last-Event-ID header
// (0: none, or unparseable — treated as a fresh connection).
func lastEventID(r *http.Request) uint64 {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		return 0
	}
	id, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// serveEvents is the SSE push endpoint. Each heartbeat tick drives the
// same throttled refresh the page routes share, so an idle service
// with zero page traffic still detects a writer's appends within one
// interval; events the refresh publishes are flushed before the
// heartbeat comment so clients see cause before keep-alive.
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	s.refresh()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if _, err := io.WriteString(w, ": stream open\n\n"); err != nil {
		return
	}
	fl.Flush()

	// A reconnect carrying Last-Event-ID resumes: events it missed are
	// replayed from the ring before anything live.
	ch, replay := s.events.subscribe(lastEventID(r))
	defer s.events.unsubscribe(ch)
	for _, ev := range replay {
		if writeSSE(w, ev) != nil {
			return
		}
	}
	if len(replay) > 0 {
		fl.Flush()
	}
	stop := make(chan struct{})
	defer close(stop)
	ticks := make(chan struct{})
	wait := s.newHeartbeat()
	go func() {
		for wait(stop) {
			select {
			case ticks <- struct{}{}:
			case <-stop:
				return
			}
		}
	}()

	done := r.Context().Done()
	for {
		select {
		case <-done:
			return
		case ev := <-ch:
			if writeSSE(w, ev) != nil {
				return
			}
			fl.Flush()
		case <-ticks:
			s.refresh()
			// Drain whatever that refresh detected before heartbeating.
			for drained := false; !drained; {
				select {
				case ev := <-ch:
					if writeSSE(w, ev) != nil {
						return
					}
				default:
					drained = true
				}
			}
			if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
