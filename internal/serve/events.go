package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/cron"
	"repro/internal/storage"
)

// The /events vocabulary. All three are detected by the refresh's
// position/fingerprint diff (observeLocked); the package doc lists
// their meaning.
const (
	EventRunRecorded       = "run-recorded"
	EventPlanRecorded      = "plan-recorded"
	EventGenerationChanged = "generation-changed"
)

// EventData is every event's JSON payload.
type EventData struct {
	TotalRuns int `json:"total_runs"`
	// Position is the served store's position after the change; absent
	// on stores without positional history.
	Position *storage.Position `json:"position,omitempty"`
}

// Event is one /events emission.
type Event struct {
	Type string
	Data EventData
}

// broadcaster fans events out to the live /events connections. Publish
// never blocks: a subscriber whose buffer is full misses the event and
// re-converges through its next conditional poll — SSE here is a nudge,
// not a reliable log.
type broadcaster struct {
	mu   sync.Mutex
	subs map[chan Event]struct{} // guarded by mu
}

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[chan Event]struct{})}
}

func (b *broadcaster) subscribe() chan Event {
	ch := make(chan Event, 16)
	b.mu.Lock()
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch
}

func (b *broadcaster) unsubscribe(ch chan Event) {
	b.mu.Lock()
	delete(b.subs, ch)
	b.mu.Unlock()
}

func (b *broadcaster) publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for ch := range b.subs {
		select {
		case ch <- ev:
		default: // slow consumer: drop, the next poll re-converges
		}
	}
}

// waitFunc blocks until the next /events heartbeat tick; false ends the
// connection's tick loop (stop closed or the cadence cannot fire).
type waitFunc func(stop <-chan struct{}) bool

// driverHeartbeat builds per-connection tick sources on the given
// cadence through the cron clock seam — the only real-time surface the
// serving tier touches. Tests substitute a channel-fed stub on the
// Server field instead of sleeping.
func driverHeartbeat(every time.Duration) func() waitFunc {
	return func() waitFunc {
		next, err := cron.Every(every)
		if err != nil {
			return func(<-chan struct{}) bool { return false }
		}
		d := cron.NewDriver(next)
		return func(stop <-chan struct{}) bool {
			_, ok, werr := d.Wait(stop)
			return ok && werr == nil
		}
	}
}

// writeSSE emits one event in the text/event-stream wire format.
func writeSSE(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev.Data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	return err
}

// serveEvents is the SSE push endpoint. Each heartbeat tick drives the
// same throttled refresh the page routes share, so an idle service
// with zero page traffic still detects a writer's appends within one
// interval; events the refresh publishes are flushed before the
// heartbeat comment so clients see cause before keep-alive.
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	s.refresh()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if _, err := io.WriteString(w, ": stream open\n\n"); err != nil {
		return
	}
	fl.Flush()

	ch := s.events.subscribe()
	defer s.events.unsubscribe(ch)
	stop := make(chan struct{})
	defer close(stop)
	ticks := make(chan struct{})
	wait := s.newHeartbeat()
	go func() {
		for wait(stop) {
			select {
			case ticks <- struct{}{}:
			case <-stop:
				return
			}
		}
	}()

	done := r.Context().Done()
	for {
		select {
		case <-done:
			return
		case ev := <-ch:
			if writeSSE(w, ev) != nil {
				return
			}
			fl.Flush()
		case <-ticks:
			s.refresh()
			// Drain whatever that refresh detected before heartbeating.
			for drained := false; !drained; {
				select {
				case ev := <-ch:
					if writeSSE(w, ev) != nil {
						return
					}
				default:
					drained = true
				}
			}
			if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
