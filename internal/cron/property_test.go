package cron

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// TestNextMatchesProperty: for random simple schedules and random start
// instants, Next returns an instant strictly after the input that the
// schedule matches, and no earlier minute in between matches.
func TestNextMatchesProperty(t *testing.T) {
	f := func(minuteByte, hourByte uint8, dayOffset uint16) bool {
		minute := int(minuteByte) % 60
		hour := int(hourByte) % 24
		s, err := Parse(fmt.Sprintf("%d %d * * *", minute, hour))
		if err != nil {
			return false
		}
		start := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC).
			Add(time.Duration(dayOffset) * time.Hour)
		next, err := s.Next(start)
		if err != nil {
			return false
		}
		if !next.After(start) || !s.Matches(next) {
			return false
		}
		// Nothing in (start, next) matches; scan bounded to one day.
		for cur := start.Truncate(time.Minute).Add(time.Minute); cur.Before(next); cur = cur.Add(time.Minute) {
			if s.Matches(cur) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestStepFieldProperty: a */k minute schedule matches exactly the
// minutes divisible by k.
func TestStepFieldProperty(t *testing.T) {
	f := func(kByte uint8, minuteByte uint8) bool {
		k := int(kByte)%29 + 1
		s, err := Parse(fmt.Sprintf("*/%d * * * *", k))
		if err != nil {
			return false
		}
		minute := int(minuteByte) % 60
		at := time.Date(2013, 5, 5, 5, minute, 0, 0, time.UTC)
		return s.Matches(at) == (minute%k == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
