package cron

import (
	"testing"
	"time"
)

func at(y int, m time.Month, d, hh, mm int) time.Time {
	return time.Date(y, m, d, hh, mm, 0, 0, time.UTC)
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"* * * *",
		"* * * * * *",
		"60 * * * *",
		"* 24 * * *",
		"* * 0 * *",
		"* * * 13 *",
		"* * * * 7",
		"a * * * *",
		"*/0 * * * *",
		"5-1 * * * *",
		"1-99 * * * *",
	}
	for _, expr := range bad {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", expr)
		}
	}
}

func TestMatchesSimple(t *testing.T) {
	s := MustParse("30 2 * * *") // 02:30 daily
	if !s.Matches(at(2013, 6, 10, 2, 30)) {
		t.Error("02:30 should match")
	}
	if s.Matches(at(2013, 6, 10, 2, 31)) {
		t.Error("02:31 should not match")
	}
	if s.Matches(at(2013, 6, 10, 3, 30)) {
		t.Error("03:30 should not match")
	}
}

func TestMatchesStep(t *testing.T) {
	s := MustParse("*/15 * * * *")
	for _, mm := range []int{0, 15, 30, 45} {
		if !s.Matches(at(2013, 1, 1, 5, mm)) {
			t.Errorf("minute %d should match */15", mm)
		}
	}
	if s.Matches(at(2013, 1, 1, 5, 20)) {
		t.Error("minute 20 should not match */15")
	}
}

func TestMatchesRangeAndList(t *testing.T) {
	s := MustParse("0 8-17 * * 1-5") // hourly during working hours, weekdays
	mon := at(2013, 6, 10, 9, 0)     // Monday
	sun := at(2013, 6, 9, 9, 0)      // Sunday
	if !s.Matches(mon) {
		t.Error("Monday 09:00 should match")
	}
	if s.Matches(sun) {
		t.Error("Sunday should not match")
	}
	if s.Matches(at(2013, 6, 10, 18, 0)) {
		t.Error("18:00 should not match 8-17")
	}
	list := MustParse("0 0 1,15 * *")
	if !list.Matches(at(2013, 6, 15, 0, 0)) || list.Matches(at(2013, 6, 14, 0, 0)) {
		t.Error("comma list mismatch")
	}
}

func TestRangeWithStep(t *testing.T) {
	s := MustParse("10-30/10 * * * *")
	for _, mm := range []int{10, 20, 30} {
		if !s.Matches(at(2013, 1, 1, 0, mm)) {
			t.Errorf("minute %d should match 10-30/10", mm)
		}
	}
	if s.Matches(at(2013, 1, 1, 0, 15)) {
		t.Error("minute 15 should not match 10-30/10")
	}
}

func TestDomDowOrSemantics(t *testing.T) {
	// Standard cron: both restricted → OR.
	s := MustParse("0 0 13 * 5") // 13th OR Friday
	fri14 := at(2013, 6, 14, 0, 0)
	thu13 := at(2013, 6, 13, 0, 0)
	wed12 := at(2013, 6, 12, 0, 0)
	if !s.Matches(fri14) {
		t.Error("Friday the 14th should match (dow)")
	}
	if !s.Matches(thu13) {
		t.Error("Thursday the 13th should match (dom)")
	}
	if s.Matches(wed12) {
		t.Error("Wednesday the 12th should not match")
	}
}

func TestNext(t *testing.T) {
	s := MustParse("30 2 * * *")
	next, err := s.Next(at(2013, 6, 10, 2, 30)) // strictly after
	if err != nil {
		t.Fatal(err)
	}
	want := at(2013, 6, 11, 2, 30)
	if !next.Equal(want) {
		t.Fatalf("Next = %v, want %v", next, want)
	}
	next, _ = s.Next(at(2013, 6, 10, 1, 0))
	if !next.Equal(at(2013, 6, 10, 2, 30)) {
		t.Fatalf("Next same day = %v", next)
	}
}

func TestNextMonthBoundary(t *testing.T) {
	s := MustParse("0 0 1 * *") // midnight on the 1st
	next, err := s.Next(at(2013, 1, 31, 23, 59))
	if err != nil {
		t.Fatal(err)
	}
	if !next.Equal(at(2013, 2, 1, 0, 0)) {
		t.Fatalf("Next = %v", next)
	}
}

func TestNextFeb29(t *testing.T) {
	s := MustParse("0 0 29 2 *")
	next, err := s.Next(at(2013, 1, 1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !next.Equal(at(2016, 2, 29, 0, 0)) {
		t.Fatalf("Next Feb 29 = %v, want 2016-02-29", next)
	}
}

func TestSchedulerRunWindow(t *testing.T) {
	var sc Scheduler
	var fired []string
	err := sc.Add("nightly", "0 3 * * *", func(at time.Time) {
		fired = append(fired, "nightly@"+at.Format("01-02 15:04"))
	})
	if err != nil {
		t.Fatal(err)
	}
	err = sc.Add("hourly", "0 * * * *", func(at time.Time) {
		fired = append(fired, "hourly@"+at.Format("01-02 15:04"))
	})
	if err != nil {
		t.Fatal(err)
	}

	n, err := sc.RunWindow(at(2013, 6, 10, 2, 30), at(2013, 6, 10, 4, 30))
	if err != nil {
		t.Fatal(err)
	}
	// hourly at 03:00 and 04:00; nightly at 03:00. Chronological, ties in
	// registration order (nightly first).
	want := []string{"nightly@06-10 03:00", "hourly@06-10 03:00", "hourly@06-10 04:00"}
	if n != len(want) {
		t.Fatalf("fired %d, want %d: %v", n, len(want), fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("firing %d = %q, want %q", i, fired[i], want[i])
		}
	}
}

func TestSchedulerAddValidation(t *testing.T) {
	var sc Scheduler
	if err := sc.Add("bad", "not cron", func(time.Time) {}); err == nil {
		t.Error("bad expression accepted")
	}
	if err := sc.Add("nil", "* * * * *", nil); err == nil {
		t.Error("nil action accepted")
	}
	if len(sc.Jobs()) != 0 {
		t.Error("failed Add left jobs registered")
	}
}

func TestSchedulerEmptyWindow(t *testing.T) {
	var sc Scheduler
	_ = sc.Add("daily", "0 3 * * *", func(time.Time) { t.Fatal("fired outside window") })
	n, err := sc.RunWindow(at(2013, 6, 10, 4, 0), at(2013, 6, 10, 5, 0))
	if err != nil || n != 0 {
		t.Fatalf("RunWindow = %d, %v", n, err)
	}
}
