package cron

import (
	"testing"
	"time"
)

func TestEveryRejectsNonPositive(t *testing.T) {
	for _, d := range []time.Duration{0, -time.Second} {
		if _, err := Every(d); err == nil {
			t.Fatalf("Every(%v) accepted", d)
		}
	}
}

func TestDriverFiresOnInterval(t *testing.T) {
	next, err := Every(5 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(next)
	stop := make(chan struct{})
	start := time.Now()
	for i := 0; i < 3; i++ {
		at, ok, err := d.Wait(stop)
		if err != nil || !ok {
			t.Fatalf("firing %d: ok=%t err=%v", i, ok, err)
		}
		if at.Before(start) {
			t.Fatalf("firing %d at %v precedes start %v", i, at, start)
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("three 5ms firings took %v", elapsed)
	}
}

func TestDriverStops(t *testing.T) {
	next, err := Every(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(next)
	stop := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(stop)
	}()
	finished := make(chan struct{})
	var ok bool
	var werr error
	go func() {
		_, ok, werr = d.Wait(stop)
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return after stop")
	}
	if ok || werr != nil {
		t.Fatalf("stopped Wait returned ok=%t err=%v", ok, werr)
	}
}

// TestScheduleDriverUsesScheduleMath pins the Driver's firing instant to
// Schedule.Next: with an injected clock just before a minute boundary,
// Wait fires exactly at the boundary the schedule computes.
func TestScheduleDriverUsesScheduleMath(t *testing.T) {
	s := MustParse("* * * * *")
	d := s.Driver()
	boundary := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	// First call computes next from the frozen instant 5ms before the
	// boundary; the second supplies the sleep origin, so the timer waits
	// only the remaining real-time gap.
	calls := 0
	d.now = func() time.Time {
		calls++
		if calls == 1 {
			return boundary.Add(-time.Minute)
		}
		return boundary.Add(-5 * time.Millisecond)
	}
	at, ok, err := d.Wait(nil)
	if err != nil || !ok {
		t.Fatalf("ok=%t err=%v", ok, err)
	}
	if !at.Equal(boundary) {
		t.Fatalf("fired at %v, want schedule boundary %v", at, boundary)
	}
}

func TestDriverPropagatesNextError(t *testing.T) {
	d := NewDriver(func(time.Time) (time.Time, error) {
		return time.Time{}, errUnsatisfiable
	})
	if _, ok, err := d.Wait(nil); ok || err == nil {
		t.Fatalf("ok=%t err=%v, want error", ok, err)
	}
}

var errUnsatisfiable = &unsatisfiableError{}

type unsatisfiableError struct{}

func (*unsatisfiableError) Error() string { return "never fires" }
