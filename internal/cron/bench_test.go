package cron

import (
	"testing"
	"time"
)

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse("*/15 2-6 1,15 * 1-5"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNextDaily(b *testing.B) {
	s := MustParse("30 2 * * *")
	t0 := time.Date(2013, 6, 10, 12, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Next(t0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNextSparse(b *testing.B) {
	// Feb 29 is the worst case for the minute scanner.
	s := MustParse("0 0 29 2 *")
	t0 := time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Next(t0); err != nil {
			b.Fatal(err)
		}
	}
}
