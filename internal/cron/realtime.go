package cron

import (
	"fmt"
	"time"
)

// NextFunc computes the next firing instant strictly after t. It is the
// cadence abstraction shared by the simulated Scheduler and the
// real-time Driver: Schedule.Next is one, Every produces another.
type NextFunc func(t time.Time) (time.Time, error)

// Every returns a NextFunc firing at fixed intervals — the sub-minute
// cadence five-field cron cannot express, used by daemon smoke tests
// and fast local loops.
func Every(d time.Duration) (NextFunc, error) {
	if d <= 0 {
		return nil, fmt.Errorf("cron: interval must be positive, got %v", d)
	}
	return func(t time.Time) (time.Time, error) { return t.Add(d), nil }, nil
}

// Driver blocks a real process until a schedule's next firing — the
// wall-clock counterpart of the simulated Scheduler. The paper's
// sp-system is cron-driven ("a regular build of the experimental
// software is done automatically"); the Driver is what lets spd reuse
// the exact same Schedule math against real time.
//
// A Driver is single-consumer: one goroutine calls Wait in a loop.
type Driver struct {
	next NextFunc
	// now is the clock source, a seam for tests; time.Now in production.
	now func() time.Time
}

// NewDriver returns a Driver over any NextFunc.
func NewDriver(next NextFunc) *Driver {
	return &Driver{next: next, now: time.Now}
}

// Wall returns the process wall clock as a clock function. It is the
// sanctioned way for a real-time binary (spd, spserve) to obtain a
// `func() time.Time`: production code threads cron.Wall() through a
// clock field at construction, tests substitute their own function, and
// the wallclock analyzer keeps direct time.Now calls from creeping in
// anywhere else.
func Wall() func() time.Time { return time.Now }

// Sleeper returns the process wall-clock sleep function — the
// sanctioned way for production code that must pause (retry backoff in
// the remote store client) to obtain a `func(time.Duration)`: the
// function is threaded through a field at construction, tests
// substitute a recording stub, and the wallclock analyzer keeps direct
// time.Sleep calls from creeping in anywhere else.
func Sleeper() func(time.Duration) { return time.Sleep }

// Driver returns a real-time driver firing on the schedule.
func (s *Schedule) Driver() *Driver { return NewDriver(s.Next) }

// Wait blocks until the next firing instant or until stop closes,
// whichever comes first. It returns the firing instant and true on a
// firing, and false when stopped; the error reports a cadence that
// cannot fire (e.g. an unsatisfiable schedule).
func (d *Driver) Wait(stop <-chan struct{}) (time.Time, bool, error) {
	now := d.now()
	next, err := d.next(now)
	if err != nil {
		return time.Time{}, false, err
	}
	timer := time.NewTimer(next.Sub(d.now()))
	defer timer.Stop()
	select {
	case <-stop:
		return time.Time{}, false, nil
	case <-timer.C:
		return next, true, nil
	}
}
