// Package cron implements the scheduling substrate of the sp-system.
//
// The paper's framework triggers work with plain cron: "a regular build
// of the experimental software is done automatically", and the ability
// "to run a cron-job on the client" is one of the two requirements for
// attaching a machine. This package parses standard five-field cron
// expressions and drives jobs from the simulated clock, so multi-year
// validation campaigns execute deterministically.
package cron

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// field is a bitmask of permitted values for one cron field.
type field uint64

func (f field) has(v int) bool { return f&(1<<uint(v)) != 0 }

// fieldSpec describes one of the five cron columns.
type fieldSpec struct {
	name     string
	min, max int
}

var fieldSpecs = [5]fieldSpec{
	{"minute", 0, 59},
	{"hour", 0, 23},
	{"day-of-month", 1, 31},
	{"month", 1, 12},
	{"day-of-week", 0, 6},
}

// Schedule is a parsed cron expression.
type Schedule struct {
	fields [5]field
	// restricted records which of day-of-month and day-of-week were
	// given explicitly; standard cron ORs them when both are.
	domRestricted, dowRestricted bool
	expr                         string
}

// Parse parses a standard five-field cron expression: minute, hour,
// day-of-month, month, day-of-week. Each field accepts "*", single
// values, ranges "a-b", steps "*/n" and "a-b/n", and comma lists.
func Parse(expr string) (*Schedule, error) {
	parts := strings.Fields(expr)
	if len(parts) != 5 {
		return nil, fmt.Errorf("cron: %q has %d fields, want 5", expr, len(parts))
	}
	s := &Schedule{expr: expr}
	for i, part := range parts {
		f, restricted, err := parseField(part, fieldSpecs[i])
		if err != nil {
			return nil, fmt.Errorf("cron: %q: %w", expr, err)
		}
		s.fields[i] = f
		switch i {
		case 2:
			s.domRestricted = restricted
		case 4:
			s.dowRestricted = restricted
		}
	}
	return s, nil
}

// MustParse is Parse that panics on error, for static configuration.
func MustParse(expr string) *Schedule {
	s, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return s
}

// String returns the original expression.
func (s *Schedule) String() string { return s.expr }

func parseField(part string, spec fieldSpec) (field, bool, error) {
	var f field
	restricted := true
	for _, term := range strings.Split(part, ",") {
		lo, hi, step := spec.min, spec.max, 1
		body := term
		if slash := strings.IndexByte(term, '/'); slash >= 0 {
			body = term[:slash]
			st, err := strconv.Atoi(term[slash+1:])
			if err != nil || st <= 0 {
				return 0, false, fmt.Errorf("%s: bad step in %q", spec.name, term)
			}
			step = st
		}
		switch {
		case body == "*":
			if step == 1 && part == "*" {
				restricted = false
			}
		case strings.Contains(body, "-"):
			lohi := strings.SplitN(body, "-", 2)
			l, err1 := strconv.Atoi(lohi[0])
			h, err2 := strconv.Atoi(lohi[1])
			if err1 != nil || err2 != nil {
				return 0, false, fmt.Errorf("%s: bad range %q", spec.name, term)
			}
			lo, hi = l, h
		default:
			v, err := strconv.Atoi(body)
			if err != nil {
				return 0, false, fmt.Errorf("%s: bad value %q", spec.name, term)
			}
			lo, hi = v, v
		}
		if lo < spec.min || hi > spec.max || lo > hi {
			return 0, false, fmt.Errorf("%s: %q outside [%d, %d]", spec.name, term, spec.min, spec.max)
		}
		for v := lo; v <= hi; v += step {
			f |= 1 << uint(v)
		}
	}
	if f == 0 {
		return 0, false, fmt.Errorf("%s: empty set from %q", spec.name, part)
	}
	return f, restricted, nil
}

// Matches reports whether the schedule fires at the given instant
// (seconds are ignored). Standard cron semantics: when both day-of-month
// and day-of-week are restricted, a match on either suffices.
func (s *Schedule) Matches(t time.Time) bool {
	t = t.UTC()
	if !s.fields[0].has(t.Minute()) || !s.fields[1].has(t.Hour()) || !s.fields[3].has(int(t.Month())) {
		return false
	}
	domOK := s.fields[2].has(t.Day())
	dowOK := s.fields[4].has(int(t.Weekday()))
	if s.domRestricted && s.dowRestricted {
		return domOK || dowOK
	}
	return domOK && dowOK
}

// Next returns the first instant strictly after t at which the schedule
// fires. It scans minute-by-minute, bounded at five years — far beyond
// any satisfiable five-field expression's firing gap.
func (s *Schedule) Next(t time.Time) (time.Time, error) {
	cur := t.UTC().Truncate(time.Minute).Add(time.Minute)
	limit := cur.AddDate(5, 0, 0)
	for cur.Before(limit) {
		if s.Matches(cur) {
			return cur, nil
		}
		cur = cur.Add(time.Minute)
	}
	return time.Time{}, fmt.Errorf("cron: %q never fires within five years of %v", s.expr, t)
}

// Job is a named scheduled action.
type Job struct {
	Name     string
	Schedule *Schedule
	// Run is invoked with the simulated firing instant.
	Run func(at time.Time)
}

// Scheduler drives jobs from a simulated clock. It is not safe for
// concurrent use; campaigns drive it from a single goroutine.
type Scheduler struct {
	jobs []Job
}

// Add registers a job. Jobs fire in registration order when sharing an
// instant.
func (sc *Scheduler) Add(name, expr string, run func(at time.Time)) error {
	if run == nil {
		return fmt.Errorf("cron: job %q has no action", name)
	}
	s, err := Parse(expr)
	if err != nil {
		return err
	}
	sc.jobs = append(sc.jobs, Job{Name: name, Schedule: s, Run: run})
	return nil
}

// Jobs returns registered jobs in registration order.
func (sc *Scheduler) Jobs() []Job {
	out := make([]Job, len(sc.jobs))
	copy(out, sc.jobs)
	return out
}

// firing pairs a job with an instant, for ordering.
type firing struct {
	at  time.Time
	idx int
}

// RunWindow fires every job due in (from, to], in chronological order
// (ties in registration order), and returns the number of firings. The
// caller advances its clock to `to` afterwards.
func (sc *Scheduler) RunWindow(from, to time.Time) (int, error) {
	var due []firing
	for i := range sc.jobs {
		at := from
		for {
			next, err := sc.jobs[i].Schedule.Next(at)
			if err != nil {
				return 0, err
			}
			if next.After(to) {
				break
			}
			due = append(due, firing{at: next, idx: i})
			at = next
		}
	}
	sort.SliceStable(due, func(a, b int) bool {
		if !due[a].at.Equal(due[b].at) {
			return due[a].at.Before(due[b].at)
		}
		return due[a].idx < due[b].idx
	})
	for _, f := range due {
		sc.jobs[f.idx].Run(f.at)
	}
	return len(due), nil
}
