package hepfile

import (
	"testing"
	"testing/quick"

	"repro/internal/hepsim"
)

func sampleEvents(t *testing.T, n int) []hepsim.Event {
	t.Helper()
	g, err := hepsim.NewGenerator(hepsim.DefaultGenConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	return g.GenerateN(n)
}

func TestEventRoundTrip(t *testing.T) {
	evs := sampleEvents(t, 100)
	data, err := WriteEvents(GEN, evs)
	if err != nil {
		t.Fatal(err)
	}
	level, got, err := ReadEvents(data)
	if err != nil {
		t.Fatal(err)
	}
	if level != GEN {
		t.Fatalf("level = %v", level)
	}
	if len(got) != len(evs) {
		t.Fatalf("records = %d, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i].ID != evs[i].ID || got[i].Signal != evs[i].Signal {
			t.Fatalf("event %d header mismatch", i)
		}
		if len(got[i].Particles) != len(evs[i].Particles) {
			t.Fatalf("event %d particle count mismatch", i)
		}
		for j := range evs[i].Particles {
			if got[i].Particles[j] != evs[i].Particles[j] {
				t.Fatalf("event %d particle %d mismatch", i, j)
			}
		}
	}
}

func TestRecoRoundTrip(t *testing.T) {
	recs := []hepsim.RecoEvent{
		{ID: 1, Mass: 29.7, LeadPt: 14.8, Multiplicity: 9},
		{ID: 2, Mass: 0, LeadPt: 1.2, Multiplicity: 1},
	}
	for _, level := range []Level{DST, ODS} {
		data, err := WriteReco(level, recs)
		if err != nil {
			t.Fatal(err)
		}
		gotLevel, got, err := ReadReco(data)
		if err != nil {
			t.Fatal(err)
		}
		if gotLevel != level {
			t.Fatalf("level = %v, want %v", gotLevel, level)
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("%v record %d = %+v, want %+v", level, i, got[i], recs[i])
			}
		}
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	sums := []hepsim.Summary{
		{ID: 10, Mass: 30.1, Pt: 15.2, N: 11},
		{ID: 11, Mass: 12.9, Pt: 3.3, N: 4},
	}
	data, err := WriteSummaries(sums)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSummaries(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sums {
		if got[i] != sums[i] {
			t.Fatalf("summary %d = %+v, want %+v", i, got[i], sums[i])
		}
	}
}

func TestLevelEnforcement(t *testing.T) {
	if _, err := WriteEvents(DST, nil); err == nil {
		t.Error("WriteEvents accepted DST level")
	}
	if _, err := WriteReco(GEN, nil); err == nil {
		t.Error("WriteReco accepted GEN level")
	}
	// A HAT file must not decode as events.
	data, _ := WriteSummaries(nil)
	if _, _, err := ReadEvents(data); err == nil {
		t.Error("ReadEvents accepted a HAT file")
	}
	if _, _, err := ReadReco(data); err == nil {
		t.Error("ReadReco accepted a HAT file")
	}
}

func TestCorruptionDetected(t *testing.T) {
	data, _ := WriteEvents(GEN, sampleEvents(t, 10))
	for _, pos := range []int{0, 5, len(data) / 2, len(data) - 5} {
		bad := make([]byte, len(data))
		copy(bad, data)
		bad[pos] ^= 0xFF
		if _, _, err := ReadEvents(bad); err == nil {
			t.Errorf("corruption at byte %d undetected", pos)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	data, _ := WriteEvents(SIM, sampleEvents(t, 10))
	for _, cut := range []int{0, 4, 10, len(data) / 2, len(data) - 1} {
		if _, _, err := ReadEvents(data[:cut]); err == nil {
			t.Errorf("truncation at %d undetected", cut)
		}
	}
}

func TestStat(t *testing.T) {
	data, _ := WriteReco(DST, make([]hepsim.RecoEvent, 7))
	info, err := Stat(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Level != DST || info.Records != 7 || info.Bytes != len(data) {
		t.Fatalf("Stat = %+v", info)
	}
	if _, err := Stat([]byte("junk")); err == nil {
		t.Fatal("Stat accepted junk")
	}
}

func TestEmptyFiles(t *testing.T) {
	data, err := WriteEvents(GEN, nil)
	if err != nil {
		t.Fatal(err)
	}
	level, evs, err := ReadEvents(data)
	if err != nil || level != GEN || len(evs) != 0 {
		t.Fatalf("empty GEN file = %v %v %v", level, evs, err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	evs := sampleEvents(t, 20)
	a, _ := WriteEvents(GEN, evs)
	b, _ := WriteEvents(GEN, evs)
	if string(a) != string(b) {
		t.Fatal("encoding not deterministic")
	}
}

func TestLevelStrings(t *testing.T) {
	want := []string{"GEN", "SIM", "DST", "ODS", "HAT"}
	for i, l := range Levels() {
		if l.String() != want[i] {
			t.Errorf("level %d = %q, want %q", i, l.String(), want[i])
		}
	}
}

func TestSummaryProperty(t *testing.T) {
	f := func(id int64, mass, pt float64, n int32) bool {
		in := []hepsim.Summary{{ID: id, Mass: mass, Pt: pt, N: n}}
		data, err := WriteSummaries(in)
		if err != nil {
			return false
		}
		out, err := ReadSummaries(data)
		if err != nil || len(out) != 1 {
			return false
		}
		// NaN != NaN, so compare bit patterns via the encoded form.
		back, err := WriteSummaries(out)
		return err == nil && string(back) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
