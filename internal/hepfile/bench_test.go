package hepfile

import (
	"testing"

	"repro/internal/hepsim"
)

func benchEvents(b *testing.B, n int) []hepsim.Event {
	b.Helper()
	g, err := hepsim.NewGenerator(hepsim.DefaultGenConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	return g.GenerateN(n)
}

func BenchmarkWriteEvents(b *testing.B) {
	evs := benchEvents(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := WriteEvents(GEN, evs)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
	}
}

func BenchmarkReadEvents(b *testing.B) {
	data, err := WriteEvents(GEN, benchEvents(b, 1000))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadEvents(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatIntegrityCheck(b *testing.B) {
	data, err := WriteEvents(GEN, benchEvents(b, 1000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Stat(data); err != nil {
			b.Fatal(err)
		}
	}
}
