// Package hepfile implements the multi-level event files flowing through
// the analysis chain: GEN (generated events), SIM (after detector
// simulation), DST (reconstructed events), ODS (selected physics
// objects) and HAT (per-event ntuple summaries).
//
// The paper's H1 chain runs "from MC generation and simulation, through
// multi-level file production and ending with a full physics analysis" —
// H1's real levels were DST, ODS and HAT, reproduced here. Files are
// binary blobs on the common storage with a magic, a version, a level
// tag, a record count and a trailing CRC-32, so that a truncated or
// corrupted artifact fails loudly at the stage that reads it rather than
// silently producing wrong physics.
package hepfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/hepsim"
)

// Level identifies a file level in the analysis chain.
type Level int

const (
	// GEN holds generated (truth) events.
	GEN Level = iota
	// SIM holds events after detector simulation.
	SIM
	// DST holds reconstructed events.
	DST
	// ODS holds the physics-object selection of the DST.
	ODS
	// HAT holds per-event ntuple summaries for analysis.
	HAT
	numLevels int = iota
)

var levelNames = [...]string{"GEN", "SIM", "DST", "ODS", "HAT"}

// String returns the level's conventional name.
func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Levels returns all levels in chain order.
func Levels() []Level {
	out := make([]Level, numLevels)
	for i := range out {
		out[i] = Level(i)
	}
	return out
}

var fileMagic = [4]byte{'S', 'P', 'E', 'V'}

const fileVersion = 1

// Info describes a file without decoding its records.
type Info struct {
	Level   Level
	Records int
	Bytes   int
}

type encoder struct{ buf bytes.Buffer }

func (e *encoder) u8(v uint8) { e.buf.WriteByte(v) }
func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) i32(v int32)   { e.u32(uint32(v)) }
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) finish() []byte {
	crc := crc32.ChecksumIEEE(e.buf.Bytes())
	e.u32(crc)
	return e.buf.Bytes()
}

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) need(n int) error {
	if d.pos+n > len(d.data) {
		return fmt.Errorf("hepfile: truncated file at byte %d", d.pos)
	}
	return nil
}
func (d *decoder) u8() (uint8, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.data[d.pos]
	d.pos++
	return v, nil
}
func (d *decoder) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return v, nil
}
func (d *decoder) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return v, nil
}
func (d *decoder) i32() (int32, error) {
	v, err := d.u32()
	return int32(v), err
}
func (d *decoder) i64() (int64, error) {
	v, err := d.u64()
	return int64(v), err
}
func (d *decoder) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

// openFile verifies magic, version, CRC and the level tag, returning a
// decoder positioned at the record count.
func openFile(data []byte, wantLevels ...Level) (*decoder, Level, int, error) {
	if len(data) < 4+1+1+4+4 {
		return nil, 0, 0, fmt.Errorf("hepfile: %d bytes is too short to be an event file", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, 0, 0, fmt.Errorf("hepfile: CRC mismatch — file corrupted")
	}
	d := &decoder{data: body}
	var magic [4]byte
	copy(magic[:], body[:4])
	d.pos = 4
	if magic != fileMagic {
		return nil, 0, 0, fmt.Errorf("hepfile: bad magic %q", magic)
	}
	ver, _ := d.u8()
	if ver != fileVersion {
		return nil, 0, 0, fmt.Errorf("hepfile: unsupported version %d", ver)
	}
	lv, _ := d.u8()
	level := Level(lv)
	if int(lv) >= numLevels {
		return nil, 0, 0, fmt.Errorf("hepfile: unknown level tag %d", lv)
	}
	if len(wantLevels) > 0 {
		ok := false
		for _, w := range wantLevels {
			if level == w {
				ok = true
				break
			}
		}
		if !ok {
			return nil, 0, 0, fmt.Errorf("hepfile: file is %v, expected one of %v", level, wantLevels)
		}
	}
	n, err := d.u32()
	if err != nil {
		return nil, 0, 0, err
	}
	return d, level, int(n), nil
}

func newFile(level Level, records int) *encoder {
	e := &encoder{}
	e.buf.Write(fileMagic[:])
	e.u8(fileVersion)
	e.u8(uint8(level))
	e.u32(uint32(records))
	return e
}

// Stat returns file metadata after verifying integrity.
func Stat(data []byte) (Info, error) {
	_, level, n, err := openFile(data)
	if err != nil {
		return Info{}, err
	}
	return Info{Level: level, Records: n, Bytes: len(data)}, nil
}

// WriteEvents encodes GEN- or SIM-level events.
func WriteEvents(level Level, evs []hepsim.Event) ([]byte, error) {
	if level != GEN && level != SIM {
		return nil, fmt.Errorf("hepfile: level %v does not hold Event records", level)
	}
	e := newFile(level, len(evs))
	for i := range evs {
		ev := &evs[i]
		e.i64(ev.ID)
		if ev.Signal {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.u32(uint32(len(ev.Particles)))
		for _, p := range ev.Particles {
			e.i32(p.PDG)
			e.f64(p.P.E)
			e.f64(p.P.Px)
			e.f64(p.P.Py)
			e.f64(p.P.Pz)
		}
	}
	return e.finish(), nil
}

// ReadEvents decodes a GEN- or SIM-level file.
func ReadEvents(data []byte) (Level, []hepsim.Event, error) {
	d, level, n, err := openFile(data, GEN, SIM)
	if err != nil {
		return 0, nil, err
	}
	evs := make([]hepsim.Event, 0, n)
	for i := 0; i < n; i++ {
		var ev hepsim.Event
		if ev.ID, err = d.i64(); err != nil {
			return 0, nil, err
		}
		sig, err := d.u8()
		if err != nil {
			return 0, nil, err
		}
		ev.Signal = sig != 0
		np, err := d.u32()
		if err != nil {
			return 0, nil, err
		}
		ev.Particles = make([]hepsim.Particle, np)
		for j := range ev.Particles {
			p := &ev.Particles[j]
			if p.PDG, err = d.i32(); err != nil {
				return 0, nil, err
			}
			if p.P.E, err = d.f64(); err != nil {
				return 0, nil, err
			}
			if p.P.Px, err = d.f64(); err != nil {
				return 0, nil, err
			}
			if p.P.Py, err = d.f64(); err != nil {
				return 0, nil, err
			}
			if p.P.Pz, err = d.f64(); err != nil {
				return 0, nil, err
			}
		}
		evs = append(evs, ev)
	}
	return level, evs, nil
}

// WriteReco encodes DST- or ODS-level reconstructed events.
func WriteReco(level Level, recs []hepsim.RecoEvent) ([]byte, error) {
	if level != DST && level != ODS {
		return nil, fmt.Errorf("hepfile: level %v does not hold RecoEvent records", level)
	}
	e := newFile(level, len(recs))
	for _, r := range recs {
		e.i64(r.ID)
		e.f64(r.Mass)
		e.f64(r.LeadPt)
		e.i32(r.Multiplicity)
	}
	return e.finish(), nil
}

// ReadReco decodes a DST- or ODS-level file.
func ReadReco(data []byte) (Level, []hepsim.RecoEvent, error) {
	d, level, n, err := openFile(data, DST, ODS)
	if err != nil {
		return 0, nil, err
	}
	recs := make([]hepsim.RecoEvent, 0, n)
	for i := 0; i < n; i++ {
		var r hepsim.RecoEvent
		if r.ID, err = d.i64(); err != nil {
			return 0, nil, err
		}
		if r.Mass, err = d.f64(); err != nil {
			return 0, nil, err
		}
		if r.LeadPt, err = d.f64(); err != nil {
			return 0, nil, err
		}
		if r.Multiplicity, err = d.i32(); err != nil {
			return 0, nil, err
		}
		recs = append(recs, r)
	}
	return level, recs, nil
}

// WriteSummaries encodes a HAT-level ntuple.
func WriteSummaries(sums []hepsim.Summary) ([]byte, error) {
	e := newFile(HAT, len(sums))
	for _, s := range sums {
		e.i64(s.ID)
		e.f64(s.Mass)
		e.f64(s.Pt)
		e.i32(s.N)
	}
	return e.finish(), nil
}

// ReadSummaries decodes a HAT-level ntuple.
func ReadSummaries(data []byte) ([]hepsim.Summary, error) {
	d, _, n, err := openFile(data, HAT)
	if err != nil {
		return nil, err
	}
	sums := make([]hepsim.Summary, 0, n)
	for i := 0; i < n; i++ {
		var s hepsim.Summary
		if s.ID, err = d.i64(); err != nil {
			return nil, err
		}
		if s.Mass, err = d.f64(); err != nil {
			return nil, err
		}
		if s.Pt, err = d.f64(); err != nil {
			return nil, err
		}
		if s.N, err = d.i32(); err != nil {
			return nil, err
		}
		sums = append(sums, s)
	}
	return sums, nil
}
