// Package lifetime quantifies the paper's central claim (§2): freezing
// a system "will provide a workable solution for the medium-term
// future", but actively migrating and validating "substantially extends
// the lifetime of the software, and hence the data".
//
// The simulation walks a multi-year timeline of OS releases and
// end-of-life dates. Under the freeze strategy the stack stays on its
// initial platform and its usability decays once the platform leaves
// vendor support (security exposure, dying hardware, unbootable
// images). Under the adapt-and-validate strategy, every new platform
// release triggers a real migration campaign through the migrate
// package — complete with validation runs, failure attribution and
// interventions — and the stack stays on supported platforms for as
// long as campaigns converge. The price is the intervention effort,
// which the simulation also accounts.
package lifetime

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/externals"
	"repro/internal/migrate"
	"repro/internal/platform"
)

// Strategy selects a preservation approach.
type Strategy int

const (
	// Freeze conserves the initial environment unchanged — the paper's
	// "freeze the current system" option.
	Freeze Strategy = iota
	// Migrate actively adapts to each new platform — the DESY approach
	// the sp-system exists to support.
	Migrate
)

// String returns "freeze" or "migrate".
func (s Strategy) String() string {
	if s == Freeze {
		return "freeze"
	}
	return "migrate"
}

// Params configures a lifetime simulation.
type Params struct {
	// Start and End bound the simulated horizon.
	Start, End time.Time
	// StartConfig is the platform the software runs on at Start.
	StartConfig platform.Config
	// Externals is the external software set (held fixed across the
	// horizon; external upgrades are exercised by the migration benches).
	Externals *externals.Set
	// GraceYears is how long a frozen platform stays usable past its
	// vendor EOL before hardware and security erosion make it unusable.
	// Usability decays linearly across this window.
	GraceYears float64
}

// DefaultParams returns the reproduction's standard horizon: 2013 (the
// paper's campaign) through 2030, starting from the HERA experiments'
// native SL5/32-bit platform (latent 64-bit defects are dormant there,
// so the initial capture's references are trustworthy).
func DefaultParams(exts *externals.Set) Params {
	return Params{
		Start:       time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC),
		End:         time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC),
		StartConfig: platform.OriginalConfig(),
		Externals:   exts,
		GraceYears:  4,
	}
}

// ExtendedRegistry returns the platform catalogue extended with the
// synthetic future releases the multi-year horizon needs (EL8, EL9
// stand-ins shipping the strictest catalogued toolchain). The paper's
// framework is explicitly designed to absorb such future releases
// ("the next challenges include the testing of the SL7 environment").
func ExtendedRegistry() *platform.Registry {
	reg := platform.NewRegistry()
	reg.AddOS(&platform.OSRelease{
		Name:         "EL8",
		FullName:     "Enterprise Linux 8 (synthetic)",
		Released:     time.Date(2019, 5, 7, 0, 0, 0, 0, time.UTC),
		EOL:          time.Date(2029, 5, 31, 0, 0, 0, 0, time.UTC),
		Archs:        []platform.Arch{platform.X8664},
		Compilers:    []platform.CompilerID{"gcc4.8"},
		GlibcVersion: "2.28",
	})
	reg.AddOS(&platform.OSRelease{
		Name:         "EL9",
		FullName:     "Enterprise Linux 9 (synthetic)",
		Released:     time.Date(2022, 5, 17, 0, 0, 0, 0, time.UTC),
		EOL:          time.Date(2032, 5, 31, 0, 0, 0, 0, time.UTC),
		Archs:        []platform.Arch{platform.X8664},
		Compilers:    []platform.CompilerID{"gcc4.8"},
		GlibcVersion: "2.34",
	})
	return reg
}

// YearPoint is one sampled year of the simulation.
type YearPoint struct {
	Year int
	// OS is the platform the stack runs on this year.
	OS string
	// Supported reports whether that platform is in vendor support.
	Supported bool
	// Usability is the stack's usability score in [0, 1].
	Usability float64
	// Interventions is the cumulative count of source fixes applied.
	Interventions int
	// Migrations is the cumulative count of completed platform
	// migrations.
	Migrations int
}

// Outcome is a full simulation result.
type Outcome struct {
	Strategy Strategy
	Points   []YearPoint
	// UsableYears integrates usability over the horizon.
	UsableYears float64
	// LostIn is the first year usability reached zero (0 when the stack
	// survived the whole horizon).
	LostIn int
	// TotalInterventions and TotalMigrations are the final cumulative
	// counts.
	TotalInterventions int
	TotalMigrations    int
}

// bestConfig picks the newest supported configuration for an OS release:
// 64-bit with the newest compiler the release ships.
func bestConfig(reg *platform.Registry, os *platform.OSRelease) (platform.Config, error) {
	arch := platform.X8664
	if !os.SupportsArch(arch) {
		arch = platform.I386
	}
	var best *platform.Compiler
	for _, id := range os.Compilers {
		c, err := reg.Compiler(id)
		if err != nil {
			return platform.Config{}, err
		}
		if best == nil || c.Released.After(best.Released) {
			best = c
		}
	}
	if best == nil {
		return platform.Config{}, fmt.Errorf("lifetime: %s ships no compiler", os.Name)
	}
	return platform.Config{OS: os.Name, Arch: arch, Compiler: best.ID}, nil
}

// usabilityAt scores a platform at an instant: 1 while supported, then a
// linear decay to 0 across the grace window.
func usabilityAt(os *platform.OSRelease, at time.Time, graceYears float64) float64 {
	if os.SupportedAt(at) {
		return 1
	}
	if at.Before(os.Released) {
		return 0
	}
	past := at.Sub(os.EOL).Hours() / (24 * 365.25)
	if past >= graceYears {
		return 0
	}
	return 1 - past/graceYears
}

// Simulate runs one strategy across the horizon. For the Migrate
// strategy, planner must be ready to run campaigns (its Repo accumulates
// interventions as the horizon progresses); for Freeze it may be nil.
func Simulate(strategy Strategy, params Params, reg *platform.Registry, planner *migrate.Planner) (*Outcome, error) {
	if params.End.Before(params.Start) {
		return nil, fmt.Errorf("lifetime: horizon ends (%v) before it starts (%v)", params.End, params.Start)
	}
	if strategy == Migrate && planner == nil {
		return nil, fmt.Errorf("lifetime: migrate strategy needs a planner")
	}
	cur, err := reg.OS(params.StartConfig.OS)
	if err != nil {
		return nil, err
	}

	// Order the platform releases newer than the starting one that fall
	// inside the horizon; each is a migration opportunity. This includes
	// releases that predate the horizon's start but postdate the starting
	// platform — the paper's own situation, where the 2013 campaign was
	// migrating SL5-era software to the already-released SL6.
	var releases []*platform.OSRelease
	for _, os := range reg.OSes() {
		if os.Released.After(cur.Released) && os.Released.Before(params.End) {
			releases = append(releases, os)
		}
	}
	sort.Slice(releases, func(i, j int) bool { return releases[i].Released.Before(releases[j].Released) })

	out := &Outcome{Strategy: strategy}
	interventions, migrations := 0, 0
	migrationDead := false // a failed campaign strands the stack
	next := 0              // index of the next unprocessed release

	if strategy == Migrate {
		// The paper's preparatory phase: consolidate the software on the
		// starting platform and establish the validation references.
		rep, err := planner.Migrate(params.StartConfig, params.Externals, "initial capture")
		if err != nil {
			return nil, err
		}
		if !rep.Succeeded {
			return nil, fmt.Errorf("lifetime: initial capture on %v did not validate", params.StartConfig)
		}
		interventions += rep.TotalInterventions()
	}

	for year := params.Start.Year(); year < params.End.Year(); year++ {
		yearEnd := time.Date(year, 12, 31, 0, 0, 0, 0, time.UTC)

		if strategy == Migrate && !migrationDead {
			for next < len(releases) && !releases[next].Released.After(yearEnd) {
				os := releases[next]
				next++
				if !os.Released.After(cur.Released) {
					continue
				}
				target, err := bestConfig(reg, os)
				if err != nil {
					return nil, err
				}
				rep, err := planner.Migrate(target, params.Externals,
					fmt.Sprintf("lifetime migration to %s (%d)", os.Name, year))
				if err != nil {
					return nil, err
				}
				interventions += rep.TotalInterventions()
				if rep.Succeeded {
					migrations++
					cur = os
				} else {
					migrationDead = true
					break
				}
			}
		}

		u := usabilityAt(cur, yearEnd, params.GraceYears)
		out.Points = append(out.Points, YearPoint{
			Year:          year,
			OS:            cur.Name,
			Supported:     cur.SupportedAt(yearEnd),
			Usability:     u,
			Interventions: interventions,
			Migrations:    migrations,
		})
		out.UsableYears += u
		if u == 0 && out.LostIn == 0 {
			out.LostIn = year
		}
	}
	out.TotalInterventions = interventions
	out.TotalMigrations = migrations
	return out, nil
}

// Compare runs both strategies over the same horizon and returns
// (freeze, migrate) outcomes. The migrate planner's repository is
// mutated by the campaigns; callers supply a fresh one.
func Compare(params Params, reg *platform.Registry, planner *migrate.Planner) (*Outcome, *Outcome, error) {
	frozen, err := Simulate(Freeze, params, reg, nil)
	if err != nil {
		return nil, nil, err
	}
	migrated, err := Simulate(Migrate, params, reg, planner)
	if err != nil {
		return nil, nil, err
	}
	return frozen, migrated, nil
}
