package lifetime

import (
	"testing"
	"time"

	"repro/internal/bookkeep"
	"repro/internal/buildsys"
	"repro/internal/chain"
	"repro/internal/externals"
	"repro/internal/migrate"
	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/swrepo"
	"repro/internal/valtest"
)

// newPlanner assembles a real migration planner over a small legacy
// repository (K&R compile hazard plus a latent 64-bit defect).
func newPlanner(t *testing.T, reg *platform.Registry) *migrate.Planner {
	t.Helper()
	repo := swrepo.NewRepository("H1")
	mk := func(name string, traits ...platform.Trait) *swrepo.Package {
		return &swrepo.Package{Name: name, Units: []*swrepo.SourceUnit{{
			Name: "main.cc", Language: swrepo.LangCxx,
			Traits: append([]platform.Trait{platform.TraitCxx98}, traits...),
			Lines:  300,
		}}}
	}
	repo.MustAdd(mk("legacy", platform.TraitKAndRDecl))
	repo.MustAdd(mk("reco", platform.TraitUninitMemory))
	repo.MustAdd(mk("ana"))

	store := storage.NewStore()
	rn := runner.New(store, simclock.New())
	run := func(cfg platform.Config, exts *externals.Set, description string) (*runner.RunRecord, error) {
		build, err := buildsys.NewBuilder(reg, store).Build(repo, cfg, exts)
		if err != nil {
			return nil, err
		}
		suite := valtest.NewSuite(repo.Experiment)
		for _, p := range repo.Packages() {
			suite.MustAdd(&valtest.CompileTest{Pkg: p.Name})
		}
		sp := chain.DefaultSpec("mainchain", 800, 5)
		sp.StagePackages = map[chain.Stage]string{
			chain.StageReco:     "reco",
			chain.StageAnalysis: "ana",
		}
		tests, err := sp.Tests()
		if err != nil {
			return nil, err
		}
		for _, tt := range tests {
			suite.MustAdd(tt)
		}
		ctx := &valtest.Context{
			Store: store, Env: storage.Env{}, Config: cfg,
			Registry: reg, Externals: exts, Repo: repo, Build: build,
		}
		return rn.Run(suite, ctx, description)
	}
	return &migrate.Planner{
		Repo:     repo,
		Registry: reg,
		Book:     bookkeep.New(store),
		Run:      run,
	}
}

func testParams(t *testing.T) Params {
	t.Helper()
	cat := externals.NewCatalogue()
	root, err := cat.Get(externals.ROOT, "5.34")
	if err != nil {
		t.Fatal(err)
	}
	return DefaultParams(externals.MustSet(root))
}

func TestExtendedRegistryHasFutureReleases(t *testing.T) {
	reg := ExtendedRegistry()
	for _, name := range []string{"SL5", "SL6", "SL7", "EL8", "EL9"} {
		if _, err := reg.OS(name); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestUsabilityDecay(t *testing.T) {
	reg := ExtendedRegistry()
	sl5, _ := reg.OS("SL5")
	at := func(y int) time.Time { return time.Date(y, 6, 1, 0, 0, 0, 0, time.UTC) }
	if u := usabilityAt(sl5, at(2015), 4); u != 1 {
		t.Errorf("supported usability = %g", u)
	}
	mid := usabilityAt(sl5, at(2021), 4) // ~2.2y past the 2019 EOL
	if mid <= 0 || mid >= 1 {
		t.Errorf("grace-window usability = %g, want in (0,1)", mid)
	}
	if u := usabilityAt(sl5, at(2026), 4); u != 0 {
		t.Errorf("post-grace usability = %g", u)
	}
	if u := usabilityAt(sl5, at(2001), 4); u != 0 {
		t.Errorf("pre-release usability = %g", u)
	}
}

func TestFreezeDecaysAfterEOL(t *testing.T) {
	out, err := Simulate(Freeze, testParams(t), ExtendedRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalMigrations != 0 || out.TotalInterventions != 0 {
		t.Fatal("freeze strategy migrated")
	}
	if out.LostIn == 0 {
		t.Fatal("frozen SL5 stack never died — decay model inert")
	}
	// SL5 EOL is 2019; with 4 grace years the stack must be dead by 2024.
	if out.LostIn > 2024 {
		t.Fatalf("frozen stack lost in %d, want <= 2024", out.LostIn)
	}
	for _, pt := range out.Points {
		if pt.OS != "SL5" {
			t.Fatalf("freeze left SL5: %+v", pt)
		}
	}
}

func TestMigrateSurvivesHorizon(t *testing.T) {
	reg := ExtendedRegistry()
	out, err := Simulate(Migrate, testParams(t), reg, newPlanner(t, reg))
	if err != nil {
		t.Fatal(err)
	}
	if out.LostIn != 0 {
		t.Fatalf("migrating stack lost in %d", out.LostIn)
	}
	if out.TotalMigrations < 3 {
		t.Fatalf("migrations = %d, want >= 3 (SL6, SL7, EL8, EL9)", out.TotalMigrations)
	}
	if out.TotalInterventions == 0 {
		t.Fatal("migrations cost no interventions — defect model inert")
	}
	last := out.Points[len(out.Points)-1]
	if last.OS == "SL5" {
		t.Fatal("stack never left SL5")
	}
	if last.Usability != 1 {
		t.Fatalf("final usability = %g, want 1 on a supported platform", last.Usability)
	}
}

func TestCompareShape(t *testing.T) {
	// The paper's headline: migration substantially extends the usable
	// lifetime relative to freezing.
	reg := ExtendedRegistry()
	frozen, migrated, err := Compare(testParams(t), reg, newPlanner(t, reg))
	if err != nil {
		t.Fatal(err)
	}
	if migrated.UsableYears <= frozen.UsableYears {
		t.Fatalf("migrate (%.1f usable years) should beat freeze (%.1f)",
			migrated.UsableYears, frozen.UsableYears)
	}
	// "Substantially": at least half again as much usable lifetime.
	if migrated.UsableYears < 1.5*frozen.UsableYears {
		t.Fatalf("migrate advantage too small: %.1f vs %.1f years",
			migrated.UsableYears, frozen.UsableYears)
	}
}

func TestSimulateValidation(t *testing.T) {
	reg := ExtendedRegistry()
	p := testParams(t)
	p.End = p.Start.AddDate(-1, 0, 0)
	if _, err := Simulate(Freeze, p, reg, nil); err == nil {
		t.Error("inverted horizon accepted")
	}
	if _, err := Simulate(Migrate, testParams(t), reg, nil); err == nil {
		t.Error("migrate without planner accepted")
	}
}

func TestStrategyStrings(t *testing.T) {
	if Freeze.String() != "freeze" || Migrate.String() != "migrate" {
		t.Fatal("strategy strings wrong")
	}
}
