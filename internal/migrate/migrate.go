// Package migrate implements the sp-system's purpose: the
// adapt-and-validate preservation strategy. The paper (§2): "the working
// version of the experimental software is actively migrated to more
// modern platforms and future-proof resources, substantially extending
// the lifetime of the software, and hence the data ... The success of
// such migrations depends on having a robust and complete set of
// validation tests."
//
// A Planner drives the paper's §3.1 workflow loop: run the validation
// suite on the migration target; if it fails, diff against the last
// successful run, attribute the failures, propose interventions
// (source patches removing the offending traits — the code porting a
// real migration performs), apply them, and iterate until the suite is
// green or the iteration budget is exhausted. A successful migration
// yields the validated recipe the paper says the sp-system supplies to
// production systems.
package migrate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bookkeep"
	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/swrepo"
)

// RunFunc executes one full validation run (build + suite) of the
// experiment on the given target, tagged with the description, and
// returns its record. The core orchestrator provides this; migrate
// stays independent of it.
type RunFunc func(cfg platform.Config, exts *externals.Set, description string) (*runner.RunRecord, error)

// Intervention is one applied fix, with its provenance.
type Intervention struct {
	Patch swrepo.Patch
	// Reason explains what failure class motivated the fix.
	Reason string
}

// Iteration records one loop of the migration workflow.
type Iteration struct {
	RunID string
	// Passed reports whether this iteration's run was fully green.
	Passed bool
	// Regressions counts test regressions against the baseline.
	Regressions int
	// Attribution classifies this iteration's failures.
	Attribution bookkeep.Attribution
	// Interventions lists the fixes applied after this iteration.
	Interventions []Intervention
}

// Report is the outcome of a migration campaign.
type Report struct {
	Experiment string
	Target     platform.Config
	Externals  string
	Iterations []Iteration
	// Succeeded reports whether the final run was fully green.
	Succeeded bool
	// FinalRunID is the last run of the campaign.
	FinalRunID string
	// FinalRevision is the software revision after all interventions.
	FinalRevision int
}

// TotalInterventions counts fixes across all iterations.
func (r *Report) TotalInterventions() int {
	n := 0
	for _, it := range r.Iterations {
		n += len(it.Interventions)
	}
	return n
}

// Recipe renders the validated configuration prescription of a
// successful migration — "the successfully validated recipe of the
// latest configuration" the paper says can be deployed "on a suitable
// resource at the time: an institute cluster, grid, cloud, sky, quantum
// computer, and so on".
func (r *Report) Recipe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# validated recipe: %s on %s\n", r.Experiment, r.Target)
	fmt.Fprintf(&b, "config: %s\nexternals: %s\nsoftware-revision: %d\n", r.Target, r.Externals, r.FinalRevision)
	fmt.Fprintf(&b, "validated-by: %s\n", r.FinalRunID)
	for _, it := range r.Iterations {
		for _, iv := range it.Interventions {
			fmt.Fprintf(&b, "patch: %s  # %s\n", iv.Patch.ID, iv.Reason)
		}
	}
	return b.String()
}

// Planner drives migration campaigns for one experiment.
type Planner struct {
	// Repo is the experiment's software repository; interventions are
	// applied to it.
	Repo *swrepo.Repository
	// Registry resolves compiler behaviour for intervention planning.
	Registry *platform.Registry
	// Book reads past runs for baselines and diffs.
	Book *bookkeep.Book
	// Run executes one validation run on a target.
	Run RunFunc
	// MaxIterations bounds the fix-and-revalidate loop (default 5).
	MaxIterations int
}

// Migrate runs the adapt-and-validate loop against the target
// configuration and externals. It returns the campaign report; the
// report's Succeeded field — not an error — conveys whether the
// migration converged, since a failed campaign is a meaningful result
// that is itself recorded in the bookkeeping.
func (p *Planner) Migrate(target platform.Config, exts *externals.Set, tag string) (*Report, error) {
	if p.Run == nil {
		return nil, fmt.Errorf("migrate: planner has no RunFunc")
	}
	maxIter := p.MaxIterations
	if maxIter <= 0 {
		maxIter = 5
	}
	rep := &Report{
		Experiment: p.Repo.Experiment,
		Target:     target,
		Externals:  exts.String(),
	}
	for i := 0; i < maxIter; i++ {
		rec, err := p.Run(target, exts, fmt.Sprintf("%s (iteration %d)", tag, i+1))
		if err != nil {
			return rep, fmt.Errorf("migrate: iteration %d: %w", i+1, err)
		}
		iter := Iteration{RunID: rec.RunID, Passed: rec.Passed()}
		rep.FinalRunID = rec.RunID
		rep.FinalRevision = p.Repo.Revision

		if iter.Passed {
			rep.Iterations = append(rep.Iterations, iter)
			rep.Succeeded = true
			return rep, nil
		}

		if diff, err := p.Book.DiffAgainstLastSuccess(rec); err == nil {
			iter.Regressions = len(diff.Regressions)
			iter.Attribution = bookkeep.Classify(diff)
		}

		ivs := p.proposeInterventions(target, exts)
		for _, iv := range ivs {
			if err := p.Repo.Apply(iv.Patch); err != nil {
				return rep, fmt.Errorf("migrate: applying %s: %w", iv.Patch.ID, err)
			}
		}
		iter.Interventions = ivs
		rep.Iterations = append(rep.Iterations, iter)
		rep.FinalRevision = p.Repo.Revision

		if len(ivs) == 0 {
			// Nothing left to fix and still failing: the campaign cannot
			// converge (e.g. an external that cannot install).
			return rep, nil
		}
	}
	return rep, nil
}

// proposeInterventions enumerates the source traits that misbehave on
// the target — compile rejections, runtime defects activated by the new
// platform, and removed external APIs — and proposes one patch per
// affected unit or package. This is the mechanized form of the paper's
// "problems identified ... intervention is then required".
func (p *Planner) proposeInterventions(target platform.Config, exts *externals.Set) []Intervention {
	comp, err := p.Registry.Compiler(target.Compiler)
	if err != nil {
		return nil
	}

	type plannedFix struct {
		trait  platform.Trait
		reason string
	}
	var fixes []plannedFix
	for _, tr := range platform.AllTraits() {
		switch tr {
		case platform.TraitANSIC, platform.TraitCxx98, platform.TraitCxx11:
			// Base language traits are never "fixed away".
			continue
		case platform.TraitROOTIOv5:
			if _, ok := exts.ProvidesAPI("root/io/v5"); !ok {
				if _, hasRoot := exts.Get(externals.ROOT); hasRoot {
					fixes = append(fixes, plannedFix{tr, "ROOT 6 removed the v5 I/O layer"})
				}
			}
		case platform.TraitPtrIntCast:
			if target.Arch.Bits() == 64 {
				fixes = append(fixes, plannedFix{tr, "pointer-width defect manifests on 64-bit"})
			}
		case platform.TraitUninitMemory:
			if comp.StackReuse {
				fixes = append(fixes, plannedFix{tr, "uninitialized read exposed by new compiler codegen"})
			}
		case platform.TraitStrictAliasing:
			if comp.Judge(tr) != platform.VerdictOK {
				fixes = append(fixes, plannedFix{tr, "aliasing violation miscompiled by optimizing compiler"})
			}
		default:
			if comp.Judge(tr) == platform.VerdictError {
				fixes = append(fixes, plannedFix{tr, fmt.Sprintf("%s rejected by %s", tr, comp.ID)})
			}
		}
	}

	var ivs []Intervention
	for _, fix := range fixes {
		for _, ref := range p.Repo.UnitsWithTrait(fix.trait) {
			ivs = append(ivs, Intervention{
				Patch: swrepo.Patch{
					ID:      fmt.Sprintf("fix-%s-%s-%s", sanitize(ref.Package), sanitize(ref.Unit), sanitize(fix.trait.String())),
					Package: ref.Package,
					Unit:    ref.Unit,
					Remove:  []platform.Trait{fix.trait},
					Note:    fix.reason,
				},
				Reason: fix.reason,
			})
		}
	}

	// API ports: packages linking APIs the new externals no longer
	// provide, where a successor API exists.
	replacements := map[string]string{"root/io/v5": "root/io/v6"}
	for _, pkg := range p.Repo.Packages() {
		repl := make(map[string]string)
		for _, api := range pkg.UsesAPIs {
			if _, provided := exts.ProvidesAPI(api); provided {
				continue
			}
			if neu, ok := replacements[api]; ok {
				if _, newProvided := exts.ProvidesAPI(neu); newProvided {
					repl[api] = neu
				}
			}
		}
		if len(repl) > 0 {
			ivs = append(ivs, Intervention{
				Patch: swrepo.Patch{
					ID:          fmt.Sprintf("port-%s-io", sanitize(pkg.Name)),
					Package:     pkg.Name,
					ReplaceAPIs: repl,
					Note:        "port to successor external API",
				},
				Reason: "external API removed in new release",
			})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return runner.CompareIDs(ivs[i].Patch.ID, ivs[j].Patch.ID) < 0 })
	return ivs
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, s)
}
