package migrate

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/externals"
	"repro/internal/platform"
)

// ParsedRecipe is the machine-readable form of a validated recipe — what
// a production site needs to reconstruct the certified environment.
type ParsedRecipe struct {
	// Config is the validated platform configuration.
	Config platform.Config
	// ExternalIDs are the "Name-Version" identifiers of the installed
	// external releases.
	ExternalIDs []string
	// Revision is the experiment software revision the recipe was
	// validated at.
	Revision int
	// ValidatedBy is the run ID that certified the recipe.
	ValidatedBy string
	// Patches lists the applied intervention IDs.
	Patches []string
}

// ParseRecipe parses the text produced by Report.Recipe. The paper's
// workflow hands exactly this artifact to production systems ("deployed
// on a suitable resource at the time: an institute cluster, grid,
// cloud, sky, quantum computer, and so on"); parsing it back closes the
// loop.
func ParseRecipe(text string) (*ParsedRecipe, error) {
	pr := &ParsedRecipe{}
	seen := make(map[string]bool)
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, value, found := strings.Cut(line, ":")
		if !found {
			return nil, fmt.Errorf("migrate: recipe line %d has no key: %q", i+1, line)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		// Strip trailing comments from patch lines.
		if idx := strings.Index(value, "#"); idx >= 0 {
			value = strings.TrimSpace(value[:idx])
		}
		switch key {
		case "config":
			cfg, err := platform.ParseConfig(value)
			if err != nil {
				return nil, fmt.Errorf("migrate: recipe line %d: %w", i+1, err)
			}
			pr.Config = cfg
			seen[key] = true
		case "externals":
			if value != "(no externals)" {
				pr.ExternalIDs = strings.Split(value, "+")
			}
			seen[key] = true
		case "software-revision":
			rev, err := strconv.Atoi(value)
			if err != nil || rev < 1 {
				return nil, fmt.Errorf("migrate: recipe line %d: bad revision %q", i+1, value)
			}
			pr.Revision = rev
			seen[key] = true
		case "validated-by":
			pr.ValidatedBy = value
		case "patch":
			pr.Patches = append(pr.Patches, value)
		default:
			return nil, fmt.Errorf("migrate: recipe line %d: unknown key %q", i+1, key)
		}
	}
	for _, required := range []string{"config", "externals", "software-revision"} {
		if !seen[required] {
			return nil, fmt.Errorf("migrate: recipe missing %q line", required)
		}
	}
	return pr, nil
}

// ResolveExternals looks the recipe's external identifiers up in the
// catalogue and returns the installable set.
func (pr *ParsedRecipe) ResolveExternals(cat *externals.Catalogue) (*externals.Set, error) {
	releases := make([]*externals.Release, 0, len(pr.ExternalIDs))
	for _, id := range pr.ExternalIDs {
		name, version, found := strings.Cut(id, "-")
		if !found {
			return nil, fmt.Errorf("migrate: malformed external id %q", id)
		}
		rel, err := cat.Get(externals.Name(name), version)
		if err != nil {
			return nil, err
		}
		releases = append(releases, rel)
	}
	return externals.NewSet(releases...)
}
