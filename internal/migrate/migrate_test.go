package migrate

import (
	"strings"
	"testing"

	"repro/internal/bookkeep"
	"repro/internal/buildsys"
	"repro/internal/chain"
	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/swrepo"
	"repro/internal/valtest"
)

// miniSystem is a small stand-in for the core orchestrator: it builds
// the repository and runs a compile+chain suite on demand.
type miniSystem struct {
	t     *testing.T
	store *storage.Store
	reg   *platform.Registry
	repo  *swrepo.Repository
	rn    *runner.Runner
}

func newMiniSystem(t *testing.T, repo *swrepo.Repository) *miniSystem {
	store := storage.NewStore()
	return &miniSystem{
		t:     t,
		store: store,
		reg:   platform.NewRegistry(),
		repo:  repo,
		rn:    runner.New(store, simclock.New()),
	}
}

func (m *miniSystem) runFunc() RunFunc {
	return func(cfg platform.Config, exts *externals.Set, description string) (*runner.RunRecord, error) {
		build, err := buildsys.NewBuilder(m.reg, m.store).Build(m.repo, cfg, exts)
		if err != nil {
			return nil, err
		}
		suite := valtest.NewSuite(m.repo.Experiment)
		for _, p := range m.repo.Packages() {
			suite.MustAdd(&valtest.CompileTest{Pkg: p.Name})
		}
		sp := chain.DefaultSpec("mainchain", 1500, 99)
		sp.StagePackages = map[chain.Stage]string{
			chain.StageReco:     "reco",
			chain.StageAnalysis: "ana",
		}
		tests, err := sp.Tests()
		if err != nil {
			return nil, err
		}
		for _, tt := range tests {
			suite.MustAdd(tt)
		}
		ctx := &valtest.Context{
			Store:     m.store,
			Env:       storage.Env{},
			Config:    cfg,
			Registry:  m.reg,
			Externals: exts,
			Repo:      m.repo,
			Build:     build,
		}
		return m.rn.Run(suite, ctx, description)
	}
}

func (m *miniSystem) planner() *Planner {
	return &Planner{
		Repo:     m.repo,
		Registry: m.reg,
		Book:     bookkeep.New(m.store),
		Run:      m.runFunc(),
	}
}

func mkPkg(name string, traits ...platform.Trait) *swrepo.Package {
	return &swrepo.Package{Name: name, Units: []*swrepo.SourceUnit{{
		Name: "main.cc", Language: swrepo.LangCxx,
		Traits: append([]platform.Trait{platform.TraitCxx98}, traits...),
		Lines:  400,
	}}}
}

func legacyRepo() *swrepo.Repository {
	repo := swrepo.NewRepository("H1")
	repo.MustAdd(mkPkg("legacy", platform.TraitKAndRDecl))
	repo.MustAdd(mkPkg("reco", platform.TraitUninitMemory))
	repo.MustAdd(mkPkg("ana"))
	return repo
}

func root534(t *testing.T) *externals.Set {
	t.Helper()
	cat := externals.NewCatalogue()
	root, err := cat.Get(externals.ROOT, "5.34")
	if err != nil {
		t.Fatal(err)
	}
	return externals.MustSet(root)
}

// legacy C in C++ unit: KAndRDecl on a .cc unit is synthetic but the
// compile verdict path is identical, which is all that matters here.

func TestMigrateSL6ConvergesWithInterventions(t *testing.T) {
	m := newMiniSystem(t, legacyRepo())
	p := m.planner()
	exts := root534(t)

	// Establish the baseline on the reference platform.
	baseline, err := p.Migrate(platform.ReferenceConfig(), exts, "baseline capture")
	if err != nil {
		t.Fatal(err)
	}
	if !baseline.Succeeded || len(baseline.Iterations) != 1 {
		t.Fatalf("baseline = %+v", baseline)
	}

	// Migrate to SL6/gcc4.4: K&R breaks the compile, the uninit-memory
	// defect breaks data validation. The loop must fix both and converge.
	rep, err := p.Migrate(platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}, exts, "SL6 migration")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded {
		t.Fatalf("migration did not converge: %+v", rep)
	}
	if len(rep.Iterations) != 2 {
		t.Fatalf("iterations = %d, want 2 (fail+fix, then pass)", len(rep.Iterations))
	}
	first := rep.Iterations[0]
	if first.Passed || len(first.Interventions) == 0 {
		t.Fatalf("first iteration = %+v", first)
	}
	if first.Attribution != bookkeep.AttrOS {
		t.Fatalf("attribution = %v, want os (only the config changed)", first.Attribution)
	}
	// Both defect classes were fixed.
	var fixedTraits []string
	for _, iv := range first.Interventions {
		for _, tr := range iv.Patch.Remove {
			fixedTraits = append(fixedTraits, tr.String())
		}
	}
	joined := strings.Join(fixedTraits, ",")
	if !strings.Contains(joined, "k&r-decl") || !strings.Contains(joined, "uninit-memory") {
		t.Fatalf("fixed traits = %v", fixedTraits)
	}
	if rep.FinalRevision <= 1 {
		t.Fatalf("revision = %d, interventions did not bump it", rep.FinalRevision)
	}
	recipe := rep.Recipe()
	for _, want := range []string{"SL6/64bit gcc4.4", "software-revision:", "patch: fix-"} {
		if !strings.Contains(recipe, want) {
			t.Fatalf("recipe missing %q:\n%s", want, recipe)
		}
	}
}

func TestMigrateROOT6PortsAPIs(t *testing.T) {
	repo := swrepo.NewRepository("H1")
	io := mkPkg("reco", platform.TraitROOTIOv5)
	io.UsesAPIs = []string{"root/io/v5", "root/hist"}
	repo.MustAdd(io)
	repo.MustAdd(mkPkg("ana"))

	m := newMiniSystem(t, repo)
	p := m.planner()
	cat := externals.NewCatalogue()
	root5, _ := cat.Get(externals.ROOT, "5.34")
	root6, _ := cat.Get(externals.ROOT, "6.02")

	base, err := p.Migrate(platform.ReferenceConfig(), externals.MustSet(root5), "baseline")
	if err != nil || !base.Succeeded {
		t.Fatalf("baseline: %+v, %v", base, err)
	}

	sl6gcc48 := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.8"}
	rep, err := p.Migrate(sl6gcc48, externals.MustSet(root6), "ROOT 6 migration")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded {
		t.Fatalf("ROOT 6 migration did not converge: %+v", rep)
	}
	pkg, _ := repo.Get("reco")
	for _, api := range pkg.UsesAPIs {
		if api == "root/io/v5" {
			t.Fatal("v5 API not ported")
		}
	}
	if pkg.Units[0].HasTrait(platform.TraitROOTIOv5) {
		t.Fatal("v5 I/O trait not removed")
	}
}

func TestMigrateGivesUpWhenNothingToFix(t *testing.T) {
	// An externals set that cannot install on the target produces a
	// RunFunc error — the campaign reports it rather than looping.
	repo := swrepo.NewRepository("H1")
	repo.MustAdd(mkPkg("ana"))
	m := newMiniSystem(t, repo)
	p := m.planner()
	cat := externals.NewCatalogue()
	root6, _ := cat.Get(externals.ROOT, "6.02")

	sl6gcc44 := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
	_, err := p.Migrate(sl6gcc44, externals.MustSet(root6), "doomed")
	if err == nil {
		t.Fatal("impossible migration reported success")
	}
}

func TestMigrateIterationBudget(t *testing.T) {
	// A suite that always fails must stop after MaxIterations.
	repo := swrepo.NewRepository("H1")
	repo.MustAdd(mkPkg("ana"))
	calls := 0
	p := &Planner{
		Repo:     repo,
		Registry: platform.NewRegistry(),
		Book:     bookkeep.New(storage.NewStore()),
		Run: func(cfg platform.Config, exts *externals.Set, desc string) (*runner.RunRecord, error) {
			calls++
			return &runner.RunRecord{
				RunID:      "run-x",
				Experiment: "H1",
				Jobs: []runner.JobRecord{{Result: valtest.Result{
					Test: "t", Outcome: valtest.OutcomeFail,
				}}},
			}, nil
		},
		MaxIterations: 3,
	}
	rep, err := p.Migrate(platform.ReferenceConfig(), root534(t), "hopeless")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Succeeded {
		t.Fatal("hopeless campaign succeeded")
	}
	// With nothing to fix, the loop exits after the first iteration.
	if calls != 1 {
		t.Fatalf("runs = %d, want 1 (no interventions possible)", calls)
	}
	if rep.TotalInterventions() != 0 {
		t.Fatalf("interventions = %d", rep.TotalInterventions())
	}
}

func TestPlannerRequiresRunFunc(t *testing.T) {
	p := &Planner{Repo: swrepo.NewRepository("H1"), Registry: platform.NewRegistry()}
	if _, err := p.Migrate(platform.ReferenceConfig(), root534(t), "x"); err == nil {
		t.Fatal("planner without RunFunc accepted")
	}
}
