package migrate

import (
	"strings"
	"testing"

	"repro/internal/externals"
	"repro/internal/platform"
)

const sampleRecipe = `# validated recipe: H1 on SL6/64bit gcc4.4
config: SL6/64bit gcc4.4
externals: CERNLIB-2006+MCGen-1.4+ROOT-5.34
software-revision: 8
validated-by: run-0004
patch: fix-reco-main-cc-uninit-memory  # uninitialized read exposed by new compiler codegen
patch: fix-legacy-main-cc-k-r-decl  # k&r-decl rejected by gcc4.4
`

func TestParseRecipe(t *testing.T) {
	pr, err := ParseRecipe(sampleRecipe)
	if err != nil {
		t.Fatal(err)
	}
	want := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
	if pr.Config != want {
		t.Fatalf("config = %v", pr.Config)
	}
	if len(pr.ExternalIDs) != 3 || pr.ExternalIDs[2] != "ROOT-5.34" {
		t.Fatalf("externals = %v", pr.ExternalIDs)
	}
	if pr.Revision != 8 || pr.ValidatedBy != "run-0004" {
		t.Fatalf("revision=%d validated-by=%q", pr.Revision, pr.ValidatedBy)
	}
	if len(pr.Patches) != 2 || !strings.HasPrefix(pr.Patches[0], "fix-reco") {
		t.Fatalf("patches = %v", pr.Patches)
	}
}

func TestParseRecipeRoundTripFromReport(t *testing.T) {
	rep := &Report{
		Experiment:    "H1",
		Target:        platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"},
		Externals:     "ROOT-5.34",
		FinalRunID:    "run-0042",
		FinalRevision: 3,
		Succeeded:     true,
	}
	pr, err := ParseRecipe(rep.Recipe())
	if err != nil {
		t.Fatal(err)
	}
	if pr.Config != rep.Target || pr.Revision != 3 || pr.ValidatedBy != "run-0042" {
		t.Fatalf("parsed = %+v", pr)
	}
}

func TestParseRecipeErrors(t *testing.T) {
	cases := map[string]string{
		"no key":        "just some text\n",
		"bad config":    "config: not a config\nexternals: X-1\nsoftware-revision: 1\n",
		"bad revision":  "config: SL5/32bit gcc4.1\nexternals: X-1\nsoftware-revision: zero\n",
		"unknown key":   "config: SL5/32bit gcc4.1\nexternals: X-1\nsoftware-revision: 1\ncolor: red\n",
		"missing lines": "config: SL5/32bit gcc4.1\n",
	}
	for name, text := range cases {
		if _, err := ParseRecipe(text); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestParseRecipeNoExternals(t *testing.T) {
	pr, err := ParseRecipe("config: SL5/32bit gcc4.1\nexternals: (no externals)\nsoftware-revision: 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.ExternalIDs) != 0 {
		t.Fatalf("externals = %v", pr.ExternalIDs)
	}
}

func TestResolveExternals(t *testing.T) {
	cat := externals.NewCatalogue()
	pr := &ParsedRecipe{ExternalIDs: []string{"ROOT-5.34", "CERNLIB-2006"}}
	set, err := pr.ResolveExternals(cat)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("set = %v", set)
	}
	if _, ok := set.Get(externals.ROOT); !ok {
		t.Fatal("ROOT missing")
	}

	bad := &ParsedRecipe{ExternalIDs: []string{"ROOT-9.99"}}
	if _, err := bad.ResolveExternals(cat); err == nil {
		t.Fatal("unknown release resolved")
	}
	malformed := &ParsedRecipe{ExternalIDs: []string{"NOVERSION"}}
	if _, err := malformed.ResolveExternals(cat); err == nil {
		t.Fatal("malformed id resolved")
	}
}
