package buildsys

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/simrand"
	"repro/internal/storage"
	"repro/internal/swrepo"
)

func fixture(t *testing.T) (*Builder, *externals.Catalogue, *storage.Store) {
	t.Helper()
	store := storage.NewStore()
	return NewBuilder(platform.NewRegistry(), store), externals.NewCatalogue(), store
}

func root534Set(t *testing.T, cat *externals.Catalogue) *externals.Set {
	t.Helper()
	root, err := cat.Get(externals.ROOT, "5.34")
	if err != nil {
		t.Fatal(err)
	}
	cern, err := cat.Get(externals.CERNLIB, "2006")
	if err != nil {
		t.Fatal(err)
	}
	mc, err := cat.Get(externals.MCGen, "1.4")
	if err != nil {
		t.Fatal(err)
	}
	return externals.MustSet(root, cern, mc)
}

func cleanPackage(name string, deps ...string) *swrepo.Package {
	return &swrepo.Package{
		Name: name,
		Deps: deps,
		Units: []*swrepo.SourceUnit{
			{Name: "a.cc", Language: swrepo.LangCxx, Traits: []platform.Trait{platform.TraitCxx98}, Lines: 500},
		},
	}
}

func sl5ref() platform.Config { return platform.ReferenceConfig() }

// genRepo generates a clean repository of n packages for concurrency
// tests (no legacy code or defects, so builds succeed everywhere).
func genRepo(t *testing.T, n int) *swrepo.Repository {
	t.Helper()
	spec := swrepo.DefaultSpec("H1")
	spec.Packages = n
	spec.LegacyFraction = 0
	spec.DefectRate = 0
	spec.SensitiveFraction = 0
	repo, err := swrepo.Generate(spec, simrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func sl6() platform.Config {
	return platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
}

func TestCleanRepoBuildsEverywhere(t *testing.T) {
	b, cat, _ := fixture(t)
	repo := swrepo.NewRepository("H1")
	repo.MustAdd(cleanPackage("liba"))
	repo.MustAdd(cleanPackage("app", "liba"))
	exts := root534Set(t, cat)

	for _, cfg := range platform.PaperConfigs() {
		res, err := b.Build(repo, cfg, exts)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if !res.Succeeded() {
			t.Fatalf("%v: clean repo failed: %+v", cfg, res.Packages)
		}
	}
}

func TestKAndRFailsOnGcc44(t *testing.T) {
	b, cat, _ := fixture(t)
	repo := swrepo.NewRepository("H1")
	pkg := cleanPackage("legacy")
	pkg.Units[0].Traits = append(pkg.Units[0].Traits, platform.TraitKAndRDecl)
	repo.MustAdd(pkg)
	exts := root534Set(t, cat)

	res, err := b.Build(repo, sl5ref(), exts) // gcc4.1: warning only
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := res.Find("legacy")
	if !pr.Succeeded() || pr.Warnings() == 0 {
		t.Fatalf("gcc4.1 K&R build = %+v, want success with warning", pr)
	}

	res, err = b.Build(repo, sl6(), exts) // gcc4.4: error
	if err != nil {
		t.Fatal(err)
	}
	pr, _ = res.Find("legacy")
	if pr.Status != StatusFailed || pr.Errors() == 0 {
		t.Fatalf("gcc4.4 K&R build = %+v, want failure", pr)
	}
}

func TestDependentsSkippedOnFailure(t *testing.T) {
	b, cat, _ := fixture(t)
	repo := swrepo.NewRepository("H1")
	broken := cleanPackage("broken")
	broken.Units[0].Traits = append(broken.Units[0].Traits, platform.TraitKAndRDecl)
	repo.MustAdd(broken)
	repo.MustAdd(cleanPackage("mid", "broken"))
	repo.MustAdd(cleanPackage("top", "mid"))
	repo.MustAdd(cleanPackage("island"))

	res, err := b.Build(repo, sl6(), root534Set(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	ok, failedN, skipped, _ := res.Counts()
	if failedN != 1 || skipped != 2 || ok != 1 {
		t.Fatalf("counts = ok%d failed:%d skipped:%d", ok, failedN, skipped)
	}
	mid, _ := res.Find("mid")
	if mid.Status != StatusSkipped || len(mid.FailedDeps) != 1 || mid.FailedDeps[0] != "broken" {
		t.Fatalf("mid = %+v", mid)
	}
}

func TestMissingAPIFailsLink(t *testing.T) {
	b, cat, _ := fixture(t)
	repo := swrepo.NewRepository("H1")
	pkg := cleanPackage("ana")
	pkg.UsesAPIs = []string{"root/hist", "mcgen/ascii"} // ascii only in MCGen 2.1
	repo.MustAdd(pkg)

	res, err := b.Build(repo, sl5ref(), root534Set(t, cat)) // has MCGen 1.4
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := res.Find("ana")
	if pr.Status != StatusFailed {
		t.Fatalf("status = %v, want failed", pr.Status)
	}
	if len(pr.MissingAPIs) != 1 || pr.MissingAPIs[0] != "mcgen/ascii" {
		t.Fatalf("MissingAPIs = %v", pr.MissingAPIs)
	}
}

func TestROOTIOv5TraitAgainstROOT6(t *testing.T) {
	b, cat, _ := fixture(t)
	repo := swrepo.NewRepository("H1")
	pkg := cleanPackage("io")
	pkg.Units[0].Traits = append(pkg.Units[0].Traits, platform.TraitROOTIOv5)
	repo.MustAdd(pkg)

	root6, _ := cat.Get(externals.ROOT, "6.02")
	exts6 := externals.MustSet(root6)
	cfg := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.8"}
	res, err := b.Build(repo, cfg, exts6)
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := res.Find("io")
	if pr.Status != StatusFailed {
		t.Fatalf("ROOT5 I/O against ROOT6 = %v, want failed", pr.Status)
	}
	// Against ROOT 5 on the same platform the build is fine.
	res, err = b.Build(repo, cfg, root534Set(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	pr, _ = res.Find("io")
	if !pr.Succeeded() {
		t.Fatalf("ROOT5 I/O against ROOT5 = %+v, want success", pr)
	}
}

func TestUninstallableExternalsIsInputError(t *testing.T) {
	b, cat, _ := fixture(t)
	repo := swrepo.NewRepository("H1")
	repo.MustAdd(cleanPackage("a"))
	root6, _ := cat.Get(externals.ROOT, "6.02")
	// ROOT 6 needs C++11; gcc4.4 cannot install it at all.
	if _, err := b.Build(repo, sl6(), externals.MustSet(root6)); err == nil {
		t.Fatal("Build accepted externals that cannot install on the config")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	b, cat, _ := fixture(t)
	repo := swrepo.NewRepository("H1")
	repo.MustAdd(cleanPackage("a"))
	bad := platform.Config{OS: "SL7", Arch: platform.I386, Compiler: "gcc4.8"}
	if _, err := b.Build(repo, bad, root534Set(t, cat)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestArtifactStoredAndUnpackable(t *testing.T) {
	b, cat, store := fixture(t)
	repo := swrepo.NewRepository("H1")
	repo.MustAdd(cleanPackage("lib"))
	res, err := b.Build(repo, sl5ref(), root534Set(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := res.Find("lib")
	data, err := store.Get("artifacts", pr.ArtifactKey)
	if err != nil {
		t.Fatal(err)
	}
	files, err := storage.UnpackTarball(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := files["MANIFEST"]; !ok {
		t.Fatal("artifact missing MANIFEST")
	}
	if _, ok := files["obj/a.cc.o"]; !ok {
		t.Fatalf("artifact missing object file, has %v", keys(files))
	}
}

func keys(m map[string][]byte) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestBuildCacheHit(t *testing.T) {
	b, cat, _ := fixture(t)
	repo := swrepo.NewRepository("H1")
	repo.MustAdd(cleanPackage("lib"))
	exts := root534Set(t, cat)

	first, err := b.Build(repo, sl5ref(), exts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := b.Build(repo, sl5ref(), exts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Packages[0].Status != StatusCached {
		t.Fatalf("second build = %v, want cached", second.Packages[0].Status)
	}
	if second.Cost >= first.Cost {
		t.Fatalf("cached build cost %v >= cold cost %v", second.Cost, first.Cost)
	}
	// A different config must not hit the cache.
	third, err := b.Build(repo, sl6(), exts)
	if err != nil {
		t.Fatal(err)
	}
	if third.Packages[0].Status == StatusCached {
		t.Fatal("different config hit the cache")
	}
}

func TestCacheInvalidatedByPatch(t *testing.T) {
	b, cat, _ := fixture(t)
	repo := swrepo.NewRepository("H1")
	pkg := cleanPackage("lib")
	pkg.Units[0].Traits = append(pkg.Units[0].Traits, platform.TraitAutoPtr)
	repo.MustAdd(pkg)
	exts := root534Set(t, cat)

	if _, err := b.Build(repo, sl5ref(), exts); err != nil {
		t.Fatal(err)
	}
	err := repo.Apply(swrepo.Patch{
		ID: "fix", Package: "lib", Unit: "a.cc",
		Remove: []platform.Trait{platform.TraitAutoPtr},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Build(repo, sl5ref(), exts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packages[0].Status == StatusCached {
		t.Fatal("patched package hit the stale cache")
	}
}

func TestCacheDisabled(t *testing.T) {
	b, cat, _ := fixture(t)
	b.UseCache = false
	repo := swrepo.NewRepository("H1")
	repo.MustAdd(cleanPackage("lib"))
	exts := root534Set(t, cat)
	_, _ = b.Build(repo, sl5ref(), exts)
	res, _ := b.Build(repo, sl5ref(), exts)
	if res.Packages[0].Status == StatusCached {
		t.Fatal("cache hit with caching disabled")
	}
}

func TestGeneratedH1RepoBuildShape(t *testing.T) {
	b, cat, _ := fixture(t)
	repo := swrepo.MustGenerate(swrepo.DefaultSpec("h1"), simrand.New(42))
	exts := root534Set(t, cat)

	// On the reference platform everything legacy still compiles (K&R is
	// only a warning on gcc4.1), so the build should largely succeed.
	ref, err := b.Build(repo, sl5ref(), exts)
	if err != nil {
		t.Fatal(err)
	}
	okRef, failedRef, _, _ := ref.Counts()
	if okRef < 90 {
		t.Fatalf("reference build: only %d/100 ok (%d failed)", okRef, failedRef)
	}

	// The SL6 migration exposes K&R-heavy legacy packages.
	mig, err := b.Build(repo, sl6(), exts)
	if err != nil {
		t.Fatal(err)
	}
	okMig, failedMig, skippedMig, _ := mig.Counts()
	if failedMig == 0 {
		t.Fatal("SL6 migration of a legacy-heavy repo failed nothing — defect model inert")
	}
	t.Logf("SL6 migration: ok=%d failed=%d skipped=%d", okMig, failedMig, skippedMig)
}

func TestDiagnosticMessagesNameThePackage(t *testing.T) {
	b, cat, _ := fixture(t)
	repo := swrepo.NewRepository("H1")
	pkg := cleanPackage("legacy")
	pkg.Units[0].Traits = append(pkg.Units[0].Traits, platform.TraitKAndRDecl)
	repo.MustAdd(pkg)
	res, _ := b.Build(repo, sl6(), root534Set(t, cat))
	pr, _ := res.Find("legacy")
	if len(pr.Diagnostics) == 0 || !strings.Contains(pr.Diagnostics[0].Message, "legacy") {
		t.Fatalf("diagnostics = %+v", pr.Diagnostics)
	}
}

// TestConcurrentIdenticalBuildsCoalesce checks the singleflight layer:
// many workers asking for the same (repository revision, configuration,
// externals) build must share one compilation instead of each paying for
// it. Run with -race.
func TestConcurrentIdenticalBuildsCoalesce(t *testing.T) {
	b, cat, _ := fixture(t)
	exts := root534Set(t, cat)
	repo := genRepo(t, 30)

	// Pre-register the in-flight call so every worker is guaranteed to
	// arrive while the build is "running" — this makes the coalescing
	// deterministic instead of depending on scheduler interleaving.
	key := buildKey(repo, platform.ReferenceConfig(), exts)
	c := &buildCall{done: make(chan struct{})}
	b.mu.Lock()
	b.inflight[key] = c
	b.mu.Unlock()

	const workers = 8
	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := b.Build(repo, platform.ReferenceConfig(), exts)
			if err != nil {
				t.Error(err)
				return
			}
			results[w] = res
		}(w)
	}
	// Wait until every worker has joined the in-flight call, then let the
	// one real compilation complete.
	for b.DedupHits() < workers {
		time.Sleep(time.Millisecond)
	}
	res0, err := b.build(repo, platform.ReferenceConfig(), exts)
	if err != nil {
		t.Fatal(err)
	}
	c.res = res0
	b.mu.Lock()
	delete(b.inflight, key)
	b.mu.Unlock()
	close(c.done)
	wg.Wait()

	for _, res := range results {
		if res != res0 {
			t.Fatal("a worker did not share the coalesced build result")
		}
		if !res.Succeeded() {
			t.Fatal("the coalesced build failed")
		}
	}
	if hits := b.DedupHits(); hits != workers {
		t.Fatalf("DedupHits = %d, want %d", hits, workers)
	}
	// A sequential rebuild afterwards is a fresh walk that hits the
	// per-package tar-ball cache, not the singleflight.
	res, err := b.Build(repo, platform.ReferenceConfig(), exts)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, cached := res.Counts()
	if cached != len(res.Packages) {
		t.Fatalf("sequential rebuild: %d/%d packages cached", cached, len(res.Packages))
	}
}

// TestConcurrentDistinctBuildsDoNotCoalesce makes sure different
// configurations never share a result.
func TestConcurrentDistinctBuildsDoNotCoalesce(t *testing.T) {
	b, cat, _ := fixture(t)
	exts := root534Set(t, cat)
	repo := genRepo(t, 10)

	cfgs := platform.PaperConfigs()
	results := make([]*Result, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg platform.Config) {
			defer wg.Done()
			res, err := b.Build(repo, cfg, exts)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i, cfg)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			t.Fatalf("build %d missing", i)
		}
		if res.Config != cfgs[i] {
			t.Fatalf("build %d got config %v, want %v", i, res.Config, cfgs[i])
		}
	}
}
