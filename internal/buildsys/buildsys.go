// Package buildsys simulates building experiment software on a platform
// configuration against a set of external dependencies.
//
// This is the first half of the paper's Figure 2 workload: "the
// compilation of approximately 100 individual H1 software packages and
// the identified external dependencies is carried out, where the
// resulting binaries are stored as tar-balls on the common storage
// within the sp-system."
//
// A build walks the repository in dependency order; each source unit is
// judged by the configuration's compiler against the unit's traits, and
// each package's external API usage is checked against the installed
// externals. Successful packages produce deterministic tarball artifacts
// on the common storage; packages whose dependencies failed are skipped
// rather than misreported as broken themselves — the distinction drives
// the failure-attribution logic in the bookkeeping system.
package buildsys

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/swrepo"
)

// Status classifies a package build outcome.
type Status int

const (
	// StatusOK means the package compiled (possibly with warnings) and
	// produced an artifact.
	StatusOK Status = iota
	// StatusFailed means compilation or linking failed.
	StatusFailed
	// StatusSkipped means a dependency failed, so the package was not
	// attempted.
	StatusSkipped
	// StatusCached means a previous identical build's artifact was
	// reused without compiling.
	StatusCached
)

// String returns "ok", "failed", "skipped" or "cached".
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusFailed:
		return "failed"
	case StatusSkipped:
		return "skipped"
	default:
		return "cached"
	}
}

// Diagnostic is one compiler message attributed to a source unit trait.
type Diagnostic struct {
	Unit    string
	Trait   platform.Trait
	Verdict platform.Verdict
	Message string
}

// PackageResult is the outcome of building one package.
type PackageResult struct {
	Package string
	Status  Status
	// Diagnostics holds warnings and errors in unit order.
	Diagnostics []Diagnostic
	// MissingAPIs lists external API surfaces the installed externals do
	// not provide (a link failure).
	MissingAPIs []string
	// FailedDeps names the dependencies whose failure caused a skip.
	FailedDeps []string
	// ArtifactKey is the storage key of the produced tarball, set when
	// Status is StatusOK or StatusCached.
	ArtifactKey string
	// Cost is the simulated compile time.
	Cost time.Duration
}

// Succeeded reports whether an artifact is available.
func (r *PackageResult) Succeeded() bool {
	return r.Status == StatusOK || r.Status == StatusCached
}

// Warnings counts warning-level diagnostics.
func (r *PackageResult) Warnings() int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Verdict == platform.VerdictWarn {
			n++
		}
	}
	return n
}

// Errors counts error-level diagnostics.
func (r *PackageResult) Errors() int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Verdict == platform.VerdictError {
			n++
		}
	}
	return n
}

// Result is the outcome of building a whole repository.
type Result struct {
	Experiment string
	Revision   int
	Config     platform.Config
	Externals  string
	// Packages holds per-package results in build order.
	Packages []PackageResult
	// Cost is the total simulated build time.
	Cost time.Duration
}

// Counts returns the number of packages per status.
func (r *Result) Counts() (ok, failed, skipped, cached int) {
	for _, p := range r.Packages {
		switch p.Status {
		case StatusOK:
			ok++
		case StatusFailed:
			failed++
		case StatusSkipped:
			skipped++
		case StatusCached:
			cached++
		}
	}
	return
}

// Succeeded reports whether every package produced an artifact.
func (r *Result) Succeeded() bool {
	for _, p := range r.Packages {
		if !p.Succeeded() {
			return false
		}
	}
	return true
}

// Find returns the result for the named package.
func (r *Result) Find(name string) (*PackageResult, bool) {
	for i := range r.Packages {
		if r.Packages[i].Package == name {
			return &r.Packages[i], true
		}
	}
	return nil, false
}

// Builder compiles repositories. The zero value is not usable; create
// one with NewBuilder. A Builder is safe for concurrent use: the
// underlying store is thread-safe, and concurrent Build calls with
// identical inputs (same repository revision, configuration and
// externals) are coalesced — one worker compiles, the rest wait and
// share its result rather than rebuilding.
type Builder struct {
	reg   *platform.Registry
	store *storage.Store
	// UseCache enables artifact reuse across builds with identical
	// inputs (package content, dependencies, configuration, externals).
	UseCache bool
	// compileSpeed is simulated lines compiled per second.
	compileSpeed float64

	// inflight coalesces concurrent identical builds (singleflight).
	mu        sync.Mutex
	inflight  map[string]*buildCall // guarded by mu
	dedupHits int64                 // guarded by mu
}

// buildCall is one in-flight Build shared by duplicate concurrent calls.
type buildCall struct {
	done chan struct{}
	res  *Result
	err  error
}

// NewBuilder returns a Builder writing artifacts to the given store.
func NewBuilder(reg *platform.Registry, store *storage.Store) *Builder {
	return &Builder{
		reg: reg, store: store, UseCache: true, compileSpeed: 20000,
		inflight: make(map[string]*buildCall),
	}
}

// ArtifactNS is the storage namespace holding build tarballs — exported
// so status surfaces (spserve) can resolve a build job's
// Result.OutputKey to its blob.
const ArtifactNS = "artifacts"

// DedupHits reports how many Build calls were answered by waiting on an
// identical concurrent build instead of compiling.
func (b *Builder) DedupHits() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dedupHits
}

// buildKey identifies a build for concurrent deduplication: repository
// identity and revision, configuration and externals. Two Validate calls
// racing on the same cell compile once.
func buildKey(repo *swrepo.Repository, cfg platform.Config, exts *externals.Set) string {
	return fmt.Sprintf("%p@%d|%s|%s", repo, repo.Revision, cfg.Key(), exts.Key())
}

// Build compiles the repository on the configuration against the
// externals, in dependency order. It returns an error only for
// invalid inputs (unknown platform, cyclic repository); compile failures
// are reported in the Result.
//
// Concurrent Build calls with the same repository revision,
// configuration and externals share a single compilation; sequential
// repeat builds still re-walk the repository and hit the per-package
// tar-ball cache instead (StatusCached), preserving the cache ablation's
// cold/warm distinction.
func (b *Builder) Build(repo *swrepo.Repository, cfg platform.Config, exts *externals.Set) (*Result, error) {
	key := buildKey(repo, cfg, exts)
	b.mu.Lock()
	if b.inflight == nil {
		b.inflight = make(map[string]*buildCall)
	}
	if c, ok := b.inflight[key]; ok {
		b.dedupHits++
		b.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &buildCall{done: make(chan struct{})}
	b.inflight[key] = c
	b.mu.Unlock()

	c.res, c.err = b.build(repo, cfg, exts)

	b.mu.Lock()
	delete(b.inflight, key)
	b.mu.Unlock()
	close(c.done)
	return c.res, c.err
}

// build performs the actual compilation walk.
func (b *Builder) build(repo *swrepo.Repository, cfg platform.Config, exts *externals.Set) (*Result, error) {
	if err := cfg.Validate(b.reg); err != nil {
		return nil, fmt.Errorf("buildsys: %w", err)
	}
	comp, err := b.reg.Compiler(cfg.Compiler)
	if err != nil {
		return nil, err
	}
	if err := exts.InstallableOn(cfg, b.reg); err != nil {
		// Externals that cannot even be installed fail every package
		// that uses them; surface it as an input error so the caller
		// (the image builder) can report it at the right layer.
		return nil, fmt.Errorf("buildsys: externals not installable: %w", err)
	}
	order, err := repo.BuildOrder()
	if err != nil {
		return nil, fmt.Errorf("buildsys: %w", err)
	}

	res := &Result{
		Experiment: repo.Experiment,
		Revision:   repo.Revision,
		Config:     cfg,
		Externals:  exts.String(),
	}
	artifacts := make(map[string]string) // package -> artifact key
	failed := make(map[string]bool)

	for _, pkg := range order {
		pr := b.buildPackage(pkg, comp, cfg, exts, artifacts, failed)
		if pr.Succeeded() {
			artifacts[pkg.Name] = pr.ArtifactKey
		} else {
			failed[pkg.Name] = true
		}
		res.Cost += pr.Cost
		res.Packages = append(res.Packages, pr)
	}
	return res, nil
}

func (b *Builder) buildPackage(pkg *swrepo.Package, comp *platform.Compiler, cfg platform.Config,
	exts *externals.Set, artifacts map[string]string, failed map[string]bool) PackageResult {

	pr := PackageResult{Package: pkg.Name}

	for _, dep := range pkg.Deps {
		if failed[dep] {
			pr.FailedDeps = append(pr.FailedDeps, dep)
		}
	}
	if len(pr.FailedDeps) > 0 {
		sort.Strings(pr.FailedDeps)
		pr.Status = StatusSkipped
		return pr
	}

	sig := b.signature(pkg, cfg, exts, artifacts)
	if b.UseCache && b.store.Exists(ArtifactNS, sig) {
		pr.Status = StatusCached
		pr.ArtifactKey = sig
		return pr
	}

	// Link check: every used API must be provided by the externals.
	pr.MissingAPIs = exts.MissingAPIs(pkg.UsesAPIs)

	// Compile each unit; the package cost is paid even when it fails
	// (the compiler ran).
	for _, u := range pkg.Units {
		pr.Cost += time.Duration(float64(u.Lines) / b.compileSpeed * float64(time.Second))
		for _, tr := range u.Traits {
			v := b.judge(comp, exts, tr)
			if v == platform.VerdictOK {
				continue
			}
			pr.Diagnostics = append(pr.Diagnostics, Diagnostic{
				Unit:    u.Name,
				Trait:   tr,
				Verdict: v,
				Message: fmt.Sprintf("%s: %s: %v [%v]", pkg.Name, u.Name, tr, v),
			})
		}
	}

	if pr.Errors() > 0 || len(pr.MissingAPIs) > 0 {
		pr.Status = StatusFailed
		return pr
	}

	tarball, err := b.makeArtifact(pkg, cfg, exts)
	if err != nil {
		pr.Status = StatusFailed
		pr.Diagnostics = append(pr.Diagnostics, Diagnostic{
			Unit: "(packaging)", Verdict: platform.VerdictError,
			Message: fmt.Sprintf("%s: packaging failed: %v", pkg.Name, err),
		})
		return pr
	}
	if _, err := b.store.Put(ArtifactNS, sig, tarball); err != nil {
		pr.Status = StatusFailed
		pr.Diagnostics = append(pr.Diagnostics, Diagnostic{
			Unit: "(storage)", Verdict: platform.VerdictError,
			Message: fmt.Sprintf("%s: storing artifact: %v", pkg.Name, err),
		})
		return pr
	}
	pr.Status = StatusOK
	pr.ArtifactKey = sig
	return pr
}

// judge extends the compiler's trait verdicts with the externals-level
// judgement for API-era traits.
func (b *Builder) judge(comp *platform.Compiler, exts *externals.Set, tr platform.Trait) platform.Verdict {
	if tr == platform.TraitROOTIOv5 {
		if _, ok := exts.ProvidesAPI("root/io/v5"); ok {
			return platform.VerdictOK
		}
		if _, ok := exts.Get(externals.ROOT); ok {
			// A ROOT without the v5 I/O layer: ROOT 6 removed it.
			return platform.VerdictError
		}
		// No ROOT at all: the missing-API link check reports it.
		return platform.VerdictOK
	}
	return comp.Judge(tr)
}

// signature computes the build cache key: a hash of everything that can
// change the artifact.
func (b *Builder) signature(pkg *swrepo.Package, cfg platform.Config, exts *externals.Set, artifacts map[string]string) string {
	h := sha256.New()
	fmt.Fprintf(h, "pkg:%s\ncfg:%s\next:%s\n", pkg.Name, cfg.Key(), exts.Key())
	for _, u := range pkg.Units {
		fmt.Fprintf(h, "unit:%s:%v:%d:", u.Name, u.Language, u.Lines)
		for _, tr := range u.Traits {
			fmt.Fprintf(h, "%d,", tr)
		}
		fmt.Fprintln(h)
	}
	deps := append([]string(nil), pkg.Deps...)
	sort.Strings(deps)
	for _, d := range deps {
		fmt.Fprintf(h, "dep:%s=%s\n", d, artifacts[d])
	}
	apis := append([]string(nil), pkg.UsesAPIs...)
	sort.Strings(apis)
	for _, a := range apis {
		fmt.Fprintf(h, "api:%s\n", a)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// makeArtifact builds the package's tarball: one deterministic pseudo
// object file per unit plus a manifest.
func (b *Builder) makeArtifact(pkg *swrepo.Package, cfg platform.Config, exts *externals.Set) ([]byte, error) {
	files := make(map[string][]byte, len(pkg.Units)+1)
	manifest := fmt.Sprintf("package: %s\nconfig: %s\nexternals: %s\n", pkg.Name, cfg, exts)
	files["MANIFEST"] = []byte(manifest)
	for _, u := range pkg.Units {
		sum := sha256.Sum256([]byte(fmt.Sprintf("%s/%s@%s+%s", pkg.Name, u.Name, cfg.Key(), exts.Key())))
		files["obj/"+u.Name+".o"] = sum[:]
	}
	return storage.PackTarball(files)
}
