package buildsys

import (
	"testing"

	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/simrand"
	"repro/internal/storage"
	"repro/internal/swrepo"
)

func benchFixture(b *testing.B, packages int) (*Builder, *swrepo.Repository, *externals.Set) {
	b.Helper()
	spec := swrepo.DefaultSpec("bench")
	spec.Packages = packages
	repo, err := swrepo.Generate(spec, simrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	cat := externals.NewCatalogue()
	root, _ := cat.Get(externals.ROOT, "5.34")
	cern, _ := cat.Get(externals.CERNLIB, "2006")
	mc, _ := cat.Get(externals.MCGen, "1.4")
	return NewBuilder(platform.NewRegistry(), storage.NewStore()), repo, externals.MustSet(root, cern, mc)
}

func BenchmarkBuild100PackagesCold(b *testing.B) {
	builder, repo, exts := benchFixture(b, 100)
	builder.UseCache = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := builder.Build(repo, platform.ReferenceConfig(), exts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild100PackagesWarm(b *testing.B) {
	builder, repo, exts := benchFixture(b, 100)
	if _, err := builder.Build(repo, platform.ReferenceConfig(), exts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := builder.Build(repo, platform.ReferenceConfig(), exts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildOrder(b *testing.B) {
	_, repo, _ := benchFixture(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repo.BuildOrder(); err != nil {
			b.Fatal(err)
		}
	}
}
