// Package vmhost models the virtualisation layer of the sp-system: "a
// framework capable of hosting a number of virtual machine images, built
// with different configurations of operating systems and the relevant
// software, including any necessary external dependencies."
//
// An Image is a platform configuration plus an installed external
// software set; a Client is a machine (virtual or physical) booted from
// an image. The paper's client contract is deliberately thin — "the only
// requirement of a new machine is to have access to the common sp-system
// storage ... as well as the ability to run a cron-job on the client" —
// and the types here enforce exactly that: a client cannot be attached
// without a storage handle, and carries a cron specification.
package vmhost

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/storage"
)

// Image is a bootable machine image: an OS/compiler configuration with
// external software installed.
type Image struct {
	// ID is derived from the image contents; two images with the same
	// configuration and externals are the same image.
	ID string
	// Config is the platform configuration.
	Config platform.Config
	// Externals is the installed external software.
	Externals *externals.Set
	// BuiltAt records when the image was produced.
	BuiltAt time.Time
	// Frozen marks the image as conserved — the paper's final phase,
	// after which the image is kept but no longer maintained.
	Frozen bool
}

// Label returns the human-readable image description used in reports,
// e.g. "SL6/64bit gcc4.4 [CERNLIB-2006+ROOT-5.34]".
func (im *Image) Label() string {
	return fmt.Sprintf("%s [%s]", im.Config, im.Externals)
}

// Recipe renders the image's build prescription — the artifact the
// paper says the sp-system supplies to production systems: "it can help
// to prepare a production system by supplying the successfully validated
// recipe of the latest configuration".
func (im *Image) Recipe() string {
	s := fmt.Sprintf("os: %s\narch: %s\ncompiler: %s\n", im.Config.OS, im.Config.Arch, im.Config.Compiler)
	for _, r := range im.Externals.Releases() {
		s += fmt.Sprintf("external: %s\n", r.ID())
	}
	return s
}

// BuildImage validates and constructs an image for the configuration and
// externals at the given instant.
func BuildImage(reg *platform.Registry, cfg platform.Config, exts *externals.Set, at time.Time) (*Image, error) {
	if err := cfg.Validate(reg); err != nil {
		return nil, fmt.Errorf("vmhost: %w", err)
	}
	if err := exts.InstallableOn(cfg, reg); err != nil {
		return nil, fmt.Errorf("vmhost: %w", err)
	}
	o, err := reg.OS(cfg.OS)
	if err != nil {
		return nil, err
	}
	if at.Before(o.Released) {
		return nil, fmt.Errorf("vmhost: %s not released until %s", cfg.OS, o.Released.Format("2006-01-02"))
	}
	for _, r := range exts.Releases() {
		if at.Before(r.Released) {
			return nil, fmt.Errorf("vmhost: %s not released until %s", r.ID(), r.Released.Format("2006-01-02"))
		}
	}
	sum := sha256.Sum256([]byte(cfg.Key() + "|" + exts.Key()))
	return &Image{
		ID:        hex.EncodeToString(sum[:8]),
		Config:    cfg,
		Externals: exts,
		BuiltAt:   at,
	}, nil
}

// ClientKind distinguishes virtual machines from physical worker nodes;
// the paper supports both ("as a virtual machine or a normal physical
// machine like a batch or grid worker node").
type ClientKind int

const (
	// VM is a hosted virtual machine.
	VM ClientKind = iota
	// Physical is a batch or grid worker node running the image recipe
	// natively.
	Physical
)

// String returns "vm" or "physical".
func (k ClientKind) String() string {
	if k == VM {
		return "vm"
	}
	return "physical"
}

// Client is a machine attached to the sp-system.
type Client struct {
	// Name identifies the client within the host.
	Name string
	// Kind is VM or Physical.
	Kind ClientKind
	// Image is the environment the client runs.
	Image *Image
	// CronSpec is the client's cron entry for periodic validation, in
	// standard five-field cron syntax.
	CronSpec string

	store *storage.Store
}

// Env returns the client's execution environment: the shell variables a
// test job inherits from the machine it runs on.
func (c *Client) Env() storage.Env {
	return storage.Env{
		storage.EnvConfig:    c.Image.Config.String(),
		storage.EnvExternals: c.Image.Externals.String(),
	}
}

// Store returns the client's handle to the common storage.
func (c *Client) Store() *storage.Store { return c.store }

// Host is the sp-system's machine inventory. It is safe for concurrent
// use.
type Host struct {
	mu      sync.RWMutex
	store   *storage.Store
	images  map[string]*Image  // guarded by mu
	clients map[string]*Client // guarded by mu
}

// NewHost returns a host whose clients share the given common storage.
func NewHost(store *storage.Store) *Host {
	return &Host{
		store:   store,
		images:  make(map[string]*Image),
		clients: make(map[string]*Client),
	}
}

// AddImage registers an image. Adding the same image twice is a no-op;
// adding a different image with a colliding ID is an error.
func (h *Host) AddImage(im *Image) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if prev, ok := h.images[im.ID]; ok && prev != im {
		return fmt.Errorf("vmhost: image ID collision on %s", im.ID)
	}
	h.images[im.ID] = im
	return nil
}

// Image returns the image with the given ID.
func (h *Host) Image(id string) (*Image, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	im, ok := h.images[id]
	if !ok {
		return nil, fmt.Errorf("vmhost: no image %s", id)
	}
	return im, nil
}

// Images returns all images sorted by label.
func (h *Host) Images() []*Image {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]*Image, 0, len(h.images))
	for _, im := range h.images {
		out = append(out, im)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label() < out[j].Label() })
	return out
}

// Boot attaches a new client running the given image. It enforces the
// paper's two-requirement contract: the host's common storage (implicit)
// and a cron specification.
func (h *Host) Boot(name string, kind ClientKind, imageID, cronSpec string) (*Client, error) {
	if name == "" {
		return nil, fmt.Errorf("vmhost: client needs a name")
	}
	if cronSpec == "" {
		return nil, fmt.Errorf("vmhost: client %q needs a cron specification — it is one of the two integration requirements", name)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	im, ok := h.images[imageID]
	if !ok {
		return nil, fmt.Errorf("vmhost: no image %s", imageID)
	}
	if _, dup := h.clients[name]; dup {
		return nil, fmt.Errorf("vmhost: client %q already attached", name)
	}
	c := &Client{Name: name, Kind: kind, Image: im, CronSpec: cronSpec, store: h.store}
	h.clients[name] = c
	return c, nil
}

// Shutdown detaches a client.
func (h *Host) Shutdown(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.clients[name]; !ok {
		return fmt.Errorf("vmhost: no client %q", name)
	}
	delete(h.clients, name)
	return nil
}

// Clients returns attached clients sorted by name.
func (h *Host) Clients() []*Client {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]*Client, 0, len(h.clients))
	for _, c := range h.clients {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// frozenNS is the storage namespace holding conserved images.
const frozenNS = "frozen"

// Freeze conserves an image: its recipe is written to the common storage
// and the image is marked frozen. This is the paper's final phase —
// "the last working virtual image is conserved and constitutes the last
// version of the experimental software and environment."
func (h *Host) Freeze(imageID string, at time.Time) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	im, ok := h.images[imageID]
	if !ok {
		return fmt.Errorf("vmhost: no image %s", imageID)
	}
	recipe := fmt.Sprintf("# frozen %s\n%s", at.Format(time.RFC3339), im.Recipe())
	if _, err := h.store.Put(frozenNS, im.ID, []byte(recipe)); err != nil {
		return err
	}
	im.Frozen = true
	return nil
}

// FrozenRecipe retrieves the conserved recipe of a frozen image.
func (h *Host) FrozenRecipe(imageID string) (string, error) {
	data, err := h.store.Get(frozenNS, imageID)
	if err != nil {
		return "", fmt.Errorf("vmhost: image %s is not frozen: %w", imageID, err)
	}
	return string(data), nil
}
