package vmhost

import (
	"strings"
	"testing"
	"time"

	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/storage"
)

var mid2013 = time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)

func testImage(t *testing.T, cfg platform.Config) *Image {
	t.Helper()
	cat := externals.NewCatalogue()
	root, err := cat.Get(externals.ROOT, "5.34")
	if err != nil {
		t.Fatal(err)
	}
	im, err := BuildImage(platform.NewRegistry(), cfg, externals.MustSet(root), mid2013)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestBuildImageForAllPaperConfigs(t *testing.T) {
	for _, cfg := range platform.PaperConfigs() {
		im := testImage(t, cfg)
		if im.ID == "" {
			t.Fatalf("%v: empty image ID", cfg)
		}
		if !strings.Contains(im.Label(), cfg.String()) {
			t.Fatalf("label %q missing config", im.Label())
		}
	}
}

func TestBuildImageDeterministicID(t *testing.T) {
	a := testImage(t, platform.ReferenceConfig())
	b := testImage(t, platform.ReferenceConfig())
	if a.ID != b.ID {
		t.Fatal("same spec produced different image IDs")
	}
	c := testImage(t, platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"})
	if c.ID == a.ID {
		t.Fatal("different configs share an image ID")
	}
}

func TestBuildImageRejectsInvalid(t *testing.T) {
	reg := platform.NewRegistry()
	cat := externals.NewCatalogue()
	root, _ := cat.Get(externals.ROOT, "5.34")
	root6, _ := cat.Get(externals.ROOT, "6.02")

	// Invalid config.
	if _, err := BuildImage(reg, platform.Config{OS: "SL9", Arch: platform.X8664, Compiler: "gcc4.4"},
		externals.MustSet(root), mid2013); err == nil {
		t.Error("unknown OS accepted")
	}
	// Externals incompatible with compiler.
	if _, err := BuildImage(reg, platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"},
		externals.MustSet(root6), mid2013); err == nil {
		t.Error("ROOT 6 on gcc4.4 accepted")
	}
	// OS not yet released.
	if _, err := BuildImage(reg, platform.Config{OS: "SL7", Arch: platform.X8664, Compiler: "gcc4.8"},
		externals.MustSet(root), mid2013); err == nil {
		t.Error("SL7 image built in 2013")
	}
	// External not yet released.
	if _, err := BuildImage(reg, platform.ReferenceConfig(),
		externals.MustSet(root6), mid2013); err == nil {
		t.Error("ROOT 6 image built in 2013")
	}
}

func TestRecipeListsEverything(t *testing.T) {
	im := testImage(t, platform.ReferenceConfig())
	r := im.Recipe()
	for _, want := range []string{"os: SL5", "arch: x86_64", "compiler: gcc4.1", "external: ROOT-5.34"} {
		if !strings.Contains(r, want) {
			t.Errorf("recipe missing %q:\n%s", want, r)
		}
	}
}

func TestBootRequiresCron(t *testing.T) {
	h := NewHost(storage.NewStore())
	im := testImage(t, platform.ReferenceConfig())
	if err := h.AddImage(im); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Boot("vm01", VM, im.ID, ""); err == nil {
		t.Fatal("client booted without a cron spec")
	}
	c, err := h.Boot("vm01", VM, im.ID, "0 3 * * *")
	if err != nil {
		t.Fatal(err)
	}
	if c.Store() == nil {
		t.Fatal("client has no storage access")
	}
}

func TestBootUnknownImage(t *testing.T) {
	h := NewHost(storage.NewStore())
	if _, err := h.Boot("vm01", VM, "nope", "0 3 * * *"); err == nil {
		t.Fatal("boot from unknown image succeeded")
	}
}

func TestBootDuplicateName(t *testing.T) {
	h := NewHost(storage.NewStore())
	im := testImage(t, platform.ReferenceConfig())
	_ = h.AddImage(im)
	if _, err := h.Boot("vm01", VM, im.ID, "0 3 * * *"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Boot("vm01", Physical, im.ID, "0 4 * * *"); err == nil {
		t.Fatal("duplicate client name accepted")
	}
}

func TestClientEnv(t *testing.T) {
	h := NewHost(storage.NewStore())
	im := testImage(t, platform.ReferenceConfig())
	_ = h.AddImage(im)
	c, _ := h.Boot("grid-wn-12", Physical, im.ID, "30 2 * * *")
	env := c.Env()
	if env[storage.EnvConfig] != "SL5/64bit gcc4.1" {
		t.Fatalf("SP_CONFIG = %q", env[storage.EnvConfig])
	}
	if env[storage.EnvExternals] != "ROOT-5.34" {
		t.Fatalf("SP_EXTERNALS = %q", env[storage.EnvExternals])
	}
	if c.Kind.String() != "physical" {
		t.Fatalf("kind = %q", c.Kind)
	}
}

func TestClientsSortedAndShutdown(t *testing.T) {
	h := NewHost(storage.NewStore())
	im := testImage(t, platform.ReferenceConfig())
	_ = h.AddImage(im)
	for _, n := range []string{"vm03", "vm01", "vm02"} {
		if _, err := h.Boot(n, VM, im.ID, "0 1 * * *"); err != nil {
			t.Fatal(err)
		}
	}
	cs := h.Clients()
	if len(cs) != 3 || cs[0].Name != "vm01" || cs[2].Name != "vm03" {
		t.Fatalf("clients = %v", names(cs))
	}
	if err := h.Shutdown("vm02"); err != nil {
		t.Fatal(err)
	}
	if len(h.Clients()) != 2 {
		t.Fatal("shutdown did not remove client")
	}
	if err := h.Shutdown("vm02"); err == nil {
		t.Fatal("double shutdown succeeded")
	}
}

func names(cs []*Client) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}

func TestFreezeConservesRecipe(t *testing.T) {
	store := storage.NewStore()
	h := NewHost(store)
	im := testImage(t, platform.ReferenceConfig())
	_ = h.AddImage(im)

	if err := h.Freeze(im.ID, mid2013); err != nil {
		t.Fatal(err)
	}
	if !im.Frozen {
		t.Fatal("image not marked frozen")
	}
	recipe, err := h.FrozenRecipe(im.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(recipe, "compiler: gcc4.1") {
		t.Fatalf("frozen recipe incomplete:\n%s", recipe)
	}
	if err := h.Freeze("nope", mid2013); err == nil {
		t.Fatal("freezing unknown image succeeded")
	}
	if _, err := h.FrozenRecipe("never-frozen"); err == nil {
		t.Fatal("recipe for unfrozen image returned")
	}
}

func TestImagesSorted(t *testing.T) {
	h := NewHost(storage.NewStore())
	for _, cfg := range platform.PaperConfigs() {
		_ = h.AddImage(testImage(t, cfg))
	}
	ims := h.Images()
	if len(ims) != len(platform.PaperConfigs()) {
		t.Fatalf("images = %d", len(ims))
	}
	for i := 1; i < len(ims); i++ {
		if ims[i].Label() < ims[i-1].Label() {
			t.Fatal("images not sorted by label")
		}
	}
}
