package vmhost

import (
	"fmt"
	"time"

	"repro/internal/buildsys"
	"repro/internal/valtest"
)

// Client returns the attached client with the given name.
func (h *Host) Client(name string) (*Client, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	c, ok := h.clients[name]
	return c, ok
}

// DriverName is the ImageDriver's identity in run records and digests.
const DriverName = "vmhost"

// DefaultCronSpec is the cron entry given to driver-booted clients: the
// paper's nightly validation cadence.
const DefaultCronSpec = "0 3 * * *"

// ImageDriver runs validation suites on hosted machines: Provision
// builds (or reuses) the Image for the requested configuration and
// externals, boots (or reuses) a Client from it, and hands back a
// context rooted in that client's environment. This is the paper's
// hosting model made executable — the same suites the in-process driver
// runs "can equally run on any number of virtual or physical machines",
// each defined by nothing more than an image and a cron entry.
//
// Because every client shares the common sp-system storage (the paper's
// one hard requirement), artifacts written by a hosted run are already
// in the caller's store and Collect is a pass-through — verdicts are
// byte-identical to the in-process driver's on equal inputs.
type ImageDriver struct {
	// Host is the machine inventory provisioned against.
	Host *Host
	// Builder compiles the experiment repository inside the client
	// environment during Provision; nil for build-less suites.
	Builder *buildsys.Builder
	// Now supplies the image build instant (release-date gating). It is
	// required: image builds must not read the wall clock, or hosted
	// verdicts stop being reproducible across processes.
	Now func() time.Time
	// Kind is the machine kind to boot; defaults to VM.
	Kind ClientKind
	// CronSpec is the booted clients' cron entry; defaults to
	// DefaultCronSpec.
	CronSpec string
}

// Name returns DriverName.
func (d *ImageDriver) Name() string { return DriverName }

// Provision builds and registers the image for the request, boots a
// client from it (reusing the client a previous provision of the same
// image booted), builds the repository if the suite needs one, and
// returns the client-rooted context.
func (d *ImageDriver) Provision(req valtest.ProvisionRequest) (*valtest.Context, error) {
	if d.Host == nil {
		return nil, fmt.Errorf("vmhost: ImageDriver has no host")
	}
	if d.Now == nil {
		return nil, fmt.Errorf("vmhost: ImageDriver has no clock; thread the system clock through Now")
	}
	im, err := BuildImage(req.Registry, req.Config, req.Externals, d.Now())
	if err != nil {
		return nil, err
	}
	// Image IDs are deterministic in the recipe, so a re-provision of
	// the same configuration rebuilds the same ID: reuse the registered
	// image rather than collide with it.
	if prev, perr := d.Host.Image(im.ID); perr == nil {
		im = prev
	} else if err := d.Host.AddImage(im); err != nil {
		return nil, err
	}
	cronSpec := d.CronSpec
	if cronSpec == "" {
		cronSpec = DefaultCronSpec
	}
	name := "sp-client-" + im.ID
	client, ok := d.Host.Client(name)
	if !ok {
		client, err = d.Host.Boot(name, d.Kind, im.ID, cronSpec)
		if err != nil {
			return nil, err
		}
	}
	var build *buildsys.Result
	if req.Repo != nil && d.Builder != nil {
		build, err = d.Builder.Build(req.Repo, req.Config, req.Externals)
		if err != nil {
			return nil, err
		}
	}
	return &valtest.Context{
		Store:     client.Store(),
		Env:       client.Env(),
		Config:    req.Config,
		Registry:  req.Registry,
		Externals: req.Externals,
		Repo:      req.Repo,
		Build:     build,
	}, nil
}

// RunTest executes the test in the client context by direct call: the
// simulated client is in-process, so "running on the client" is running
// against the client's store and environment.
func (d *ImageDriver) RunTest(t valtest.Test, ctx *valtest.Context) valtest.Result {
	return t.Run(ctx)
}

// Collect is a pass-through: clients write into the common storage, so
// there is nothing to copy back.
func (d *ImageDriver) Collect(ctx *valtest.Context, res valtest.Result) valtest.Result { return res }

// compile-time driver conformance, and a seam check: the client store a
// provisioned context exposes is a *storage.Store like any other, so
// tests cannot tell drivers apart.
var _ valtest.Driver = (*ImageDriver)(nil)
