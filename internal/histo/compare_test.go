package histo

import (
	"testing"

	"repro/internal/simrand"
)

func gauss(name string, rng *simrand.Source, n int, mean, sigma float64) *H1D {
	h := NewH1D(name, 50, mean-5*sigma, mean+5*sigma)
	for i := 0; i < n; i++ {
		h.Fill(rng.Norm(mean, sigma))
	}
	return h
}

func TestIdenticalOnClones(t *testing.T) {
	h := gauss("ref", simrand.New(1), 1000, 0, 1)
	cmp, err := Identical(h, h.Clone())
	if err != nil || !cmp.Compatible {
		t.Fatalf("Identical on clone = %+v, %v", cmp, err)
	}
}

func TestIdenticalDetectsSingleBinShift(t *testing.T) {
	a := gauss("ref", simrand.New(1), 1000, 0, 1)
	b := a.Clone()
	b.counts[25] += 1e-9
	cmp, err := Identical(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Compatible {
		t.Fatal("Identical missed a 1e-9 single-bin change")
	}
}

func TestIdenticalDetectsEntryCountChange(t *testing.T) {
	a := gauss("ref", simrand.New(1), 1000, 0, 1)
	b := a.Clone()
	b.entries++
	if cmp, _ := Identical(a, b); cmp.Compatible {
		t.Fatal("Identical missed entry-count difference")
	}
}

func TestIdenticalRejectsMismatchedBooking(t *testing.T) {
	a := NewH1D("a", 10, 0, 1)
	b := NewH1D("b", 20, 0, 1)
	if _, err := Identical(a, b); err == nil {
		t.Fatal("booking mismatch not reported as error")
	}
}

func TestMaxRelDiffToleratesPlatformDrift(t *testing.T) {
	a := gauss("ref", simrand.New(2), 5000, 10, 2)
	b := a.Clone()
	// Simulate x87-scale drift: every bin shifted by 1e-13 relative.
	for i := range b.counts {
		b.counts[i] *= 1 + 1e-13
	}
	cmp, err := MaxRelDiff(a, b, 1e-9)
	if err != nil || !cmp.Compatible {
		t.Fatalf("platform drift rejected: %+v, %v", cmp, err)
	}
	// But a physics-level shift fails.
	b.counts[25] *= 1.05
	cmp, _ = MaxRelDiff(a, b, 1e-9)
	if cmp.Compatible {
		t.Fatal("5%% single-bin shift accepted")
	}
	if cmp.Statistic < 0.04 {
		t.Fatalf("statistic = %g, want ≈0.05", cmp.Statistic)
	}
}

func TestMaxRelDiffZeroReferenceBin(t *testing.T) {
	a := NewH1D("a", 2, 0, 2)
	b := NewH1D("b", 2, 0, 2)
	b.counts[0] = 0.5
	cmp, err := MaxRelDiff(a, b, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Compatible {
		t.Fatal("absolute difference on zero reference bin accepted")
	}
}

func TestChi2IndependentSamplesCompatible(t *testing.T) {
	// Two independent samples from the same distribution should pass a
	// loose chi2 cut.
	a := gauss("a", simrand.New(3), 20000, 0, 1)
	b := gauss("b", simrand.New(4), 20000, 0, 1)
	cmp, err := Chi2(a, b, 2.0)
	if err != nil || !cmp.Compatible {
		t.Fatalf("same-distribution samples rejected: %+v, %v", cmp, err)
	}
}

func TestChi2DetectsShiftedDistribution(t *testing.T) {
	a := gauss("a", simrand.New(5), 20000, 0, 1)
	b := NewH1D("b", 50, -5, 5)
	rng := simrand.New(6)
	for i := 0; i < 20000; i++ {
		b.Fill(rng.Norm(0.3, 1)) // mean shifted by 0.3 sigma
	}
	cmp, err := Chi2(a, b, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Compatible {
		t.Fatalf("shifted distribution accepted: %+v", cmp)
	}
}

func TestChi2BothEmpty(t *testing.T) {
	a := NewH1D("a", 10, 0, 1)
	b := NewH1D("b", 10, 0, 1)
	cmp, err := Chi2(a, b, 1)
	if err != nil || !cmp.Compatible {
		t.Fatalf("empty vs empty = %+v, %v", cmp, err)
	}
}

func TestKolmogorovShapeOnly(t *testing.T) {
	a := gauss("a", simrand.New(7), 10000, 0, 1)
	b := a.Clone()
	b.Scale(3) // normalization differs, shape identical
	cmp, err := KolmogorovDistance(a, b, 0.01)
	if err != nil || !cmp.Compatible {
		t.Fatalf("scaled clone rejected by KS: %+v, %v", cmp, err)
	}
}

func TestKolmogorovDetectsShapeChange(t *testing.T) {
	a := gauss("a", simrand.New(8), 20000, 0, 1)
	b := NewH1D("b", 50, -5, 5) // same booking, distribution shifted a full sigma
	rng := simrand.New(9)
	for i := 0; i < 20000; i++ {
		b.Fill(rng.Norm(1.0, 1))
	}
	cmp, err := KolmogorovDistance(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Compatible {
		t.Fatalf("sigma-shifted shape accepted: %+v", cmp)
	}
}

func TestKolmogorovEmptyCases(t *testing.T) {
	a := NewH1D("a", 10, 0, 1)
	b := NewH1D("b", 10, 0, 1)
	if cmp, _ := KolmogorovDistance(a, b, 0.1); !cmp.Compatible {
		t.Fatal("empty vs empty should be compatible")
	}
	b.Fill(0.5)
	if cmp, _ := KolmogorovDistance(a, b, 0.1); cmp.Compatible {
		t.Fatal("empty vs non-empty should be incompatible")
	}
}
