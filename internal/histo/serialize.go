package histo

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary format: the framework stores histograms on the common storage as
// validation outputs and reference data. The encoding is
// length-prefixed, little-endian, and carries a magic and version so that
// corrupted or foreign blobs are rejected with a clear error.

var histMagic = [4]byte{'S', 'P', 'H', '1'}

const histVersion = 1

// MarshalBinary encodes the histogram.
func (h *H1D) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(histMagic[:])
	buf.WriteByte(histVersion)

	name := []byte(h.name)
	if len(name) > math.MaxUint16 {
		return nil, fmt.Errorf("histo: name of %d bytes too long to serialize", len(name))
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(name)))
	buf.Write(scratch[:2])
	buf.Write(name)

	binary.LittleEndian.PutUint32(scratch[:4], uint32(h.bins))
	buf.Write(scratch[:4])
	for _, f := range []float64{h.lo, h.hi, h.under, h.over, h.sumW, h.sumWX, h.sumWX2} {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(f))
		buf.Write(scratch[:])
	}
	binary.LittleEndian.PutUint64(scratch[:], uint64(h.entries))
	buf.Write(scratch[:])
	for _, c := range h.counts {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(c))
		buf.Write(scratch[:])
	}
	return buf.Bytes(), nil
}

// UnmarshalH1D decodes a histogram encoded by MarshalBinary.
func UnmarshalH1D(data []byte) (*H1D, error) {
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != histMagic {
		return nil, fmt.Errorf("histo: not a histogram blob (bad magic)")
	}
	ver, err := r.ReadByte()
	if err != nil || ver != histVersion {
		return nil, fmt.Errorf("histo: unsupported version %d", ver)
	}
	readU16 := func() (uint16, error) {
		var b [2]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint16(b[:]), nil
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	readF64 := func() (float64, error) {
		u, err := readU64()
		return math.Float64frombits(u), err
	}

	nameLen, err := readU16()
	if err != nil {
		return nil, fmt.Errorf("histo: truncated blob: %w", err)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("histo: truncated name: %w", err)
	}
	bins, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("histo: truncated blob: %w", err)
	}
	if bins == 0 || bins > 1<<24 {
		return nil, fmt.Errorf("histo: implausible bin count %d", bins)
	}
	h := &H1D{name: string(name), bins: int(bins), counts: make([]float64, bins)}
	for _, dst := range []*float64{&h.lo, &h.hi, &h.under, &h.over, &h.sumW, &h.sumWX, &h.sumWX2} {
		if *dst, err = readF64(); err != nil {
			return nil, fmt.Errorf("histo: truncated blob: %w", err)
		}
	}
	ent, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("histo: truncated blob: %w", err)
	}
	h.entries = int64(ent)
	for i := range h.counts {
		if h.counts[i], err = readF64(); err != nil {
			return nil, fmt.Errorf("histo: truncated counts at bin %d: %w", i, err)
		}
	}
	if h.hi <= h.lo {
		return nil, fmt.Errorf("histo: decoded empty range [%g, %g)", h.lo, h.hi)
	}
	return h, nil
}
