// Package histo provides one-dimensional histograms and the statistical
// comparators the validation framework uses to decide whether two
// versions of an analysis produced compatible physics.
//
// The paper's validation output "may be a simple yes/no, a text file, a
// histogram, a root file"; histograms are the workhorse: an analysis
// chain ends in distributions, and validation compares them against the
// reference produced by the last successful run. The comparators
// distinguish bit-identical agreement, agreement within a numeric
// tolerance (legitimate platform drift), and statistically significant
// disagreement (a bug or an unflagged behaviour change).
package histo

import (
	"fmt"
	"math"
	"strings"
)

// H1D is a fixed-binning one-dimensional histogram with weighted fills
// and under/overflow tracking. It is not safe for concurrent use.
type H1D struct {
	name    string
	bins    int
	lo, hi  float64
	counts  []float64
	under   float64
	over    float64
	entries int64
	sumW    float64
	sumWX   float64
	sumWX2  float64
}

// NewH1D returns a histogram with the given name, bin count and range.
// It panics if bins <= 0 or hi <= lo: histogram booking is static
// configuration and a bad booking is a programming error.
func NewH1D(name string, bins int, lo, hi float64) *H1D {
	if bins <= 0 {
		panic(fmt.Sprintf("histo: %q booked with %d bins", name, bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("histo: %q booked with empty range [%g, %g)", name, lo, hi))
	}
	return &H1D{name: name, bins: bins, lo: lo, hi: hi, counts: make([]float64, bins)}
}

// Name returns the histogram's name.
func (h *H1D) Name() string { return h.name }

// Bins returns the number of in-range bins.
func (h *H1D) Bins() int { return h.bins }

// Range returns the histogram's [lo, hi) range.
func (h *H1D) Range() (lo, hi float64) { return h.lo, h.hi }

// Fill adds an entry at x with weight 1.
func (h *H1D) Fill(x float64) { h.FillW(x, 1) }

// FillW adds an entry at x with the given weight. NaN values are counted
// as overflow so that a numerically broken producer is visible in the
// comparison rather than silently dropped.
func (h *H1D) FillW(x, w float64) {
	h.entries++
	if math.IsNaN(x) {
		h.over += w
		return
	}
	h.sumW += w
	h.sumWX += w * x
	h.sumWX2 += w * x * x
	switch {
	case x < h.lo:
		h.under += w
	case x >= h.hi:
		h.over += w
	default:
		idx := int((x - h.lo) / (h.hi - h.lo) * float64(h.bins))
		if idx == h.bins { // guard against floating-point edge at hi
			idx--
		}
		h.counts[idx] += w
	}
}

// Entries returns the number of Fill calls.
func (h *H1D) Entries() int64 { return h.entries }

// BinContent returns the weight in bin i (0-based). It panics on an
// out-of-range index.
func (h *H1D) BinContent(i int) float64 {
	if i < 0 || i >= h.bins {
		panic(fmt.Sprintf("histo: %q bin %d out of range [0, %d)", h.name, i, h.bins))
	}
	return h.counts[i]
}

// BinCenter returns the x coordinate of the centre of bin i.
func (h *H1D) BinCenter(i int) float64 {
	width := (h.hi - h.lo) / float64(h.bins)
	return h.lo + (float64(i)+0.5)*width
}

// Underflow and Overflow return the weight outside the range.
func (h *H1D) Underflow() float64 { return h.under }

// Overflow returns the weight at or above the upper edge (including NaN
// fills).
func (h *H1D) Overflow() float64 { return h.over }

// Integral returns the total in-range weight.
func (h *H1D) Integral() float64 {
	var sum float64
	for _, c := range h.counts {
		sum += c
	}
	return sum
}

// Mean returns the weighted mean of filled values (including out-of-range
// fills, excluding NaN), or 0 for an empty histogram.
func (h *H1D) Mean() float64 {
	if h.sumW == 0 {
		return 0
	}
	return h.sumWX / h.sumW
}

// StdDev returns the weighted standard deviation, or 0 for an empty
// histogram.
func (h *H1D) StdDev() float64 {
	if h.sumW == 0 {
		return 0
	}
	mean := h.Mean()
	v := h.sumWX2/h.sumW - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Clone returns a deep copy.
func (h *H1D) Clone() *H1D {
	cp := *h
	cp.counts = make([]float64, len(h.counts))
	copy(cp.counts, h.counts)
	return &cp
}

// Merge adds the contents of other into h. The histograms must have
// identical booking (bins and range); names may differ.
func (h *H1D) Merge(other *H1D) error {
	if h.bins != other.bins || h.lo != other.lo || h.hi != other.hi {
		return fmt.Errorf("histo: cannot merge %q (%d bins [%g,%g)) with %q (%d bins [%g,%g))",
			h.name, h.bins, h.lo, h.hi, other.name, other.bins, other.lo, other.hi)
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.under += other.under
	h.over += other.over
	h.entries += other.entries
	h.sumW += other.sumW
	h.sumWX += other.sumWX
	h.sumWX2 += other.sumWX2
	return nil
}

// Scale multiplies all weights by f.
func (h *H1D) Scale(f float64) {
	for i := range h.counts {
		h.counts[i] *= f
	}
	h.under *= f
	h.over *= f
	h.sumW *= f
	h.sumWX *= f
	h.sumWX2 *= f
}

// Render draws a compact ASCII representation — the form embedded in the
// framework's text reports ("this file may be ... a histogram").
func (h *H1D) Render(width int) string {
	if width < 10 {
		width = 10
	}
	max := 0.0
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  entries=%d mean=%.4g stddev=%.4g\n", h.name, h.entries, h.Mean(), h.StdDev())
	for i, c := range h.counts {
		bar := 0
		if max > 0 {
			bar = int(c / max * float64(width))
		}
		fmt.Fprintf(&b, "%10.3g |%s %.4g\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}
