package histo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simrand"
)

// TestMergePartitionProperty: filling one histogram with a sample equals
// (bit-exactly, since addition order is preserved per bin) filling two
// histograms with a partition of the sample and merging them.
func TestMergePartitionProperty(t *testing.T) {
	f := func(seed uint64, nByte uint8, splitByte uint8) bool {
		n := int(nByte) + 2
		split := int(splitByte) % n
		rng := simrand.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Norm(0, 2)
		}

		whole := NewH1D("whole", 20, -5, 5)
		for _, x := range xs {
			whole.Fill(x)
		}
		a := NewH1D("a", 20, -5, 5)
		b := NewH1D("b", 20, -5, 5)
		for _, x := range xs[:split] {
			a.Fill(x)
		}
		for _, x := range xs[split:] {
			b.Fill(x)
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		// Unit-weight fills: bin contents are integer counts, so the
		// partition must agree exactly.
		cmp, err := Identical(whole, a)
		return err == nil && cmp.Compatible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestScaleIntegralProperty: scaling multiplies the integral by the
// factor (within floating-point tolerance).
func TestScaleIntegralProperty(t *testing.T) {
	f := func(seed uint64, factorByte uint8) bool {
		factor := float64(factorByte)/16 + 0.25
		h := gaussQuick(seed, 200)
		before := h.Integral()
		h.Scale(factor)
		return math.Abs(h.Integral()-before*factor) <= 1e-9*math.Abs(before*factor)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestComparatorReflexivityProperty: every comparator accepts a
// histogram against its own clone.
func TestComparatorReflexivityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		h := gaussQuick(seed, 300)
		c := h.Clone()
		id, err1 := Identical(h, c)
		rel, err2 := MaxRelDiff(h, c, 1e-15)
		chi, err3 := Chi2(h, c, 0.001)
		ks, err4 := KolmogorovDistance(h, c, 1e-12)
		return err1 == nil && err2 == nil && err3 == nil && err4 == nil &&
			id.Compatible && rel.Compatible && chi.Compatible && ks.Compatible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func gaussQuick(seed uint64, n int) *H1D {
	h := NewH1D("q", 25, -6, 6)
	rng := simrand.New(seed)
	for i := 0; i < n; i++ {
		h.Fill(rng.Norm(0, 1.5))
	}
	return h
}
