package histo

import (
	"testing"
	"testing/quick"

	"repro/internal/simrand"
)

func TestSerializeRoundTrip(t *testing.T) {
	h := gauss("ref/mass", simrand.New(1), 5000, 91.2, 2.5)
	h.Fill(-999) // populate underflow
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalH1D(data)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Identical(h, got)
	if err != nil || !cmp.Compatible {
		t.Fatalf("round trip not identical: %+v, %v", cmp, err)
	}
	if got.Name() != "ref/mass" {
		t.Fatalf("name = %q", got.Name())
	}
	if got.Underflow() != h.Underflow() {
		t.Fatalf("underflow lost: %g vs %g", got.Underflow(), h.Underflow())
	}
	if got.Mean() != h.Mean() || got.StdDev() != h.StdDev() {
		t.Fatal("moments lost in round trip")
	}
}

func TestSerializeDeterministic(t *testing.T) {
	h := gauss("m", simrand.New(2), 100, 0, 1)
	a, _ := h.MarshalBinary()
	b, _ := h.MarshalBinary()
	if string(a) != string(b) {
		t.Fatal("serialization not deterministic")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a histogram"),
		{'S', 'P', 'H', '1'},     // magic only
		{'S', 'P', 'H', '1', 99}, // bad version
		{'X', 'X', 'X', 'X', 1},  // bad magic
	}
	for i, data := range cases {
		if _, err := UnmarshalH1D(data); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	h := gauss("m", simrand.New(3), 100, 0, 1)
	data, _ := h.MarshalBinary()
	for _, cut := range []int{5, 10, len(data) / 2, len(data) - 1} {
		if _, err := UnmarshalH1D(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestSerializeEmptyHistogram(t *testing.T) {
	h := NewH1D("empty", 16, -1, 1)
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalH1D(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries() != 0 || got.Bins() != 16 {
		t.Fatalf("empty round trip: entries=%d bins=%d", got.Entries(), got.Bins())
	}
}

func TestSerializeProperty(t *testing.T) {
	f := func(seed uint64, fills uint8) bool {
		rng := simrand.New(seed)
		h := NewH1D("p", 8, 0, 1)
		for i := 0; i < int(fills); i++ {
			h.FillW(rng.Float64()*1.2-0.1, rng.Float64())
		}
		data, err := h.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := UnmarshalH1D(data)
		if err != nil {
			return false
		}
		cmp, err := Identical(h, got)
		return err == nil && cmp.Compatible
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
