package histo

import (
	"fmt"
	"math"
)

// Comparison is the verdict of comparing a candidate histogram against a
// reference.
type Comparison struct {
	// Compatible reports whether the candidate passed the comparator.
	Compatible bool
	// Statistic is the comparator's test statistic (max relative
	// difference, chi²/ndf, or KS distance depending on the method).
	Statistic float64
	// Detail is a human-readable explanation recorded with the test
	// result.
	Detail string
}

// checkBooking verifies two histograms were booked identically; every
// comparator requires it.
func checkBooking(ref, cand *H1D) error {
	if ref.bins != cand.bins || ref.lo != cand.lo || ref.hi != cand.hi {
		return fmt.Errorf("histo: booking mismatch: %q has %d bins [%g,%g), %q has %d bins [%g,%g)",
			ref.name, ref.bins, ref.lo, ref.hi, cand.name, cand.bins, cand.lo, cand.hi)
	}
	return nil
}

// Identical reports whether the two histograms agree bit-for-bit:
// identical booking, bin contents, flows and entry counts. This is the
// comparator for replays of the same configuration, where any difference
// at all indicates broken reproducibility.
func Identical(ref, cand *H1D) (Comparison, error) {
	if err := checkBooking(ref, cand); err != nil {
		return Comparison{}, err
	}
	if ref.entries != cand.entries {
		return Comparison{Detail: fmt.Sprintf("entry counts differ: %d vs %d", ref.entries, cand.entries)}, nil
	}
	if ref.under != cand.under || ref.over != cand.over {
		return Comparison{Detail: "under/overflow differ"}, nil
	}
	for i := range ref.counts {
		if ref.counts[i] != cand.counts[i] {
			return Comparison{
				Statistic: math.Abs(ref.counts[i] - cand.counts[i]),
				Detail:    fmt.Sprintf("bin %d differs: %g vs %g", i, ref.counts[i], cand.counts[i]),
			}, nil
		}
	}
	return Comparison{Compatible: true, Detail: "bit-identical"}, nil
}

// MaxRelDiff compares bin-by-bin and passes when every bin agrees within
// the relative tolerance tol (absolute tolerance tol for bins where the
// reference is zero). This is the comparator for cross-configuration
// validation, where legitimate floating-point drift must be tolerated but
// anything larger flagged.
func MaxRelDiff(ref, cand *H1D, tol float64) (Comparison, error) {
	if err := checkBooking(ref, cand); err != nil {
		return Comparison{}, err
	}
	worst := 0.0
	worstBin := -1
	for i := range ref.counts {
		r, c := ref.counts[i], cand.counts[i]
		var d float64
		if r == 0 {
			d = math.Abs(c)
		} else {
			d = math.Abs(c-r) / math.Abs(r)
		}
		if d > worst {
			worst = d
			worstBin = i
		}
	}
	cmp := Comparison{Statistic: worst, Compatible: worst <= tol}
	if worstBin >= 0 {
		cmp.Detail = fmt.Sprintf("max relative difference %.3g at bin %d (tolerance %.3g)", worst, worstBin, tol)
	} else {
		cmp.Detail = "all bins zero in reference"
	}
	return cmp, nil
}

// Chi2 computes a chi-square per degree of freedom between two
// histograms, treating bin contents as Poisson counts, and passes when
// chi²/ndf <= maxChi2PerNdf. Bins empty in both histograms are skipped.
// This is the comparator for statistically independent samples (e.g. a
// regenerated Monte-Carlo set) where bin-by-bin equality is not expected.
func Chi2(ref, cand *H1D, maxChi2PerNdf float64) (Comparison, error) {
	if err := checkBooking(ref, cand); err != nil {
		return Comparison{}, err
	}
	var chi2 float64
	ndf := 0
	for i := range ref.counts {
		r, c := ref.counts[i], cand.counts[i]
		if r == 0 && c == 0 {
			continue
		}
		// Variance of the difference of two Poisson-ish bins.
		chi2 += (r - c) * (r - c) / (math.Abs(r) + math.Abs(c))
		ndf++
	}
	if ndf == 0 {
		return Comparison{Compatible: true, Detail: "both histograms empty"}, nil
	}
	stat := chi2 / float64(ndf)
	return Comparison{
		Compatible: stat <= maxChi2PerNdf,
		Statistic:  stat,
		Detail:     fmt.Sprintf("chi2/ndf = %.3g over %d bins (limit %.3g)", stat, ndf, maxChi2PerNdf),
	}, nil
}

// KolmogorovDistance compares the normalized cumulative distributions of
// the two histograms and passes when the maximum distance is at most
// maxDist. It is shape-only: overall normalization differences are
// ignored, making it the comparator for tests where rates may differ but
// the physics shape must hold.
func KolmogorovDistance(ref, cand *H1D, maxDist float64) (Comparison, error) {
	if err := checkBooking(ref, cand); err != nil {
		return Comparison{}, err
	}
	ri, ci := ref.Integral(), cand.Integral()
	if ri == 0 || ci == 0 {
		if ri == 0 && ci == 0 {
			return Comparison{Compatible: true, Detail: "both histograms empty"}, nil
		}
		return Comparison{Statistic: 1, Detail: "one histogram empty"}, nil
	}
	var cumR, cumC, worst float64
	for i := range ref.counts {
		cumR += ref.counts[i] / ri
		cumC += cand.counts[i] / ci
		if d := math.Abs(cumR - cumC); d > worst {
			worst = d
		}
	}
	return Comparison{
		Compatible: worst <= maxDist,
		Statistic:  worst,
		Detail:     fmt.Sprintf("KS distance %.3g (limit %.3g)", worst, maxDist),
	}, nil
}
