package histo

import (
	"math"
	"strings"
	"testing"
)

func TestFillAndBinContent(t *testing.T) {
	h := NewH1D("m", 10, 0, 10)
	h.Fill(0.5)
	h.Fill(0.7)
	h.Fill(5.5)
	if got := h.BinContent(0); got != 2 {
		t.Errorf("bin 0 = %g, want 2", got)
	}
	if got := h.BinContent(5); got != 1 {
		t.Errorf("bin 5 = %g, want 1", got)
	}
	if h.Entries() != 3 {
		t.Errorf("entries = %d", h.Entries())
	}
	if h.Integral() != 3 {
		t.Errorf("integral = %g", h.Integral())
	}
}

func TestFlows(t *testing.T) {
	h := NewH1D("m", 10, 0, 10)
	h.Fill(-1)
	h.Fill(10) // at upper edge: overflow for [lo, hi)
	h.Fill(99)
	if h.Underflow() != 1 {
		t.Errorf("underflow = %g", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow = %g", h.Overflow())
	}
	if h.Integral() != 0 {
		t.Errorf("integral = %g, want 0", h.Integral())
	}
}

func TestNaNCountsAsOverflow(t *testing.T) {
	h := NewH1D("m", 4, 0, 1)
	h.Fill(math.NaN())
	if h.Overflow() != 1 {
		t.Fatalf("NaN fill not visible in overflow: %g", h.Overflow())
	}
	if h.Entries() != 1 {
		t.Fatalf("entries = %d", h.Entries())
	}
}

func TestUpperEdgeBoundary(t *testing.T) {
	h := NewH1D("m", 10, 0, 1)
	// A value infinitesimally below hi must land in the last bin, not panic.
	h.Fill(math.Nextafter(1, 0))
	if got := h.BinContent(9); got != 1 {
		t.Fatalf("last bin = %g", got)
	}
}

func TestMeanStdDev(t *testing.T) {
	h := NewH1D("m", 100, -10, 10)
	for _, x := range []float64{1, 2, 3, 4, 5} {
		h.Fill(x)
	}
	if got := h.Mean(); math.Abs(got-3) > 1e-12 {
		t.Errorf("mean = %g, want 3", got)
	}
	if got := h.StdDev(); math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Errorf("stddev = %g, want sqrt(2)", got)
	}
	empty := NewH1D("e", 10, 0, 1)
	if empty.Mean() != 0 || empty.StdDev() != 0 {
		t.Error("empty histogram stats should be 0")
	}
}

func TestWeightedFill(t *testing.T) {
	h := NewH1D("m", 2, 0, 2)
	h.FillW(0.5, 3)
	h.FillW(1.5, 1)
	if h.BinContent(0) != 3 || h.BinContent(1) != 1 {
		t.Fatalf("bins = %g, %g", h.BinContent(0), h.BinContent(1))
	}
	if got := h.Mean(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("weighted mean = %g, want 0.75", got)
	}
}

func TestMerge(t *testing.T) {
	a := NewH1D("a", 4, 0, 4)
	b := NewH1D("b", 4, 0, 4)
	a.Fill(0.5)
	b.Fill(0.5)
	b.Fill(3.5)
	b.Fill(-1)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.BinContent(0) != 2 || a.BinContent(3) != 1 {
		t.Fatalf("merged bins wrong: %g, %g", a.BinContent(0), a.BinContent(3))
	}
	if a.Underflow() != 1 {
		t.Fatalf("merged underflow = %g", a.Underflow())
	}
	if a.Entries() != 4 {
		t.Fatalf("merged entries = %d", a.Entries())
	}
}

func TestMergeRejectsMismatchedBooking(t *testing.T) {
	a := NewH1D("a", 4, 0, 4)
	b := NewH1D("b", 5, 0, 4)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge with different binning succeeded")
	}
	c := NewH1D("c", 4, 0, 5)
	if err := a.Merge(c); err == nil {
		t.Fatal("merge with different range succeeded")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewH1D("a", 4, 0, 4)
	a.Fill(1.5)
	b := a.Clone()
	b.Fill(1.5)
	if a.BinContent(1) != 1 || b.BinContent(1) != 2 {
		t.Fatal("clone shares storage with original")
	}
}

func TestScale(t *testing.T) {
	h := NewH1D("m", 2, 0, 2)
	h.Fill(0.5)
	h.Fill(1.5)
	h.Scale(2)
	if h.BinContent(0) != 2 || h.Integral() != 4 {
		t.Fatalf("scaled contents wrong: %g, %g", h.BinContent(0), h.Integral())
	}
}

func TestBookingPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero bins":   func() { NewH1D("x", 0, 0, 1) },
		"empty range": func() { NewH1D("x", 10, 1, 1) },
		"bad index":   func() { NewH1D("x", 2, 0, 1).BinContent(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBinCenter(t *testing.T) {
	h := NewH1D("m", 4, 0, 8)
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %g, want 1", got)
	}
	if got := h.BinCenter(3); got != 7 {
		t.Errorf("BinCenter(3) = %g, want 7", got)
	}
}

func TestRenderContainsStats(t *testing.T) {
	h := NewH1D("mass", 4, 0, 4)
	h.Fill(1.5)
	out := h.Render(40)
	if !strings.Contains(out, "mass") || !strings.Contains(out, "entries=1") {
		t.Fatalf("Render missing header: %q", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("Render missing bar: %q", out)
	}
}
