package histo

import (
	"testing"

	"repro/internal/simrand"
)

func BenchmarkFill(b *testing.B) {
	h := NewH1D("m", 60, 0, 60)
	rng := simrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Fill(rng.Norm(30, 3))
	}
}

func BenchmarkMaxRelDiff(b *testing.B) {
	ref := gaussBench(1, 10000)
	cand := ref.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxRelDiff(ref, cand, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChi2(b *testing.B) {
	ref := gaussBench(1, 10000)
	cand := gaussBench(2, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Chi2(ref, cand, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalRoundTrip(b *testing.B) {
	h := gaussBench(3, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := h.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := UnmarshalH1D(data); err != nil {
			b.Fatal(err)
		}
	}
}

func gaussBench(seed uint64, n int) *H1D {
	h := NewH1D("bench", 60, -5, 5)
	rng := simrand.New(seed)
	for i := 0; i < n; i++ {
		h.Fill(rng.Norm(0, 1))
	}
	return h
}
