package swrepo

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/platform"
	"repro/internal/simrand"
)

// TestBuildOrderProperty checks, over randomly generated layered DAGs,
// that BuildOrder returns a permutation of all packages in which every
// dependency precedes its dependents.
func TestBuildOrderProperty(t *testing.T) {
	f := func(seed uint64, sizeByte uint8) bool {
		size := int(sizeByte%40) + 2
		rng := simrand.New(seed)
		repo := NewRepository("prop")
		names := make([]string, size)
		for i := 0; i < size; i++ {
			names[i] = fmt.Sprintf("p%03d", i)
			var deps []string
			// Depend only on earlier packages: guaranteed acyclic.
			if i > 0 {
				maxDeps := i
				if maxDeps > 4 {
					maxDeps = 4
				}
				nDeps := rng.Intn(maxDeps + 1)
				seen := make(map[string]bool)
				for len(deps) < nDeps {
					d := names[rng.Intn(i)]
					if !seen[d] {
						seen[d] = true
						deps = append(deps, d)
					}
				}
			}
			repo.MustAdd(&Package{Name: names[i], Deps: deps})
		}
		order, err := repo.BuildOrder()
		if err != nil || len(order) != size {
			return false
		}
		pos := make(map[string]int, size)
		for i, p := range order {
			if _, dup := pos[p.Name]; dup {
				return false // not a permutation
			}
			pos[p.Name] = i
		}
		for _, p := range order {
			for _, d := range p.Deps {
				dp, ok := pos[d]
				if !ok || dp >= pos[p.Name] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestGenerateProperty checks that Generate always yields a valid,
// correctly sized repository for any seed.
func TestGenerateProperty(t *testing.T) {
	f := func(seed uint64, pkgByte uint8) bool {
		spec := DefaultSpec("prop")
		spec.Packages = int(pkgByte%60) + 6
		repo, err := Generate(spec, simrand.New(seed))
		if err != nil {
			return false
		}
		return repo.Len() == spec.Packages && repo.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPatchRoundTripProperty: removing a trait and re-adding it restores
// HasTrait, and the revision increases by one per applied patch.
func TestPatchRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := simrand.New(seed)
		spec := DefaultSpec("prop")
		spec.Packages = 10
		spec.DefectRate = 0.5
		repo, err := Generate(spec, simrand.New(seed))
		if err != nil {
			return false
		}
		pkgs := repo.Packages()
		pkg := pkgs[rng.Intn(len(pkgs))]
		unit := pkg.Units[rng.Intn(len(pkg.Units))]
		if len(unit.Traits) == 0 {
			return true
		}
		tr := unit.Traits[rng.Intn(len(unit.Traits))]
		rev := repo.Revision
		err = repo.Apply(Patch{ID: "rm", Package: pkg.Name, Unit: unit.Name,
			Remove: []platform.Trait{tr}})
		if err != nil || unit.HasTrait(tr) || repo.Revision != rev+1 {
			return false
		}
		err = repo.Apply(Patch{ID: "re", Package: pkg.Name, Unit: unit.Name,
			Add: []platform.Trait{tr}})
		return err == nil && unit.HasTrait(tr) && repo.Revision == rev+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
