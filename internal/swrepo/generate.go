package swrepo

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/simrand"
)

// GenSpec parameterizes synthetic repository generation. The defaults in
// the experiment definitions (internal/experiments) size these to match
// the paper's Figure 2: H1's repository has "approximately 100 individual
// H1 software packages" spanning generators, simulation, reconstruction
// and analysis code.
type GenSpec struct {
	// Experiment names the owning collaboration.
	Experiment string
	// Packages is the total package count.
	Packages int
	// MinUnits and MaxUnits bound the source units per package.
	MinUnits, MaxUnits int
	// LegacyFraction is the probability that a unit is HERA-era legacy
	// code carrying deprecated idioms (K&R declarations, writable string
	// literals, FORTRAN 77).
	LegacyFraction float64
	// DefectRate is the per-unit probability of a latent portability
	// defect (64-bit-unsafe casts, uninitialized reads, aliasing
	// violations) — the "long-standing bugs" the paper reports the
	// framework uncovering.
	DefectRate float64
	// SensitiveFraction is the per-unit probability of numerically
	// delicate code whose results shift across floating-point
	// environments.
	SensitiveFraction float64
	// ExternalAPIs is the pool of external API surfaces packages may
	// link against. Roughly half the packages use one or two.
	ExternalAPIs []string
}

// DefaultSpec returns a GenSpec sized like the paper's H1 repository.
func DefaultSpec(experiment string) GenSpec {
	return GenSpec{
		Experiment:        experiment,
		Packages:          100,
		MinUnits:          3,
		MaxUnits:          12,
		LegacyFraction:    0.35,
		DefectRate:        0.02,
		SensitiveFraction: 0.08,
		ExternalAPIs: []string{
			"root/core", "root/hist", "root/tree", "root/io/v5", "root/math",
			"cernlib/hbook", "cernlib/kernlib", "cernlib/geant3",
			"mcgen/lepto", "mcgen/lund",
		},
	}
}

// layerPlan slices the package budget into the software-chain layers of
// Figure 2. Fractions sum to 1.
var layerPlan = []struct {
	kind PackageKind
	frac float64
}{
	{KindLibrary, 0.25},
	{KindGenerator, 0.10},
	{KindSimulation, 0.15},
	{KindReconstruction, 0.20},
	{KindAnalysis, 0.20},
	{KindTool, 0.10},
}

// Generate builds a synthetic repository from the spec. Generation is a
// pure function of the spec and the random source: the same inputs always
// produce an identical repository, so every validation campaign is
// replayable.
func Generate(spec GenSpec, rng *simrand.Source) (*Repository, error) {
	if spec.Packages <= 0 {
		return nil, fmt.Errorf("swrepo: spec.Packages must be positive, got %d", spec.Packages)
	}
	if spec.MinUnits <= 0 || spec.MaxUnits < spec.MinUnits {
		return nil, fmt.Errorf("swrepo: bad unit bounds [%d, %d]", spec.MinUnits, spec.MaxUnits)
	}
	repo := NewRepository(spec.Experiment)

	// Slice the package budget into layers; remainders go to libraries.
	counts := make([]int, len(layerPlan))
	total := 0
	for i, lp := range layerPlan {
		counts[i] = int(lp.frac * float64(spec.Packages))
		total += counts[i]
	}
	counts[0] += spec.Packages - total

	var earlier []string // packages in previous layers, candidate deps
	for li, lp := range layerPlan {
		var thisLayer []string
		for i := 0; i < counts[li]; i++ {
			name := fmt.Sprintf("%s-%s%02d", spec.Experiment, lp.kind, i+1)
			prng := rng.Derive("pkg", name)
			pkg := generatePackage(name, lp.kind, spec, earlier, prng)
			if err := repo.Add(pkg); err != nil {
				return nil, err
			}
			thisLayer = append(thisLayer, name)
		}
		earlier = append(earlier, thisLayer...)
	}
	if err := repo.Validate(); err != nil {
		return nil, fmt.Errorf("swrepo: generated repository invalid: %w", err)
	}
	return repo, nil
}

// MustGenerate is Generate that panics on error, for benchmarks and
// examples with known-good specs.
func MustGenerate(spec GenSpec, rng *simrand.Source) *Repository {
	repo, err := Generate(spec, rng)
	if err != nil {
		panic(err)
	}
	return repo
}

func generatePackage(name string, kind PackageKind, spec GenSpec, earlier []string, rng *simrand.Source) *Package {
	p := &Package{Name: name, Kind: kind}

	// Dependencies: up to 4 packages from earlier layers, favouring few.
	if len(earlier) > 0 {
		nDeps := rng.Intn(min(4, len(earlier)) + 1)
		seen := make(map[string]bool)
		for len(p.Deps) < nDeps {
			d := earlier[rng.Intn(len(earlier))]
			if !seen[d] {
				seen[d] = true
				p.Deps = append(p.Deps, d)
			}
		}
	}

	// External APIs: generators and simulation lean on CERNLIB/MCGen,
	// analysis leans on ROOT; everything may use ROOT core.
	if len(spec.ExternalAPIs) > 0 && rng.Bool(0.6) {
		nAPIs := 1 + rng.Intn(2)
		seen := make(map[string]bool)
		for len(p.UsesAPIs) < nAPIs {
			api := spec.ExternalAPIs[rng.Intn(len(spec.ExternalAPIs))]
			if !seen[api] {
				seen[api] = true
				p.UsesAPIs = append(p.UsesAPIs, api)
			}
		}
	}

	nUnits := spec.MinUnits + rng.Intn(spec.MaxUnits-spec.MinUnits+1)
	for i := 0; i < nUnits; i++ {
		p.Units = append(p.Units, generateUnit(kind, i, spec, p, rng))
	}
	return p
}

func generateUnit(kind PackageKind, idx int, spec GenSpec, pkg *Package, rng *simrand.Source) *SourceUnit {
	u := &SourceUnit{Lines: 150 + rng.Intn(2500)}

	legacy := rng.Bool(spec.LegacyFraction)
	switch kind {
	case KindGenerator, KindSimulation:
		// HERA-era generation and simulation is predominantly FORTRAN.
		if legacy || rng.Bool(0.5) {
			u.Language = LangFortran
		} else {
			u.Language = LangCxx
		}
	case KindAnalysis:
		u.Language = LangCxx
	default:
		if rng.Bool(0.5) {
			u.Language = LangC
		} else {
			u.Language = LangCxx
		}
	}

	switch u.Language {
	case LangC:
		u.Name = fmt.Sprintf("unit%02d.c", idx+1)
		u.Traits = append(u.Traits, platform.TraitANSIC)
		if legacy {
			if rng.Bool(0.5) {
				u.Traits = append(u.Traits, platform.TraitKAndRDecl)
			}
			if rng.Bool(0.4) {
				u.Traits = append(u.Traits, platform.TraitImplicitFuncDecl)
			}
			if rng.Bool(0.2) {
				u.Traits = append(u.Traits, platform.TraitWritableStringLit)
			}
		}
	case LangCxx:
		u.Name = fmt.Sprintf("unit%02d.cc", idx+1)
		u.Traits = append(u.Traits, platform.TraitCxx98)
		if legacy && rng.Bool(0.3) {
			u.Traits = append(u.Traits, platform.TraitAutoPtr)
		}
	case LangFortran:
		u.Name = fmt.Sprintf("unit%02d.f", idx+1)
		u.Traits = append(u.Traits, platform.TraitFortran77)
	}

	// Latent defects, independent of legacy status.
	if rng.Bool(spec.DefectRate) {
		defects := []platform.Trait{
			platform.TraitPtrIntCast,
			platform.TraitUninitMemory,
			platform.TraitStrictAliasing,
		}
		u.Traits = append(u.Traits, defects[rng.Intn(len(defects))])
	}
	if rng.Bool(spec.SensitiveFraction) {
		u.Traits = append(u.Traits, platform.TraitX87Sensitive)
	}
	// Units in packages linking the ROOT 5 I/O layer inherit its trait.
	for _, api := range pkg.UsesAPIs {
		if api == "root/io/v5" && rng.Bool(0.5) {
			u.Traits = append(u.Traits, platform.TraitROOTIOv5)
			break
		}
	}
	return u
}
