// Package swrepo models the experiment-specific software — the first of
// the paper's three separated inputs to the validation system.
//
// An experiment's software is a repository of packages (the paper's H1
// example counts "approximately 100 individual H1 software packages").
// Each package contains source units written in C, C++ or FORTRAN, uses
// API surfaces provided by external dependencies, and depends on other
// packages in the repository. Source units carry platform.Traits — the
// language idioms and portability hazards that determine how they fare on
// each computing environment, including the latent defects
// ("long-standing bugs") that only surface during migrations.
//
// The repository is versioned by an integer revision that increments with
// every applied Patch, so validation runs can record exactly which state
// of the software they exercised.
package swrepo

import (
	"fmt"
	"sort"

	"repro/internal/platform"
)

// Lang is the implementation language of a source unit.
type Lang int

const (
	// LangC is ANSI or pre-ANSI C.
	LangC Lang = iota
	// LangCxx is C++.
	LangCxx
	// LangFortran is FORTRAN 77, pervasive in HERA-era reconstruction
	// code.
	LangFortran
)

// String returns "c", "c++" or "fortran".
func (l Lang) String() string {
	switch l {
	case LangC:
		return "c"
	case LangCxx:
		return "c++"
	default:
		return "fortran"
	}
}

// SourceUnit is one compilable file in a package.
type SourceUnit struct {
	// Name is the file name within the package, e.g. "tracking.cc".
	Name string
	// Language selects the compiler frontend.
	Language Lang
	// Traits are the platform-relevant properties of the code; see
	// platform.Trait. The unit always implicitly has the base trait of
	// its language (ANSI C or C++98), listed explicitly for uniformity.
	Traits []platform.Trait
	// Lines is the synthetic size of the unit, which drives the
	// simulated compile cost.
	Lines int
}

// HasTrait reports whether the unit exhibits the trait.
func (u *SourceUnit) HasTrait(t platform.Trait) bool {
	for _, x := range u.Traits {
		if x == t {
			return true
		}
	}
	return false
}

// Package is a buildable unit of experiment software.
type Package struct {
	// Name identifies the package within its repository, e.g. "h1reco".
	Name string
	// Deps names the packages this one builds against; they must exist
	// in the same repository and the resulting graph must be acyclic.
	Deps []string
	// UsesAPIs lists external API surfaces the package links against,
	// e.g. "root/io/v5". Build fails if the image's external set does
	// not provide them.
	UsesAPIs []string
	// Units are the package's source files.
	Units []*SourceUnit
	// Kind classifies the package for reporting (library, generator,
	// simulation, reconstruction, analysis, tool).
	Kind PackageKind
}

// PackageKind classifies packages along the paper's Figure 2 taxonomy of
// the software chain.
type PackageKind int

const (
	// KindLibrary is shared infrastructure code.
	KindLibrary PackageKind = iota
	// KindGenerator is Monte-Carlo event generation.
	KindGenerator
	// KindSimulation is detector simulation.
	KindSimulation
	// KindReconstruction turns raw/simulated hits into physics objects.
	KindReconstruction
	// KindAnalysis is end-user physics analysis code.
	KindAnalysis
	// KindTool is auxiliary executables (file converters, skimmers).
	KindTool
)

var kindNames = [...]string{"library", "generator", "simulation", "reconstruction", "analysis", "tool"}

// String returns the kind's lower-case name.
func (k PackageKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// TotalLines sums the lines of all units in the package.
func (p *Package) TotalLines() int {
	n := 0
	for _, u := range p.Units {
		n += u.Lines
	}
	return n
}

// Traits returns the union of all unit traits, sorted, without duplicates.
func (p *Package) Traits() []platform.Trait {
	seen := make(map[platform.Trait]bool)
	for _, u := range p.Units {
		for _, t := range u.Traits {
			seen[t] = true
		}
	}
	out := make([]platform.Trait, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Repository is the versioned collection of an experiment's packages.
type Repository struct {
	// Experiment is the owning collaboration, e.g. "H1".
	Experiment string
	// Revision increments with every applied patch; builds and
	// validation runs record it.
	Revision int

	packages map[string]*Package
	applied  []Patch
}

// NewRepository returns an empty repository for the experiment at
// revision 1.
func NewRepository(experiment string) *Repository {
	return &Repository{
		Experiment: experiment,
		Revision:   1,
		packages:   make(map[string]*Package),
	}
}

// Add registers a package. It returns an error on duplicate names.
func (r *Repository) Add(p *Package) error {
	if _, dup := r.packages[p.Name]; dup {
		return fmt.Errorf("swrepo: duplicate package %q in %s repository", p.Name, r.Experiment)
	}
	r.packages[p.Name] = p
	return nil
}

// MustAdd is Add that panics on error, for static configuration.
func (r *Repository) MustAdd(p *Package) {
	if err := r.Add(p); err != nil {
		panic(err)
	}
}

// Get returns the named package.
func (r *Repository) Get(name string) (*Package, error) {
	p, ok := r.packages[name]
	if !ok {
		return nil, fmt.Errorf("swrepo: unknown package %q in %s repository", name, r.Experiment)
	}
	return p, nil
}

// Len returns the number of packages.
func (r *Repository) Len() int { return len(r.packages) }

// Packages returns all packages sorted by name.
func (r *Repository) Packages() []*Package {
	out := make([]*Package, 0, len(r.packages))
	for _, p := range r.packages {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Validate checks referential integrity: every declared dependency must
// exist and the dependency graph must be acyclic.
func (r *Repository) Validate() error {
	for _, p := range r.Packages() {
		for _, d := range p.Deps {
			if _, ok := r.packages[d]; !ok {
				return fmt.Errorf("swrepo: package %q depends on unknown package %q", p.Name, d)
			}
		}
	}
	_, err := r.BuildOrder()
	return err
}

// BuildOrder returns the packages in a deterministic topological order
// (dependencies before dependents, ties broken by name), or an error
// naming a package on a dependency cycle.
func (r *Repository) BuildOrder() ([]*Package, error) {
	indeg := make(map[string]int, len(r.packages))
	dependents := make(map[string][]string, len(r.packages))
	for _, p := range r.packages {
		if _, ok := indeg[p.Name]; !ok {
			indeg[p.Name] = 0
		}
		for _, d := range p.Deps {
			indeg[p.Name]++
			dependents[d] = append(dependents[d], p.Name)
		}
	}

	var ready []string
	for name, n := range indeg {
		if n == 0 {
			ready = append(ready, name)
		}
	}
	sort.Strings(ready)

	out := make([]*Package, 0, len(r.packages))
	for len(ready) > 0 {
		name := ready[0]
		ready = ready[1:]
		out = append(out, r.packages[name])
		newly := make([]string, 0, len(dependents[name]))
		for _, dep := range dependents[name] {
			indeg[dep]--
			if indeg[dep] == 0 {
				newly = append(newly, dep)
			}
		}
		sort.Strings(newly)
		ready = mergeSorted(ready, newly)
	}
	if len(out) != len(r.packages) {
		for name, n := range indeg {
			if n > 0 {
				return nil, fmt.Errorf("swrepo: dependency cycle involving package %q", name)
			}
		}
	}
	return out, nil
}

// mergeSorted merges two sorted string slices into one sorted slice.
func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Dependents returns the names of packages that directly depend on the
// named package, sorted.
func (r *Repository) Dependents(name string) []string {
	var out []string
	for _, p := range r.packages {
		for _, d := range p.Deps {
			if d == name {
				out = append(out, p.Name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// TransitiveDeps returns the names of all packages the named package
// depends on, directly or indirectly, sorted.
func (r *Repository) TransitiveDeps(name string) ([]string, error) {
	root, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var walk func(p *Package) error
	walk = func(p *Package) error {
		for _, d := range p.Deps {
			if seen[d] {
				continue
			}
			seen[d] = true
			dp, err := r.Get(d)
			if err != nil {
				return err
			}
			if err := walk(dp); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}
