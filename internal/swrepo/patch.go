package swrepo

import (
	"fmt"

	"repro/internal/platform"
)

// Patch is an intervention: a targeted source change that removes (and
// possibly introduces) traits in one source unit. In the paper's workflow
// a failed validation leads to problem identification and "intervention
// ... either by the host of the validation suite or the experiment
// themselves"; applying a Patch is that intervention. Every applied patch
// bumps the repository revision.
type Patch struct {
	// ID is a short unique label, e.g. "h1reco-64bit-fix".
	ID string
	// Package locates the package being changed. When Unit is empty the
	// patch is package-level and only ReplaceAPIs applies.
	Package string
	Unit    string
	// Remove lists traits the patch eliminates (e.g. TraitPtrIntCast
	// after porting pointer arithmetic to intptr_t).
	Remove []platform.Trait
	// Add lists traits the patch introduces (usually none; porting to
	// C++11 would add TraitCxx11).
	Add []platform.Trait
	// ReplaceAPIs maps old external API surfaces to their replacements,
	// e.g. "root/io/v5" -> "root/io/v6" when porting to ROOT 6.
	ReplaceAPIs map[string]string
	// Note records why, for the bookkeeping system.
	Note string
}

// Apply applies the patch to the repository, bumping its revision. It is
// an error if the target unit does not exist or if a removed trait is not
// present (the patch would be a no-op, which indicates a bookkeeping
// mistake).
func (r *Repository) Apply(p Patch) error {
	pkg, err := r.Get(p.Package)
	if err != nil {
		return fmt.Errorf("swrepo: patch %s: %w", p.ID, err)
	}
	if p.Unit == "" {
		if len(p.Remove) > 0 || len(p.Add) > 0 {
			return fmt.Errorf("swrepo: patch %s: trait changes require a unit", p.ID)
		}
		if len(p.ReplaceAPIs) == 0 {
			return fmt.Errorf("swrepo: patch %s changes nothing", p.ID)
		}
		replaced := false
		for i, api := range pkg.UsesAPIs {
			if neu, ok := p.ReplaceAPIs[api]; ok {
				pkg.UsesAPIs[i] = neu
				replaced = true
			}
		}
		if !replaced {
			return fmt.Errorf("swrepo: patch %s: package %q uses none of the replaced APIs", p.ID, p.Package)
		}
		r.Revision++
		r.applied = append(r.applied, p)
		return nil
	}
	var unit *SourceUnit
	for _, u := range pkg.Units {
		if u.Name == p.Unit {
			unit = u
			break
		}
	}
	if unit == nil {
		return fmt.Errorf("swrepo: patch %s: no unit %q in package %q", p.ID, p.Unit, p.Package)
	}
	for _, t := range p.Remove {
		if !unit.HasTrait(t) {
			return fmt.Errorf("swrepo: patch %s: unit %s/%s does not have trait %v",
				p.ID, p.Package, p.Unit, t)
		}
	}
	filtered := unit.Traits[:0]
	for _, t := range unit.Traits {
		removed := false
		for _, rm := range p.Remove {
			if t == rm {
				removed = true
				break
			}
		}
		if !removed {
			filtered = append(filtered, t)
		}
	}
	unit.Traits = filtered
	for _, t := range p.Add {
		if !unit.HasTrait(t) {
			unit.Traits = append(unit.Traits, t)
		}
	}
	r.Revision++
	r.applied = append(r.applied, p)
	return nil
}

// AppliedPatches returns the patches applied so far, in order.
func (r *Repository) AppliedPatches() []Patch {
	out := make([]Patch, len(r.applied))
	copy(out, r.applied)
	return out
}

// UnitsWithTrait returns (package, unit) pairs for every source unit in
// the repository exhibiting the trait, in package-name order. Migration
// planning uses this to enumerate intervention targets once validation has
// attributed a failure to a trait.
func (r *Repository) UnitsWithTrait(t platform.Trait) []UnitRef {
	var out []UnitRef
	for _, p := range r.Packages() {
		for _, u := range p.Units {
			if u.HasTrait(t) {
				out = append(out, UnitRef{Package: p.Name, Unit: u.Name})
			}
		}
	}
	return out
}

// UnitRef names a source unit within a repository.
type UnitRef struct {
	Package, Unit string
}

// String returns "package/unit".
func (u UnitRef) String() string { return u.Package + "/" + u.Unit }
