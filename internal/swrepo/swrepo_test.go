package swrepo

import (
	"strings"
	"testing"

	"repro/internal/platform"
)

func lib(name string, deps ...string) *Package {
	return &Package{
		Name: name,
		Deps: deps,
		Units: []*SourceUnit{
			{Name: "main.cc", Language: LangCxx, Traits: []platform.Trait{platform.TraitCxx98}, Lines: 100},
		},
	}
}

func TestAddAndGet(t *testing.T) {
	r := NewRepository("H1")
	r.MustAdd(lib("a"))
	p, err := r.Get("a")
	if err != nil || p.Name != "a" {
		t.Fatalf("Get(a) = %v, %v", p, err)
	}
	if _, err := r.Get("zz"); err == nil {
		t.Fatal("Get(zz) succeeded, want error")
	}
	if err := r.Add(lib("a")); err == nil {
		t.Fatal("duplicate Add succeeded, want error")
	}
}

func TestBuildOrderRespectsDeps(t *testing.T) {
	r := NewRepository("H1")
	r.MustAdd(lib("app", "libb", "liba"))
	r.MustAdd(lib("liba"))
	r.MustAdd(lib("libb", "liba"))

	order, err := r.BuildOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, p := range order {
		pos[p.Name] = i
	}
	if !(pos["liba"] < pos["libb"] && pos["libb"] < pos["app"]) {
		t.Fatalf("bad order: %v", pos)
	}
}

func TestBuildOrderDeterministic(t *testing.T) {
	mk := func() *Repository {
		r := NewRepository("H1")
		for _, n := range []string{"m", "c", "x", "a", "k"} {
			r.MustAdd(lib(n))
		}
		return r
	}
	a, _ := mk().BuildOrder()
	b, _ := mk().BuildOrder()
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i].Name, b[i].Name)
		}
	}
	// Independent packages come out in name order.
	want := []string{"a", "c", "k", "m", "x"}
	for i, p := range a {
		if p.Name != want[i] {
			t.Fatalf("order = %v at %d, want %v", p.Name, i, want[i])
		}
	}
}

func TestBuildOrderDetectsCycle(t *testing.T) {
	r := NewRepository("H1")
	r.MustAdd(lib("a", "b"))
	r.MustAdd(lib("b", "a"))
	if _, err := r.BuildOrder(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("BuildOrder on cycle = %v, want cycle error", err)
	}
}

func TestValidateCatchesUnknownDep(t *testing.T) {
	r := NewRepository("H1")
	r.MustAdd(lib("a", "ghost"))
	if err := r.Validate(); err == nil {
		t.Fatal("Validate passed with unknown dependency")
	}
}

func TestDependents(t *testing.T) {
	r := NewRepository("H1")
	r.MustAdd(lib("base"))
	r.MustAdd(lib("mid", "base"))
	r.MustAdd(lib("top", "mid", "base"))
	got := r.Dependents("base")
	if len(got) != 2 || got[0] != "mid" || got[1] != "top" {
		t.Fatalf("Dependents(base) = %v", got)
	}
	if got := r.Dependents("top"); len(got) != 0 {
		t.Fatalf("Dependents(top) = %v, want empty", got)
	}
}

func TestTransitiveDeps(t *testing.T) {
	r := NewRepository("H1")
	r.MustAdd(lib("base"))
	r.MustAdd(lib("mid", "base"))
	r.MustAdd(lib("top", "mid"))
	got, err := r.TransitiveDeps("top")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "base" || got[1] != "mid" {
		t.Fatalf("TransitiveDeps(top) = %v", got)
	}
}

func TestPatchApply(t *testing.T) {
	r := NewRepository("H1")
	p := lib("reco")
	p.Units[0].Traits = append(p.Units[0].Traits, platform.TraitPtrIntCast)
	r.MustAdd(p)

	rev := r.Revision
	err := r.Apply(Patch{
		ID: "reco-64bit-fix", Package: "reco", Unit: "main.cc",
		Remove: []platform.Trait{platform.TraitPtrIntCast},
		Note:   "port pointer arithmetic to intptr_t",
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Revision != rev+1 {
		t.Fatalf("revision = %d, want %d", r.Revision, rev+1)
	}
	if p.Units[0].HasTrait(platform.TraitPtrIntCast) {
		t.Fatal("trait still present after patch")
	}
	if !p.Units[0].HasTrait(platform.TraitCxx98) {
		t.Fatal("patch removed unrelated trait")
	}
	if got := r.AppliedPatches(); len(got) != 1 || got[0].ID != "reco-64bit-fix" {
		t.Fatalf("AppliedPatches = %v", got)
	}
}

func TestPatchErrors(t *testing.T) {
	r := NewRepository("H1")
	r.MustAdd(lib("reco"))
	cases := []Patch{
		{ID: "p1", Package: "ghost", Unit: "main.cc"},
		{ID: "p2", Package: "reco", Unit: "ghost.cc"},
		{ID: "p3", Package: "reco", Unit: "main.cc", Remove: []platform.Trait{platform.TraitPtrIntCast}},
	}
	for _, p := range cases {
		if err := r.Apply(p); err == nil {
			t.Errorf("patch %s succeeded, want error", p.ID)
		}
	}
	if r.Revision != 1 {
		t.Fatalf("failed patches must not bump revision, got %d", r.Revision)
	}
}

func TestPatchAddTrait(t *testing.T) {
	r := NewRepository("H1")
	r.MustAdd(lib("ana"))
	err := r.Apply(Patch{
		ID: "ana-cxx11-port", Package: "ana", Unit: "main.cc",
		Add:  []platform.Trait{platform.TraitCxx11},
		Note: "modernize for ROOT 6",
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := r.Get("ana")
	if !p.Units[0].HasTrait(platform.TraitCxx11) {
		t.Fatal("added trait missing")
	}
}

func TestUnitsWithTrait(t *testing.T) {
	r := NewRepository("H1")
	a := lib("a")
	a.Units[0].Traits = append(a.Units[0].Traits, platform.TraitUninitMemory)
	b := lib("b")
	r.MustAdd(a)
	r.MustAdd(b)
	refs := r.UnitsWithTrait(platform.TraitUninitMemory)
	if len(refs) != 1 || refs[0].Package != "a" || refs[0].Unit != "main.cc" {
		t.Fatalf("UnitsWithTrait = %v", refs)
	}
	if refs[0].String() != "a/main.cc" {
		t.Fatalf("UnitRef.String = %q", refs[0].String())
	}
}

func TestPackageTraitsUnion(t *testing.T) {
	p := &Package{
		Name: "x",
		Units: []*SourceUnit{
			{Name: "a.c", Language: LangC, Traits: []platform.Trait{platform.TraitANSIC, platform.TraitKAndRDecl}},
			{Name: "b.c", Language: LangC, Traits: []platform.Trait{platform.TraitANSIC}},
		},
	}
	got := p.Traits()
	if len(got) != 2 || got[0] != platform.TraitANSIC || got[1] != platform.TraitKAndRDecl {
		t.Fatalf("Traits = %v", got)
	}
}

func TestTotalLines(t *testing.T) {
	p := &Package{Units: []*SourceUnit{{Lines: 100}, {Lines: 250}}}
	if p.TotalLines() != 350 {
		t.Fatalf("TotalLines = %d", p.TotalLines())
	}
}
