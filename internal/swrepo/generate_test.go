package swrepo

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/simrand"
)

func TestGenerateSizedLikeH1(t *testing.T) {
	repo := MustGenerate(DefaultSpec("h1"), simrand.New(1))
	if repo.Len() != 100 {
		t.Fatalf("packages = %d, want 100 (Figure 2)", repo.Len())
	}
	if err := repo.Validate(); err != nil {
		t.Fatalf("generated repo invalid: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(DefaultSpec("h1"), simrand.New(7))
	b := MustGenerate(DefaultSpec("h1"), simrand.New(7))
	pa, pb := a.Packages(), b.Packages()
	if len(pa) != len(pb) {
		t.Fatalf("package counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name {
			t.Fatalf("package %d name differs: %s vs %s", i, pa[i].Name, pb[i].Name)
		}
		if len(pa[i].Units) != len(pb[i].Units) {
			t.Fatalf("package %s unit count differs", pa[i].Name)
		}
		for j := range pa[i].Units {
			ua, ub := pa[i].Units[j], pb[i].Units[j]
			if ua.Name != ub.Name || ua.Lines != ub.Lines || len(ua.Traits) != len(ub.Traits) {
				t.Fatalf("unit %s/%s differs between runs", pa[i].Name, ua.Name)
			}
			for k := range ua.Traits {
				if ua.Traits[k] != ub.Traits[k] {
					t.Fatalf("trait %d of %s/%s differs", k, pa[i].Name, ua.Name)
				}
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(DefaultSpec("h1"), simrand.New(1))
	b := MustGenerate(DefaultSpec("h1"), simrand.New(2))
	// Same structure (names), but content should differ somewhere.
	pa, pb := a.Packages(), b.Packages()
	differs := false
	for i := range pa {
		if pa[i].TotalLines() != pb[i].TotalLines() {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("different seeds produced byte-identical repositories")
	}
}

func TestGenerateCoversAllKinds(t *testing.T) {
	repo := MustGenerate(DefaultSpec("h1"), simrand.New(3))
	kinds := make(map[PackageKind]int)
	for _, p := range repo.Packages() {
		kinds[p.Kind]++
	}
	for _, k := range []PackageKind{KindLibrary, KindGenerator, KindSimulation, KindReconstruction, KindAnalysis, KindTool} {
		if kinds[k] == 0 {
			t.Errorf("no packages of kind %v generated", k)
		}
	}
}

func TestGenerateInjectsDefects(t *testing.T) {
	spec := DefaultSpec("h1")
	spec.DefectRate = 0.10
	repo := MustGenerate(spec, simrand.New(5))
	defects := 0
	for _, tr := range []platform.Trait{platform.TraitPtrIntCast, platform.TraitUninitMemory, platform.TraitStrictAliasing} {
		defects += len(repo.UnitsWithTrait(tr))
	}
	if defects == 0 {
		t.Fatal("no latent defects injected at 10% rate")
	}
}

func TestGenerateZeroDefectRate(t *testing.T) {
	spec := DefaultSpec("h1")
	spec.DefectRate = 0
	repo := MustGenerate(spec, simrand.New(5))
	for _, tr := range []platform.Trait{platform.TraitPtrIntCast, platform.TraitUninitMemory, platform.TraitStrictAliasing} {
		if refs := repo.UnitsWithTrait(tr); len(refs) != 0 {
			t.Fatalf("defect %v injected despite zero rate: %v", tr, refs)
		}
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	bad := []GenSpec{
		{Experiment: "x", Packages: 0, MinUnits: 1, MaxUnits: 2},
		{Experiment: "x", Packages: 10, MinUnits: 0, MaxUnits: 2},
		{Experiment: "x", Packages: 10, MinUnits: 5, MaxUnits: 2},
	}
	for i, spec := range bad {
		if _, err := Generate(spec, simrand.New(1)); err == nil {
			t.Errorf("spec %d accepted, want error", i)
		}
	}
}

func TestGenerateFortranInGeneratorLayer(t *testing.T) {
	repo := MustGenerate(DefaultSpec("h1"), simrand.New(11))
	fortran := 0
	for _, p := range repo.Packages() {
		if p.Kind != KindGenerator && p.Kind != KindSimulation {
			continue
		}
		for _, u := range p.Units {
			if u.Language == LangFortran {
				fortran++
			}
		}
	}
	if fortran == 0 {
		t.Fatal("HERA-era generator/simulation layers contain no FORTRAN")
	}
}

func TestGenerateSmallRepo(t *testing.T) {
	spec := GenSpec{Experiment: "tiny", Packages: 5, MinUnits: 1, MaxUnits: 2}
	repo := MustGenerate(spec, simrand.New(1))
	if repo.Len() != 5 {
		t.Fatalf("packages = %d, want 5", repo.Len())
	}
	if err := repo.Validate(); err != nil {
		t.Fatal(err)
	}
}
