// Package bookkeep is the results database of the sp-system: it indexes
// the run records the runner keeps on the common storage and implements
// the paper's failure-handling workflow: "If a test fails, any
// differences compared to the last successful test are examined and
// problems identified. Intervention is then required either by the host
// of the validation suite or the experiment themselves, depending on the
// nature of the reported problem."
//
// Diff computes test-level differences between a run and its baseline
// (the last successful run of the same experiment); Classify attributes
// the failure to the input category that changed — operating system,
// external dependencies, or experiment software — which is what decides
// whether the IT host or the experiment intervenes.
package bookkeep

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/runner"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// Book provides queries over recorded validation runs.
type Book struct {
	store *storage.Store
}

// New returns a Book reading the given common storage.
func New(store *storage.Store) *Book { return &Book{store: store} }

// Runs returns every recorded run, ordered by run ID (which is the
// execution order).
func (b *Book) Runs() ([]*runner.RunRecord, error) {
	ids := runner.ListRuns(b.store)
	out := make([]*runner.RunRecord, 0, len(ids))
	for _, id := range ids {
		rec, err := runner.LoadRun(b.store, id)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Run returns a single recorded run.
func (b *Book) Run(id string) (*runner.RunRecord, error) {
	return runner.LoadRun(b.store, id)
}

// RunsFor returns the runs of one experiment, optionally filtered to a
// configuration label ("" matches all), in execution order.
func (b *Book) RunsFor(experiment, config string) ([]*runner.RunRecord, error) {
	all, err := b.Runs()
	if err != nil {
		return nil, err
	}
	var out []*runner.RunRecord
	for _, r := range all {
		if r.Experiment != experiment {
			continue
		}
		if config != "" && r.Config != config {
			continue
		}
		out = append(out, r)
	}
	return out, nil
}

// RunsTagged returns runs whose description contains the substring.
func (b *Book) RunsTagged(substr string) ([]*runner.RunRecord, error) {
	all, err := b.Runs()
	if err != nil {
		return nil, err
	}
	var out []*runner.RunRecord
	for _, r := range all {
		if strings.Contains(r.Description, substr) {
			out = append(out, r)
		}
	}
	return out, nil
}

// LastSuccessful returns the most recent fully passing run of the
// experiment before the given run ID ("" means before anything, i.e.
// the latest overall).
func (b *Book) LastSuccessful(experiment, beforeRunID string) (*runner.RunRecord, error) {
	all, err := b.RunsFor(experiment, "")
	if err != nil {
		return nil, err
	}
	var best *runner.RunRecord
	for _, r := range all {
		// Numeric-aware comparison: with string >= the baseline search
		// would wrongly exclude run-9999 when diffing run-10000.
		if beforeRunID != "" && runner.CompareIDs(r.RunID, beforeRunID) >= 0 {
			continue
		}
		if r.Passed() {
			best = r
		}
	}
	if best == nil {
		return nil, fmt.Errorf("bookkeep: no successful %s run before %q", experiment, beforeRunID)
	}
	return best, nil
}

// TestDiff records one test whose outcome changed between two runs.
type TestDiff struct {
	Test   string
	Before valtest.Outcome
	After  valtest.Outcome
	// Detail carries the failing run's explanation.
	Detail string
}

// Diff is the comparison of a run against its baseline.
type Diff struct {
	BaselineRun, CurrentRun string
	// Regressions are tests that passed in the baseline and no longer
	// pass.
	Regressions []TestDiff
	// Fixes are tests that now pass but did not before.
	Fixes []TestDiff
	// Added and Removed name tests present in only one of the runs.
	Added, Removed []string
	// What changed between the runs' inputs.
	ConfigChanged    bool
	ExternalsChanged bool
	RevisionChanged  bool
}

// Clean reports whether the diff contains no regressions.
func (d *Diff) Clean() bool { return len(d.Regressions) == 0 }

// DiffRuns computes the test-level differences from baseline to current.
func DiffRuns(baseline, current *runner.RunRecord) *Diff {
	d := &Diff{
		BaselineRun:      baseline.RunID,
		CurrentRun:       current.RunID,
		ConfigChanged:    baseline.Config != current.Config,
		ExternalsChanged: baseline.Externals != current.Externals,
		RevisionChanged:  baseline.RepoRevision != current.RepoRevision,
	}
	before := make(map[string]valtest.Result)
	for _, j := range baseline.Jobs {
		before[j.Result.Test] = j.Result
	}
	seen := make(map[string]bool)
	for _, j := range current.Jobs {
		name := j.Result.Test
		seen[name] = true
		prev, ok := before[name]
		if !ok {
			d.Added = append(d.Added, name)
			continue
		}
		switch {
		case prev.Outcome.Passed() && !j.Result.Outcome.Passed():
			d.Regressions = append(d.Regressions, TestDiff{
				Test: name, Before: prev.Outcome, After: j.Result.Outcome, Detail: j.Result.Detail,
			})
		case !prev.Outcome.Passed() && j.Result.Outcome.Passed():
			d.Fixes = append(d.Fixes, TestDiff{Test: name, Before: prev.Outcome, After: j.Result.Outcome})
		}
	}
	for name := range before {
		if !seen[name] {
			d.Removed = append(d.Removed, name)
		}
	}
	sort.Slice(d.Regressions, func(i, j int) bool { return d.Regressions[i].Test < d.Regressions[j].Test })
	sort.Slice(d.Fixes, func(i, j int) bool { return d.Fixes[i].Test < d.Fixes[j].Test })
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	return d
}

// DiffAgainstLastSuccess diffs the run against the last fully successful
// run of the same experiment — the paper's prescribed comparison.
func (b *Book) DiffAgainstLastSuccess(current *runner.RunRecord) (*Diff, error) {
	baseline, err := b.LastSuccessful(current.Experiment, current.RunID)
	if err != nil {
		return nil, err
	}
	return DiffRuns(baseline, current), nil
}

// Attribution names the input category a regression is attributed to,
// deciding who intervenes (the paper's host IT department vs the
// experiment).
type Attribution int

const (
	// AttrNone means no regressions were found.
	AttrNone Attribution = iota
	// AttrOS attributes the regressions to the operating
	// system/compiler change; the host IT department leads.
	AttrOS
	// AttrExternals attributes the regressions to an external software
	// change; host and experiment investigate the dependency.
	AttrExternals
	// AttrExperiment attributes the regressions to experiment software
	// changes; the experiment intervenes.
	AttrExperiment
	// AttrMixed means multiple inputs changed at once and the diff
	// cannot isolate one.
	AttrMixed
	// AttrInfrastructure means nothing changed between the runs: the
	// framework itself (or its hardware) is at fault.
	AttrInfrastructure
)

var attrNames = [...]string{"none", "os", "externals", "experiment", "mixed", "infrastructure"}

// String returns the attribution's short name.
func (a Attribution) String() string {
	if int(a) < len(attrNames) {
		return attrNames[a]
	}
	return fmt.Sprintf("attribution(%d)", int(a))
}

// Responsible names the party the paper assigns to intervene.
func (a Attribution) Responsible() string {
	switch a {
	case AttrOS:
		return "host IT department"
	case AttrExternals:
		return "host IT department and experiment"
	case AttrExperiment:
		return "experiment"
	case AttrMixed:
		return "joint investigation"
	case AttrInfrastructure:
		return "sp-system operators"
	default:
		return "nobody"
	}
}

// Classify attributes a diff's regressions to the input category that
// changed between baseline and current run.
func Classify(d *Diff) Attribution {
	if d.Clean() {
		return AttrNone
	}
	changed := 0
	var attr Attribution
	if d.ConfigChanged {
		changed++
		attr = AttrOS
	}
	if d.ExternalsChanged {
		changed++
		attr = AttrExternals
	}
	if d.RevisionChanged {
		changed++
		attr = AttrExperiment
	}
	switch changed {
	case 0:
		return AttrInfrastructure
	case 1:
		return attr
	default:
		return AttrMixed
	}
}

// Cell is one entry of the paper's Figure 3 status matrix: the latest
// validation state of an experiment on a configuration with an external
// software set.
type Cell struct {
	Experiment string
	Config     string
	Externals  string
	RunID      string
	Timestamp  int64
	// Pass, Fail, Skip, Error count the latest run's job outcomes.
	Pass, Fail, Skip, Error int
	// Runs counts how many runs were recorded for this cell in total.
	Runs int
	// InputDigest is the latest run's content-addressed input digest
	// (empty for records written before the digest existed) — the
	// provenance a reader needs to decide whether the cell still
	// reflects the current inputs.
	InputDigest string
}

// Healthy reports whether the cell's latest run passed completely.
func (c *Cell) Healthy() bool { return c.Fail == 0 && c.Error == 0 && c.Skip == 0 }

// Total returns the number of jobs in the latest run.
func (c *Cell) Total() int { return c.Pass + c.Fail + c.Skip + c.Error }

// cellKey identifies one matrix cell: an (experiment, config,
// externals) triple.
type cellKey struct{ exp, cfg, ext string }

// makeCell builds the Cell for a key from its latest run's meta and the
// total run count — shared by the full-rescan Matrix here (which
// summarizes each record first) and the incremental Index (which holds
// metas already), so both produce identical cells from identical
// inputs.
func makeCell(k cellKey, m *RunMeta, count int) Cell {
	return Cell{
		Experiment: k.exp, Config: k.cfg, Externals: k.ext,
		RunID: m.RunID, Timestamp: m.Timestamp, Runs: count,
		InputDigest: m.InputDigest,
		Pass:        m.Pass, Fail: m.Fail, Skip: m.Skip, Error: m.Error,
	}
}

// sortCells orders matrix cells by experiment, then config, then
// externals — the Figure 3 presentation order.
func sortCells(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		return a.Externals < b.Externals
	})
}

// Matrix aggregates the latest run per (experiment, config, externals)
// triple — the data behind the Figure 3 summary page. Cells are sorted
// by experiment, then config, then externals.
func (b *Book) Matrix() ([]Cell, error) {
	all, err := b.Runs()
	if err != nil {
		return nil, err
	}
	latest := make(map[cellKey]*runner.RunRecord)
	count := make(map[cellKey]int)
	for _, r := range all {
		k := cellKey{r.Experiment, r.Config, r.Externals}
		count[k]++
		// Numeric-aware: the latest run past rollover is run-10000, not
		// the lexicographically larger run-9999.
		if prev, ok := latest[k]; !ok || runner.CompareIDs(r.RunID, prev.RunID) > 0 {
			latest[k] = r
		}
	}
	cells := make([]Cell, 0, len(latest))
	for k, r := range latest {
		cells = append(cells, makeCell(k, Summarize(r), count[k]))
	}
	sortCells(cells)
	return cells, nil
}

// TotalRuns returns the number of recorded validation runs — the
// paper's ">300 runs over sets of pre-defined tests" figure.
func (b *Book) TotalRuns() int {
	return len(runner.ListRuns(b.store))
}
