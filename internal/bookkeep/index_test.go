package bookkeep_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bookkeep"
	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/swrepo"
	"repro/internal/valtest"
)

// fixture drives the real runner against a store so both Book and Index
// read genuine records.
type fixture struct {
	store *storage.Store
	rn    *runner.Runner
}

func newFixture() *fixture {
	store := storage.NewStore()
	return &fixture{store: store, rn: runner.New(store, simclock.New())}
}

func (f *fixture) ctx(exp string, cfg platform.Config, rootVer string, revision int) *valtest.Context {
	cat := externals.NewCatalogue()
	root, _ := cat.Get(externals.ROOT, rootVer)
	repo := swrepo.NewRepository(exp)
	repo.Revision = revision
	return &valtest.Context{
		Store:     f.store,
		Env:       storage.Env{},
		Config:    cfg,
		Registry:  platform.NewRegistry(),
		Externals: externals.MustSet(root),
		Repo:      repo,
	}
}

func (f *fixture) run(t *testing.T, exp string, ctx *valtest.Context, desc string, outcomes []valtest.Outcome) *runner.RunRecord {
	t.Helper()
	suite := valtest.NewSuite(exp)
	for i, out := range outcomes {
		out := out
		suite.MustAdd(&valtest.FuncTest{
			TestName: fmt.Sprintf("t%02d", i), Cat: valtest.CatStandalone,
			Fn: func(*valtest.Context) valtest.Result {
				return valtest.Result{Outcome: out, Detail: "synthetic", Cost: time.Second}
			},
		})
	}
	rec, err := f.rn.Run(suite, ctx, desc)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func cfgSL5() platform.Config { return platform.ReferenceConfig() }
func cfgSL6() platform.Config {
	return platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
}

// TestRunOrderingPastRollover is the regression test for the ID
// rollover bug: run-10000 sorts lexicographically *before* run-9999, so
// string-ordered bookkeeping picked run-9998 as the baseline of
// run-10000 and stamped the matrix cell with the stale run-9999. The
// runs here are minted by the real runner after fast-forwarding the
// persistent counter across the 4-digit boundary.
func TestRunOrderingPastRollover(t *testing.T) {
	f := newFixture()
	// Fast-forward the run counter so the next minted IDs straddle the
	// run-%04d rollover: run-9998, run-9999, run-10000.
	if _, err := f.store.Put("meta", "runseq", []byte("9997")); err != nil {
		t.Fatal(err)
	}
	pass := []valtest.Outcome{valtest.OutcomePass}
	fail := []valtest.Outcome{valtest.OutcomeFail}
	r9998 := f.run(t, "H1", f.ctx("H1", cfgSL5(), "5.34", 1), "old success", pass)
	r9999 := f.run(t, "H1", f.ctx("H1", cfgSL5(), "5.34", 1), "latest success", pass)
	r10000 := f.run(t, "H1", f.ctx("H1", cfgSL5(), "5.34", 2), "first past rollover", fail)
	if r9998.RunID != "run-9998" || r9999.RunID != "run-9999" || r10000.RunID != "run-10000" {
		t.Fatalf("minted IDs %s %s %s", r9998.RunID, r9999.RunID, r10000.RunID)
	}

	// Execution order, not lexicographic order.
	ids := runner.ListRuns(f.store)
	if len(ids) != 3 || ids[0] != "run-9998" || ids[1] != "run-9999" || ids[2] != "run-10000" {
		t.Fatalf("ListRuns order = %v", ids)
	}

	// Baseline selection: the success immediately before run-10000 is
	// run-9999. The lexicographic bug silently returned run-9998.
	book := bookkeep.New(f.store)
	base, err := book.LastSuccessful("H1", "run-10000")
	if err != nil {
		t.Fatal(err)
	}
	if base.RunID != "run-9999" {
		t.Fatalf("LastSuccessful before run-10000 = %s, want run-9999", base.RunID)
	}

	// The matrix cell's latest run is run-10000, not the
	// lexicographically larger run-9999.
	cells, err := book.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].RunID != "run-10000" {
		t.Fatalf("matrix latest = %+v, want run-10000", cells)
	}

	// The incremental index agrees on both queries.
	x, err := bookkeep.BuildIndex(f.store)
	if err != nil {
		t.Fatal(err)
	}
	xbase, err := x.LastSuccessful("H1", "run-10000")
	if err != nil || xbase.RunID != "run-9999" {
		t.Fatalf("index LastSuccessful = %v, %v", xbase, err)
	}
	if xc := x.Matrix(); len(xc) != 1 || xc[0].RunID != "run-10000" {
		t.Fatalf("index matrix latest = %+v", xc)
	}
}

// populateMixed records a varied little campaign: three experiments,
// two configs, two ROOT versions, mixed outcomes — enough structure
// that matrix cells, baselines and diffs all have non-trivial answers.
func populateMixed(t *testing.T, f *fixture, runs int) []*runner.RunRecord {
	t.Helper()
	exps := []string{"H1", "ZEUS", "HERMES"}
	cfgs := []platform.Config{cfgSL5(), cfgSL6()}
	roots := []string{"5.34", "5.30"}
	outcomes := [][]valtest.Outcome{
		{valtest.OutcomePass, valtest.OutcomePass},
		{valtest.OutcomePass, valtest.OutcomeFail},
		{valtest.OutcomeFail, valtest.OutcomeError},
		{valtest.OutcomePass, valtest.OutcomeSkip},
	}
	var recs []*runner.RunRecord
	for i := 0; i < runs; i++ {
		exp := exps[i%len(exps)]
		ctx := f.ctx(exp, cfgs[(i/3)%len(cfgs)], roots[(i/5)%len(roots)], 1+i/7)
		rec := f.run(t, exp, ctx, fmt.Sprintf("campaign step %d", i), outcomes[i%len(outcomes)])
		recs = append(recs, rec)
	}
	return recs
}

// TestIndexMatchesBookProperty: an Index built incrementally, with
// records arriving in any interleaving of direct Adds and storage
// Refreshes, renders the byte-identical matrix and the byte-identical
// per-run diff-against-last-success as the full-rescan Book over the
// same store.
func TestIndexMatchesBookProperty(t *testing.T) {
	f := newFixture()
	recs := populateMixed(t, f, 24)
	book := bookkeep.New(f.store)

	wantMatrix, err := book.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	wantMatrixText := report.TextMatrix(wantMatrix)

	// Reference diff text (or error text) for every recorded run.
	wantDiff := make(map[string]string, len(recs))
	for _, rec := range recs {
		if d, err := book.DiffAgainstLastSuccess(rec); err != nil {
			wantDiff[rec.RunID] = "ERR " + err.Error()
		} else {
			wantDiff[rec.RunID] = report.TextDiff(d)
		}
	}

	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		x := bookkeep.NewIndex(f.store)
		perm := rng.Perm(len(recs))
		// Interleave: feed a random prefix by direct Add in permuted
		// order, then let Refresh sweep in the remainder from storage,
		// then Add the rest again (duplicates must be ignored).
		cut := rng.Intn(len(perm) + 1)
		for _, i := range perm[:cut] {
			x.Add(recs[i])
		}
		if err := x.Refresh(); err != nil {
			t.Fatal(err)
		}
		for _, i := range perm {
			x.Add(recs[i]) // all duplicates by now
		}

		if got := report.TextMatrix(x.Matrix()); got != wantMatrixText {
			t.Fatalf("seed %d: index matrix differs from book:\n got:\n%s\nwant:\n%s", seed, got, wantMatrixText)
		}
		if x.TotalRuns() != book.TotalRuns() {
			t.Fatalf("seed %d: TotalRuns %d != %d", seed, x.TotalRuns(), book.TotalRuns())
		}
		for _, rec := range recs {
			var got string
			if d, err := x.DiffAgainstLastSuccess(rec); err != nil {
				got = "ERR " + err.Error()
			} else {
				got = report.TextDiff(d)
			}
			if got != wantDiff[rec.RunID] {
				t.Fatalf("seed %d: diff for %s differs:\n got:\n%s\nwant:\n%s", seed, rec.RunID, got, wantDiff[rec.RunID])
			}
		}
	}
}

// TestIndexRefreshIsIncremental: records appended after the first
// Refresh are picked up by the next one, and an unchanged store
// refreshes without changing anything.
func TestIndexRefreshIsIncremental(t *testing.T) {
	f := newFixture()
	populateMixed(t, f, 6)
	x, err := bookkeep.BuildIndex(f.store)
	if err != nil {
		t.Fatal(err)
	}
	if x.TotalRuns() != 6 {
		t.Fatalf("TotalRuns = %d", x.TotalRuns())
	}
	before := report.TextMatrix(x.Matrix())
	if err := x.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := report.TextMatrix(x.Matrix()); got != before {
		t.Fatal("no-op refresh changed the matrix")
	}

	populateMixed(t, f, 3) // three more runs land in the store
	if err := x.Refresh(); err != nil {
		t.Fatal(err)
	}
	if x.TotalRuns() != 9 {
		t.Fatalf("TotalRuns after refresh = %d", x.TotalRuns())
	}
	book := bookkeep.New(f.store)
	cells, err := book.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if got := report.TextMatrix(x.Matrix()); got != report.TextMatrix(cells) {
		t.Fatal("refreshed index disagrees with book")
	}
}

// TestIndexRunLookup covers the point queries spserve serves from.
func TestIndexRunLookup(t *testing.T) {
	f := newFixture()
	recs := populateMixed(t, f, 4)
	x, err := bookkeep.BuildIndex(f.store)
	if err != nil {
		t.Fatal(err)
	}
	got, err := x.Run(recs[2].RunID)
	if err != nil || got.RunID != recs[2].RunID {
		t.Fatalf("Run = %v, %v", got, err)
	}
	if _, err := x.Run("run-nope"); err == nil {
		t.Fatal("unknown run ID found")
	}
	h1 := x.RunsFor("H1", "")
	for _, r := range h1 {
		if r.Experiment != "H1" {
			t.Fatalf("RunsFor leaked %s", r.Experiment)
		}
	}
	all := x.Runs()
	if len(all) != 4 {
		t.Fatalf("Runs = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if runner.CompareIDs(all[i-1].RunID, all[i].RunID) >= 0 {
			t.Fatalf("Runs out of order: %s then %s", all[i-1].RunID, all[i].RunID)
		}
	}
}
