package bookkeep

import (
	"testing"
	"time"

	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/swrepo"
	"repro/internal/valtest"
)

// harness builds suites of constant-outcome tests and runs them through
// a real runner so the book reads genuine records.
type harness struct {
	store *storage.Store
	rn    *runner.Runner
}

func newHarness() *harness {
	store := storage.NewStore()
	return &harness{store: store, rn: runner.New(store, simclock.New())}
}

func (h *harness) context(cfg platform.Config, rootVer string, revision int) *valtest.Context {
	cat := externals.NewCatalogue()
	root, _ := cat.Get(externals.ROOT, rootVer)
	repo := swrepo.NewRepository("H1")
	repo.Revision = revision
	return &valtest.Context{
		Store:     h.store,
		Env:       storage.Env{},
		Config:    cfg,
		Registry:  platform.NewRegistry(),
		Externals: externals.MustSet(root),
		Repo:      repo,
	}
}

// run executes a suite where each named test has the given outcome.
func (h *harness) run(t *testing.T, ctx *valtest.Context, desc string, outcomes map[string]valtest.Outcome) *runner.RunRecord {
	t.Helper()
	suite := valtest.NewSuite("H1")
	names := make([]string, 0, len(outcomes))
	for name := range outcomes {
		names = append(names, name)
	}
	// Deterministic insertion order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		out := outcomes[name]
		suite.MustAdd(&valtest.FuncTest{
			TestName: name, Cat: valtest.CatStandalone,
			Fn: func(*valtest.Context) valtest.Result {
				return valtest.Result{Outcome: out, Detail: "synthetic", Cost: time.Second}
			},
		})
	}
	rec, err := h.rn.Run(suite, ctx, desc)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func sl5() platform.Config { return platform.ReferenceConfig() }
func sl6() platform.Config {
	return platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
}

func TestRunsAndFilters(t *testing.T) {
	h := newHarness()
	book := New(h.store)
	pass := map[string]valtest.Outcome{"t1": valtest.OutcomePass}

	h.run(t, h.context(sl5(), "5.34", 1), "baseline", pass)
	h.run(t, h.context(sl6(), "5.34", 1), "SL6 migration", pass)

	all, err := book.Runs()
	if err != nil || len(all) != 2 {
		t.Fatalf("Runs = %d, %v", len(all), err)
	}
	sl6Runs, err := book.RunsFor("H1", sl6().String())
	if err != nil || len(sl6Runs) != 1 {
		t.Fatalf("RunsFor(SL6) = %d, %v", len(sl6Runs), err)
	}
	none, _ := book.RunsFor("ZEUS", "")
	if len(none) != 0 {
		t.Fatalf("RunsFor(ZEUS) = %d", len(none))
	}
	tagged, err := book.RunsTagged("migration")
	if err != nil || len(tagged) != 1 || tagged[0].Description != "SL6 migration" {
		t.Fatalf("RunsTagged = %v, %v", tagged, err)
	}
	if book.TotalRuns() != 2 {
		t.Fatalf("TotalRuns = %d", book.TotalRuns())
	}
}

func TestLastSuccessful(t *testing.T) {
	h := newHarness()
	book := New(h.store)
	pass := map[string]valtest.Outcome{"t1": valtest.OutcomePass}
	fail := map[string]valtest.Outcome{"t1": valtest.OutcomeFail}

	good := h.run(t, h.context(sl5(), "5.34", 1), "good", pass)
	bad := h.run(t, h.context(sl6(), "5.34", 1), "bad", fail)

	base, err := book.LastSuccessful("H1", bad.RunID)
	if err != nil || base.RunID != good.RunID {
		t.Fatalf("LastSuccessful = %v, %v", base, err)
	}
	if _, err := book.LastSuccessful("H1", good.RunID); err == nil {
		t.Fatal("LastSuccessful before first run succeeded")
	}
}

func TestDiffRegressionsAndFixes(t *testing.T) {
	h := newHarness()

	baseline := h.run(t, h.context(sl5(), "5.34", 1), "baseline", map[string]valtest.Outcome{
		"a": valtest.OutcomePass,
		"b": valtest.OutcomePass,
		"c": valtest.OutcomeFail,
	})
	_ = baseline
	current := h.run(t, h.context(sl6(), "5.34", 1), "migration", map[string]valtest.Outcome{
		"a": valtest.OutcomePass,
		"b": valtest.OutcomeError, // regression
		"c": valtest.OutcomePass,  // fix
		"d": valtest.OutcomePass,  // added
	})

	// Baseline has a failing test, so DiffAgainstLastSuccess must refuse
	// it and we diff directly.
	d := DiffRuns(baseline, current)
	if len(d.Regressions) != 1 || d.Regressions[0].Test != "b" {
		t.Fatalf("Regressions = %+v", d.Regressions)
	}
	if len(d.Fixes) != 1 || d.Fixes[0].Test != "c" {
		t.Fatalf("Fixes = %+v", d.Fixes)
	}
	if len(d.Added) != 1 || d.Added[0] != "d" {
		t.Fatalf("Added = %v", d.Added)
	}
	if !d.ConfigChanged || d.ExternalsChanged || d.RevisionChanged {
		t.Fatalf("change flags = %+v", d)
	}
	if d.Clean() {
		t.Fatal("diff with regressions reported clean")
	}
}

func TestDiffAgainstLastSuccess(t *testing.T) {
	h := newHarness()
	book := New(h.store)
	pass := map[string]valtest.Outcome{"a": valtest.OutcomePass, "b": valtest.OutcomePass}

	h.run(t, h.context(sl5(), "5.34", 1), "good1", pass)
	good2 := h.run(t, h.context(sl5(), "5.34", 1), "good2", pass)
	bad := h.run(t, h.context(sl6(), "5.34", 1), "bad", map[string]valtest.Outcome{
		"a": valtest.OutcomePass, "b": valtest.OutcomeFail,
	})

	d, err := book.DiffAgainstLastSuccess(bad)
	if err != nil {
		t.Fatal(err)
	}
	if d.BaselineRun != good2.RunID {
		t.Fatalf("baseline = %s, want %s (the most recent success)", d.BaselineRun, good2.RunID)
	}
	if len(d.Regressions) != 1 || d.Regressions[0].Test != "b" {
		t.Fatalf("Regressions = %+v", d.Regressions)
	}
}

func TestClassifyAttribution(t *testing.T) {
	reg := TestDiff{Test: "x", Before: valtest.OutcomePass, After: valtest.OutcomeFail}
	cases := []struct {
		name string
		d    Diff
		want Attribution
	}{
		{"clean", Diff{}, AttrNone},
		{"os", Diff{Regressions: []TestDiff{reg}, ConfigChanged: true}, AttrOS},
		{"externals", Diff{Regressions: []TestDiff{reg}, ExternalsChanged: true}, AttrExternals},
		{"experiment", Diff{Regressions: []TestDiff{reg}, RevisionChanged: true}, AttrExperiment},
		{"mixed", Diff{Regressions: []TestDiff{reg}, ConfigChanged: true, RevisionChanged: true}, AttrMixed},
		{"infra", Diff{Regressions: []TestDiff{reg}}, AttrInfrastructure},
	}
	for _, tc := range cases {
		if got := Classify(&tc.d); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
	if AttrOS.Responsible() != "host IT department" || AttrExperiment.Responsible() != "experiment" {
		t.Error("Responsible() strings wrong")
	}
}

func TestMatrixAggregation(t *testing.T) {
	h := newHarness()
	book := New(h.store)
	pass := map[string]valtest.Outcome{"a": valtest.OutcomePass, "b": valtest.OutcomePass}
	partial := map[string]valtest.Outcome{"a": valtest.OutcomePass, "b": valtest.OutcomeFail}

	h.run(t, h.context(sl5(), "5.34", 1), "r1", pass)
	h.run(t, h.context(sl6(), "5.34", 1), "r2", partial)
	h.run(t, h.context(sl6(), "5.34", 1), "r3", pass) // newer run on same cell

	cells, err := book.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	// Sorted by config: SL5 before SL6.
	if cells[0].Config != sl5().String() || cells[1].Config != sl6().String() {
		t.Fatalf("cell order: %s, %s", cells[0].Config, cells[1].Config)
	}
	// SL6 cell reflects the latest (passing) run and counts both runs.
	sl6Cell := cells[1]
	if !sl6Cell.Healthy() || sl6Cell.Pass != 2 || sl6Cell.Runs != 2 {
		t.Fatalf("SL6 cell = %+v", sl6Cell)
	}
	if sl6Cell.Total() != 2 {
		t.Fatalf("Total = %d", sl6Cell.Total())
	}
}
