package bookkeep

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/runner"
	"repro/internal/storage"
)

// Index is the incremental form of the bookkeeping: it loads each run
// record from the common storage exactly once and keeps the derived
// structures — the execution-ordered run list, per-experiment run
// lists, and the Figure 3 matrix cells — up to date in memory.
//
// Book answers every query by re-listing and re-loading all N recorded
// runs, which makes a campaign that publishes after each run O(N²)
// record loads and makes a status service O(N) loads per page view.
// Index answers the same queries from memory; Refresh catches up on
// runs recorded since the last call (by this process or — over the
// read-only store view — by a separate writer process) by loading only
// the new records.
//
// Index produces results identical to Book on the same store: the two
// share the cell construction and ordering code, and the property test
// in index_test.go asserts byte-identical matrix and diff rendering
// under arbitrary insertion interleavings.
//
// Index is safe for concurrent use.
type Index struct {
	store *storage.Store

	mu     sync.RWMutex
	runs   map[string]*runner.RunRecord
	order  []string            // all run IDs in execution (CompareIDs) order
	byExp  map[string][]string // per-experiment run IDs, same order
	latest map[cellKey]string  // run ID of each cell's latest run
	count  map[cellKey]int     // total runs recorded per cell
	green  map[string]string   // input digest -> latest fully passing run ID
}

// NewIndex returns an empty index over the store. Call Refresh to load
// the recorded runs (and again whenever the store may have grown).
func NewIndex(store *storage.Store) *Index {
	return &Index{
		store:  store,
		runs:   make(map[string]*runner.RunRecord),
		byExp:  make(map[string][]string),
		latest: make(map[cellKey]string),
		count:  make(map[cellKey]int),
		green:  make(map[string]string),
	}
}

// BuildIndex returns an index with every currently recorded run loaded.
func BuildIndex(store *storage.Store) (*Index, error) {
	x := NewIndex(store)
	if err := x.Refresh(); err != nil {
		return nil, err
	}
	return x, nil
}

// Refresh indexes runs recorded since the last Refresh. Only records
// not yet indexed are loaded from storage, so a steady-state refresh
// against an unchanged store costs one name enumeration and zero blob
// reads. Run records are immutable once written, so an already-indexed
// ID is never reloaded.
func (x *Index) Refresh() error {
	ids := runner.ListRuns(x.store)
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, id := range ids {
		if _, done := x.runs[id]; done {
			continue
		}
		rec, err := runner.LoadRun(x.store, id)
		if err != nil {
			return err
		}
		x.addLocked(rec)
	}
	return nil
}

// Add indexes one run record directly — the path for a process that
// just recorded the run itself and holds the record in hand. Records
// may arrive in any order; the derived structures stay sorted.
func (x *Index) Add(rec *runner.RunRecord) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.addLocked(rec)
}

// addLocked inserts the record into every derived structure. The caller
// holds x.mu. A record whose ID is already indexed is ignored (run
// records are immutable).
func (x *Index) addLocked(rec *runner.RunRecord) {
	if _, dup := x.runs[rec.RunID]; dup {
		return
	}
	x.runs[rec.RunID] = rec
	x.order = insertID(x.order, rec.RunID)
	x.byExp[rec.Experiment] = insertID(x.byExp[rec.Experiment], rec.RunID)
	k := cellKey{rec.Experiment, rec.Config, rec.Externals}
	x.count[k]++
	if cur, ok := x.latest[k]; !ok || runner.CompareIDs(rec.RunID, cur) > 0 {
		x.latest[k] = rec.RunID
	}
	// Records from before the digest existed carry an empty InputDigest
	// and are deliberately never entered here: the planner treats them
	// as always-stale, so pre-digest history can only be confirmed, not
	// silently trusted.
	if rec.InputDigest != "" && rec.Passed() {
		if cur, ok := x.green[rec.InputDigest]; !ok || runner.CompareIDs(rec.RunID, cur) > 0 {
			x.green[rec.InputDigest] = rec.RunID
		}
	}
}

// GreenRun returns the latest fully passing run recorded with the given
// input digest — the query behind the campaign planner's skip decision:
// a cell whose current input digest already has a green run is
// up-to-date and needs no re-validation.
func (x *Index) GreenRun(digest string) (string, bool) {
	if digest == "" {
		return "", false
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	id, ok := x.green[digest]
	return id, ok
}

// Latest returns the most recent run of the (experiment, config,
// externals) cell, labels as recorded on the run records.
func (x *Index) Latest(experiment, config, externals string) (*runner.RunRecord, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	id, ok := x.latest[cellKey{experiment, config, externals}]
	if !ok {
		return nil, false
	}
	return x.runs[id], true
}

// insertID inserts id into the CompareIDs-sorted slice, keeping it
// sorted. Appends (the common case — IDs are minted in increasing
// order) touch nothing else.
func insertID(ids []string, id string) []string {
	if n := len(ids); n == 0 || runner.CompareIDs(ids[n-1], id) < 0 {
		return append(ids, id)
	}
	i := sort.Search(len(ids), func(i int) bool { return runner.CompareIDs(ids[i], id) >= 0 })
	ids = append(ids, "")
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// TotalRuns returns the number of indexed runs.
func (x *Index) TotalRuns() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.order)
}

// Runs returns every indexed run in execution order.
func (x *Index) Runs() []*runner.RunRecord {
	x.mu.RLock()
	defer x.mu.RUnlock()
	out := make([]*runner.RunRecord, len(x.order))
	for i, id := range x.order {
		out[i] = x.runs[id]
	}
	return out
}

// Run returns one indexed run by ID.
func (x *Index) Run(id string) (*runner.RunRecord, error) {
	x.mu.RLock()
	rec, ok := x.runs[id]
	x.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("bookkeep: no indexed run %q", id)
	}
	return rec, nil
}

// RunsFor returns the runs of one experiment, optionally filtered to a
// configuration label ("" matches all), in execution order.
func (x *Index) RunsFor(experiment, config string) []*runner.RunRecord {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []*runner.RunRecord
	for _, id := range x.byExp[experiment] {
		r := x.runs[id]
		if config != "" && r.Config != config {
			continue
		}
		out = append(out, r)
	}
	return out
}

// LastSuccessful returns the most recent fully passing run of the
// experiment before the given run ID ("" means before anything, i.e.
// the latest overall) — Book.LastSuccessful answered from memory.
func (x *Index) LastSuccessful(experiment, beforeRunID string) (*runner.RunRecord, error) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	ids := x.byExp[experiment]
	// Walk backwards: the first passing run below the bound is the answer.
	for i := len(ids) - 1; i >= 0; i-- {
		r := x.runs[ids[i]]
		if beforeRunID != "" && runner.CompareIDs(r.RunID, beforeRunID) >= 0 {
			continue
		}
		if r.Passed() {
			return r, nil
		}
	}
	return nil, fmt.Errorf("bookkeep: no successful %s run before %q", experiment, beforeRunID)
}

// DiffAgainstLastSuccess diffs the run against the last fully
// successful run of the same experiment — the paper's prescribed
// comparison, computed without touching storage.
func (x *Index) DiffAgainstLastSuccess(current *runner.RunRecord) (*Diff, error) {
	baseline, err := x.LastSuccessful(current.Experiment, current.RunID)
	if err != nil {
		return nil, err
	}
	return DiffRuns(baseline, current), nil
}

// Matrix returns the Figure 3 status matrix from the maintained cells —
// no storage access, identical content to Book.Matrix on the same
// store.
func (x *Index) Matrix() []Cell {
	x.mu.RLock()
	defer x.mu.RUnlock()
	cells := make([]Cell, 0, len(x.latest))
	for k, id := range x.latest {
		cells = append(cells, makeCell(k, x.runs[id], x.count[k]))
	}
	sortCells(cells)
	return cells
}
