package bookkeep

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/runner"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// RunMeta is the compact, memory-resident summary of one run record:
// everything the bookkeeping queries (run lists, matrix cells,
// baselines, pagination) need, without the per-job payload. A million
// RunMetas fit in memory where a million full RunRecords — each
// carrying every job result and environment key — would not; full
// records are loaded from storage on demand (Index.Run), one at a time.
type RunMeta struct {
	RunID       string
	Description string
	Experiment  string
	Config      string
	Externals   string
	Revision    int
	InputDigest string
	Timestamp   int64
	// Jobs is the job count; Pass/Fail/Skip/Error split it by outcome.
	Jobs                    int
	Pass, Fail, Skip, Error int
	// Passed reports whether every job passed (RunRecord.Passed).
	Passed bool
	// Marks summarizes each job in execution order: what the per-test
	// history queries (Index.History, Index.FlakyTests) need, without
	// the job IDs, environment keys and costs of the full record. Test
	// names and details are heavily repeated across runs, and both the
	// in-memory form (shared string headers) and the segment wire form
	// (the interning table) exploit that, so carrying marks keeps a
	// million-run index in memory where full records would not fit.
	Marks []JobMark
}

// JobMark is one job's outcome summary inside a RunMeta.
type JobMark struct {
	Test      string
	Outcome   valtest.Outcome
	Detail    string
	Statistic float64
}

// Summarize reduces a full run record to its meta. Every consumer that
// derives summary state from records — the incremental Index, the
// full-rescan Book's matrix — goes through here, so the two can never
// disagree about what a record summarizes to.
func Summarize(rec *runner.RunRecord) *RunMeta {
	m := &RunMeta{
		RunID:       rec.RunID,
		Description: rec.Description,
		Experiment:  rec.Experiment,
		Config:      rec.Config,
		Externals:   rec.Externals,
		Revision:    rec.RepoRevision,
		InputDigest: rec.InputDigest,
		Timestamp:   rec.Timestamp,
		Jobs:        len(rec.Jobs),
		Passed:      true,
		Marks:       make([]JobMark, 0, len(rec.Jobs)),
	}
	for _, j := range rec.Jobs {
		m.Marks = append(m.Marks, JobMark{
			Test:      j.Result.Test,
			Outcome:   j.Result.Outcome,
			Detail:    j.Result.Detail,
			Statistic: j.Result.Statistic,
		})
		switch j.Result.Outcome {
		case valtest.OutcomePass:
			m.Pass++
		case valtest.OutcomeFail:
			m.Fail++
		case valtest.OutcomeSkip:
			m.Skip++
		default:
			m.Error++
		}
		if !j.Result.Outcome.Passed() {
			m.Passed = false
		}
	}
	return m
}

// Index is the incremental form of the bookkeeping: it summarizes each
// run record from the common storage exactly once and keeps the derived
// structures — the execution-ordered run list, per-experiment run
// lists, and the Figure 3 matrix cells — up to date in memory as
// compact RunMetas.
//
// Book answers every query by re-listing and re-loading all N recorded
// runs, which makes a campaign that publishes after each run O(N²)
// record loads and makes a status service O(N) loads per page view.
// Index answers the same queries from memory; Refresh catches up on
// runs recorded since the last call (by this process or — over the
// read-only store view — by a separate writer process) by loading only
// the new records, and skips even the run-list enumeration when the
// store's journal position has not moved.
//
// The summarized state can be persisted back into the store as a
// *segment* (SaveSegment) keyed by the journal position it covers, so
// a later process's BuildIndex decodes one segment blob plus the
// records recorded after it — O(tail), not O(history). See segment.go.
//
// Index produces results identical to Book on the same store: the two
// share the summary and cell construction code, and the property test
// in index_test.go asserts byte-identical matrix and diff rendering
// under arbitrary insertion interleavings.
//
// Index is safe for concurrent use.
type Index struct {
	store *storage.Store

	mu     sync.RWMutex
	runs   map[string]*RunMeta // guarded by mu
	order  []string            // guarded by mu; all run IDs in execution (CompareIDs) order
	byExp  map[string][]string // guarded by mu; per-experiment run IDs, same order
	latest map[cellKey]string  // guarded by mu; run ID of each cell's latest run
	count  map[cellKey]int     // guarded by mu; total runs recorded per cell
	green  map[string]string   // guarded by mu; input digest -> latest fully passing run ID
	pos    storage.Position    // guarded by mu; store history position covered by the index
	posOK  bool                // guarded by mu
}

// NewIndex returns an empty index over the store. Call Refresh to load
// the recorded runs (and again whenever the store may have grown).
func NewIndex(store *storage.Store) *Index {
	return &Index{
		store:  store,
		runs:   make(map[string]*RunMeta),
		byExp:  make(map[string][]string),
		latest: make(map[cellKey]string),
		count:  make(map[cellKey]int),
		green:  make(map[string]string),
	}
}

// BuildIndex returns an index covering every currently recorded run.
// If the store carries a persisted index segment, only records newer
// than the segment are decoded from their blobs (and the run list is
// enumerated at most once, shared between segment validation and the
// catch-up); otherwise every record is loaded once (RebuildIndex's
// behavior).
func BuildIndex(store *storage.Store) (*Index, error) {
	x := NewIndex(store)
	if err := x.refreshFromSegment(); err != nil {
		return nil, err
	}
	return x, nil
}

// RebuildIndex is BuildIndex ignoring any persisted segment: every
// record is decoded from its blob. This is the pre-segment behavior,
// kept for the scaling benchmarks and as the recovery path for a
// segment that fails validation.
func RebuildIndex(store *storage.Store) (*Index, error) {
	x := NewIndex(store)
	if err := x.Refresh(); err != nil {
		return nil, err
	}
	return x, nil
}

// Refresh indexes runs recorded since the last Refresh. When the
// store's history position is unchanged, the call returns after one
// position comparison — no enumeration, no loads. Otherwise only
// records not yet indexed are loaded from storage. Run records are
// immutable once written, so an already-indexed ID is never reloaded.
func (x *Index) Refresh() error {
	pos, posOK := x.store.Position()
	x.mu.RLock()
	unchanged := posOK && x.posOK && pos == x.pos
	x.mu.RUnlock()
	if unchanged {
		return nil
	}
	// The position was sampled before the enumeration below, so the
	// index can only under-claim coverage — a run recorded in between is
	// either listed now or picked up by the next Refresh.
	return x.refreshIDs(runner.ListRuns(x.store), pos, posOK)
}

// refreshIDs indexes the not-yet-indexed runs among ids, then records
// coverage up to the given position — which the caller sampled *before*
// enumerating ids.
func (x *Index) refreshIDs(ids []string, pos storage.Position, posOK bool) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, id := range ids {
		if _, done := x.runs[id]; done {
			continue
		}
		rec, err := runner.LoadRun(x.store, id)
		if err != nil {
			return err
		}
		x.addLocked(Summarize(rec))
	}
	x.pos, x.posOK = pos, posOK
	return nil
}

// Add indexes one run record directly — the path for a process that
// just recorded the run itself and holds the record in hand. Records
// may arrive in any order; the derived structures stay sorted.
func (x *Index) Add(rec *runner.RunRecord) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.addLocked(Summarize(rec))
}

// addLocked inserts the meta into every derived structure. The caller
// holds x.mu. A meta whose ID is already indexed is ignored (run
// records are immutable).
func (x *Index) addLocked(m *RunMeta) {
	if _, dup := x.runs[m.RunID]; dup {
		return
	}
	x.runs[m.RunID] = m
	x.order = insertID(x.order, m.RunID)
	x.byExp[m.Experiment] = insertID(x.byExp[m.Experiment], m.RunID)
	k := cellKey{m.Experiment, m.Config, m.Externals}
	x.count[k]++
	if cur, ok := x.latest[k]; !ok || runner.CompareIDs(m.RunID, cur) > 0 {
		x.latest[k] = m.RunID
	}
	// Records from before the digest existed carry an empty InputDigest
	// and are deliberately never entered here: the planner treats them
	// as always-stale, so pre-digest history can only be confirmed, not
	// silently trusted.
	if m.InputDigest != "" && m.Passed {
		if cur, ok := x.green[m.InputDigest]; !ok || runner.CompareIDs(m.RunID, cur) > 0 {
			x.green[m.InputDigest] = m.RunID
		}
	}
}

// GreenRun returns the latest fully passing run recorded with the given
// input digest — the query behind the campaign planner's skip decision:
// a cell whose current input digest already has a green run is
// up-to-date and needs no re-validation.
func (x *Index) GreenRun(digest string) (string, bool) {
	if digest == "" {
		return "", false
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	id, ok := x.green[digest]
	return id, ok
}

// Latest returns the most recent run of the (experiment, config,
// externals) cell, labels as recorded on the run records.
func (x *Index) Latest(experiment, config, externals string) (*RunMeta, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	id, ok := x.latest[cellKey{experiment, config, externals}]
	if !ok {
		return nil, false
	}
	return x.runs[id], true
}

// insertID inserts id into the CompareIDs-sorted slice, keeping it
// sorted. Appends (the common case — IDs are minted in increasing
// order) touch nothing else.
func insertID(ids []string, id string) []string {
	if n := len(ids); n == 0 || runner.CompareIDs(ids[n-1], id) < 0 {
		return append(ids, id)
	}
	i := sort.Search(len(ids), func(i int) bool { return runner.CompareIDs(ids[i], id) >= 0 })
	ids = append(ids, "")
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// TotalRuns returns the number of indexed runs.
func (x *Index) TotalRuns() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.order)
}

// TotalRunsFor returns the number of indexed runs of one experiment —
// the total a paged per-experiment listing should report.
func (x *Index) TotalRunsFor(experiment string) int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.byExp[experiment])
}

// Runs returns every indexed run's meta in execution order. Consumers
// that page (spserve, spsys runs) should use RunsPage instead.
func (x *Index) Runs() []*RunMeta {
	x.mu.RLock()
	defer x.mu.RUnlock()
	out := make([]*RunMeta, len(x.order))
	for i, id := range x.order {
		out[i] = x.runs[id]
	}
	return out
}

// pageAfter returns the slice of ids strictly after the cursor ("" =
// from the beginning), capped at limit, plus the next-page cursor (""
// at the end). ids is CompareIDs-sorted.
func pageAfter(ids []string, after string, limit int) (page []string, next string) {
	start := 0
	if after != "" {
		start = sort.Search(len(ids), func(i int) bool { return runner.CompareIDs(ids[i], after) > 0 })
	}
	end := len(ids)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	page = ids[start:end]
	if end < len(ids) && len(page) > 0 {
		next = page[len(page)-1]
	}
	return page, next
}

// RunsPage returns up to limit run metas strictly after the cursor run
// ID ("" starts from the beginning) in execution order, plus the cursor
// to pass for the following page ("" when this page reaches the end).
// limit <= 0 means no limit. This is the query every list-of-runs
// surface (JSON API, CLI listing) pages with, so no handler ever
// materializes the full run list.
func (x *Index) RunsPage(after string, limit int) ([]*RunMeta, string) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	ids, next := pageAfter(x.order, after, limit)
	out := make([]*RunMeta, len(ids))
	for i, id := range ids {
		out[i] = x.runs[id]
	}
	return out, next
}

// RunsForPage is RunsPage restricted to one experiment — the
// per-experiment cursor behind paged history views. A non-empty config
// filters further; filtered-out runs still advance the cursor, so the
// page size bounds work per call, not matches.
func (x *Index) RunsForPage(experiment, config, after string, limit int) ([]*RunMeta, string) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	ids, next := pageAfter(x.byExp[experiment], after, limit)
	var out []*RunMeta
	for _, id := range ids {
		m := x.runs[id]
		if config != "" && m.Config != config {
			continue
		}
		out = append(out, m)
	}
	return out, next
}

// Run returns one indexed run's full record, loaded from the common
// storage on demand — the index itself holds only metas.
func (x *Index) Run(id string) (*runner.RunRecord, error) {
	x.mu.RLock()
	_, ok := x.runs[id]
	x.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("bookkeep: no indexed run %q", id)
	}
	return runner.LoadRun(x.store, id)
}

// Meta returns one indexed run's meta.
func (x *Index) Meta(id string) (*RunMeta, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	m, ok := x.runs[id]
	return m, ok
}

// RunsFor returns the metas of one experiment's runs, optionally
// filtered to a configuration label ("" matches all), in execution
// order.
func (x *Index) RunsFor(experiment, config string) []*RunMeta {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []*RunMeta
	for _, id := range x.byExp[experiment] {
		m := x.runs[id]
		if config != "" && m.Config != config {
			continue
		}
		out = append(out, m)
	}
	return out
}

// LastSuccessful returns the most recent fully passing run of the
// experiment before the given run ID ("" means before anything, i.e.
// the latest overall) — Book.LastSuccessful answered from memory.
func (x *Index) LastSuccessful(experiment, beforeRunID string) (*RunMeta, error) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	ids := x.byExp[experiment]
	// Walk backwards: the first passing run below the bound is the answer.
	for i := len(ids) - 1; i >= 0; i-- {
		m := x.runs[ids[i]]
		if beforeRunID != "" && runner.CompareIDs(m.RunID, beforeRunID) >= 0 {
			continue
		}
		if m.Passed {
			return m, nil
		}
	}
	return nil, fmt.Errorf("bookkeep: no successful %s run before %q", experiment, beforeRunID)
}

// DiffAgainstLastSuccess diffs the run against the last fully
// successful run of the same experiment — the paper's prescribed
// comparison. The baseline is located from memory; only its full record
// is loaded from storage.
func (x *Index) DiffAgainstLastSuccess(current *runner.RunRecord) (*Diff, error) {
	base, err := x.LastSuccessful(current.Experiment, current.RunID)
	if err != nil {
		return nil, err
	}
	baseline, err := runner.LoadRun(x.store, base.RunID)
	if err != nil {
		return nil, err
	}
	return DiffRuns(baseline, current), nil
}

// Matrix returns the Figure 3 status matrix from the maintained cells —
// no storage access, identical content to Book.Matrix on the same
// store.
func (x *Index) Matrix() []Cell {
	x.mu.RLock()
	defer x.mu.RUnlock()
	cells := make([]Cell, 0, len(x.latest))
	for k, id := range x.latest {
		cells = append(cells, makeCell(k, x.runs[id], x.count[k]))
	}
	sortCells(cells)
	return cells
}
