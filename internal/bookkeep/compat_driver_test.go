package bookkeep

import (
	"os"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// TestPreDriverRecordDecodes pins backward compatibility against the
// checked-in fixture testdata/run-pre-driver.json — a run record in the
// exact wire format the framework wrote after input digests (PR 4) but
// before the driver seam existed: it carries a digest and no driver
// field. Two guarantees, one per direction:
//
//   - The record keeps satisfying the platform cell its digest names.
//     Pre-seam records ARE platform records (there was only one way to
//     run), so an archive upgraded across the seam re-plans zero cells.
//
//   - The record can never satisfy a driver-qualified digest. A cell
//     bound to any non-default driver plans always-stale against a
//     legacy archive and is never skipped over a legacy green.
func TestPreDriverRecordDecodes(t *testing.T) {
	data, err := os.ReadFile("testdata/run-pre-driver.json")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"driver"`) {
		t.Fatal("fixture is not pre-driver: it carries a driver field")
	}
	if !strings.Contains(string(data), "input_digest") {
		t.Fatal("fixture lost its input_digest: that era is covered by run-pre-digest.json")
	}

	store := storage.NewStore()
	if _, err := store.Put(runner.RunsNS, "run-0001", data); err != nil {
		t.Fatal(err)
	}
	rec, err := runner.LoadRun(store, "run-0001")
	if err != nil {
		t.Fatalf("pre-driver record failed to decode: %v", err)
	}
	if rec.Driver != "" {
		t.Fatalf("pre-driver record decoded with driver %q, want empty (= platform)", rec.Driver)
	}
	if rec.RunID != "run-0001" || rec.Experiment != "H1" || len(rec.Jobs) != 2 || !rec.Passed() {
		t.Fatalf("pre-driver record decoded wrong: %+v", rec)
	}

	// Its recorded digest is exactly what the seam computes for the
	// default driver today — and what it computed before the seam.
	cfg, err := platform.ParseConfig("SL5/32bit gcc4.1")
	if err != nil {
		t.Fatal(err)
	}
	suite := valtest.NewSuite("H1")
	legacy := runner.InputDigest(suite, 1, cfg, nil)
	if rec.InputDigest != legacy {
		t.Fatalf("fixture digest %s is not the pre-seam digest %s — regenerate the fixture only if the digest scheme legitimately changed", rec.InputDigest, legacy)
	}
	for _, name := range []string{"", valtest.DefaultDriverName} {
		if got := runner.InputDigestDriver(suite, 1, cfg, nil, name); got != legacy {
			t.Fatalf("driver %q digest %s, legacy record would go stale (want %s)", name, got, legacy)
		}
	}

	// Direction one: the legacy green still answers for its platform cell.
	x, err := BuildIndex(store)
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := x.GreenRun(legacy); !ok || id != "run-0001" {
		t.Fatalf("legacy green no longer satisfies its own digest: ok=%t id=%q — every pre-seam archive replans its whole matrix", ok, id)
	}

	// Direction two: no driver-qualified digest ever matches it.
	for _, drv := range []string{"vmhost", "fault(platform)"} {
		qualified := runner.InputDigestDriver(suite, 1, cfg, nil, drv)
		if qualified == legacy {
			t.Fatalf("driver %q digest collapsed onto the legacy digest", drv)
		}
		if id, ok := x.GreenRun(qualified); ok {
			t.Fatalf("legacy record satisfied driver-qualified digest %s via %q", qualified, id)
		}
	}
}
