package bookkeep

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/valtest"
)

// HistoryEntry is one execution of a test in some run.
type HistoryEntry struct {
	RunID     string
	Config    string
	Externals string
	Revision  int
	Timestamp int64
	Outcome   valtest.Outcome
	Detail    string
	Statistic float64
}

// History returns every recorded execution of the named test across all
// runs of the experiment, in execution order. This is the paper's
// "validation of all versions against each other": the complete record
// of one test across software revisions, configurations and external
// sets.
func (b *Book) History(experiment, test string) ([]HistoryEntry, error) {
	runs, err := b.RunsFor(experiment, "")
	if err != nil {
		return nil, err
	}
	var out []HistoryEntry
	for _, r := range runs {
		job, ok := r.Find(test)
		if !ok {
			continue
		}
		out = append(out, HistoryEntry{
			RunID:     r.RunID,
			Config:    r.Config,
			Externals: r.Externals,
			Revision:  r.RepoRevision,
			Timestamp: r.Timestamp,
			Outcome:   job.Result.Outcome,
			Detail:    job.Result.Detail,
			Statistic: job.Result.Statistic,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bookkeep: no recorded executions of %q for %s", test, experiment)
	}
	return out, nil
}

// FirstFailure returns the first entry in the test's history that did
// not pass, and false if it never failed. Used to bisect when a
// regression entered the record.
func FirstFailure(entries []HistoryEntry) (HistoryEntry, bool) {
	for _, e := range entries {
		if !e.Outcome.Passed() {
			return e, true
		}
	}
	return HistoryEntry{}, false
}

// Transitions returns the history entries at which the test's outcome
// changed from the previous execution — the events worth examining.
func Transitions(entries []HistoryEntry) []HistoryEntry {
	var out []HistoryEntry
	for i, e := range entries {
		if i == 0 || e.Outcome != entries[i-1].Outcome {
			out = append(out, e)
		}
	}
	return out
}

// FlakyTests returns the names of tests whose outcome changed between
// consecutive runs on the *same* configuration, externals and software
// revision — impossible for a deterministic suite, so any hit indicates
// an infrastructure problem. Sorted by name.
func (b *Book) FlakyTests(experiment string) ([]string, error) {
	runs, err := b.RunsFor(experiment, "")
	if err != nil {
		return nil, err
	}
	type key struct {
		test, cfg, ext string
		rev            int
	}
	last := make(map[key]valtest.Outcome)
	flaky := make(map[string]bool)
	for _, r := range runs {
		for _, j := range r.Jobs {
			k := key{j.Result.Test, r.Config, r.Externals, r.RepoRevision}
			if prev, seen := last[k]; seen && prev != j.Result.Outcome {
				flaky[j.Result.Test] = true
			}
			last[k] = j.Result.Outcome
		}
	}
	out := make([]string, 0, len(flaky))
	for name := range flaky {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// History is Book.History answered from the index's job marks: no run
// record is decoded, so a history query over a segment-backed index
// costs one segment load for the whole process, not O(runs) record
// loads per query. Results are identical to Book.History on the same
// store (property-tested).
func (x *Index) History(experiment, test string) ([]HistoryEntry, error) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []HistoryEntry
	for _, id := range x.byExp[experiment] {
		m := x.runs[id]
		for i := range m.Marks {
			if m.Marks[i].Test != test {
				continue
			}
			out = append(out, HistoryEntry{
				RunID:     m.RunID,
				Config:    m.Config,
				Externals: m.Externals,
				Revision:  m.Revision,
				Timestamp: m.Timestamp,
				Outcome:   m.Marks[i].Outcome,
				Detail:    m.Marks[i].Detail,
				Statistic: m.Marks[i].Statistic,
			})
			break // first match, like RunRecord.Find
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bookkeep: no recorded executions of %q for %s", test, experiment)
	}
	return out, nil
}

// FlakyTests is Book.FlakyTests answered from the index's job marks,
// with identical semantics: tests whose outcome changed between
// consecutive runs on the same configuration, externals and revision.
func (x *Index) FlakyTests(experiment string) ([]string, error) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	type key struct {
		test, cfg, ext string
		rev            int
	}
	last := make(map[key]valtest.Outcome)
	flaky := make(map[string]bool)
	for _, id := range x.byExp[experiment] {
		m := x.runs[id]
		for _, mk := range m.Marks {
			k := key{mk.Test, m.Config, m.Externals, m.Revision}
			if prev, seen := last[k]; seen && prev != mk.Outcome {
				flaky[mk.Test] = true
			}
			last[k] = mk.Outcome
		}
	}
	out := make([]string, 0, len(flaky))
	for name := range flaky {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// RenderHistory formats a test's history as a compact table.
func RenderHistory(test string, entries []HistoryEntry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "history of %s (%d executions)\n", test, len(entries))
	for _, e := range entries {
		fmt.Fprintf(&b, "  %s  rev=%-3d %-18s %-34s %-5s  %s\n",
			e.RunID, e.Revision, e.Config, e.Externals, e.Outcome, e.Detail)
	}
	return b.String()
}
