package bookkeep

import (
	"os"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// TestPreDigestRecordDecodes pins backward compatibility against the
// checked-in fixture testdata/run-pre-digest.json — a run record in the
// exact wire format the framework wrote before input digests existed.
// Such records must decode cleanly, index normally, and never satisfy a
// digest-based skip: with no recorded digest there is no proof the
// recorded inputs match today's, so the planner treats them as
// always-stale.
func TestPreDigestRecordDecodes(t *testing.T) {
	data, err := os.ReadFile("testdata/run-pre-digest.json")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "input_digest") {
		t.Fatal("fixture is not pre-digest: it carries an input_digest field")
	}

	store := storage.NewStore()
	if _, err := store.Put(runner.RunsNS, "run-0001", data); err != nil {
		t.Fatal(err)
	}
	rec, err := runner.LoadRun(store, "run-0001")
	if err != nil {
		t.Fatalf("pre-digest record failed to decode: %v", err)
	}
	if rec.RunID != "run-0001" || rec.Experiment != "H1" || rec.Config != "SL5/32bit gcc4.1" ||
		rec.RepoRevision != 1 || len(rec.Jobs) != 2 {
		t.Fatalf("pre-digest record decoded wrong: %+v", rec)
	}
	if rec.Jobs[0].Result.Outcome != valtest.OutcomePass || !rec.Passed() {
		t.Fatalf("pre-digest outcomes decoded wrong: %+v", rec.Jobs)
	}
	if rec.InputDigest != "" {
		t.Fatalf("pre-digest record grew a digest: %q", rec.InputDigest)
	}

	// The record participates in the bookkeeping as before...
	x, err := BuildIndex(store)
	if err != nil {
		t.Fatal(err)
	}
	if x.TotalRuns() != 1 {
		t.Fatalf("indexed %d runs, want 1", x.TotalRuns())
	}
	latest, ok := x.Latest("H1", "SL5/32bit gcc4.1", "root-5.34+cernlib-2006+mcgen-1.4")
	if !ok || latest.RunID != "run-0001" {
		t.Fatalf("legacy record not indexed as its cell's latest run: ok=%t", ok)
	}
	cells := x.Matrix()
	if len(cells) != 1 || cells[0].InputDigest != "" {
		t.Fatalf("matrix cell wrong for legacy record: %+v", cells)
	}

	// ...but can never answer a digest query, green as it is.
	if id, ok := x.GreenRun(""); ok {
		t.Fatalf("empty digest matched %q", id)
	}
	cfg, err := platform.ParseConfig("SL5/32bit gcc4.1")
	if err != nil {
		t.Fatal(err)
	}
	someDigest := runner.InputDigest(valtest.NewSuite("H1"), 1, cfg, nil)
	if id, ok := x.GreenRun(someDigest); ok {
		t.Fatalf("legacy record satisfied digest %s via %q", someDigest, id)
	}
}
