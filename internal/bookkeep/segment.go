package bookkeep

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/runner"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// The persisted index segment: the Index's RunMeta set serialized back
// into the common storage, keyed by the journal Position it covers.
// BuildIndex in a later process loads the segment (one blob decode) and
// then indexes only records recorded after it — O(tail) instead of
// O(every record ever written). Writers refresh the segment whenever
// they publish reports (core.SPSystem.PublishReports), so the segment
// trails the store by at most one campaign/daemon cycle.
//
// # Wire format
//
// A compact custom binary encoding (magic "SPSEG", format 3): an
// interning table for the heavily repeated strings (experiment, config,
// externals labels — a million-run archive has a handful of each), the
// claimed coverage Position, then one fixed-shape record per meta with
// varint integers. Decoding a 100k-run segment costs tens of
// milliseconds where per-record JSON decoding costs seconds; integrity
// comes from the store itself (every blob read is SHA-256 verified),
// with bounds checks here so a logically corrupt cache degrades to a
// rebuild, never a panic.
//
// # Position claim and the steady-state fast path
//
// The segment's claimed Position is self-referential: saving the
// segment appends its own name binding to the journal, which moves the
// position. The binding line has constant length (the name is fixed and
// hashes are fixed-width), so SaveSegment claims the *predicted*
// post-save position. Save is two-phase: first encode with the claim
// equal to the current position — if that matches the stored segment
// byte for byte, nothing changed and nothing is written (steady-state
// daemon cycles leave the store untouched); otherwise re-encode with
// the predicted position and write.
//
// BuildIndex trusts the segment without enumerating a single run ID
// when the store's current position equals the claim and the segment's
// first and last run IDs still resolve (guarding the astronomically
// unlikely — but cheap to exclude — recreated store that reaches the
// same byte offset). Any other state falls back to full validation:
// every run ID in the segment must still be present in the store's run
// list, else the segment is discarded and the index rebuilds from the
// records — the segment is a cache, never a source of truth.

// SegmentNS is the storage namespace holding the persisted index
// segment.
const SegmentNS = "bookkeep"

// segmentKey is the name the segment is bound under in SegmentNS.
const segmentKey = "segment"

// segmentMagic + segmentFormat version the payload; a mismatch discards
// the segment (rebuild beats misreading). Format 3 added per-meta job
// marks (test name, outcome, detail, statistic — the per-test history
// queries' working set); a format-2 segment from an older writer simply
// fails the version check and the index rebuilds from the records,
// re-persisting as format 3 at the next publish.
const (
	segmentMagic  = "SPSEG"
	segmentFormat = 3
)

// segmentBindLineLen is the byte length of the journal line that binds
// the segment name to a blob hash — constant because the name is fixed
// and hashes are fixed-width hex. It is what makes the post-save
// position predictable.
var segmentBindLineLen = func() int64 {
	probe := struct {
		Name string `json:"n"`
		Hash string `json:"h"`
	}{Name: SegmentNS + "/" + segmentKey, Hash: strings.Repeat("0", 64)}
	line, err := json.Marshal(probe)
	if err != nil {
		panic(err)
	}
	return int64(len(line) + 1)
}()

// segment is the decoded form.
type segment struct {
	hasPos bool
	pos    storage.Position
	metas  []*RunMeta
}

// encodeSegment renders the wire form.
func encodeSegment(s segment) []byte {
	table := make([]string, 0, 16)
	tableIdx := make(map[string]int, 16)
	intern := func(v string) uint64 {
		i, ok := tableIdx[v]
		if !ok {
			i = len(table)
			table = append(table, v)
			tableIdx[v] = i
		}
		return uint64(i)
	}
	// Pre-intern so the table is complete before it is written. Test
	// names and details repeat across nearly every run of an experiment,
	// so they go through the same table as the cell labels.
	for _, m := range s.metas {
		intern(m.Experiment)
		intern(m.Config)
		intern(m.Externals)
		for _, mk := range m.Marks {
			intern(mk.Test)
			intern(mk.Detail)
		}
	}

	buf := make([]byte, 0, 64+len(s.metas)*96)
	buf = append(buf, segmentMagic...)
	buf = append(buf, byte(segmentFormat))
	putStr := func(v string) {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(table)))
	for _, v := range table {
		putStr(v)
	}
	if s.hasPos {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(s.pos.Generation))
	buf = binary.AppendUvarint(buf, uint64(s.pos.Offset))
	buf = binary.AppendUvarint(buf, uint64(len(s.metas)))
	for _, m := range s.metas {
		putStr(m.RunID)
		putStr(m.Description)
		buf = binary.AppendUvarint(buf, intern(m.Experiment))
		buf = binary.AppendUvarint(buf, intern(m.Config))
		buf = binary.AppendUvarint(buf, intern(m.Externals))
		putStr(m.InputDigest)
		buf = binary.AppendUvarint(buf, uint64(m.Revision))
		buf = binary.AppendUvarint(buf, uint64(m.Timestamp))
		buf = binary.AppendUvarint(buf, uint64(m.Jobs))
		buf = binary.AppendUvarint(buf, uint64(m.Pass))
		buf = binary.AppendUvarint(buf, uint64(m.Fail))
		buf = binary.AppendUvarint(buf, uint64(m.Skip))
		buf = binary.AppendUvarint(buf, uint64(m.Error))
		if m.Passed {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(m.Marks)))
		for _, mk := range m.Marks {
			buf = binary.AppendUvarint(buf, intern(mk.Test))
			buf = append(buf, byte(mk.Outcome))
			buf = binary.AppendUvarint(buf, intern(mk.Detail))
			// Float bits as a varint: the dominant statistic is exactly
			// zero (one byte); anything else costs at most ten.
			buf = binary.AppendUvarint(buf, math.Float64bits(mk.Statistic))
		}
	}
	return buf
}

// decodeSegment parses the wire form. Errors mean "discard the cache",
// never more.
func decodeSegment(data []byte) (segment, error) {
	var s segment
	fail := fmt.Errorf("bookkeep: malformed index segment")
	if len(data) < len(segmentMagic)+1 || string(data[:len(segmentMagic)]) != segmentMagic {
		return s, fail
	}
	if data[len(segmentMagic)] != segmentFormat {
		return s, fmt.Errorf("bookkeep: index segment format %d is not supported", data[len(segmentMagic)])
	}
	data = data[len(segmentMagic)+1:]
	uvar := func() (uint64, bool) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, false
		}
		data = data[n:]
		return v, true
	}
	getStr := func() (string, bool) {
		n, ok := uvar()
		if !ok || n > uint64(len(data)) {
			return "", false
		}
		v := string(data[:n])
		data = data[n:]
		return v, true
	}
	getByte := func() (byte, bool) {
		if len(data) == 0 {
			return 0, false
		}
		v := data[0]
		data = data[1:]
		return v, true
	}

	tableLen, ok := uvar()
	if !ok || tableLen > uint64(len(data)) {
		return s, fail
	}
	table := make([]string, tableLen)
	for i := range table {
		if table[i], ok = getStr(); !ok {
			return s, fail
		}
	}
	interned := func() (string, bool) {
		i, ok := uvar()
		if !ok || i >= uint64(len(table)) {
			return "", false
		}
		return table[i], true
	}
	hasPos, ok := getByte()
	if !ok {
		return s, fail
	}
	s.hasPos = hasPos == 1
	gen, ok1 := uvar()
	off, ok2 := uvar()
	if !ok1 || !ok2 {
		return s, fail
	}
	s.pos = storage.Position{Generation: int(gen), Offset: int64(off)}
	count, ok := uvar()
	if !ok || count > uint64(len(data)) { // every record takes >1 byte
		return s, fail
	}
	s.metas = make([]*RunMeta, 0, count)
	for i := uint64(0); i < count; i++ {
		m := &RunMeta{}
		if m.RunID, ok = getStr(); !ok {
			return s, fail
		}
		if m.Description, ok = getStr(); !ok {
			return s, fail
		}
		if m.Experiment, ok = interned(); !ok {
			return s, fail
		}
		if m.Config, ok = interned(); !ok {
			return s, fail
		}
		if m.Externals, ok = interned(); !ok {
			return s, fail
		}
		if m.InputDigest, ok = getStr(); !ok {
			return s, fail
		}
		fields := [7]*int{&m.Revision, nil, &m.Jobs, &m.Pass, &m.Fail, &m.Skip, &m.Error}
		for fi, p := range fields {
			v, ok := uvar()
			if !ok {
				return s, fail
			}
			if fi == 1 {
				m.Timestamp = int64(v)
			} else {
				*p = int(v)
			}
		}
		passed, ok := getByte()
		if !ok {
			return s, fail
		}
		m.Passed = passed == 1
		nMarks, ok := uvar()
		if !ok || nMarks > uint64(len(data)) { // every mark takes >1 byte
			return s, fail
		}
		m.Marks = make([]JobMark, 0, nMarks)
		for j := uint64(0); j < nMarks; j++ {
			var mk JobMark
			if mk.Test, ok = interned(); !ok {
				return s, fail
			}
			outcome, ok := getByte()
			if !ok {
				return s, fail
			}
			mk.Outcome = valtest.Outcome(outcome)
			if mk.Detail, ok = interned(); !ok {
				return s, fail
			}
			bits, ok := uvar()
			if !ok {
				return s, fail
			}
			mk.Statistic = math.Float64frombits(bits)
			m.Marks = append(m.Marks, mk)
		}
		s.metas = append(s.metas, m)
	}
	return s, nil
}

// SaveSegment persists the index's current meta set into the store,
// keyed by the predicted post-save history position (see the package
// comment on the self-referential claim). An unchanged index over an
// unmoved store writes nothing, so steady-state cycles do not grow the
// journal or the blob tree. Call on writer stores only — the read view
// rejects the write.
func (x *Index) SaveSegment(store *storage.Store) error {
	x.mu.RLock()
	seg := segment{metas: make([]*RunMeta, len(x.order))}
	for i, id := range x.order {
		seg.metas[i] = x.runs[id]
	}
	x.mu.RUnlock()

	// Phase 1: claim the current position. Byte-identical to the stored
	// segment means neither the metas nor the store moved: nothing to do.
	pos, posOK := store.Position()
	seg.hasPos, seg.pos = posOK, pos
	current := encodeSegment(seg)
	if prior, err := store.Hash(SegmentNS, segmentKey); err == nil && prior == storage.HashBytes(current) {
		return nil
	}
	// Phase 2: something changed — claim the position the store will be
	// at after this very write lands (the segment's own binding line has
	// constant length). If other appends interleave, the claim is merely
	// wrong, and the next BuildIndex takes the full-validation path.
	if posOK {
		seg.pos.Offset += segmentBindLineLen
	}
	if _, err := store.Put(SegmentNS, segmentKey, encodeSegment(seg)); err != nil {
		return fmt.Errorf("bookkeep: persisting index segment: %w", err)
	}
	return nil
}

// refreshFromSegment brings the (empty) index fully up to date,
// seeding it from the store's persisted segment when one exists and
// validates. The segment is strictly best-effort — any problem falls
// back to indexing from the records — and the run list is enumerated at
// most once, shared between segment validation and the record catch-up
// (zero enumerations on the exact-position fast path).
func (x *Index) refreshFromSegment() error {
	data, err := x.store.Get(SegmentNS, segmentKey)
	if err != nil {
		return x.Refresh()
	}
	seg, err := decodeSegment(data)
	if err != nil || len(seg.metas) == 0 {
		return x.Refresh()
	}
	pos, posOK := x.store.Position()
	if seg.hasPos && posOK && seg.pos == pos {
		// Exact position match, plus a cheap identity probe: the
		// segment's first and last runs must still resolve, so a
		// recreated store that coincidentally reached the same byte
		// offset cannot smuggle in another store's bookkeeping.
		first, last := seg.metas[0].RunID, seg.metas[len(seg.metas)-1].RunID
		if x.store.Exists(runner.RunsNS, first) && x.store.Exists(runner.RunsNS, last) {
			x.mu.Lock()
			if x.addSortedLocked(seg.metas) {
				// Nothing changed since the segment was written: coverage
				// is complete without enumerating a single run ID. The
				// trailing Refresh is a no-op position comparison.
				x.pos, x.posOK = pos, posOK
			}
			x.mu.Unlock()
			return x.Refresh()
		}
	}
	// The store moved past (or does not position-match) the segment:
	// trust it only if every run it claims still exists — a recreated
	// store must not inherit a previous store's bookkeeping. The same
	// enumeration then drives the record catch-up.
	ids := runner.ListRuns(x.store)
	listed := make(map[string]bool, len(ids))
	for _, id := range ids {
		listed[id] = true
	}
	valid := true
	for _, m := range seg.metas {
		if !listed[m.RunID] {
			valid = false
			break
		}
	}
	if valid {
		x.mu.Lock()
		x.addSortedLocked(seg.metas)
		x.mu.Unlock()
	}
	return x.refreshIDs(ids, pos, posOK)
}

// addSortedLocked bulk-loads metas known to be in ascending run order
// into an empty index — the segment load path, where skipping the
// per-insert binary searches and latest-run comparisons is worth a
// dedicated loop. Ordering is verified inline during the single
// insertion pass; a violation (a corrupt cache) resets the index to
// empty and returns false, and the caller falls back to a rebuild.
// Callers hold x.mu.
func (x *Index) addSortedLocked(metas []*RunMeta) bool {
	if len(x.order) != 0 {
		return false
	}
	reset := func() bool {
		x.order = nil
		x.runs = make(map[string]*RunMeta)
		x.byExp = make(map[string][]string)
		x.count = make(map[cellKey]int)
		x.latest = make(map[cellKey]string)
		x.green = make(map[string]string)
		return false
	}
	x.order = make([]string, len(metas))
	x.runs = make(map[string]*RunMeta, len(metas)+16)
	prev := ""
	for i, m := range metas {
		if m == nil || (prev != "" && runner.CompareIDs(prev, m.RunID) >= 0) {
			return reset()
		}
		prev = m.RunID
		x.order[i] = m.RunID
		x.runs[m.RunID] = m
		x.byExp[m.Experiment] = append(x.byExp[m.Experiment], m.RunID)
		k := cellKey{m.Experiment, m.Config, m.Externals}
		x.count[k]++
		x.latest[k] = m.RunID // ascending order: later always wins
		if m.InputDigest != "" && m.Passed {
			x.green[m.InputDigest] = m.RunID
		}
	}
	return true
}
