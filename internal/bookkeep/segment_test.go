package bookkeep

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// recordRuns drives the real runner so the store holds genuine records.
func recordRuns(t *testing.T, store *storage.Store, n int, exp string) {
	t.Helper()
	rn := runner.New(store, simclock.New())
	cat := externals.NewCatalogue()
	root, err := cat.Get(externals.ROOT, "5.34")
	if err != nil {
		t.Fatal(err)
	}
	ctx := &valtest.Context{
		Store:     store,
		Env:       storage.Env{},
		Config:    platform.ReferenceConfig(),
		Registry:  platform.NewRegistry(),
		Externals: externals.MustSet(root),
	}
	for i := 0; i < n; i++ {
		suite := valtest.NewSuite(exp)
		outcome := valtest.OutcomePass
		if i%3 == 2 {
			outcome = valtest.OutcomeFail
		}
		suite.MustAdd(&valtest.FuncTest{
			TestName: "t", Cat: valtest.CatStandalone,
			Fn: func(*valtest.Context) valtest.Result {
				return valtest.Result{Test: "t", Outcome: outcome, Cost: time.Second}
			},
		})
		if _, err := rn.Run(suite, ctx, fmt.Sprintf("seg %d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func matrixText(x *Index) string {
	out := ""
	for _, c := range x.Matrix() {
		out += fmt.Sprintf("%s|%s|%s|%s|%d/%d/%d/%d|%d\n",
			c.Experiment, c.Config, c.Externals, c.RunID, c.Pass, c.Fail, c.Skip, c.Error, c.Runs)
	}
	return out
}

// TestSegmentRoundTripOnDisk: an index persisted as a segment and
// rebuilt by a fresh process-equivalent open produces identical derived
// state to a full rescan, across both the exact-position fast path and
// the stale-tail path.
func TestSegmentRoundTripOnDisk(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recordRuns(t, store, 9, "H1")
	x, err := RebuildIndex(store)
	if err != nil {
		t.Fatal(err)
	}
	want := matrixText(x)
	if err := x.SaveSegment(store); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Exact position: the segment alone covers the store.
	store2, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := BuildIndex(store2)
	if err != nil {
		t.Fatal(err)
	}
	if got := matrixText(x2); got != want || x2.TotalRuns() != 9 {
		t.Fatalf("segment-built index differs:\n got %s\nwant %s", got, want)
	}

	// Stale tail: more runs after the segment — only they are decoded,
	// and the result still matches a full rescan.
	recordRuns(t, store2, 4, "ZEUS")
	x3, err := BuildIndex(store2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RebuildIndex(store2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := matrixText(x3), matrixText(full); got != want || x3.TotalRuns() != 13 {
		t.Fatalf("segment+tail index differs from rescan:\n got %s\nwant %s", got, want)
	}
	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentIsTrustedOnExactPosition proves BuildIndex serves from the
// segment without re-decoding record blobs: a segment whose meta was
// deliberately tampered with — at a matching store position — shows up
// verbatim in the index.
func TestSegmentIsTrustedOnExactPosition(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	recordRuns(t, store, 3, "H1")
	x, err := RebuildIndex(store)
	if err != nil {
		t.Fatal(err)
	}
	metas := x.Runs()
	metas[1].Description = "TAMPERED"
	pos, ok := store.Position()
	if !ok {
		t.Fatal("disk store has no position")
	}
	// Claim the predicted post-put position — the same arithmetic
	// SaveSegment relies on.
	seg := segment{hasPos: true, pos: pos, metas: metas}
	seg.pos.Offset += segmentBindLineLen
	if _, err := store.Put(SegmentNS, "segment", encodeSegment(seg)); err != nil {
		t.Fatal(err)
	}
	if now, _ := store.Position(); now != seg.pos {
		t.Fatalf("post-put position %+v does not match the predicted claim %+v", now, seg.pos)
	}

	x2, err := BuildIndex(store)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := x2.Meta(metas[1].RunID)
	if !ok || m.Description != "TAMPERED" {
		t.Fatalf("index did not trust the position-matched segment: %+v", m)
	}
}

// TestSegmentFromRecreatedStoreIsDiscarded: a segment claiming runs the
// store does not hold (the store was deleted and rebuilt smaller) fails
// validation and the index rebuilds from the actual records.
func TestSegmentFromRecreatedStoreIsDiscarded(t *testing.T) {
	store := storage.NewStore()
	recordRuns(t, store, 2, "H1")
	phantom := &RunMeta{RunID: "run-9999", Experiment: "GHOST", Config: "c", Externals: "e", Passed: true}
	data := encodeSegment(segment{metas: []*RunMeta{phantom}})
	if _, err := store.Put(SegmentNS, "segment", data); err != nil {
		t.Fatal(err)
	}
	x, err := BuildIndex(store)
	if err != nil {
		t.Fatal(err)
	}
	if x.TotalRuns() != 2 {
		t.Fatalf("TotalRuns = %d, want 2 (phantom segment must be discarded)", x.TotalRuns())
	}
	if _, ok := x.Meta("run-9999"); ok {
		t.Fatal("phantom run from a discarded segment leaked into the index")
	}
}

// TestSegmentUnknownFormatIsDiscarded: a future (or corrupt) format
// version falls back to a rescan instead of misreading.
func TestSegmentUnknownFormatIsDiscarded(t *testing.T) {
	store := storage.NewStore()
	recordRuns(t, store, 2, "H1")
	data := encodeSegment(segment{metas: []*RunMeta{{RunID: "run-0001", Experiment: "H1"}}})
	data[len(segmentMagic)] = 99 // future format version
	if _, err := store.Put(SegmentNS, "segment", data); err != nil {
		t.Fatal(err)
	}
	x, err := BuildIndex(store)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RebuildIndex(store)
	if err != nil {
		t.Fatal(err)
	}
	if matrixText(x) != matrixText(full) || x.TotalRuns() != 2 {
		t.Fatal("unknown-format segment was not discarded cleanly")
	}
	// The garbage blob also must not break diff queries on real runs.
	if m, ok := x.Meta("run-0001"); !ok || m.Experiment != "H1" {
		t.Fatalf("real record not indexed after segment fallback: %+v", m)
	}
}

// TestSaveSegmentIsIdempotent: re-saving an unchanged index writes
// nothing (hash-skip), so steady-state daemon cycles do not grow the
// journal.
func TestSaveSegmentIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	recordRuns(t, store, 3, "H1")
	x, err := BuildIndex(store)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.SaveSegment(store); err != nil {
		t.Fatal(err)
	}
	pos1, _ := store.Position()
	if err := x.SaveSegment(store); err != nil {
		t.Fatal(err)
	}
	pos2, _ := store.Position()
	if pos1 != pos2 {
		t.Fatalf("idempotent re-save moved the journal: %+v -> %+v", pos1, pos2)
	}
}

// TestRunsPageCursor: pages partition the full ordered run list with no
// duplicates or gaps, the final page reports no next cursor, and the
// per-experiment variant restricts correctly.
func TestRunsPageCursor(t *testing.T) {
	store := storage.NewStore()
	recordRuns(t, store, 7, "H1")
	recordRuns(t, store, 5, "ZEUS")
	x, err := BuildIndex(store)
	if err != nil {
		t.Fatal(err)
	}

	var collected []string
	after, pages := "", 0
	for {
		metas, next := x.RunsPage(after, 3)
		pages++
		for _, m := range metas {
			collected = append(collected, m.RunID)
		}
		if next == "" {
			break
		}
		after = next
		if pages > 10 {
			t.Fatal("runaway pagination")
		}
	}
	if len(collected) != 12 || pages != 4 {
		t.Fatalf("paged walk: %d runs over %d pages, want 12 over 4", len(collected), pages)
	}
	all := x.Runs()
	for i, m := range all {
		if collected[i] != m.RunID {
			t.Fatalf("page order diverges at %d: %s vs %s", i, collected[i], m.RunID)
		}
	}

	// Limit 0 = everything; cursor past the end = empty page.
	if metas, next := x.RunsPage("", 0); len(metas) != 12 || next != "" {
		t.Fatalf("unlimited page = %d runs, next %q", len(metas), next)
	}
	if metas, next := x.RunsPage(all[len(all)-1].RunID, 3); len(metas) != 0 || next != "" {
		t.Fatalf("page past the end = %d runs, next %q", len(metas), next)
	}

	// Per-experiment cursor: only ZEUS runs, in order.
	zeus, next := x.RunsForPage("ZEUS", "", "", 3)
	if len(zeus) != 3 || next == "" {
		t.Fatalf("ZEUS first page = %d runs, next %q", len(zeus), next)
	}
	rest, next2 := x.RunsForPage("ZEUS", "", next, 3)
	if len(rest) != 2 || next2 != "" {
		t.Fatalf("ZEUS second page = %d runs, next %q", len(rest), next2)
	}
	for _, m := range append(zeus, rest...) {
		if m.Experiment != "ZEUS" {
			t.Fatalf("per-experiment page leaked %s", m.Experiment)
		}
	}
}

// TestRefreshPositionFastPath: over a positioned (on-disk) store, a
// no-change Refresh takes the position short-circuit — observable as
// the index not picking up a record smuggled in *behind* the position
// bookkeeping (we re-bind an existing name so the journal grows, then
// check a genuine Refresh does notice).
func TestRefreshPositionFastPath(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	recordRuns(t, store, 2, "H1")
	x, err := BuildIndex(store)
	if err != nil {
		t.Fatal(err)
	}
	if x.TotalRuns() != 2 {
		t.Fatalf("TotalRuns = %d", x.TotalRuns())
	}
	// Unchanged store: refresh must be a no-op (and cheap — asserted
	// structurally by the position equality, priced by the benchmark).
	pos1, _ := store.Position()
	if err := x.Refresh(); err != nil {
		t.Fatal(err)
	}
	if pos2, _ := store.Position(); pos1 != pos2 {
		t.Fatal("no-op refresh moved the store")
	}
	// New records move the position and are picked up.
	recordRuns(t, store, 3, "H1")
	if err := x.Refresh(); err != nil {
		t.Fatal(err)
	}
	if x.TotalRuns() != 5 {
		t.Fatalf("TotalRuns after refresh = %d, want 5", x.TotalRuns())
	}
}

// TestSegmentCodecRoundTrip pins the custom wire format: encode →
// decode is lossless across awkward field values, and decode never
// trusts lengths it cannot satisfy.
func TestSegmentCodecRoundTrip(t *testing.T) {
	metas := []*RunMeta{
		{RunID: "run-0001", Description: `quotes " and unicode ö`, Experiment: "H1",
			Config: "SL6/64bit gcc4.4", Externals: "root-5.34", Revision: 3,
			InputDigest: "abc123", Timestamp: 1356998400, Jobs: 5, Pass: 3, Fail: 1,
			Skip: 1, Error: 0, Passed: false,
			Marks: []JobMark{
				{Test: "compile/lib01", Outcome: valtest.OutcomePass},
				{Test: "chain01/validate", Outcome: valtest.OutcomeFail,
					Detail: "statistic drift", Statistic: -3.25},
				{Test: "standalone/t01", Outcome: valtest.OutcomeError,
					Detail: `quotes " again`, Statistic: math.Inf(1)},
			}},
		{RunID: "run-0002", Experiment: "H1", Config: "SL6/64bit gcc4.4",
			Externals: "root-5.34", Timestamp: 1 << 40, Jobs: 1, Pass: 1, Passed: true,
			Marks: []JobMark{{Test: "compile/lib01", Outcome: valtest.OutcomePass}}},
		{RunID: "run-10000", Description: "", Experiment: "ZEUS", Config: "c",
			Externals: "e", Passed: true},
	}
	in := segment{hasPos: true, pos: storage.Position{Generation: 7, Offset: 1 << 33}, metas: metas}
	out, err := decodeSegment(encodeSegment(in))
	if err != nil {
		t.Fatal(err)
	}
	if !out.hasPos || out.pos != in.pos || len(out.metas) != len(in.metas) {
		t.Fatalf("segment header round trip: %+v", out)
	}
	for i := range metas {
		got, want := *out.metas[i], *metas[i]
		if len(got.Marks) == 0 && len(want.Marks) == 0 {
			got.Marks, want.Marks = nil, nil // nil vs empty is not a wire difference
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("meta %d round trip:\n got %+v\nwant %+v", i, got, want)
		}
	}

	// Truncations at every prefix length must error, never panic.
	full := encodeSegment(in)
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := decodeSegment(full[:cut]); err == nil && cut < len(full)-1 {
			t.Fatalf("truncated segment (%d bytes) decoded without error", cut)
		}
	}
}

// TestSaveSegmentSteadyState: once a save has landed, repeated
// BuildIndex + SaveSegment cycles over an unchanged store neither move
// the journal nor rewrite the segment — the store is byte-stable under
// the daemon's steady state.
func TestSaveSegmentSteadyState(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	recordRuns(t, store, 5, "H1")
	x, err := bookkeepBuildAndSave(store)
	if err != nil {
		t.Fatal(err)
	}
	_ = x
	settled, _ := store.Position()
	for cycle := 0; cycle < 3; cycle++ {
		x, err := BuildIndex(store)
		if err != nil {
			t.Fatal(err)
		}
		if x.TotalRuns() != 5 {
			t.Fatalf("cycle %d: TotalRuns = %d", cycle, x.TotalRuns())
		}
		if err := x.SaveSegment(store); err != nil {
			t.Fatal(err)
		}
		if now, _ := store.Position(); now != settled {
			t.Fatalf("cycle %d: steady-state save moved the store %+v -> %+v", cycle, settled, now)
		}
	}
}

func bookkeepBuildAndSave(store *storage.Store) (*Index, error) {
	x, err := BuildIndex(store)
	if err != nil {
		return nil, err
	}
	return x, x.SaveSegment(store)
}
