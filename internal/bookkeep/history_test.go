package bookkeep

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/valtest"
)

func TestHistoryAcrossRuns(t *testing.T) {
	h := newHarness()
	book := New(h.store)

	h.run(t, h.context(sl5(), "5.34", 1), "r1", map[string]valtest.Outcome{
		"chain/validate": valtest.OutcomePass,
	})
	h.run(t, h.context(sl6(), "5.34", 1), "r2", map[string]valtest.Outcome{
		"chain/validate": valtest.OutcomeFail,
	})
	h.run(t, h.context(sl6(), "5.34", 2), "r3", map[string]valtest.Outcome{
		"chain/validate": valtest.OutcomePass,
	})

	entries, err := book.History("H1", "chain/validate")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Config != sl5().String() || entries[1].Config != sl6().String() {
		t.Fatalf("configs = %s, %s", entries[0].Config, entries[1].Config)
	}
	if entries[2].Revision != 2 {
		t.Fatalf("revision = %d", entries[2].Revision)
	}

	first, ok := FirstFailure(entries)
	if !ok || first.RunID != entries[1].RunID {
		t.Fatalf("FirstFailure = %+v, %v", first, ok)
	}

	trans := Transitions(entries)
	if len(trans) != 3 { // pass (initial), fail, pass
		t.Fatalf("transitions = %d, want 3", len(trans))
	}

	rendered := RenderHistory("chain/validate", entries)
	for _, want := range []string{"3 executions", "pass", "fail", sl6().String()} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q:\n%s", want, rendered)
		}
	}
}

func TestHistoryUnknownTest(t *testing.T) {
	h := newHarness()
	book := New(h.store)
	h.run(t, h.context(sl5(), "5.34", 1), "r1", map[string]valtest.Outcome{"a": valtest.OutcomePass})
	if _, err := book.History("H1", "ghost"); err == nil {
		t.Fatal("unknown test history returned")
	}
}

func TestFirstFailureNever(t *testing.T) {
	entries := []HistoryEntry{
		{Outcome: valtest.OutcomePass},
		{Outcome: valtest.OutcomePass},
	}
	if _, ok := FirstFailure(entries); ok {
		t.Fatal("FirstFailure found one in an all-pass history")
	}
}

// TestIndexHistoryMatchesBook: the index answers History and
// FlakyTests identically to the rescanning Book — including after a
// segment round trip, so the marks survive persistence and no run
// record is decoded to serve the queries.
func TestIndexHistoryMatchesBook(t *testing.T) {
	h := newHarness()
	book := New(h.store)
	h.run(t, h.context(sl5(), "5.34", 1), "r1", map[string]valtest.Outcome{
		"chain/validate": valtest.OutcomePass,
		"flappy":         valtest.OutcomePass,
	})
	h.run(t, h.context(sl5(), "5.34", 1), "r2", map[string]valtest.Outcome{
		"chain/validate": valtest.OutcomePass,
		"flappy":         valtest.OutcomeError,
	})
	h.run(t, h.context(sl6(), "5.34", 2), "r3", map[string]valtest.Outcome{
		"chain/validate": valtest.OutcomeFail,
	})

	check := func(stage string, x *Index) {
		t.Helper()
		for _, test := range []string{"chain/validate", "flappy"} {
			want, err := book.History("H1", test)
			if err != nil {
				t.Fatal(err)
			}
			got, err := x.History("H1", test)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: index history of %q diverges from Book:\n got %+v\nwant %+v", stage, test, got, want)
			}
		}
		if _, err := x.History("H1", "ghost"); err == nil {
			t.Fatalf("%s: unknown-test history did not error", stage)
		}
		wantFlaky, err := book.FlakyTests("H1")
		if err != nil {
			t.Fatal(err)
		}
		gotFlaky, err := x.FlakyTests("H1")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotFlaky, wantFlaky) {
			t.Fatalf("%s: index flaky set %v, book %v", stage, gotFlaky, wantFlaky)
		}
	}

	x, err := BuildIndex(h.store)
	if err != nil {
		t.Fatal(err)
	}
	check("fresh index", x)
	if err := x.SaveSegment(h.store); err != nil {
		t.Fatal(err)
	}
	x2, err := BuildIndex(h.store)
	if err != nil {
		t.Fatal(err)
	}
	check("segment-loaded index", x2)
}

func TestFlakyTests(t *testing.T) {
	h := newHarness()
	book := New(h.store)

	// Same config, same revision, flipping outcome: flaky.
	h.run(t, h.context(sl5(), "5.34", 1), "r1", map[string]valtest.Outcome{
		"stable": valtest.OutcomePass,
		"flappy": valtest.OutcomePass,
	})
	h.run(t, h.context(sl5(), "5.34", 1), "r2", map[string]valtest.Outcome{
		"stable": valtest.OutcomePass,
		"flappy": valtest.OutcomeError,
	})
	// Different config flipping outcome: NOT flaky (explained by input).
	h.run(t, h.context(sl6(), "5.34", 1), "r3", map[string]valtest.Outcome{
		"stable": valtest.OutcomeFail,
		"flappy": valtest.OutcomeError,
	})

	flaky, err := book.FlakyTests("H1")
	if err != nil {
		t.Fatal(err)
	}
	if len(flaky) != 1 || flaky[0] != "flappy" {
		t.Fatalf("FlakyTests = %v", flaky)
	}
}
