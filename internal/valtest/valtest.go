// Package valtest defines the validation tests of the sp-system,
// following the taxonomy of the paper's Figure 2: the compilation of the
// experiment's software packages, then "a series of validation tests ...
// on the full spectrum of the software, using the compiled software.
// Whereas some of these tests examine the results of stand alone
// executables and are run in parallel, many are run sequentially and
// form discrete parts in one of several full analysis chains."
//
// A Test is a named unit of validation with declared dependencies; a
// Suite is an experiment's ordered collection. Tests communicate with
// the framework exclusively through the Context — the common storage and
// the shell-variable environment — which is what makes them portable in
// and out of the sp-system, as §4 of the paper emphasises.
package valtest

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/buildsys"
	"repro/internal/externals"
	"repro/internal/histo"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/swrepo"
)

// Category classifies a test along Figure 2's structure.
type Category int

const (
	// CatCompile is a package-compilation check.
	CatCompile Category = iota
	// CatStandalone is an independent executable test, runnable in
	// parallel with others.
	CatStandalone
	// CatChain is a stage in a sequential analysis chain.
	CatChain
)

// String returns "compile", "standalone" or "chain".
func (c Category) String() string {
	switch c {
	case CatCompile:
		return "compile"
	case CatStandalone:
		return "standalone"
	default:
		return "chain"
	}
}

// Outcome is a test verdict.
type Outcome int

const (
	// OutcomePass means the test succeeded.
	OutcomePass Outcome = iota
	// OutcomeFail means the test ran and its check failed.
	OutcomeFail
	// OutcomeSkip means a prerequisite failed so the test was not run.
	OutcomeSkip
	// OutcomeError means the test could not run (infrastructure or
	// crash).
	OutcomeError
)

// String returns "pass", "fail", "skip" or "error".
func (o Outcome) String() string {
	switch o {
	case OutcomePass:
		return "pass"
	case OutcomeFail:
		return "fail"
	case OutcomeSkip:
		return "skip"
	default:
		return "error"
	}
}

// Passed reports whether the outcome is OutcomePass.
func (o Outcome) Passed() bool { return o == OutcomePass }

// Result is the recorded outcome of one test execution.
type Result struct {
	// Test is the test name.
	Test string
	// Category is the test's Figure 2 classification.
	Category Category
	// Outcome is the verdict.
	Outcome Outcome
	// Detail is the human-readable explanation linked from the status
	// matrix cell.
	Detail string
	// Statistic carries the comparator statistic for data-validation
	// tests.
	Statistic float64
	// OutputKey is the storage key of the test's output artifact, kept
	// forever per the paper's bookkeeping policy ("all output files are
	// kept").
	OutputKey string
	// Cost is the simulated execution time.
	Cost time.Duration
}

// Context is everything a test may consult: the paper's thin interface
// (storage + shell variables) plus the handles the framework itself uses
// to simulate execution.
type Context struct {
	// Store is the common sp-system storage.
	Store *storage.Store
	// Env carries the shell variables (SP_*) for this job.
	Env storage.Env
	// Config is the platform configuration under test.
	Config platform.Config
	// Registry resolves compilers and OS releases.
	Registry *platform.Registry
	// Externals is the installed external software.
	Externals *externals.Set
	// Repo is the experiment software repository (current revision).
	Repo *swrepo.Repository
	// Build is the most recent build of Repo on Config, consulted by
	// compile tests and by chain stages needing artifacts.
	Build *buildsys.Result
}

// Test is a unit of validation.
type Test interface {
	// Name uniquely identifies the test within its suite.
	Name() string
	// Category classifies the test.
	Category() Category
	// DependsOn names tests that must pass before this one runs.
	DependsOn() []string
	// Run executes the test.
	Run(ctx *Context) Result
}

// CompileTest checks that one package built successfully.
type CompileTest struct {
	// Pkg is the package whose build is checked.
	Pkg string
}

// Name returns "compile/<package>".
func (t *CompileTest) Name() string { return "compile/" + t.Pkg }

// Category returns CatCompile.
func (t *CompileTest) Category() Category { return CatCompile }

// DependsOn returns nil: compile tests are roots.
func (t *CompileTest) DependsOn() []string { return nil }

// Run inspects the build result for the package.
func (t *CompileTest) Run(ctx *Context) Result {
	res := Result{Test: t.Name(), Category: CatCompile}
	if ctx.Build == nil {
		res.Outcome = OutcomeError
		res.Detail = "no build result available"
		return res
	}
	pr, ok := ctx.Build.Find(t.Pkg)
	if !ok {
		res.Outcome = OutcomeError
		res.Detail = fmt.Sprintf("package %q not in build", t.Pkg)
		return res
	}
	res.Cost = pr.Cost
	switch pr.Status {
	case buildsys.StatusOK, buildsys.StatusCached:
		res.Outcome = OutcomePass
		if w := pr.Warnings(); w > 0 {
			res.Detail = fmt.Sprintf("built with %d warnings", w)
		} else {
			res.Detail = "built cleanly"
		}
		res.OutputKey = pr.ArtifactKey
	case buildsys.StatusSkipped:
		res.Outcome = OutcomeSkip
		res.Detail = fmt.Sprintf("dependencies failed: %v", pr.FailedDeps)
	default:
		res.Outcome = OutcomeFail
		if len(pr.MissingAPIs) > 0 {
			res.Detail = fmt.Sprintf("missing external APIs: %v", pr.MissingAPIs)
		} else if len(pr.Diagnostics) > 0 {
			res.Detail = pr.Diagnostics[0].Message
		} else {
			res.Detail = "compilation failed"
		}
	}
	return res
}

// FuncTest adapts a function into a Test; the chain engine and the
// experiments' standalone tests are built from it.
type FuncTest struct {
	// TestName uniquely identifies the test.
	TestName string
	// Cat classifies the test.
	Cat Category
	// Deps names prerequisite tests.
	Deps []string
	// Fn is the test body.
	Fn func(ctx *Context) Result
}

// Name returns the test's name.
func (t *FuncTest) Name() string { return t.TestName }

// Category returns the test's category.
func (t *FuncTest) Category() Category { return t.Cat }

// DependsOn returns the prerequisite test names.
func (t *FuncTest) DependsOn() []string { return t.Deps }

// Run invokes the test body, stamping the name and category into the
// result so bodies cannot mislabel themselves.
func (t *FuncTest) Run(ctx *Context) Result {
	res := t.Fn(ctx)
	res.Test = t.TestName
	res.Category = t.Cat
	return res
}

// Suite is an experiment's collection of tests.
type Suite struct {
	// Experiment is the owning collaboration.
	Experiment string
	// Fingerprint captures the outcome-determining parameters of the
	// suite's construction that the test listing alone cannot encode —
	// for generated suites, the full experiment definition (seed,
	// Monte-Carlo statistics per chain, repository generation spec).
	// It feeds runner.InputDigest, so changing any such parameter makes
	// recorded validation results stale. Hand-built suites may leave it
	// empty.
	Fingerprint string

	tests map[string]Test
	order []string // insertion order, for stable listings
}

// NewSuite returns an empty suite.
func NewSuite(experiment string) *Suite {
	return &Suite{Experiment: experiment, tests: make(map[string]Test)}
}

// Add registers a test; duplicate names are an error.
func (s *Suite) Add(t Test) error {
	if t.Name() == "" {
		return fmt.Errorf("valtest: test with empty name")
	}
	if _, dup := s.tests[t.Name()]; dup {
		return fmt.Errorf("valtest: duplicate test %q", t.Name())
	}
	s.tests[t.Name()] = t
	s.order = append(s.order, t.Name())
	return nil
}

// MustAdd is Add that panics on error, for static suite construction.
func (s *Suite) MustAdd(t Test) {
	if err := s.Add(t); err != nil {
		panic(err)
	}
}

// Len returns the number of tests.
func (s *Suite) Len() int { return len(s.tests) }

// Get returns the named test.
func (s *Suite) Get(name string) (Test, bool) {
	t, ok := s.tests[name]
	return t, ok
}

// Tests returns tests in insertion order.
func (s *Suite) Tests() []Test {
	out := make([]Test, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.tests[name])
	}
	return out
}

// CountByCategory tallies tests per category.
func (s *Suite) CountByCategory() map[Category]int {
	out := make(map[Category]int)
	for _, t := range s.tests {
		out[t.Category()]++
	}
	return out
}

// Validate checks that all dependencies exist and the dependency graph
// is acyclic.
func (s *Suite) Validate() error {
	for _, t := range s.Tests() {
		for _, d := range t.DependsOn() {
			if _, ok := s.tests[d]; !ok {
				return fmt.Errorf("valtest: test %q depends on unknown test %q", t.Name(), d)
			}
		}
	}
	_, err := s.Order()
	return err
}

// Order returns the tests in a deterministic topological order:
// dependencies first, ties broken by insertion order.
func (s *Suite) Order() ([]Test, error) {
	pos := make(map[string]int, len(s.order))
	for i, name := range s.order {
		pos[name] = i
	}
	indeg := make(map[string]int, len(s.tests))
	dependents := make(map[string][]string)
	for _, t := range s.Tests() {
		indeg[t.Name()] += 0
		for _, d := range t.DependsOn() {
			indeg[t.Name()]++
			dependents[d] = append(dependents[d], t.Name())
		}
	}
	var ready []string
	for name, n := range indeg {
		if n == 0 {
			ready = append(ready, name)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return pos[ready[i]] < pos[ready[j]] })

	out := make([]Test, 0, len(s.tests))
	for len(ready) > 0 {
		name := ready[0]
		ready = ready[1:]
		out = append(out, s.tests[name])
		var newly []string
		for _, dep := range dependents[name] {
			indeg[dep]--
			if indeg[dep] == 0 {
				newly = append(newly, dep)
			}
		}
		sort.Slice(newly, func(i, j int) bool { return pos[newly[i]] < pos[newly[j]] })
		ready = append(ready, newly...)
		sort.Slice(ready, func(i, j int) bool { return pos[ready[i]] < pos[ready[j]] })
	}
	if len(out) != len(s.tests) {
		for name, n := range indeg {
			if n > 0 {
				return nil, fmt.Errorf("valtest: dependency cycle involving test %q", name)
			}
		}
	}
	return out, nil
}

// CompareStoredHistograms fetches two histograms from storage and applies
// the comparator — the shared core of every data-validation test.
func CompareStoredHistograms(store *storage.Store, ns, refKey, candKey string, compare func(ref, cand *histo.H1D) (histo.Comparison, error)) (histo.Comparison, error) {
	refData, err := store.Get(ns, refKey)
	if err != nil {
		return histo.Comparison{}, fmt.Errorf("valtest: reference: %w", err)
	}
	candData, err := store.Get(ns, candKey)
	if err != nil {
		return histo.Comparison{}, fmt.Errorf("valtest: candidate: %w", err)
	}
	ref, err := histo.UnmarshalH1D(refData)
	if err != nil {
		return histo.Comparison{}, fmt.Errorf("valtest: reference: %w", err)
	}
	cand, err := histo.UnmarshalH1D(candData)
	if err != nil {
		return histo.Comparison{}, fmt.Errorf("valtest: candidate: %w", err)
	}
	return compare(ref, cand)
}
