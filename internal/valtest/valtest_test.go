package valtest

import (
	"strings"
	"testing"

	"repro/internal/buildsys"
	"repro/internal/externals"
	"repro/internal/histo"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/swrepo"
)

func buildFixture(t *testing.T, traits ...platform.Trait) (*Context, *buildsys.Result) {
	t.Helper()
	store := storage.NewStore()
	reg := platform.NewRegistry()
	cat := externals.NewCatalogue()
	root, _ := cat.Get(externals.ROOT, "5.34")
	exts := externals.MustSet(root)

	repo := swrepo.NewRepository("H1")
	unit := &swrepo.SourceUnit{Name: "a.cc", Language: swrepo.LangCxx,
		Traits: append([]platform.Trait{platform.TraitCxx98}, traits...), Lines: 200}
	repo.MustAdd(&swrepo.Package{Name: "h1reco", Units: []*swrepo.SourceUnit{unit}})

	cfg := platform.ReferenceConfig()
	res, err := buildsys.NewBuilder(reg, store).Build(repo, cfg, exts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{
		Store:     store,
		Env:       storage.Env{storage.EnvWorkDir: "run-0001", storage.EnvRunID: "run-0001"},
		Config:    cfg,
		Registry:  reg,
		Externals: exts,
		Repo:      repo,
		Build:     res,
	}
	return ctx, res
}

func TestCompileTestPass(t *testing.T) {
	ctx, _ := buildFixture(t)
	test := &CompileTest{Pkg: "h1reco"}
	res := test.Run(ctx)
	if res.Outcome != OutcomePass {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.Detail)
	}
	if res.Test != "compile/h1reco" || res.Category != CatCompile {
		t.Fatalf("labels = %q %v", res.Test, res.Category)
	}
	if res.OutputKey == "" {
		t.Fatal("no artifact key recorded")
	}
}

func TestCompileTestWarnDetail(t *testing.T) {
	ctx, _ := buildFixture(t, platform.TraitKAndRDecl) // warn on gcc4.1
	res := (&CompileTest{Pkg: "h1reco"}).Run(ctx)
	if res.Outcome != OutcomePass || !strings.Contains(res.Detail, "warning") {
		t.Fatalf("res = %+v", res)
	}
}

func TestCompileTestFail(t *testing.T) {
	ctx, _ := buildFixture(t, platform.TraitCxx11) // error on gcc4.1
	res := (&CompileTest{Pkg: "h1reco"}).Run(ctx)
	if res.Outcome != OutcomeFail {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestCompileTestErrors(t *testing.T) {
	ctx, _ := buildFixture(t)
	res := (&CompileTest{Pkg: "ghost"}).Run(ctx)
	if res.Outcome != OutcomeError {
		t.Fatalf("unknown package outcome = %v", res.Outcome)
	}
	ctx.Build = nil
	res = (&CompileTest{Pkg: "h1reco"}).Run(ctx)
	if res.Outcome != OutcomeError {
		t.Fatalf("missing build outcome = %v", res.Outcome)
	}
}

func TestFuncTestStampsIdentity(t *testing.T) {
	ft := &FuncTest{
		TestName: "standalone/dst-read",
		Cat:      CatStandalone,
		Fn: func(ctx *Context) Result {
			return Result{Test: "liar", Category: CatCompile, Outcome: OutcomePass}
		},
	}
	res := ft.Run(nil)
	if res.Test != "standalone/dst-read" || res.Category != CatStandalone {
		t.Fatalf("identity not stamped: %+v", res)
	}
}

func TestSuiteAddAndDuplicates(t *testing.T) {
	s := NewSuite("H1")
	if err := s.Add(&CompileTest{Pkg: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&CompileTest{Pkg: "a"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := s.Add(&FuncTest{TestName: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSuiteValidateUnknownDep(t *testing.T) {
	s := NewSuite("H1")
	s.MustAdd(&FuncTest{TestName: "b", Cat: CatChain, Deps: []string{"missing"},
		Fn: func(*Context) Result { return Result{} }})
	if err := s.Validate(); err == nil {
		t.Fatal("unknown dependency accepted")
	}
}

func TestSuiteOrderTopological(t *testing.T) {
	s := NewSuite("H1")
	mk := func(name string, deps ...string) *FuncTest {
		return &FuncTest{TestName: name, Cat: CatChain, Deps: deps,
			Fn: func(*Context) Result { return Result{} }}
	}
	s.MustAdd(mk("validate", "analysis"))
	s.MustAdd(mk("gen"))
	s.MustAdd(mk("analysis", "reco"))
	s.MustAdd(mk("reco", "gen"))
	s.MustAdd(mk("standalone-x"))

	order, err := s.Order()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, tt := range order {
		pos[tt.Name()] = i
	}
	if !(pos["gen"] < pos["reco"] && pos["reco"] < pos["analysis"] && pos["analysis"] < pos["validate"]) {
		t.Fatalf("bad order: %v", pos)
	}
}

func TestSuiteOrderCycle(t *testing.T) {
	s := NewSuite("H1")
	mk := func(name string, deps ...string) *FuncTest {
		return &FuncTest{TestName: name, Cat: CatChain, Deps: deps,
			Fn: func(*Context) Result { return Result{} }}
	}
	s.MustAdd(mk("a", "b"))
	s.MustAdd(mk("b", "a"))
	if _, err := s.Order(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Order = %v, want cycle error", err)
	}
}

func TestSuiteCountByCategory(t *testing.T) {
	s := NewSuite("H1")
	s.MustAdd(&CompileTest{Pkg: "a"})
	s.MustAdd(&CompileTest{Pkg: "b"})
	s.MustAdd(&FuncTest{TestName: "sa", Cat: CatStandalone, Fn: func(*Context) Result { return Result{} }})
	counts := s.CountByCategory()
	if counts[CatCompile] != 2 || counts[CatStandalone] != 1 || counts[CatChain] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestOutcomeStrings(t *testing.T) {
	if OutcomePass.String() != "pass" || OutcomeFail.String() != "fail" ||
		OutcomeSkip.String() != "skip" || OutcomeError.String() != "error" {
		t.Fatal("outcome strings wrong")
	}
	if !OutcomePass.Passed() || OutcomeFail.Passed() {
		t.Fatal("Passed() wrong")
	}
}

func TestCompareStoredHistograms(t *testing.T) {
	store := storage.NewStore()
	h := histo.NewH1D("m", 10, 0, 10)
	h.Fill(5)
	blob, _ := h.MarshalBinary()
	_, _ = store.Put("refs", "ref", blob)
	_, _ = store.Put("refs", "cand", blob)

	cmp, err := CompareStoredHistograms(store, "refs", "ref", "cand", func(a, b *histo.H1D) (histo.Comparison, error) {
		return histo.Identical(a, b)
	})
	if err != nil || !cmp.Compatible {
		t.Fatalf("cmp = %+v, %v", cmp, err)
	}
	if _, err := CompareStoredHistograms(store, "refs", "nope", "cand", nil); err == nil {
		t.Fatal("missing reference accepted")
	}
	_, _ = store.Put("refs", "junk", []byte("junk"))
	if _, err := CompareStoredHistograms(store, "refs", "junk", "cand", nil); err == nil {
		t.Fatal("junk reference accepted")
	}
}
