package valtest

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/buildsys"
	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/swrepo"
)

// DefaultDriverName names the in-process platform driver. A run with no
// recorded driver name — including every run recorded before the driver
// seam existed — is a platform-driver run, and the default driver never
// contributes to input digests so the seam's introduction cannot stale
// recorded cells.
const DefaultDriverName = "platform"

// ProvisionRequest describes the environment a driver must provision for
// one suite execution: the suite itself plus the configuration,
// externals, repository and registry the tests will consult. Store is
// the caller's common storage; in-process drivers hand it straight to
// the tests, hosted drivers may substitute a client-scoped store.
type ProvisionRequest struct {
	// Suite is the suite about to run.
	Suite *Suite
	// Config is the platform configuration under test.
	Config platform.Config
	// Externals is the external-software selection.
	Externals *externals.Set
	// Repo is the experiment repository, nil for repository-less suites
	// (the archive scrub suite runs against the store alone).
	Repo *swrepo.Repository
	// Registry resolves compilers and OS releases.
	Registry *platform.Registry
	// Store is the common sp-system storage of the caller.
	Store *storage.Store
}

// Driver provisions execution environments and runs tests in them: the
// seam that makes a Suite pure data. The paper defines validation tests
// once and runs them "on the full spectrum of the software" across many
// hosted machines; a Driver is one such place to run them.
//
// The contract, in execution order:
//
//   - Provision builds the Context the suite will run in. It must fill
//     every Context field a test may consult (Store, Env, Config,
//     Registry, Externals, Repo, Build) and is the only step allowed to
//     acquire resources.
//   - RunTest executes one test in the provisioned context and returns
//     its Result. Drivers must not reorder or skip tests — scheduling
//     stays with the runner.
//   - Collect hands a test's artifacts back to the caller. In-process
//     drivers pass the Result through; hosted drivers copy OutputKey
//     artifacts from the client store into the caller's before
//     returning. Collect runs after every RunTest, exactly once.
//
// Drivers must not stamp themselves into digests: input-digest stamping
// is the runner's job (see runner.InputDigestDriver), keyed on Name.
type Driver interface {
	// Name identifies the driver in run records and digests. It must be
	// stable across processes: the name is hashed into input digests for
	// every driver except the default platform driver.
	Name() string
	// Provision prepares an execution environment for the suite.
	Provision(req ProvisionRequest) (*Context, error)
	// RunTest executes one test in the provisioned context.
	RunTest(t Test, ctx *Context) Result
	// Collect finalises one test's result, handing artifacts back to
	// the caller's store.
	Collect(ctx *Context, res Result) Result
}

// PlatformDriver is the in-process driver: the environment is the
// calling process itself, so provisioning is (at most) a software build,
// tests run by direct call, and artifacts are already in the caller's
// store. It reproduces exactly what core.SPSystem.Validate did before
// the seam existed.
type PlatformDriver struct {
	// Builder compiles the experiment repository during Provision; nil
	// for suites that need no build (scrub).
	Builder *buildsys.Builder
}

// Name returns DefaultDriverName.
func (d *PlatformDriver) Name() string { return DefaultDriverName }

// Provision assembles the in-process context: build the repository on
// the requested configuration if there is one, then expose the caller's
// own store and environment variables.
func (d *PlatformDriver) Provision(req ProvisionRequest) (*Context, error) {
	var build *buildsys.Result
	if req.Repo != nil && d.Builder != nil {
		var err error
		build, err = d.Builder.Build(req.Repo, req.Config, req.Externals)
		if err != nil {
			return nil, err
		}
	}
	return &Context{
		Store: req.Store,
		Env: storage.Env{
			storage.EnvConfig:    req.Config.String(),
			storage.EnvExternals: req.Externals.String(),
		},
		Config:    req.Config,
		Registry:  req.Registry,
		Externals: req.Externals,
		Repo:      req.Repo,
		Build:     build,
	}, nil
}

// RunTest executes the test by direct call.
func (d *PlatformDriver) RunTest(t Test, ctx *Context) Result { return t.Run(ctx) }

// Collect is a pass-through: in-process artifacts are already in the
// caller's store.
func (d *PlatformDriver) Collect(ctx *Context, res Result) Result { return res }

// FaultDriver wraps another driver with injectable faults, proving the
// seam isolates failures: a provisioning fault surfaces as a run error,
// a storage fault surfaces as failing tests, and neither corrupts the
// caller's bookkeeping. It is used by tests and by fault-injection
// scenario suites.
type FaultDriver struct {
	// Inner is the wrapped driver.
	Inner Driver
	// FlakyProvision makes every n-th Provision call fail (1 = every
	// call), simulating an unreachable external software repository.
	FlakyProvision int
	// SlowBuild inflates every result's Cost, simulating a degraded
	// build host.
	SlowBuild time.Duration
	// CorruptBlob, when non-empty, is a blob hash whose reads are
	// returned with one byte flipped — injected bit rot.
	CorruptBlob string

	mu         sync.Mutex
	provisions int
}

// Name returns "fault(<inner>)" — distinct from the inner driver's name
// so fault-injection runs digest differently and never satisfy a
// planner looking for genuine green runs.
func (d *FaultDriver) Name() string { return "fault(" + d.Inner.Name() + ")" }

// Provision counts calls, injects the flaky-externals fault, and wraps
// the provisioned store with the corrupting backend when configured.
func (d *FaultDriver) Provision(req ProvisionRequest) (*Context, error) {
	d.mu.Lock()
	d.provisions++
	n := d.provisions
	d.mu.Unlock()
	if d.FlakyProvision > 0 && n%d.FlakyProvision == 0 {
		return nil, fmt.Errorf("valtest: external software repository unreachable (injected fault, provision %d)", n)
	}
	ctx, err := d.Inner.Provision(req)
	if err != nil {
		return nil, err
	}
	if d.CorruptBlob != "" && ctx.Store != nil {
		ctx.Store = storage.NewStoreWith(&corruptBackend{
			Backend: ctx.Store.Backend(),
			hash:    d.CorruptBlob,
		})
	}
	return ctx, nil
}

// RunTest delegates to the inner driver.
func (d *FaultDriver) RunTest(t Test, ctx *Context) Result { return d.Inner.RunTest(t, ctx) }

// Collect delegates, then applies the slow-build penalty.
func (d *FaultDriver) Collect(ctx *Context, res Result) Result {
	res = d.Inner.Collect(ctx, res)
	res.Cost += d.SlowBuild
	return res
}

// corruptBackend delegates every Backend call, flipping one byte of the
// target blob on read — the storage-level fault a scrub must catch.
type corruptBackend struct {
	storage.Backend
	hash string
}

func (b *corruptBackend) GetBlob(hash string) ([]byte, error) {
	data, err := b.Backend.GetBlob(hash)
	if err != nil {
		return nil, err
	}
	if hash == b.hash && len(data) > 0 {
		flipped := make([]byte, len(data))
		copy(flipped, data)
		flipped[0] ^= 0x01
		return flipped, nil
	}
	return data, nil
}
