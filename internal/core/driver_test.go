package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/valtest"
	"repro/internal/vmhost"
)

// TestVMHostDriverByteIdenticalVerdicts is the tentpole acceptance
// check: the same suite executed on the vmhost driver (image built,
// client booted, context rooted in the client) produces verdicts
// byte-identical to the in-process platform driver. Two fresh systems
// are compared — the simulated clock restarts at the same epoch and run
// counters both start at 1, so the full job tables must marshal to the
// same bytes.
func TestVMHostDriverByteIdenticalVerdicts(t *testing.T) {
	mk := func() *SPSystem {
		s := New()
		if err := s.RegisterExperiment(tinyDef("H1")); err != nil {
			t.Fatal(err)
		}
		return s
	}
	inproc := mk()
	hosted := mk()

	platRec, err := inproc.Validate("H1", sl6(), stdSet(t, inproc), "seam check")
	if err != nil {
		t.Fatal(err)
	}
	vmRec, err := hosted.ValidateDriver("vmhost", "H1", sl6(), stdSet(t, hosted), "seam check")
	if err != nil {
		t.Fatal(err)
	}

	platJobs, err := json.Marshal(platRec.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	vmJobs, err := json.Marshal(vmRec.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(platJobs, vmJobs) {
		t.Fatalf("verdicts diverge across drivers:\nplatform: %s\nvmhost:   %s", platJobs, vmJobs)
	}

	// The records differ only where they must: the driver stamp and the
	// digest it folds into.
	if platRec.Driver != "" {
		t.Fatalf("platform run recorded driver %q, want empty (record-shape compatibility)", platRec.Driver)
	}
	if vmRec.Driver != vmhost.DriverName {
		t.Fatalf("vmhost run recorded driver %q", vmRec.Driver)
	}
	if platRec.InputDigest == vmRec.InputDigest {
		t.Fatal("vmhost run digests identically to a platform run — a hosted green would satisfy platform cells")
	}

	// Provisioning left real machinery behind: one image, one client.
	if n := len(hosted.Host.Images()); n != 1 {
		t.Fatalf("vmhost run built %d images, want 1", n)
	}
	clients := hosted.Host.Clients()
	if len(clients) != 1 || clients[0].CronSpec == "" {
		t.Fatalf("vmhost run booted %v, want one cron-carrying client", clients)
	}

	// A second hosted validation reuses the image and client.
	if _, err := hosted.ValidateDriver("vmhost", "H1", sl6(), stdSet(t, hosted), "again"); err != nil {
		t.Fatal(err)
	}
	if len(hosted.Host.Images()) != 1 || len(hosted.Host.Clients()) != 1 {
		t.Fatalf("re-validation re-provisioned: %d images, %d clients",
			len(hosted.Host.Images()), len(hosted.Host.Clients()))
	}
}

// TestDriverDigestDefaultIdentity: the empty driver name and the
// explicit platform name digest identically — the seam's
// no-stale-cells guarantee at the core API level.
func TestDriverDigestDefaultIdentity(t *testing.T) {
	s := New()
	if err := s.RegisterExperiment(tinyDef("H1")); err != nil {
		t.Fatal(err)
	}
	exts := stdSet(t, s)
	base, err := s.CellDigest("H1", sl6(), exts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", valtest.DefaultDriverName} {
		d, err := s.CellDigestDriver("H1", sl6(), exts, name)
		if err != nil {
			t.Fatal(err)
		}
		if d != base {
			t.Fatalf("driver %q digest %s != CellDigest %s", name, d, base)
		}
	}
	vm, err := s.CellDigestDriver("H1", sl6(), exts, vmhost.DriverName)
	if err != nil {
		t.Fatal(err)
	}
	if vm == base {
		t.Fatal("vmhost cells digest identically to platform cells")
	}
}

// TestFaultDriverProvisionIsolated: a provisioning fault (unreachable
// externals repository) surfaces as a run error, records nothing, and
// leaves the system healthy for the next plain validation.
func TestFaultDriverProvisionIsolated(t *testing.T) {
	s := New()
	if err := s.RegisterExperiment(tinyDef("H1")); err != nil {
		t.Fatal(err)
	}
	inner, err := s.Driver("")
	if err != nil {
		t.Fatal(err)
	}
	flaky := &valtest.FaultDriver{Inner: inner, FlakyProvision: 1}
	s.RegisterDriver(flaky)

	_, err = s.ValidateDriver(flaky.Name(), "H1", sl6(), stdSet(t, s), "flaky")
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("flaky provision error = %v, want injected unreachable fault", err)
	}
	if n := s.Book.TotalRuns(); n != 0 {
		t.Fatalf("failed provisioning recorded %d runs, want 0", n)
	}
	rec, err := s.Validate("H1", sl6(), stdSet(t, s), "after fault")
	if err != nil || !rec.Passed() {
		t.Fatalf("system not healthy after injected fault: %v", err)
	}
}

// TestFaultDriverCorruptBlobCaughtByScrub: a driver returning corrupted
// blob bytes is detected by the scrub suite re-hashing what it reads,
// while the archive itself — and a scrub on the honest driver — stays
// green. The seam isolates the fault to the driver that injected it.
func TestFaultDriverCorruptBlobCaughtByScrub(t *testing.T) {
	s := New()
	victim, err := s.Store.Put("data", "precious", []byte("irreplaceable physics"))
	if err != nil {
		t.Fatal(err)
	}
	inner, derr := s.Driver("")
	if derr != nil {
		t.Fatal(derr)
	}
	s.RegisterDriver(&valtest.FaultDriver{Inner: inner, CorruptBlob: victim})

	bad, err := s.ScrubDriver("fault(platform)", 0, "scrub through corrupting driver")
	if err != nil {
		t.Fatal(err)
	}
	if bad.Passed() {
		t.Fatal("scrub through the corrupting driver passed")
	}
	found := false
	for _, j := range bad.Jobs {
		if j.Result.Outcome == valtest.OutcomeFail && strings.Contains(j.Result.Detail, victim[:12]) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no failing page names the corrupted blob %s", victim[:12])
	}

	good, err := s.Scrub(0, "honest scrub")
	if err != nil {
		t.Fatal(err)
	}
	if !good.Passed() {
		t.Fatal("honest scrub failed: the fault leaked out of its driver")
	}
	if bad.InputDigest == good.InputDigest {
		t.Fatal("fault-injected scrub digests identically to an honest one")
	}
}

// TestFaultDriverSlowBuild: the latency fault inflates recorded costs
// without touching verdicts.
func TestFaultDriverSlowBuild(t *testing.T) {
	s := New()
	if err := s.RegisterExperiment(tinyDef("H1")); err != nil {
		t.Fatal(err)
	}
	inner, err := s.Driver("")
	if err != nil {
		t.Fatal(err)
	}
	slow := &valtest.FaultDriver{Inner: inner, SlowBuild: 2 * time.Hour}
	s.RegisterDriver(slow)
	rec, err := s.ValidateDriver(slow.Name(), "H1", sl6(), stdSet(t, s), "molasses")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Passed() {
		t.Fatal("latency fault changed verdicts")
	}
	perJob := 2 * time.Hour
	if rec.SerialCost < time.Duration(len(rec.Jobs))*perJob {
		t.Fatalf("serial cost %v does not include the %v-per-job penalty over %d jobs",
			rec.SerialCost, perJob, len(rec.Jobs))
	}
}

// TestScrubViaSystem: the system-level scrub entry point records a
// first-class SCRUB run that the matrix then shows.
func TestScrubViaSystem(t *testing.T) {
	s := New()
	if _, err := s.Store.Put("data", "a", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Scrub(0, "unit scrub")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Passed() {
		t.Fatal("clean scrub failed")
	}
	cells, err := s.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cells {
		if c.Experiment == "SCRUB" {
			found = true
		}
	}
	if !found {
		t.Fatalf("SCRUB missing from matrix: %+v", cells)
	}
	if _, err := s.Driver("nonexistent"); err == nil {
		t.Fatal("unknown driver resolved")
	}
	if platform.ReferenceConfig().String() != rec.Config {
		t.Fatalf("scrub run config label %q", rec.Config)
	}
}
