package core

import (
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/valtest"
)

func TestDeployRecipeEndToEnd(t *testing.T) {
	sys := New()
	if err := sys.RegisterExperiment(legacyDef("H1")); err != nil {
		t.Fatal(err)
	}
	exts := stdSet(t, sys)
	if _, err := sys.Validate("H1", platform.OriginalConfig(), exts, "baseline"); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.MigrateExperiment("H1", sl6(), exts, "SL6 migration")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded {
		t.Fatal("migration did not converge")
	}

	// The production site takes the recipe and certifies the deployment.
	im, rec, err := sys.DeployRecipe("H1", rep.Recipe())
	if err != nil {
		t.Fatal(err)
	}
	if im.Config != sl6() {
		t.Fatalf("image config = %v", im.Config)
	}
	if !rec.Passed() {
		t.Fatal("certification run failed")
	}
	if !strings.Contains(rec.Description, rep.FinalRunID) {
		t.Fatalf("certification description %q does not cite the validating run", rec.Description)
	}
}

func TestDeployRecipeRejectsStaleRepository(t *testing.T) {
	sys := New()
	if err := sys.RegisterExperiment(tinyDef("H1")); err != nil {
		t.Fatal(err)
	}
	recipe := "config: SL5/32bit gcc4.1\nexternals: ROOT-5.34\nsoftware-revision: 99\n"
	if _, _, err := sys.DeployRecipe("H1", recipe); err == nil {
		t.Fatal("recipe from a future revision accepted")
	}
}

func TestDeployRecipeRejectsGarbage(t *testing.T) {
	sys := New()
	if err := sys.RegisterExperiment(tinyDef("H1")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.DeployRecipe("H1", "nonsense"); err == nil {
		t.Fatal("garbage recipe accepted")
	}
	if _, _, err := sys.DeployRecipe("GHOST", "config: SL5/32bit gcc4.1\nexternals: ROOT-5.34\nsoftware-revision: 1\n"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunnerContainsPanickingTest(t *testing.T) {
	// A crashing test executable must become an OutcomeError job, not a
	// framework crash; siblings still run.
	sys := New()
	if err := sys.RegisterExperiment(tinyDef("H1")); err != nil {
		t.Fatal(err)
	}
	st, _ := sys.Experiment("H1")
	st.Suite.MustAdd(&valtest.FuncTest{
		TestName: "standalone/crasher",
		Cat:      valtest.CatStandalone,
		Fn: func(*valtest.Context) valtest.Result {
			panic("segmentation fault (simulated)")
		},
	})
	exts := stdSet(t, sys)
	rec, err := sys.Validate("H1", platform.OriginalConfig(), exts, "with crasher")
	if err != nil {
		t.Fatal(err)
	}
	job, ok := rec.Find("standalone/crasher")
	if !ok {
		t.Fatal("crasher job not recorded")
	}
	if job.Result.Outcome != valtest.OutcomeError {
		t.Fatalf("crasher outcome = %v", job.Result.Outcome)
	}
	if !strings.Contains(job.Result.Detail, "segmentation fault") {
		t.Fatalf("crash detail lost: %q", job.Result.Detail)
	}
	// Every other job ran normally.
	counts := rec.Counts()
	if counts[valtest.OutcomeError] != 1 || counts[valtest.OutcomePass] != len(rec.Jobs)-1 {
		t.Fatalf("counts = %v", counts)
	}
}
