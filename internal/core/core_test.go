package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bookkeep"
	"repro/internal/cron"
	"repro/internal/experiments"
	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/swrepo"
	"repro/internal/vmhost"
)

// tinyDef returns a small, fast experiment definition. Defect and
// legacy rates are zeroed so the baseline is deterministic; tests that
// need failures use legacyDef.
func tinyDef(name string) experiments.Definition {
	spec := swrepo.DefaultSpec(strings.ToLower(name))
	spec.Packages = 12
	spec.LegacyFraction = 0
	spec.DefectRate = 0
	spec.SensitiveFraction = 0
	return experiments.Definition{
		Name:            name,
		Level:           experiments.Level4,
		Seed:            11,
		RepoSpec:        spec,
		Chains:          1,
		ChainEvents:     300,
		StandaloneTests: 10,
	}
}

// legacyDef is tinyDef with legacy idioms and defects switched on, for
// migration tests.
func legacyDef(name string) experiments.Definition {
	d := tinyDef(name)
	d.RepoSpec.LegacyFraction = 0.5
	d.RepoSpec.DefectRate = 0.1
	d.RepoSpec.SensitiveFraction = 0.1
	return d
}

func stdSet(t *testing.T, s *SPSystem) *externals.Set {
	t.Helper()
	exts, err := experiments.StandardSet(s.Catalogue)
	if err != nil {
		t.Fatal(err)
	}
	return exts
}

func sl6() platform.Config {
	return platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
}

func TestRegisterAndValidate(t *testing.T) {
	s := New()
	if err := s.RegisterExperiment(tinyDef("H1")); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterExperiment(tinyDef("H1")); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	exts := stdSet(t, s)
	rec, err := s.Validate("H1", platform.ReferenceConfig(), exts, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Passed() {
		for _, j := range rec.Jobs {
			if !j.Result.Outcome.Passed() {
				t.Logf("failing: %s: %v (%s)", j.Result.Test, j.Result.Outcome, j.Result.Detail)
			}
		}
		t.Fatal("clean baseline did not pass")
	}
	// 12 compile + 7 chain + 10 standalone.
	if len(rec.Jobs) != 29 {
		t.Fatalf("jobs = %d, want 29", len(rec.Jobs))
	}

	rec2, err := s.Validate("H1", platform.ReferenceConfig(), exts, "revalidation")
	if err != nil {
		t.Fatal(err)
	}
	if !rec2.Passed() {
		t.Fatal("revalidation failed")
	}
	if s.Book.TotalRuns() != 2 {
		t.Fatalf("recorded runs = %d", s.Book.TotalRuns())
	}
}

func TestValidateUnknownExperiment(t *testing.T) {
	s := New()
	exts := stdSet(t, s)
	if _, err := s.Validate("NOPE", platform.ReferenceConfig(), exts, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := s.Experiment("NOPE"); err == nil {
		t.Fatal("unknown experiment returned")
	}
}

func TestExperimentsSorted(t *testing.T) {
	s := New()
	_ = s.RegisterExperiment(tinyDef("ZEUS"))
	_ = s.RegisterExperiment(tinyDef("H1"))
	got := s.Experiments()
	if len(got) != 2 || got[0] != "H1" || got[1] != "ZEUS" {
		t.Fatalf("Experiments = %v", got)
	}
}

func TestScheduledValidationWorkflow(t *testing.T) {
	s := New()
	if err := s.RegisterExperiment(tinyDef("H1")); err != nil {
		t.Fatal(err)
	}
	exts := stdSet(t, s)

	im, err := s.ProvisionImage(platform.ReferenceConfig(), exts)
	if err != nil {
		t.Fatal(err)
	}
	client, err := s.AddClient("vm01", vmhost.VM, im.ID, "0 3 * * *")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddClient("vm02", vmhost.VM, im.ID, "not a cron spec"); err == nil {
		t.Fatal("invalid cron spec accepted")
	}

	var sched cron.Scheduler
	var records []*runner.RunRecord
	err = s.ScheduleClient(&sched, client, "H1", func(rec *runner.RunRecord, err error) {
		if err != nil {
			t.Errorf("scheduled run failed: %v", err)
			return
		}
		records = append(records, rec)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two simulated days: the nightly job fires twice.
	until := s.Clock.Now().Add(48 * time.Hour)
	n, err := s.RunScheduled(&sched, until)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(records) != 2 {
		t.Fatalf("firings = %d, records = %d, want 2 each", n, len(records))
	}
	if !s.Clock.Now().Equal(until) {
		t.Fatal("clock not advanced")
	}
	for _, rec := range records {
		if !rec.Passed() {
			t.Fatalf("scheduled run %s failed", rec.RunID)
		}
		if !strings.Contains(rec.Description, "vm01") {
			t.Fatalf("description = %q", rec.Description)
		}
	}
}

func TestMigrationWorkflowEndToEnd(t *testing.T) {
	s := New()
	if err := s.RegisterExperiment(legacyDef("H1")); err != nil {
		t.Fatal(err)
	}
	exts := stdSet(t, s)

	// Baseline on the reference platform.
	base, err := s.Validate("H1", platform.ReferenceConfig(), exts, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if !base.Passed() {
		t.Fatal("baseline failed")
	}

	// SL6 migration: converges with interventions.
	rep, err := s.MigrateExperiment("H1", sl6(), exts, "SL6/64bit migration")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded {
		t.Fatalf("migration did not converge: %+v", rep)
	}
	if rep.TotalInterventions() == 0 {
		t.Fatal("legacy repo migrated with zero interventions")
	}
	st, _ := s.Experiment("H1")
	if st.Repo.Revision <= 1 {
		t.Fatal("interventions did not bump the repository revision")
	}
	if !strings.Contains(rep.Recipe(), "SL6/64bit gcc4.4") {
		t.Fatalf("recipe:\n%s", rep.Recipe())
	}
}

func TestDiagnoseAttribution(t *testing.T) {
	s := New()
	if err := s.RegisterExperiment(legacyDef("H1")); err != nil {
		t.Fatal(err)
	}
	exts := stdSet(t, s)
	if _, err := s.Validate("H1", platform.ReferenceConfig(), exts, "baseline"); err != nil {
		t.Fatal(err)
	}
	// Run directly on SL6 without fixing anything: failures appear.
	rec, err := s.Validate("H1", sl6(), exts, "raw SL6 attempt")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Passed() {
		t.Fatal("legacy repo passed on SL6 without interventions")
	}
	diff, attr, err := s.Diagnose(rec)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Clean() {
		t.Fatal("diagnose found no regressions")
	}
	if attr != bookkeep.AttrOS {
		t.Fatalf("attribution = %v, want os", attr)
	}
}

func TestMatrixAndPublish(t *testing.T) {
	s := New()
	if err := s.RegisterExperiment(tinyDef("H1")); err != nil {
		t.Fatal(err)
	}
	exts := stdSet(t, s)
	if _, err := s.Validate("H1", platform.ReferenceConfig(), exts, "r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Validate("H1", sl6(), exts, "r2"); err != nil {
		t.Fatal(err)
	}
	cells, err := s.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	pages, err := s.PublishReports("sp-system status")
	if err != nil {
		t.Fatal(err)
	}
	if pages != 3 { // index + 2 runs
		t.Fatalf("pages = %d", pages)
	}
}

func TestFreezeWorkflow(t *testing.T) {
	s := New()
	exts := stdSet(t, s)
	im, err := s.ProvisionImage(platform.ReferenceConfig(), exts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Freeze(im.ID); err != nil {
		t.Fatal(err)
	}
	recipe, err := s.Host.FrozenRecipe(im.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(recipe, "compiler: gcc4.1") {
		t.Fatalf("frozen recipe:\n%s", recipe)
	}
}

func TestBuildCacheSharedAcrossRuns(t *testing.T) {
	s := New()
	if err := s.RegisterExperiment(tinyDef("H1")); err != nil {
		t.Fatal(err)
	}
	exts := stdSet(t, s)
	first, err := s.Validate("H1", platform.ReferenceConfig(), exts, "cold")
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Validate("H1", platform.ReferenceConfig(), exts, "warm")
	if err != nil {
		t.Fatal(err)
	}
	// Compile costs collapse on the warm run thanks to the shared cache.
	if second.SerialCost >= first.SerialCost {
		t.Fatalf("warm run cost %v >= cold cost %v", second.SerialCost, first.SerialCost)
	}
}
