// Package core assembles the sp-system: the validation framework for
// the long-term preservation of high-energy-physics data described by
// Ozerov and South (DPHEP / DESY).
//
// SPSystem wires together the framework's parts exactly as Figure 1
// separates its inputs: the experiment-specific software (swrepo), the
// external dependencies (externals) and the operating system/compiler
// (platform) enter independently; the framework builds the software on
// virtual-machine images (vmhost, buildsys), runs the experiments'
// validation suites (valtest, chain, runner) on a cron cadence (cron),
// keeps complete bookkeeping (storage, bookkeep) and publishes status
// pages (report). Migration campaigns (migrate) and long-horizon
// strategy studies (lifetime) build on the same instance.
//
// Typical use:
//
//	sys := core.New()
//	sys.RegisterExperiment(experiments.H1())
//	exts, _ := experiments.StandardSet(sys.Catalogue)
//	rec, _ := sys.Validate("H1", platform.ReferenceConfig(), exts, "baseline")
//	fmt.Println(rec.Passed())
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bookkeep"
	"repro/internal/buildsys"
	"repro/internal/chain"
	"repro/internal/cron"
	"repro/internal/docsys"
	"repro/internal/experiments"
	"repro/internal/externals"
	"repro/internal/hepfile"
	"repro/internal/migrate"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/scrub"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/storage"
	"repro/internal/swrepo"
	"repro/internal/valtest"
	"repro/internal/vmhost"
)

// ExperimentState is a registered experiment: its definition, generated
// software repository and validation suite.
type ExperimentState struct {
	Def   experiments.Definition
	Repo  *swrepo.Repository
	Suite *valtest.Suite
}

// SPSystem is one instance of the validation framework.
type SPSystem struct {
	// Registry catalogues operating systems and compilers.
	Registry *platform.Registry
	// Catalogue holds external software releases.
	Catalogue *externals.Catalogue
	// Store is the common sp-system storage all clients share.
	Store *storage.Store
	// Clock supplies simulated time for job timestamps and scheduling.
	Clock *simclock.Clock
	// Host is the virtual-machine inventory.
	Host *vmhost.Host
	// Runner executes validation suites.
	Runner *runner.Runner
	// Book queries recorded runs.
	Book *bookkeep.Book
	// Builder compiles experiment software (shared build cache).
	Builder *buildsys.Builder
	// Docs is the level 1 documentation archive (Table 1).
	Docs *docsys.Archive

	mu      sync.RWMutex
	exps    map[string]*ExperimentState // guarded by mu
	drivers map[string]valtest.Driver   // guarded by mu
}

// New returns an SPSystem with the paper's platform and external
// catalogues, an empty in-memory common storage and a clock at the 2013
// epoch.
func New() *SPSystem {
	return NewWith(storage.NewStore(), platform.NewRegistry())
}

// NewWith returns an SPSystem recording onto the given common storage —
// which may be the in-memory store or a durable one opened with
// storage.Open — over a custom platform registry. Every component
// (runner, builder, bookkeeping, VM host, docs, reports) shares this
// one store, so pointing it at a disk directory makes the whole
// system's output survive the process: the paper's workflow of
// independent clients sharing common storage.
//
// Simulated time restarts at the 2013 epoch in every process (the
// clock is deliberately not wall-bound or persisted — determinism
// first), so runs appended to a shared store by successive processes
// can carry repeated timestamps. Bookkeeping order is defined by run
// IDs, which are minted from counters persisted in the store itself
// and therefore strictly increase across processes.
func NewWith(store *storage.Store, reg *platform.Registry) *SPSystem {
	clock := simclock.New()
	s := &SPSystem{
		Registry:  reg,
		Catalogue: externals.NewCatalogue(),
		Store:     store,
		Clock:     clock,
		Host:      vmhost.NewHost(store),
		Runner:    runner.New(store, clock),
		Book:      bookkeep.New(store),
		Builder:   buildsys.NewBuilder(reg, store),
		Docs:      docsys.NewArchive(store),
		exps:      make(map[string]*ExperimentState),
		drivers:   make(map[string]valtest.Driver),
	}
	// The two stock drivers every system carries: the in-process
	// platform driver (the default — its runs digest exactly as runs did
	// before the driver seam existed) and the vmhost driver running the
	// same suites on Image-derived clients.
	s.drivers[valtest.DefaultDriverName] = &valtest.PlatformDriver{Builder: s.Builder}
	s.drivers[vmhost.DriverName] = &vmhost.ImageDriver{Host: s.Host, Builder: s.Builder, Now: clock.Now}
	return s
}

// RegisterDriver adds (or replaces) an execution driver under its own
// Name. Fault-injection wrappers register here so campaign cells can
// select them by name.
func (s *SPSystem) RegisterDriver(d valtest.Driver) {
	s.mu.Lock()
	s.drivers[d.Name()] = d
	s.mu.Unlock()
}

// Driver resolves a driver name; the empty string is the default
// in-process platform driver.
func (s *SPSystem) Driver(name string) (valtest.Driver, error) {
	if name == "" {
		name = valtest.DefaultDriverName
	}
	s.mu.RLock()
	d, ok := s.drivers[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: no driver %q registered", name)
	}
	return d, nil
}

// NewWithRegistry returns an SPSystem over a custom platform registry
// (e.g. lifetime.ExtendedRegistry for long-horizon studies).
func NewWithRegistry(reg *platform.Registry) *SPSystem {
	return NewWith(storage.NewStore(), reg)
}

// NewHERA returns an SPSystem over the store with every HERA experiment
// registered; quick scales workloads down via experiments.QuickScale.
// This is the one constructor every front end sharing a store must use:
// registration (order, definitions, scaling) feeds the suite
// fingerprints and hence the input digests, so two processes building
// their systems differently would disagree about which recorded cells
// are up-to-date.
func NewHERA(store *storage.Store, quick bool) (*SPSystem, error) {
	sys := NewWith(store, platform.NewRegistry())
	for _, def := range experiments.All() {
		if quick {
			def = experiments.QuickScale(def)
		}
		if err := sys.RegisterExperiment(def); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// RegisterExperiment generates the experiment's software repository and
// validation suite and adds it to the system.
func (s *SPSystem) RegisterExperiment(def experiments.Definition) error {
	// Cheap pre-check before the expensive generation; the authoritative
	// check below runs under the write lock.
	s.mu.RLock()
	_, dup := s.exps[def.Name]
	s.mu.RUnlock()
	if dup {
		return fmt.Errorf("core: experiment %q already registered", def.Name)
	}
	repo, err := swrepo.Generate(def.RepoSpec, simrand.New(def.Seed))
	if err != nil {
		return fmt.Errorf("core: generating %s repository: %w", def.Name, err)
	}
	suite, err := def.BuildSuite(repo)
	if err != nil {
		return fmt.Errorf("core: building %s suite: %w", def.Name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.exps[def.Name]; dup {
		return fmt.Errorf("core: experiment %q already registered", def.Name)
	}
	s.exps[def.Name] = &ExperimentState{Def: def, Repo: repo, Suite: suite}
	return nil
}

// Experiment returns a registered experiment's state.
func (s *SPSystem) Experiment(name string) (*ExperimentState, error) {
	s.mu.RLock()
	st, ok := s.exps[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: experiment %q not registered", name)
	}
	return st, nil
}

// Experiments returns registered experiment names, sorted.
func (s *SPSystem) Experiments() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.exps))
	for name := range s.exps {
		out = append(out, name)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ProvisionImage builds and registers a VM image for the configuration
// and externals at the current simulated time.
func (s *SPSystem) ProvisionImage(cfg platform.Config, exts *externals.Set) (*vmhost.Image, error) {
	im, err := vmhost.BuildImage(s.Registry, cfg, exts, s.Clock.Now())
	if err != nil {
		return nil, err
	}
	if err := s.Host.AddImage(im); err != nil {
		return nil, err
	}
	return im, nil
}

// AddClient boots a client machine from an image. Per the paper, the
// only requirements are common-storage access (implicit in the host)
// and a cron specification.
func (s *SPSystem) AddClient(name string, kind vmhost.ClientKind, imageID, cronSpec string) (*vmhost.Client, error) {
	if _, err := cron.Parse(cronSpec); err != nil {
		return nil, fmt.Errorf("core: client %q: %w", name, err)
	}
	return s.Host.Boot(name, kind, imageID, cronSpec)
}

// Validate performs one full validation run of the experiment on the
// configuration: build every package, then run the experiment's suite,
// recording everything under a fresh run ID. This is the paper's
// "regular build of the experimental software ... according to the
// current prescription of the working environment" plus its validation
// tests.
//
// Validate is safe to call concurrently: the store, runner, builder and
// clock are all thread-safe, and identical concurrent builds are
// deduplicated by the builder. The one caveat is MigrateExperiment,
// which mutates the experiment's software repository between runs —
// callers running a mixed workload must order same-experiment work so a
// migration never overlaps other runs of that experiment (the campaign
// engine in internal/campaign does exactly this).
func (s *SPSystem) Validate(experiment string, cfg platform.Config, exts *externals.Set, tag string) (*runner.RunRecord, error) {
	return s.ValidateDriver("", experiment, cfg, exts, tag)
}

// ValidateDriver is Validate on a named execution driver: the driver
// provisions the environment (for the platform driver, a software
// build; for the vmhost driver, an image plus a booted client), the
// runner schedules the suite through the driver's RunTest/Collect seam,
// and the record lands in the common bookkeeping like any other run.
// The empty name selects the default platform driver and behaves —
// record for record, digest for digest — exactly as Validate always
// has.
func (s *SPSystem) ValidateDriver(driver, experiment string, cfg platform.Config, exts *externals.Set, tag string) (*runner.RunRecord, error) {
	st, err := s.Experiment(experiment)
	if err != nil {
		return nil, err
	}
	drv, err := s.Driver(driver)
	if err != nil {
		return nil, err
	}
	ctx, err := drv.Provision(valtest.ProvisionRequest{
		Suite:     st.Suite,
		Config:    cfg,
		Externals: exts,
		Repo:      st.Repo,
		Registry:  s.Registry,
		Store:     s.Store,
	})
	if err != nil {
		return nil, fmt.Errorf("core: provisioning %s on driver %s: %w", experiment, drv.Name(), err)
	}
	return s.Runner.RunWith(drv, st.Suite, ctx, tag)
}

// CellDigest returns the content-addressed input digest a validation of
// the experiment on (cfg, exts) would record right now: the experiment's
// suite definition and current repository revision plus the cell's
// configuration and externals, hashed by runner.InputDigest. The
// campaign planner diffs these desired digests against the recorded
// bookkeeping to decide which cells actually need re-validation.
func (s *SPSystem) CellDigest(experiment string, cfg platform.Config, exts *externals.Set) (string, error) {
	return s.CellDigestDriver(experiment, cfg, exts, "")
}

// CellDigestDriver is CellDigest for a cell bound to a named driver.
// The empty name and the default platform driver yield digests
// byte-identical to CellDigest — recorded pre-seam cells never go
// stale — while any other driver folds its name in, keeping hosted and
// fault-injected runs from satisfying platform cells.
func (s *SPSystem) CellDigestDriver(experiment string, cfg platform.Config, exts *externals.Set, driver string) (string, error) {
	st, err := s.Experiment(experiment)
	if err != nil {
		return "", err
	}
	if driver == valtest.DefaultDriverName {
		driver = ""
	}
	return runner.InputDigestDriver(st.Suite, st.Repo.Revision, cfg, exts, driver), nil
}

// RunFunc adapts Validate for the migration planner.
func (s *SPSystem) RunFunc(experiment string) migrate.RunFunc {
	return func(cfg platform.Config, exts *externals.Set, tag string) (*runner.RunRecord, error) {
		return s.Validate(experiment, cfg, exts, tag)
	}
}

// Planner returns a migration planner bound to the experiment.
func (s *SPSystem) Planner(experiment string) (*migrate.Planner, error) {
	st, err := s.Experiment(experiment)
	if err != nil {
		return nil, err
	}
	return &migrate.Planner{
		Repo:     st.Repo,
		Registry: s.Registry,
		Book:     s.Book,
		Run:      s.RunFunc(experiment),
	}, nil
}

// MigrateExperiment runs an adapt-and-validate campaign moving the
// experiment to the target configuration and externals.
func (s *SPSystem) MigrateExperiment(experiment string, target platform.Config, exts *externals.Set, tag string) (*migrate.Report, error) {
	p, err := s.Planner(experiment)
	if err != nil {
		return nil, err
	}
	return p.Migrate(target, exts, tag)
}

// Diagnose examines a failed run the way the paper prescribes: diff
// against the last successful run and attribute the regressions.
func (s *SPSystem) Diagnose(rec *runner.RunRecord) (*bookkeep.Diff, bookkeep.Attribution, error) {
	diff, err := s.Book.DiffAgainstLastSuccess(rec)
	if err != nil {
		return nil, bookkeep.AttrNone, err
	}
	return diff, bookkeep.Classify(diff), nil
}

// Matrix returns the current Figure 3 status matrix. It is answered
// from a bookkeeping index — accelerated by the store's persisted index
// segment when one exists — rather than a full record rescan, so the
// cost scales with what changed since the segment, not with the length
// of the recorded history. The index and the rescanning Book produce
// identical matrices (property-tested).
func (s *SPSystem) Matrix() ([]bookkeep.Cell, error) {
	x, err := bookkeep.BuildIndex(s.Store)
	if err != nil {
		return nil, err
	}
	return x.Matrix(), nil
}

// PublishReports regenerates the status web pages onto the common
// storage and returns the number of pages the site comprises. Publish
// cost is O(what changed): already-stored run pages are skipped without
// being loaded or rendered. Afterwards the bookkeeping index is
// persisted as the store's index segment, so any later process —
// another CLI run, spserve, the next daemon cycle — indexes the store
// by decoding one segment plus the records recorded since, instead of
// every record ever written.
func (s *SPSystem) PublishReports(title string) (int, error) {
	x, err := bookkeep.BuildIndex(s.Store)
	if err != nil {
		return 0, err
	}
	stats, err := report.PublishSiteIndexed(s.Store, x, title)
	if err != nil {
		return stats.Pages, err
	}
	if err := x.SaveSegment(s.Store); err != nil {
		return stats.Pages, err
	}
	return stats.Pages, nil
}

// Scrub runs one archive-wide integrity pass on the default platform
// driver: every blob in the common storage is re-read and re-hashed, in
// pages of pageSize (scrub.DefaultPageSize if < 1), and the verdicts
// are recorded as an ordinary run under the SCRUB experiment — indexed,
// diffable and served like any validation. This is the DPHEP
// bit-preservation duty made a first-class workload.
func (s *SPSystem) Scrub(pageSize int, tag string) (*runner.RunRecord, error) {
	return s.ScrubDriver("", pageSize, tag)
}

// ScrubDriver is Scrub on a named driver — the seam that lets a
// fault-injection wrapper (or a hosted client) scrub the same archive.
// The suite is built from the system store's blob listing either way;
// the driver chooses which store view the page reads actually hit.
func (s *SPSystem) ScrubDriver(driver string, pageSize int, tag string) (*runner.RunRecord, error) {
	suite, err := scrub.BuildSuite(s.Store, pageSize)
	if err != nil {
		return nil, err
	}
	drv, err := s.Driver(driver)
	if err != nil {
		return nil, err
	}
	ctx, err := drv.Provision(valtest.ProvisionRequest{
		Suite:     suite,
		Config:    platform.ReferenceConfig(),
		Externals: &externals.Set{},
		Registry:  s.Registry,
		Store:     s.Store,
	})
	if err != nil {
		return nil, fmt.Errorf("core: provisioning scrub on driver %s: %w", drv.Name(), err)
	}
	return s.Runner.RunWith(drv, suite, ctx, tag)
}

// Freeze conserves an image at the current simulated time — the final
// phase of the paper's workflow.
func (s *SPSystem) Freeze(imageID string) error {
	return s.Host.Freeze(imageID, s.Clock.Now())
}

// ScheduleClient registers the client's periodic validation job on the
// scheduler: at each cron firing, the client validates the experiment on
// its image's configuration. The optional onRun callback observes each
// run's record.
func (s *SPSystem) ScheduleClient(sched *cron.Scheduler, client *vmhost.Client, experiment string, onRun func(*runner.RunRecord, error)) error {
	if _, err := s.Experiment(experiment); err != nil {
		return err
	}
	return sched.Add(client.Name, client.CronSpec, func(at time.Time) {
		rec, err := s.Validate(experiment, client.Image.Config, client.Image.Externals,
			fmt.Sprintf("cron %s on %s", experiment, client.Name))
		if onRun != nil {
			onRun(rec, err)
		}
	})
}

// RunScheduled fires every scheduled job due between the current
// simulated time and `until`, then advances the clock there. It returns
// the number of firings.
func (s *SPSystem) RunScheduled(sched *cron.Scheduler, until time.Time) (int, error) {
	n, err := sched.RunWindow(s.Clock.Now(), until)
	if err != nil {
		return n, err
	}
	s.Clock.AdvanceTo(until)
	return n, nil
}

// DeployRecipe takes a validated recipe (migrate.Report.Recipe), rebuilds
// its environment as a VM image, and re-runs the experiment's full
// validation on it — the certification a production site performs before
// trusting a deployed recipe. It returns the image and the certification
// run, with an error if the run does not pass.
func (s *SPSystem) DeployRecipe(experiment, recipeText string) (*vmhost.Image, *runner.RunRecord, error) {
	st, err := s.Experiment(experiment)
	if err != nil {
		return nil, nil, err
	}
	pr, err := migrate.ParseRecipe(recipeText)
	if err != nil {
		return nil, nil, err
	}
	if st.Repo.Revision < pr.Revision {
		return nil, nil, fmt.Errorf("core: recipe was validated at revision %d but the %s repository is at %d — apply the recipe's patches first",
			pr.Revision, experiment, st.Repo.Revision)
	}
	exts, err := pr.ResolveExternals(s.Catalogue)
	if err != nil {
		return nil, nil, err
	}
	im, err := s.ProvisionImage(pr.Config, exts)
	if err != nil {
		return nil, nil, err
	}
	rec, err := s.Validate(experiment, pr.Config, exts, fmt.Sprintf("deployment certification of %s", pr.ValidatedBy))
	if err != nil {
		return nil, nil, err
	}
	if !rec.Passed() {
		return im, rec, fmt.Errorf("core: deployment certification %s failed — recipe not reproducible on this site", rec.RunID)
	}
	return im, rec, nil
}

// ExportLevel2 reads the HAT-level file a recorded run produced for the
// named chain and writes DPHEP level 2 exports (self-describing CSV and
// JSON, Table 1's "outreach, simple training analyses" use case) onto
// the common storage, returning their keys in the "level2" namespace.
func (s *SPSystem) ExportLevel2(experiment, runID, chainName string) (csvKey, jsonKey string, err error) {
	if _, err := s.Experiment(experiment); err != nil {
		return "", "", err
	}
	hatKey := runID + "/" + chainName + "/" + hepfile.HAT.String()
	data, err := s.Store.Get(chain.FilesNS, hatKey)
	if err != nil {
		return "", "", fmt.Errorf("core: no HAT file for run %s chain %s: %w", runID, chainName, err)
	}
	sums, err := hepfile.ReadSummaries(data)
	if err != nil {
		return "", "", err
	}
	description := fmt.Sprintf("%s %s from %s", experiment, chainName, runID)
	csvData, err := docsys.ExportCSV(sums)
	if err != nil {
		return "", "", err
	}
	jsonData, err := docsys.ExportJSON(experiment, description, sums)
	if err != nil {
		return "", "", err
	}
	csvKey = runID + "/" + chainName + ".csv"
	jsonKey = runID + "/" + chainName + ".json"
	if _, err := s.Store.Put("level2", csvKey, csvData); err != nil {
		return "", "", err
	}
	if _, err := s.Store.Put("level2", jsonKey, jsonData); err != nil {
		return "", "", err
	}
	return csvKey, jsonKey, nil
}
