// Package core assembles the sp-system: the validation framework for
// the long-term preservation of high-energy-physics data described by
// Ozerov and South (DPHEP / DESY).
//
// SPSystem wires together the framework's parts exactly as Figure 1
// separates its inputs: the experiment-specific software (swrepo), the
// external dependencies (externals) and the operating system/compiler
// (platform) enter independently; the framework builds the software on
// virtual-machine images (vmhost, buildsys), runs the experiments'
// validation suites (valtest, chain, runner) on a cron cadence (cron),
// keeps complete bookkeeping (storage, bookkeep) and publishes status
// pages (report). Migration campaigns (migrate) and long-horizon
// strategy studies (lifetime) build on the same instance.
//
// Typical use:
//
//	sys := core.New()
//	sys.RegisterExperiment(experiments.H1())
//	exts, _ := experiments.StandardSet(sys.Catalogue)
//	rec, _ := sys.Validate("H1", platform.ReferenceConfig(), exts, "baseline")
//	fmt.Println(rec.Passed())
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bookkeep"
	"repro/internal/buildsys"
	"repro/internal/chain"
	"repro/internal/cron"
	"repro/internal/docsys"
	"repro/internal/experiments"
	"repro/internal/externals"
	"repro/internal/hepfile"
	"repro/internal/migrate"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/storage"
	"repro/internal/swrepo"
	"repro/internal/valtest"
	"repro/internal/vmhost"
)

// ExperimentState is a registered experiment: its definition, generated
// software repository and validation suite.
type ExperimentState struct {
	Def   experiments.Definition
	Repo  *swrepo.Repository
	Suite *valtest.Suite
}

// SPSystem is one instance of the validation framework.
type SPSystem struct {
	// Registry catalogues operating systems and compilers.
	Registry *platform.Registry
	// Catalogue holds external software releases.
	Catalogue *externals.Catalogue
	// Store is the common sp-system storage all clients share.
	Store *storage.Store
	// Clock supplies simulated time for job timestamps and scheduling.
	Clock *simclock.Clock
	// Host is the virtual-machine inventory.
	Host *vmhost.Host
	// Runner executes validation suites.
	Runner *runner.Runner
	// Book queries recorded runs.
	Book *bookkeep.Book
	// Builder compiles experiment software (shared build cache).
	Builder *buildsys.Builder
	// Docs is the level 1 documentation archive (Table 1).
	Docs *docsys.Archive

	mu   sync.RWMutex
	exps map[string]*ExperimentState // guarded by mu
}

// New returns an SPSystem with the paper's platform and external
// catalogues, an empty in-memory common storage and a clock at the 2013
// epoch.
func New() *SPSystem {
	return NewWith(storage.NewStore(), platform.NewRegistry())
}

// NewWith returns an SPSystem recording onto the given common storage —
// which may be the in-memory store or a durable one opened with
// storage.Open — over a custom platform registry. Every component
// (runner, builder, bookkeeping, VM host, docs, reports) shares this
// one store, so pointing it at a disk directory makes the whole
// system's output survive the process: the paper's workflow of
// independent clients sharing common storage.
//
// Simulated time restarts at the 2013 epoch in every process (the
// clock is deliberately not wall-bound or persisted — determinism
// first), so runs appended to a shared store by successive processes
// can carry repeated timestamps. Bookkeeping order is defined by run
// IDs, which are minted from counters persisted in the store itself
// and therefore strictly increase across processes.
func NewWith(store *storage.Store, reg *platform.Registry) *SPSystem {
	clock := simclock.New()
	return &SPSystem{
		Registry:  reg,
		Catalogue: externals.NewCatalogue(),
		Store:     store,
		Clock:     clock,
		Host:      vmhost.NewHost(store),
		Runner:    runner.New(store, clock),
		Book:      bookkeep.New(store),
		Builder:   buildsys.NewBuilder(reg, store),
		Docs:      docsys.NewArchive(store),
		exps:      make(map[string]*ExperimentState),
	}
}

// NewWithRegistry returns an SPSystem over a custom platform registry
// (e.g. lifetime.ExtendedRegistry for long-horizon studies).
func NewWithRegistry(reg *platform.Registry) *SPSystem {
	return NewWith(storage.NewStore(), reg)
}

// NewHERA returns an SPSystem over the store with every HERA experiment
// registered; quick scales workloads down via experiments.QuickScale.
// This is the one constructor every front end sharing a store must use:
// registration (order, definitions, scaling) feeds the suite
// fingerprints and hence the input digests, so two processes building
// their systems differently would disagree about which recorded cells
// are up-to-date.
func NewHERA(store *storage.Store, quick bool) (*SPSystem, error) {
	sys := NewWith(store, platform.NewRegistry())
	for _, def := range experiments.All() {
		if quick {
			def = experiments.QuickScale(def)
		}
		if err := sys.RegisterExperiment(def); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// RegisterExperiment generates the experiment's software repository and
// validation suite and adds it to the system.
func (s *SPSystem) RegisterExperiment(def experiments.Definition) error {
	// Cheap pre-check before the expensive generation; the authoritative
	// check below runs under the write lock.
	s.mu.RLock()
	_, dup := s.exps[def.Name]
	s.mu.RUnlock()
	if dup {
		return fmt.Errorf("core: experiment %q already registered", def.Name)
	}
	repo, err := swrepo.Generate(def.RepoSpec, simrand.New(def.Seed))
	if err != nil {
		return fmt.Errorf("core: generating %s repository: %w", def.Name, err)
	}
	suite, err := def.BuildSuite(repo)
	if err != nil {
		return fmt.Errorf("core: building %s suite: %w", def.Name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.exps[def.Name]; dup {
		return fmt.Errorf("core: experiment %q already registered", def.Name)
	}
	s.exps[def.Name] = &ExperimentState{Def: def, Repo: repo, Suite: suite}
	return nil
}

// Experiment returns a registered experiment's state.
func (s *SPSystem) Experiment(name string) (*ExperimentState, error) {
	s.mu.RLock()
	st, ok := s.exps[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: experiment %q not registered", name)
	}
	return st, nil
}

// Experiments returns registered experiment names, sorted.
func (s *SPSystem) Experiments() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.exps))
	for name := range s.exps {
		out = append(out, name)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ProvisionImage builds and registers a VM image for the configuration
// and externals at the current simulated time.
func (s *SPSystem) ProvisionImage(cfg platform.Config, exts *externals.Set) (*vmhost.Image, error) {
	im, err := vmhost.BuildImage(s.Registry, cfg, exts, s.Clock.Now())
	if err != nil {
		return nil, err
	}
	if err := s.Host.AddImage(im); err != nil {
		return nil, err
	}
	return im, nil
}

// AddClient boots a client machine from an image. Per the paper, the
// only requirements are common-storage access (implicit in the host)
// and a cron specification.
func (s *SPSystem) AddClient(name string, kind vmhost.ClientKind, imageID, cronSpec string) (*vmhost.Client, error) {
	if _, err := cron.Parse(cronSpec); err != nil {
		return nil, fmt.Errorf("core: client %q: %w", name, err)
	}
	return s.Host.Boot(name, kind, imageID, cronSpec)
}

// context assembles the execution context for a validation run.
func (s *SPSystem) context(st *ExperimentState, cfg platform.Config, exts *externals.Set, build *buildsys.Result) *valtest.Context {
	return &valtest.Context{
		Store: s.Store,
		Env: storage.Env{
			storage.EnvConfig:    cfg.String(),
			storage.EnvExternals: exts.String(),
		},
		Config:    cfg,
		Registry:  s.Registry,
		Externals: exts,
		Repo:      st.Repo,
		Build:     build,
	}
}

// Validate performs one full validation run of the experiment on the
// configuration: build every package, then run the experiment's suite,
// recording everything under a fresh run ID. This is the paper's
// "regular build of the experimental software ... according to the
// current prescription of the working environment" plus its validation
// tests.
//
// Validate is safe to call concurrently: the store, runner, builder and
// clock are all thread-safe, and identical concurrent builds are
// deduplicated by the builder. The one caveat is MigrateExperiment,
// which mutates the experiment's software repository between runs —
// callers running a mixed workload must order same-experiment work so a
// migration never overlaps other runs of that experiment (the campaign
// engine in internal/campaign does exactly this).
func (s *SPSystem) Validate(experiment string, cfg platform.Config, exts *externals.Set, tag string) (*runner.RunRecord, error) {
	st, err := s.Experiment(experiment)
	if err != nil {
		return nil, err
	}
	build, err := s.Builder.Build(st.Repo, cfg, exts)
	if err != nil {
		return nil, err
	}
	return s.Runner.Run(st.Suite, s.context(st, cfg, exts, build), tag)
}

// CellDigest returns the content-addressed input digest a validation of
// the experiment on (cfg, exts) would record right now: the experiment's
// suite definition and current repository revision plus the cell's
// configuration and externals, hashed by runner.InputDigest. The
// campaign planner diffs these desired digests against the recorded
// bookkeeping to decide which cells actually need re-validation.
func (s *SPSystem) CellDigest(experiment string, cfg platform.Config, exts *externals.Set) (string, error) {
	st, err := s.Experiment(experiment)
	if err != nil {
		return "", err
	}
	return runner.InputDigest(st.Suite, st.Repo.Revision, cfg, exts), nil
}

// RunFunc adapts Validate for the migration planner.
func (s *SPSystem) RunFunc(experiment string) migrate.RunFunc {
	return func(cfg platform.Config, exts *externals.Set, tag string) (*runner.RunRecord, error) {
		return s.Validate(experiment, cfg, exts, tag)
	}
}

// Planner returns a migration planner bound to the experiment.
func (s *SPSystem) Planner(experiment string) (*migrate.Planner, error) {
	st, err := s.Experiment(experiment)
	if err != nil {
		return nil, err
	}
	return &migrate.Planner{
		Repo:     st.Repo,
		Registry: s.Registry,
		Book:     s.Book,
		Run:      s.RunFunc(experiment),
	}, nil
}

// MigrateExperiment runs an adapt-and-validate campaign moving the
// experiment to the target configuration and externals.
func (s *SPSystem) MigrateExperiment(experiment string, target platform.Config, exts *externals.Set, tag string) (*migrate.Report, error) {
	p, err := s.Planner(experiment)
	if err != nil {
		return nil, err
	}
	return p.Migrate(target, exts, tag)
}

// Diagnose examines a failed run the way the paper prescribes: diff
// against the last successful run and attribute the regressions.
func (s *SPSystem) Diagnose(rec *runner.RunRecord) (*bookkeep.Diff, bookkeep.Attribution, error) {
	diff, err := s.Book.DiffAgainstLastSuccess(rec)
	if err != nil {
		return nil, bookkeep.AttrNone, err
	}
	return diff, bookkeep.Classify(diff), nil
}

// Matrix returns the current Figure 3 status matrix. It is answered
// from a bookkeeping index — accelerated by the store's persisted index
// segment when one exists — rather than a full record rescan, so the
// cost scales with what changed since the segment, not with the length
// of the recorded history. The index and the rescanning Book produce
// identical matrices (property-tested).
func (s *SPSystem) Matrix() ([]bookkeep.Cell, error) {
	x, err := bookkeep.BuildIndex(s.Store)
	if err != nil {
		return nil, err
	}
	return x.Matrix(), nil
}

// PublishReports regenerates the status web pages onto the common
// storage and returns the number of pages the site comprises. Publish
// cost is O(what changed): already-stored run pages are skipped without
// being loaded or rendered. Afterwards the bookkeeping index is
// persisted as the store's index segment, so any later process —
// another CLI run, spserve, the next daemon cycle — indexes the store
// by decoding one segment plus the records recorded since, instead of
// every record ever written.
func (s *SPSystem) PublishReports(title string) (int, error) {
	x, err := bookkeep.BuildIndex(s.Store)
	if err != nil {
		return 0, err
	}
	stats, err := report.PublishSiteIndexed(s.Store, x, title)
	if err != nil {
		return stats.Pages, err
	}
	if err := x.SaveSegment(s.Store); err != nil {
		return stats.Pages, err
	}
	return stats.Pages, nil
}

// Freeze conserves an image at the current simulated time — the final
// phase of the paper's workflow.
func (s *SPSystem) Freeze(imageID string) error {
	return s.Host.Freeze(imageID, s.Clock.Now())
}

// ScheduleClient registers the client's periodic validation job on the
// scheduler: at each cron firing, the client validates the experiment on
// its image's configuration. The optional onRun callback observes each
// run's record.
func (s *SPSystem) ScheduleClient(sched *cron.Scheduler, client *vmhost.Client, experiment string, onRun func(*runner.RunRecord, error)) error {
	if _, err := s.Experiment(experiment); err != nil {
		return err
	}
	return sched.Add(client.Name, client.CronSpec, func(at time.Time) {
		rec, err := s.Validate(experiment, client.Image.Config, client.Image.Externals,
			fmt.Sprintf("cron %s on %s", experiment, client.Name))
		if onRun != nil {
			onRun(rec, err)
		}
	})
}

// RunScheduled fires every scheduled job due between the current
// simulated time and `until`, then advances the clock there. It returns
// the number of firings.
func (s *SPSystem) RunScheduled(sched *cron.Scheduler, until time.Time) (int, error) {
	n, err := sched.RunWindow(s.Clock.Now(), until)
	if err != nil {
		return n, err
	}
	s.Clock.AdvanceTo(until)
	return n, nil
}

// DeployRecipe takes a validated recipe (migrate.Report.Recipe), rebuilds
// its environment as a VM image, and re-runs the experiment's full
// validation on it — the certification a production site performs before
// trusting a deployed recipe. It returns the image and the certification
// run, with an error if the run does not pass.
func (s *SPSystem) DeployRecipe(experiment, recipeText string) (*vmhost.Image, *runner.RunRecord, error) {
	st, err := s.Experiment(experiment)
	if err != nil {
		return nil, nil, err
	}
	pr, err := migrate.ParseRecipe(recipeText)
	if err != nil {
		return nil, nil, err
	}
	if st.Repo.Revision < pr.Revision {
		return nil, nil, fmt.Errorf("core: recipe was validated at revision %d but the %s repository is at %d — apply the recipe's patches first",
			pr.Revision, experiment, st.Repo.Revision)
	}
	exts, err := pr.ResolveExternals(s.Catalogue)
	if err != nil {
		return nil, nil, err
	}
	im, err := s.ProvisionImage(pr.Config, exts)
	if err != nil {
		return nil, nil, err
	}
	rec, err := s.Validate(experiment, pr.Config, exts, fmt.Sprintf("deployment certification of %s", pr.ValidatedBy))
	if err != nil {
		return nil, nil, err
	}
	if !rec.Passed() {
		return im, rec, fmt.Errorf("core: deployment certification %s failed — recipe not reproducible on this site", rec.RunID)
	}
	return im, rec, nil
}

// ExportLevel2 reads the HAT-level file a recorded run produced for the
// named chain and writes DPHEP level 2 exports (self-describing CSV and
// JSON, Table 1's "outreach, simple training analyses" use case) onto
// the common storage, returning their keys in the "level2" namespace.
func (s *SPSystem) ExportLevel2(experiment, runID, chainName string) (csvKey, jsonKey string, err error) {
	if _, err := s.Experiment(experiment); err != nil {
		return "", "", err
	}
	hatKey := runID + "/" + chainName + "/" + hepfile.HAT.String()
	data, err := s.Store.Get(chain.FilesNS, hatKey)
	if err != nil {
		return "", "", fmt.Errorf("core: no HAT file for run %s chain %s: %w", runID, chainName, err)
	}
	sums, err := hepfile.ReadSummaries(data)
	if err != nil {
		return "", "", err
	}
	description := fmt.Sprintf("%s %s from %s", experiment, chainName, runID)
	csvData, err := docsys.ExportCSV(sums)
	if err != nil {
		return "", "", err
	}
	jsonData, err := docsys.ExportJSON(experiment, description, sums)
	if err != nil {
		return "", "", err
	}
	csvKey = runID + "/" + chainName + ".csv"
	jsonKey = runID + "/" + chainName + ".json"
	if _, err := s.Store.Put("level2", csvKey, csvData); err != nil {
		return "", "", err
	}
	if _, err := s.Store.Put("level2", jsonKey, jsonData); err != nil {
		return "", "", err
	}
	return csvKey, jsonKey, nil
}
