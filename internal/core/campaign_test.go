package core

import (
	"strings"
	"testing"

	"repro/internal/bookkeep"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/storage"
)

// TestFullCampaignIntegration drives the whole paper workflow for two
// experiments across the full paper configuration matrix, then exercises
// the bookkeeping queries, report generation, freeze and storage
// snapshot/restore — the closest thing to the real 2013 campaign this
// reproduction runs in CI.
func TestFullCampaignIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	sys := New()
	for _, name := range []string{"H1", "ZEUS"} {
		def := legacyDef(name)
		def.Seed += uint64(len(name)) // distinct repos
		if err := sys.RegisterExperiment(def); err != nil {
			t.Fatal(err)
		}
	}
	exts := stdSet(t, sys)

	// Phase 1: baselines on the experiments' original platform.
	for _, exp := range sys.Experiments() {
		rec, err := sys.Validate(exp, platform.OriginalConfig(), exts, "baseline capture")
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Passed() {
			t.Fatalf("%s baseline failed", exp)
		}
	}

	// Phase 2: adapt-and-validate over the remaining paper configs.
	totalInterventions := 0
	for _, cfg := range platform.PaperConfigs() {
		if cfg == platform.OriginalConfig() {
			continue
		}
		for _, exp := range sys.Experiments() {
			rep, err := sys.MigrateExperiment(exp, cfg, exts, "campaign "+cfg.String())
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Succeeded {
				t.Fatalf("%s on %v did not converge", exp, cfg)
			}
			totalInterventions += rep.TotalInterventions()
		}
	}
	if totalInterventions == 0 {
		t.Fatal("legacy campaign needed no interventions — hazard model inert")
	}

	// The matrix covers every (experiment, config) pair and is green.
	cells, err := sys.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*len(platform.PaperConfigs()) {
		t.Fatalf("cells = %d, want %d", len(cells), 2*len(platform.PaperConfigs()))
	}
	for _, c := range cells {
		if !c.Healthy() {
			t.Errorf("cell %s/%s not healthy after campaign", c.Experiment, c.Config)
		}
	}

	// Bookkeeping queries work across the accumulated history.
	flaky, err := sys.Book.FlakyTests("H1")
	if err != nil {
		t.Fatal(err)
	}
	if len(flaky) != 0 {
		t.Fatalf("deterministic campaign produced flaky tests: %v", flaky)
	}
	st, _ := sys.Experiment("H1")
	someTest := "compile/" + st.Repo.Packages()[0].Name
	history, err := sys.Book.History("H1", someTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(history) < len(platform.PaperConfigs()) {
		t.Fatalf("history of %s has %d entries", someTest, len(history))
	}

	// Reports publish; the site names both experiments.
	if _, err := sys.PublishReports("campaign"); err != nil {
		t.Fatal(err)
	}
	index, err := sys.Store.Get(report.WebNS, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	for _, exp := range []string{"H1", "ZEUS"} {
		if !strings.Contains(string(index), exp) {
			t.Errorf("index missing %s", exp)
		}
	}

	// Final phase: freeze the last validated image and snapshot storage.
	im, err := sys.ProvisionImage(platform.PaperConfigs()[4], exts) // SL6/64
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Freeze(im.ID); err != nil {
		t.Fatal(err)
	}

	snap, err := sys.Store.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := storage.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	// The restored archive still answers bookkeeping queries.
	book := bookkeep.New(restored)
	if book.TotalRuns() != sys.Book.TotalRuns() {
		t.Fatalf("restored runs = %d, want %d", book.TotalRuns(), sys.Book.TotalRuns())
	}
	cells2, err := book.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells2) != len(cells) {
		t.Fatalf("restored matrix = %d cells", len(cells2))
	}
}

// TestMultiExperimentIsolation checks that two experiments sharing the
// sp-system do not interfere: separate repositories, references and
// histories.
func TestMultiExperimentIsolation(t *testing.T) {
	sys := New()
	a, b := tinyDef("EXPA"), tinyDef("EXPB")
	b.Seed = 999 // different software
	if err := sys.RegisterExperiment(a); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterExperiment(b); err != nil {
		t.Fatal(err)
	}
	exts := stdSet(t, sys)
	recA, err := sys.Validate("EXPA", platform.ReferenceConfig(), exts, "a")
	if err != nil {
		t.Fatal(err)
	}
	recB, err := sys.Validate("EXPB", platform.ReferenceConfig(), exts, "b")
	if err != nil {
		t.Fatal(err)
	}
	if !recA.Passed() || !recB.Passed() {
		t.Fatal("isolated baselines failed")
	}
	// Each experiment's history sees only its own runs.
	runsA, _ := sys.Book.RunsFor("EXPA", "")
	runsB, _ := sys.Book.RunsFor("EXPB", "")
	if len(runsA) != 1 || len(runsB) != 1 {
		t.Fatalf("runs: A=%d B=%d", len(runsA), len(runsB))
	}
	// References are namespaced per experiment.
	refsA, refsB := 0, 0
	for _, key := range sys.Store.List("refs") {
		switch {
		case strings.HasPrefix(key, "EXPA/"):
			refsA++
		case strings.HasPrefix(key, "EXPB/"):
			refsB++
		}
	}
	if refsA == 0 || refsB == 0 {
		t.Fatalf("references not established per experiment: A=%d B=%d", refsA, refsB)
	}
}
