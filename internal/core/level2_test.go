package core

import (
	"strings"
	"testing"

	"repro/internal/docsys"
	"repro/internal/platform"
)

func TestExportLevel2FromRecordedRun(t *testing.T) {
	sys := New()
	if err := sys.RegisterExperiment(tinyDef("H1")); err != nil {
		t.Fatal(err)
	}
	exts := stdSet(t, sys)
	rec, err := sys.Validate("H1", platform.OriginalConfig(), exts, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Passed() {
		t.Fatal("baseline failed")
	}

	csvKey, jsonKey, err := sys.ExportLevel2("H1", rec.RunID, "chain01")
	if err != nil {
		t.Fatal(err)
	}

	// The CSV export reads back without any experiment software.
	csvData, err := sys.Store.Get("level2", csvKey)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := docsys.ImportCSV(csvData)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) == 0 {
		t.Fatal("CSV export has no events")
	}

	jsonData, err := sys.Store.Get("level2", jsonKey)
	if err != nil {
		t.Fatal(err)
	}
	exp, jsonSums, err := docsys.ImportJSON(jsonData)
	if err != nil {
		t.Fatal(err)
	}
	if exp != "H1" || len(jsonSums) != len(sums) {
		t.Fatalf("JSON export: exp=%q events=%d, CSV events=%d", exp, len(jsonSums), len(sums))
	}
}

func TestExportLevel2Errors(t *testing.T) {
	sys := New()
	if err := sys.RegisterExperiment(tinyDef("H1")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.ExportLevel2("NOPE", "run-0001", "chain01"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, _, err := sys.ExportLevel2("H1", "run-9999", "chain01"); err == nil {
		t.Error("missing HAT file accepted")
	}
}

func TestDocumentationArchiveOnSystem(t *testing.T) {
	sys := New()
	id, err := sys.Docs.Add("H1", docsys.CatManual, "H1 reconstruction guide",
		"how to run h1reco on the sp-system", 2013, []byte("..."))
	if err != nil {
		t.Fatal(err)
	}
	hits, err := sys.Docs.Search("H1", "reconstruction")
	if err != nil || len(hits) != 1 || hits[0].ID != id {
		t.Fatalf("search = %v, %v", hits, err)
	}
	// Level 1 artifacts live on the same common storage and survive a
	// snapshot like everything else.
	if !strings.Contains(strings.Join(sys.Store.Namespaces(), ","), "docs-index") {
		t.Fatal("documentation not on the common storage")
	}
}
