package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	root := New(7)
	d1 := root.Derive("pkg", "h1reco")
	d2 := root.Derive("pkg", "h1sim")
	if d1.Uint64() == d2.Uint64() {
		t.Fatal("derived streams with different labels should differ")
	}
	// Deriving must not advance the parent.
	before := New(7)
	_ = before.Derive("x")
	after := New(7)
	if before.Uint64() != after.Uint64() {
		t.Fatal("Derive advanced the parent stream")
	}
}

func TestDeriveDeterministic(t *testing.T) {
	a := New(9).Derive("a", "b")
	b := New(9).Derive("a", "b")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("derived streams with equal labels diverged at %d", i)
		}
	}
}

func TestDeriveLabelBoundaries(t *testing.T) {
	// ("ab","c") and ("a","bc") must not collide: labels are delimited.
	a := New(3).Derive("ab", "c")
	b := New(3).Derive("a", "bc")
	if a.Uint64() == b.Uint64() {
		t.Fatal("label concatenation collision")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(13)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Norm(5, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Norm mean = %v, want ≈5", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("Norm variance = %v, want ≈4", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(3)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Errorf("Exp mean = %v, want ≈3", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(23)
	for _, mean := range []float64{0.5, 4, 50} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestBreitWignerPeak(t *testing.T) {
	r := New(29)
	const n = 100000
	inWindow := 0
	for i := 0; i < n; i++ {
		v := r.BreitWigner(91.2, 2.5)
		// A Cauchy with FWHM w has half its mass within peak±w/2.
		if math.Abs(v-91.2) < 1.25 {
			inWindow++
		}
		if math.Abs(v-91.2) > 50*2.5 {
			t.Fatalf("BreitWigner outside truncation window: %v", v)
		}
	}
	frac := float64(inWindow) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("mass within FWHM window = %v, want ≈0.5", frac)
	}
}

func TestShufflePermutes(t *testing.T) {
	r := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestPickRespectsWeights(t *testing.T) {
	r := New(37)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Pick([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("Pick ignored weights: %v", counts)
	}
}

func TestPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero weights did not panic")
		}
	}()
	New(1).Pick([]float64{0, 0})
}

func TestRangeProperty(t *testing.T) {
	r := New(41)
	f := func(lo, span uint8) bool {
		l := float64(lo)
		h := l + float64(span) + 1
		v := r.Range(l, h)
		return v >= l && v < h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(43)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit rate = %v", frac)
	}
}
