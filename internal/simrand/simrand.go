// Package simrand provides a deterministic, seedable random number
// generator and the statistical distributions used throughout the
// sp-system simulation.
//
// Every stochastic component of the framework draws from a Source derived
// from a named stream, so that any validation run can be replayed
// bit-identically — a requirement the paper states explicitly ("ensures
// reproducibility of previous results"). The generator is xoshiro256**
// seeded via splitmix64, both public-domain algorithms with well-studied
// statistical behaviour.
package simrand

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; derive one Source per goroutine with Derive.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed. Two Sources created with
// the same seed produce identical streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Derive returns a new Source whose stream is a deterministic function of
// the receiver's seed material and the given labels. It does not advance
// the receiver. Use it to give each (package, test, configuration) its own
// independent stream so that adding a consumer never perturbs another.
func (r *Source) Derive(labels ...string) *Source {
	h := fnv.New64a()
	for _, l := range labels {
		h.Write([]byte(l))
		h.Write([]byte{0})
	}
	mix := h.Sum64()
	return New(r.s[0] ^ mix ^ (r.s[2] << 1))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Range returns a uniform value in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (r *Source) Norm(mean, sigma float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + sigma*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Source) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation above 30.
func (r *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(r.Norm(mean, math.Sqrt(mean))))
		if n < 0 {
			return 0
		}
		return n
	}
	limit := math.Exp(-mean)
	p := 1.0
	n := -1
	for p > limit {
		p *= r.Float64()
		n++
	}
	return n
}

// BreitWigner returns a value drawn from a relativistic-style Breit–Wigner
// (Cauchy) distribution with the given peak mass and width, truncated to
// [peak-50*width, peak+50*width] to keep the toy physics bounded.
func (r *Source) BreitWigner(peak, width float64) float64 {
	for {
		u := r.Float64()
		v := peak + width/2*math.Tan(math.Pi*(u-0.5))
		if math.Abs(v-peak) <= 50*width {
			return v
		}
	}
}

// Shuffle pseudo-randomly permutes the order of n elements using the given
// swap function (Fisher–Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen index weighted by the given non-negative
// weights. It panics if the weights sum to zero or any weight is negative.
func (r *Source) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("simrand: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("simrand: zero total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
