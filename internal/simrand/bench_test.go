package simrand

import "testing"

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Norm(0, 1)
	}
	_ = sink
}

func BenchmarkPoisson(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Poisson(8)
	}
	_ = sink
}

func BenchmarkDerive(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Derive("pkg", "h1reco", "unit07")
	}
}
