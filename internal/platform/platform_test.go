package platform

import (
	"testing"
	"time"
)

func TestArchBits(t *testing.T) {
	if I386.Bits() != 32 || X8664.Bits() != 64 {
		t.Fatalf("Bits: i386=%d x86_64=%d", I386.Bits(), X8664.Bits())
	}
}

func TestParseArch(t *testing.T) {
	cases := map[string]Arch{
		"i386": I386, "32bit": I386, "32": I386,
		"x86_64": X8664, "64bit": X8664, "64": X8664,
	}
	for in, want := range cases {
		got, err := ParseArch(in)
		if err != nil || got != want {
			t.Errorf("ParseArch(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseArch("sparc"); err == nil {
		t.Error("ParseArch(sparc) succeeded, want error")
	}
}

func TestTraitStrings(t *testing.T) {
	for _, tr := range AllTraits() {
		if tr.String() == "" {
			t.Errorf("trait %d has empty name", int(tr))
		}
	}
	if TraitPtrIntCast.String() != "ptr-int-cast" {
		t.Errorf("TraitPtrIntCast.String() = %q", TraitPtrIntCast.String())
	}
}

func TestRegistryCatalogue(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"SL4", "SL5", "SL6", "SL7"} {
		if _, err := r.OS(name); err != nil {
			t.Errorf("OS(%q): %v", name, err)
		}
	}
	for _, id := range []CompilerID{"gcc3.4", "gcc4.1", "gcc4.4", "gcc4.8"} {
		if _, err := r.Compiler(id); err != nil {
			t.Errorf("Compiler(%q): %v", id, err)
		}
	}
	if _, err := r.OS("SL9"); err == nil {
		t.Error("OS(SL9) succeeded, want error")
	}
	if _, err := r.Compiler("clang"); err == nil {
		t.Error("Compiler(clang) succeeded, want error")
	}
}

func TestOSesSortedByRelease(t *testing.T) {
	oses := NewRegistry().OSes()
	for i := 1; i < len(oses); i++ {
		if oses[i].Released.Before(oses[i-1].Released) {
			t.Fatalf("OSes not sorted: %s before %s", oses[i].Name, oses[i-1].Name)
		}
	}
	if oses[0].Name != "SL4" || oses[len(oses)-1].Name != "SL7" {
		t.Fatalf("unexpected order: first=%s last=%s", oses[0].Name, oses[len(oses)-1].Name)
	}
}

func TestCompilerTraitMatrix(t *testing.T) {
	r := NewRegistry()
	gcc41, _ := r.Compiler("gcc4.1")
	gcc44, _ := r.Compiler("gcc4.4")
	gcc48, _ := r.Compiler("gcc4.8")

	// The migration story: K&R code warns on gcc4.1, fails from gcc4.4.
	if v := gcc41.Judge(TraitKAndRDecl); v != VerdictWarn {
		t.Errorf("gcc4.1 K&R = %v, want warn", v)
	}
	if v := gcc44.Judge(TraitKAndRDecl); v != VerdictError {
		t.Errorf("gcc4.4 K&R = %v, want error", v)
	}
	// C++11 only arrives with gcc4.8.
	if v := gcc44.Judge(TraitCxx11); v != VerdictError {
		t.Errorf("gcc4.4 C++11 = %v, want error", v)
	}
	if v := gcc48.Judge(TraitCxx11); v != VerdictOK {
		t.Errorf("gcc4.8 C++11 = %v, want ok", v)
	}
	// Clean code is clean everywhere.
	for _, c := range r.Compilers() {
		if v := c.Judge(TraitANSIC); v != VerdictOK {
			t.Errorf("%s ANSI C = %v, want ok", c.ID, v)
		}
		if v := c.Judge(TraitCxx98); v != VerdictOK {
			t.Errorf("%s C++98 = %v, want ok", c.ID, v)
		}
	}
	// Monotone deprecation: a trait never gets *more* acceptable in a
	// newer compiler for the legacy-idiom traits.
	legacy := []Trait{TraitKAndRDecl, TraitImplicitFuncDecl, TraitWritableStringLit, TraitAutoPtr}
	comps := r.Compilers()
	for _, tr := range legacy {
		for i := 1; i < len(comps); i++ {
			if comps[i].Judge(tr) < comps[i-1].Judge(tr) {
				t.Errorf("trait %v verdict regressed from %s (%v) to %s (%v)",
					tr, comps[i-1].ID, comps[i-1].Judge(tr), comps[i].ID, comps[i].Judge(tr))
			}
		}
	}
}

func TestOSLifecycle(t *testing.T) {
	r := NewRegistry()
	sl5, _ := r.OS("SL5")
	if !sl5.SupportedAt(time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)) {
		t.Error("SL5 should be supported mid-2013")
	}
	if sl5.SupportedAt(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)) {
		t.Error("SL5 should be EOL by 2020")
	}
	if sl5.SupportedAt(time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)) {
		t.Error("SL5 should not exist in 2006")
	}
}

func TestSL7Is64BitOnly(t *testing.T) {
	r := NewRegistry()
	sl7, _ := r.OS("SL7")
	if sl7.SupportsArch(I386) {
		t.Error("SL7 should not ship on i386")
	}
	if !sl7.SupportsArch(X8664) {
		t.Error("SL7 should ship on x86_64")
	}
}

func TestCurrentOS(t *testing.T) {
	r := NewRegistry()
	o, err := r.CurrentOS(time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC))
	if err != nil || o.Name != "SL6" {
		t.Fatalf("CurrentOS(2013) = %v, %v; want SL6", o, err)
	}
	o, err = r.CurrentOS(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	if err != nil || o.Name != "SL7" {
		t.Fatalf("CurrentOS(2015) = %v, %v; want SL7", o, err)
	}
	if _, err := r.CurrentOS(time.Date(2004, 1, 1, 0, 0, 0, 0, time.UTC)); err == nil {
		t.Fatal("CurrentOS(2004) succeeded, want error")
	}
}

func TestConfigString(t *testing.T) {
	c := Config{OS: "SL5", Arch: I386, Compiler: "gcc4.1"}
	if got := c.String(); got != "SL5/32bit gcc4.1" {
		t.Fatalf("String = %q", got)
	}
	if got := c.Key(); got != "sl5-32-gcc4.1" {
		t.Fatalf("Key = %q", got)
	}
}

func TestParseConfigRoundTrip(t *testing.T) {
	for _, c := range append(PaperConfigs(), NextChallenges()...) {
		parsed, err := ParseConfig(c.String())
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", c.String(), err)
		}
		if parsed != c {
			t.Fatalf("round trip: %v != %v", parsed, c)
		}
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, s := range []string{"", "SL5", "SL5 gcc4.1", "SL5/98bit gcc4.1", "SL5/32bit gcc4.1 extra"} {
		if _, err := ParseConfig(s); err == nil {
			t.Errorf("ParseConfig(%q) succeeded, want error", s)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	r := NewRegistry()
	for _, c := range PaperConfigs() {
		if err := c.Validate(r); err != nil {
			t.Errorf("paper config %v invalid: %v", c, err)
		}
	}
	bad := []Config{
		{OS: "SL9", Arch: X8664, Compiler: "gcc4.4"},
		{OS: "SL7", Arch: I386, Compiler: "gcc4.8"},
		{OS: "SL5", Arch: X8664, Compiler: "gcc4.8"},
	}
	for _, c := range bad {
		if err := c.Validate(r); err == nil {
			t.Errorf("config %v validated, want error", c)
		}
	}
}

func TestPaperConfigsMatchPaper(t *testing.T) {
	got := PaperConfigs()
	want := []string{
		"SL5/32bit gcc4.1",
		"SL5/32bit gcc4.4",
		"SL5/64bit gcc4.1",
		"SL5/64bit gcc4.4",
		"SL6/64bit gcc4.4",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d configs, want %d", len(got), len(want))
	}
	for i, c := range got {
		if c.String() != want[i] {
			t.Errorf("config %d = %q, want %q", i, c.String(), want[i])
		}
	}
}

func TestFPReferenceIsExact(t *testing.T) {
	ref := ReferenceConfig().FP()
	if ref.RelativeShift != 0 || ref.Extended80Bit {
		t.Fatalf("reference FP profile should be exact, got %+v", ref)
	}
	shifted := Config{OS: "SL5", Arch: I386, Compiler: "gcc4.1"}.FP()
	if shifted.RelativeShift == 0 || !shifted.Extended80Bit {
		t.Fatalf("32-bit profile should carry x87 shift, got %+v", shifted)
	}
}

func TestFPDeterministic(t *testing.T) {
	for _, c := range PaperConfigs() {
		if c.FP() != c.FP() {
			t.Fatalf("FP() not deterministic for %v", c)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddOS did not panic")
		}
	}()
	r.AddOS(&OSRelease{Name: "SL5"})
}
