package platform

import (
	"fmt"
	"strings"
)

// Config identifies one computing environment the sp-system can build and
// validate on: an OS release, an architecture and a compiler. It is the
// unit that labels virtual-machine images, build artifacts, validation
// runs and the columns of the paper's Figure 3 status matrix.
type Config struct {
	OS       string
	Arch     Arch
	Compiler CompilerID
}

// String renders the configuration in the paper's notation, e.g.
// "SL5/32bit gcc4.1".
func (c Config) String() string {
	return fmt.Sprintf("%s/%dbit %s", c.OS, c.Arch.Bits(), c.Compiler)
}

// Key returns a compact, filesystem-safe identifier for the configuration,
// e.g. "sl5-32-gcc4.1", used for storage namespaces and artifact paths.
func (c Config) Key() string {
	return fmt.Sprintf("%s-%d-%s", strings.ToLower(c.OS), c.Arch.Bits(), c.Compiler)
}

// ParseConfig parses the paper's notation produced by String.
func ParseConfig(s string) (Config, error) {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return Config{}, fmt.Errorf("platform: malformed config %q, want \"OS/NNbit compiler\"", s)
	}
	osArch := strings.SplitN(fields[0], "/", 2)
	if len(osArch) != 2 {
		return Config{}, fmt.Errorf("platform: malformed config %q, missing '/'", s)
	}
	arch, err := ParseArch(osArch[1])
	if err != nil {
		return Config{}, fmt.Errorf("platform: malformed config %q: %v", s, err)
	}
	return Config{OS: osArch[0], Arch: arch, Compiler: CompilerID(fields[1])}, nil
}

// Validate checks the configuration against the registry: the OS must
// exist, ship on the architecture, and provide the compiler.
func (c Config) Validate(r *Registry) error {
	o, err := r.OS(c.OS)
	if err != nil {
		return err
	}
	if !o.SupportsArch(c.Arch) {
		return fmt.Errorf("platform: %s does not ship on %s", c.OS, c.Arch)
	}
	if !o.SupportsCompiler(c.Compiler) {
		return fmt.Errorf("platform: %s does not provide %s", c.OS, c.Compiler)
	}
	if _, err := r.Compiler(c.Compiler); err != nil {
		return err
	}
	return nil
}

// FP returns the floating-point profile of the configuration. The
// reference platform — SL5/64bit with gcc4.1, the environment the HERA
// experiments' reference results were produced on — has zero shift;
// every other configuration carries a small deterministic relative
// perturbation that the physics simulation applies to numerically
// sensitive code.
func (c Config) FP() FPProfile {
	p := FPProfile{}
	if c.Arch == I386 {
		// x87 extended precision: results differ from SSE2 doubles.
		p.Extended80Bit = true
		p.RelativeShift += 3e-13
	}
	switch c.Compiler {
	case "gcc3.4":
		p.RelativeShift += 5e-13
	case "gcc4.1":
		// reference codegen
	case "gcc4.4":
		p.RelativeShift += 1e-13
	case "gcc4.8":
		p.RelativeShift += 2e-13
	}
	return p
}

// PaperConfigs returns the five virtual-machine configurations the paper
// lists as present in the sp-system ("SL5/32bit with gcc4.1 and gcc4.4,
// SL5/64bit with gcc4.1 and gcc4.4, SL6/64bit with gcc4.4"), in that
// order.
func PaperConfigs() []Config {
	return []Config{
		{OS: "SL5", Arch: I386, Compiler: "gcc4.1"},
		{OS: "SL5", Arch: I386, Compiler: "gcc4.4"},
		{OS: "SL5", Arch: X8664, Compiler: "gcc4.1"},
		{OS: "SL5", Arch: X8664, Compiler: "gcc4.4"},
		{OS: "SL6", Arch: X8664, Compiler: "gcc4.4"},
	}
}

// ReferenceConfig returns the configuration that defines the
// floating-point reference of the numeric model: SL5/64bit gcc4.1.
func ReferenceConfig() Config {
	return Config{OS: "SL5", Arch: X8664, Compiler: "gcc4.1"}
}

// OriginalConfig returns the HERA experiments' native platform —
// SL5/32bit with the system gcc4.1 — on which their reference physics
// results were historically produced. Campaigns capture baselines here:
// latent 64-bit defects are dormant on this platform, so its references
// are trustworthy and the defects surface (and are fixed) during the
// 64-bit migrations, exactly as the paper reports.
func OriginalConfig() Config {
	return Config{OS: "SL5", Arch: I386, Compiler: "gcc4.1"}
}

// NextChallenges returns the configurations the paper names as "the next
// challenges": the SL7 environment (with its gcc 4.8 toolchain).
func NextChallenges() []Config {
	return []Config{
		{OS: "SL7", Arch: X8664, Compiler: "gcc4.8"},
	}
}
