package platform

import (
	"fmt"
	"sort"
	"time"
)

// Registry is a catalogue of OS releases and compilers available to the
// validation framework. The zero value is empty; use NewRegistry for the
// paper's catalogue.
type Registry struct {
	oses      map[string]*OSRelease
	compilers map[CompilerID]*Compiler
}

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// NewRegistry returns the catalogue of platforms appearing in the paper:
// Scientific Linux 4 through 7 and gcc 3.4 through 4.8. Release and EOL
// dates follow the real Scientific Linux lifecycle to the month; the
// compiler trait matrices are the synthetic model described in DESIGN.md.
func NewRegistry() *Registry {
	r := &Registry{
		oses:      make(map[string]*OSRelease),
		compilers: make(map[CompilerID]*Compiler),
	}

	r.AddCompiler(&Compiler{
		ID:          "gcc3.4",
		Released:    date(2004, time.April, 18),
		CxxStandard: "c++98",
		verdicts: map[Trait]Verdict{
			TraitCxx11:             VerdictError,
			TraitKAndRDecl:         VerdictOK,
			TraitImplicitFuncDecl:  VerdictOK,
			TraitWritableStringLit: VerdictOK,
			TraitAutoPtr:           VerdictOK,
			TraitFortran77:         VerdictOK, // g77 frontend still present
			TraitPtrIntCast:        VerdictOK,
			TraitStrictAliasing:    VerdictOK, // no aggressive aliasing opts
		},
	})
	r.AddCompiler(&Compiler{
		ID:          "gcc4.1",
		Released:    date(2006, time.February, 28),
		CxxStandard: "c++98",
		verdicts: map[Trait]Verdict{
			TraitCxx11:             VerdictError,
			TraitKAndRDecl:         VerdictWarn,
			TraitImplicitFuncDecl:  VerdictWarn,
			TraitWritableStringLit: VerdictWarn,
			TraitAutoPtr:           VerdictOK,
			TraitFortran77:         VerdictOK,
			TraitPtrIntCast:        VerdictWarn,
			TraitStrictAliasing:    VerdictOK,
		},
	})
	r.AddCompiler(&Compiler{
		ID:          "gcc4.4",
		Released:    date(2009, time.April, 21),
		CxxStandard: "c++98",
		verdicts: map[Trait]Verdict{
			TraitCxx11:             VerdictError,
			TraitKAndRDecl:         VerdictError,
			TraitImplicitFuncDecl:  VerdictWarn,
			TraitWritableStringLit: VerdictWarn,
			TraitAutoPtr:           VerdictWarn,
			TraitFortran77:         VerdictWarn, // g77 gone; gfortran compatibility mode
			TraitPtrIntCast:        VerdictWarn,
			TraitStrictAliasing:    VerdictWarn, // compiles, may miscompile at runtime
		},
		StackReuse: true,
	})
	r.AddCompiler(&Compiler{
		ID:          "gcc4.8",
		Released:    date(2013, time.March, 22),
		CxxStandard: "c++11",
		verdicts: map[Trait]Verdict{
			TraitKAndRDecl:         VerdictError,
			TraitImplicitFuncDecl:  VerdictError,
			TraitWritableStringLit: VerdictError,
			TraitAutoPtr:           VerdictWarn,
			TraitFortran77:         VerdictWarn,
			TraitPtrIntCast:        VerdictWarn,
			TraitStrictAliasing:    VerdictWarn,
		},
		StackReuse: true,
	})

	r.AddOS(&OSRelease{
		Name:         "SL4",
		FullName:     "Scientific Linux 4",
		Released:     date(2005, time.April, 20),
		EOL:          date(2012, time.February, 29),
		Archs:        []Arch{I386, X8664},
		Compilers:    []CompilerID{"gcc3.4"},
		GlibcVersion: "2.3.4",
	})
	r.AddOS(&OSRelease{
		Name:         "SL5",
		FullName:     "Scientific Linux 5",
		Released:     date(2007, time.May, 8),
		EOL:          date(2019, time.March, 31),
		Archs:        []Arch{I386, X8664},
		Compilers:    []CompilerID{"gcc4.1", "gcc4.4"},
		GlibcVersion: "2.5",
	})
	r.AddOS(&OSRelease{
		Name:         "SL6",
		FullName:     "Scientific Linux 6",
		Released:     date(2011, time.March, 3),
		EOL:          date(2024, time.June, 30),
		Archs:        []Arch{I386, X8664},
		Compilers:    []CompilerID{"gcc4.4", "gcc4.8"},
		GlibcVersion: "2.12",
	})
	r.AddOS(&OSRelease{
		Name:         "SL7",
		FullName:     "Scientific Linux 7",
		Released:     date(2014, time.October, 13),
		EOL:          date(2024, time.June, 30),
		Archs:        []Arch{X8664},
		Compilers:    []CompilerID{"gcc4.8"},
		GlibcVersion: "2.17",
	})
	return r
}

// AddOS registers an OS release. It panics on duplicate names: the
// catalogue is configuration, and a clash is a programming error.
func (r *Registry) AddOS(o *OSRelease) {
	if _, dup := r.oses[o.Name]; dup {
		panic(fmt.Sprintf("platform: duplicate OS release %q", o.Name))
	}
	r.oses[o.Name] = o
}

// AddCompiler registers a compiler release. It panics on duplicate IDs.
func (r *Registry) AddCompiler(c *Compiler) {
	if _, dup := r.compilers[c.ID]; dup {
		panic(fmt.Sprintf("platform: duplicate compiler %q", c.ID))
	}
	r.compilers[c.ID] = c
}

// OS returns the named OS release.
func (r *Registry) OS(name string) (*OSRelease, error) {
	o, ok := r.oses[name]
	if !ok {
		return nil, fmt.Errorf("platform: unknown OS release %q", name)
	}
	return o, nil
}

// Compiler returns the compiler with the given ID.
func (r *Registry) Compiler(id CompilerID) (*Compiler, error) {
	c, ok := r.compilers[id]
	if !ok {
		return nil, fmt.Errorf("platform: unknown compiler %q", id)
	}
	return c, nil
}

// OSes returns all registered OS releases sorted by release date.
func (r *Registry) OSes() []*OSRelease {
	out := make([]*OSRelease, 0, len(r.oses))
	for _, o := range r.oses {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Released.Before(out[j].Released) })
	return out
}

// Compilers returns all registered compilers sorted by release date.
func (r *Registry) Compilers() []*Compiler {
	out := make([]*Compiler, 0, len(r.compilers))
	for _, c := range r.compilers {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Released.Before(out[j].Released) })
	return out
}

// CurrentOS returns the most recent OS release available at the given
// instant, or an error if none has been released yet.
func (r *Registry) CurrentOS(at time.Time) (*OSRelease, error) {
	var best *OSRelease
	for _, o := range r.oses {
		if o.Released.After(at) {
			continue
		}
		if best == nil || o.Released.After(best.Released) {
			best = o
		}
	}
	if best == nil {
		return nil, fmt.Errorf("platform: no OS released as of %v", at)
	}
	return best, nil
}
