// Package platform models the computing environments the sp-system
// validates against: operating-system releases, CPU architectures and
// compiler versions.
//
// The paper's framework hosts virtual machines "built with different
// configurations of operating systems and the relevant software". What
// the validation framework observes about a platform is precisely:
//
//   - whether a given piece of experiment source code compiles on it
//     (cleanly, with warnings, or not at all),
//   - how the generated code behaves numerically (e.g. x87 80-bit
//     extended precision on 32-bit builds, pointer-width assumptions), and
//   - the support lifecycle of the OS release (when it appears, when it
//     reaches end of life), which drives migration pressure.
//
// This package models exactly those observables. Source code is described
// by the Traits it exhibits (see Trait); each Compiler maps traits to
// compile Verdicts, and each Config carries a floating-point profile and a
// pointer-width behaviour that downstream simulation consumes. The
// catalogue in Registry reproduces the platform matrix named in the
// paper: Scientific Linux 5 (32- and 64-bit) with gcc 4.1 and 4.4,
// Scientific Linux 6 (64-bit) with gcc 4.4, and the then-upcoming
// Scientific Linux 7 with gcc 4.8.
package platform

import (
	"fmt"
	"time"
)

// Arch is a CPU architecture.
type Arch int

const (
	// I386 is 32-bit x86, the architecture of the original HERA-era
	// software builds.
	I386 Arch = iota
	// X8664 is 64-bit x86, the migration target during the paper's
	// campaign.
	X8664
)

// Bits returns the pointer width of the architecture in bits.
func (a Arch) Bits() int {
	if a == I386 {
		return 32
	}
	return 64
}

// String returns the conventional name of the architecture.
func (a Arch) String() string {
	if a == I386 {
		return "i386"
	}
	return "x86_64"
}

// ParseArch converts "i386"/"32bit"/"x86_64"/"64bit" to an Arch.
func ParseArch(s string) (Arch, error) {
	switch s {
	case "i386", "32bit", "32":
		return I386, nil
	case "x86_64", "64bit", "64":
		return X8664, nil
	}
	return 0, fmt.Errorf("platform: unknown architecture %q", s)
}

// Trait identifies a property of experiment source code that interacts
// with the platform: a language idiom, a portability hazard, or a numeric
// sensitivity. Traits are the contract between the software model
// (internal/swrepo) and the compile/runtime simulation.
type Trait int

const (
	// TraitANSIC is plain standards-conforming C89; accepted everywhere.
	TraitANSIC Trait = iota
	// TraitCxx98 is standards-conforming C++98; accepted everywhere.
	TraitCxx98
	// TraitCxx11 requires a C++11 compiler (gcc >= 4.8 in this model).
	TraitCxx11
	// TraitKAndRDecl is pre-ANSI K&R-style function declarations: newer
	// compilers first warn about, then reject, such code.
	TraitKAndRDecl
	// TraitImplicitFuncDecl is calling functions without a prototype.
	TraitImplicitFuncDecl
	// TraitWritableStringLit mutates string literals, relying on the old
	// writable .data placement.
	TraitWritableStringLit
	// TraitAutoPtr uses std::auto_ptr and friends that were deprecated
	// and later removed.
	TraitAutoPtr
	// TraitFortran77 is FORTRAN 77 code requiring the g77-era frontend;
	// newer toolchains route it through gfortran with small semantic
	// differences (a warning in this model).
	TraitFortran77
	// TraitPtrIntCast stores pointers in 32-bit integers. It compiles
	// with a warning everywhere but produces wrong results at runtime on
	// 64-bit architectures — the canonical class of "long-standing bug"
	// the paper reports the sp-system uncovering during the SL6/64-bit
	// migration.
	TraitPtrIntCast
	// TraitUninitMemory reads uninitialized memory. Harmless by accident
	// on the old platform, it perturbs results when a newer compiler
	// changes stack layout — a silent physics-level failure only data
	// validation can catch.
	TraitUninitMemory
	// TraitStrictAliasing violates C/C++ aliasing rules; optimizing
	// compilers from gcc 4.4 on miscompile it into runtime failures.
	TraitStrictAliasing
	// TraitX87Sensitive marks numerically delicate code whose results
	// shift measurably between x87 80-bit (32-bit builds) and SSE2
	// 64-bit floating point arithmetic.
	TraitX87Sensitive
	// TraitROOTIOv5 uses ROOT 5 era I/O interfaces that ROOT 6 removed.
	// Judged by the externals catalogue rather than the compiler, but
	// declared here so all traits share one namespace.
	TraitROOTIOv5
	numTraits int = iota
)

var traitNames = [...]string{
	TraitANSIC:             "ansi-c",
	TraitCxx98:             "c++98",
	TraitCxx11:             "c++11",
	TraitKAndRDecl:         "k&r-decl",
	TraitImplicitFuncDecl:  "implicit-func-decl",
	TraitWritableStringLit: "writable-string-lit",
	TraitAutoPtr:           "auto-ptr",
	TraitFortran77:         "fortran77",
	TraitPtrIntCast:        "ptr-int-cast",
	TraitUninitMemory:      "uninit-memory",
	TraitStrictAliasing:    "strict-aliasing",
	TraitX87Sensitive:      "x87-sensitive",
	TraitROOTIOv5:          "root-io-v5",
}

// String returns the trait's short name.
func (t Trait) String() string {
	if int(t) < len(traitNames) && traitNames[t] != "" {
		return traitNames[t]
	}
	return fmt.Sprintf("trait(%d)", int(t))
}

// AllTraits returns every defined trait, in declaration order.
func AllTraits() []Trait {
	ts := make([]Trait, numTraits)
	for i := range ts {
		ts[i] = Trait(i)
	}
	return ts
}

// Verdict is the outcome of a compiler judging a single source trait.
type Verdict int

const (
	// VerdictOK means the trait compiles cleanly.
	VerdictOK Verdict = iota
	// VerdictWarn means the trait compiles with a diagnostic; the build
	// succeeds but the warning is recorded in the build log.
	VerdictWarn
	// VerdictError means the trait is rejected and the compilation fails.
	VerdictError
)

// String returns "ok", "warn" or "error".
func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictWarn:
		return "warn"
	default:
		return "error"
	}
}

// CompilerID names a compiler release, e.g. "gcc4.4".
type CompilerID string

// Compiler models a compiler release as the map from source traits to
// compile verdicts plus codegen behaviour relevant to validation.
type Compiler struct {
	ID CompilerID
	// Released is when the compiler became available in the catalogue.
	Released time.Time
	// CxxStandard is the highest C++ standard supported ("c++98", "c++11").
	CxxStandard string
	// verdicts maps each trait to its compile outcome; traits absent from
	// the map compile cleanly.
	verdicts map[Trait]Verdict
	// StackReuse reports whether this compiler's codegen reuses stack
	// slots aggressively, which changes what uninitialized reads observe.
	StackReuse bool
}

// Judge returns the verdict for compiling source exhibiting the given
// trait with this compiler.
func (c *Compiler) Judge(t Trait) Verdict {
	if v, ok := c.verdicts[t]; ok {
		return v
	}
	return VerdictOK
}

// OSRelease models an operating-system release and its support lifecycle.
type OSRelease struct {
	// Name is the short identifier used in configuration labels, e.g. "SL5".
	Name string
	// FullName is the human-readable product name.
	FullName string
	// Released and EOL bound the vendor-support window.
	Released, EOL time.Time
	// Archs lists the architectures the release ships on.
	Archs []Arch
	// Compilers lists the compiler releases available on this OS (system
	// compiler plus the developer-toolset additions the paper's matrix
	// uses).
	Compilers []CompilerID
	// GlibcVersion pins the C-library ABI generation, recorded in image
	// recipes.
	GlibcVersion string
}

// SupportsArch reports whether the release ships on the given architecture.
func (o *OSRelease) SupportsArch(a Arch) bool {
	for _, x := range o.Archs {
		if x == a {
			return true
		}
	}
	return false
}

// SupportsCompiler reports whether the compiler is available on this OS.
func (o *OSRelease) SupportsCompiler(id CompilerID) bool {
	for _, c := range o.Compilers {
		if c == id {
			return true
		}
	}
	return false
}

// SupportedAt reports whether the release is inside its vendor-support
// window at the given instant.
func (o *OSRelease) SupportedAt(t time.Time) bool {
	return !t.Before(o.Released) && t.Before(o.EOL)
}

// FPProfile describes the floating-point behaviour of a configuration,
// consumed by the physics simulation to model platform-dependent numeric
// drift.
type FPProfile struct {
	// Extended80Bit is true when intermediate results are kept in x87
	// 80-bit registers (32-bit builds in this catalogue).
	Extended80Bit bool
	// RelativeShift is the deterministic relative perturbation this
	// profile applies to numerically sensitive computations, measured
	// against the SL5/64-bit gcc4.1 reference.
	RelativeShift float64
}
