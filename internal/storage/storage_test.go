package storage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// forEachBackend runs a test against both the in-memory and the on-disk
// backend: the Store contract must hold identically for either, which is
// what lets every consumer stay backend-agnostic.
func forEachBackend(t *testing.T, fn func(t *testing.T, s *Store)) {
	t.Run("memory", func(t *testing.T) { fn(t, NewStore()) })
	t.Run("disk", func(t *testing.T) {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		fn(t, s)
	})
}

func mustPutBlob(t *testing.T, s *Store, data []byte) string {
	t.Helper()
	hash, err := s.PutBlob(data)
	if err != nil {
		t.Fatal(err)
	}
	return hash
}

func TestBlobRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		hash := mustPutBlob(t, s, []byte("hello hera"))
		got, err := s.GetBlob(hash)
		if err != nil || string(got) != "hello hera" {
			t.Fatalf("GetBlob = %q, %v", got, err)
		}
		if !s.HasBlob(hash) {
			t.Fatal("HasBlob = false for stored blob")
		}
		if _, err := s.GetBlob("deadbeef"); err == nil {
			t.Fatal("GetBlob(missing) succeeded")
		}
	})
}

func TestBlobDeduplication(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		h1 := mustPutBlob(t, s, []byte("same content"))
		h2 := mustPutBlob(t, s, []byte("same content"))
		if h1 != h2 {
			t.Fatal("identical content produced different hashes")
		}
		if st := s.Stats(); st.Blobs != 1 {
			t.Fatalf("Blobs = %d, want 1", st.Blobs)
		}
	})
}

func TestBlobIsolation(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		data := []byte("mutable")
		hash := mustPutBlob(t, s, data)
		data[0] = 'X' // caller mutates after store
		got, _ := s.GetBlob(hash)
		if string(got) != "mutable" {
			t.Fatal("store aliased caller's buffer on Put")
		}
		got[0] = 'Y' // caller mutates returned copy
		again, _ := s.GetBlob(hash)
		if string(again) != "mutable" {
			t.Fatal("store aliased returned buffer on Get")
		}
	})
}

func TestNamedPutGet(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		if _, err := s.Put("results", "run-001/test-a", []byte("PASS")); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get("results", "run-001/test-a")
		if err != nil || string(got) != "PASS" {
			t.Fatalf("Get = %q, %v", got, err)
		}
		if !s.Exists("results", "run-001/test-a") {
			t.Fatal("Exists = false")
		}
		if s.Exists("results", "nope") {
			t.Fatal("Exists = true for missing key")
		}
	})
}

func TestPutValidation(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		if _, err := s.Put("", "k", nil); err == nil {
			t.Error("empty namespace accepted")
		}
		if _, err := s.Put("ns", "", nil); err == nil {
			t.Error("empty key accepted")
		}
		if _, err := s.Put("a/b", "k", nil); err == nil {
			t.Error("namespace with slash accepted")
		}
	})
}

func TestBind(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		hash := mustPutBlob(t, s, []byte("artifact"))
		if err := s.Bind("builds", "h1reco", hash); err != nil {
			t.Fatal(err)
		}
		got, _ := s.Get("builds", "h1reco")
		if string(got) != "artifact" {
			t.Fatalf("Get after Bind = %q", got)
		}
		if err := s.Bind("builds", "x", "no-such-hash"); err == nil {
			t.Fatal("Bind to missing blob succeeded")
		}
	})
}

func TestRebindKeepsOldBlob(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		_, _ = s.Put("cfg", "current", []byte("v1"))
		old, _ := s.Hash("cfg", "current")
		_, _ = s.Put("cfg", "current", []byte("v2"))
		got, _ := s.Get("cfg", "current")
		if string(got) != "v2" {
			t.Fatalf("current = %q", got)
		}
		// "nothing is ever lost": the old version stays addressable.
		prev, err := s.GetBlob(old)
		if err != nil || string(prev) != "v1" {
			t.Fatalf("old blob = %q, %v", prev, err)
		}
	})
}

func TestListSorted(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		for _, k := range []string{"zeta", "alpha", "mid"} {
			_, _ = s.Put("ns", k, []byte(k))
		}
		got := s.List("ns")
		want := []string{"alpha", "mid", "zeta"}
		if len(got) != 3 {
			t.Fatalf("List = %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("List = %v, want %v", got, want)
			}
		}
		if other := s.List("empty"); len(other) != 0 {
			t.Fatalf("List(empty) = %v", other)
		}
	})
}

func TestNamespaces(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		_, _ = s.Put("tests", "a", nil)
		_, _ = s.Put("results", "b", nil)
		got := s.Namespaces()
		if len(got) != 2 || got[0] != "results" || got[1] != "tests" {
			t.Fatalf("Namespaces = %v", got)
		}
	})
}

func TestSnapshotRestore(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		_, _ = s.Put("tests", "t1", []byte("script"))
		_, _ = s.Put("results", "r1", []byte("output"))
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := Restore(snap)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Get("tests", "t1")
		if err != nil || string(got) != "script" {
			t.Fatalf("restored Get = %q, %v", got, err)
		}
		if restored.Stats() != s.Stats() {
			t.Fatalf("stats differ: %+v vs %+v", restored.Stats(), s.Stats())
		}
	})
}

func TestRestoreDetectsCorruption(t *testing.T) {
	s := NewStore()
	_, _ = s.Put("ns", "k", []byte("good"))
	snap, _ := s.Snapshot()
	// Corrupt the blob content inside the snapshot. JSON base64 of "good"
	// appears in the blob map; flip bytes crudely by replacing it.
	bad := bytes.Replace(snap, []byte("Z29vZA=="), []byte("YmFkIQ=="), 1)
	if bytes.Equal(bad, snap) {
		t.Fatal("test setup: expected base64 payload not found")
	}
	if _, err := Restore(bad); err == nil {
		t.Fatal("Restore accepted corrupted snapshot")
	}
	if _, err := Restore([]byte("{not json")); err == nil {
		t.Fatal("Restore accepted malformed JSON")
	}
}

func TestRestoreRejectsMalformedNames(t *testing.T) {
	// A binding without the namespace/key shape must fail at load time,
	// not panic Namespaces() later.
	blob := []byte("content")
	hash := HashBytes(blob)
	for _, bad := range []string{"noslash", "/nokey", "nons/"} {
		snap, err := json.Marshal(map[string]any{
			"blobs": map[string][]byte{hash: blob},
			"names": map[string]string{bad: hash},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Restore(snap); err == nil {
			t.Errorf("Restore accepted binding name %q", bad)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		var wg sync.WaitGroup
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				key := fmt.Sprintf("k%03d", i)
				if _, err := s.Put("ns", key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				got, err := s.Get("ns", key)
				if err != nil || string(got) != key {
					t.Errorf("Get(%s) = %q, %v", key, got, err)
				}
			}(i)
		}
		wg.Wait()
		if got := len(s.List("ns")); got != 32 {
			t.Fatalf("keys = %d, want 32", got)
		}
	})
}

func TestConcurrentPutBlobSameContent(t *testing.T) {
	// Concurrent writers of identical content must all succeed, agree on
	// the hash, and leave exactly one stored blob — on disk this races
	// check-stage-rename, which is the point.
	forEachBackend(t, func(t *testing.T, s *Store) {
		payload := bytes.Repeat([]byte("dedup"), 2048)
		const writers = 16
		hashes := make([]string, writers)
		var wg sync.WaitGroup
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				h, err := s.PutBlob(payload)
				if err != nil {
					t.Error(err)
					return
				}
				hashes[i] = h
			}(i)
		}
		wg.Wait()
		for _, h := range hashes {
			if h != hashes[0] {
				t.Fatalf("hashes diverged: %s vs %s", h, hashes[0])
			}
		}
		if st := s.Stats(); st.Blobs != 1 || st.Bytes != int64(len(payload)) {
			t.Fatalf("Stats = %+v, want 1 blob of %d bytes", st, len(payload))
		}
	})
}

func TestKeepEverythingDeduplication(t *testing.T) {
	// The paper's keep-everything policy is affordable because identical
	// artifacts across runs share storage: binding the same content under
	// many run-scoped names must not grow the blob count.
	forEachBackend(t, func(t *testing.T, s *Store) {
		artifact := bytes.Repeat([]byte("binary"), 1024)
		for run := 1; run <= 50; run++ {
			if _, err := s.Put("results", fmt.Sprintf("run-%04d/output", run), artifact); err != nil {
				t.Fatal(err)
			}
		}
		st := s.Stats()
		if st.Bindings != 50 {
			t.Fatalf("bindings = %d", st.Bindings)
		}
		if st.Blobs != 1 {
			t.Fatalf("blobs = %d, want 1 (deduplicated)", st.Blobs)
		}
		if st.Bytes != int64(len(artifact)) {
			t.Fatalf("bytes = %d, want %d", st.Bytes, len(artifact))
		}
	})
}

func TestPutGetProperty(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		f := func(data []byte) bool {
			hash, err := s.PutBlob(data)
			if err != nil {
				return false
			}
			got, err := s.GetBlob(hash)
			return err == nil && bytes.Equal(got, data)
		}
		cfg := &quick.Config{MaxCount: 40}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestIncrementSequential(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		for want := 1; want <= 5; want++ {
			n, err := s.Increment("meta", "seq")
			if err != nil {
				t.Fatal(err)
			}
			if n != want {
				t.Fatalf("Increment = %d, want %d", n, want)
			}
		}
		// The counter stays readable as plain JSON through Get.
		data, err := s.Get("meta", "seq")
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != "5" {
			t.Fatalf("stored counter = %q, want \"5\"", data)
		}
	})
}

func TestIncrementRejectsNonCounter(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		if _, err := s.Put("meta", "seq", []byte("not a number")); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Increment("meta", "seq"); err == nil {
			t.Fatal("Increment over non-integer binding succeeded")
		}
		if _, err := s.Increment("", "seq"); err == nil {
			t.Fatal("Increment with empty namespace succeeded")
		}
	})
}

func TestIncrementConcurrent(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		const goroutines, perG = 16, 50
		var wg sync.WaitGroup
		values := make([][]int, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					n, err := s.Increment("meta", "seq")
					if err != nil {
						t.Error(err)
						return
					}
					values[g] = append(values[g], n)
				}
			}(g)
		}
		wg.Wait()
		seen := make(map[int]bool)
		for _, vs := range values {
			for _, n := range vs {
				if seen[n] {
					t.Fatalf("value %d handed out twice", n)
				}
				seen[n] = true
			}
		}
		if len(seen) != goroutines*perG {
			t.Fatalf("got %d distinct values, want %d", len(seen), goroutines*perG)
		}
	})
}
