package storage

import (
	"fmt"
	"sort"
	"strings"
)

// The paper: "the common storage allows communication between the
// sp-system and the experiment tests using only a few shell variables.
// These variables describe for example the location of the input file of
// the tests, the test outputs and the external software on the client.
// Using thin layers of scripts, a separation of the user part from the
// details of the sp-system is possible."
//
// Env is that contract: the complete interface between the framework and
// an experiment's test scripts. A test that consumes only these variables
// can be ported in or out of the sp-system unchanged.

// The well-known sp-system shell variables.
const (
	// EnvInput names the storage key holding the test's input artifact.
	EnvInput = "SP_INPUT"
	// EnvOutput names the storage key the test must write its output to.
	EnvOutput = "SP_OUTPUT"
	// EnvExternals describes the external software installed on the
	// client, e.g. "CERNLIB-2006+ROOT-5.34".
	EnvExternals = "SP_EXTERNALS"
	// EnvConfig is the platform configuration label, e.g.
	// "SL6/64bit gcc4.4".
	EnvConfig = "SP_CONFIG"
	// EnvRunID is the unique ID of the enclosing validation run.
	EnvRunID = "SP_RUN_ID"
	// EnvJobID is the unique ID of the test job.
	EnvJobID = "SP_JOB_ID"
	// EnvWorkDir is the job's scratch namespace in the store.
	EnvWorkDir = "SP_WORKDIR"
)

// Env is a set of shell variables passed to a test job.
type Env map[string]string

// Clone returns a copy of the environment.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// With returns a copy with the variable set.
func (e Env) With(key, value string) Env {
	out := e.Clone()
	out[key] = value
	return out
}

// Require returns an error naming the first missing or empty variable,
// or nil if all are present.
func (e Env) Require(keys ...string) error {
	for _, k := range keys {
		if e[k] == "" {
			return fmt.Errorf("storage: required shell variable %s is unset", k)
		}
	}
	return nil
}

// Render renders the environment as sorted KEY=VALUE lines, the form in
// which it is recorded with each job for reproducibility.
func (e Env) Render() string {
	keys := make([]string, 0, len(e))
	for k := range e {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s\n", k, e[k])
	}
	return b.String()
}

// ParseEnv parses the Render form back into an Env. Blank lines and lines
// starting with '#' are ignored.
func ParseEnv(s string) (Env, error) {
	e := make(Env)
	for i, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("storage: malformed env line %d: %q", i+1, line)
		}
		e[line[:eq]] = line[eq+1:]
	}
	return e, nil
}
