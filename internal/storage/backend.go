package storage

import (
	"crypto/sha256"
	"encoding/hex"
)

// Backend is a storage engine underneath a Store. The Store owns the
// public API — name validation, hashing of blob contents (outside any
// backend lock), snapshots — and delegates the actual keeping of bytes
// to a Backend. Two implementations ship with the framework:
//
//   - the in-memory backend (NewMemoryBackend, the default behind
//     NewStore), which preserves the original sp-system semantics for
//     tests and simulations, and
//   - the on-disk content-addressed backend (OpenFSBackend, behind
//     Open), which survives process exit — the property the paper's
//     keep-everything policy actually requires.
//
// A Backend must be safe for concurrent use by any number of
// goroutines. Names passed to the binding methods are pre-validated
// "namespace/key" strings; blob hashes are lowercase SHA-256 hex
// computed by the caller with HashBytes.
type Backend interface {
	// PutBlob stores content under its precomputed SHA-256 hex hash.
	// Storing the same hash twice is a no-op; the backend may assume
	// hash == HashBytes(data). The backend must not alias data after
	// returning.
	PutBlob(hash string, data []byte) error
	// GetBlob returns a copy of the content with the given hash, or an
	// error if it is absent (or, for durable backends, corrupt).
	GetBlob(hash string) ([]byte, error)
	// HasBlob reports whether content with the given hash is stored.
	HasBlob(hash string) bool
	// ListBlobs returns the hashes of all stored blobs, sorted.
	ListBlobs() ([]string, error)

	// BindName points a validated "namespace/key" name at a stored
	// blob hash, replacing any existing binding.
	BindName(name, hash string) error
	// ResolveName returns the hash bound to the name.
	ResolveName(name string) (string, bool)
	// ListNames returns all bound names, sorted.
	ListNames() ([]string, error)

	// Increment atomically increments the integer counter bound to the
	// name and returns the new value. A missing binding counts from
	// zero. The counter is kept as an ordinary JSON blob binding, so it
	// stays readable through ResolveName/GetBlob and survives in
	// snapshots; the read-modify-write must be atomic with respect to
	// every other Increment of the same backend.
	Increment(name string) (int, error)

	// Stats summarizes stored contents.
	Stats() (Stats, error)
	// Close flushes and releases the backend. The in-memory backend's
	// Close is a no-op; the on-disk backend syncs its name journal.
	Close() error
}

// HashBytes returns the lowercase SHA-256 hex digest of data — the blob
// address used throughout the store.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
