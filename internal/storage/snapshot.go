package storage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// The names.snapshot file: the journal's state at a compaction point,
// so Open replays the (short) journal tail instead of the lifetime
// history. The format is one JSON header line followed by one journal
// entry line per binding, sorted by name:
//
//	{"format":1,"generation":3,"bindings":2,"blobs":9,"blob_bytes":512,"crc":"9ae1f2c4"}
//	{"n":"meta/runseq","h":"ab..."}
//	{"n":"runs/run-0001","h":"cd..."}
//
// The header carries:
//
//   - format: the snapshot format version; an unknown version is an
//     Open-time error (fail-stop beats silently ignoring a snapshot the
//     journal was truncated against).
//   - generation: a counter bumped by every compaction. Read-only views
//     compare it in Refresh to detect that a compaction replaced the
//     journal under them and a stale byte offset must not be trusted.
//   - bindings + crc (CRC-32C of the body bytes): load-time integrity.
//     A snapshot that fails either check is an error, never silently
//     partial — the journal prefix it replaced is gone.
//   - blobs/blob_bytes: exact blob statistics at compaction time, so a
//     reopen of a compacted store with an empty journal tail skips the
//     O(blobs) tree walk entirely.
//
// A store without names.snapshot is a pre-compaction (PR 4 era) store
// and loads exactly as before: full journal replay, generation 0.

// snapshotName is the snapshot file name inside a store directory.
const snapshotName = "names.snapshot"

// snapshotFormat is the current snapshot format version.
const snapshotFormat = 1

// snapshotHeader is the first line of names.snapshot.
type snapshotHeader struct {
	Format     int    `json:"format"`
	Generation int    `json:"generation"`
	Bindings   int    `json:"bindings"`
	Blobs      int    `json:"blobs"`
	BlobBytes  int64  `json:"blob_bytes"`
	CRC        string `json:"crc"`
}

var snapshotCRCTable = crc32.MakeTable(crc32.Castagnoli)

func snapshotPath(dir string) string { return filepath.Join(dir, snapshotName) }

// encodeSnapshot renders the snapshot file bytes for the given bindings
// and header skeleton (Format, Bindings and CRC are filled in here).
func encodeSnapshot(hdr snapshotHeader, names map[string]string) ([]byte, error) {
	keys := make([]string, 0, len(names))
	for nk := range names {
		keys = append(keys, nk)
	}
	sort.Strings(keys)
	var body bytes.Buffer
	body.Grow(len(keys) * 96)
	for _, nk := range keys {
		line, err := json.Marshal(journalEntry{Name: nk, Hash: names[nk]})
		if err != nil {
			return nil, fmt.Errorf("storage: encoding snapshot entry %s: %w", nk, err)
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	hdr.Format = snapshotFormat
	hdr.Bindings = len(keys)
	hdr.CRC = fmt.Sprintf("%08x", crc32.Checksum(body.Bytes(), snapshotCRCTable))
	head, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("storage: encoding snapshot header: %w", err)
	}
	out := make([]byte, 0, len(head)+1+body.Len())
	out = append(out, head...)
	out = append(out, '\n')
	out = append(out, body.Bytes()...)
	return out, nil
}

// decodeSnapshot parses and verifies snapshot file bytes into a binding
// map. Every failure is an error: the snapshot stands in for journal
// history that no longer exists, so a damaged one must stop the load,
// not degrade it.
func decodeSnapshot(data []byte) (map[string]string, snapshotHeader, error) {
	var hdr snapshotHeader
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, hdr, fmt.Errorf("storage: snapshot has no header line")
	}
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return nil, hdr, fmt.Errorf("storage: corrupt snapshot header: %w", err)
	}
	if hdr.Format != snapshotFormat {
		return nil, hdr, fmt.Errorf("storage: snapshot format %d is not supported (want %d)", hdr.Format, snapshotFormat)
	}
	body := data[nl+1:]
	if crc := fmt.Sprintf("%08x", crc32.Checksum(body, snapshotCRCTable)); crc != hdr.CRC {
		return nil, hdr, fmt.Errorf("storage: snapshot fails checksum verification (crc %s, header says %s)", crc, hdr.CRC)
	}
	names := make(map[string]string, hdr.Bindings)
	for len(body) > 0 {
		nl := bytes.IndexByte(body, '\n')
		if nl < 0 {
			return nil, hdr, fmt.Errorf("storage: snapshot body has an unterminated line")
		}
		name, hash, err := decodeJournalEntry(body[:nl])
		if err != nil {
			return nil, hdr, fmt.Errorf("storage: snapshot entry: %w", err)
		}
		names[name] = hash
		body = body[nl+1:]
	}
	if len(names) != hdr.Bindings {
		return nil, hdr, fmt.Errorf("storage: snapshot holds %d bindings, header says %d", len(names), hdr.Bindings)
	}
	return names, hdr, nil
}

// loadSnapshot reads <dir>/names.snapshot. ok is false when the store
// has no snapshot (never compacted); any other failure is an error.
func loadSnapshot(dir string) (names map[string]string, hdr snapshotHeader, ok bool, err error) {
	data, err := os.ReadFile(snapshotPath(dir))
	if os.IsNotExist(err) {
		return nil, hdr, false, nil
	}
	if err != nil {
		return nil, hdr, false, fmt.Errorf("storage: reading snapshot: %w", err)
	}
	names, hdr, err = decodeSnapshot(data)
	if err != nil {
		return nil, hdr, false, err
	}
	return names, hdr, true, nil
}

// readSnapshotHeader returns the header of <dir>/names.snapshot without
// loading its body. ok is false when the store has no snapshot.
func readSnapshotHeader(dir string) (hdr snapshotHeader, ok bool, err error) {
	f, err := os.Open(snapshotPath(dir))
	if os.IsNotExist(err) {
		return hdr, false, nil
	}
	if err != nil {
		return hdr, false, fmt.Errorf("storage: reading snapshot header: %w", err)
	}
	defer f.Close()
	// The header is one short JSON line; 4 KiB is orders of magnitude
	// more than it can occupy.
	buf := make([]byte, 4096)
	n, err := f.Read(buf)
	if n == 0 && err != nil {
		return hdr, false, fmt.Errorf("storage: reading snapshot header: %w", err)
	}
	nl := bytes.IndexByte(buf[:n], '\n')
	if nl < 0 {
		return hdr, false, fmt.Errorf("storage: snapshot has no header line")
	}
	if err := json.Unmarshal(buf[:nl], &hdr); err != nil {
		return hdr, false, fmt.Errorf("storage: corrupt snapshot header: %w", err)
	}
	return hdr, true, nil
}

// readSnapshotGeneration returns the generation of <dir>/names.snapshot
// — the cheap staleness probe a read-only view runs on every Refresh. A
// store with no snapshot is generation 0.
func readSnapshotGeneration(dir string) (int, error) {
	hdr, _, err := readSnapshotHeader(dir)
	return hdr.Generation, err
}

// decodeJournalEntry parses one journal/snapshot entry line and
// validates its shape. The fast path exploits the fact that every line
// was produced by json.Marshal(journalEntry{...}) — `{"n":"...","h":"..."}`
// with escapes only where JSON demands them — and falls back to the
// full decoder whenever an escape (or anything unexpected) appears.
// Snapshot loads run this per binding, so the fast path is what makes
// reopening a million-binding store cheap.
func decodeJournalEntry(line []byte) (name, hash string, err error) {
	if name, hash, ok := fastEntry(line); ok {
		if !validName(name) || hash == "" {
			return "", "", fmt.Errorf("storage: entry %q is malformed", line)
		}
		return name, hash, nil
	}
	var e journalEntry
	if err := json.Unmarshal(line, &e); err != nil {
		return "", "", fmt.Errorf("storage: entry %q is malformed: %w", line, err)
	}
	if !validName(e.Name) || e.Hash == "" {
		return "", "", fmt.Errorf("storage: entry %q is malformed", line)
	}
	return e.Name, e.Hash, nil
}

// fastEntry matches the exact marshaled shape of a journalEntry line
// with no escape sequences. ok=false means "use the real decoder", not
// "malformed".
func fastEntry(line []byte) (name, hash string, ok bool) {
	const pre = `{"n":"`
	const mid = `","h":"`
	const end = `"}`
	if !bytes.HasPrefix(line, []byte(pre)) || bytes.IndexByte(line, '\\') >= 0 {
		return "", "", false
	}
	rest := line[len(pre):]
	i := bytes.Index(rest, []byte(mid))
	if i < 0 {
		return "", "", false
	}
	tail := rest[i+len(mid):]
	if !bytes.HasSuffix(tail, []byte(end)) {
		return "", "", false
	}
	h := tail[:len(tail)-len(end)]
	if bytes.IndexByte(h, '"') >= 0 {
		return "", "", false
	}
	return string(rest[:i]), string(h), true
}
