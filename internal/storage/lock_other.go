//go:build !(darwin || dragonfly || freebsd || linux || netbsd || openbsd)

package storage

import "os"

// lockSupported reports whether this platform enforces the
// one-live-writer rule with an OS advisory lock.
const lockSupported = false

// lockStoreDir is a no-op where the standard library exposes no flock:
// the one-live-writer rule on FSBackend falls back to being a
// documented convention there. (A plain O_EXCL lock file is
// deliberately not used — it would outlive a crashed writer and
// permanently wedge the store, which is worse than no lock.)
func lockStoreDir(dir string) (*os.File, error) { return nil, nil }

// lockStoreDirShared is likewise a no-op: read-only views work, but
// the shared-reader registration documented in lock_unix.go is a
// convention only on these platforms.
func lockStoreDirShared(dir string) (*os.File, error) { return nil, nil }
