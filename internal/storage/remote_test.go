package storage

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// serveStore mounts the store API the way spserve does — under /api/v1
// — and returns the test server.
func serveStore(t *testing.T, store *Store) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.StripPrefix("/api/v1", NewAPIHandler(store, nil)))
	t.Cleanup(ts.Close)
	return ts
}

// fastRemote opens a remote view with no real backoff delay.
func fastRemote(t *testing.T, url string) *Store {
	t.Helper()
	s, err := OpenRemoteWith(url, RemoteOptions{Backoff: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestRemoteReadSurface drives the full Backend read surface through
// the HTTP pair: the same queries that work against a directory must
// work against a URL.
func TestRemoteReadSurface(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	h1, err := w.Put("runs", "run-0001", []byte(`{"run_id":"run-0001"}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Put("exp", "cfg", []byte("config")); err != nil {
		t.Fatal(err)
	}

	ts := serveStore(t, w)
	r := fastRemote(t, ts.URL)

	if got, err := r.Get("runs", "run-0001"); err != nil || string(got) != `{"run_id":"run-0001"}` {
		t.Fatalf("remote Get = %q, %v", got, err)
	}
	if hash, err := r.Hash("runs", "run-0001"); err != nil || hash != h1 {
		t.Fatalf("remote Hash = %q, %v; want %q", hash, err, h1)
	}
	if !r.HasBlob(h1) {
		t.Fatal("remote HasBlob = false for a present blob")
	}
	if r.HasBlob(strings.Repeat("0", 64)) {
		t.Fatal("remote HasBlob = true for an absent blob")
	}
	if keys := r.List("runs"); len(keys) != 1 || keys[0] != "run-0001" {
		t.Fatalf("remote List(runs) = %v", keys)
	}
	ns := r.Namespaces()
	if len(ns) != 2 {
		t.Fatalf("remote Namespaces = %v", ns)
	}
	blobs, err := r.Backend().ListBlobs()
	if err != nil || len(blobs) != 2 {
		t.Fatalf("remote ListBlobs = %v, %v", blobs, err)
	}
	st := r.Stats()
	if st.Bindings != 2 || st.Blobs != 2 || st.Bytes == 0 {
		t.Fatalf("remote Stats = %+v", st)
	}
	info, err := r.Info()
	if err != nil || info.Bindings != 2 {
		t.Fatalf("remote Info = %+v, %v", info, err)
	}

	// The remote position is the source's position: derived state keyed
	// by it stays valid across the network boundary.
	wantPos, wantOK := w.Position()
	gotPos, gotOK := r.Position()
	if gotPos != wantPos || gotOK != wantOK {
		t.Fatalf("remote Position = %+v/%v, source %+v/%v", gotPos, gotOK, wantPos, wantOK)
	}
}

// TestRemoteReadOnly verifies every mutation fails with ErrReadOnly,
// same as the shared-lock read view.
func TestRemoteReadOnly(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	h, err := w.Put("runs", "run-0001", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	ts := serveStore(t, w)
	r := fastRemote(t, ts.URL)

	if _, err := r.Put("runs", "run-0002", []byte("y")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("remote Put error = %v, want ErrReadOnly", err)
	}
	if err := r.Bind("runs", "run-0002", h); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("remote Bind error = %v, want ErrReadOnly", err)
	}
	if _, err := r.Increment("counters", "n"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("remote Increment error = %v, want ErrReadOnly", err)
	}
	if _, err := r.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("remote Compact error = %v, want ErrReadOnly", err)
	}
}

// TestRemoteRefreshTracksWriter mirrors the readview refresh test
// across the HTTP boundary: new bindings appear only after Refresh, and
// an unchanged position makes Refresh skip the names re-walk entirely.
func TestRemoteRefreshTracksWriter(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Put("runs", "run-0001", []byte("one")); err != nil {
		t.Fatal(err)
	}

	var nameWalks atomic.Int64
	inner := http.StripPrefix("/api/v1", NewAPIHandler(w, nil))
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/api/v1/names" {
			nameWalks.Add(1)
		}
		inner.ServeHTTP(rw, req)
	}))
	defer ts.Close()
	r := fastRemote(t, ts.URL)
	walksAfterOpen := nameWalks.Load()

	if _, err := w.Put("runs", "run-0002", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if r.Exists("runs", "run-0002") {
		t.Fatal("remote view saw a binding before Refresh")
	}
	if err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if !r.Exists("runs", "run-0002") {
		t.Fatal("Refresh did not pick up the writer's new binding")
	}
	if got := nameWalks.Load(); got != walksAfterOpen+1 {
		t.Fatalf("changed-position Refresh walked names %d times, want 1", got-walksAfterOpen)
	}

	// Steady state: position unchanged, Refresh is one /position GET.
	for i := 0; i < 3; i++ {
		if err := r.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	if got := nameWalks.Load(); got != walksAfterOpen+1 {
		t.Fatalf("unchanged-position Refresh re-walked names (%d walks total)", got-walksAfterOpen)
	}
}

// TestRemoteNamesPaging forces the mirror to assemble from many pages.
func TestRemoteNamesPaging(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := w.Put("runs", fmt.Sprintf("run-%04d", i), []byte(fmt.Sprintf("run %d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Cap every page at 7 entries so the client must follow next_after.
	inner := http.StripPrefix("/api/v1", NewAPIHandler(w, nil))
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		if req.URL.Path == "/api/v1/names" || req.URL.Path == "/api/v1/blobs" {
			q.Set("limit", "7")
			req.URL.RawQuery = q.Encode()
		}
		inner.ServeHTTP(rw, req)
	}))
	defer ts.Close()
	r := fastRemote(t, ts.URL)

	if keys := r.List("runs"); len(keys) != n {
		t.Fatalf("remote List over paged names = %d keys, want %d", len(keys), n)
	}
	blobs, err := r.Backend().ListBlobs()
	if err != nil || len(blobs) != n {
		t.Fatalf("remote ListBlobs over paged listing = %d, %v; want %d", len(blobs), err, n)
	}
}

// TestRemoteBlobVerification corrupts the wire bytes and expects the
// client to refuse them: transport corruption must surface at the point
// of access, never flow into a consumer or a replica.
func TestRemoteBlobVerification(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	hash, err := w.Put("runs", "run-0001", []byte("honest content"))
	if err != nil {
		t.Fatal(err)
	}

	inner := http.StripPrefix("/api/v1", NewAPIHandler(w, nil))
	var corrupt atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if corrupt.Load() && strings.HasPrefix(req.URL.Path, "/api/v1/blob/") && req.Method == http.MethodGet {
			rw.Write([]byte("tampered content"))
			return
		}
		inner.ServeHTTP(rw, req)
	}))
	defer ts.Close()
	r := fastRemote(t, ts.URL)

	if got, err := r.GetBlob(hash); err != nil || string(got) != "honest content" {
		t.Fatalf("clean GetBlob = %q, %v", got, err)
	}
	corrupt.Store(true)
	if _, err := r.GetBlob(hash); err == nil || !strings.Contains(err.Error(), "hash verification") {
		t.Fatalf("corrupt GetBlob error = %v, want hash verification failure", err)
	}
}

// TestRemoteRetryBackoff fails the first two attempts with 500s and
// verifies the client retries with doubling delays through the
// injected sleep seam, then succeeds.
func TestRemoteRetryBackoff(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Put("runs", "run-0001", []byte("x")); err != nil {
		t.Fatal(err)
	}

	var failures atomic.Int64
	failures.Store(2)
	inner := http.StripPrefix("/api/v1", NewAPIHandler(w, nil))
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if failures.Add(-1) >= 0 {
			WriteAPIError(rw, http.StatusInternalServerError, "internal", "injected failure")
			return
		}
		inner.ServeHTTP(rw, req)
	}))
	defer ts.Close()

	b, err := OpenRemoteBackend(ts.URL, RemoteOptions{Backoff: time.Millisecond})
	if err != nil {
		t.Fatalf("open with transient 500s: %v", err)
	}
	defer b.Close()

	// Replay the failure pattern against a fresh request with a
	// recording sleep stub: two retries, doubling delay.
	var slept []time.Duration
	b.sleep = func(d time.Duration) { slept = append(slept, d) }
	failures.Store(2)
	if _, err := b.RemotePosition(); err != nil {
		t.Fatalf("position after retries: %v", err)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("backoff sleeps = %v, want [1ms 2ms]", slept)
	}

	// Permanent failure exhausts the attempt budget and reports it.
	failures.Store(1 << 30)
	slept = nil
	if _, err := b.RemotePosition(); err == nil || !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("permanent-failure error = %v", err)
	}
	if len(slept) != 2 {
		t.Fatalf("permanent failure slept %d times, want 2 (retries-1)", len(slept))
	}
}

// TestRemoteDefinitive4xx: client errors are definitive — no retry.
func TestRemoteDefinitive4xx(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Put("runs", "run-0001", []byte("x")); err != nil {
		t.Fatal(err)
	}
	var requests atomic.Int64
	inner := http.StripPrefix("/api/v1", NewAPIHandler(w, nil))
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		requests.Add(1)
		inner.ServeHTTP(rw, req)
	}))
	defer ts.Close()
	r := fastRemote(t, ts.URL)
	before := requests.Load()
	if _, err := r.GetBlob(strings.Repeat("b", 64)); err == nil {
		t.Fatal("GetBlob on absent hash succeeded")
	}
	if got := requests.Load() - before; got != 1 {
		t.Fatalf("404 triggered %d requests, want 1 (no retry on 4xx)", got)
	}
}

// TestOpenView dispatches directories to the shared-lock view and URLs
// to the remote view, and rejects garbage either way.
func TestOpenView(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Put("runs", "run-0001", []byte("x")); err != nil {
		t.Fatal(err)
	}
	ts := serveStore(t, w)

	v1, err := OpenView(dir)
	if err != nil {
		t.Fatalf("OpenView(dir): %v", err)
	}
	defer v1.Close()
	if _, ok := v1.Backend().(*FSReadBackend); !ok {
		t.Fatalf("OpenView(dir) backend = %T", v1.Backend())
	}

	v2, err := OpenView(ts.URL)
	if err != nil {
		t.Fatalf("OpenView(url): %v", err)
	}
	defer v2.Close()
	if _, ok := v2.Backend().(*RemoteBackend); !ok {
		t.Fatalf("OpenView(url) backend = %T", v2.Backend())
	}
	if !v2.Exists("runs", "run-0001") {
		t.Fatal("OpenView(url) does not see the binding")
	}
	w.Close()

	if _, err := OpenRemote("ftp://nope"); err == nil {
		t.Fatal("OpenRemote accepted a non-http URL")
	}
	if !IsRemoteStore("http://x") || !IsRemoteStore("https://x") || IsRemoteStore("/tmp/store") {
		t.Fatal("IsRemoteStore misclassifies")
	}
}
