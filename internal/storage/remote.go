package storage

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cron"
)

// RemoteBackend is a read-only view of a store served by another
// process over the versioned store API (api.go) — the multi-site form
// of the common storage. Where FSReadBackend attaches to a directory
// through a shared lock, RemoteBackend attaches to a URL: everything
// built on the Store query surface (bookkeep.Index, spreport, spsys
// runs/matrix/history, even spserve itself as a relay) works unmodified
// against `-store http://replica:8344`.
//
// Semantics mirror FSReadBackend deliberately:
//
//   - Name state is a local mirror refreshed on demand: Refresh probes
//     /position (one tiny GET) and re-walks the paged /names listing
//     only when the remote position moved. Between refreshes,
//     ResolveName/ListNames answer from memory at zero network cost.
//   - Every blob read is re-verified against its hash after transfer —
//     the read-time verification the on-disk backends perform, applied
//     to bytes that crossed a network instead of a disk.
//   - Without a token, all mutations fail with ErrReadOnly. With
//     RemoteOptions.Token the backend is write-capable: every mutation
//     (blob put, bind, counter increment, compare-and-swap) posts to
//     the authenticated write routes (writeapi.go) and lands in the
//     flock-holding primary's journal — how `spd -worker -store
//     http://primary/` executes cells with no local copy. Successful
//     writes update the local name mirror immediately, so a worker
//     reads its own writes without a Refresh round trip.
//
// Like the read view's journal tailing, a names walk under a live
// writer can only under-claim: the position is sampled before the walk
// and names are never deleted, so the mirror always holds at least the
// sampled position's bindings; anything newer is picked up by the next
// Refresh.
//
// Transient transport failures and 5xx responses are retried with
// exponential backoff (the sleep function is a cron.Sleeper seam, so
// tests substitute a recording stub). 4xx responses are definitive and
// never retried.
type RemoteBackend struct {
	base    string // scheme://host[:port][/prefix], no trailing slash
	client  *http.Client
	retries int
	backoff time.Duration
	sleep   func(time.Duration)
	token   string // shared write token; "" = read-only view

	mu    sync.RWMutex
	names map[string]string // guarded by mu; mirror of the remote bindings
	pos   Position          // guarded by mu; remote position the mirror covers
	posOK bool              // guarded by mu
}

// RemoteOptions configures OpenRemoteWith.
type RemoteOptions struct {
	// Client is the HTTP client; nil means a client with a 30s total
	// request timeout.
	Client *http.Client
	// Retries is the number of attempts per request on transport errors
	// and 5xx responses; 0 means the default (3).
	Retries int
	// Backoff is the first retry's delay, doubled per attempt; 0 means
	// the default (200ms).
	Backoff time.Duration
	// Token enables writes: mutations are sent to the write routes of
	// the store API with "Authorization: Bearer <token>". Empty keeps
	// the classic read-only remote view.
	Token string
}

// IsRemoteStore reports whether the -store argument names a remote
// store URL rather than a directory.
func IsRemoteStore(s string) bool {
	return strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://")
}

// OpenRemote returns a Store over a read-only remote view of the store
// served at baseURL — an spserve process (or anything mounting
// APIHandler under /api/v1/). The initial name mirror is fetched before
// returning, so a mistyped URL fails here, not on first query.
func OpenRemote(baseURL string) (*Store, error) {
	return OpenRemoteWith(baseURL, RemoteOptions{})
}

// OpenRemoteWith is OpenRemote with explicit options.
func OpenRemoteWith(baseURL string, opts RemoteOptions) (*Store, error) {
	b, err := OpenRemoteBackend(baseURL, opts)
	if err != nil {
		return nil, err
	}
	return &Store{backend: b}, nil
}

// OpenRemoteBackend opens the backend form of OpenRemote.
func OpenRemoteBackend(baseURL string, opts RemoteOptions) (*RemoteBackend, error) {
	u, err := url.Parse(baseURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("storage: opening remote store: %q is not an http(s) store URL", baseURL)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	retries := opts.Retries
	if retries <= 0 {
		retries = 3
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}
	b := &RemoteBackend{
		base:    strings.TrimRight(baseURL, "/"),
		client:  client,
		retries: retries,
		backoff: backoff,
		sleep:   cron.Sleeper(),
		token:   opts.Token,
		names:   make(map[string]string),
	}
	if err := b.Refresh(); err != nil {
		// The unreachable/API errors below already name the store and
		// start with the package prefix; re-wrapping would print the URL
		// twice on the one line a CLI user reads.
		if strings.HasPrefix(err.Error(), "storage: ") {
			return nil, err
		}
		return nil, fmt.Errorf("storage: opening remote store %s: %w", b.base, err)
	}
	return b, nil
}

// OpenView opens the read surface of a store named by a -store
// argument: the shared-lock read-only view for a directory, the remote
// view for an http(s) URL. This is the dispatch every inspection CLI
// (spsys runs/matrix/history, spreport, a relaying spserve) applies, so
// "a URL instead of a directory" works uniformly across them.
func OpenView(dirOrURL string) (*Store, error) {
	if IsRemoteStore(dirOrURL) {
		return OpenRemote(dirOrURL)
	}
	// Anything else scheme-like is a mistyped URL, not a directory name:
	// say so instead of letting the filesystem open "ftp://host" as a
	// relative path and report a baffling ENOENT.
	if i := strings.Index(dirOrURL, "://"); i >= 0 {
		return nil, fmt.Errorf("storage: %q is not a store: scheme %q is not supported (use a directory path or an http(s) URL)",
			dirOrURL, dirOrURL[:i])
	}
	return OpenReadOnly(dirOrURL)
}

// rootCause returns the innermost error of the chain — the short
// "connection refused" / "no such host" a person acts on — shedding the
// url.Error and net.OpError wrappers that repeat the URL and method
// around it.
func rootCause(err error) error {
	for {
		next := errors.Unwrap(err)
		if next == nil {
			return err
		}
		err = next
	}
}

// apiURL joins the base with a store-API path and query.
func (b *RemoteBackend) apiURL(path string, query url.Values) string {
	s := b.base + "/api/v1" + path
	if len(query) > 0 {
		s += "?" + query.Encode()
	}
	return s
}

// remoteAPIError decodes the error envelope from a non-2xx response
// body, falling back to the raw status.
func remoteAPIError(resp *http.Response, body []byte) error {
	var doc APIErrorDoc
	if err := json.Unmarshal(body, &doc); err == nil && doc.Error.Message != "" {
		return fmt.Errorf("remote store: %s (%s)", doc.Error.Message, doc.Error.Code)
	}
	return fmt.Errorf("remote store: HTTP %s", resp.Status)
}

// get performs one GET (or HEAD) with retry/backoff, returning the
// status code and, for GET, the full body. Transport errors and 5xx
// responses are retried up to b.retries attempts with doubling backoff;
// any 2xx/4xx answer is definitive.
func (b *RemoteBackend) get(method, rawURL string) (status int, body []byte, err error) {
	return b.do(method, rawURL, nil)
}

// do performs one request with retry/backoff; reqBody non-nil makes it
// a write carrying the bearer token. The retry policy is the same as
// reads — a write whose response was lost in transit may be retried
// after it landed, which every write route tolerates: blob puts and
// binds are idempotent, a re-tried counter increment can only skip an
// ID (never reuse one), and a re-tried CAS observes its own earlier
// win as a lost race, which lease callers treat as "not mine" — safe,
// because an unexecuted claim simply expires.
func (b *RemoteBackend) do(method, rawURL string, reqBody []byte) (status int, body []byte, err error) {
	delay := b.backoff
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if reqBody != nil {
			rd = bytes.NewReader(reqBody)
		}
		req, rerr := http.NewRequest(method, rawURL, rd)
		if rerr != nil {
			return 0, nil, fmt.Errorf("storage: remote request %s: %w", rawURL, rerr)
		}
		if reqBody != nil {
			req.Header.Set("Authorization", "Bearer "+b.token)
		}
		resp, rerr := b.client.Do(req)
		if rerr == nil {
			body, rerr = io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode < 500 {
				if resp.StatusCode >= 400 {
					return resp.StatusCode, body, remoteAPIError(resp, body)
				}
				return resp.StatusCode, body, nil
			}
			if rerr == nil {
				rerr = remoteAPIError(resp, body)
			}
		}
		err = rerr
		if attempt+1 >= b.retries {
			// One line naming the store and the root cause; the transport
			// wrappers in between repeat the URL without adding anything.
			return 0, nil, fmt.Errorf("storage: remote store %s unreachable after %d attempts: %v", b.base, b.retries, rootCause(err))
		}
		b.sleep(delay)
		delay *= 2
	}
}

// getJSON GETs and decodes one API document.
func (b *RemoteBackend) getJSON(rawURL string, v interface{}) error {
	_, body, err := b.get(http.MethodGet, rawURL)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("storage: remote store %s: malformed API response: %w", b.base, err)
	}
	return nil
}

// RemotePosition fetches the remote store's current history position —
// one tiny GET, no mirror update. It is what a follower probes to
// compute replication lag.
func (b *RemoteBackend) RemotePosition() (PositionDoc, error) {
	var doc PositionDoc
	if err := b.getJSON(b.apiURL("/position", nil), &doc); err != nil {
		return PositionDoc{}, err
	}
	return doc, nil
}

// Refresh catches the name mirror up with the remote store. The cheap
// steady-state path is one /position GET; only when the remote position
// moved (or the remote has no positional history to compare) is the
// paged /names listing re-walked. Mirrors (*FSReadBackend).Refresh.
func (b *RemoteBackend) Refresh() error {
	doc, err := b.RemotePosition()
	if err != nil {
		return err
	}
	b.mu.RLock()
	unchanged := doc.PositionOK && b.posOK && doc.Position == b.pos && len(b.names) > 0
	b.mu.RUnlock()
	if unchanged {
		return nil
	}
	// The position was sampled before the walk, so the mirror can only
	// under-claim coverage — a binding recorded mid-walk is either
	// listed now or picked up by the next Refresh.
	names := make(map[string]string)
	after := ""
	for {
		q := url.Values{"limit": {fmt.Sprint(MaxPageLimit)}}
		if after != "" {
			q.Set("after", after)
		}
		var page NamesPageDoc
		if err := b.getJSON(b.apiURL("/names", q), &page); err != nil {
			return err
		}
		for _, bind := range page.Bindings {
			if !validName(bind.Name) || !ValidBlobHash(bind.Hash) {
				return fmt.Errorf("storage: remote store %s served malformed binding %q -> %q", b.base, bind.Name, bind.Hash)
			}
			names[bind.Name] = bind.Hash
		}
		if page.NextAfter == "" {
			break
		}
		after = page.NextAfter
	}
	b.mu.Lock()
	b.names, b.pos, b.posOK = names, doc.Position, doc.PositionOK
	b.mu.Unlock()
	return nil
}

// GetBlob fetches the content and re-verifies it against its hash, so
// corruption — on the remote disk or in transit — surfaces as an error
// at the point of access, exactly like a local read.
func (b *RemoteBackend) GetBlob(hash string) ([]byte, error) {
	if !ValidBlobHash(hash) {
		return nil, fmt.Errorf("storage: no blob %s", shortHash(hash))
	}
	status, body, err := b.get(http.MethodGet, b.apiURL("/blob/"+hash, nil))
	if status == http.StatusNotFound {
		return nil, fmt.Errorf("storage: no blob %s", shortHash(hash))
	}
	if err != nil {
		return nil, fmt.Errorf("storage: reading remote blob %s: %w", shortHash(hash), err)
	}
	if HashBytes(body) != hash {
		return nil, fmt.Errorf("storage: remote blob %s fails hash verification (corrupt at source or in transit)", shortHash(hash))
	}
	return body, nil
}

// HasBlob probes blob existence with one HEAD request.
func (b *RemoteBackend) HasBlob(hash string) bool {
	if !ValidBlobHash(hash) {
		return false
	}
	status, _, err := b.get(http.MethodHead, b.apiURL("/blob/"+hash, nil))
	return err == nil && status == http.StatusOK
}

// ListBlobs walks the remote paged blob listing and returns all hashes,
// sorted. Like the on-disk tree walk it stands in for, this is a
// sync/diagnostic path, not a hot path.
func (b *RemoteBackend) ListBlobs() ([]string, error) {
	blobs, err := b.ListBlobSizes()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(blobs))
	for i, bd := range blobs {
		out[i] = bd.Hash
	}
	return out, nil
}

// ListBlobSizes is ListBlobs with per-blob sizes — what the sync engine
// diffs, and what Stats sums.
func (b *RemoteBackend) ListBlobSizes() ([]BlobDoc, error) {
	var out []BlobDoc
	after := ""
	for {
		q := url.Values{"limit": {fmt.Sprint(MaxPageLimit)}}
		if after != "" {
			q.Set("after", after)
		}
		var page BlobsPageDoc
		if err := b.getJSON(b.apiURL("/blobs", q), &page); err != nil {
			return nil, err
		}
		out = append(out, page.Blobs...)
		if page.NextAfter == "" {
			break
		}
		after = page.NextAfter
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hash < out[j].Hash })
	return out, nil
}

// ResolveName answers from the mirror as of the last Refresh.
func (b *RemoteBackend) ResolveName(name string) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	hash, ok := b.names[name]
	return hash, ok
}

// ListNames returns all mirrored names, sorted.
func (b *RemoteBackend) ListNames() ([]string, error) {
	b.mu.RLock()
	out := make([]string, 0, len(b.names))
	for nk := range b.names {
		out = append(out, nk)
	}
	b.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}

// Writable reports whether the backend was opened with a write token.
func (b *RemoteBackend) Writable() bool { return b.token != "" }

// postJSON posts one write document and decodes the response.
func (b *RemoteBackend) postJSON(rawURL string, req, resp interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	_, out, err := b.do(http.MethodPost, rawURL, body)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(out, resp); err != nil {
		return fmt.Errorf("storage: remote store %s: malformed API response: %w", b.base, err)
	}
	return nil
}

// PutBlob uploads the content to the primary's write API. Without a
// token the remote view is read-only and the call fails like the read
// view's would.
func (b *RemoteBackend) PutBlob(hash string, data []byte) error {
	if b.token == "" {
		return fmt.Errorf("storage: PutBlob on %s: %w", b.base, ErrReadOnly)
	}
	_, _, err := b.do(http.MethodPut, b.apiURL("/blob/"+hash, nil), data)
	if err != nil {
		return fmt.Errorf("storage: remote PutBlob %s: %w", shortHash(hash), err)
	}
	return nil
}

// BindName records the binding on the primary, then mirrors it locally
// so the worker reads its own writes without waiting for a Refresh.
func (b *RemoteBackend) BindName(name, hash string) error {
	if b.token == "" {
		return fmt.Errorf("storage: BindName %s on %s: %w", name, b.base, ErrReadOnly)
	}
	var doc NameWriteDoc
	if err := b.postJSON(b.apiURL("/name", nil), NameWriteReq{Name: name, Hash: hash}, &doc); err != nil {
		return fmt.Errorf("storage: remote BindName %s: %w", name, err)
	}
	b.mu.Lock()
	b.names[name] = hash
	b.mu.Unlock()
	return nil
}

// CompareAndSwapName implements Swapper over the write API. The race is
// decided on the primary — the one place that sees every contender —
// and the local mirror is updated only on a win.
func (b *RemoteBackend) CompareAndSwapName(name, oldHash, newHash string) (bool, error) {
	if b.token == "" {
		return false, fmt.Errorf("storage: CompareAndSwapName %s on %s: %w", name, b.base, ErrReadOnly)
	}
	var doc NameWriteDoc
	req := NameWriteReq{Name: name, Hash: newHash, CAS: true, OldHash: oldHash}
	if err := b.postJSON(b.apiURL("/name", nil), req, &doc); err != nil {
		return false, fmt.Errorf("storage: remote CompareAndSwapName %s: %w", name, err)
	}
	if doc.Swapped {
		b.mu.Lock()
		b.names[name] = newHash
		b.mu.Unlock()
	}
	return doc.Swapped, nil
}

// Increment asks the primary to mint the next counter value; atomicity
// lives in the primary backend's critical section, so IDs stay unique
// across every local and remote client of the store.
func (b *RemoteBackend) Increment(name string) (int, error) {
	if b.token == "" {
		return 0, fmt.Errorf("storage: Increment %s on %s: %w", name, b.base, ErrReadOnly)
	}
	var doc CounterDoc
	if err := b.postJSON(b.apiURL("/counter", nil), CounterReq{Name: name}, &doc); err != nil {
		return 0, fmt.Errorf("storage: remote Increment %s: %w", name, err)
	}
	if ValidBlobHash(doc.Hash) {
		b.mu.Lock()
		b.names[name] = doc.Hash
		b.mu.Unlock()
	}
	return doc.Value, nil
}

// Stats reports the mirrored binding count plus blob figures gathered
// through the paged blob listing — a diagnostic walk, like the read
// view's.
func (b *RemoteBackend) Stats() (Stats, error) {
	b.mu.RLock()
	bindings := len(b.names)
	b.mu.RUnlock()
	st := Stats{Bindings: bindings}
	blobs, err := b.ListBlobSizes()
	if err != nil {
		return st, err
	}
	st.Blobs = len(blobs)
	for _, bd := range blobs {
		st.Bytes += bd.Size
	}
	return st, nil
}

// Info extends Stats with the remote position figures, so `spsys store
// stats -store http://...` shows the same shape as a directory.
func (b *RemoteBackend) Info() (StoreInfo, error) {
	st, err := b.Stats()
	if err != nil {
		return StoreInfo{Stats: st}, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	return StoreInfo{Stats: st, Generation: b.pos.Generation, JournalBytes: b.pos.Offset}, nil
}

// Position reports the remote position the mirror covers. Because it is
// the *source's* position, derived state keyed by it (the bookkeep
// index segment a primary saved) validates against the remote view too.
func (b *RemoteBackend) Position() (Position, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.pos, b.posOK
}

// SetSleep replaces the retry backoff's sleep function — the seam
// tests use to make failure probes instant. Production code keeps the
// cron.Sleeper default. Call before the backend is shared across
// goroutines.
func (b *RemoteBackend) SetSleep(fn func(time.Duration)) { b.sleep = fn }

// Close is a no-op: the remote view holds no locks and no files.
func (b *RemoteBackend) Close() error { return nil }
