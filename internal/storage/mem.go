package storage

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// MemoryBackend keeps blobs and name bindings in process memory — the
// original sp-system store semantics, still the default for tests,
// simulations and benchmarks. Everything evaporates on process exit;
// use the on-disk backend (Open / OpenFSBackend) for actual long-term
// preservation.
type MemoryBackend struct {
	mu    sync.RWMutex
	blobs map[string][]byte // SHA-256 hex -> content
	names map[string]string // "namespace/key" -> blob hash
}

// NewMemoryBackend returns an empty in-memory backend.
func NewMemoryBackend() *MemoryBackend {
	return &MemoryBackend{
		blobs: make(map[string][]byte),
		names: make(map[string]string),
	}
}

// PutBlob inserts a blob under its precomputed hash, copying the
// caller's slice. The hash was computed outside this lock, so
// concurrent writers only serialize on the map insert, not on SHA-256.
func (m *MemoryBackend) PutBlob(hash string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.putBlobLocked(hash, data)
	return nil
}

// putBlobLocked inserts a blob. The caller must hold m.mu.
func (m *MemoryBackend) putBlobLocked(hash string, data []byte) {
	if _, ok := m.blobs[hash]; !ok {
		cp := make([]byte, len(data))
		copy(cp, data)
		m.blobs[hash] = cp
	}
}

// GetBlob returns a copy of the content with the given hash.
func (m *MemoryBackend) GetBlob(hash string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.blobs[hash]
	if !ok {
		return nil, fmt.Errorf("storage: no blob %s", shortHash(hash))
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// HasBlob reports whether the backend holds content with the hash.
func (m *MemoryBackend) HasBlob(hash string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.blobs[hash]
	return ok
}

// ListBlobs returns all stored blob hashes, sorted.
func (m *MemoryBackend) ListBlobs() ([]string, error) {
	m.mu.RLock()
	out := make([]string, 0, len(m.blobs))
	for h := range m.blobs {
		out = append(out, h)
	}
	m.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}

// BindName points a name at a blob hash.
func (m *MemoryBackend) BindName(name, hash string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.names[name] = hash
	return nil
}

// ResolveName returns the hash bound to the name.
func (m *MemoryBackend) ResolveName(name string) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	hash, ok := m.names[name]
	return hash, ok
}

// ListNames returns all bound names, sorted.
func (m *MemoryBackend) ListNames() ([]string, error) {
	m.mu.RLock()
	out := make([]string, 0, len(m.names))
	for nk := range m.names {
		out = append(out, nk)
	}
	m.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}

// Increment atomically increments the counter bound to the name. The
// counter blob is tiny, so hashing it under the lock — unavoidable for
// atomicity of the read-modify-write — costs nothing measurable.
func (m *MemoryBackend) Increment(name string) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	if hash, ok := m.names[name]; ok {
		if data, ok := m.blobs[hash]; ok {
			if err := json.Unmarshal(data, &n); err != nil {
				return 0, fmt.Errorf("storage: counter %s is not an integer: %w", name, err)
			}
		}
	}
	n++
	data, _ := json.Marshal(n)
	hash := HashBytes(data)
	m.putBlobLocked(hash, data)
	m.names[name] = hash
	return n, nil
}

// Stats summarizes backend contents.
func (m *MemoryBackend) Stats() (Stats, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st := Stats{Blobs: len(m.blobs), Bindings: len(m.names)}
	for _, b := range m.blobs {
		st.Bytes += int64(len(b))
	}
	return st, nil
}

// Close is a no-op for the in-memory backend.
func (m *MemoryBackend) Close() error { return nil }
