package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReadOnlyWhileWriterHoldsLock is the regression test for the
// inspection-path bug: read-only consumers used to take the exclusive
// writer flock and failed while a campaign was running. A read-only
// view must attach while the writer is live, see its bindings, and
// leave the writer fully functional.
func TestReadOnlyWhileWriterHoldsLock(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Put("runs", "run-0001", []byte(`{"run_id":"run-0001"}`)); err != nil {
		t.Fatal(err)
	}

	// The writer's exclusive lock is held: a second writer must still
	// fail fast, but the read-only view must succeed.
	if lockSupported {
		if _, err := Open(dir); err == nil {
			t.Fatal("second writer opened while the first is live")
		}
	}
	r, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatalf("read-only open while writer live: %v", err)
	}
	defer r.Close()

	got, err := r.Get("runs", "run-0001")
	if err != nil || string(got) != `{"run_id":"run-0001"}` {
		t.Fatalf("reader Get = %q, %v", got, err)
	}

	// The writer keeps writing; the reader picks it up via Refresh.
	if _, err := w.Put("runs", "run-0002", []byte(`{"run_id":"run-0002"}`)); err != nil {
		t.Fatal(err)
	}
	if r.Exists("runs", "run-0002") {
		t.Fatal("reader saw a binding before Refresh")
	}
	if err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if !r.Exists("runs", "run-0002") {
		t.Fatal("Refresh did not pick up the writer's new binding")
	}
	if keys := r.List("runs"); len(keys) != 2 {
		t.Fatalf("List = %v", keys)
	}
}

// TestReadOnlyCoexistsWithReadersAndLaterWriter: multiple readers
// share the store, and a reader being attached never blocks a writer
// from opening.
func TestReadOnlyCoexistsWithReadersAndLaterWriter(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Put("ns", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r1, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatalf("second concurrent reader: %v", err)
	}
	defer r2.Close()

	// A writer opens fine while both readers are live.
	w2, err := Open(dir)
	if err != nil {
		t.Fatalf("writer blocked by live readers: %v", err)
	}
	if _, err := w2.Put("ns", "k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Store{r1, r2} {
		if err := r.Refresh(); err != nil {
			t.Fatal(err)
		}
		if !r.Exists("ns", "k2") {
			t.Fatal("reader missed the later writer's binding")
		}
	}
}

func TestReadOnlyRejectsMutations(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Put("ns", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	r, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.PutBlob([]byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("PutBlob error = %v, want ErrReadOnly", err)
	}
	if _, err := r.Put("ns", "k2", []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put error = %v, want ErrReadOnly", err)
	}
	if _, err := r.Increment("meta", "runseq"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Increment error = %v, want ErrReadOnly", err)
	}
	hash, err := r.Hash("ns", "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind("ns", "alias", hash); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Bind error = %v, want ErrReadOnly", err)
	}
	// Nothing leaked onto disk.
	if data, err := os.ReadFile(filepath.Join(dir, "names.log")); err != nil || strings.Contains(string(data), "alias") {
		t.Fatalf("read-only view mutated the journal: %v %q", err, data)
	}
}

// TestReadOnlyMissingDir: a mistyped path must error, not create a
// store.
func TestReadOnlyMissingDir(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "spstroe")
	if _, err := OpenReadOnly(missing); err == nil {
		t.Fatal("nonexistent directory accepted")
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Fatal("read-only open created the directory")
	}
}

// TestReadOnlyIgnoresTornTail: a crashed writer's torn final journal
// line is not applied and not repaired by the read path; after the next
// writer truncates it and appends, Refresh converges on the new state.
func TestReadOnlyIgnoresTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Put("ns", "good", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: an unterminated half-line at the tail.
	logPath := filepath.Join(dir, "names.log")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"n":"ns/torn","h":"deadbe`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tornSize, _ := os.Stat(logPath)

	r, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatalf("read-only open over torn tail: %v", err)
	}
	defer r.Close()
	if !r.Exists("ns", "good") || r.Exists("ns", "torn") {
		t.Fatal("torn tail applied or good entry lost")
	}
	// The read path repaired nothing.
	if fi, _ := os.Stat(logPath); fi.Size() != tornSize.Size() {
		t.Fatal("read-only open truncated the journal")
	}

	// The next writer truncates the tear and appends; the live reader
	// re-tails to the new state.
	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Put("ns", "after", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if !r.Exists("ns", "after") || r.Exists("ns", "torn") {
		t.Fatal("reader did not converge past the truncated tear")
	}
}

// TestReadOnlyReloadsRecreatedStore: if the directory is wiped and
// re-recorded (journal shorter than what was applied), Refresh starts
// over instead of serving a frankenstate.
func TestReadOnlyReloadsRecreatedStore(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := w.Put("ns", strings.Repeat("k", i+1), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	r, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Re-create the store with a single, different binding.
	if err := os.Remove(filepath.Join(dir, "names.log")); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Put("ns", "fresh", []byte("v")); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	if err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if !r.Exists("ns", "fresh") || r.Exists("ns", "k") {
		t.Fatalf("reader did not reload the recreated store: %v", r.List("ns"))
	}

	// The harder case: the recreated journal grows *past* the applied
	// offset before the next Refresh, so a size check alone cannot
	// detect the swap — the file identity check must.
	if err := os.Remove(filepath.Join(dir, "names.log")); err != nil {
		t.Fatal(err)
	}
	w3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := w3.Put("gen2", fmt.Sprintf("key-%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	w3.Close()
	if err := r.Refresh(); err != nil {
		t.Fatalf("refresh over a longer recreated journal: %v", err)
	}
	if r.Exists("ns", "fresh") || len(r.List("gen2")) != 20 {
		t.Fatalf("reader served a frankenstate: ns=%v gen2=%v", r.List("ns"), r.List("gen2"))
	}
}

// TestReadOnlyStatsAndSnapshot: the diagnostic surfaces of the Store
// API work over the view.
func TestReadOnlyStatsAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Put("ns", "k", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	r, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.Blobs != 1 || st.Bindings != 1 || st.Bytes != 5 {
		t.Fatalf("Stats = %+v", st)
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := restored.Get("ns", "k"); err != nil || string(got) != "hello" {
		t.Fatalf("snapshot round trip = %q, %v", got, err)
	}
}
