package storage

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

// populate writes a small campaign-shaped dataset: run records, a kept
// artifact, a counter — the binding/blob mix a real store holds.
func populate(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Put("runs", fmt.Sprintf("run-%04d", i), []byte(fmt.Sprintf(`{"run_id":"run-%04d"}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Put("artifacts", "hist.bin", []byte("kept artifact bytes")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Increment("counters", "campaign"); err != nil {
		t.Fatal(err)
	}
}

// assertIdentical fails unless the two stores hold byte-identical blob
// sets and identical name bindings — the replica guarantee.
func assertIdentical(t *testing.T, a, b *Store) {
	t.Helper()
	ab, err := a.Backend().ListBlobs()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Backend().ListBlobs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ab, bb) {
		t.Fatalf("blob sets differ:\n a=%v\n b=%v", ab, bb)
	}
	for _, h := range ab {
		da, err := a.GetBlob(h)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.GetBlob(h)
		if err != nil {
			t.Fatal(err)
		}
		if string(da) != string(db) {
			t.Fatalf("blob %s differs between stores", h[:12])
		}
	}
	an, err := a.Backend().ListNames()
	if err != nil {
		t.Fatal(err)
	}
	bn, err := b.Backend().ListNames()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(an, bn) {
		t.Fatalf("name sets differ:\n a=%v\n b=%v", an, bn)
	}
	for _, name := range an {
		ha, _ := a.Backend().ResolveName(name)
		hb, _ := b.Backend().ResolveName(name)
		if ha != hb {
			t.Fatalf("binding %s differs: %s vs %s", name, ha, hb)
		}
	}
}

// TestSyncDirToDir replicates a local store into a fresh directory and
// verifies the replica is identical and the stats account for every
// transfer.
func TestSyncDirToDir(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	populate(t, src, 10)

	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	st, err := Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, src, dst)
	srcStats := src.Stats()
	if st.BlobsCopied != srcStats.Blobs || st.BindingsBound != srcStats.Bindings {
		t.Fatalf("SyncStats = %+v, source has %d blobs / %d bindings", st, srcStats.Blobs, srcStats.Bindings)
	}
	if st.BlobBytes != srcStats.Bytes {
		t.Fatalf("SyncStats.BlobBytes = %d, source holds %d", st.BlobBytes, srcStats.Bytes)
	}
	wantPos, _ := src.Position()
	if !st.SourcePosOK || st.SourcePos != wantPos {
		t.Fatalf("SyncStats position = %+v/%v, want %+v", st.SourcePos, st.SourcePosOK, wantPos)
	}
}

// TestSyncAgainIsNoOp is the idempotence property: syncing an
// already-synced pair transfers zero blobs and zero bindings — and that
// holds again after an incremental delta is carried over.
func TestSyncAgainIsNoOp(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	populate(t, src, 8)
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	if _, err := Sync(src, dst); err != nil {
		t.Fatal(err)
	}
	again, err := Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if again.BlobsCopied != 0 || again.BindingsBound != 0 || again.BlobBytes != 0 {
		t.Fatalf("re-sync transferred %+v, want nothing", again)
	}

	// Delta: two more runs plus a counter bump (a rebind, not a new
	// name) move exactly the delta — then re-sync is a no-op again.
	if _, err := src.Put("runs", "run-9998", []byte("late run")); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Put("runs", "run-9999", []byte("later run")); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Increment("counters", "campaign"); err != nil {
		t.Fatal(err)
	}
	delta, err := Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if delta.BindingsBound != 3 { // 2 new runs + 1 rebound counter
		t.Fatalf("delta sync bound %d bindings, want 3 (%+v)", delta.BindingsBound, delta)
	}
	assertIdentical(t, src, dst)
	final, err := Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if final.BlobsCopied != 0 || final.BindingsBound != 0 {
		t.Fatalf("final re-sync transferred %+v, want nothing", final)
	}
}

// TestSyncOverHTTP replicates through the remote backend — the shape
// `spsys store sync http://primary:8344 ./replica` runs — and checks
// the replica is byte-identical.
func TestSyncOverHTTP(t *testing.T) {
	primary, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	populate(t, primary, 12)
	ts := httptest.NewServer(http.StripPrefix("/api/v1", NewAPIHandler(primary, nil)))
	defer ts.Close()

	src, err := OpenRemote(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	st, err := Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, primary, dst)
	if st.BlobsCopied == 0 || st.BindingsBound == 0 {
		t.Fatalf("HTTP sync transferred nothing: %+v", st)
	}

	// The writer advances; a second pull moves only the delta.
	if _, err := primary.Put("runs", "run-9999", []byte("appended while replica live")); err != nil {
		t.Fatal(err)
	}
	delta, err := Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if delta.BlobsCopied != 1 || delta.BindingsBound != 1 {
		t.Fatalf("delta over HTTP = %+v, want exactly one blob and one binding", delta)
	}
	assertIdentical(t, primary, dst)
}

// TestSyncResumesAfterPartialTransfer simulates a crash mid-transfer:
// the destination already holds a prefix of the blobs but none of the
// bindings. A fresh Sync must complete the replica without re-copying
// what survived.
func TestSyncResumesAfterPartialTransfer(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	populate(t, src, 6)
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	// "Crash" state: half the blobs arrived, zero bindings.
	blobs, err := src.Backend().ListBlobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range blobs[:len(blobs)/2] {
		data, err := src.GetBlob(h)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Backend().PutBlob(h, data); err != nil {
			t.Fatal(err)
		}
	}

	st, err := Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, src, dst)
	if want := len(blobs) - len(blobs)/2; st.BlobsCopied != want {
		t.Fatalf("resume copied %d blobs, want only the missing %d", st.BlobsCopied, want)
	}
}

// TestReadViewRefreshAcrossSync covers the satellite case: a read-only
// view attached to a replica directory must pick up what a sync pass
// just landed — including a sync into a directory that was recreated
// from scratch underneath the view's store path.
func TestReadViewRefreshAcrossSync(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	populate(t, src, 4)

	replicaDir := t.TempDir()
	dst, err := Open(replicaDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sync(src, dst); err != nil {
		t.Fatal(err)
	}

	view, err := OpenReadOnly(replicaDir)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()
	if got := len(view.List("runs")); got != 4 {
		t.Fatalf("view sees %d runs after first sync, want 4", got)
	}

	// The source advances and a second sync lands it; the live view
	// must catch up through Refresh alone.
	if _, err := src.Put("runs", "run-9999", []byte("post-attach run")); err != nil {
		t.Fatal(err)
	}
	if _, err := Sync(src, dst); err != nil {
		t.Fatal(err)
	}
	if view.Exists("runs", "run-9999") {
		t.Fatal("view saw the synced binding before Refresh")
	}
	if err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	if !view.Exists("runs", "run-9999") {
		t.Fatal("Refresh did not surface the synced binding")
	}

	// The replica's writer compacts (journal folds into a snapshot, new
	// generation) and another sync advances it; Refresh must survive
	// the generation change too.
	if _, err := dst.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Put("runs", "run-10000", []byte("post-compact run")); err != nil {
		t.Fatal(err)
	}
	if _, err := Sync(src, dst); err != nil {
		t.Fatal(err)
	}
	if err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	if !view.Exists("runs", "run-10000") {
		t.Fatal("Refresh across compaction+sync lost the new binding")
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncIntoReadOnlyFails: the destination must be writable.
func TestSyncIntoReadOnlyFails(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	populate(t, src, 2)

	dstDir := t.TempDir()
	w, err := Open(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	ro, err := OpenReadOnly(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := Sync(src, ro); err == nil {
		t.Fatal("sync into a read-only view succeeded")
	}
}
