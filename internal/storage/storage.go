// Package storage implements the common sp-system storage.
//
// The paper requires that every client machine "have access to the common
// sp-system storage where the tests from the experiments as well as the
// test results are stored", and that all test inputs and outputs are
// kept, permanently, keyed by job — "all scripts and input files used in
// the test as well as all output files are kept. This allows the
// validation of all versions against each other and ensures
// reproducibility of previous results."
//
// The store is content-addressed: blobs are deduplicated by SHA-256, and
// human-meaningful names (namespace + key) bind to blob hashes. Keeping
// every version of every artifact is therefore cheap — identical build
// products across runs share storage, exactly the property that makes the
// paper's keep-everything policy sustainable.
//
// Store is a thin facade over a pluggable Backend. NewStore keeps
// everything in memory (fast, ephemeral — for tests and simulations);
// Open lays the same content-addressed model out on disk so that a
// validation campaign recorded by one process can be read back — years
// later or merely by a separate reporting process — with identical
// contents. That durable form is what the paper's long-term-preservation
// mandate actually calls for.
package storage

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Store is the shared content-addressed storage. It is safe for
// concurrent use by any number of clients. The zero value is not usable;
// construct with NewStore (in-memory), Open (on-disk) or NewStoreWith
// (any Backend).
type Store struct {
	backend Backend
}

// NewStore returns an empty in-memory store.
func NewStore() *Store {
	return &Store{backend: NewMemoryBackend()}
}

// NewStoreWith returns a store over the given backend.
func NewStoreWith(b Backend) *Store {
	return &Store{backend: b}
}

// Open returns a store over the on-disk content-addressed backend rooted
// at dir, creating the layout if needed. The returned store can be
// closed and reopened with identical contents — this is how independent
// sp-system clients (a campaign runner, a report generator) share one
// common storage across processes.
func Open(dir string) (*Store, error) {
	return OpenWith(dir, Options{})
}

// OpenWith is Open with explicit backend Options (durability mode).
func OpenWith(dir string, opts Options) (*Store, error) {
	b, err := OpenFSBackendWith(dir, opts)
	if err != nil {
		return nil, err
	}
	return &Store{backend: b}, nil
}

// OpenOrMemory is the store selection every CLI applies to its -store
// flag: the durable on-disk store at dir when dir is non-empty, a fresh
// in-memory store otherwise.
func OpenOrMemory(dir string) (*Store, error) {
	if dir == "" {
		return NewStore(), nil
	}
	return Open(dir)
}

// Backend returns the store's underlying backend.
func (s *Store) Backend() Backend { return s.backend }

// Refresher is implemented by backends whose contents can change
// underneath them — the read-only view of a store a separate writer
// process is appending to.
type Refresher interface {
	// Refresh catches the backend up with external changes.
	Refresh() error
}

// Refresh catches the store up with changes made by another live
// process sharing its directory. On the read-only view this re-tails
// the name journal (cheap: one stat plus the appended bytes); on every
// other backend — which sees its own writes immediately — it is a
// no-op.
func (s *Store) Refresh() error {
	if r, ok := s.backend.(Refresher); ok {
		return r.Refresh()
	}
	return nil
}

// Close flushes and releases the underlying backend. Closing the
// in-memory store is a no-op.
func (s *Store) Close() error { return s.backend.Close() }

// Compactor is implemented by backends that can fold their append-only
// history into a snapshot — the on-disk writer backend.
type Compactor interface {
	// Compact writes a fresh snapshot and truncates the journal.
	Compact() (CompactStats, error)
}

// Compact folds the backend's journal into a snapshot so reopening the
// store costs O(appends since compaction) instead of O(lifetime). On
// backends with no journal to fold (the in-memory store) it is a no-op;
// on a read-only view it fails — compaction is the writer's privilege.
func (s *Store) Compact() (CompactStats, error) {
	if c, ok := s.backend.(Compactor); ok {
		return c.Compact()
	}
	switch s.backend.(type) {
	case *FSReadBackend, *RemoteBackend:
		return CompactStats{}, fmt.Errorf("storage: compacting: %w", ErrReadOnly)
	}
	return CompactStats{}, nil
}

// StoreInfo extends Stats with snapshot/journal figures for operators.
type StoreInfo struct {
	Stats
	// Generation is the snapshot generation the state is built on
	// (0: the store was never compacted).
	Generation int
	// JournalBytes is the live journal tail length — what the next
	// Compact would fold away, and what every Open must replay.
	JournalBytes int64
	// SnapshotBytes is the size of names.snapshot (0: none).
	SnapshotBytes int64
}

// Informer is implemented by backends that can report StoreInfo.
type Informer interface {
	Info() (StoreInfo, error)
}

// Info returns extended store statistics. Backends without snapshot
// machinery report their plain Stats with zero snapshot figures.
func (s *Store) Info() (StoreInfo, error) {
	if i, ok := s.backend.(Informer); ok {
		return i.Info()
	}
	st, err := s.backend.Stats()
	return StoreInfo{Stats: st}, err
}

// Position identifies a point in a backend's durable name history: the
// snapshot generation plus the byte offset of applied journal content.
// Derived state persisted into the store (the bookkeep index segment)
// is keyed by the Position it covers, so a later consumer can tell
// "nothing changed since" from "catch up on the tail".
type Position struct {
	Generation int   `json:"generation"`
	Offset     int64 `json:"offset"`
}

// Positioner is implemented by backends whose history has a Position —
// the on-disk writer backend and the read-only view.
type Positioner interface {
	Position() (Position, bool)
}

// Position returns the backend's current history position. ok is false
// for backends without positional history (the in-memory store).
func (s *Store) Position() (Position, bool) {
	if p, ok := s.backend.(Positioner); ok {
		return p.Position()
	}
	return Position{}, false
}

// PutBlob stores content and returns its SHA-256 hash. Storing the same
// content twice is free. The hash is computed here, before the backend
// takes any lock, so concurrent writers never serialize on SHA-256.
func (s *Store) PutBlob(data []byte) (string, error) {
	hash := HashBytes(data)
	if err := s.backend.PutBlob(hash, data); err != nil {
		return "", err
	}
	return hash, nil
}

// GetBlob returns the content with the given hash.
func (s *Store) GetBlob(hash string) ([]byte, error) {
	return s.backend.GetBlob(hash)
}

// HasBlob reports whether the store holds content with the given hash.
func (s *Store) HasBlob(hash string) bool {
	return s.backend.HasBlob(hash)
}

func nameKey(ns, key string) (string, error) {
	if ns == "" || key == "" {
		return "", fmt.Errorf("storage: empty namespace or key (ns=%q key=%q)", ns, key)
	}
	if strings.Contains(ns, "/") {
		return "", fmt.Errorf("storage: namespace %q must not contain '/'", ns)
	}
	return ns + "/" + key, nil
}

// Put stores content under namespace/key and returns its hash. An
// existing binding for the same name is replaced (the old blob remains
// addressable by hash — nothing is ever lost).
func (s *Store) Put(ns, key string, data []byte) (string, error) {
	nk, err := nameKey(ns, key)
	if err != nil {
		return "", err
	}
	hash, err := s.PutBlob(data)
	if err != nil {
		return "", err
	}
	if err := s.backend.BindName(nk, hash); err != nil {
		return "", err
	}
	return hash, nil
}

// Bind points namespace/key at an existing blob.
func (s *Store) Bind(ns, key, hash string) error {
	nk, err := nameKey(ns, key)
	if err != nil {
		return err
	}
	// Blobs are never deleted, so existence checked here still holds
	// when the backend records the binding.
	if !s.backend.HasBlob(hash) {
		return fmt.Errorf("storage: cannot bind %s to missing blob %s", nk, shortHash(hash))
	}
	return s.backend.BindName(nk, hash)
}

// Get returns the content bound to namespace/key.
func (s *Store) Get(ns, key string) ([]byte, error) {
	nk, err := nameKey(ns, key)
	if err != nil {
		return nil, err
	}
	hash, ok := s.backend.ResolveName(nk)
	if !ok {
		return nil, fmt.Errorf("storage: no entry %s", nk)
	}
	return s.backend.GetBlob(hash)
}

// Increment atomically increments the integer counter bound to
// namespace/key and returns the new value. A missing binding counts from
// zero. The read-modify-write is atomic inside the backend, so
// concurrent increments — from any number of clients sharing the store —
// never observe the same value twice. The counter is stored as JSON, so
// it remains readable with Get and survives Snapshot/Restore (and, on
// the disk backend, process restarts).
func (s *Store) Increment(ns, key string) (int, error) {
	nk, err := nameKey(ns, key)
	if err != nil {
		return 0, err
	}
	return s.backend.Increment(nk)
}

// Hash returns the blob hash bound to namespace/key without fetching the
// content.
func (s *Store) Hash(ns, key string) (string, error) {
	nk, err := nameKey(ns, key)
	if err != nil {
		return "", err
	}
	hash, ok := s.backend.ResolveName(nk)
	if !ok {
		return "", fmt.Errorf("storage: no entry %s", nk)
	}
	return hash, nil
}

// Exists reports whether namespace/key is bound.
func (s *Store) Exists(ns, key string) bool {
	_, err := s.Hash(ns, key)
	return err == nil
}

// List returns the keys bound in the namespace, sorted. It is
// best-effort by signature (every consumer treats enumeration as
// infallible): a backend whose name index fails to enumerate reads as
// empty here — both shipped backends serve names from memory and cannot
// fail this call; data-bearing reads (Get, GetBlob) do report errors.
func (s *Store) List(ns string) []string {
	names, err := s.backend.ListNames()
	if err != nil {
		return nil
	}
	prefix := ns + "/"
	var keys []string
	for _, nk := range names {
		if strings.HasPrefix(nk, prefix) {
			keys = append(keys, strings.TrimPrefix(nk, prefix))
		}
	}
	return keys
}

// Namespaces returns all namespaces with at least one binding, sorted.
func (s *Store) Namespaces() []string {
	names, err := s.backend.ListNames()
	if err != nil {
		return nil
	}
	seen := make(map[string]bool)
	for _, nk := range names {
		seen[nk[:strings.IndexByte(nk, '/')]] = true
	}
	out := make([]string, 0, len(seen))
	for ns := range seen {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes store contents.
type Stats struct {
	// Blobs is the number of distinct contents stored.
	Blobs int
	// Bindings is the number of namespace/key names.
	Bindings int
	// Bytes is the total size of distinct blobs.
	Bytes int64
}

// Stats returns current store statistics. Like List, it is best-effort:
// a backend stats failure reads as an empty Stats, never an error.
func (s *Store) Stats() Stats {
	st, err := s.backend.Stats()
	if err != nil {
		return Stats{}
	}
	return st
}

// snapshot is the JSON shape of a serialized store.
type snapshot struct {
	Blobs map[string][]byte `json:"blobs"`
	Names map[string]string `json:"names"`
}

// Snapshot serializes the entire store — the mechanism behind the paper's
// final phase, where "the last working virtual image is conserved". It
// works over any backend, so an in-memory campaign can be archived and a
// disk store can be exported as one portable file.
func (s *Store) Snapshot() ([]byte, error) {
	hashes, err := s.backend.ListBlobs()
	if err != nil {
		return nil, err
	}
	snap := snapshot{
		Blobs: make(map[string][]byte, len(hashes)),
		Names: make(map[string]string),
	}
	for _, h := range hashes {
		data, err := s.backend.GetBlob(h)
		if err != nil {
			return nil, err
		}
		snap.Blobs[h] = data
	}
	names, err := s.backend.ListNames()
	if err != nil {
		return nil, err
	}
	for _, nk := range names {
		hash, ok := s.backend.ResolveName(nk)
		if !ok {
			continue
		}
		// A binding recorded after the blob listing above may point at a
		// blob the listing missed; fetch it individually so the snapshot
		// stays self-consistent under concurrent writes.
		if _, have := snap.Blobs[hash]; !have {
			data, err := s.backend.GetBlob(hash)
			if err != nil {
				return nil, fmt.Errorf("storage: snapshot: binding %s: %w", nk, err)
			}
			snap.Blobs[hash] = data
		}
		snap.Names[nk] = hash
	}
	return json.Marshal(snap)
}

// Restore returns an in-memory store reconstructed from a Snapshot. It
// verifies every blob against its hash and every binding against the
// blob set, so a corrupted archive is detected at load time rather than
// mid-campaign.
func Restore(data []byte) (*Store, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("storage: corrupt snapshot: %w", err)
	}
	st := NewStore()
	for hash, blob := range snap.Blobs {
		if HashBytes(blob) != hash {
			return nil, fmt.Errorf("storage: snapshot blob %s fails hash verification", shortHash(hash))
		}
		if err := st.backend.PutBlob(hash, blob); err != nil {
			return nil, err
		}
	}
	for nk, hash := range snap.Names {
		if !validName(nk) {
			return nil, fmt.Errorf("storage: snapshot binding %q is not a namespace/key name", nk)
		}
		if !st.backend.HasBlob(hash) {
			return nil, fmt.Errorf("storage: snapshot binding %s references missing blob %s", nk, shortHash(hash))
		}
		if err := st.backend.BindName(nk, hash); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// validName reports whether nk has the "namespace/key" shape every
// bound name must satisfy (non-empty namespace and key). Names from the
// Store API are constructed by nameKey and always valid; this guards
// the load boundaries — snapshots and journals — where hand-edited or
// corrupt data could otherwise smuggle in a name that later breaks
// Namespaces.
func validName(nk string) bool {
	i := strings.IndexByte(nk, '/')
	return i > 0 && i < len(nk)-1
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
