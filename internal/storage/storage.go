// Package storage implements the common sp-system storage.
//
// The paper requires that every client machine "have access to the common
// sp-system storage where the tests from the experiments as well as the
// test results are stored", and that all test inputs and outputs are
// kept, permanently, keyed by job — "all scripts and input files used in
// the test as well as all output files are kept. This allows the
// validation of all versions against each other and ensures
// reproducibility of previous results."
//
// The store is content-addressed: blobs are deduplicated by SHA-256, and
// human-meaningful names (namespace + key) bind to blob hashes. Keeping
// every version of every artifact is therefore cheap — identical build
// products across runs share storage, exactly the property that makes the
// paper's keep-everything policy sustainable.
package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Store is the shared content-addressed storage. It is safe for
// concurrent use by any number of clients.
type Store struct {
	mu    sync.RWMutex
	blobs map[string][]byte // SHA-256 hex -> content
	names map[string]string // "namespace/key" -> blob hash
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		blobs: make(map[string][]byte),
		names: make(map[string]string),
	}
}

// PutBlob stores content and returns its SHA-256 hash. Storing the same
// content twice is free.
func (s *Store) PutBlob(data []byte) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putBlobLocked(data)
}

// putBlobLocked inserts a blob (copying the caller's slice) and returns
// its hash. The caller must hold s.mu.
func (s *Store) putBlobLocked(data []byte) string {
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])
	if _, ok := s.blobs[hash]; !ok {
		cp := make([]byte, len(data))
		copy(cp, data)
		s.blobs[hash] = cp
	}
	return hash
}

// GetBlob returns the content with the given hash.
func (s *Store) GetBlob(hash string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.blobs[hash]
	if !ok {
		return nil, fmt.Errorf("storage: no blob %s", shortHash(hash))
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// HasBlob reports whether the store holds content with the given hash.
func (s *Store) HasBlob(hash string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blobs[hash]
	return ok
}

func nameKey(ns, key string) (string, error) {
	if ns == "" || key == "" {
		return "", fmt.Errorf("storage: empty namespace or key (ns=%q key=%q)", ns, key)
	}
	if strings.Contains(ns, "/") {
		return "", fmt.Errorf("storage: namespace %q must not contain '/'", ns)
	}
	return ns + "/" + key, nil
}

// Put stores content under namespace/key and returns its hash. An
// existing binding for the same name is replaced (the old blob remains
// addressable by hash — nothing is ever lost).
func (s *Store) Put(ns, key string, data []byte) (string, error) {
	nk, err := nameKey(ns, key)
	if err != nil {
		return "", err
	}
	hash := s.PutBlob(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.names[nk] = hash
	return hash, nil
}

// Bind points namespace/key at an existing blob.
func (s *Store) Bind(ns, key, hash string) error {
	nk, err := nameKey(ns, key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[hash]; !ok {
		return fmt.Errorf("storage: cannot bind %s to missing blob %s", nk, shortHash(hash))
	}
	s.names[nk] = hash
	return nil
}

// Get returns the content bound to namespace/key.
func (s *Store) Get(ns, key string) ([]byte, error) {
	nk, err := nameKey(ns, key)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	hash, ok := s.names[nk]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: no entry %s", nk)
	}
	return s.GetBlob(hash)
}

// Increment atomically increments the integer counter bound to
// namespace/key and returns the new value. A missing binding counts from
// zero. The read-modify-write happens under the store's write lock, so
// concurrent increments — from any number of clients sharing the store —
// never observe the same value twice. The counter is stored as JSON, so
// it remains readable with Get and survives Snapshot/Restore.
func (s *Store) Increment(ns, key string) (int, error) {
	nk, err := nameKey(ns, key)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	if hash, ok := s.names[nk]; ok {
		if data, ok := s.blobs[hash]; ok {
			if err := json.Unmarshal(data, &n); err != nil {
				return 0, fmt.Errorf("storage: counter %s is not an integer: %w", nk, err)
			}
		}
	}
	n++
	data, _ := json.Marshal(n)
	s.names[nk] = s.putBlobLocked(data)
	return n, nil
}

// Hash returns the blob hash bound to namespace/key without fetching the
// content.
func (s *Store) Hash(ns, key string) (string, error) {
	nk, err := nameKey(ns, key)
	if err != nil {
		return "", err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	hash, ok := s.names[nk]
	if !ok {
		return "", fmt.Errorf("storage: no entry %s", nk)
	}
	return hash, nil
}

// Exists reports whether namespace/key is bound.
func (s *Store) Exists(ns, key string) bool {
	_, err := s.Hash(ns, key)
	return err == nil
}

// List returns the keys bound in the namespace, sorted.
func (s *Store) List(ns string) []string {
	prefix := ns + "/"
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for nk := range s.names {
		if strings.HasPrefix(nk, prefix) {
			keys = append(keys, strings.TrimPrefix(nk, prefix))
		}
	}
	sort.Strings(keys)
	return keys
}

// Namespaces returns all namespaces with at least one binding, sorted.
func (s *Store) Namespaces() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[string]bool)
	for nk := range s.names {
		seen[nk[:strings.IndexByte(nk, '/')]] = true
	}
	out := make([]string, 0, len(seen))
	for ns := range seen {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes store contents.
type Stats struct {
	// Blobs is the number of distinct contents stored.
	Blobs int
	// Bindings is the number of namespace/key names.
	Bindings int
	// Bytes is the total size of distinct blobs.
	Bytes int64
}

// Stats returns current store statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Blobs: len(s.blobs), Bindings: len(s.names)}
	for _, b := range s.blobs {
		st.Bytes += int64(len(b))
	}
	return st
}

// snapshot is the JSON shape of a serialized store.
type snapshot struct {
	Blobs map[string][]byte `json:"blobs"`
	Names map[string]string `json:"names"`
}

// Snapshot serializes the entire store — the mechanism behind the paper's
// final phase, where "the last working virtual image is conserved".
func (s *Store) Snapshot() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return json.Marshal(snapshot{Blobs: s.blobs, Names: s.names})
}

// Restore returns a store reconstructed from a Snapshot. It verifies
// every blob against its hash and every binding against the blob set, so
// a corrupted archive is detected at load time rather than mid-campaign.
func Restore(data []byte) (*Store, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("storage: corrupt snapshot: %w", err)
	}
	st := NewStore()
	for hash, blob := range snap.Blobs {
		sum := sha256.Sum256(blob)
		if hex.EncodeToString(sum[:]) != hash {
			return nil, fmt.Errorf("storage: snapshot blob %s fails hash verification", shortHash(hash))
		}
		st.blobs[hash] = blob
	}
	for nk, hash := range snap.Names {
		if _, ok := st.blobs[hash]; !ok {
			return nil, fmt.Errorf("storage: snapshot binding %s references missing blob %s", nk, shortHash(hash))
		}
		st.names[nk] = hash
	}
	return st, nil
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
