package storage

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTarballRoundTrip(t *testing.T) {
	files := map[string][]byte{
		"bin/h1reco":    []byte("ELF...binary"),
		"lib/libh1.a":   bytes.Repeat([]byte{0xAB}, 4096),
		"etc/VERSION":   []byte("rev 42"),
		"share/doc.txt": nil,
	}
	data, err := PackTarball(files)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnpackTarball(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(files) {
		t.Fatalf("entries = %d, want %d", len(got), len(files))
	}
	for name, want := range files {
		if !bytes.Equal(got[name], want) {
			t.Errorf("entry %q content mismatch", name)
		}
	}
}

func TestTarballDeterministic(t *testing.T) {
	files := map[string][]byte{"b": []byte("2"), "a": []byte("1"), "c": []byte("3")}
	d1, err := PackTarball(files)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := PackTarball(files)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("tarballs of equal input differ — breaks storage deduplication")
	}
}

func TestTarballRejectsEmptyName(t *testing.T) {
	if _, err := PackTarball(map[string][]byte{"": []byte("x")}); err == nil {
		t.Fatal("empty entry name accepted")
	}
}

func TestUnpackRejectsGarbage(t *testing.T) {
	if _, err := UnpackTarball([]byte("not a tarball")); err == nil {
		t.Fatal("garbage accepted as tarball")
	}
}

func TestTarballEmptyArchive(t *testing.T) {
	data, err := PackTarball(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnpackTarball(data)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty archive round trip = %v, %v", got, err)
	}
}

func TestTarballProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		files := map[string][]byte{"a.dat": a, "sub/b.dat": b}
		packed, err := PackTarball(files)
		if err != nil {
			return false
		}
		got, err := UnpackTarball(packed)
		return err == nil && bytes.Equal(got["a.dat"], a) && bytes.Equal(got["sub/b.dat"], b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
