package storage

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestOpenViewErrorPaths pins the -store dispatch failures down to
// operator-readable one-liners: a mistyped scheme is named as such
// (instead of the filesystem reporting ENOENT on "ftp://host" as a
// relative path), and an unreachable remote reports the root cause once
// — not the nested url.Error/net.OpError transport dump that repeats
// the URL per retry wrapper.
func TestOpenViewErrorPaths(t *testing.T) {
	// A URL that accepts no connections: bind, record the address, close.
	ts := httptest.NewServer(nil)
	deadURL := ts.URL
	ts.Close()

	cases := []struct {
		name  string
		store string
		want  []string // substrings the one-line error must carry
		ban   []string // substrings it must not
	}{
		{
			name:  "unsupported scheme",
			store: "ftp://archive.example.org/store",
			want:  []string{"ftp", "not supported", "http(s)"},
			ban:   []string{"no such file"},
		},
		{
			name:  "scheme-like typo",
			store: "htp://localhost:8344",
			want:  []string{"htp", "not supported"},
			ban:   []string{"no such file"},
		},
		{
			name:  "http URL with no host",
			store: "http://",
			want:  []string{"not an http(s) store URL"},
		},
		{
			name:  "unreachable remote",
			store: deadURL,
			want:  []string{"unreachable", "connection refused"},
			// The raw transport chain repeats the URL inside Get "...":
			// the condensed line must not.
			ban: []string{`Get "`, "dial tcp"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if IsRemoteStore(tc.store) {
				// Route through the fast-retry options so the unreachable
				// case does not sleep through real backoff.
				_, err = OpenRemoteWith(tc.store, RemoteOptions{Retries: 1})
			} else {
				_, err = OpenView(tc.store)
			}
			if err == nil {
				t.Fatalf("OpenView(%q) succeeded", tc.store)
			}
			msg := err.Error()
			if strings.Contains(msg, "\n") {
				t.Fatalf("error is not one line: %q", msg)
			}
			if n := strings.Count(msg, "storage:"); n > 1 {
				t.Fatalf("error stutters the package prefix %d times: %q", n, msg)
			}
			for _, w := range tc.want {
				if !strings.Contains(msg, w) {
					t.Errorf("error %q does not mention %q", msg, w)
				}
			}
			for _, b := range tc.ban {
				if strings.Contains(msg, b) {
					t.Errorf("error %q leaks %q", msg, b)
				}
			}
		})
	}

	// The dispatch itself (not the options route) also condenses the
	// unreachable case — the path every CLI takes. Default retries make
	// this slower, so assert on the shape only once.
	if _, err := OpenView("ftp://x"); err == nil {
		t.Fatal("OpenView dispatched an unsupported scheme")
	}
}
