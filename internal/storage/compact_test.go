package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// seedBindings writes a varied little population: plain bindings,
// rebinds (last wins), awkward key shapes (quotes, unicode — the
// fast-path/fallback boundary of the journal line decoder), and
// counters.
func seedBindings(t *testing.T, s *Store, salt string) {
	t.Helper()
	for i := 0; i < 20; i++ {
		if _, err := s.Put("runs", fmt.Sprintf("run-%04d%s", i, salt), []byte(fmt.Sprintf("record %d %s", i, salt))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Put("cfg", `he"llo`+"\n"+`wörld`+salt, []byte("awkward"+salt)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("cfg", "current", []byte("v1"+salt)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("cfg", "current", []byte("v2"+salt)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Increment("meta", "runseq"); err != nil {
			t.Fatal(err)
		}
	}
}

// storeState captures everything observable about a store for
// byte-identical comparisons across crash/reopen cycles.
func storeState(t *testing.T, s *Store) (snapshot string, names []string, stats Stats) {
	t.Helper()
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	names, err = s.Backend().ListNames()
	if err != nil {
		t.Fatal(err)
	}
	return string(snap), names, s.Stats()
}

func requireSameState(t *testing.T, label string, s *Store, wantSnap string, wantNames []string, wantStats Stats) {
	t.Helper()
	gotSnap, gotNames, gotStats := storeState(t, s)
	if gotSnap != wantSnap {
		t.Fatalf("%s: store snapshot differs from pre-crash state", label)
	}
	if !reflect.DeepEqual(gotNames, wantNames) {
		t.Fatalf("%s: names = %v, want %v", label, gotNames, wantNames)
	}
	if gotStats != wantStats {
		t.Fatalf("%s: stats = %+v, want %+v", label, gotStats, wantStats)
	}
}

func TestCompactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	seedBindings(t, s, "")
	wantSnap, wantNames, wantStats := storeState(t, s)

	cs, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Generation != 1 || cs.Bindings != len(wantNames) || cs.JournalBytes == 0 || cs.SnapshotBytes == 0 {
		t.Fatalf("compact stats = %+v", cs)
	}
	// The journal is now empty and the snapshot carries everything.
	if fi, err := os.Stat(filepath.Join(dir, "names.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("journal after compact: %v / %+v, want empty", err, fi)
	}
	if fi, err := os.Stat(filepath.Join(dir, "names.snapshot")); err != nil || fi.Size() != cs.SnapshotBytes {
		t.Fatalf("snapshot after compact: %v", err)
	}
	requireSameState(t, "in-process after compact", s, wantSnap, wantNames, wantStats)

	info, err := s.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 1 || info.JournalBytes != 0 || info.SnapshotBytes != cs.SnapshotBytes {
		t.Fatalf("info after compact = %+v", info)
	}

	// Appends continue into the fresh journal; a second compact bumps
	// the generation.
	if _, err := s.Put("cfg", "current", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openFS(t, dir)
	if got, err := re.Get("cfg", "current"); err != nil || string(got) != "v3" {
		t.Fatalf("post-compact append lost: %q, %v", got, err)
	}
	// The counter continues from its snapshotted value.
	if n, err := re.Increment("meta", "runseq"); err != nil || n != 6 {
		t.Fatalf("counter after compacted reopen = %d, %v, want 6", n, err)
	}
	if cs, err := re.Compact(); err != nil || cs.Generation != 2 {
		t.Fatalf("second compact = %+v, %v, want generation 2", cs, err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening a fully compacted store restores identical contents.
	re2 := openFS(t, dir)
	defer re2.Close()
	if got, err := re2.Get("cfg", "current"); err != nil || string(got) != "v3" {
		t.Fatalf("contents after compacted reopen: %q, %v", got, err)
	}
	if st := re2.Stats(); st.Bindings != wantStats.Bindings {
		t.Fatalf("bindings after compacted reopen = %+v, want %d", st, wantStats.Bindings)
	}
}

// TestCompactCrashPointInterleavings kills the compaction protocol at
// every stage boundary via the fault-injection hook and asserts each
// interleaving reopens to byte-identical state — the property the
// snapshot-then-truncate ordering is designed for.
func TestCompactCrashPointInterleavings(t *testing.T) {
	for _, stage := range []string{"snapshot-staged", "snapshot-renamed"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			s := openFS(t, dir)
			seedBindings(t, s, "")
			wantSnap, wantNames, wantStats := storeState(t, s)

			fb := s.Backend().(*FSBackend)
			fb.compactFault = func(at string) error {
				if at == stage {
					return fmt.Errorf("injected crash at %s", at)
				}
				return nil
			}
			if _, err := s.Compact(); err == nil {
				t.Fatalf("compact survived injected crash at %s", stage)
			}
			// The "crashed" process goes away; its lock dies with it.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Recovery: the store reopens to the exact pre-crash state.
			re := openFS(t, dir)
			requireSameState(t, "reopen after crash at "+stage, re, wantSnap, wantNames, wantStats)

			// The recovered store keeps working: appends, counter
			// continuity, and a clean compaction.
			if n, err := re.Increment("meta", "runseq"); err != nil || n != 6 {
				t.Fatalf("counter after recovery = %d, %v, want 6", n, err)
			}
			if _, err := re.Put("cfg", "after-crash", []byte("x")); err != nil {
				t.Fatal(err)
			}
			if _, err := re.Compact(); err != nil {
				t.Fatal(err)
			}
			wantSnap2, wantNames2, wantStats2 := storeState(t, re)
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2 := openFS(t, dir)
			defer re2.Close()
			requireSameState(t, "reopen after recovery compact", re2, wantSnap2, wantNames2, wantStats2)
		})
	}
}

// TestCompactCrashBeforeTruncateBumpsGeneration pins the subtle half of
// the "crash between rename and truncate" case: the renamed snapshot's
// generation is burned even though the compaction failed, so the next
// successful compaction must use a *higher* generation — reusing the
// number for different content would defeat the readers' staleness
// check.
func TestCompactCrashBeforeTruncateBumpsGeneration(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	seedBindings(t, s, "")
	fb := s.Backend().(*FSBackend)
	fail := true
	fb.compactFault = func(at string) error {
		if fail && at == "snapshot-renamed" {
			return fmt.Errorf("injected crash before truncate")
		}
		return nil
	}
	if _, err := s.Compact(); err == nil {
		t.Fatal("compact survived injected crash")
	}
	if gen, err := readSnapshotGeneration(dir); err != nil || gen != 1 {
		t.Fatalf("on-disk generation after crashed compact = %d, %v, want 1", gen, err)
	}
	fail = false
	cs, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Generation != 2 {
		t.Fatalf("post-crash compact generation = %d, want 2", cs.Generation)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Same property across a process boundary: crash before truncate,
	// reopen, compact — the new process must also move past the burned
	// generation it loaded.
	s2 := openFS(t, dir)
	fb2 := s2.Backend().(*FSBackend)
	fail2 := true
	fb2.compactFault = func(at string) error {
		if fail2 && at == "snapshot-renamed" {
			return fmt.Errorf("injected crash before truncate")
		}
		return nil
	}
	if _, err := s2.Put("cfg", "more", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Compact(); err == nil {
		t.Fatal("compact survived injected crash")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openFS(t, dir)
	defer s3.Close()
	if cs, err := s3.Compact(); err != nil || cs.Generation != 4 {
		t.Fatalf("generation after cross-process crash = %+v, %v, want 4", cs, err)
	}
}

// TestReaderAcrossWriterCompaction holds a read-only view (lock.read)
// open across a writer's compaction and continued appends: the view
// must never error, never lose a binding it had served, and converge on
// the writer's state.
func TestReaderAcrossWriterCompaction(t *testing.T) {
	dir := t.TempDir()
	w := openFS(t, dir)
	defer w.Close()
	seedBindings(t, w, "")

	r, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, wantNames, _ := storeState(t, w)
	gotNames, _ := r.Backend().ListNames()
	if !reflect.DeepEqual(gotNames, wantNames) {
		t.Fatalf("reader names before compaction = %v, want %v", gotNames, wantNames)
	}

	// The writer compacts while the reader's shared lock is held: no
	// handshake, no error on either side.
	if _, err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	gotNames, _ = r.Backend().ListNames()
	if !reflect.DeepEqual(gotNames, wantNames) {
		t.Fatalf("reader names after compaction = %v, want %v", gotNames, wantNames)
	}

	// Appends after the compaction are picked up from the fresh journal.
	if _, err := w.Put("cfg", "post-compact", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got, err := r.Get("cfg", "post-compact"); err != nil || string(got) != "new" {
		t.Fatalf("reader missed post-compaction append: %q, %v", got, err)
	}

	// Several compaction cycles with interleaved appends: the reader
	// tracks every generation.
	for i := 0; i < 3; i++ {
		if _, err := w.Put("cycle", fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Compact(); err != nil {
			t.Fatal(err)
		}
		if err := r.Refresh(); err != nil {
			t.Fatal(err)
		}
		if got, err := r.Get("cycle", fmt.Sprintf("k%d", i)); err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("cycle %d: reader state = %q, %v", i, got, err)
		}
	}
	wNames, _ := w.Backend().ListNames()
	rNames, _ := r.Backend().ListNames()
	if !reflect.DeepEqual(rNames, wNames) {
		t.Fatalf("reader diverged after compaction cycles: %v vs %v", rNames, wNames)
	}
}

// TestReaderStaleOffsetAfterCompaction pins the generation check in
// Refresh: after a compaction truncates the journal, the writer appends
// *more* bytes than the reader had applied, so neither the shrink check
// nor the file-identity check fires — only the generation change tells
// the reader its byte offset is meaningless.
func TestReaderStaleOffsetAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	w := openFS(t, dir)
	defer w.Close()
	if _, err := w.Put("a", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	applied, ok := r.Position()
	if !ok || applied.Offset == 0 {
		t.Fatalf("reader position = %+v, %t", applied, ok)
	}

	if _, err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	// Grow the fresh journal past the reader's stale offset.
	for i := 0; i < 50; i++ {
		if _, err := w.Put("grow", fmt.Sprintf("key-%04d", i), []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if pos, _ := w.Position(); pos.Offset > applied.Offset {
			break
		}
	}
	if pos, _ := w.Position(); pos.Offset <= applied.Offset {
		t.Fatalf("journal did not outgrow the stale offset: %+v vs %+v", pos, applied)
	}

	if err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	wNames, _ := w.Backend().ListNames()
	rNames, _ := r.Backend().ListNames()
	if !reflect.DeepEqual(rNames, wNames) {
		t.Fatalf("reader served frankenstate after compaction: %v, want %v", rNames, wNames)
	}
}

// TestPreSnapshotStoreOpensUnchanged: a journal-only store — the layout
// every writer produced before compaction existed — opens with no
// behavioral change and only acquires a snapshot when explicitly
// compacted.
func TestPreSnapshotStoreOpensUnchanged(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	seedBindings(t, s, "")
	wantSnap, wantNames, wantStats := storeState(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "names.snapshot")); !os.IsNotExist(err) {
		t.Fatalf("uncompacted store grew a snapshot file: %v", err)
	}
	re := openFS(t, dir)
	defer re.Close()
	requireSameState(t, "pre-snapshot reopen", re, wantSnap, wantNames, wantStats)
	if info, err := re.Info(); err != nil || info.Generation != 0 || info.JournalBytes == 0 {
		t.Fatalf("pre-snapshot info = %+v, %v", info, err)
	}
}

// TestGroupCommitConcurrentWritersDurable drives 8 concurrent writers
// through the group-commit path under the strictest sync mode and
// checks every acknowledged binding and every minted counter value
// survives a reopen.
func TestGroupCommitConcurrentWritersDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{Sync: SyncJournal})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := s.Put("bulk", fmt.Sprintf("w%d-i%d", w, i), []byte(fmt.Sprintf("payload %d/%d", w, i))); err != nil {
					errs <- err
					return
				}
				if _, err := s.Increment("meta", "seq"); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openFS(t, dir)
	defer re.Close()
	if got := len(re.List("bulk")); got != writers*perWriter {
		t.Fatalf("bulk bindings after reopen = %d, want %d", got, writers*perWriter)
	}
	if n, err := re.Increment("meta", "seq"); err != nil || n != writers*perWriter+1 {
		t.Fatalf("counter after reopen = %d, %v, want %d", n, err, writers*perWriter+1)
	}
}

// TestCompactUnderConcurrentWriters interleaves compactions with live
// concurrent binds: nothing acknowledged may be lost, in memory or
// across a reopen.
func TestCompactUnderConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	const writers, perWriter = 4, 30
	var wg sync.WaitGroup
	errs := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := s.Put("live", fmt.Sprintf("w%d-i%d", w, i), []byte("x")); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := s.Compact(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(s.List("live")); got != writers*perWriter {
		t.Fatalf("live bindings = %d, want %d", got, writers*perWriter)
	}
	wantSnap, wantNames, wantStats := storeState(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openFS(t, dir)
	defer re.Close()
	requireSameState(t, "reopen after concurrent compactions", re, wantSnap, wantNames, wantStats)
}

// TestSyncNoneStillDurableAcrossClose: SyncNone skips fsyncs, not
// writes — a clean Close/reopen still round-trips (only power loss is
// traded away). This is the mode benchmark fixtures are built with, so
// it must actually produce valid stores.
func TestSyncNoneStillDurableAcrossClose(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	seedBindings(t, s, "")
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("cfg", "tail", []byte("t")); err != nil {
		t.Fatal(err)
	}
	wantSnap, wantNames, wantStats := storeState(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openFS(t, dir)
	defer re.Close()
	requireSameState(t, "SyncNone reopen", re, wantSnap, wantNames, wantStats)
}

// TestSnapshotCorruptionIsFailStop: a damaged snapshot must abort Open
// — the journal history it replaced is gone, so limping on would
// silently lose bindings.
func TestSnapshotCorruptionIsFailStop(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	seedBindings(t, s, "")
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "names.snapshot")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the body: the checksum must catch it.
	data[len(data)-10] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
	if _, err := OpenReadOnly(dir); err == nil {
		t.Fatal("OpenReadOnly accepted a corrupt snapshot")
	}
}

// TestJournalFailStopWedgesEverything: after a journal write failure,
// every later bind and any compaction must refuse (writing after a
// possibly-torn tail would strand the tear mid-file, and a snapshot
// would make unacknowledged bindings durable), Close must not hang on
// the discarded batch, and the store must reopen to its last
// acknowledged state.
func TestJournalFailStopWedgesEverything(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	if _, err := s.Put("ok", "before", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	wantNames, _ := s.Backend().ListNames()

	// Force every journal write to fail by swapping in a read-only
	// handle.
	fb := s.Backend().(*FSBackend)
	ro, err := os.Open(filepath.Join(dir, "names.log"))
	if err != nil {
		t.Fatal(err)
	}
	fb.mu.Lock()
	good := fb.log
	fb.log = ro
	fb.mu.Unlock()

	if _, err := s.Put("bad", "first", []byte("x")); err == nil {
		t.Fatal("bind over a failing journal succeeded")
	}
	if _, err := s.Put("bad", "second", []byte("y")); err == nil {
		t.Fatal("bind after a journal failure succeeded (fail-stop violated)")
	}
	if _, err := s.Increment("meta", "seq"); err == nil {
		t.Fatal("increment after a journal failure succeeded")
	}
	if _, err := s.Compact(); err == nil {
		t.Fatal("compaction of a wedged journal succeeded")
	}
	// Close flushes nothing (the dead batch was discarded) and must
	// terminate; its error, if any, is the read-only handle's sync.
	fb.mu.Lock()
	fb.log = good
	fb.mu.Unlock()
	ro.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: only acknowledged bindings survive. (Blobs staged by the
	// failed binds remain on disk — blobs are never state, bindings
	// are.)
	re := openFS(t, dir)
	defer re.Close()
	gotNames, _ := re.Backend().ListNames()
	if !reflect.DeepEqual(gotNames, wantNames) {
		t.Fatalf("names after fail-stop reopen = %v, want %v", gotNames, wantNames)
	}
	if got, err := re.Get("ok", "before"); err != nil || string(got) != "fine" {
		t.Fatalf("acknowledged binding lost: %q, %v", got, err)
	}
	if re.Exists("bad", "first") || re.Exists("bad", "second") {
		t.Fatal("failed binding became durable")
	}
}

// TestReaderStatsFromSnapshotHeader: a read view of a compacted store
// serves exact blob statistics without a tree walk (the snapshot
// header path), and they match the writer's.
func TestReaderStatsFromSnapshotHeader(t *testing.T) {
	dir := t.TempDir()
	w := openFS(t, dir)
	defer w.Close()
	seedBindings(t, w, "")
	if _, err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	wantStats := w.Stats()

	r, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Stats(); got != wantStats {
		t.Fatalf("reader stats over compacted store = %+v, want %+v", got, wantStats)
	}
	// Once the tail grows and the reader applies it, the header no
	// longer covers the state: the walk path must still be exact.
	if _, err := w.Put("post", "compact", []byte("tail content")); err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got, want := r.Stats(), w.Stats(); got != want {
		t.Fatalf("reader stats with tail = %+v, want %+v", got, want)
	}
}
