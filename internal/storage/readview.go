package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FSReadBackend is a live, read-only view of the on-disk store: the
// form of the common storage a status service or inspection CLI opens
// while a separate `spsys campaign -store` process holds the exclusive
// writer lock and keeps appending.
//
// It differs from FSBackend in three deliberate ways:
//
//   - It takes the *shared* reader lock (<dir>/lock.read) instead of
//     the exclusive writer lock, so any number of readers coexist with
//     the one live writer (see lockStoreDirShared for the protocol).
//   - Its journal replay never truncates or repairs anything: a torn
//     or in-flux tail is simply not applied yet. Repair is the writer's
//     job — the read path must not mutate a store it does not own.
//   - Refresh re-tails the journal from the last applied offset, so
//     picking up the writer's new bindings costs one stat plus reading
//     only the appended bytes — not a full replay.
//
// All mutating Backend methods return an error: the view is a Backend
// only so the ordinary Store query API (and everything built on it —
// bookkeeping, reports, serving) works unchanged on top of it.
type FSReadBackend struct {
	dir  string
	lock *os.File // held shared flock (nil where unsupported)

	mu       sync.RWMutex
	names    map[string]string
	validEnd int64       // journal offset just past the last applied entry
	journal  os.FileInfo // identity of the journal last tailed (nil before it exists)
	closed   bool
}

// ErrReadOnly is wrapped by every mutation attempted on a read-only
// store view.
var ErrReadOnly = fmt.Errorf("store opened read-only")

// OpenReadOnlyFSBackend opens a read-only view of the on-disk store at
// dir. The directory must already exist — a read-only consumer must
// never create an empty store at a mistyped path. The journal may be
// absent (a writer that has not bound anything yet); it is picked up by
// the first Refresh after it appears.
func OpenReadOnlyFSBackend(dir string) (*FSReadBackend, error) {
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: opening read-only store view: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("storage: opening read-only store view: %s is not a directory", dir)
	}
	lock, err := lockStoreDirShared(dir)
	if err != nil {
		return nil, err
	}
	b := &FSReadBackend{dir: dir, lock: lock, names: make(map[string]string)}
	if err := b.Refresh(); err != nil {
		if lock != nil {
			lock.Close()
		}
		return nil, err
	}
	return b, nil
}

// OpenReadOnly returns a Store over a read-only view of the on-disk
// store at dir: shared reader lock, no truncation or repair on replay,
// and cheap catch-up on a live writer's appends via (*Store).Refresh.
// Every query path works; every mutation fails with ErrReadOnly.
func OpenReadOnly(dir string) (*Store, error) {
	b, err := OpenReadOnlyFSBackend(dir)
	if err != nil {
		return nil, err
	}
	return &Store{backend: b}, nil
}

func (b *FSReadBackend) journalPath() string { return filepath.Join(b.dir, "names.log") }

// Refresh re-tails the name journal, applying entries appended since
// the last call. A torn or in-flux final line (the writer mid-append,
// or a crashed writer's tear awaiting the next writer's truncation) is
// left unapplied without error — it is re-examined on the next call.
// Malformed content *followed by further entries* is real corruption
// and is reported. If the journal shrank below the applied offset or
// disappeared (the store was re-created), the view reloads from
// scratch.
func (b *FSReadBackend) Refresh() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("storage: read-only view of %s is closed", b.dir)
	}
	f, err := os.Open(b.journalPath())
	if os.IsNotExist(err) {
		if b.validEnd != 0 {
			b.names = make(map[string]string)
			b.validEnd = 0
		}
		b.journal = nil
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: opening name journal: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("storage: reading name journal: %w", err)
	}
	// A different file at the journal path, or one shorter than what we
	// already applied (the writer's torn-tail truncation never cuts
	// below an applied entry), means the store was deleted and
	// re-created: start over rather than tailing an unrelated journal
	// from a stale offset.
	if (b.journal != nil && !os.SameFile(b.journal, fi)) || fi.Size() < b.validEnd {
		b.names = make(map[string]string)
		b.validEnd = 0
	}
	b.journal = fi
	if fi.Size() == b.validEnd {
		return nil
	}
	if err := b.tailFrom(f, b.validEnd); err != nil {
		// A re-tail that finds corruption may simply be reading an
		// unrelated journal from a stale offset: a re-created store can
		// reuse the old journal's inode (defeating the identity check
		// above) and grow past the applied offset (defeating the size
		// check). Before reporting corruption, reload once from the
		// beginning; if the journal really is corrupt mid-file, the
		// full scan fails at the same place and that error stands.
		b.names = make(map[string]string)
		b.validEnd = 0
		return b.tailFrom(f, 0)
	}
	return nil
}

// tailFrom scans journal entries from the given offset to EOF, applying
// them and advancing validEnd past the last applied entry.
func (b *FSReadBackend) tailFrom(f *os.File, offset int64) error {
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("storage: seeking name journal: %w", err)
	}
	validEnd, _, err := scanJournal(f, offset, func(name, hash string) { b.names[name] = hash })
	b.validEnd = validEnd
	return err
}

// GetBlob reads and hash-verifies a blob. Blobs are immutable and
// synced to disk before any journal line references them, so a binding
// visible through this view always has its blob readable.
func (b *FSReadBackend) GetBlob(hash string) ([]byte, error) { return fsGetBlob(b.dir, hash) }

// HasBlob reports whether the blob file exists.
func (b *FSReadBackend) HasBlob(hash string) bool { return fsHasBlob(b.dir, hash) }

// ListBlobs walks the blob tree and returns all hashes, sorted.
func (b *FSReadBackend) ListBlobs() ([]string, error) { return fsListBlobs(b.dir) }

// ResolveName returns the hash bound to the name as of the last
// Refresh.
func (b *FSReadBackend) ResolveName(name string) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	hash, ok := b.names[name]
	return hash, ok
}

// ListNames returns all names bound as of the last Refresh, sorted.
func (b *FSReadBackend) ListNames() ([]string, error) {
	b.mu.RLock()
	out := make([]string, 0, len(b.names))
	for nk := range b.names {
		out = append(out, nk)
	}
	b.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}

// PutBlob fails: the view is read-only.
func (b *FSReadBackend) PutBlob(hash string, data []byte) error {
	return fmt.Errorf("storage: PutBlob on %s: %w", b.dir, ErrReadOnly)
}

// BindName fails: the view is read-only.
func (b *FSReadBackend) BindName(name, hash string) error {
	return fmt.Errorf("storage: BindName %s on %s: %w", name, b.dir, ErrReadOnly)
}

// Increment fails: the view is read-only (counters are minted only by
// the writer).
func (b *FSReadBackend) Increment(name string) (int, error) {
	return 0, fmt.Errorf("storage: Increment %s on %s: %w", name, b.dir, ErrReadOnly)
}

// Stats reports the binding count from memory and walks the blob tree
// for blob statistics — the walk is per-call, so this is a diagnostic,
// not a hot path.
func (b *FSReadBackend) Stats() (Stats, error) {
	b.mu.RLock()
	bindings := len(b.names)
	b.mu.RUnlock()
	st := Stats{Bindings: bindings}
	hashes, err := fsListBlobs(b.dir)
	if err != nil {
		return st, err
	}
	st.Blobs = len(hashes)
	for _, h := range hashes {
		if fi, err := os.Stat(filepath.Join(b.dir, "blobs", h[:2], h)); err == nil {
			st.Bytes += fi.Size()
		}
	}
	return st, nil
}

// Close releases the shared reader lock. The view keeps answering
// queries from its last refreshed state, but can no longer Refresh.
func (b *FSReadBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	if b.lock != nil {
		b.lock.Close() // releases the shared flock
		b.lock = nil
	}
	return nil
}
