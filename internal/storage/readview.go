package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FSReadBackend is a live, read-only view of the on-disk store: the
// form of the common storage a status service or inspection CLI opens
// while a separate `spsys campaign -store` process holds the exclusive
// writer lock and keeps appending.
//
// It differs from FSBackend in three deliberate ways:
//
//   - It takes the *shared* reader lock (<dir>/lock.read) instead of
//     the exclusive writer lock, so any number of readers coexist with
//     the one live writer (see lockStoreDirShared for the protocol).
//   - Its load never truncates or repairs anything: a torn or in-flux
//     journal tail is simply not applied yet. Repair is the writer's
//     job — the read path must not mutate a store it does not own.
//   - Refresh re-tails the journal from the last applied offset, so
//     picking up the writer's new bindings costs one stat plus reading
//     only the appended bytes — not a full replay.
//
// The view is also compaction-tolerant: it remembers the snapshot
// generation its state is built on and re-checks it (one tiny header
// read) at every Refresh. When the writer compacts — replacing
// names.snapshot and truncating the journal — the generation changes
// and the view reloads from the new snapshot instead of trusting a
// stale byte offset into a journal that no longer holds those bytes.
// No lock handshake is needed: the writer renames the snapshot into
// place *before* truncating, and the view re-verifies the generation
// after each full load, retrying if a compaction raced it.
//
// All mutating Backend methods return an error: the view is a Backend
// only so the ordinary Store query API (and everything built on it —
// bookkeeping, reports, serving) works unchanged on top of it.
type FSReadBackend struct {
	dir  string
	lock *os.File // held shared flock (nil where unsupported)

	mu       sync.RWMutex
	names    map[string]string // guarded by mu
	gen      int               // guarded by mu; snapshot generation the state is built on (0: none)
	validEnd int64             // guarded by mu; journal offset just past the last applied entry
	journal  os.FileInfo       // guarded by mu; identity of the journal last tailed (nil before it exists)
	closed   bool              // guarded by mu
}

// ErrReadOnly is wrapped by every mutation attempted on a read-only
// store view.
var ErrReadOnly = fmt.Errorf("store opened read-only")

// OpenReadOnlyFSBackend opens a read-only view of the on-disk store at
// dir. The directory must already exist — a read-only consumer must
// never create an empty store at a mistyped path. The journal may be
// absent (a writer that has not bound anything yet); it is picked up by
// the first Refresh after it appears.
func OpenReadOnlyFSBackend(dir string) (*FSReadBackend, error) {
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: opening read-only store view: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("storage: opening read-only store view: %s is not a directory", dir)
	}
	lock, err := lockStoreDirShared(dir)
	if err != nil {
		return nil, err
	}
	b := &FSReadBackend{dir: dir, lock: lock, names: make(map[string]string)}
	if err := b.Refresh(); err != nil {
		if lock != nil {
			//spvet:allow syncclose — refresh failed; its error is the result and the lock file carries no data
			lock.Close()
		}
		return nil, err
	}
	return b, nil
}

// OpenReadOnly returns a Store over a read-only view of the on-disk
// store at dir: shared reader lock, no truncation or repair on replay,
// and cheap catch-up on a live writer's appends via (*Store).Refresh.
// Every query path works; every mutation fails with ErrReadOnly.
func OpenReadOnly(dir string) (*Store, error) {
	b, err := OpenReadOnlyFSBackend(dir)
	if err != nil {
		return nil, err
	}
	return &Store{backend: b}, nil
}

func (b *FSReadBackend) journalPath() string { return filepath.Join(b.dir, "names.log") }

// Dir returns the store directory — the seam the API handler uses to
// stat blobs without reading them.
func (b *FSReadBackend) Dir() string { return b.dir }

// Refresh catches the view up with the writer. The cheap steady-state
// path is: one snapshot-header read (generation unchanged), one journal
// stat (size unchanged) — no bytes re-read. A grown journal is tailed
// from the last applied offset. Three events force a full reload from
// the snapshot: a generation change (the writer compacted), a journal
// that shrank or changed identity (the store was compacted by a *new*
// writer, or deleted and re-created), and a re-tail that hits malformed
// content (a re-created journal that reused the inode and grew past the
// stale offset). A torn or in-flux final line (the writer mid-append,
// or a crashed writer's tear awaiting the next writer's truncation) is
// left unapplied without error — it is re-examined on the next call.
// Malformed content *followed by further entries* is real corruption
// and is reported.
func (b *FSReadBackend) Refresh() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("storage: read-only view of %s is closed", b.dir)
	}
	gen, err := readSnapshotGeneration(b.dir)
	if err != nil {
		// The header may be mid-replacement (rename in flight) or the
		// store may be mid-recreation; a full reload re-reads it with
		// retry semantics.
		return b.reloadLocked()
	}
	if gen != b.gen {
		return b.reloadLocked()
	}
	f, err := os.Open(b.journalPath())
	if os.IsNotExist(err) {
		if b.validEnd != 0 {
			// The journal vanished beneath applied entries: the store was
			// deleted or re-created. Reload from whatever is there now.
			return b.reloadLocked()
		}
		b.journal = nil
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: opening name journal: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("storage: reading name journal: %w", err)
	}
	// A different file at the journal path, or one shorter than what we
	// already applied (the writer's torn-tail truncation never cuts
	// below an applied entry), means the store was compacted by a new
	// writer or deleted and re-created: reload rather than tailing from
	// a stale offset.
	if (b.journal != nil && !os.SameFile(b.journal, fi)) || fi.Size() < b.validEnd {
		return b.reloadLocked()
	}
	b.journal = fi
	if fi.Size() == b.validEnd {
		return nil
	}
	if err := b.tailFrom(f, b.validEnd, b.names); err != nil {
		// A re-tail that finds corruption may simply be reading an
		// unrelated journal from a stale offset: a re-created store can
		// reuse the old journal's inode (defeating the identity check
		// above) and grow past the applied offset (defeating the size
		// check). Before reporting corruption, reload once from the
		// beginning; if the journal really is corrupt mid-file, the full
		// scan fails at the same place and that error stands.
		return b.reloadLocked()
	}
	// Re-check the generation after the tail, mirroring reloadLocked: a
	// compaction that landed between the probe above and the read could
	// have truncated the journal and regrown it past our offset (same
	// inode, larger size — invisible to both checks), making the bytes
	// just applied belong to the new journal. If the generation moved
	// during the read, discard and reload from the covering snapshot.
	if gen, err := readSnapshotGeneration(b.dir); err != nil || gen != b.gen {
		return b.reloadLocked()
	}
	return nil
}

// reloadLocked rebuilds the whole state: snapshot (if any), then the
// journal from offset zero. Because a writer's compaction replaces the
// snapshot *before* truncating the journal, a load that interleaves
// with one could pair an old snapshot with an already-truncated journal
// and lose the bindings in between — so after each attempt the snapshot
// generation is re-checked and the load retried if it moved. The caller
// holds b.mu.
func (b *FSReadBackend) reloadLocked() error {
	const maxAttempts = 5
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		names, hdr, hasSnap, err := loadSnapshot(b.dir)
		if err != nil {
			// A compaction can race this read; remember the error and
			// retry. If it persists, the snapshot really is damaged.
			lastErr = err
			continue
		}
		gen := 0
		if hasSnap {
			gen = hdr.Generation
		} else {
			names = make(map[string]string)
		}
		validEnd := int64(0)
		var journal os.FileInfo
		f, err := os.Open(b.journalPath())
		switch {
		case os.IsNotExist(err):
			// No journal (yet): the state is the snapshot alone.
		case err != nil:
			return fmt.Errorf("storage: opening name journal: %w", err)
		default:
			fi, statErr := f.Stat()
			if statErr != nil {
				f.Close()
				return fmt.Errorf("storage: reading name journal: %w", statErr)
			}
			journal = fi
			end, _, scanErr := scanJournal(f, 0, func(name, hash string) { names[name] = hash })
			f.Close()
			if scanErr != nil {
				// Mid-file corruption — or a compaction truncated the
				// journal mid-scan. The generation re-check below
				// distinguishes the two.
				lastErr = scanErr
				if g, err := readSnapshotGeneration(b.dir); err == nil && g != gen {
					continue
				}
				return scanErr
			}
			validEnd = end
		}
		// The load is consistent only if no compaction replaced the
		// snapshot while we were reading the journal.
		if g, err := readSnapshotGeneration(b.dir); err != nil || g != gen {
			lastErr = err
			continue
		}
		b.names, b.gen, b.validEnd, b.journal = names, gen, validEnd, journal
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("snapshot generation kept changing")
	}
	return fmt.Errorf("storage: store at %s is compacting faster than it can be loaded: %w", b.dir, lastErr)
}

// tailFrom scans journal entries from the given offset to EOF, applying
// them into names and advancing validEnd past the last applied entry.
// The caller holds b.mu.
func (b *FSReadBackend) tailFrom(f *os.File, offset int64, names map[string]string) error {
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("storage: seeking name journal: %w", err)
	}
	validEnd, _, err := scanJournal(f, offset, func(name, hash string) { names[name] = hash })
	b.validEnd = validEnd
	return err
}

// GetBlob reads and hash-verifies a blob. Blobs are immutable and
// synced to disk before any journal line references them, so a binding
// visible through this view always has its blob readable.
func (b *FSReadBackend) GetBlob(hash string) ([]byte, error) { return fsGetBlob(b.dir, hash) }

// HasBlob reports whether the blob file exists.
func (b *FSReadBackend) HasBlob(hash string) bool { return fsHasBlob(b.dir, hash) }

// ListBlobs walks the blob tree and returns all hashes, sorted.
func (b *FSReadBackend) ListBlobs() ([]string, error) { return fsListBlobs(b.dir) }

// ResolveName returns the hash bound to the name as of the last
// Refresh.
func (b *FSReadBackend) ResolveName(name string) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	hash, ok := b.names[name]
	return hash, ok
}

// ListNames returns all names bound as of the last Refresh, sorted.
func (b *FSReadBackend) ListNames() ([]string, error) {
	b.mu.RLock()
	out := make([]string, 0, len(b.names))
	for nk := range b.names {
		out = append(out, nk)
	}
	b.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}

// PutBlob fails: the view is read-only.
func (b *FSReadBackend) PutBlob(hash string, data []byte) error {
	return fmt.Errorf("storage: PutBlob on %s: %w", b.dir, ErrReadOnly)
}

// BindName fails: the view is read-only.
func (b *FSReadBackend) BindName(name, hash string) error {
	return fmt.Errorf("storage: BindName %s on %s: %w", name, b.dir, ErrReadOnly)
}

// Increment fails: the view is read-only (counters are minted only by
// the writer).
func (b *FSReadBackend) Increment(name string) (int, error) {
	return 0, fmt.Errorf("storage: Increment %s on %s: %w", name, b.dir, ErrReadOnly)
}

// Stats reports the binding count from memory and blob statistics the
// cheapest accurate way available: a view of a compacted store whose
// journal tail it has not applied any entries from serves the exact
// figures recorded in the snapshot header (nothing can have been added
// without a tail binding); otherwise it walks the blob tree — the walk
// is per-call, so this is a diagnostic, not a hot path.
func (b *FSReadBackend) Stats() (Stats, error) {
	b.mu.RLock()
	bindings := len(b.names)
	gen, validEnd := b.gen, b.validEnd
	b.mu.RUnlock()
	if gen > 0 && validEnd == 0 {
		if hdr, ok, err := readSnapshotHeader(b.dir); err == nil && ok && hdr.Generation == gen {
			return Stats{Blobs: hdr.Blobs, Bindings: bindings, Bytes: hdr.BlobBytes}, nil
		}
	}
	st := Stats{Bindings: bindings}
	hashes, err := fsListBlobs(b.dir)
	if err != nil {
		return st, err
	}
	st.Blobs = len(hashes)
	for _, h := range hashes {
		if fi, err := os.Stat(filepath.Join(b.dir, "blobs", h[:2], h)); err == nil {
			st.Bytes += fi.Size()
		}
	}
	return st, nil
}

// Info extends Stats with the view's snapshot generation and journal
// figures — `spsys store stats` against a store another process holds
// the writer lock on.
func (b *FSReadBackend) Info() (StoreInfo, error) {
	st, err := b.Stats()
	if err != nil {
		return StoreInfo{Stats: st}, err
	}
	b.mu.RLock()
	info := StoreInfo{Stats: st, Generation: b.gen, JournalBytes: b.validEnd}
	b.mu.RUnlock()
	if fi, err := os.Stat(snapshotPath(b.dir)); err == nil {
		info.SnapshotBytes = fi.Size()
	}
	return info, nil
}

// Position identifies how much name history the view has applied: the
// snapshot generation plus the journal offset of the last applied
// entry. See (*FSBackend).Position.
func (b *FSReadBackend) Position() (Position, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return Position{Generation: b.gen, Offset: b.validEnd}, true
}

// Close releases the shared reader lock. The view keeps answering
// queries from its last refreshed state, but can no longer Refresh.
func (b *FSReadBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	if b.lock != nil {
		// Releases the shared flock; the lock file carries no data.
		b.lock.Close() //spvet:allow syncclose — nothing was written through this fd
		b.lock = nil
	}
	return nil
}
