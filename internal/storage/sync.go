package storage

import "fmt"

// Sync — one-way store replication. A store is fully determined by its
// blob set and its name bindings, so replicating one is a pure
// diff-and-transfer: copy every blob the destination lacks, bind every
// name it lacks or binds differently. No journal bytes, snapshot files,
// or index segments are shipped — the destination rebuilds its own
// durable form through the ordinary write path, which keeps the replica
// valid under the same invariants as any locally-written store.
//
// The transfer is idempotent and crash-resumable by construction:
// every step is "ensure X present", so re-running after a partial
// transfer re-diffs and moves only what is still missing, and syncing
// an already-identical pair transfers nothing at all. Within each
// binding the blob is copied before the name is bound, preserving the
// store invariant that a binding never references a missing blob even
// if the process dies between the two steps.

// SyncStats reports what one Sync pass actually moved.
type SyncStats struct {
	// BlobsCopied is the number of blobs transferred; BlobBytes their
	// total size.
	BlobsCopied int   `json:"blobs_copied"`
	BlobBytes   int64 `json:"blob_bytes"`
	// BindingsBound is the number of names bound or rebound.
	BindingsBound int `json:"bindings_bound"`
	// NamesSeen and BlobsSeen are the source totals diffed against.
	NamesSeen int `json:"names_seen"`
	BlobsSeen int `json:"blobs_seen"`
	// SourcePos is the source's history position sampled before the
	// transfer began — the position the destination is guaranteed to
	// cover once Sync returns. A follower records it to compute
	// replication lag. SourcePosOK is false for sources without
	// positional history (the in-memory store).
	SourcePos   Position `json:"source_position"`
	SourcePosOK bool     `json:"source_position_ok"`
}

// Sync makes dst cover everything src holds: every blob, every name
// binding. src is refreshed first (so a live writer's latest appends
// are included), dst must be writable. Existing dst content is never
// deleted — sync is additive, matching the append-only store model.
//
// Because the source position is sampled before enumeration, Sync can
// only under-claim: a binding recorded by a live writer mid-transfer
// is either included now or covered by the next pass.
func Sync(src, dst *Store) (SyncStats, error) {
	var st SyncStats
	if err := src.Refresh(); err != nil {
		return st, fmt.Errorf("storage: sync: refreshing source: %w", err)
	}
	st.SourcePos, st.SourcePosOK = src.Position()

	sb, db := src.Backend(), dst.Backend()

	// Bindings drive the bulk of the transfer: for each source name,
	// ensure the blob exists at the destination, then bind.
	names, err := sb.ListNames()
	if err != nil {
		return st, fmt.Errorf("storage: sync: listing source names: %w", err)
	}
	st.NamesSeen = len(names)
	for _, name := range names {
		hash, ok := sb.ResolveName(name)
		if !ok {
			continue // unbound between list and resolve: impossible today, harmless if it ever happens
		}
		if cur, ok := db.ResolveName(name); ok && cur == hash && db.HasBlob(hash) {
			continue
		}
		if err := syncBlob(sb, db, hash, &st); err != nil {
			return st, err
		}
		if err := db.BindName(name, hash); err != nil {
			return st, fmt.Errorf("storage: sync: binding %s: %w", name, err)
		}
		st.BindingsBound++
	}

	// Blob sweep: blobs not referenced by any binding (kept artifacts
	// whose names were rebound, content awaiting a bind) still belong to
	// the store; copying them makes the replica's blob set identical,
	// not merely sufficient.
	blobs, err := sb.ListBlobs()
	if err != nil {
		return st, fmt.Errorf("storage: sync: listing source blobs: %w", err)
	}
	st.BlobsSeen = len(blobs)
	for _, hash := range blobs {
		if err := syncBlob(sb, db, hash, &st); err != nil {
			return st, err
		}
	}
	return st, nil
}

// syncBlob ensures one blob is present at the destination, verifying
// content against its hash before writing — a transfer never launders
// corruption into the replica, whatever backend pair is in play.
func syncBlob(src, dst Backend, hash string, st *SyncStats) error {
	if dst.HasBlob(hash) {
		return nil
	}
	data, err := src.GetBlob(hash)
	if err != nil {
		return fmt.Errorf("storage: sync: reading blob %s: %w", shortHash(hash), err)
	}
	// The fs and remote backends verify on read already; hashing again
	// here covers every backend uniformly and costs one pass over bytes
	// we just moved across a network or disk.
	if HashBytes(data) != hash {
		return fmt.Errorf("storage: sync: blob %s fails hash verification at source", shortHash(hash))
	}
	if err := dst.PutBlob(hash, data); err != nil {
		return fmt.Errorf("storage: sync: writing blob %s: %w", shortHash(hash), err)
	}
	st.BlobsCopied++
	st.BlobBytes += int64(len(data))
	return nil
}
