package storage

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// The write half of the versioned store API. A store is normally
// published read-only (spserve's shared-lock view), but the distributed
// campaign topology needs remote workers to append results while the
// flock-holding primary remains the one process touching the directory.
// The primary therefore serves these write routes over its *writer*
// store, and RemoteBackend (remote.go) consumes them when opened with a
// token — every remote write funnels into the primary's journal through
// the same group-commit path local writes take.
//
// # Routes
//
//	PUT  /blob/{hash}   store content under its SHA-256 address. The
//	                    server re-hashes the body and rejects a mismatch
//	                    with 400 — a corrupt upload can never enter the
//	                    archive. Idempotent: re-putting an existing blob
//	                    is free.
//	POST /name          bind a name to an existing blob. With "cas" the
//	                    bind applies only if the name currently resolves
//	                    to "old_hash" ("" = unbound) — the lost-race
//	                    answer is 200 with swapped:false, not an error.
//	POST /counter       atomically increment the named counter; returns
//	                    the new value and the hash it was bound to.
//
// # Auth model
//
// Writes are disabled unless the serving process configured a shared
// token (spd -token / SPD_TOKEN); a handler without one answers 403
// read_only. With one, every write must carry "Authorization: Bearer
// <token>" and the comparison is constant-time. This is deliberately a
// symmetric secret, not per-worker identity: workers are trusted
// cluster members, and the fencing that matters — who may complete a
// cell — is carried by lease epochs in the store itself, not by HTTP
// identity.

// BlobPutDoc is the PUT /blob/{hash} response.
type BlobPutDoc struct {
	Hash string `json:"hash"`
	Size int64  `json:"size"`
}

// NameWriteReq is the POST /name request body.
type NameWriteReq struct {
	// Name is the full "namespace/key" name to bind.
	Name string `json:"name"`
	// Hash is the blob the name should point at; it must already be
	// stored (PUT the blob first).
	Hash string `json:"hash"`
	// CAS makes the bind conditional on OldHash.
	CAS bool `json:"cas,omitempty"`
	// OldHash is the hash the name must currently resolve to for a CAS
	// bind to apply; "" means the name must be unbound.
	OldHash string `json:"old_hash,omitempty"`
}

// NameWriteDoc is the POST /name response.
type NameWriteDoc struct {
	Name string `json:"name"`
	Hash string `json:"hash"`
	// Swapped reports whether the bind was applied — always true for an
	// unconditional bind, the race verdict for a CAS bind.
	Swapped bool `json:"swapped"`
}

// CounterReq is the POST /counter request body.
type CounterReq struct {
	Name string `json:"name"`
}

// CounterDoc is the POST /counter response.
type CounterDoc struct {
	Name  string `json:"name"`
	Value int    `json:"value"`
	// Hash is the blob the counter name is now bound to, so a caller
	// mirroring bindings can update without a round trip.
	Hash string `json:"hash"`
}

// maxWriteBody caps write request bodies. Run records, rendered pages
// and job artifacts are all well under this; a body at the cap is
// rejected rather than truncated.
const maxWriteBody = 64 << 20

// authorizeWrite gates a write route: 403 when the handler has no token
// configured (writes disabled), 401 when the caller's bearer token does
// not match. The comparison is constant-time.
func (h *APIHandler) authorizeWrite(w http.ResponseWriter, r *http.Request) bool {
	if h.token == "" {
		WriteAPIError(w, http.StatusForbidden, "read_only",
			"writes are not enabled on this store endpoint (no shared token configured)")
		return false
	}
	auth := r.Header.Get("Authorization")
	got, ok := strings.CutPrefix(auth, "Bearer ")
	if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(h.token)) != 1 {
		WriteAPIError(w, http.StatusUnauthorized, "unauthorized",
			"missing or wrong bearer token")
		return false
	}
	return true
}

// serveBlobPut answers PUT /blob/{hash}: content-addressed upload with
// end-to-end verification. hash has already been validated by serveBlob.
func (h *APIHandler) serveBlobPut(w http.ResponseWriter, r *http.Request, hash string) {
	if !h.authorizeWrite(w, r) {
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxWriteBody))
	if err != nil {
		WriteAPIError(w, http.StatusBadRequest, "bad_request", "reading body: "+err.Error())
		return
	}
	if got := HashBytes(data); got != hash {
		WriteAPIError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("body hashes to %s, not %s", shortHash(got), shortHash(hash)))
		return
	}
	if err := h.store.Backend().PutBlob(hash, data); err != nil {
		WriteAPIError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	WriteAPIJSON(w, BlobPutDoc{Hash: hash, Size: int64(len(data))})
}

// decodeWriteBody decodes a small JSON write request, answering the
// envelope on malformed input.
func decodeWriteBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(v); err != nil {
		WriteAPIError(w, http.StatusBadRequest, "bad_request", "decoding body: "+err.Error())
		return false
	}
	return true
}

// serveNameWrite answers POST /name: unconditional or compare-and-swap
// name binding. The CAS race is decided atomically on this server — the
// single writer — which is what lets remote workers use it as a lease
// claim primitive.
func (h *APIHandler) serveNameWrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		WriteAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			r.Method+" is not supported on /name")
		return
	}
	if !h.authorizeWrite(w, r) {
		return
	}
	var req NameWriteReq
	if !decodeWriteBody(w, r, &req) {
		return
	}
	if !validName(req.Name) {
		WriteAPIError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("%q is not a namespace/key name", req.Name))
		return
	}
	if !ValidBlobHash(req.Hash) || (req.CAS && req.OldHash != "" && !ValidBlobHash(req.OldHash)) {
		WriteAPIError(w, http.StatusBadRequest, "bad_request", "hash fields must be 64 lowercase hex digits")
		return
	}
	if !h.store.HasBlob(req.Hash) {
		WriteAPIError(w, http.StatusBadRequest, "bad_request",
			"cannot bind "+req.Name+" to missing blob "+shortHash(req.Hash)+" (PUT the blob first)")
		return
	}
	if req.CAS {
		sw, ok := h.store.Backend().(Swapper)
		if !ok {
			WriteAPIError(w, http.StatusForbidden, "read_only",
				"the serving store cannot compare-and-swap")
			return
		}
		swapped, err := sw.CompareAndSwapName(req.Name, req.OldHash, req.Hash)
		if err != nil {
			WriteAPIError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		WriteAPIJSON(w, NameWriteDoc{Name: req.Name, Hash: req.Hash, Swapped: swapped})
		return
	}
	if err := h.store.Backend().BindName(req.Name, req.Hash); err != nil {
		WriteAPIError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	WriteAPIJSON(w, NameWriteDoc{Name: req.Name, Hash: req.Hash, Swapped: true})
}

// serveCounter answers POST /counter: the remote face of
// Backend.Increment. Uniqueness holds across local and remote clients
// alike because every increment lands in the primary backend's one
// critical section.
func (h *APIHandler) serveCounter(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		WriteAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			r.Method+" is not supported on /counter")
		return
	}
	if !h.authorizeWrite(w, r) {
		return
	}
	var req CounterReq
	if !decodeWriteBody(w, r, &req) {
		return
	}
	if !validName(req.Name) {
		WriteAPIError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("%q is not a namespace/key name", req.Name))
		return
	}
	n, err := h.store.Backend().Increment(req.Name)
	if err != nil {
		WriteAPIError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	hash, _ := h.store.Backend().ResolveName(req.Name)
	WriteAPIJSON(w, CounterDoc{Name: req.Name, Value: n, Hash: hash})
}
