package storage

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// FSBackend is the durable, on-disk content-addressed backend: the form
// of the common sp-system storage that actually satisfies the paper's
// long-term preservation mandate. A campaign recorded through it can be
// closed and reopened — by the same process, a later process, or a
// different program entirely — with identical contents.
//
// # On-disk layout
//
//	<dir>/blobs/<hh>/<hash>   blob content, sharded by the first two hex
//	                          digits of its SHA-256 so no directory grows
//	                          unboundedly
//	<dir>/tmp/                staging area for atomic writes
//	<dir>/names.snapshot      compacted journal state: one header line
//	                          (format version, generation, checksum,
//	                          blob statistics) plus one entry per live
//	                          binding; written atomically by Compact
//	<dir>/names.log           append-only JSON-lines journal of name
//	                          bindings appended since the snapshot;
//	                          replayed on top of it at Open (last
//	                          binding for a name wins)
//	<dir>/lock                advisory lock file enforcing the
//	                          one-live-writer rule below
//
// Blob writes are atomic and durable: content is staged under tmp/,
// synced, and renamed into place, so a crash never leaves a partial or
// empty blob addressable. Because the store is content-addressed and
// blobs are immutable, every read re-verifies the content against its
// hash — bit-rot is detected at access time, not silently propagated
// into validation results.
//
// # Journal, group commit and compaction
//
// Name bindings (including the atomic run/job ID counters, which are
// ordinary JSON blob bindings) are appended to the journal through a
// group-commit layer: concurrent BindName/Increment calls coalesce
// their encoded entries into one batch, a single goroutine writes the
// batch with one write syscall (plus one fsync under SyncJournal), and
// every caller in the batch returns once its batch is down. Entry order
// in the journal always matches in-memory binding order — lines are
// enqueued in the same critical section that updates the map. The
// journal is synced on Close; under the default SyncData mode a hard
// power loss mid-run can lose recent bindings but never corrupt
// replayed state (a torn final line is truncated away at replay, so
// later appends start from a clean newline-terminated tail; interior
// corruption is an Open-time error, and the referenced blobs remain
// addressable by hash).
//
// Compact folds the journal into names.snapshot so replay cost stays
// O(appends since last compaction) instead of O(lifetime): the snapshot
// is staged and renamed atomically, then the journal is truncated. A
// crash at any point between those steps recovers to identical state,
// because replaying journal entries the snapshot already covers is
// idempotent (last binding wins). See Compact.
//
// # One live writer per directory
//
// Atomicity guarantees are per-process: the name index is replayed at
// Open and appended through this handle, so two *concurrently live*
// processes over one directory would not see each other's bindings and
// could mint duplicate IDs. On platforms with flock (Linux, the BSDs,
// macOS) Open therefore takes an exclusive advisory lock on <dir>/lock
// and fails fast when another live process holds it (the lock dies with
// its process, so a crash never wedges the store); elsewhere the rule
// is a documented convention only. Read-only views (OpenReadOnly) are
// exempt: they attach through a shared lock on <dir>/lock.read and
// tolerate both live appends and live compactions (see FSReadBackend).
type FSBackend struct {
	dir      string
	lock     *os.File // held flock enforcing one live writer (nil where unsupported)
	syncMode SyncMode

	mu        sync.RWMutex
	names     map[string]string // guarded by mu; replayed + live journal state
	counters  map[string]int    // guarded by mu; cached Increment values (avoids per-increment disk reads)
	log       *os.File          // guarded by mu; append-only names.log handle
	logFailed bool              // guarded by mu; a journal append failed; the tail may be torn

	// Snapshot / compaction state.
	gen        int   // guarded by mu; generation of the snapshot this state is built on (0: none)
	journalEnd int64 // guarded by mu; acknowledged bytes in the live journal tail

	// Group-commit state (see appendLocked).
	gcBuf      []byte // guarded by mu
	gcCount    int    // guarded by mu; entries in gcBuf
	gcSeq      uint64 // guarded by mu; id of the batch currently accumulating
	gcDone     uint64 // guarded by mu; highest batch id fully flushed
	gcFailedAt uint64 // guarded by mu; first batch id whose flush failed (0: none)
	gcFlushing bool   // guarded by mu
	gcErr      error  // guarded by mu
	gcCond     *sync.Cond
	inflight   atomic.Int32 // appenders between entry and enqueue

	// compactFault, when set (tests only), is invoked between compaction
	// protocol steps and aborts the compaction at that point when it
	// returns an error — the fault-injection hook behind the
	// crash-recovery interleaving tests.
	compactFault func(stage string) error

	statsMu    sync.Mutex
	statsReady bool  // guarded by statsMu; blob stats established (snapshot header or walk)
	blobCount  int   // guarded by statsMu
	blobBytes  int64 // guarded by statsMu
}

// SyncMode selects how eagerly the backend pushes writes to stable
// media.
type SyncMode int

const (
	// SyncData is the default: blob content is fsynced before its rename
	// becomes visible (a journal line never references a blob that could
	// vanish in a power loss) and the journal is synced on Close.
	// Acknowledged bindings survive process exit; a hard power loss can
	// lose the most recent ones.
	SyncData SyncMode = iota
	// SyncJournal is SyncData plus one fsync per group-commit batch:
	// every acknowledged binding survives power loss. Concurrent writers
	// amortize the fsync across the batch — this is the mode the
	// group-commit benchmarks price.
	SyncJournal
	// SyncNone performs no fsyncs at all. For tests and benchmark
	// fixture builders that create large stores quickly; never for data
	// anyone intends to keep.
	SyncNone
)

// Options configures OpenFSBackendWith / OpenWith.
type Options struct {
	// Sync selects the durability mode; the zero value is SyncData.
	Sync SyncMode
}

// journalEntry is one names.log line.
type journalEntry struct {
	Name string `json:"n"`
	Hash string `json:"h"`
}

// OpenFSBackend opens (creating if necessary) the on-disk backend rooted
// at dir with default options, takes the store's exclusive writer lock,
// loads its snapshot (if it has one) and replays the journal tail on
// top. It fails fast when another live process already holds the store
// open.
func OpenFSBackend(dir string) (*FSBackend, error) {
	return OpenFSBackendWith(dir, Options{})
}

// OpenFSBackendWith is OpenFSBackend with explicit Options.
func OpenFSBackendWith(dir string, opts Options) (*FSBackend, error) {
	for _, sub := range []string{"blobs", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("storage: opening fs store: %w", err)
		}
	}
	lock, err := lockStoreDir(dir)
	if err != nil {
		return nil, err
	}
	b := &FSBackend{
		dir: dir, lock: lock, syncMode: opts.Sync,
		names: make(map[string]string), counters: make(map[string]int),
		gcSeq: 1,
	}
	b.gcCond = sync.NewCond(&b.mu)
	fail := func(err error) (*FSBackend, error) {
		if lock != nil {
			//spvet:allow syncclose — open failed; the open error is the result and the lock file carries no data
			lock.Close()
		}
		return nil, err
	}
	snapNames, hdr, hasSnap, err := loadSnapshot(dir)
	if err != nil {
		return fail(err)
	}
	if hasSnap {
		b.names = snapNames
		b.gen = hdr.Generation
	}
	if err := b.replayJournal(); err != nil {
		return fail(err)
	}
	// Blob statistics are lazy: Open never walks the blob tree. A
	// compacted store with an empty journal tail trusts the exact counts
	// in its snapshot header; any other state defers the walk to the
	// first Stats/Info call (and Compact re-walks, so snapshot headers
	// are always exact). Opening — the operation every process pays —
	// therefore costs O(snapshot + journal tail), never O(blobs).
	if hasSnap && b.journalEnd == 0 {
		b.blobCount, b.blobBytes = hdr.Blobs, hdr.BlobBytes
		b.statsReady = true
	}
	if err := b.cleanStaging(); err != nil {
		return fail(err)
	}
	log, err := os.OpenFile(b.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(fmt.Errorf("storage: opening name journal: %w", err))
	}
	b.log = log
	return b, nil
}

func (b *FSBackend) journalPath() string { return filepath.Join(b.dir, "names.log") }

// Dir returns the store directory — the seam the API handler uses to
// stat blobs without reading them.
func (b *FSBackend) Dir() string { return b.dir }

func (b *FSBackend) blobPath(hash string) string {
	return filepath.Join(b.dir, "blobs", hash[:2], hash)
}

// scanJournal reads journal entries from r — positioned at startOffset
// within the journal file — applying each well-formed,
// newline-terminated entry in order (last binding for a name wins). It
// returns validEnd, the offset just past the last applied entry, and
// end, the offset past all bytes read. The tail is judged leniently:
// an unterminated final line, or a malformed line with nothing after
// it, was never acknowledged (a crash mid-append, or an append a
// concurrent reader caught in flight) — it is not applied and not an
// error; the writer truncates it away at Open, the read-only view
// revisits it on its next Refresh. Malformed content *followed by*
// further entries is real corruption and is returned as an error. This
// single scanner backs both the writer's replay and the read view's
// re-tail, so the two sides can never drift on what counts as a valid
// entry.
func scanJournal(r io.Reader, startOffset int64, apply func(name, hash string)) (validEnd, end int64, err error) {
	br := bufio.NewReader(r)
	validEnd, end = startOffset, startOffset
	var pendingErr error
	for {
		raw, rerr := br.ReadBytes('\n')
		if len(raw) > 0 {
			if pendingErr != nil {
				return validEnd, end, pendingErr // the malformed line was *not* the last one
			}
			end += int64(len(raw))
			switch entry := bytes.TrimRight(raw, "\r\n"); {
			case raw[len(raw)-1] != '\n':
				// Unterminated tail: torn or in-flight, never applied.
			case len(entry) == 0:
				validEnd = end
			default:
				name, hash, err := decodeJournalEntry(entry)
				if err != nil {
					pendingErr = fmt.Errorf("storage: name journal entry at offset %d is corrupt", end-int64(len(raw)))
					continue
				}
				apply(name, hash)
				validEnd = end
			}
		}
		if rerr == io.EOF {
			return validEnd, end, nil
		}
		if rerr != nil {
			return validEnd, end, fmt.Errorf("storage: reading name journal: %w", rerr)
		}
	}
}

// replayJournal loads names.log into memory (on top of whatever the
// snapshot already established). A torn final line (a crash mid-append
// left the tail malformed or without its newline) was never
// acknowledged: it is not applied, and the journal is truncated back to
// the last good entry so later appends never concatenate onto the tear
// and strand it mid-file — which the next Open would have to treat as
// fatal corruption. Corruption anywhere before the final line is an
// error.
//
// A journal that still contains entries the snapshot already covers —
// the legacy of a compaction that crashed after the snapshot rename but
// before the truncate — replays harmlessly: applying an entry the
// snapshot subsumed is idempotent (last binding for a name wins, and
// the snapshot *is* the last-wins state of those entries).
//
// The caller holds b.mu (during Open, as sole owner of the new value).
func (b *FSBackend) replayJournal() (err error) {
	f, err := os.OpenFile(b.journalPath(), os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: opening name journal: %w", err)
	}
	// The handle is O_RDWR — the torn-tail path truncates through it —
	// so a failed Close can mean the repair never reached the disk.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("storage: closing name journal: %w", cerr)
		}
	}()
	validEnd, end, err := scanJournal(f, 0, func(name, hash string) { b.names[name] = hash })
	if err != nil {
		return err
	}
	if validEnd < end {
		if err := f.Truncate(validEnd); err != nil {
			return fmt.Errorf("storage: truncating torn name journal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("storage: truncating torn name journal tail: %w", err)
		}
	}
	b.journalEnd = validEnd
	return nil
}

// walkBlobStats walks the blob tree once, returning exact counts.
func walkBlobStats(dir string) (count int, bytes int64, err error) {
	err = filepath.WalkDir(filepath.Join(dir, "blobs"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		count++
		bytes += info.Size()
		return nil
	})
	if err != nil {
		return 0, 0, fmt.Errorf("storage: scanning blobs: %w", err)
	}
	return count, bytes, nil
}

// ensureStatsLocked establishes blob statistics by a tree walk if they
// are not already known. The caller holds statsMu, so no PutBlob can
// commit a rename while the walk runs.
func (b *FSBackend) ensureStatsLocked() error {
	if b.statsReady {
		return nil
	}
	count, bytes, err := walkBlobStats(b.dir)
	if err != nil {
		return err
	}
	b.blobCount, b.blobBytes = count, bytes
	b.statsReady = true
	return nil
}

// cleanStaging removes staged files a crashed writer left in tmp/. They
// are garbage by construction: anything that mattered was renamed into
// blobs/ (or to names.snapshot) first.
func (b *FSBackend) cleanStaging() error {
	leftovers, err := os.ReadDir(filepath.Join(b.dir, "tmp"))
	if err != nil {
		return err
	}
	for _, l := range leftovers {
		os.Remove(filepath.Join(b.dir, "tmp", l.Name()))
	}
	return nil
}

// PutBlob stages the content in tmp/ and renames it into the sharded
// blob tree. The expensive work — hashing (done by the caller) and the
// write of the content itself — happens outside any lock; only the
// exists-check plus rename is serialized.
func (b *FSBackend) PutBlob(hash string, data []byte) error {
	target := b.blobPath(hash)
	// Dedup fast path. The size check is a cheap sanity test: a truncated
	// or padded on-disk blob (external damage) must not mask re-storing
	// the correct bytes, so any size mismatch falls through to the
	// staging path, which renames the good copy over the bad one.
	if fi, err := os.Stat(target); err == nil && fi.Size() == int64(len(data)) {
		return nil
	}
	tmp, err := os.CreateTemp(filepath.Join(b.dir, "tmp"), "blob-*")
	if err != nil {
		return fmt.Errorf("storage: staging blob: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close() //spvet:allow syncclose — the write error propagates; close is cleanup
		os.Remove(tmpName)
		return fmt.Errorf("storage: staging blob: %w", err)
	}
	// Sync before rename: otherwise the rename can become durable before
	// the data and a power loss would leave an empty file answering for
	// this hash — a permanently lost artifact that HasBlob still claims.
	if b.syncMode != SyncNone {
		if err := tmp.Sync(); err != nil {
			tmp.Close() //spvet:allow syncclose — the sync error propagates; close is cleanup
			os.Remove(tmpName)
			return fmt.Errorf("storage: syncing blob: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: staging blob: %w", err)
	}
	shard := filepath.Dir(target)
	if _, err := os.Stat(shard); os.IsNotExist(err) {
		if err := os.MkdirAll(shard, 0o755); err != nil {
			os.Remove(tmpName)
			return err
		}
		// First blob of this shard: make the new shard directory's own
		// entry durable too.
		if err := b.syncDir(filepath.Join(b.dir, "blobs")); err != nil {
			os.Remove(tmpName)
			return err
		}
	}
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	prior, priorErr := os.Stat(target)
	if priorErr == nil && prior.Size() == int64(len(data)) {
		// A concurrent writer won the race; our staged copy is identical
		// (same hash), so just drop it.
		os.Remove(tmpName)
		return nil
	}
	// Either the blob is new, or a damaged copy (wrong size) sits at the
	// target; the rename installs or repairs it atomically either way.
	if err := os.Rename(tmpName, target); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: committing blob: %w", err)
	}
	// Sync the shard directory so the rename itself is durable before
	// any journal line referencing this hash can reach disk; otherwise a
	// power loss could replay a binding whose blob entry never made it.
	if err := b.syncDir(filepath.Dir(target)); err != nil {
		return err
	}
	if priorErr == nil {
		b.blobBytes += int64(len(data)) - prior.Size() // repaired in place
	} else {
		b.blobCount++
		b.blobBytes += int64(len(data))
	}
	return nil
}

// syncDir fsyncs a directory (a no-op under SyncNone), making recently
// renamed-in entries durable.
func (b *FSBackend) syncDir(dir string) error {
	if b.syncMode == SyncNone {
		return nil
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making recently renamed-in entries
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: syncing %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: syncing %s: %w", dir, err)
	}
	return nil
}

// fsGetBlob reads a blob from the sharded tree rooted at dir and
// re-verifies it against its hash, so on-disk corruption surfaces as an
// error at the point of access. Shared by the writer backend and the
// read-only view.
func fsGetBlob(dir, hash string) ([]byte, error) {
	if len(hash) < 3 {
		return nil, fmt.Errorf("storage: no blob %s", shortHash(hash))
	}
	data, err := os.ReadFile(filepath.Join(dir, "blobs", hash[:2], hash))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("storage: no blob %s", shortHash(hash))
	}
	if err != nil {
		return nil, fmt.Errorf("storage: reading blob %s: %w", shortHash(hash), err)
	}
	if HashBytes(data) != hash {
		return nil, fmt.Errorf("storage: blob %s fails hash verification (on-disk corruption)", shortHash(hash))
	}
	return data, nil
}

// fsHasBlob reports whether the blob file exists under dir.
func fsHasBlob(dir, hash string) bool {
	if len(hash) < 3 {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, "blobs", hash[:2], hash))
	return err == nil
}

// fsListBlobs walks the blob tree under dir and returns all hashes,
// sorted.
func fsListBlobs(dir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(filepath.Join(dir, "blobs"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		out = append(out, d.Name())
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("storage: listing blobs: %w", err)
	}
	sort.Strings(out)
	return out, nil
}

// GetBlob reads the content and re-verifies it against its hash, so
// on-disk corruption surfaces as an error at the point of access.
func (b *FSBackend) GetBlob(hash string) ([]byte, error) { return fsGetBlob(b.dir, hash) }

// DamageBlob flips one byte of the blob's on-disk file at the given
// offset — controlled bit rot, for exercising the framework's
// corruption detection (the scrub suite, read-time verification, CI's
// scrub-smoke job). It bypasses the staged write protocol on purpose:
// real rot does not stage and rename either.
func (b *FSBackend) DamageBlob(hash string, offset int64) error {
	path := b.blobPath(hash)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("storage: damaging blob %s: %w", shortHash(hash), err)
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, offset); err != nil {
		f.Close() //spvet:allow syncclose — the read error propagates; close is cleanup
		return fmt.Errorf("storage: damaging blob %s at offset %d: %w", shortHash(hash), offset, err)
	}
	buf[0] ^= 0x01
	if _, err := f.WriteAt(buf, offset); err != nil {
		f.Close() //spvet:allow syncclose — the write error propagates; close is cleanup
		return fmt.Errorf("storage: damaging blob %s at offset %d: %w", shortHash(hash), offset, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: damaging blob %s: %w", shortHash(hash), err)
	}
	return nil
}

// HasBlob reports whether the blob file exists.
func (b *FSBackend) HasBlob(hash string) bool { return fsHasBlob(b.dir, hash) }

// ListBlobs walks the blob tree and returns all hashes, sorted.
func (b *FSBackend) ListBlobs() ([]string, error) { return fsListBlobs(b.dir) }

// BindName records the binding in memory and appends it to the journal
// through the group-commit layer.
func (b *FSBackend) BindName(name, hash string) error {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.writableLocked(); err != nil {
		return err
	}
	line, err := json.Marshal(journalEntry{Name: name, Hash: hash})
	if err != nil {
		return err
	}
	// An explicit rebind may overwrite a counter with arbitrary content;
	// drop the cache so the next Increment re-reads the binding.
	delete(b.counters, name)
	b.names[name] = hash
	return b.appendLocked(append(line, '\n'))
}

// CompareAndSwapName implements Swapper: the current-value check and
// the rebind happen under the same b.mu critical section that orders
// every other binding mutation, so of any number of concurrent swappers
// expecting the same prior hash exactly one wins. Like Increment, the
// in-memory map is updated before the group-commit wait (which may
// release the lock), so a swap that slips in during the wait already
// observes the new value and the journal records both in map order.
func (b *FSBackend) CompareAndSwapName(name, oldHash, newHash string) (bool, error) {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.writableLocked(); err != nil {
		return false, err
	}
	if b.names[name] != oldHash {
		return false, nil
	}
	line, err := json.Marshal(journalEntry{Name: name, Hash: newHash})
	if err != nil {
		return false, err
	}
	// Same caution as BindName: the swapped-in blob may not be a counter;
	// drop any cached value so the next Increment re-reads the binding.
	delete(b.counters, name)
	b.names[name] = newHash
	if err := b.appendLocked(append(line, '\n')); err != nil {
		return false, err
	}
	return true, nil
}

// writableLocked reports why the journal cannot accept appends, if it
// cannot. The caller holds b.mu.
func (b *FSBackend) writableLocked() error {
	if b.log == nil {
		return fmt.Errorf("storage: fs store at %s is closed", b.dir)
	}
	if b.logFailed {
		// A previous append may have left a torn line at the journal
		// tail. Appending more lines would strand that tear mid-file,
		// which replay treats as fatal corruption; by refusing, the tear
		// stays final and the next Open tolerates it.
		return fmt.Errorf("storage: name journal at %s is in a failed state after a write error", b.dir)
	}
	return nil
}

// appendLocked enqueues an encoded journal line into the current
// group-commit batch and blocks until that batch has been written (and,
// under SyncJournal, fsynced). The caller holds b.mu and has already
// applied the binding to the in-memory maps — enqueueing in the same
// critical section keeps journal order identical to map-update order.
//
// The first goroutine to find no flush in progress becomes the batch
// leader: it steals the whole accumulated buffer, releases b.mu for the
// write (so more entries can accumulate into the *next* batch — this is
// where concurrent writers coalesce), then publishes the result and
// wakes everyone. A failed flush wedges the journal (logFailed), so the
// possibly-torn tail stays final and the next Open can truncate it.
func (b *FSBackend) appendLocked(line []byte) error {
	b.gcBuf = append(b.gcBuf, line...)
	b.gcCount++
	my := b.gcSeq
	for b.gcDone < my {
		// Fail-stop: once any batch's flush failed, no later batch may
		// write — the journal tail may be torn, and appending after the
		// tear would strand it mid-file, which the next Open treats as
		// fatal corruption. Waiters of failed-or-later batches return
		// the sticky error instead of becoming leaders.
		if b.gcFailedAt != 0 && my >= b.gcFailedAt {
			return b.gcErr
		}
		if b.gcFlushing {
			b.gcCond.Wait()
			continue
		}
		// Become the leader for every entry accumulated so far.
		b.gcFlushing = true
		// Commit window (fsync-per-batch mode only, where a bigger batch
		// saves a whole fsync): appenders that have entered BindName or
		// Increment but not yet enqueued can still join this batch —
		// entries appended while gcFlushing is set and the buffer is
		// unstolen carry this batch's id. Yield a bounded number of
		// times to let them land; under SyncData the write is cheap and
		// latency wins, so steal immediately.
		if b.syncMode == SyncJournal {
			for spin := 0; spin < 8 && int(b.inflight.Load()) > b.gcCount; spin++ {
				b.mu.Unlock()
				runtime.Gosched()
				b.mu.Lock()
			}
		}
		buf := b.gcBuf
		b.gcBuf = nil
		b.gcCount = 0
		batch := b.gcSeq
		b.gcSeq++
		log := b.log
		b.mu.Unlock()
		_, werr := log.Write(buf)
		if werr == nil && b.syncMode == SyncJournal {
			werr = log.Sync()
		}
		b.mu.Lock()
		b.gcFlushing = false
		b.gcDone = batch
		if werr != nil {
			b.logFailed = true
			if b.gcFailedAt == 0 {
				b.gcFailedAt = batch
				b.gcErr = fmt.Errorf("storage: appending to name journal: %w", werr)
			}
			// Entries already accumulated for the next batch will never
			// be written (their owners error out above); discard them so
			// the drain in Close/Compact terminates.
			b.gcBuf, b.gcCount = nil, 0
		} else {
			b.journalEnd += int64(len(buf))
		}
		b.gcCond.Broadcast()
	}
	if b.gcFailedAt != 0 && my >= b.gcFailedAt {
		return b.gcErr
	}
	return nil
}

// drainCommitsLocked waits until no group-commit batch is accumulating
// or flushing. The caller holds b.mu; entries can only accumulate while
// b.mu is free, so once this returns the journal handle is quiescent
// for as long as the caller keeps holding the lock.
func (b *FSBackend) drainCommitsLocked() {
	for b.gcFlushing || len(b.gcBuf) > 0 {
		if !b.gcFlushing {
			// Entries are waiting but no leader has picked them up yet;
			// their owners were woken alongside us and will. Yield.
			b.gcCond.Broadcast()
		}
		b.gcCond.Wait()
	}
}

// ResolveName returns the hash bound to the name.
func (b *FSBackend) ResolveName(name string) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	hash, ok := b.names[name]
	return hash, ok
}

// ListNames returns all bound names, sorted.
func (b *FSBackend) ListNames() ([]string, error) {
	b.mu.RLock()
	out := make([]string, 0, len(b.names))
	for nk := range b.names {
		out = append(out, nk)
	}
	b.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}

// Increment performs the counter read-modify-write under the name lock,
// so concurrent increments from any number of goroutines sharing the
// backend hand out strictly unique values. The current value is cached
// after the first read, so steady-state increments pay only the tiny
// blob write and journal append, not a disk read + hash verification
// per ID minted. The new counter value is committed as a blob before
// its binding enters the journal, preserving the invariant that the
// journal never references a missing blob. The in-memory counter and
// binding are updated *before* the group-commit wait (which may release
// the lock), so a concurrent Increment that slips in during the wait
// still observes the advanced value — IDs stay unique.
func (b *FSBackend) Increment(name string) (int, error) {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.writableLocked(); err != nil {
		return 0, err
	}
	n, cached := b.counters[name]
	if !cached {
		if hash, ok := b.names[name]; ok {
			data, err := b.GetBlob(hash)
			if err != nil {
				return 0, fmt.Errorf("storage: counter %s: %w", name, err)
			}
			if err := json.Unmarshal(data, &n); err != nil {
				return 0, fmt.Errorf("storage: counter %s is not an integer: %w", name, err)
			}
		}
	}
	n++
	data, _ := json.Marshal(n)
	hash := HashBytes(data)
	if err := b.PutBlob(hash, data); err != nil {
		return 0, err
	}
	line, err := json.Marshal(journalEntry{Name: name, Hash: hash})
	if err != nil {
		return 0, err
	}
	b.counters[name] = n
	b.names[name] = hash
	if err := b.appendLocked(append(line, '\n')); err != nil {
		return 0, err
	}
	return n, nil
}

// Stats returns the live binding count plus blob statistics. Blob
// statistics are established lazily — from the snapshot header when the
// store opened compacted with an empty journal tail, otherwise by one
// blob-tree walk on the first call — and maintained incrementally from
// then on, so Open never pays an O(blobs) walk.
func (b *FSBackend) Stats() (Stats, error) {
	b.mu.RLock()
	bindings := len(b.names)
	b.mu.RUnlock()
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	if err := b.ensureStatsLocked(); err != nil {
		return Stats{Bindings: bindings}, err
	}
	return Stats{Blobs: b.blobCount, Bindings: bindings, Bytes: b.blobBytes}, nil
}

// Info extends Stats with the snapshot and journal figures the
// compaction machinery exposes to operators (`spsys store stats`).
func (b *FSBackend) Info() (StoreInfo, error) {
	st, err := b.Stats()
	if err != nil {
		return StoreInfo{Stats: st}, err
	}
	b.mu.RLock()
	info := StoreInfo{
		Stats:        st,
		Generation:   b.gen,
		JournalBytes: b.journalEnd,
	}
	b.mu.RUnlock()
	if fi, err := os.Stat(snapshotPath(b.dir)); err == nil {
		info.SnapshotBytes = fi.Size()
	}
	return info, nil
}

// Position identifies how much durable name history this backend has
// applied: the snapshot generation plus the byte offset of acknowledged
// journal content. Consumers that persist derived state (the bookkeep
// index segment) key it by this position so a later process can tell
// "nothing changed" apart from "decode the tail".
func (b *FSBackend) Position() (Position, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return Position{Generation: b.gen, Offset: b.journalEnd}, true
}

// CompactStats reports what a Compact call did.
type CompactStats struct {
	// Generation is the snapshot generation written.
	Generation int
	// Bindings is the number of live bindings in the snapshot.
	Bindings int
	// JournalBytes is the journal tail length folded into the snapshot.
	JournalBytes int64
	// SnapshotBytes is the size of the written snapshot file.
	SnapshotBytes int64
}

// Compact folds the live journal into a fresh names.snapshot and
// truncates the journal, so the next Open replays O(appends since this
// compaction) instead of the store's lifetime history. The protocol is
// crash-safe at every step:
//
//  1. The snapshot (generation G+1, current bindings, exact blob
//     statistics, checksummed) is staged under tmp/ and fsynced.
//     A crash here leaves the old snapshot and full journal: state
//     unchanged, stale staging cleaned at next Open.
//  2. The staged file is renamed over names.snapshot and the directory
//     is fsynced. A crash *after* this point but before step 3 leaves
//     the new snapshot plus the untruncated journal — which replays to
//     identical state, because every journal entry the snapshot covers
//     is idempotent under last-binding-wins.
//  3. The journal is truncated to empty (its entire content is covered
//     by the snapshot; the writer holds the store lock, so nothing can
//     have appended in between) and, except under SyncNone, synced.
//
// Read-only views are tolerated mid-compaction without any lock
// handshake: they detect the generation change in Refresh and reload
// from the new snapshot instead of trusting stale byte offsets (see
// FSReadBackend).
func (b *FSBackend) Compact() (CompactStats, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.writableLocked(); err != nil {
		return CompactStats{}, err
	}
	b.drainCommitsLocked()
	// Re-check after the drain: a flush that failed while we waited has
	// wedged the journal, and b.names now holds bindings whose callers
	// were told the bind failed — snapshotting them would make
	// unacknowledged writes durable.
	if err := b.writableLocked(); err != nil {
		return CompactStats{}, err
	}
	// The snapshot header carries exact blob statistics (the next Open
	// trusts them without walking), so re-establish them by a fresh walk
	// here: compaction is where incremental drift — e.g. blobs orphaned
	// by a crash between PutBlob and the journal append — gets squared
	// away.
	b.statsMu.Lock()
	b.statsReady = false
	if err := b.ensureStatsLocked(); err != nil {
		b.statsMu.Unlock()
		return CompactStats{}, err
	}
	hdr := snapshotHeader{
		Generation: b.gen + 1,
		Blobs:      b.blobCount,
		BlobBytes:  b.blobBytes,
	}
	b.statsMu.Unlock()
	data, err := encodeSnapshot(hdr, b.names)
	if err != nil {
		return CompactStats{}, err
	}
	stats := CompactStats{
		Generation:    hdr.Generation,
		Bindings:      len(b.names),
		JournalBytes:  b.journalEnd,
		SnapshotBytes: int64(len(data)),
	}

	// Step 1: stage + fsync.
	tmp, err := os.CreateTemp(filepath.Join(b.dir, "tmp"), "snap-*")
	if err != nil {
		return CompactStats{}, fmt.Errorf("storage: staging snapshot: %w", err)
	}
	tmpName := tmp.Name()
	abort := func(err error) (CompactStats, error) {
		os.Remove(tmpName)
		return CompactStats{}, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close() //spvet:allow syncclose — the write error propagates; close is cleanup
		return abort(fmt.Errorf("storage: staging snapshot: %w", err))
	}
	if b.syncMode != SyncNone {
		if err := tmp.Sync(); err != nil {
			tmp.Close() //spvet:allow syncclose — the sync error propagates; close is cleanup
			return abort(fmt.Errorf("storage: syncing snapshot: %w", err))
		}
	}
	if err := tmp.Close(); err != nil {
		return abort(fmt.Errorf("storage: staging snapshot: %w", err))
	}
	if err := b.fault("snapshot-staged"); err != nil {
		return abort(err)
	}

	// Step 2: atomic rename + directory sync.
	if err := os.Rename(tmpName, snapshotPath(b.dir)); err != nil {
		return abort(fmt.Errorf("storage: committing snapshot: %w", err))
	}
	// The rename happened: from here on this process's state is built on
	// generation G+1 even if a later step fails — otherwise a repeated
	// compaction could reuse the on-disk generation number for different
	// content and defeat the readers' staleness check.
	b.gen = hdr.Generation
	if err := b.syncDir(b.dir); err != nil {
		return stats, err
	}
	if err := b.fault("snapshot-renamed"); err != nil {
		return stats, err
	}

	// Step 3: drop the journal content the snapshot now covers.
	if err := b.log.Truncate(0); err != nil {
		// The on-disk state is consistent (snapshot + covered journal),
		// but this handle's view of the journal is now unreliable:
		// fail-stop, exactly like a torn append.
		b.logFailed = true
		return stats, fmt.Errorf("storage: truncating journal after compaction: %w", err)
	}
	if b.syncMode != SyncNone {
		if err := b.log.Sync(); err != nil {
			b.logFailed = true
			return stats, fmt.Errorf("storage: syncing truncated journal: %w", err)
		}
	}
	b.journalEnd = 0
	return stats, nil
}

// fault invokes the test-only fault-injection hook.
func (b *FSBackend) fault(stage string) error {
	if b.compactFault == nil {
		return nil
	}
	return b.compactFault(stage)
}

// Close flushes pending group-commit batches, syncs the name journal to
// stable media, releases the handle, and drops the store's writer lock
// so another process may open the directory. Using the backend after
// Close returns errors.
func (b *FSBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.log == nil {
		return nil
	}
	b.drainCommitsLocked()
	var syncErr error
	if b.syncMode != SyncNone {
		syncErr = b.log.Sync()
	}
	closeErr := b.log.Close()
	b.log = nil
	if b.lock != nil {
		// Releases the flock; the lock file carries no data.
		b.lock.Close() //spvet:allow syncclose — nothing was written through this fd
		b.lock = nil
	}
	if syncErr != nil {
		return fmt.Errorf("storage: syncing name journal: %w", syncErr)
	}
	return closeErr
}
