package storage

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FSBackend is the durable, on-disk content-addressed backend: the form
// of the common sp-system storage that actually satisfies the paper's
// long-term preservation mandate. A campaign recorded through it can be
// closed and reopened — by the same process, a later process, or a
// different program entirely — with identical contents.
//
// # On-disk layout
//
//	<dir>/blobs/<hh>/<hash>   blob content, sharded by the first two hex
//	                          digits of its SHA-256 so no directory grows
//	                          unboundedly
//	<dir>/tmp/                staging area for atomic writes
//	<dir>/names.log           append-only JSON-lines journal of name
//	                          bindings; replayed at Open (last binding
//	                          for a name wins)
//	<dir>/lock                advisory lock file enforcing the
//	                          one-live-writer rule below
//
// Blob writes are atomic and durable: content is staged under tmp/,
// synced, and renamed into place, so a crash never leaves a partial or
// empty blob addressable. Because the store is content-addressed and
// blobs are immutable, every read re-verifies the content against its
// hash — bit-rot is detected at access time, not silently propagated
// into validation results. Name bindings (including the atomic run/job
// ID counters, which are ordinary JSON blob bindings) are appended to
// the journal as they happen and the journal is synced on Close: the
// journal is durable against process exit, while a hard power loss
// mid-run can lose recent bindings (never corrupt replayed state — a
// torn final line is truncated away at replay, so later appends start
// from a clean newline-terminated tail; interior corruption is an
// Open-time error, and the referenced blobs remain addressable by
// hash).
//
// # One live writer per directory
//
// Atomicity guarantees are per-process: the name index is replayed at
// Open and appended through this handle, so two *concurrently live*
// processes over one directory would not see each other's bindings and
// could mint duplicate IDs. On platforms with flock (Linux, the BSDs,
// macOS) Open therefore takes an exclusive advisory lock on <dir>/lock
// and fails fast when another live process holds it (the lock dies with
// its process, so a crash never wedges the store); elsewhere the rule
// is a documented convention only. Share a store directory
// sequentially — the paper's record-then-report workflow
// (`spsys campaign -store DIR`, then `spreport -store DIR`) — or
// through one process.
type FSBackend struct {
	dir  string
	lock *os.File // held flock enforcing one live writer (nil where unsupported)

	mu        sync.RWMutex
	names     map[string]string // replayed + live journal state
	counters  map[string]int    // cached Increment values (avoids per-increment disk reads)
	log       *os.File          // append-only names.log handle
	logFailed bool              // a journal append failed; the tail may be torn

	statsMu   sync.Mutex
	blobCount int
	blobBytes int64
}

// journalEntry is one names.log line.
type journalEntry struct {
	Name string `json:"n"`
	Hash string `json:"h"`
}

// OpenFSBackend opens (creating if necessary) the on-disk backend rooted
// at dir, takes the store's exclusive writer lock, and replays its name
// journal. It fails fast when another live process already holds the
// store open.
func OpenFSBackend(dir string) (*FSBackend, error) {
	for _, sub := range []string{"blobs", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("storage: opening fs store: %w", err)
		}
	}
	lock, err := lockStoreDir(dir)
	if err != nil {
		return nil, err
	}
	b := &FSBackend{dir: dir, lock: lock, names: make(map[string]string), counters: make(map[string]int)}
	fail := func(err error) (*FSBackend, error) {
		if lock != nil {
			lock.Close()
		}
		return nil, err
	}
	if err := b.replayJournal(); err != nil {
		return fail(err)
	}
	if err := b.scanBlobs(); err != nil {
		return fail(err)
	}
	log, err := os.OpenFile(b.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(fmt.Errorf("storage: opening name journal: %w", err))
	}
	b.log = log
	return b, nil
}

func (b *FSBackend) journalPath() string { return filepath.Join(b.dir, "names.log") }

func (b *FSBackend) blobPath(hash string) string {
	return filepath.Join(b.dir, "blobs", hash[:2], hash)
}

// scanJournal reads journal entries from r — positioned at startOffset
// within the journal file — applying each well-formed,
// newline-terminated entry in order (last binding for a name wins). It
// returns validEnd, the offset just past the last applied entry, and
// end, the offset past all bytes read. The tail is judged leniently:
// an unterminated final line, or a malformed line with nothing after
// it, was never acknowledged (a crash mid-append, or an append a
// concurrent reader caught in flight) — it is not applied and not an
// error; the writer truncates it away at Open, the read-only view
// revisits it on its next Refresh. Malformed content *followed by*
// further entries is real corruption and is returned as an error. This
// single scanner backs both the writer's replay and the read view's
// re-tail, so the two sides can never drift on what counts as a valid
// entry.
func scanJournal(r io.Reader, startOffset int64, apply func(name, hash string)) (validEnd, end int64, err error) {
	br := bufio.NewReader(r)
	validEnd, end = startOffset, startOffset
	var pendingErr error
	for {
		raw, rerr := br.ReadBytes('\n')
		if len(raw) > 0 {
			if pendingErr != nil {
				return validEnd, end, pendingErr // the malformed line was *not* the last one
			}
			end += int64(len(raw))
			switch entry := bytes.TrimRight(raw, "\r\n"); {
			case raw[len(raw)-1] != '\n':
				// Unterminated tail: torn or in-flight, never applied.
			case len(entry) == 0:
				validEnd = end
			default:
				var e journalEntry
				if err := json.Unmarshal(entry, &e); err != nil || !validName(e.Name) || e.Hash == "" {
					pendingErr = fmt.Errorf("storage: name journal entry at offset %d is corrupt", end-int64(len(raw)))
					continue
				}
				apply(e.Name, e.Hash)
				validEnd = end
			}
		}
		if rerr == io.EOF {
			return validEnd, end, nil
		}
		if rerr != nil {
			return validEnd, end, fmt.Errorf("storage: reading name journal: %w", rerr)
		}
	}
}

// replayJournal loads names.log into memory. A torn final line (a
// crash mid-append left the tail malformed or without its newline) was
// never acknowledged: it is not applied, and the journal is truncated
// back to the last good entry so later appends never concatenate onto
// the tear and strand it mid-file — which the next Open would have to
// treat as fatal corruption. Corruption anywhere before the final line
// is an error.
func (b *FSBackend) replayJournal() error {
	f, err := os.OpenFile(b.journalPath(), os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: opening name journal: %w", err)
	}
	defer f.Close()
	validEnd, end, err := scanJournal(f, 0, func(name, hash string) { b.names[name] = hash })
	if err != nil {
		return err
	}
	if validEnd < end {
		if err := f.Truncate(validEnd); err != nil {
			return fmt.Errorf("storage: truncating torn name journal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("storage: truncating torn name journal tail: %w", err)
		}
	}
	return nil
}

// scanBlobs walks the blob tree once to establish stats and to clear any
// staging leftovers from a crashed writer.
func (b *FSBackend) scanBlobs() error {
	err := filepath.WalkDir(filepath.Join(b.dir, "blobs"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		b.blobCount++
		b.blobBytes += info.Size()
		return nil
	})
	if err != nil {
		return fmt.Errorf("storage: scanning blobs: %w", err)
	}
	// Staged files from a crashed writer are garbage by construction:
	// anything that mattered was renamed into blobs/ first.
	leftovers, err := os.ReadDir(filepath.Join(b.dir, "tmp"))
	if err != nil {
		return err
	}
	for _, l := range leftovers {
		os.Remove(filepath.Join(b.dir, "tmp", l.Name()))
	}
	return nil
}

// PutBlob stages the content in tmp/ and renames it into the sharded
// blob tree. The expensive work — hashing (done by the caller) and the
// write of the content itself — happens outside any lock; only the
// exists-check plus rename is serialized.
func (b *FSBackend) PutBlob(hash string, data []byte) error {
	target := b.blobPath(hash)
	// Dedup fast path. The size check is a cheap sanity test: a truncated
	// or padded on-disk blob (external damage) must not mask re-storing
	// the correct bytes, so any size mismatch falls through to the
	// staging path, which renames the good copy over the bad one.
	if fi, err := os.Stat(target); err == nil && fi.Size() == int64(len(data)) {
		return nil
	}
	tmp, err := os.CreateTemp(filepath.Join(b.dir, "tmp"), "blob-*")
	if err != nil {
		return fmt.Errorf("storage: staging blob: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("storage: staging blob: %w", err)
	}
	// Sync before rename: otherwise the rename can become durable before
	// the data and a power loss would leave an empty file answering for
	// this hash — a permanently lost artifact that HasBlob still claims.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("storage: syncing blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: staging blob: %w", err)
	}
	shard := filepath.Dir(target)
	if _, err := os.Stat(shard); os.IsNotExist(err) {
		if err := os.MkdirAll(shard, 0o755); err != nil {
			os.Remove(tmpName)
			return err
		}
		// First blob of this shard: make the new shard directory's own
		// entry durable too.
		if err := syncDir(filepath.Join(b.dir, "blobs")); err != nil {
			os.Remove(tmpName)
			return err
		}
	}
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	prior, priorErr := os.Stat(target)
	if priorErr == nil && prior.Size() == int64(len(data)) {
		// A concurrent writer won the race; our staged copy is identical
		// (same hash), so just drop it.
		os.Remove(tmpName)
		return nil
	}
	// Either the blob is new, or a damaged copy (wrong size) sits at the
	// target; the rename installs or repairs it atomically either way.
	if err := os.Rename(tmpName, target); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: committing blob: %w", err)
	}
	// Sync the shard directory so the rename itself is durable before
	// any journal line referencing this hash can reach disk; otherwise a
	// power loss could replay a binding whose blob entry never made it.
	if err := syncDir(filepath.Dir(target)); err != nil {
		return err
	}
	if priorErr == nil {
		b.blobBytes += int64(len(data)) - prior.Size() // repaired in place
	} else {
		b.blobCount++
		b.blobBytes += int64(len(data))
	}
	return nil
}

// syncDir fsyncs a directory, making recently renamed-in entries
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: syncing %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: syncing %s: %w", dir, err)
	}
	return nil
}

// fsGetBlob reads a blob from the sharded tree rooted at dir and
// re-verifies it against its hash, so on-disk corruption surfaces as an
// error at the point of access. Shared by the writer backend and the
// read-only view.
func fsGetBlob(dir, hash string) ([]byte, error) {
	if len(hash) < 3 {
		return nil, fmt.Errorf("storage: no blob %s", shortHash(hash))
	}
	data, err := os.ReadFile(filepath.Join(dir, "blobs", hash[:2], hash))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("storage: no blob %s", shortHash(hash))
	}
	if err != nil {
		return nil, fmt.Errorf("storage: reading blob %s: %w", shortHash(hash), err)
	}
	if HashBytes(data) != hash {
		return nil, fmt.Errorf("storage: blob %s fails hash verification (on-disk corruption)", shortHash(hash))
	}
	return data, nil
}

// fsHasBlob reports whether the blob file exists under dir.
func fsHasBlob(dir, hash string) bool {
	if len(hash) < 3 {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, "blobs", hash[:2], hash))
	return err == nil
}

// fsListBlobs walks the blob tree under dir and returns all hashes,
// sorted.
func fsListBlobs(dir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(filepath.Join(dir, "blobs"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		out = append(out, d.Name())
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("storage: listing blobs: %w", err)
	}
	sort.Strings(out)
	return out, nil
}

// GetBlob reads the content and re-verifies it against its hash, so
// on-disk corruption surfaces as an error at the point of access.
func (b *FSBackend) GetBlob(hash string) ([]byte, error) { return fsGetBlob(b.dir, hash) }

// HasBlob reports whether the blob file exists.
func (b *FSBackend) HasBlob(hash string) bool { return fsHasBlob(b.dir, hash) }

// ListBlobs walks the blob tree and returns all hashes, sorted.
func (b *FSBackend) ListBlobs() ([]string, error) { return fsListBlobs(b.dir) }

// BindName records the binding in memory and appends it to the journal.
func (b *FSBackend) BindName(name, hash string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	// An explicit rebind may overwrite a counter with arbitrary content;
	// drop the cache so the next Increment re-reads the binding.
	delete(b.counters, name)
	return b.bindLocked(name, hash)
}

// bindLocked appends a journal entry and updates the in-memory index.
// The caller must hold b.mu.
func (b *FSBackend) bindLocked(name, hash string) error {
	if b.log == nil {
		return fmt.Errorf("storage: fs store at %s is closed", b.dir)
	}
	if b.logFailed {
		// A previous append may have left a torn line at the journal
		// tail. Appending more lines would strand that tear mid-file,
		// which replay treats as fatal corruption; by refusing, the tear
		// stays final and the next Open tolerates it.
		return fmt.Errorf("storage: name journal at %s is in a failed state after a write error", b.dir)
	}
	line, err := json.Marshal(journalEntry{Name: name, Hash: hash})
	if err != nil {
		return err
	}
	if _, err := b.log.Write(append(line, '\n')); err != nil {
		b.logFailed = true
		return fmt.Errorf("storage: appending to name journal: %w", err)
	}
	b.names[name] = hash
	return nil
}

// ResolveName returns the hash bound to the name.
func (b *FSBackend) ResolveName(name string) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	hash, ok := b.names[name]
	return hash, ok
}

// ListNames returns all bound names, sorted.
func (b *FSBackend) ListNames() ([]string, error) {
	b.mu.RLock()
	out := make([]string, 0, len(b.names))
	for nk := range b.names {
		out = append(out, nk)
	}
	b.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}

// Increment performs the counter read-modify-write under the name lock,
// so concurrent increments from any number of goroutines sharing the
// backend hand out strictly unique values. The current value is cached
// after the first read, so steady-state increments pay only the tiny
// blob write and journal append, not a disk read + hash verification
// per ID minted. The new counter value is committed as a blob before
// its binding enters the journal, preserving the invariant that the
// journal never references a missing blob.
func (b *FSBackend) Increment(name string) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n, cached := b.counters[name]
	if !cached {
		if hash, ok := b.names[name]; ok {
			data, err := b.GetBlob(hash)
			if err != nil {
				return 0, fmt.Errorf("storage: counter %s: %w", name, err)
			}
			if err := json.Unmarshal(data, &n); err != nil {
				return 0, fmt.Errorf("storage: counter %s is not an integer: %w", name, err)
			}
		}
	}
	n++
	data, _ := json.Marshal(n)
	hash := HashBytes(data)
	if err := b.PutBlob(hash, data); err != nil {
		return 0, err
	}
	if err := b.bindLocked(name, hash); err != nil {
		return 0, err
	}
	b.counters[name] = n
	return n, nil
}

// Stats returns blob statistics maintained incrementally (established by
// a single walk at Open) plus the live binding count.
func (b *FSBackend) Stats() (Stats, error) {
	b.mu.RLock()
	bindings := len(b.names)
	b.mu.RUnlock()
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	return Stats{Blobs: b.blobCount, Bindings: bindings, Bytes: b.blobBytes}, nil
}

// Close syncs the name journal to stable media, releases the handle,
// and drops the store's writer lock so another process may open the
// directory. Using the backend after Close returns errors.
func (b *FSBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.log == nil {
		return nil
	}
	syncErr := b.log.Sync()
	closeErr := b.log.Close()
	b.log = nil
	if b.lock != nil {
		b.lock.Close() // releases the flock
		b.lock = nil
	}
	if syncErr != nil {
		return fmt.Errorf("storage: syncing name journal: %w", syncErr)
	}
	return closeErr
}
