// Restricted to the platforms whose stdlib syscall package actually
// provides flock — the broader `unix` tag also matches solaris and aix,
// which lack it and would fail to compile.
//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd

package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockSupported reports whether this platform enforces the
// one-live-writer rule with an OS advisory lock.
const lockSupported = true

// lockStoreDir takes an exclusive, non-blocking advisory lock on
// <dir>/lock, enforcing the one-live-writer-per-directory rule
// documented on FSBackend: a second live process opening the same store
// fails fast here instead of silently losing the first one's bindings
// or minting duplicate IDs. The lock is tied to the open file
// description, so it is released by Close and — crucially — by process
// death: a crashed writer never wedges the store.
func lockStoreDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening store lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close() //spvet:allow syncclose — flock failed; nothing was written and the flock error propagates
		return nil, fmt.Errorf("storage: store at %s is already open in another live process (close it, or give this one its own -store directory): %w", dir, err)
	}
	return f, nil
}

// lockStoreDirShared takes a shared, non-blocking advisory lock on
// <dir>/lock.read, registering a live read-only view of the store.
// Readers deliberately lock a *different* file than the writer: flock's
// shared and exclusive modes conflict on one file, and the whole point
// of the read path is to attach while a writer is live. The protocol is
// therefore two-file:
//
//   - <dir>/lock       LOCK_EX — at most one live writer (appends only).
//   - <dir>/lock.read  LOCK_SH — any number of live readers; anything
//     that would *destroy* reader-visible state (deleting or compacting
//     the store, rewriting the journal in place) must take LOCK_EX here
//     first and so waits out — or fails fast against — live readers.
//
// The writer's only destructive act, truncating a torn journal tail at
// Open, removes bytes no reader ever applied (replay ignores an
// unterminated tail), so writers do not contend on lock.read at all.
// Like the writer lock, the reader lock dies with its process.
func lockStoreDirShared(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "lock.read"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening store read lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_SH|syscall.LOCK_NB); err != nil {
		f.Close() //spvet:allow syncclose — flock failed; nothing was written and the flock error propagates
		return nil, fmt.Errorf("storage: store at %s is locked against readers (a destructive maintenance operation holds lock.read): %w", dir, err)
	}
	return f, nil
}
