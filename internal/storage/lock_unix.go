// Restricted to the platforms whose stdlib syscall package actually
// provides flock — the broader `unix` tag also matches solaris and aix,
// which lack it and would fail to compile.
//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd

package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockSupported reports whether this platform enforces the
// one-live-writer rule with an OS advisory lock.
const lockSupported = true

// lockStoreDir takes an exclusive, non-blocking advisory lock on
// <dir>/lock, enforcing the one-live-writer-per-directory rule
// documented on FSBackend: a second live process opening the same store
// fails fast here instead of silently losing the first one's bindings
// or minting duplicate IDs. The lock is tied to the open file
// description, so it is released by Close and — crucially — by process
// death: a crashed writer never wedges the store.
func lockStoreDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening store lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: store at %s is already open in another live process (close it, or give this one its own -store directory): %w", dir, err)
	}
	return f, nil
}
