package storage

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// serveWritableStore mounts the API with writes enabled behind token.
func serveWritableStore(t *testing.T, store *Store, token string) *httptest.Server {
	t.Helper()
	h := NewAPIHandler(store, nil).EnableWrites(token)
	ts := httptest.NewServer(http.StripPrefix("/api/v1", h))
	t.Cleanup(ts.Close)
	return ts
}

func apiReq(t *testing.T, method, url, token string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp.StatusCode, out.Bytes()
}

func apiCode(t *testing.T, body []byte) string {
	t.Helper()
	var doc APIErrorDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("not an error envelope: %s", body)
	}
	return doc.Error.Code
}

// A handler without a token must refuse writes outright (403
// read_only), whatever credentials the caller presents — there is no
// unauthenticated write mode.
func TestWriteAPIDisabledWithoutToken(t *testing.T) {
	st := NewStore()
	ts := httptest.NewServer(http.StripPrefix("/api/v1", NewAPIHandler(st, nil)))
	defer ts.Close()
	data := []byte("blob")
	status, body := apiReq(t, http.MethodPut, ts.URL+"/api/v1/blob/"+HashBytes(data), "whatever", data)
	if status != http.StatusForbidden || apiCode(t, body) != "read_only" {
		t.Fatalf("PUT on write-disabled handler: %d %s", status, body)
	}
	status, body = apiReq(t, http.MethodPost, ts.URL+"/api/v1/counter", "", []byte(`{"name":"seq/runs"}`))
	if status != http.StatusForbidden || apiCode(t, body) != "read_only" {
		t.Fatalf("POST /counter on write-disabled handler: %d %s", status, body)
	}
}

func TestWriteAPIAuthAndRoutes(t *testing.T) {
	st := NewStore()
	ts := serveWritableStore(t, st, "sekrit")
	data := []byte("the artifact")
	hash := HashBytes(data)

	// Wrong or missing token: 401 before anything is stored.
	for _, tok := range []string{"", "wrong"} {
		status, body := apiReq(t, http.MethodPut, ts.URL+"/api/v1/blob/"+hash, tok, data)
		if status != http.StatusUnauthorized || apiCode(t, body) != "unauthorized" {
			t.Fatalf("token %q: %d %s", tok, status, body)
		}
	}
	if st.HasBlob(hash) {
		t.Fatal("unauthorized PUT stored the blob")
	}

	// A body that does not hash to the claimed address is rejected:
	// corrupt uploads cannot enter the archive.
	status, body := apiReq(t, http.MethodPut, ts.URL+"/api/v1/blob/"+hash, "sekrit", []byte("corrupted"))
	if status != http.StatusBadRequest || apiCode(t, body) != "bad_request" {
		t.Fatalf("hash-mismatch PUT: %d %s", status, body)
	}

	// The honest upload lands, and re-putting is idempotent.
	for i := 0; i < 2; i++ {
		status, body = apiReq(t, http.MethodPut, ts.URL+"/api/v1/blob/"+hash, "sekrit", data)
		if status != http.StatusOK {
			t.Fatalf("PUT attempt %d: %d %s", i, status, body)
		}
	}
	if got, err := st.GetBlob(hash); err != nil || string(got) != string(data) {
		t.Fatalf("after PUT: %q, %v", got, err)
	}

	// Binding to a missing blob is refused; to the uploaded one it works.
	bind := func(name, h string, cas bool, old string) (int, NameWriteDoc, []byte) {
		reqBody, _ := json.Marshal(NameWriteReq{Name: name, Hash: h, CAS: cas, OldHash: old})
		status, body := apiReq(t, http.MethodPost, ts.URL+"/api/v1/name", "sekrit", reqBody)
		var doc NameWriteDoc
		json.Unmarshal(body, &doc)
		return status, doc, body
	}
	missing := HashBytes([]byte("never uploaded"))
	if status, _, body := bind("runs/run-1", missing, false, ""); status != http.StatusBadRequest {
		t.Fatalf("bind to missing blob: %d %s", status, body)
	}
	if status, doc, body := bind("runs/run-1", hash, false, ""); status != http.StatusOK || !doc.Swapped {
		t.Fatalf("bind: %d %s", status, body)
	}
	if got, err := st.Get("runs", "run-1"); err != nil || string(got) != string(data) {
		t.Fatalf("bound read-back: %q, %v", got, err)
	}

	// CAS loses against a bound name when expecting unbound, wins over
	// the true current hash.
	if _, doc, _ := bind("runs/run-1", hash, true, ""); doc.Swapped {
		t.Fatal("CAS expecting unbound won over a bound name")
	}
	if status, doc, body := bind("runs/run-1", hash, true, hash); status != http.StatusOK || !doc.Swapped {
		t.Fatalf("CAS over current hash: %d %s", status, body)
	}

	// Counters mint unique ascending values.
	for want := 1; want <= 3; want++ {
		reqBody, _ := json.Marshal(CounterReq{Name: "seq/runs"})
		status, body := apiReq(t, http.MethodPost, ts.URL+"/api/v1/counter", "sekrit", reqBody)
		if status != http.StatusOK {
			t.Fatalf("counter: %d %s", status, body)
		}
		var doc CounterDoc
		json.Unmarshal(body, &doc)
		if doc.Value != want || !ValidBlobHash(doc.Hash) {
			t.Fatalf("counter doc %+v, want value %d", doc, want)
		}
	}

	// Malformed names never reach the backend.
	if status, _, body := bind("no-slash", hash, false, ""); status != http.StatusBadRequest {
		t.Fatalf("invalid name: %d %s", status, body)
	}
}

// The full worker path: a write-capable remote backend over the API,
// exercising Store.Put / Increment / CompareAndSwap end to end with
// read-your-writes, against a durable FS primary.
func TestRemoteWritableBackend(t *testing.T) {
	dir := t.TempDir()
	primary, err := OpenWith(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	ts := serveWritableStore(t, primary, "sekrit")

	worker, err := OpenRemoteWith(ts.URL, RemoteOptions{Token: "sekrit"})
	if err != nil {
		t.Fatal(err)
	}
	rb := worker.Backend().(*RemoteBackend)
	if !rb.Writable() {
		t.Fatal("token-bearing remote backend is not writable")
	}

	// Put + read-your-writes without an intervening Refresh.
	if _, err := worker.Put("runs", "run-0001", []byte(`{"id":"run-0001"}`)); err != nil {
		t.Fatalf("remote Put: %v", err)
	}
	if got, err := worker.Get("runs", "run-0001"); err != nil || string(got) != `{"id":"run-0001"}` {
		t.Fatalf("read-your-writes: %q, %v", got, err)
	}
	// ...and the write really lives on the primary.
	if got, err := primary.Get("runs", "run-0001"); err != nil || string(got) != `{"id":"run-0001"}` {
		t.Fatalf("primary read: %q, %v", got, err)
	}

	// Counters minted remotely and locally interleave without reuse.
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		rn, err := worker.Increment("seq", "runs")
		if err != nil {
			t.Fatalf("remote Increment: %v", err)
		}
		ln, err := primary.Increment("seq", "runs")
		if err != nil {
			t.Fatalf("local Increment: %v", err)
		}
		for _, n := range []int{rn, ln} {
			if seen[n] {
				t.Fatalf("counter value %d handed out twice", n)
			}
			seen[n] = true
		}
	}

	// Two workers race a CAS claim through the API; the primary decides.
	worker2, err := OpenRemoteWith(ts.URL, RemoteOptions{Token: "sekrit"})
	if err != nil {
		t.Fatal(err)
	}
	var wins int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, w := range []*Store{worker, worker2} {
		wg.Add(1)
		go func(i int, w *Store) {
			defer wg.Done()
			_, swapped, err := w.CompareAndSwap("plan", "lease/cell", "", []byte(fmt.Sprintf("worker-%d", i)))
			if err != nil {
				t.Errorf("worker %d CAS: %v", i, err)
			}
			if swapped {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}(i, w)
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("%d remote workers won the claim, want exactly 1", wins)
	}

	// A read-only remote over the same server still refuses writes
	// client-side.
	ro, err := OpenRemote(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Put("runs", "run-0002", []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only remote Put: %v, want ErrReadOnly", err)
	}
	if _, _, err := ro.CompareAndSwap("plan", "lease/other", "", []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only remote CAS: %v, want ErrReadOnly", err)
	}

	// A worker with the wrong token is rejected by the server. Failure
	// probes are instant: no retries on 4xx.
	bad, err := OpenRemoteWith(ts.URL, RemoteOptions{Token: "stolen", Backoff: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Put("runs", "run-0003", []byte("x")); err == nil {
		t.Fatal("wrong-token remote Put succeeded")
	}
}
