package storage

// HTTP conditional-request and content-coding helpers shared by both
// serving tiers — the store-level APIHandler here and the status
// service (internal/serve) built on top of it — so entity-tag matching
// and gzip negotiation can never drift between them.

import (
	"bytes"
	"compress/gzip"
	"net/http"
	"strconv"
	"strings"
)

// GzipMinSize is the smallest body worth compressing: below it the
// gzip header and the extra ETag variant outweigh the saved bytes.
const GzipMinSize = 256

// AcceptsGzip reports whether the request negotiates the gzip content
// coding: an Accept-Encoding member naming gzip (or *) with a nonzero
// q-value.
func AcceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		name, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		name = strings.TrimSpace(name)
		if !strings.EqualFold(name, "gzip") && name != "*" {
			continue
		}
		q := 1.0
		for _, p := range strings.Split(params, ";") {
			if k, v, ok := strings.Cut(strings.TrimSpace(p), "="); ok && strings.EqualFold(strings.TrimSpace(k), "q") {
				if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
					q = f
				}
			}
		}
		return q > 0
	}
	return false
}

// GzipBytes compresses data at the default level.
func GzipBytes(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	_, werr := zw.Write(data)
	cerr := zw.Close()
	if werr != nil {
		return nil, werr
	}
	if cerr != nil {
		return nil, cerr
	}
	return buf.Bytes(), nil
}

// NoneMatch reports which of the candidate entity tags the request's
// If-None-Match header matches, if any. Both the identity and +gzip
// variants of a validator are passed as candidates, so a client that
// cached either representation revalidates to 304. Weak-comparison
// rules apply (a W/ prefix is ignored), and "*" matches the first
// candidate.
func NoneMatch(r *http.Request, tags ...string) (string, bool) {
	inm := r.Header.Get("If-None-Match")
	if inm == "" || len(tags) == 0 {
		return "", false
	}
	for _, tok := range strings.Split(inm, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "*" {
			return tags[0], true
		}
		tok = strings.TrimPrefix(tok, "W/")
		for _, tag := range tags {
			if tok == tag {
				return tag, true
			}
		}
	}
	return "", false
}
