package storage

import (
	"strings"
	"testing"
)

func TestEnvRenderSorted(t *testing.T) {
	e := Env{EnvOutput: "out", EnvInput: "in", EnvConfig: "SL5/32bit gcc4.1"}
	got := e.Render()
	want := "SP_CONFIG=SL5/32bit gcc4.1\nSP_INPUT=in\nSP_OUTPUT=out\n"
	if got != want {
		t.Fatalf("Render = %q, want %q", got, want)
	}
}

func TestEnvParseRoundTrip(t *testing.T) {
	e := Env{
		EnvInput:     "tests/h1/dst-read/input.dat",
		EnvOutput:    "results/run-0042/dst-read",
		EnvExternals: "CERNLIB-2006+ROOT-5.34",
		EnvConfig:    "SL6/64bit gcc4.4",
		EnvRunID:     "run-0042",
	}
	parsed, err := ParseEnv(e.Render())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(e) {
		t.Fatalf("parsed %d vars, want %d", len(parsed), len(e))
	}
	for k, v := range e {
		if parsed[k] != v {
			t.Errorf("%s = %q, want %q", k, parsed[k], v)
		}
	}
}

func TestEnvParseSkipsCommentsAndBlanks(t *testing.T) {
	e, err := ParseEnv("# sp-system job env\n\nSP_RUN_ID=r1\n\n# end\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != 1 || e[EnvRunID] != "r1" {
		t.Fatalf("parsed = %v", e)
	}
}

func TestEnvParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"NOEQUALS", "=value"} {
		if _, err := ParseEnv(bad); err == nil {
			t.Errorf("ParseEnv(%q) succeeded, want error", bad)
		}
	}
}

func TestEnvRequire(t *testing.T) {
	e := Env{EnvInput: "x", EnvOutput: ""}
	if err := e.Require(EnvInput); err != nil {
		t.Errorf("Require(SP_INPUT) = %v", err)
	}
	err := e.Require(EnvInput, EnvOutput)
	if err == nil || !strings.Contains(err.Error(), EnvOutput) {
		t.Errorf("Require should name the missing variable, got %v", err)
	}
	if err := e.Require(EnvRunID); err == nil {
		t.Error("Require on absent variable passed")
	}
}

func TestEnvWithDoesNotMutate(t *testing.T) {
	e := Env{EnvInput: "a"}
	e2 := e.With(EnvOutput, "b")
	if _, ok := e[EnvOutput]; ok {
		t.Fatal("With mutated the receiver")
	}
	if e2[EnvOutput] != "b" || e2[EnvInput] != "a" {
		t.Fatalf("With result = %v", e2)
	}
}
