package storage

import (
	"errors"
	"sync"
	"testing"
)

// The CAS contract every Swapper backend must satisfy: "" means
// must-be-unbound, a stale expected hash loses, and the winner's bind
// is observable immediately.
func testSwapContract(t *testing.T, st *Store) {
	t.Helper()
	h1, swapped, err := st.CompareAndSwap("plan", "lease/x", "", []byte("worker-a epoch 1"))
	if err != nil || !swapped {
		t.Fatalf("claim of unbound name: swapped=%v err=%v", swapped, err)
	}
	// A second claim expecting "unbound" must lose without error.
	_, swapped, err = st.CompareAndSwap("plan", "lease/x", "", []byte("worker-b epoch 1"))
	if err != nil || swapped {
		t.Fatalf("claim over a bound name with old=\"\": swapped=%v err=%v", swapped, err)
	}
	if got, _ := st.Get("plan", "lease/x"); string(got) != "worker-a epoch 1" {
		t.Fatalf("lost race overwrote the binding: %q", got)
	}
	// Swapping over the correct current hash wins...
	h2, swapped, err := st.CompareAndSwap("plan", "lease/x", h1, []byte("worker-a epoch 1 renewed"))
	if err != nil || !swapped {
		t.Fatalf("swap over current hash: swapped=%v err=%v", swapped, err)
	}
	// ...and the loser holding the stale hash does not.
	_, swapped, err = st.CompareAndSwap("plan", "lease/x", h1, []byte("worker-b steal"))
	if err != nil || swapped {
		t.Fatalf("swap over stale hash: swapped=%v err=%v", swapped, err)
	}
	if cur, _ := st.Hash("plan", "lease/x"); cur != h2 {
		t.Fatalf("binding is %s, want %s", cur, h2)
	}
}

func TestCompareAndSwapMemory(t *testing.T) {
	testSwapContract(t, NewStore())
}

func TestCompareAndSwapFS(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	testSwapContract(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// CAS binds ride the same journal as every other bind: reopen and
	// the winner's final value must still be there.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got, err := st2.Get("plan", "lease/x"); err != nil || string(got) != "worker-a epoch 1 renewed" {
		t.Fatalf("after reopen: %q, %v", got, err)
	}
}

// Many goroutines race to claim the same unbound name; exactly one may
// win — the property the lease layer's correctness rests on.
func TestCompareAndSwapRace(t *testing.T) {
	for _, tc := range []struct {
		name string
		st   *Store
	}{
		{"memory", NewStore()},
		{"fs", func() *Store {
			st, err := OpenWith(t.TempDir(), Options{Sync: SyncNone})
			if err != nil {
				t.Fatal(err)
			}
			return st
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer tc.st.Close()
			const racers = 16
			var wg sync.WaitGroup
			wins := make(chan int, racers)
			for i := 0; i < racers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, swapped, err := tc.st.CompareAndSwap("plan", "lease/contended", "", []byte{byte(i)})
					if err != nil {
						t.Errorf("racer %d: %v", i, err)
					}
					if swapped {
						wins <- i
					}
				}(i)
			}
			wg.Wait()
			close(wins)
			var winners []int
			for i := range wins {
				winners = append(winners, i)
			}
			if len(winners) != 1 {
				t.Fatalf("%d racers won the claim, want exactly 1 (winners %v)", len(winners), winners)
			}
		})
	}
}

// Backends without the Swapper capability (the shared-lock read view)
// must refuse rather than fall back to a non-atomic bind.
func TestCompareAndSwapReadOnly(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	_, _, err = ro.CompareAndSwap("plan", "lease/x", "", []byte("nope"))
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("CAS on read view: %v, want ErrReadOnly", err)
	}
}
