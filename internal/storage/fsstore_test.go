package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func openFS(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFSReopenIdenticalContents(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	if _, err := s.Put("tests", "t1", []byte("script")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("results", "run-0001/out", []byte("output")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := s.Increment("meta", "runseq"); err != nil {
			t.Fatal(err)
		}
	}
	wantStats := s.Stats()
	wantNames, _ := s.Backend().ListNames()
	wantSnap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openFS(t, dir)
	defer re.Close()
	if got := re.Stats(); got != wantStats {
		t.Fatalf("stats after reopen = %+v, want %+v", got, wantStats)
	}
	gotNames, _ := re.Backend().ListNames()
	if !reflect.DeepEqual(gotNames, wantNames) {
		t.Fatalf("names after reopen = %v, want %v", gotNames, wantNames)
	}
	gotSnap, err := re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotSnap) != string(wantSnap) {
		t.Fatal("snapshot after reopen differs from pre-close snapshot")
	}
	// The counter continues from its persisted value, not from zero:
	// run/job IDs stay unique across process restarts.
	n, err := re.Increment("meta", "runseq")
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("counter after reopen = %d, want 8", n)
	}
}

func TestFSBlobLayout(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	defer s.Close()
	hash, err := s.PutBlob([]byte("layout probe"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "blobs", hash[:2], hash)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("blob not at sharded path %s: %v", path, err)
	}
	if string(data) != "layout probe" {
		t.Fatalf("on-disk blob = %q", data)
	}
	// Atomic writes: nothing may linger in the staging area.
	leftovers, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("staging area not empty after Put: %d files", len(leftovers))
	}
}

func TestFSDetectsBlobCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	defer s.Close()
	hash, err := s.PutBlob([]byte("pristine content"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "blobs", hash[:2], hash)
	if err := os.WriteFile(path, []byte("bit-rotted content"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetBlob(hash); err == nil {
		t.Fatal("GetBlob returned corrupted content without error")
	}
}

func TestFSJournalLastBindingWins(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	if _, err := s.Put("cfg", "current", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("cfg", "current", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openFS(t, dir)
	defer re.Close()
	got, err := re.Get("cfg", "current")
	if err != nil || string(got) != "v2" {
		t.Fatalf("replayed binding = %q, %v; want v2", got, err)
	}
}

func TestFSToleratesTornFinalJournalLine(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	if _, err := s.Put("ns", "k", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial JSON line at the tail.
	f, err := os.OpenFile(filepath.Join(dir, "names.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"n":"ns/torn","h":"abc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := openFS(t, dir)
	defer re.Close()
	if got, err := re.Get("ns", "k"); err != nil || string(got) != "kept" {
		t.Fatalf("intact binding lost after torn tail: %q, %v", got, err)
	}
	if re.Exists("ns", "torn") {
		t.Fatal("torn binding replayed")
	}
}

func TestFSTornTailTruncatedBeforeAppend(t *testing.T) {
	// The torn-tail guarantee must survive *writing* after recovery: the
	// tear has to be truncated away at Open, or the first append after a
	// crash concatenates onto the partial line (losing that acknowledged
	// binding on the next replay) and a second append strands malformed
	// bytes mid-file, which every later Open rejects as corruption — a
	// permanent store lockout.
	dir := t.TempDir()
	s := openFS(t, dir)
	if _, err := s.Put("ns", "k", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "names.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"n":"ns/torn","h":"abc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := openFS(t, dir)
	if _, err := re.Put("ns", "after-crash-1", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Put("ns", "after-crash-2", []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	re2 := openFS(t, dir) // must not report journal corruption
	defer re2.Close()
	for key, want := range map[string]string{"k": "kept", "after-crash-1": "first", "after-crash-2": "second"} {
		if got, err := re2.Get("ns", key); err != nil || string(got) != want {
			t.Fatalf("ns/%s after torn-tail recovery + append + reopen = %q, %v; want %q", key, got, err, want)
		}
	}
	if re2.Exists("ns", "torn") {
		t.Fatal("torn binding replayed")
	}
}

func TestFSSecondLiveOpenFailsFast(t *testing.T) {
	if !lockSupported {
		t.Skip("no advisory store locking on this platform")
	}
	dir := t.TempDir()
	s := openFS(t, dir)
	if _, err := Open(dir); err == nil {
		t.Fatal("second live Open of the same store dir succeeded; want fail-fast lock error")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Sequential sharing — the paper's record-then-report workflow —
	// must still work once the first holder closes.
	re := openFS(t, dir)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFSPutBlobRepairsDamagedBlob(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	content := []byte("full pristine content")
	hash, err := s.PutBlob(content)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// External damage: the on-disk blob is truncated.
	path := filepath.Join(dir, "blobs", hash[:2], hash)
	if err := os.WriteFile(path, content[:4], 0o644); err != nil {
		t.Fatal(err)
	}

	re := openFS(t, dir)
	defer re.Close()
	// Re-storing the correct bytes must not be masked by the dedup fast
	// path trusting the damaged file.
	if _, err := re.PutBlob(content); err != nil {
		t.Fatal(err)
	}
	got, err := re.GetBlob(hash)
	if err != nil {
		t.Fatalf("blob still damaged after re-store: %v", err)
	}
	if string(got) != string(content) {
		t.Fatalf("repaired blob = %q, want %q", got, content)
	}
	if st := re.Stats(); st.Blobs != 1 || st.Bytes != int64(len(content)) {
		t.Fatalf("stats after repair = %+v, want 1 blob of %d bytes", st, len(content))
	}
}

func TestFSRejectsMidJournalCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	if _, err := s.Put("ns", "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	log := filepath.Join(dir, "names.log")
	data, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(log, append([]byte("garbage line\n"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted corrupt journal interior")
	}
}

func TestFSRejectsMalformedJournalName(t *testing.T) {
	// A well-formed JSON line whose name lacks the namespace/key shape is
	// corruption: tolerated only as the torn final line, fatal elsewhere.
	dir := t.TempDir()
	s := openFS(t, dir)
	if _, err := s.Put("ns", "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	log := filepath.Join(dir, "names.log")
	data, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	bad := []byte(`{"n":"noslash","h":"abcdef"}` + "\n")
	if err := os.WriteFile(log, append(bad, data...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a journal binding without namespace/key shape")
	}
}

func TestFSClosedStoreErrors(t *testing.T) {
	s := openFS(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("ns", "k", []byte("x")); err == nil {
		t.Fatal("Put on closed store succeeded")
	}
	if _, err := s.Increment("meta", "seq"); err == nil {
		t.Fatal("Increment on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

func TestFSOpenCleansStagingLeftovers(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A crashed writer leaves staged files behind; Open must clear them.
	stale := filepath.Join(dir, "tmp", "blob-crashed")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	re := openFS(t, dir)
	defer re.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("staging leftover survived Open")
	}
}

func TestFSStatsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir)
	for i := 0; i < 10; i++ {
		if _, err := s.Put("ns", fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("content-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openFS(t, dir)
	defer re.Close()
	if got := re.Stats(); got != want {
		t.Fatalf("stats after reopen = %+v, want %+v", got, want)
	}
}
