package storage

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The versioned store API: the HTTP contract under /api/v1/ through
// which one store's contents leave the machine they live on. Both sides
// of the contract are implemented in this package — APIHandler serves
// it, RemoteBackend (remote.go) consumes it — so server and client can
// never drift on what a page or an error looks like.
//
// # Routes (store level — spserve mounts these under /api/v1/ and adds
// the bookkeeping routes on top)
//
//	GET/HEAD /blob/{hash}  blob content by SHA-256 hex hash. Non-hex or
//	                       wrong-length hashes are rejected with 400
//	                       before the backend is touched. Responses set
//	                       Content-Length, a strong ETag, an immutable
//	                       Cache-Control (content-addressed blobs never
//	                       change) and X-Content-SHA256.
//	GET /names?after=&limit=   page of name bindings in sorted-name
//	                       order, strictly after the `after` cursor;
//	                       next_after carries the following page's
//	                       cursor ("" on the last page). Each page
//	                       reports the serving store's Position.
//	GET /blobs?after=&limit=   page of {hash, size} blob listings in
//	                       sorted-hash order, same cursor protocol.
//	GET /position          the store's history Position (snapshot
//	                       generation + applied journal offset) plus
//	                       the binding count — what a replica diffs
//	                       against to decide whether it is behind.
//
// Write routes (PUT /blob/{hash}, POST /name, POST /counter) exist but
// are disabled unless the serving process configured a shared token;
// see writeapi.go for the contract and the auth model.
//
// The listing routes carry a strong position-keyed ETag
// ("v1-g<gen>-o<off>", +gzip variant for the compressed
// representation) on stores with positional history: a matching
// If-None-Match answers 304 before any enumeration, and JSON bodies
// negotiate gzip via Accept-Encoding (Vary: Accept-Encoding). Blob
// responses revalidate against their content-hash ETag the same way.
//
// # Error envelope
//
// Every error response is `{"error":{"code":"...","message":"..."}}`
// with a machine-readable code (bad_request, not_found,
// method_not_allowed, internal). WriteAPIError is exported so every
// route a server builds on top of this handler (spserve's matrix, plan
// and runs routes) answers errors in the same shape.

// APIErrorDoc is the single JSON error envelope of the versioned store
// API.
type APIErrorDoc struct {
	Error APIErrorInfo `json:"error"`
}

// APIErrorInfo is the envelope payload.
type APIErrorInfo struct {
	// Code is a stable machine-readable error class: bad_request,
	// not_found, method_not_allowed or internal.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// BindingDoc is one name binding in a NamesPageDoc.
type BindingDoc struct {
	Name string `json:"name"`
	Hash string `json:"hash"`
}

// NamesPageDoc is one page of the paged bindings listing.
type NamesPageDoc struct {
	Bindings []BindingDoc `json:"bindings"`
	// NextAfter is the cursor for the following page, "" on the last.
	NextAfter string `json:"next_after,omitempty"`
	// Position is the serving store's history position at page time; a
	// client walking pages under a live writer uses it to detect that
	// the store advanced mid-walk.
	Position Position `json:"position"`
	// PositionOK reports whether the serving backend has positional
	// history at all (an in-memory store does not).
	PositionOK bool `json:"position_ok"`
}

// BlobDoc is one blob in a BlobsPageDoc.
type BlobDoc struct {
	Hash string `json:"hash"`
	Size int64  `json:"size"`
}

// BlobsPageDoc is one page of the paged blob listing.
type BlobsPageDoc struct {
	Blobs     []BlobDoc `json:"blobs"`
	NextAfter string    `json:"next_after,omitempty"`
}

// PositionDoc is the /position response.
type PositionDoc struct {
	Position   Position `json:"position"`
	PositionOK bool     `json:"position_ok"`
	// Bindings is the number of bound names — a cheap health figure for
	// replicas and dashboards.
	Bindings int `json:"bindings"`
}

// Paging bounds for /names and /blobs: the default page, and the hard
// cap a client-supplied limit is clamped to. A sync client pages with
// the cap; no single request materializes an unbounded listing.
const (
	DefaultPageLimit = 1000
	MaxPageLimit     = 10000
)

// ValidBlobHash reports whether h has the shape of a blob address:
// exactly 64 lowercase hex digits. Handlers reject anything else with
// 400 before touching the backend.
func ValidBlobHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// WriteAPIError writes the single JSON error envelope with the given
// HTTP status.
func WriteAPIError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(APIErrorDoc{Error: APIErrorInfo{Code: code, Message: message}})
}

// WriteAPIJSON writes a JSON document with the API content type.
func WriteAPIJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// positionCore derives the listing routes' validator core from the
// store's position: the journal is append-only within a generation and
// compaction bumps the generation, so "v1-g<gen>-o<off>" never names
// two different histories. "" (no validator) when the backend has no
// positional history.
func positionCore(pos Position, posOK bool) string {
	if !posOK {
		return ""
	}
	return fmt.Sprintf("v1-g%d-o%d", pos.Generation, pos.Offset)
}

// answerNotModified handles the If-None-Match fast path for a
// position-keyed route: when the client's tag matches either variant of
// the core, the 304 is written before any enumeration happens. The
// position was sampled before the listing would have been, so the
// validator under-claims — it can miss content the body would carry,
// never claim content it would not.
func answerNotModified(w http.ResponseWriter, r *http.Request, core string) bool {
	if core == "" {
		return false
	}
	tag, ok := NoneMatch(r, `"`+core+`"`, `"`+core+`+gzip"`)
	if !ok {
		return false
	}
	w.Header().Set("Vary", "Accept-Encoding")
	w.Header().Set("ETag", tag)
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusNotModified)
	return true
}

// writeNegotiatedJSON writes a JSON document with gzip content-coding
// negotiation and, when core is non-empty, the matching strong ETag
// (the +gzip variant when the body went out compressed — distinct
// representations need distinct tags).
func writeNegotiatedJSON(w http.ResponseWriter, r *http.Request, v interface{}, core string) {
	body, err := json.Marshal(v)
	if err != nil {
		WriteAPIError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	body = append(body, '\n')
	w.Header().Set("Vary", "Accept-Encoding")
	etag := ""
	if core != "" {
		etag = `"` + core + `"`
	}
	if AcceptsGzip(r) && len(body) >= GzipMinSize {
		if gz, gerr := GzipBytes(body); gerr == nil && len(gz) < len(body) {
			body = gz
			w.Header().Set("Content-Encoding", "gzip")
			if core != "" {
				etag = `"` + core + `+gzip"`
			}
		}
	}
	if etag != "" {
		w.Header().Set("ETag", etag)
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// ParsePageQuery extracts the after/limit cursor pair from a paged
// request, clamping limit into (0, MaxPageLimit].
func ParsePageQuery(r *http.Request) (after string, limit int) {
	q := r.URL.Query()
	limit = DefaultPageLimit
	if v := q.Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = n
		}
	}
	if limit > MaxPageLimit {
		limit = MaxPageLimit
	}
	return q.Get("after"), limit
}

// APIHandler serves the store-level routes of the versioned store API
// over any Store — the writer backend, the read-only view, even a
// remote store (a relay). spserve mounts it under /api/v1/.
type APIHandler struct {
	store *Store
	// refresh, when non-nil, runs before each request — spserve passes
	// its throttled catch-up so API responses track a live writer
	// without paying a re-tail per request.
	refresh func()
	// token, when non-empty, enables the write routes (writeapi.go)
	// behind a constant-time bearer-token check. Read routes are never
	// authenticated. Immutable after construction.
	token string
}

// NewAPIHandler returns the store-level API handler. refresh may be nil.
func NewAPIHandler(store *Store, refresh func()) *APIHandler {
	return &APIHandler{store: store, refresh: refresh}
}

// EnableWrites returns a copy of the handler with the write routes
// enabled behind the shared bearer token. An empty token leaves writes
// disabled — there is no such thing as an unauthenticated write.
func (h *APIHandler) EnableWrites(token string) *APIHandler {
	return &APIHandler{store: h.store, refresh: h.refresh, token: token}
}

// ServeHTTP routes the store-level API paths. The mount point has been
// stripped by the caller: paths arrive as /blob/{hash}, /names, /blobs
// and /position.
func (h *APIHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.refresh != nil {
		h.refresh()
	}
	switch {
	case strings.HasPrefix(r.URL.Path, "/blob/"):
		h.serveBlob(w, r)
	case r.URL.Path == "/names":
		h.serveNames(w, r)
	case r.URL.Path == "/blobs":
		h.serveBlobs(w, r)
	case r.URL.Path == "/position":
		h.servePosition(w, r)
	case r.URL.Path == "/name":
		h.serveNameWrite(w, r)
	case r.URL.Path == "/counter":
		h.serveCounter(w, r)
	default:
		WriteAPIError(w, http.StatusNotFound, "not_found", "no such API route: "+r.URL.Path)
	}
}

// requireGet rejects everything but GET (and HEAD, which net/http
// routes through the same handler) with the envelope.
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		WriteAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			r.Method+" is not supported on this route")
		return false
	}
	return true
}

// serveBlob answers GET/HEAD /blob/{hash}: the raw content under
// immutable caching headers. The hash is validated before the backend
// is touched, so a malformed request never costs a disk probe.
func (h *APIHandler) serveBlob(w http.ResponseWriter, r *http.Request) {
	hash := strings.TrimPrefix(r.URL.Path, "/blob/")
	if !ValidBlobHash(hash) {
		WriteAPIError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("%q is not a blob hash (want 64 lowercase hex digits)", hash))
		return
	}
	if r.Method == http.MethodPut {
		h.serveBlobPut(w, r, hash)
		return
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD, PUT")
		WriteAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			r.Method+" is not supported on /blob/{hash}")
		return
	}
	// A matching If-None-Match answers before the backend is touched:
	// content-addressed blobs never change, so holding the hash tag is
	// proof enough.
	if _, ok := NoneMatch(r, `"`+hash+`"`); ok {
		setBlobHeaders(w, hash)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if r.Method == http.MethodHead {
		// HEAD is the replica's existence probe: answer from a stat, not
		// a full read.
		if !h.store.HasBlob(hash) {
			WriteAPIError(w, http.StatusNotFound, "not_found", "no blob "+hash)
			return
		}
		setBlobHeaders(w, hash)
		if size, err := h.blobSize(hash); err == nil {
			w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		}
		w.WriteHeader(http.StatusOK)
		return
	}
	data, err := h.store.GetBlob(hash)
	if err != nil {
		WriteAPIError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	setBlobHeaders(w, hash)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// setBlobHeaders stamps the content-addressed response headers: blobs
// never change, so caches may keep them forever, and the hash rides
// along for end-to-end verification.
func setBlobHeaders(w http.ResponseWriter, hash string) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	w.Header().Set("ETag", `"`+hash+`"`)
	w.Header().Set("X-Content-SHA256", hash)
}

// blobSize stats the blob without reading it, for HEAD responses over
// filesystem-backed stores. Non-filesystem backends read the blob.
func (h *APIHandler) blobSize(hash string) (int64, error) {
	type dirred interface{ Dir() string }
	if d, ok := h.store.Backend().(dirred); ok {
		fi, err := os.Stat(filepath.Join(d.Dir(), "blobs", hash[:2], hash))
		if err != nil {
			return 0, err
		}
		return fi.Size(), nil
	}
	data, err := h.store.GetBlob(hash)
	if err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// pageStrings returns the slice of sorted strings strictly after the
// cursor, capped at limit, plus the next-page cursor.
func pageStrings(sorted []string, after string, limit int) (page []string, next string) {
	start := 0
	if after != "" {
		// sorted is ascending; find the first element > after.
		lo, hi := 0, len(sorted)
		for lo < hi {
			mid := (lo + hi) / 2
			if sorted[mid] <= after {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		start = lo
	}
	end := len(sorted)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	page = sorted[start:end]
	if end < len(sorted) && len(page) > 0 {
		next = page[len(page)-1]
	}
	return page, next
}

// serveNames answers the paged bindings listing. The name order is the
// backend's sorted ListNames order — deterministic, so a client can
// resume a walk with the cursor after any interruption.
func (h *APIHandler) serveNames(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	after, limit := ParsePageQuery(r)
	// Position before enumeration: the page can only under-claim, never
	// claim bindings it does not carry (mirrors Index.Refresh).
	pos, posOK := h.store.Position()
	core := positionCore(pos, posOK)
	if answerNotModified(w, r, core) {
		return
	}
	names, err := h.store.Backend().ListNames()
	if err != nil {
		WriteAPIError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	page, next := pageStrings(names, after, limit)
	doc := NamesPageDoc{
		Bindings:   make([]BindingDoc, 0, len(page)),
		NextAfter:  next,
		Position:   pos,
		PositionOK: posOK,
	}
	for _, name := range page {
		hash, ok := h.store.Backend().ResolveName(name)
		if !ok {
			continue // unbound in the instant between list and resolve: impossible today (names are never deleted), skipped defensively
		}
		doc.Bindings = append(doc.Bindings, BindingDoc{Name: name, Hash: hash})
	}
	writeNegotiatedJSON(w, r, doc, core)
}

// serveBlobs answers the paged blob listing with per-blob sizes — what
// a sync client diffs its local blob set against.
func (h *APIHandler) serveBlobs(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	after, limit := ParsePageQuery(r)
	// The position validator covers the blob listing too: every blob
	// that matters arrives with a binding append (Sync binds what it
	// copies), so an unchanged position means an unchanged listing. The
	// one exception — an orphan PutBlob with no binding yet — is content
	// nothing references; the next position advance re-serves it.
	pos, posOK := h.store.Position()
	core := positionCore(pos, posOK)
	if answerNotModified(w, r, core) {
		return
	}
	hashes, err := h.store.Backend().ListBlobs()
	if err != nil {
		WriteAPIError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	page, next := pageStrings(hashes, after, limit)
	doc := BlobsPageDoc{Blobs: make([]BlobDoc, 0, len(page)), NextAfter: next}
	for _, hash := range page {
		size, err := h.blobSize(hash)
		if err != nil {
			continue // vanished between list and stat: blobs are never deleted, defensive only
		}
		doc.Blobs = append(doc.Blobs, BlobDoc{Hash: hash, Size: size})
	}
	writeNegotiatedJSON(w, r, doc, core)
}

// servePosition answers the store's history position — the one-line
// probe a follower compares against its last synced position to compute
// replication lag.
func (h *APIHandler) servePosition(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	pos, posOK := h.store.Position()
	core := positionCore(pos, posOK)
	if answerNotModified(w, r, core) {
		return
	}
	names, err := h.store.Backend().ListNames()
	if err != nil {
		WriteAPIError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	writeNegotiatedJSON(w, r, PositionDoc{Position: pos, PositionOK: posOK, Bindings: len(names)}, core)
}
