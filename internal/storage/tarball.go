package storage

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"time"
)

// The paper: "the resulting binaries are stored as tar-balls on the
// common storage within the sp-system". Tarballs here are real tar.gz
// archives built with the standard library, so artifacts written by this
// framework are inspectable with ordinary tools.

// tarEpoch is the fixed modification time stamped on all tarball members.
// A fixed stamp keeps archives byte-identical across runs, which the
// content-addressed store turns into deduplication.
var tarEpoch = time.Date(2013, time.January, 1, 0, 0, 0, 0, time.UTC)

// PackTarball builds a deterministic tar.gz archive from the given
// file-name → content map. Entries are written in sorted-name order with
// fixed metadata so that equal inputs produce byte-identical archives.
func PackTarball(files map[string][]byte) ([]byte, error) {
	names := make([]string, 0, len(files))
	for name := range files {
		if name == "" {
			return nil, fmt.Errorf("storage: tarball entry with empty name")
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var buf bytes.Buffer
	gz, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err != nil {
		return nil, err
	}
	tw := tar.NewWriter(gz)
	for _, name := range names {
		hdr := &tar.Header{
			Name:    name,
			Mode:    0o644,
			Size:    int64(len(files[name])),
			ModTime: tarEpoch,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return nil, fmt.Errorf("storage: tarball header %q: %w", name, err)
		}
		if _, err := tw.Write(files[name]); err != nil {
			return nil, fmt.Errorf("storage: tarball body %q: %w", name, err)
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnpackTarball reads a tar.gz archive back into a file map.
func UnpackTarball(data []byte) (map[string][]byte, error) {
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("storage: not a gzip archive: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	files := make(map[string][]byte)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: corrupt tarball: %w", err)
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			return nil, fmt.Errorf("storage: reading %q: %w", hdr.Name, err)
		}
		files[hdr.Name] = body
	}
	return files, nil
}
