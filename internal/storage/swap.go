package storage

import "fmt"

// Swapper is implemented by backends that can replace a name binding
// atomically, conditioned on its current value. It is the coordination
// primitive the distributed campaign queue builds leases on: plain
// BindName is last-writer-wins, so two workers racing to claim the same
// cell would both believe they won; CompareAndSwapName decides the race
// inside the backend's own critical section, where exactly one of them
// observes the expected prior hash.
//
// Backends that cannot decide the race atomically (the shared-lock read
// view) must not implement Swapper — a lost update here is a duplicated
// cell execution, not just a stale read.
type Swapper interface {
	// CompareAndSwapName binds name to newHash if and only if it
	// currently resolves to oldHash. An empty oldHash means "only if
	// the name is unbound". It returns whether the swap was applied;
	// false with a nil error is the ordinary lost-race outcome.
	CompareAndSwapName(name, oldHash, newHash string) (bool, error)
}

// CompareAndSwap stores data as a blob and binds namespace/key to it if
// and only if the name currently resolves to oldHash ("" = currently
// unbound). It returns the new blob's hash and whether the bind was
// applied. The blob is stored unconditionally — content-addressed blobs
// are free to duplicate and never dangle — so a lost race leaves an
// unreferenced blob, never a binding to missing content.
func (s *Store) CompareAndSwap(ns, key, oldHash string, data []byte) (hash string, swapped bool, err error) {
	nk, err := nameKey(ns, key)
	if err != nil {
		return "", false, err
	}
	sw, ok := s.backend.(Swapper)
	if !ok {
		return "", false, fmt.Errorf("storage: backend %T cannot compare-and-swap %s: %w", s.backend, nk, ErrReadOnly)
	}
	hash, err = s.PutBlob(data)
	if err != nil {
		return "", false, err
	}
	swapped, err = sw.CompareAndSwapName(nk, oldHash, hash)
	if err != nil {
		return "", false, err
	}
	return hash, swapped, nil
}

// CompareAndSwapName implements Swapper. The check and the bind share
// one critical section, so concurrent swaps over the same name serialize
// and exactly one observer of a given prior value wins.
func (m *MemoryBackend) CompareAndSwapName(name, oldHash, newHash string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.names[name] != oldHash {
		return false, nil
	}
	m.names[name] = newHash
	return true, nil
}
