package storage

import (
	"fmt"
	"testing"
)

// benchStores returns a fresh store per backend so every micro-benchmark
// reports a memory-vs-disk pair.
func benchStores(b *testing.B) map[string]*Store {
	b.Helper()
	disk, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { disk.Close() })
	return map[string]*Store{"memory": NewStore(), "disk": disk}
}

func BenchmarkPutBlobDedup(b *testing.B) {
	for name, s := range benchStores(b) {
		b.Run(name, func(b *testing.B) {
			data := make([]byte, 4096)
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.PutBlob(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPutGetNamed(b *testing.B) {
	for name, s := range benchStores(b) {
		b.Run(name, func(b *testing.B) {
			payload := []byte("validation output payload")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := fmt.Sprintf("run-%06d/test", i)
				if _, err := s.Put("results", key, payload); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Get("results", key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIncrement(b *testing.B) {
	for name, s := range benchStores(b) {
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Increment("meta", "seq"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTarballPack(b *testing.B) {
	files := make(map[string][]byte)
	for i := 0; i < 20; i++ {
		files[fmt.Sprintf("obj/unit%02d.o", i)] = make([]byte, 2048)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PackTarball(files); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	s := NewStore()
	for i := 0; i < 200; i++ {
		_, _ = s.Put("ns", fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("content %d", i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := s.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Restore(snap); err != nil {
			b.Fatal(err)
		}
	}
}
