// Package idorder flags lexicographic ordering of run/job identifiers.
//
// Contract (PR 3): framework IDs carry decimal counters ("run-0007",
// "job-000042") and plain string ordering silently breaks at counter
// rollover — "run-10000" sorts *before* "run-9999". Every place the
// framework orders run or job IDs must go through runner.CompareIDs,
// the numeric-aware strict total order. This analyzer catches the
// regression class mechanically: string `<`-family comparisons,
// sort.Strings/slices.Sort calls, and strings.Compare calls whose
// operands are named like identifiers ("id", "ids", "runID",
// "jobIDs", ...) are reported unless suppressed with //spvet:allow
// idorder.
package idorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the idorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "idorder",
	Doc:  "flags lexicographic ordering of run/job IDs; use runner.CompareIDs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, n)
			case *ast.CallExpr:
				checkCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCompare reports <, >, <=, >= between string operands where
// either side is named like an identifier value.
func checkCompare(pass *analysis.Pass, e *ast.BinaryExpr) {
	switch e.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return
	}
	if !isString(pass, e.X) || !isString(pass, e.Y) {
		return
	}
	if idish(e.X) || idish(e.Y) {
		pass.Reportf(e.OpPos, "lexicographic %s comparison of run/job IDs breaks at counter rollover (run-10000 < run-9999); use runner.CompareIDs", e.Op)
	}
}

// checkCall reports sort.Strings/slices.Sort over ID slices and
// strings.Compare over ID values.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.Info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return
	}
	pkg, name := obj.Pkg().Path(), obj.Name()
	switch {
	case pkg == "sort" && name == "Strings",
		pkg == "slices" && (name == "Sort" || name == "IsSorted"):
		if len(call.Args) >= 1 && idish(call.Args[0]) {
			pass.Reportf(call.Pos(), "%s.%s sorts run/job IDs lexicographically, which breaks at counter rollover; sort with runner.CompareIDs", pkg, name)
		}
	case pkg == "strings" && name == "Compare":
		if len(call.Args) == 2 && (idish(call.Args[0]) || idish(call.Args[1])) {
			pass.Reportf(call.Pos(), "strings.Compare orders run/job IDs lexicographically, which breaks at counter rollover; use runner.CompareIDs")
		}
	}
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// idish reports whether the expression is named like an identifier
// value: the terminal name is "id"/"ids" (any case), ends in a
// camel-case "ID"/"Id" word (runID, JobIDs), or in a snake-case
// "_id"/"_ids" suffix. Index and slice expressions look through to
// their operand, so ids[i] and runIDs[j:] qualify.
func idish(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return idishName(e.Name)
	case *ast.SelectorExpr:
		return idishName(e.Sel.Name)
	case *ast.IndexExpr:
		return idish(e.X)
	case *ast.SliceExpr:
		return idish(e.X)
	case *ast.ParenExpr:
		return idish(e.X)
	}
	return false
}

func idishName(name string) bool {
	switch strings.ToLower(name) {
	case "id", "ids":
		return true
	}
	for _, suf := range []string{"ID", "IDs", "Id", "Ids", "_id", "_ids"} {
		if strings.HasSuffix(name, suf) {
			return true
		}
	}
	return false
}
