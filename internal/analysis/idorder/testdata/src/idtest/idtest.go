// Package idtest seeds idorder violations alongside the sanctioned
// idiom; the expectations live in the // want comments.
package idtest

import (
	"sort"
	"strings"

	"repro/internal/runner"
)

type rec struct {
	ID   string
	Name string
}

// lessByID is the seeded regression: run-10000 would sort before
// run-9999 here.
func lessByID(a, b rec) bool {
	return a.ID < b.ID // want "runner.CompareIDs"
}

// sortIDs covers the call-based orderings.
func sortIDs(ids []string, aID, bID string) int {
	sort.Strings(ids)                                               // want "counter rollover"
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] }) // want "counter rollover"
	return strings.Compare(aID, bID)                                // want "runner.CompareIDs"
}

// sortIDsRight is the sanctioned idiom: numeric-aware ordering through
// runner.CompareIDs draws no diagnostic.
func sortIDsRight(ids []string) {
	sort.Slice(ids, func(i, j int) bool { return runner.CompareIDs(ids[i], ids[j]) < 0 })
}

// sortNames orders values that are not identifiers; lexicographic is
// fine there.
func sortNames(names []string, a, b rec) bool {
	sort.Strings(names)
	return a.Name < b.Name
}

// suppressed documents a reviewed exception.
func suppressed(ids []string) {
	//spvet:allow idorder — fixture: IDs here are externally-supplied opaque keys
	sort.Strings(ids)
}
