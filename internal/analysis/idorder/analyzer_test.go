package idorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/idorder"
)

func TestIDOrder(t *testing.T) {
	analysistest.Run(t, idorder.Analyzer, "idtest")
}
