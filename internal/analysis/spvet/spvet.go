// Package spvet assembles the repro invariant-lint suite.
//
// Each analyzer encodes one contract the ordinary compiler cannot see:
//
//   - idorder: run/job IDs order via runner.CompareIDs, never `<` (PR 3)
//   - wallclock: wall time and randomness only behind the cron /
//     simclock / simrand seams (PRs 1–4)
//   - lockguard: fields annotated `guarded by <mu>` are accessed under
//     the mutex or a documented caller-holds contract
//   - storewrite: raw os writes happen only in internal/storage, the
//     staged tmp+rename+fsync path (PR 2)
//   - syncclose: Close/Sync errors on writable files are never
//     discarded — durability is fail-stop (PR 2)
//
// The suite runs standalone (`spvet ./...`) and as a go vet vettool
// (`go vet -vettool=$(which spvet) ./...`).
package spvet

import (
	"repro/internal/analysis"
	"repro/internal/analysis/idorder"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/storewrite"
	"repro/internal/analysis/syncclose"
	"repro/internal/analysis/wallclock"
)

// Suite returns the full analyzer set in report order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		idorder.Analyzer,
		wallclock.Analyzer,
		lockguard.Analyzer,
		storewrite.Analyzer,
		syncclose.Analyzer,
	}
}
