package storewrite_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/storewrite"
)

func TestStorewrite(t *testing.T) {
	analysistest.Run(t, storewrite.Analyzer, "writetest")
}

// TestStorageExempt: a package whose import path ends in
// internal/storage is the staged write path itself; raw os writes draw
// nothing there.
func TestStorageExempt(t *testing.T) {
	analysistest.Run(t, storewrite.Analyzer, "store/internal/storage")
}

// TestDriverSeam: store-opening calls inside valtest.Driver methods are
// confined to the provisioning seam; non-driver callers and
// NewStoreWith-wrapping drivers stay clean.
func TestDriverSeam(t *testing.T) {
	analysistest.Run(t, storewrite.Analyzer, "drivertest")
}
