// Package storewrite confines raw filesystem writes to the storage
// layer.
//
// Contract (PR 2): everything the framework persists into a store
// directory goes through internal/storage's staged write protocol —
// content staged under tmp/, fsynced, renamed into place, and never
// referenced by a journal line before it is durable. A direct
// os.WriteFile / os.Create / os.OpenFile / os.Rename from any other
// package is either a store write bypassing that protocol (a
// corruption-on-crash bug) or an unrelated output path that must be
// explicitly marked as such. The analyzer reports every call to those
// functions outside internal/storage; legitimate non-store writers
// (report site output, snapshot export) carry //spvet:allow storewrite
// with the reason the target is not a store directory.
//
// Contract (PR 8, the driver seam): a valtest.Driver touches storage
// only through the seam — the store handed in by the ProvisionRequest
// and handed back in the Context. A driver method that opens its own
// store handle (storage.Open, OpenView, OpenRemote, NewStore, ...)
// silently splits the archive: artifacts land in a store the runner
// never records against. The analyzer reports every store-opening call
// inside a method of a type implementing valtest.Driver.
// storage.NewStoreWith is deliberately permitted — wrapping the
// *provided* backend is exactly how fault-injection drivers decorate
// the seam without leaving it.
package storewrite

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the storewrite pass.
var Analyzer = &analysis.Analyzer{
	Name: "storewrite",
	Doc:  "forbids os-level file writes outside internal/storage, keeping tmp+rename+fsync the only store write path",
	Run:  run,
}

// writeFuncs are the os functions that create, replace or move files.
var writeFuncs = map[string]bool{
	"WriteFile": true, "Create": true, "CreateTemp": true,
	"OpenFile": true, "Rename": true,
}

// storeOpenFuncs are the internal/storage functions that mint a new
// store (or backend) handle. Forbidden inside driver methods; NewStoreWith
// is absent on purpose (see the package comment).
var storeOpenFuncs = map[string]bool{
	"NewStore": true, "Open": true, "OpenWith": true, "OpenOrMemory": true,
	"OpenReadOnly": true, "OpenView": true,
	"OpenRemote": true, "OpenRemoteWith": true, "OpenRemoteBackend": true,
	"OpenFSBackend": true, "OpenFSBackendWith": true, "OpenReadOnlyFSBackend": true,
}

// isPkg reports whether path names the package (as the module-rooted
// real path or a fixture path ending in /rel).
func isPkg(path, rel string) bool {
	return path == rel || strings.HasSuffix(path, "/"+rel)
}

func run(pass *analysis.Pass) error {
	checkDrivers(pass)
	path := pass.Pkg.Path()
	if isPkg(path, "internal/storage") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[sel.Sel]
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
				return true
			}
			if name := obj.Name(); writeFuncs[name] {
				if name == "OpenFile" && readOnlyOpen(call) {
					return true
				}
				pass.Reportf(call.Pos(), "os.%s outside internal/storage bypasses the staged tmp+rename+fsync store protocol; write through the store, or mark a non-store path with //spvet:allow storewrite", name)
			}
			return true
		})
	}
	return nil
}

// checkDrivers reports store-opening calls inside methods of types
// implementing valtest.Driver (see the package comment, PR 8).
func checkDrivers(pass *analysis.Pass) {
	iface := driverInterface(pass.Pkg)
	if iface == nil {
		return // package neither is nor imports valtest: no drivers here
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil || !implementsDriver(recv.Type(), iface) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := pass.Info.Uses[sel.Sel]
				if !ok || obj.Pkg() == nil || !isPkg(obj.Pkg().Path(), "internal/storage") {
					return true
				}
				if name := obj.Name(); storeOpenFuncs[name] {
					pass.Reportf(call.Pos(), "storage.%s inside a valtest.Driver method: drivers touch storage only through the provisioning seam (use the request's store, the context's store, or NewStoreWith over the provided backend); mark a reviewed exception with //spvet:allow storewrite", name)
				}
				return true
			})
		}
	}
}

// driverInterface finds the valtest.Driver interface type as seen by
// this package — from the package itself when it is valtest, else from
// its imports. Nil when the package cannot name a Driver at all.
func driverInterface(pkg *types.Package) *types.Interface {
	lookup := func(p *types.Package) *types.Interface {
		obj := p.Scope().Lookup("Driver")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	if isPkg(pkg.Path(), "internal/valtest") {
		return lookup(pkg)
	}
	for _, imp := range pkg.Imports() {
		if isPkg(imp.Path(), "internal/valtest") {
			return lookup(imp)
		}
	}
	return nil
}

// implementsDriver reports whether the method's receiver type (by value
// or through a pointer) satisfies the Driver interface.
func implementsDriver(recv types.Type, iface *types.Interface) bool {
	base := recv
	if ptr, ok := base.(*types.Pointer); ok {
		base = ptr.Elem()
	}
	return types.Implements(base, iface) || types.Implements(types.NewPointer(base), iface)
}

// readOnlyOpen reports whether an os.OpenFile call's flag argument is
// syntactically read-only (O_RDONLY or literal 0): such a call cannot
// write and is not a protocol bypass.
func readOnlyOpen(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	switch f := call.Args[1].(type) {
	case *ast.BasicLit:
		return f.Value == "0"
	case *ast.SelectorExpr:
		return f.Sel.Name == "O_RDONLY"
	case *ast.Ident:
		return f.Name == "O_RDONLY"
	}
	return false
}
