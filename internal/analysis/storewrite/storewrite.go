// Package storewrite confines raw filesystem writes to the storage
// layer.
//
// Contract (PR 2): everything the framework persists into a store
// directory goes through internal/storage's staged write protocol —
// content staged under tmp/, fsynced, renamed into place, and never
// referenced by a journal line before it is durable. A direct
// os.WriteFile / os.Create / os.OpenFile / os.Rename from any other
// package is either a store write bypassing that protocol (a
// corruption-on-crash bug) or an unrelated output path that must be
// explicitly marked as such. The analyzer reports every call to those
// functions outside internal/storage; legitimate non-store writers
// (report site output, snapshot export) carry //spvet:allow storewrite
// with the reason the target is not a store directory.
package storewrite

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the storewrite pass.
var Analyzer = &analysis.Analyzer{
	Name: "storewrite",
	Doc:  "forbids os-level file writes outside internal/storage, keeping tmp+rename+fsync the only store write path",
	Run:  run,
}

// writeFuncs are the os functions that create, replace or move files.
var writeFuncs = map[string]bool{
	"WriteFile": true, "Create": true, "CreateTemp": true,
	"OpenFile": true, "Rename": true,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if path == "internal/storage" || strings.HasSuffix(path, "/internal/storage") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[sel.Sel]
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
				return true
			}
			if name := obj.Name(); writeFuncs[name] {
				if name == "OpenFile" && readOnlyOpen(call) {
					return true
				}
				pass.Reportf(call.Pos(), "os.%s outside internal/storage bypasses the staged tmp+rename+fsync store protocol; write through the store, or mark a non-store path with //spvet:allow storewrite", name)
			}
			return true
		})
	}
	return nil
}

// readOnlyOpen reports whether an os.OpenFile call's flag argument is
// syntactically read-only (O_RDONLY or literal 0): such a call cannot
// write and is not a protocol bypass.
func readOnlyOpen(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	switch f := call.Args[1].(type) {
	case *ast.BasicLit:
		return f.Value == "0"
	case *ast.SelectorExpr:
		return f.Sel.Name == "O_RDONLY"
	case *ast.Ident:
		return f.Name == "O_RDONLY"
	}
	return false
}
