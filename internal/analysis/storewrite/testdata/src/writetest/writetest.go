// Package writetest seeds storewrite violations next to the allowed
// read-side calls.
package writetest

import "os"

// persist is the seeded violation set: every os-level file write
// outside internal/storage.
func persist(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // want "tmp\+rename\+fsync"
		return err
	}
	f, err := os.Create(path) // want "tmp\+rename\+fsync"
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path, path+".new") // want "tmp\+rename\+fsync"
}

// read covers the allowed surface: reads, and opens that cannot write.
func read(path string) ([]byte, error) {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// export documents a reviewed non-store write.
func export(path string, data []byte) error {
	//spvet:allow storewrite — fixture: user-chosen export path, not a store
	return os.WriteFile(path, data, 0o644)
}
