// Package drivertest seeds driver-seam violations (a valtest.Driver
// opening its own store handles) next to the sanctioned idioms (the
// request's store, the context's store, NewStoreWith over the provided
// backend).
package drivertest

import (
	"repro/internal/storage"
	"repro/internal/valtest"
)

// Leaky is a driver that opens store handles behind the seam: every
// such call must draw a diagnostic, in interface methods and unexported
// helpers alike.
type Leaky struct{}

func (d *Leaky) Name() string { return "leaky" }

func (d *Leaky) Provision(req valtest.ProvisionRequest) (*valtest.Context, error) {
	st, err := storage.Open("/var/lib/elsewhere") // want "drivers touch storage only through the provisioning seam"
	if err != nil {
		return nil, err
	}
	return &valtest.Context{Store: st}, nil
}

func (d *Leaky) RunTest(t valtest.Test, ctx *valtest.Context) valtest.Result {
	scratch := storage.NewStore() // want "drivers touch storage only through the provisioning seam"
	_ = scratch
	return t.Run(ctx)
}

func (d *Leaky) Collect(ctx *valtest.Context, res valtest.Result) valtest.Result {
	return res
}

// sideChannel is not part of the Driver interface, but it runs with the
// driver's authority: still confined to the seam.
func (d *Leaky) sideChannel() (*storage.Store, error) {
	return storage.OpenView("http://replica:8344") // want "drivers touch storage only through the provisioning seam"
}

// Clean is the sanctioned shape: the provision request supplies the
// store, and a decorating driver may wrap the provided backend.
type Clean struct{}

func (d *Clean) Name() string { return "clean" }

func (d *Clean) Provision(req valtest.ProvisionRequest) (*valtest.Context, error) {
	wrapped := storage.NewStoreWith(req.Store.Backend())
	return &valtest.Context{Store: wrapped}, nil
}

func (d *Clean) RunTest(t valtest.Test, ctx *valtest.Context) valtest.Result {
	return t.Run(ctx)
}

func (d *Clean) Collect(ctx *valtest.Context, res valtest.Result) valtest.Result {
	return res
}

// reviewed documents an exception the directive machinery accepts.
func (d *Clean) reviewed() *storage.Store {
	//spvet:allow storewrite — fixture: reviewed exception for the allow path
	return storage.NewStore()
}

// Bystander is not a driver; the seam rule does not apply to it.
type Bystander struct{}

func (b *Bystander) Open() (*storage.Store, error) {
	return storage.Open("/var/lib/store")
}
