// Package storage stands in for the real storage layer: its package
// path ends in internal/storage, where raw writes ARE the staged
// protocol, so the fixture expects no diagnostics.
package storage

import "os"

// Stage writes directly; inside the storage layer that is the job.
func Stage(path string, data []byte) error {
	if err := os.WriteFile(path+".tmp", data, 0o644); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}
