// Package analysis is the minimal in-repo counterpart of
// golang.org/x/tools/go/analysis: the Analyzer/Pass/Diagnostic vocabulary
// spvet's invariant linters are written against.
//
// The repro deliberately has no third-party dependencies, so instead of
// vendoring x/tools this package re-implements the small slice of its API
// the suite needs — an analyzer is a named Run function over one
// type-checked package, reporting position-tagged diagnostics. Drivers
// (cmd/spvet for `go vet -vettool` and standalone runs, the analysistest
// harness for fixtures) live in sibling packages; see internal/analysis/load.
//
// # Suppression directives
//
// Every analyzer in the suite honors line-scoped suppression comments:
//
//	//spvet:allow <name>[,<name>...] — reason
//
// A directive permits the named analyzers on its own source line and on
// the line directly below it (so it can sit above a flagged statement).
// The reason text is free-form but should say why the contract does not
// apply — the point of the directive is to turn silent contract
// violations into reviewed, documented exceptions.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant-checking pass: a named contract
// and the function that enforces it over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //spvet:allow directives. It must be a valid identifier.
	Name string
	// Doc is the analyzer's documentation: the contract it encodes and
	// where that contract came from.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass is one application of one analyzer to one type-checked
// package. The driver constructs it; the analyzer consumes it.
type Pass struct {
	// Analyzer is the analyzer being applied.
	Analyzer *Analyzer
	// Fset maps token positions back to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's object resolution for Files.
	Info *types.Info

	// report receives each diagnostic; installed by the driver.
	report func(Diagnostic)
}

// SetReport installs the diagnostic sink. Drivers call this once per
// pass; analyzers report only through Reportf.
func (p *Pass) SetReport(fn func(Diagnostic)) { p.report = fn }

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The suite's
// analyzers enforce production contracts: test code legitimately reads
// wall clocks (benchmarks), writes into store directories (damage
// injection) and discards Close errors (cleanup), so each analyzer
// skips test files via this predicate.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Diagnostic is one reported contract violation.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that reported it.
	Analyzer string
	// Pos locates the violation.
	Pos token.Pos
	// Message describes the violation and the sanctioned alternative.
	Message string
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "spvet:allow"

// allowKey identifies one (line, analyzer) suppression.
type allowKey struct {
	file string
	line int
	name string
}

// DirectiveFilter scans the files' comments for //spvet:allow
// directives and returns a predicate reporting whether the diagnostic
// at pos from the named analyzer is suppressed. A directive covers its
// own line and the following line.
func DirectiveFilter(fset *token.FileSet, files []*ast.File) func(name string, pos token.Pos) bool {
	allowed := make(map[allowKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				// The analyzer list ends at the first whitespace; the
				// remainder is the human justification.
				names := rest
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					names = rest[:i]
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					allowed[allowKey{pos.Filename, pos.Line, name}] = true
					allowed[allowKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return func(name string, pos token.Pos) bool {
		p := fset.Position(pos)
		return allowed[allowKey{p.Filename, p.Line, name}]
	}
}
