// Package syncclose flags discarded Close and Sync errors on writable
// files.
//
// Contract (PR 2): the store's durability semantics are fail-stop — a
// journal sync or close failure must propagate to an exit code, never
// vanish into a discarded return value, because a binding the caller
// believes durable may not be. The same applies to any writable file
// handle: Close is where buffered write errors and (on some systems)
// deferred I/O errors surface.
//
// The analyzer reports Close/Sync calls whose error result is discarded
// — expression statements, defer/go statements, and assignments to
// blank — when the receiver is writable: an *os.File not provably
// opened read-only in the same function (os.Open, or os.OpenFile with
// O_RDONLY), or any type whose method set includes Write (tar, gzip
// and friends). Read-side closes are exempt; deliberate discards on
// error-cleanup paths carry //spvet:allow syncclose with the reason the
// primary error already propagates.
package syncclose

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the syncclose pass.
var Analyzer = &analysis.Analyzer{
	Name: "syncclose",
	Doc:  "flags discarded Close/Sync errors on writable files (fail-stop durability)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			readOnly := readOnlyLocals(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, _ = n.X.(*ast.CallExpr)
				case *ast.DeferStmt:
					call = n.Call
				case *ast.GoStmt:
					call = n.Call
				case *ast.AssignStmt:
					if len(n.Rhs) == 1 && allBlank(n.Lhs) {
						call, _ = n.Rhs[0].(*ast.CallExpr)
					}
				}
				if call != nil {
					checkDiscard(pass, call, readOnly)
				}
				return true
			})
		}
	}
	return nil
}

// checkDiscard reports the call if it is a Close/Sync on a writable
// receiver with its error result discarded.
func checkDiscard(pass *analysis.Pass, call *ast.CallExpr, readOnly map[types.Object]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	method := sel.Sel.Name
	if method != "Close" && method != "Sync" {
		return
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 || !isErrorType(sig.Results().At(0).Type()) {
		return
	}
	recv := pass.Info.Types[sel.X].Type
	if recv == nil || !writable(recv) {
		return
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if v := pass.Info.Uses[id]; v != nil && readOnly[v] {
			return
		}
	}
	pass.Reportf(call.Pos(), "discarded error from %s on a writable file: durability is fail-stop — a failed %s means acknowledged writes may be lost; check it (or //spvet:allow syncclose where a primary error already propagates)", method, method)
}

// writable reports whether the (possibly pointer) type is *os.File or
// carries a Write method.
func writable(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File" {
			return true
		}
	}
	m, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, nil, "Write")
	_, ok := m.(*types.Func)
	return ok
}

func isErrorType(t types.Type) bool {
	return t.String() == "error"
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// readOnlyLocals finds local *os.File variables assigned from a
// provably read-only open — os.Open, or os.OpenFile with an O_RDONLY
// or literal-zero flag — anywhere in the body. Closing a read-only
// descriptor cannot lose written data, so those closes are exempt.
func readOnlyLocals(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !isReadOnlyOpen(pass, call) {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if obj := pass.Info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func isReadOnlyOpen(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	switch obj.Name() {
	case "Open":
		return true
	case "OpenFile":
		if len(call.Args) < 2 {
			return false
		}
		flags := flagNames(call.Args[1])
		if len(flags) == 0 {
			return false
		}
		for _, f := range flags {
			switch f {
			case "O_RDONLY", "0":
			default:
				return false
			}
		}
		return true
	}
	return false
}

// flagNames flattens a |-joined flag expression into its identifier
// names (or literal values); unknown shapes yield nil, treated as
// not-read-only.
func flagNames(e ast.Expr) []string {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		left := flagNames(e.X)
		right := flagNames(e.Y)
		if left == nil || right == nil {
			return nil
		}
		return append(left, right...)
	case *ast.SelectorExpr:
		return []string{e.Sel.Name}
	case *ast.Ident:
		return []string{e.Name}
	case *ast.BasicLit:
		return []string{e.Value}
	case *ast.ParenExpr:
		return flagNames(e.X)
	}
	return nil
}
