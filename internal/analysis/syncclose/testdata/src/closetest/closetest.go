// Package closetest seeds syncclose violations around writable and
// read-only file handles.
package closetest

import "os"

// journal is a non-os writer whose Close/Sync also return errors.
type journal struct{}

func (journal) Write(p []byte) (int, error) { return len(p), nil }
func (journal) Close() error                { return nil }
func (journal) Sync() error                 { return nil }

// drop seeds the violations: every discard shape on a writable handle.
func drop(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "fail-stop"
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close()     // want "fail-stop"
	_ = f.Close() // want "fail-stop"
	var j journal
	j.Close() // want "fail-stop"
	j.Sync()  // want "fail-stop"
	return nil
}

// checked propagates every Close/Sync error: no diagnostics.
func checked(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //spvet:allow syncclose — fixture: the write error propagates; close is cleanup
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// reads closes a read-only handle: closing cannot lose written data,
// so the discard draws nothing.
func reads(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return err
}
