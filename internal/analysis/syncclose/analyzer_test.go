package syncclose_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/syncclose"
)

func TestSyncclose(t *testing.T) {
	analysistest.Run(t, syncclose.Analyzer, "closetest")
}
