// Package wallclock forbids direct wall-clock and ambient-randomness
// access outside the sanctioned seams.
//
// Contract (PRs 1–4): the reproduction is deterministic — every job
// timestamp comes from simclock, every random draw from simrand, and
// the only real-time surface is the cron package's Driver (the
// wall-clock seam spd and spserve thread a `func() time.Time` from).
// A stray time.Now or math/rand call changes input digests and record
// content between replays, which silently defeats the campaign
// planner's skip decisions and the content-addressed dedup.
//
// The analyzer reports references to time.Now, time.Since, time.Until,
// time.Sleep, time.Tick, time.After, time.AfterFunc, time.NewTimer and
// time.NewTicker, and any import of math/rand or math/rand/v2, in every
// package except the seams (internal/cron, internal/simclock,
// internal/simrand). Justified exceptions carry //spvet:allow
// wallclock with a reason.
package wallclock

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the wallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/math/rand outside the cron, simclock and simrand seams",
	Run:  run,
}

// seamSuffixes are the package-path suffixes allowed to touch the wall
// clock: the real-time layer itself and the two determinism seams.
var seamSuffixes = []string{
	"internal/cron",
	"internal/simclock",
	"internal/simrand",
}

// forbidden is the set of time-package functions that read or schedule
// against the process wall clock.
var forbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	for _, suffix := range seamSuffixes {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return nil
		}
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s: ambient randomness breaks replay determinism; draw from a seeded simrand.Source", p)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[sel.Sel]
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			// Package-level functions only: t.After(u) on a time.Time
			// value is pure arithmetic, time.After(d) reads the clock.
			fn, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if forbidden[obj.Name()] {
				pass.Reportf(sel.Pos(), "direct time.%s reads the wall clock: job records and input digests must be deterministic; use simclock, or thread a clock through the cron seam (cron.Wall)", obj.Name())
			}
			return true
		})
	}
	return nil
}
