package wallclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "clocktest")
}

// TestSeamExempt: a package whose import path ends in internal/cron is
// the sanctioned real-time layer; the same calls draw nothing there.
func TestSeamExempt(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "seam/internal/cron")
}
