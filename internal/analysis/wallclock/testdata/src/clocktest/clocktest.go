// Package clocktest seeds wallclock violations alongside allowed time
// arithmetic.
package clocktest

import (
	"math/rand" // want "replay determinism"
	"time"
)

// stamp reads the process clock directly — the seeded violation.
func stamp() time.Time {
	return time.Now() // want "wall clock"
}

// age covers the other package-level clock reads.
func age(t time.Time) time.Duration {
	time.Sleep(time.Millisecond) // want "wall clock"
	return time.Since(t)         // want "wall clock"
}

// compare is pure time.Time arithmetic: methods on values carry no
// clock access and draw no diagnostic.
func compare(a, b time.Time) bool {
	return a.After(b) || a.Before(b) || a.Equal(b)
}

// threaded is the sanctioned shape: the clock arrives as a function
// threaded from the cron seam at construction.
func threaded(now func() time.Time) time.Time {
	return now()
}

// draw keeps the rand import referenced.
func draw() int {
	return rand.Int()
}

// suppressed documents a reviewed exception.
func suppressed() time.Time {
	//spvet:allow wallclock — fixture: jitter for a retry backoff, never recorded
	return time.Now()
}
