// Package cron stands in for the real-time seam: its package path ends
// in internal/cron, so direct clock access is sanctioned here and the
// fixture expects no diagnostics at all.
package cron

import "time"

// Wall returns the process wall clock.
func Wall() func() time.Time { return time.Now }

// Stamp may read the clock directly inside the seam.
func Stamp() time.Time { return time.Now() }
