// Package load type-checks Go packages for the spvet analyzer suite
// without golang.org/x/tools: source files are parsed with go/parser and
// checked with go/types, and imports — standard library and in-module
// alike — are resolved from compiled export data located by
// `go list -export`. That is the same data `go vet` hands a vettool in
// its .cfg file, so the standalone driver, the unitchecker-protocol
// driver and the analysistest harness all type-check identically.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"

	"repro/internal/analysis"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (or a fixture-local name).
	Path string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info is the type-checker's resolution data for Files.
	Info *types.Info
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// GoList runs `go list -e -export -deps -json` on the patterns in dir
// and returns the entries plus the export-data map (import path →
// compiled export file) covering every listed package and dependency.
func GoList(dir string, patterns ...string) ([]listEntry, map[string]string, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("load: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var entries []listEntry
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		entries = append(entries, e)
	}
	return entries, exports, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ExportImporter returns a go/types importer that reads compiled export
// data: importMap canonicalizes source-level import paths (identity when
// nil), exports locates each canonical path's export file.
func ExportImporter(fset *token.FileSet, importMap, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Check parses and type-checks one package from its source files.
// goVersion ("go1.21", may be empty) bounds the accepted language.
func Check(path string, fset *token.FileSet, filenames []string, importMap, exports map[string]string, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer:  ExportImporter(fset, importMap, exports),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// Targets loads the packages matching the patterns (relative to dir),
// type-checked and ready for analysis. Dependencies contribute export
// data only; they are not re-checked or analyzed.
func Targets(dir string, patterns ...string) ([]*Package, error) {
	entries, exports, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || len(e.GoFiles) == 0 {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", e.ImportPath, e.Error.Err)
		}
		fset := token.NewFileSet()
		var names []string
		for _, f := range e.GoFiles {
			names = append(names, e.Dir+string(os.PathSeparator)+f)
		}
		pkg, err := Check(e.ImportPath, fset, names, nil, exports, "")
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %w", e.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Run applies the analyzers to the package and returns the surviving
// diagnostics — //spvet:allow-suppressed findings are filtered out —
// sorted by position.
func Run(pkg *Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Fset:  pkg.Fset,
		Files: pkg.Files,
		Pkg:   pkg.Types,
		Info:  pkg.Info,
	}
	for _, a := range analyzers {
		p := *pass
		p.Analyzer = a
		collect := func(d analysis.Diagnostic) { diags = append(diags, d) }
		// report is unexported; wire it through the setter.
		p.SetReport(collect)
		if err := a.Run(&p); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	allowed := analysis.DirectiveFilter(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !allowed(d.Analyzer, d.Pos) {
			kept = append(kept, d)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(kept[i].Pos), pkg.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return kept, nil
}
