// Package analysistest runs one analyzer over a fixture tree and checks
// its diagnostics against // want annotations — the in-repo counterpart
// of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives under the calling test's testdata directory:
//
//	testdata/src/<pkgpath>/<files>.go
//
// and is addressed by its <pkgpath> (the directory path below src/),
// which also becomes the package path the analyzer sees — so a fixture
// at testdata/src/example.com/internal/cron/ exercises a package-path
// allowlist exactly as the real package would. Each line that should be
// flagged carries a trailing comment
//
//	// want "regexp"
//
// whose regexp must match the diagnostic's message; lines without the
// comment must produce no diagnostic. Run fails the test on any missed,
// unexpected or mismatched diagnostic.
//
// Fixture imports resolve against the real build: standard library
// packages and this module's own packages (so a fixture may import
// repro/internal/runner to demonstrate the sanctioned idiom). Export
// data comes from `go list -export`, the same source the vettool uses.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// wantRe extracts the expectation regexp from a // want comment.
var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// expectation is one // want annotation.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run applies the analyzer to the fixture package at
// testdata/src/<pkgpath> (relative to the current directory, i.e. the
// test's package directory) and reports every disagreement with the
// fixture's // want annotations as a test error.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: reading fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no fixture files under %s", dir)
	}
	sort.Strings(files)

	exports, err := moduleExports()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fset := token.NewFileSet()
	pkg, err := load.Check(pkgpath, fset, files, nil, exports, "")
	if err != nil {
		t.Fatalf("analysistest: type-checking fixture %s: %v", pkgpath, err)
	}
	diags, err := load.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	wants, err := collectWants(files)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if w := matchWant(wants, pos.Filename, pos.Line, d.Message); w == nil {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// moduleExports runs `go list -export` once over the whole module plus
// std so fixture imports — stdlib or in-module — all resolve. The
// result is cached for the life of the test process.
var cachedExports map[string]string

func moduleExports() (map[string]string, error) {
	if cachedExports != nil {
		return cachedExports, nil
	}
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root := moduleRoot(wd)
	// "std" makes every stdlib package importable from fixtures, not
	// just the ones the module happens to depend on (a wallclock
	// fixture imports math/rand, which nothing in the module does).
	_, exports, err := load.GoList(root, "std", "./...")
	if err != nil {
		return nil, err
	}
	cachedExports = exports
	return exports, nil
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}

// collectWants parses the // want annotations out of the fixture files.
func collectWants(files []string) ([]*expectation, error) {
	var wants []*expectation
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pattern := strings.ReplaceAll(m[1], `\"`, `"`)
			re, err := regexp.Compile(pattern)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern: %w", file, i+1, err)
			}
			wants = append(wants, &expectation{file: file, line: i + 1, re: re})
		}
	}
	return wants, nil
}

// matchWant finds and consumes the first unhit expectation on the
// diagnostic's line whose pattern matches the message.
func matchWant(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if w.hit || w.line != line || w.file != file {
			continue
		}
		if w.re.MatchString(msg) {
			w.hit = true
			return w
		}
	}
	return nil
}
