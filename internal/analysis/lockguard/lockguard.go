// Package lockguard checks mutex annotations on struct fields.
//
// Contract (PR 1 onward): shared state in this repro sits behind a
// mutex in the same struct — the storage backends' name maps, the
// bookkeeping index's derived structures, the build deduplicator, the
// status server's refresh throttle. The convention is mechanical here:
// a field annotated
//
//	n int // guarded by mu
//
// may only be accessed inside a function that (syntactically) locks
// that mutex — a call to <x>.mu.Lock / RLock (or a deferred Unlock)
// anywhere in its body — or that is itself documented as
//
//	// ... The caller holds x.mu.  /  // callers hold mu
//
// Functions that build the struct locally (assigned from a composite
// literal in the same function) are exempt for that variable: during
// construction the value is unshared. The check is intra-procedural
// and flow-insensitive by design — it enforces the documented locking
// discipline, not a full happens-before proof; `go test -race` remains
// the dynamic cross-check.
package lockguard

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockguard pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated 'guarded by <mu>' are only accessed holding the mutex or under a 'callers hold <mu>' annotation",
	Run:  run,
}

// The annotation grammar. Comment text re-wraps freely, so word gaps
// match any whitespace, not just a single space.
var (
	fieldRe = regexp.MustCompile(`guarded\s+by\s+([A-Za-z_][A-Za-z0-9_.]*)`)
	funcRe  = regexp.MustCompile(`[Cc]allers?\s+holds?\s+([A-Za-z_][A-Za-z0-9_.]*)`)
)

// lastSegment reduces an annotation like "b.mu" to the field name "mu".
// A sentence-final period ("The caller holds b.mu.") is punctuation,
// not a selector.
func lastSegment(s string) string {
	s = strings.TrimRight(s, ".")
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}

func run(pass *analysis.Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, guarded)
		}
	}
	return nil
}

// collectGuardedFields maps each annotated field object to the name of
// the mutex guarding it. Both trailing comments and doc comments on the
// field declaration are honored.
func collectGuardedFields(pass *analysis.Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu := annotationIn(field.Comment)
				if mu == "" {
					mu = annotationIn(field.Doc)
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

func annotationIn(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	if m := fieldRe.FindStringSubmatch(cg.Text()); m != nil {
		return lastSegment(m[1])
	}
	return ""
}

// checkFunc verifies every guarded-field access in one function.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guarded map[types.Object]string) {
	held := make(map[string]bool)
	if fn.Doc != nil {
		for _, m := range funcRe.FindAllStringSubmatch(fn.Doc.Text(), -1) {
			held[lastSegment(m[1])] = true
		}
	}
	exempt := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// <x>.mu.Lock() / RLock / (deferred) Unlock / RUnlock mark
			// the mutex as held somewhere in this function.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock", "Unlock", "RUnlock":
					if name := mutexName(sel.X); name != "" {
						held[name] = true
					}
				}
			}
		case *ast.AssignStmt:
			// v := &T{...} (or = T{...}): v is under construction and
			// unshared; accesses through it need no lock.
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !isCompositeLit(rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						exempt[obj] = true
					} else if obj := pass.Info.Uses[id]; obj != nil {
						exempt[obj] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[sel.Sel]
		if obj == nil {
			return true
		}
		mu, isGuarded := guarded[obj]
		if !isGuarded || held[mu] {
			return true
		}
		if base := baseIdent(sel.X); base != nil {
			if bobj := pass.Info.Uses[base]; bobj != nil && exempt[bobj] {
				return true
			}
		}
		pass.Reportf(sel.Sel.Pos(), "%s is guarded by %s, which %s neither locks nor documents holding (annotate '// ... callers hold %s' or take the lock)", obj.Name(), mu, funcName(fn), mu)
		return true
	})
}

// mutexName names the mutex in a lock call receiver: mu.Lock() → "mu",
// b.mu.Lock() → "mu", s.store.mu.Lock() → "mu".
func mutexName(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.ParenExpr:
		return mutexName(x.X)
	}
	return ""
}

func isCompositeLit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := e.X.(*ast.CompositeLit)
		return ok
	}
	return false
}

// baseIdent returns the root identifier of a selector chain, or nil.
func baseIdent(x ast.Expr) *ast.Ident {
	for {
		switch e := x.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			x = e.X
		case *ast.ParenExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		default:
			return nil
		}
	}
}

func funcName(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		if name := recvTypeName(fn.Recv.List[0].Type); name != "" {
			return name + "." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

func recvTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	}
	return ""
}
