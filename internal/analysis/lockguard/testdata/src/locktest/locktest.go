// Package locktest seeds lockguard violations around one annotated
// struct.
package locktest

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // guarded by mu; doc-comment form below also works
	// hits is annotated through a doc comment rather than a trailing one.
	//
	// guarded by mu
	hits int
}

// bump takes the lock: no diagnostic.
func (c *counter) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// peek is the seeded violation: it reads c.n with no lock and no
// caller-holds annotation.
func (c *counter) peek() int {
	return c.n // want "guarded by mu"
}

// addLocked documents its contract; callers hold c.mu.
func (c *counter) addLocked(d int) {
	c.n += d
	c.m += d
	c.hits++
}

// newCounter builds the value locally: during construction it is
// unshared, so initializing fields needs no lock.
func newCounter() *counter {
	c := &counter{n: 1}
	c.m = 2
	return c
}

// reset covers the RWMutex-free write path violation.
func reset(c *counter) {
	c.hits = 0 // want "guarded by mu"
}

// suppressed documents a reviewed exception.
func suppressed(c *counter) int {
	//spvet:allow lockguard — fixture: snapshot read tolerated as approximate
	return c.n
}
