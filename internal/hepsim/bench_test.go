package hepsim

import "testing"

func BenchmarkGenerate(b *testing.B) {
	g, err := NewGenerator(DefaultGenConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Generate(int64(i))
	}
}

func BenchmarkSimulate(b *testing.B) {
	g, _ := NewGenerator(DefaultGenConfig(1))
	det := DefaultDetector(2)
	evs := g.GenerateN(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Simulate(evs[i%len(evs)], Effects{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct(b *testing.B) {
	g, _ := NewGenerator(DefaultGenConfig(1))
	det := DefaultDetector(2)
	evs, _ := det.SimulateAll(g.GenerateN(256), Effects{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(evs[i%len(evs)], Effects{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullPipeline1kEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _ := NewGenerator(DefaultGenConfig(uint64(i)))
		det := DefaultDetector(uint64(i) + 1)
		sim, err := det.SimulateAll(g.GenerateN(1000), Effects{})
		if err != nil {
			b.Fatal(err)
		}
		recs, err := ReconstructAll(sim, Effects{})
		if err != nil {
			b.Fatal(err)
		}
		sums := make([]Summary, len(recs))
		for j, r := range recs {
			sums[j] = Summarize(r)
		}
		_ = Analyze(sums, 30)
	}
}
