package hepsim

import (
	"fmt"
	"math"
	"sort"
)

// Reconstruct turns a (simulated) event into its DST-level record: the
// invariant mass of the two leading-pt particles, the leading pt and the
// multiplicity. The runtime effects enter here exactly as the paper's
// failure taxonomy requires:
//
//   - a crash effect aborts the stage with an error,
//   - the pointer-truncation defect corrupts a deterministic subset of
//     events into nonsense kinematics (visible as overflow entries),
//   - the uninitialized-memory bias shifts a deterministic subset of
//     masses by a fraction of a percent (visible only to data
//     validation), and
//   - the floating-point shift perturbs every mass at the relative scale
//     of the configuration's FP profile (tolerated by validation).
func Reconstruct(ev Event, eff Effects) (RecoEvent, error) {
	if eff.Crash {
		return RecoEvent{}, fmt.Errorf("hepsim: reconstruction crashed on event %d (miscompiled aliasing violation)", ev.ID)
	}
	rec := RecoEvent{ID: ev.ID, Multiplicity: int32(len(ev.Particles))}
	if len(ev.Particles) == 0 {
		return rec, nil
	}

	sorted := make([]Particle, len(ev.Particles))
	copy(sorted, ev.Particles)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].P.Pt() > sorted[j].P.Pt() })

	rec.LeadPt = sorted[0].P.Pt()
	if len(sorted) >= 2 {
		rec.Mass = sorted[0].P.Add(sorted[1].P).M()
	}

	if eff.Corrupted(ev.ID) {
		// Pointer truncated to 32 bits: kinematics read from a wrong
		// address. The observed value is garbage but deterministic.
		rec.Mass = 1e6 + float64(ev.ID%997)
		rec.LeadPt = math.MaxFloat32
	}
	if eff.Biased(ev.ID) {
		rec.Mass *= 1 + eff.MassBias
	}
	if eff.FPShift != 0 {
		rec.Mass *= 1 + eff.FPShift
		rec.LeadPt *= 1 + eff.FPShift
	}
	return rec, nil
}

// ReconstructAll reconstructs every event, failing fast on the first
// error.
func ReconstructAll(evs []Event, eff Effects) ([]RecoEvent, error) {
	out := make([]RecoEvent, 0, len(evs))
	for _, ev := range evs {
		rec, err := Reconstruct(ev, eff)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Summarize produces the HAT-level record from a DST record.
func Summarize(rec RecoEvent) Summary {
	return Summary{ID: rec.ID, Mass: rec.Mass, Pt: rec.LeadPt, N: rec.Multiplicity}
}
