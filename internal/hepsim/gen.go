package hepsim

import (
	"fmt"
	"math"

	"repro/internal/simrand"
)

// GenConfig parameterizes the toy event generator: deep-inelastic-style
// events containing, with probability SignalFraction, a resonance of the
// given mass and width decaying to two particles, on top of soft
// background hadrons.
type GenConfig struct {
	// Seed isolates this dataset's random streams.
	Seed uint64
	// ResonanceMass and ResonanceWidth define the signal peak in GeV.
	ResonanceMass, ResonanceWidth float64
	// SignalFraction is the probability an event contains the resonance.
	SignalFraction float64
	// MeanMultiplicity is the Poisson mean of background hadrons.
	MeanMultiplicity float64
	// MeanPt is the exponential mean transverse momentum of background
	// hadrons in GeV.
	MeanPt float64
}

// DefaultGenConfig returns the configuration used by the reproduction's
// reference datasets: a 30 GeV resonance of 2 GeV width over soft
// background, HERA-scale kinematics.
func DefaultGenConfig(seed uint64) GenConfig {
	return GenConfig{
		Seed:             seed,
		ResonanceMass:    30,
		ResonanceWidth:   2,
		SignalFraction:   0.6,
		MeanMultiplicity: 8,
		MeanPt:           1.2,
	}
}

// Validate reports the first implausible parameter.
func (c GenConfig) Validate() error {
	switch {
	case c.ResonanceMass <= 0:
		return fmt.Errorf("hepsim: resonance mass %g must be positive", c.ResonanceMass)
	case c.ResonanceWidth <= 0:
		return fmt.Errorf("hepsim: resonance width %g must be positive", c.ResonanceWidth)
	case c.SignalFraction < 0 || c.SignalFraction > 1:
		return fmt.Errorf("hepsim: signal fraction %g outside [0,1]", c.SignalFraction)
	case c.MeanMultiplicity < 0:
		return fmt.Errorf("hepsim: mean multiplicity %g negative", c.MeanMultiplicity)
	case c.MeanPt <= 0:
		return fmt.Errorf("hepsim: mean pt %g must be positive", c.MeanPt)
	}
	return nil
}

// Generator produces events deterministically: event i of a dataset is a
// pure function of (config, i), independent of how many events were
// generated before it, so datasets can be regenerated and extended
// without disturbing existing events.
type Generator struct {
	cfg  GenConfig
	root *simrand.Source
}

// NewGenerator returns a generator for the configuration.
func NewGenerator(cfg GenConfig) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg, root: simrand.New(cfg.Seed)}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() GenConfig { return g.cfg }

// Generate returns event number id.
func (g *Generator) Generate(id int64) Event {
	rng := g.root.Derive("event", fmt.Sprintf("%d", id))
	ev := Event{ID: id}

	if rng.Bool(g.cfg.SignalFraction) {
		ev.Signal = true
		m := rng.BreitWigner(g.cfg.ResonanceMass, g.cfg.ResonanceWidth)
		if m < 2*g.cfg.ResonanceWidth {
			m = 2 * g.cfg.ResonanceWidth
		}
		// Two-body decay in the transverse plane, resonance at rest
		// longitudinally boosted.
		phi := rng.Range(-math.Pi, math.Pi)
		pzBoost := rng.Norm(0, 5)
		p := m / 2
		d1 := Vec4{E: p, Px: p * math.Cos(phi), Py: p * math.Sin(phi), Pz: 0}
		d2 := Vec4{E: p, Px: -d1.Px, Py: -d1.Py, Pz: 0}
		// Massless daughters sharing the longitudinal boost: the pair's
		// invariant mass is then exactly m.
		d1.Pz, d2.Pz = pzBoost/2, pzBoost/2
		d1.E = math.Sqrt(d1.Px*d1.Px + d1.Py*d1.Py + d1.Pz*d1.Pz)
		d2.E = math.Sqrt(d2.Px*d2.Px + d2.Py*d2.Py + d2.Pz*d2.Pz)
		ev.Particles = append(ev.Particles,
			Particle{PDG: 211, P: d1},
			Particle{PDG: -211, P: d2},
		)
	}

	n := rng.Poisson(g.cfg.MeanMultiplicity)
	for i := 0; i < n; i++ {
		pt := rng.Exp(g.cfg.MeanPt)
		phi := rng.Range(-math.Pi, math.Pi)
		pz := rng.Norm(0, 3)
		pdg := int32(211)
		if rng.Bool(0.3) {
			pdg = 22
		}
		ev.Particles = append(ev.Particles, Particle{PDG: pdg, P: FromPtPhiPz(pt, phi, pz)})
	}
	return ev
}

// GenerateN returns events [0, n).
func (g *Generator) GenerateN(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = g.Generate(int64(i))
	}
	return out
}
