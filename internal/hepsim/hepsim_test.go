package hepsim

import (
	"math"
	"testing"

	"repro/internal/platform"
)

func TestVec4Basics(t *testing.T) {
	v := Vec4{E: 5, Px: 3, Py: 0, Pz: 4}
	if got := v.P(); got != 5 {
		t.Errorf("P = %g", got)
	}
	if got := v.Pt(); got != 3 {
		t.Errorf("Pt = %g", got)
	}
	if got := v.M(); got != 0 {
		t.Errorf("M of light-like vector = %g", got)
	}
	w := Vec4{E: 10, Px: 0, Py: 0, Pz: 0}
	if got := w.M(); got != 10 {
		t.Errorf("M at rest = %g", got)
	}
}

func TestVec4AddScale(t *testing.T) {
	a := Vec4{1, 2, 3, 4}
	b := Vec4{4, 3, 2, 1}
	sum := a.Add(b)
	if sum != (Vec4{5, 5, 5, 5}) {
		t.Errorf("Add = %+v", sum)
	}
	if a.Scale(2) != (Vec4{2, 4, 6, 8}) {
		t.Errorf("Scale = %+v", a.Scale(2))
	}
}

func TestVec4NegativeMassSquaredClamped(t *testing.T) {
	v := Vec4{E: 1, Px: 2, Py: 0, Pz: 0} // space-like after smearing
	if got := v.M(); got != 0 {
		t.Errorf("M = %g, want 0", got)
	}
}

func TestFromPtPhiPz(t *testing.T) {
	v := FromPtPhiPz(3, 0, 4)
	if math.Abs(v.Px-3) > 1e-12 || math.Abs(v.Py) > 1e-12 || v.Pz != 4 {
		t.Errorf("FromPtPhiPz = %+v", v)
	}
	if math.Abs(v.E-5) > 1e-12 {
		t.Errorf("E = %g, want 5", v.E)
	}
	if math.Abs(v.M()) > 1e-6 {
		t.Errorf("massless vector has M = %g", v.M())
	}
}

func TestGenConfigValidate(t *testing.T) {
	good := DefaultGenConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []GenConfig{
		{ResonanceMass: 0, ResonanceWidth: 1, MeanPt: 1},
		{ResonanceMass: 30, ResonanceWidth: 0, MeanPt: 1},
		{ResonanceMass: 30, ResonanceWidth: 2, SignalFraction: 1.5, MeanPt: 1},
		{ResonanceMass: 30, ResonanceWidth: 2, MeanMultiplicity: -1, MeanPt: 1},
		{ResonanceMass: 30, ResonanceWidth: 2, MeanPt: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGeneratorDeterministicPerEvent(t *testing.T) {
	g1, err := NewGenerator(DefaultGenConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(DefaultGenConfig(42))

	// Event i must not depend on generation order.
	a := g1.Generate(500)
	_ = g2.GenerateN(10)
	b := g2.Generate(500)
	if len(a.Particles) != len(b.Particles) {
		t.Fatalf("event 500 differs: %d vs %d particles", len(a.Particles), len(b.Particles))
	}
	for i := range a.Particles {
		if a.Particles[i] != b.Particles[i] {
			t.Fatalf("particle %d differs", i)
		}
	}
}

func TestGeneratorSignalFraction(t *testing.T) {
	g, _ := NewGenerator(DefaultGenConfig(7))
	evs := g.GenerateN(5000)
	signal := 0
	for _, ev := range evs {
		if ev.Signal {
			signal++
		}
	}
	frac := float64(signal) / float64(len(evs))
	if math.Abs(frac-0.6) > 0.03 {
		t.Fatalf("signal fraction = %g, want ≈0.6", frac)
	}
}

func TestGeneratorResonanceMass(t *testing.T) {
	g, _ := NewGenerator(DefaultGenConfig(11))
	var masses []float64
	for _, ev := range g.GenerateN(2000) {
		if !ev.Signal || len(ev.Particles) < 2 {
			continue
		}
		m := ev.Particles[0].P.Add(ev.Particles[1].P).M()
		masses = append(masses, m)
	}
	if len(masses) == 0 {
		t.Fatal("no signal events")
	}
	// Median should be near the resonance mass.
	within := 0
	for _, m := range masses {
		if math.Abs(m-30) < 4 {
			within++
		}
	}
	if frac := float64(within) / float64(len(masses)); frac < 0.5 {
		t.Fatalf("only %.0f%% of signal masses within 4 GeV of peak", frac*100)
	}
}

func TestDetectorValidate(t *testing.T) {
	if err := DefaultDetector(1).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Detector{Resolution: -1, Efficiency: 0.9}).Validate(); err == nil {
		t.Error("negative resolution accepted")
	}
	if err := (Detector{Resolution: 0.1, Efficiency: 1.5}).Validate(); err == nil {
		t.Error("efficiency > 1 accepted")
	}
}

func TestSimulateDeterministicPerRevision(t *testing.T) {
	g, _ := NewGenerator(DefaultGenConfig(3))
	ev := g.Generate(17)
	det := DefaultDetector(5)

	a, err := det.Simulate(ev, Effects{SmearRev: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := det.Simulate(ev, Effects{SmearRev: 1})
	if len(a.Particles) != len(b.Particles) {
		t.Fatal("same revision smearing not reproducible")
	}
	for i := range a.Particles {
		if a.Particles[i] != b.Particles[i] {
			t.Fatal("same revision smearing not bit-identical")
		}
	}

	c, _ := det.Simulate(ev, Effects{SmearRev: 2})
	identical := len(a.Particles) == len(c.Particles)
	if identical {
		for i := range a.Particles {
			if a.Particles[i] != c.Particles[i] {
				identical = false
				break
			}
		}
	}
	if identical {
		t.Fatal("different smear revisions produced identical events")
	}
}

func TestSimulateEfficiencyDropsParticles(t *testing.T) {
	g, _ := NewGenerator(DefaultGenConfig(9))
	det := Detector{Resolution: 0.02, Efficiency: 0.5, Seed: 1}
	evs := g.GenerateN(500)
	genParticles, simParticles := 0, 0
	for _, ev := range evs {
		genParticles += len(ev.Particles)
		sm, err := det.Simulate(ev, Effects{})
		if err != nil {
			t.Fatal(err)
		}
		simParticles += len(sm.Particles)
	}
	frac := float64(simParticles) / float64(genParticles)
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("survival fraction = %g, want ≈0.5", frac)
	}
}

func TestSimulateCrashEffect(t *testing.T) {
	g, _ := NewGenerator(DefaultGenConfig(1))
	det := DefaultDetector(1)
	if _, err := det.Simulate(g.Generate(0), Effects{Crash: true}); err == nil {
		t.Fatal("crash effect did not fail the stage")
	}
	if _, err := det.SimulateAll(g.GenerateN(3), Effects{Crash: true}); err == nil {
		t.Fatal("SimulateAll ignored crash")
	}
}

func TestReconstructBasics(t *testing.T) {
	ev := Event{ID: 1, Particles: []Particle{
		{PDG: 211, P: FromPtPhiPz(10, 0, 0)},
		{PDG: -211, P: FromPtPhiPz(10, math.Pi, 0)},
		{PDG: 22, P: FromPtPhiPz(1, 1, 0)},
	}}
	rec, err := Reconstruct(ev, Effects{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Multiplicity != 3 {
		t.Errorf("multiplicity = %d", rec.Multiplicity)
	}
	if math.Abs(rec.LeadPt-10) > 1e-9 {
		t.Errorf("lead pt = %g", rec.LeadPt)
	}
	// Two massless back-to-back 10 GeV particles: invariant mass 20.
	if math.Abs(rec.Mass-20) > 1e-9 {
		t.Errorf("mass = %g, want 20", rec.Mass)
	}
}

func TestReconstructEmptyAndSingle(t *testing.T) {
	rec, err := Reconstruct(Event{ID: 5}, Effects{})
	if err != nil || rec.Multiplicity != 0 || rec.Mass != 0 {
		t.Fatalf("empty event = %+v, %v", rec, err)
	}
	one := Event{ID: 6, Particles: []Particle{{PDG: 211, P: FromPtPhiPz(5, 0, 0)}}}
	rec, err = Reconstruct(one, Effects{})
	if err != nil || rec.Mass != 0 || rec.LeadPt != 5 {
		t.Fatalf("single-particle event = %+v, %v", rec, err)
	}
}

func TestCorruptionEffect(t *testing.T) {
	ev := Event{ID: 1024, Particles: []Particle{
		{PDG: 211, P: FromPtPhiPz(10, 0, 0)},
		{PDG: -211, P: FromPtPhiPz(10, math.Pi, 0)},
	}}
	eff := Effects{CorruptEvery: 1024}
	rec, err := Reconstruct(ev, eff)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Mass < 1e5 {
		t.Fatalf("event 1024 not corrupted: mass = %g", rec.Mass)
	}
	ev.ID = 1025
	rec, _ = Reconstruct(ev, eff)
	if rec.Mass > 100 {
		t.Fatalf("event 1025 wrongly corrupted: mass = %g", rec.Mass)
	}
}

func TestBiasEffectHitsSubset(t *testing.T) {
	eff := Effects{MassBias: 0.004}
	biasedCount := 0
	const n = 10000
	for id := int64(0); id < n; id++ {
		if eff.Biased(id) {
			biasedCount++
		}
	}
	frac := float64(biasedCount) / n
	if math.Abs(frac-1.0/16) > 0.02 {
		t.Fatalf("biased fraction = %g, want ≈1/16", frac)
	}
	// Zero bias never marks events.
	none := Effects{}
	for id := int64(0); id < 100; id++ {
		if none.Biased(id) {
			t.Fatal("zero-bias effects marked an event")
		}
	}
}

func TestEffectsFor(t *testing.T) {
	reg := platform.NewRegistry()
	ref := platform.ReferenceConfig()
	sl6 := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
	sl5_32 := platform.Config{OS: "SL5", Arch: platform.I386, Compiler: "gcc4.1"}

	// Clean code: no effects anywhere.
	eff, err := EffectsFor(sl6, reg, []platform.Trait{platform.TraitCxx98}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if eff.FPShift != 0 || eff.MassBias != 0 || eff.CorruptEvery != 0 || eff.Crash {
		t.Fatalf("clean code has effects: %+v", eff)
	}
	if eff.SmearRev != 3 {
		t.Fatalf("SmearRev = %d", eff.SmearRev)
	}

	// X87-sensitive code: shift on 32-bit, none on the reference.
	eff, _ = EffectsFor(sl5_32, reg, []platform.Trait{platform.TraitX87Sensitive}, 1)
	if eff.FPShift == 0 {
		t.Error("x87-sensitive code has no shift on 32-bit")
	}
	eff, _ = EffectsFor(ref, reg, []platform.Trait{platform.TraitX87Sensitive}, 1)
	if eff.FPShift != 0 {
		t.Error("x87-sensitive code shifted on reference config")
	}

	// Uninit memory: bias only under stack-reusing compilers.
	eff, _ = EffectsFor(ref, reg, []platform.Trait{platform.TraitUninitMemory}, 1)
	if eff.MassBias != 0 {
		t.Error("uninit memory biased under gcc4.1")
	}
	eff, _ = EffectsFor(sl6, reg, []platform.Trait{platform.TraitUninitMemory}, 1)
	if eff.MassBias == 0 {
		t.Error("uninit memory not biased under gcc4.4")
	}

	// Pointer truncation: corrupts only on 64-bit.
	eff, _ = EffectsFor(sl5_32, reg, []platform.Trait{platform.TraitPtrIntCast}, 1)
	if eff.CorruptEvery != 0 {
		t.Error("ptr-int cast corrupted on 32-bit")
	}
	eff, _ = EffectsFor(sl6, reg, []platform.Trait{platform.TraitPtrIntCast}, 1)
	if eff.CorruptEvery == 0 {
		t.Error("ptr-int cast not corrupting on 64-bit")
	}

	// Aliasing: crash only under optimizing compilers.
	eff, _ = EffectsFor(ref, reg, []platform.Trait{platform.TraitStrictAliasing}, 1)
	if eff.Crash {
		t.Error("aliasing crashed under gcc4.1")
	}
	eff, _ = EffectsFor(sl6, reg, []platform.Trait{platform.TraitStrictAliasing}, 1)
	if !eff.Crash {
		t.Error("aliasing did not crash under gcc4.4")
	}

	// Unknown compiler is an error.
	if _, err := EffectsFor(platform.Config{OS: "SL5", Arch: platform.X8664, Compiler: "clang"}, reg, nil, 0); err == nil {
		t.Error("unknown compiler accepted")
	}
}

func TestFullPipelinePreservesEventIDs(t *testing.T) {
	g, _ := NewGenerator(DefaultGenConfig(13))
	det := DefaultDetector(13)
	evs := g.GenerateN(50)
	sim, err := det.SimulateAll(evs, Effects{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReconstructAll(sim, Effects{})
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if rec.ID != int64(i) {
			t.Fatalf("event ID %d at position %d", rec.ID, i)
		}
		s := Summarize(rec)
		if s.ID != rec.ID || s.Mass != rec.Mass || s.N != rec.Multiplicity {
			t.Fatalf("summary mismatch: %+v vs %+v", s, rec)
		}
	}
}

func TestAnalyzeFindsPeak(t *testing.T) {
	g, _ := NewGenerator(DefaultGenConfig(21))
	det := DefaultDetector(21)
	sim, _ := det.SimulateAll(g.GenerateN(3000), Effects{})
	recs, _ := ReconstructAll(sim, Effects{})
	sums := make([]Summary, len(recs))
	for i, r := range recs {
		sums[i] = Summarize(r)
	}
	res := Analyze(sums, 30)

	if res.Mass.Entries() != 3000 {
		t.Fatalf("mass entries = %d", res.Mass.Entries())
	}
	// The peak bin should be within a few GeV of 30.
	peakBin, peak := -1, 0.0
	for i := 0; i < res.Mass.Bins(); i++ {
		if c := res.Mass.BinContent(i); c > peak {
			peak, peakBin = c, i
		}
	}
	if center := res.Mass.BinCenter(peakBin); math.Abs(center-30) > 3 {
		t.Fatalf("peak at %g, want ≈30", center)
	}
	if len(res.Histograms()) != 3 {
		t.Fatalf("histogram count = %d", len(res.Histograms()))
	}
}
