package hepsim

import (
	"repro/internal/histo"
)

// AnalysisResult is the set of physics distributions a full analysis
// chain ends in — the objects data validation compares run-to-run.
type AnalysisResult struct {
	// Mass is the invariant-mass spectrum of the two leading particles;
	// the resonance peak is the analysis' headline observable.
	Mass *histo.H1D
	// LeadPt is the leading-particle transverse-momentum spectrum.
	LeadPt *histo.H1D
	// Multiplicity is the per-event particle-count distribution.
	Multiplicity *histo.H1D
}

// NewAnalysisResult books the standard analysis histograms around the
// given resonance mass.
func NewAnalysisResult(resonanceMass float64) *AnalysisResult {
	return &AnalysisResult{
		Mass:         histo.NewH1D("ana/mass", 60, resonanceMass-15, resonanceMass+15),
		LeadPt:       histo.NewH1D("ana/leadpt", 50, 0, 50),
		Multiplicity: histo.NewH1D("ana/mult", 25, 0, 25),
	}
}

// Analyze fills the distributions from HAT-level summaries. Corrupted
// events land in the overflow bins, where comparison against the
// reference exposes them.
func Analyze(summaries []Summary, resonanceMass float64) *AnalysisResult {
	res := NewAnalysisResult(resonanceMass)
	for _, s := range summaries {
		res.Mass.Fill(s.Mass)
		res.LeadPt.Fill(s.Pt)
		res.Multiplicity.Fill(float64(s.N))
	}
	return res
}

// Histograms returns the result's histograms in a fixed order, for
// serialization and comparison loops.
func (r *AnalysisResult) Histograms() []*histo.H1D {
	return []*histo.H1D{r.Mass, r.LeadPt, r.Multiplicity}
}
