package hepsim

// Particle is one final-state particle.
type Particle struct {
	// PDG is a particle-type code (toy values: 11 electron, 211 pion,
	// 22 photon).
	PDG int32
	// P is the four-momentum.
	P Vec4
}

// Event is a generated or simulated event — the GEN- and SIM-level record.
type Event struct {
	// ID is the event number, unique within a dataset and stable across
	// chain stages so that any event can be traced through every file
	// level.
	ID int64
	// Particles is the final state.
	Particles []Particle
	// Signal records whether the generator produced the resonance
	// (truth information, carried for efficiency studies).
	Signal bool
}

// RecoEvent is a reconstructed event — the DST-level record.
type RecoEvent struct {
	// ID matches the source Event.ID.
	ID int64
	// Mass is the reconstructed invariant mass of the two leading
	// particles, the analysis' primary observable.
	Mass float64
	// LeadPt is the transverse momentum of the leading particle.
	LeadPt float64
	// Multiplicity is the number of reconstructed particles.
	Multiplicity int32
}

// Summary is the HAT-level (ntuple) record: the minimal per-event data a
// physics analysis consumes.
type Summary struct {
	ID   int64
	Mass float64
	Pt   float64
	N    int32
}
