package hepsim

import (
	"fmt"

	"repro/internal/simrand"
)

// Detector is the parametric detector simulation: Gaussian momentum
// smearing and a flat tracking inefficiency, the standard fast-simulation
// approximation.
type Detector struct {
	// Resolution is the relative momentum resolution (e.g. 0.02 = 2%).
	Resolution float64
	// Efficiency is the per-particle detection probability.
	Efficiency float64
	// Seed isolates the smearing streams of this detector instance.
	Seed uint64
}

// DefaultDetector returns the HERA-scale toy detector used by the
// reference datasets.
func DefaultDetector(seed uint64) Detector {
	return Detector{Resolution: 0.02, Efficiency: 0.97, Seed: seed}
}

// Validate reports the first implausible parameter.
func (d Detector) Validate() error {
	if d.Resolution < 0 || d.Resolution > 1 {
		return fmt.Errorf("hepsim: resolution %g outside [0,1]", d.Resolution)
	}
	if d.Efficiency < 0 || d.Efficiency > 1 {
		return fmt.Errorf("hepsim: efficiency %g outside [0,1]", d.Efficiency)
	}
	return nil
}

// Simulate applies detector response to a generated event under the given
// runtime effects. The smearing stream is derived per (seed, smear
// revision, event), so:
//
//   - replaying the same event with the same external revision is
//     bit-identical, and
//   - changing the external revision (a new ROOT's random engine)
//     produces different but statistically compatible smearing.
//
// Simulate returns an error when the effects model says this stage's code
// was miscompiled into a crash.
func (d Detector) Simulate(ev Event, eff Effects) (Event, error) {
	if eff.Crash {
		return Event{}, fmt.Errorf("hepsim: simulation crashed on event %d (miscompiled aliasing violation)", ev.ID)
	}
	rng := simrand.New(d.Seed).Derive("smear", fmt.Sprintf("rev%d", eff.SmearRev), fmt.Sprintf("%d", ev.ID))
	out := Event{ID: ev.ID, Signal: ev.Signal}
	for _, p := range ev.Particles {
		if !rng.Bool(d.Efficiency) {
			continue
		}
		f := 1 + rng.Norm(0, d.Resolution)
		if f < 0.1 {
			f = 0.1
		}
		sm := p
		sm.P = p.P.Scale(f)
		out.Particles = append(out.Particles, sm)
	}
	return out, nil
}

// SimulateAll applies Simulate to every event, failing fast on the first
// error.
func (d Detector) SimulateAll(evs []Event, eff Effects) ([]Event, error) {
	out := make([]Event, 0, len(evs))
	for _, ev := range evs {
		sm, err := d.Simulate(ev, eff)
		if err != nil {
			return nil, err
		}
		out = append(out, sm)
	}
	return out, nil
}
