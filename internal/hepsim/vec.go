// Package hepsim is the toy high-energy-physics substrate: a
// deterministic event generator, parametric detector simulation and
// reconstruction whose outputs depend on the computing environment in
// exactly the ways the sp-system exists to detect.
//
// The paper validates real HERA software — Monte-Carlo generation,
// detector simulation, multi-level file production and physics analysis.
// We cannot run H1's Fortran, but the validation framework never looks
// inside the physics; it observes only whether each chain stage runs,
// what files it produces, and whether the final distributions agree with
// the reference. This package produces all three observables, with an
// Effects model (see effects.go) that translates platform traits into
// the failure modes the paper describes: silent numeric drift across
// floating-point environments, corrupted results from 64-bit-unsafe
// code, biases from uninitialized memory under new compilers, and
// crashes from miscompiled aliasing violations.
package hepsim

import "math"

// Vec4 is an energy-momentum four-vector (E, px, py, pz) in GeV.
type Vec4 struct {
	E, Px, Py, Pz float64
}

// Add returns the component-wise sum.
func (v Vec4) Add(o Vec4) Vec4 {
	return Vec4{v.E + o.E, v.Px + o.Px, v.Py + o.Py, v.Pz + o.Pz}
}

// Scale returns the vector with every component multiplied by f.
func (v Vec4) Scale(f float64) Vec4 {
	return Vec4{v.E * f, v.Px * f, v.Py * f, v.Pz * f}
}

// P returns the magnitude of the three-momentum.
func (v Vec4) P() float64 {
	return math.Sqrt(v.Px*v.Px + v.Py*v.Py + v.Pz*v.Pz)
}

// Pt returns the transverse momentum.
func (v Vec4) Pt() float64 {
	return math.Sqrt(v.Px*v.Px + v.Py*v.Py)
}

// Phi returns the azimuthal angle in (-pi, pi].
func (v Vec4) Phi() float64 {
	return math.Atan2(v.Py, v.Px)
}

// M returns the invariant mass, with negative mass-squared (from
// smearing) clamped to zero.
func (v Vec4) M() float64 {
	m2 := v.E*v.E - v.Px*v.Px - v.Py*v.Py - v.Pz*v.Pz
	if m2 <= 0 {
		return 0
	}
	return math.Sqrt(m2)
}

// Rapidity returns the longitudinal rapidity; it is ±inf for light-like
// vectors along the beam.
func (v Vec4) Rapidity() float64 {
	return 0.5 * math.Log((v.E+v.Pz)/(v.E-v.Pz))
}

// FromPtPhiPz builds a massless four-vector from transverse momentum,
// azimuth and longitudinal momentum.
func FromPtPhiPz(pt, phi, pz float64) Vec4 {
	px := pt * math.Cos(phi)
	py := pt * math.Sin(phi)
	return Vec4{E: math.Sqrt(pt*pt + pz*pz), Px: px, Py: py, Pz: pz}
}
