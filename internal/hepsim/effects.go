package hepsim

import (
	"repro/internal/platform"
)

// Effects is the bridge between the platform model and the physics
// simulation: it translates the traits of the software being run and the
// configuration it runs on into concrete runtime behaviour. This is the
// mechanism by which a migration can change physics output — the failure
// class the paper's data-validation tests exist to catch, beyond mere
// compile success.
type Effects struct {
	// FPShift is a deterministic relative perturbation applied to
	// numerically sensitive computations (present only when the code has
	// TraitX87Sensitive and the configuration's floating-point profile
	// differs from the reference).
	FPShift float64
	// MassBias is a relative bias applied to a deterministic subset of
	// events, modelling an uninitialized-memory read whose observed value
	// changed when a newer compiler's codegen started reusing stack
	// slots. Zero when absent.
	MassBias float64
	// CorruptEvery corrupts every Nth event's kinematics, modelling
	// pointers truncated to 32-bit integers on a 64-bit platform. Zero
	// means never.
	CorruptEvery int64
	// Crash makes the stage fail at runtime, modelling an aliasing
	// violation miscompiled by an optimizing compiler.
	Crash bool
	// SmearRev selects the detector-smearing random stream. External
	// software revisions (e.g. a new ROOT) legitimately change random
	// sequences: results are statistically compatible with the reference
	// but not bit-identical. Validation must tell this apart from a bug.
	SmearRev int
}

// EffectsFor computes the runtime effects of running code with the given
// traits on the given configuration with the given external numeric
// revision. The platform registry supplies compiler codegen behaviour.
//
// The rules:
//
//   - TraitX87Sensitive exposes the configuration's FP profile shift.
//   - TraitUninitMemory becomes a physics bias only under compilers whose
//     codegen reuses stack slots (gcc >= 4.4 in the catalogue); on older
//     compilers the stale value happens to be benign — which is exactly
//     why the bug is "long-standing".
//   - TraitPtrIntCast corrupts events only on 64-bit architectures,
//     where pointers no longer fit the int they are stored in.
//   - TraitStrictAliasing crashes only under compilers that warn about
//     it (the model's marker for "optimizes aggressively enough to
//     miscompile": gcc >= 4.4).
func EffectsFor(cfg platform.Config, reg *platform.Registry, traits []platform.Trait, extRev int) (Effects, error) {
	comp, err := reg.Compiler(cfg.Compiler)
	if err != nil {
		return Effects{}, err
	}
	eff := Effects{SmearRev: extRev}
	for _, t := range traits {
		switch t {
		case platform.TraitX87Sensitive:
			eff.FPShift = cfg.FP().RelativeShift
		case platform.TraitUninitMemory:
			if comp.StackReuse {
				eff.MassBias = 0.004
			}
		case platform.TraitPtrIntCast:
			if cfg.Arch.Bits() == 64 {
				eff.CorruptEvery = 1024
			}
		case platform.TraitStrictAliasing:
			if comp.Judge(platform.TraitStrictAliasing) != platform.VerdictOK {
				eff.Crash = true
			}
		}
	}
	return eff, nil
}

// Corrupted reports whether this event falls in the deterministic subset
// damaged by the pointer-truncation defect.
func (e Effects) Corrupted(id int64) bool {
	return e.CorruptEvery > 0 && id%e.CorruptEvery == 0
}

// Biased reports whether this event falls in the deterministic subset
// affected by the uninitialized-memory bias (1 event in 16).
func (e Effects) Biased(id int64) bool {
	return e.MassBias != 0 && (uint64(id)*2654435761)%16 == 0
}
