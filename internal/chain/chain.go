// Package chain builds full analysis chains as sequences of validation
// tests: "from MC generation and simulation, through multi-level file
// production and ending with a full physics analysis and subsequent
// validation of the results" (Figure 2).
//
// Each stage is a valtest.Test depending on its predecessor; the runner
// executes them sequentially while standalone tests proceed in parallel.
// Stages communicate through files on the common storage, addressed
// under the job's SP_WORKDIR shell variable — the paper's thin
// script-variable interface.
//
// The final stage validates the analysis histograms against the
// reference on the common storage. The comparator is chosen from the
// reference's recorded provenance: if the candidate ran with the same
// external numeric revision, results must agree within a tight relative
// tolerance (legitimate floating-point drift only); if the external
// software changed its numeric behaviour (a new ROOT), agreement is
// judged statistically (chi²) instead — the framework's mechanism for
// telling a legitimate upgrade apart from a silent bug.
package chain

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/externals"
	"repro/internal/hepfile"
	"repro/internal/hepsim"
	"repro/internal/histo"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// Stage identifies one link of the analysis chain.
type Stage int

const (
	// StageGen is Monte-Carlo event generation.
	StageGen Stage = iota
	// StageSim is detector simulation.
	StageSim
	// StageReco is reconstruction (DST production).
	StageReco
	// StageODS is physics-object selection (ODS production).
	StageODS
	// StageHAT is ntuple production.
	StageHAT
	// StageAnalysis fills the physics distributions.
	StageAnalysis
	// StageValidate compares distributions against the reference.
	StageValidate
	numStages int = iota
)

var stageNames = [...]string{"gen", "sim", "reco", "ods", "hat", "analysis", "validate"}

// String returns the stage's short name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Stages returns all stages in chain order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Spec describes one analysis chain.
type Spec struct {
	// Name identifies the chain within the experiment's suite, e.g.
	// "mainchain".
	Name string
	// Events is the number of Monte-Carlo events to run.
	Events int
	// Gen configures the event generator.
	Gen hepsim.GenConfig
	// Det configures the detector simulation.
	Det hepsim.Detector
	// StagePackages maps each executing stage to the repository package
	// implementing it. The package must have built for the stage to run,
	// and its source traits determine the stage's runtime effects.
	StagePackages map[Stage]string
	// MinLeadPt and MinMult are the ODS selection cuts.
	MinLeadPt float64
	MinMult   int32
	// RelTol is the same-revision validation tolerance (maximum relative
	// bin difference).
	RelTol float64
	// MaxChi2 is the cross-revision statistical compatibility limit
	// (chi² per degree of freedom).
	MaxChi2 float64
}

// DefaultSpec returns a chain spec with the reproduction's standard
// physics and cuts, running the given number of events.
func DefaultSpec(name string, events int, seed uint64) Spec {
	return Spec{
		Name:      name,
		Events:    events,
		Gen:       hepsim.DefaultGenConfig(seed),
		Det:       hepsim.DefaultDetector(seed + 1),
		MinLeadPt: 2,
		MinMult:   2,
		RelTol:    1e-9,
		MaxChi2:   2.0,
	}
}

// Validate reports the first invalid spec field.
func (sp *Spec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("chain: spec needs a name")
	}
	if sp.Events <= 0 {
		return fmt.Errorf("chain: %s: events must be positive, got %d", sp.Name, sp.Events)
	}
	if err := sp.Gen.Validate(); err != nil {
		return err
	}
	if err := sp.Det.Validate(); err != nil {
		return err
	}
	if sp.RelTol <= 0 || sp.MaxChi2 <= 0 {
		return fmt.Errorf("chain: %s: tolerances must be positive", sp.Name)
	}
	return nil
}

// Storage namespaces used by chains.
const (
	// FilesNS holds per-run chain files (GEN/SIM/DST/ODS/HAT and
	// histograms), keyed under SP_WORKDIR.
	FilesNS = "files"
	// RefsNS holds validation references and their provenance.
	RefsNS = "refs"
)

// stageTestName returns "<chain>/<stage>".
func (sp *Spec) stageTestName(st Stage) string {
	return sp.Name + "/" + st.String()
}

// fileKey returns the storage key of a chain file in the run's workdir.
func fileKey(env storage.Env, chainName string, level hepfile.Level) string {
	return env[storage.EnvWorkDir] + "/" + chainName + "/" + level.String()
}

// histKey returns the storage key of an analysis histogram in the run's
// workdir.
func histKey(env storage.Env, chainName, hist string) string {
	return env[storage.EnvWorkDir] + "/" + chainName + "/hist/" + hist
}

// RefKey returns the reference key for a chain histogram.
func RefKey(experiment, chainName, hist string) string {
	return experiment + "/" + chainName + "/" + hist
}

// refProvenance records where a validation reference came from, stored
// alongside it; the validate stage uses it to pick a comparator.
type refProvenance struct {
	Config     string `json:"config"`
	Externals  string `json:"externals"`
	NumericRev int    `json:"numeric_rev"`
	RunID      string `json:"run_id"`
}

func provKey(refKey string) string { return refKey + "/provenance" }

// Tests expands the spec into its chain of validation tests, in order,
// each depending on the previous stage.
func (sp *Spec) Tests() ([]valtest.Test, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	var tests []valtest.Test
	var prev string
	add := func(st Stage, fn func(ctx *valtest.Context) valtest.Result) {
		name := sp.stageTestName(st)
		var deps []string
		if prev != "" {
			deps = []string{prev}
		}
		tests = append(tests, &valtest.FuncTest{
			TestName: name,
			Cat:      valtest.CatChain,
			Deps:     deps,
			Fn:       fn,
		})
		prev = name
	}

	add(StageGen, sp.runGen)
	add(StageSim, sp.runSim)
	add(StageReco, sp.runReco)
	add(StageODS, sp.runODS)
	add(StageHAT, sp.runHAT)
	add(StageAnalysis, sp.runAnalysis)
	add(StageValidate, sp.runValidate)
	return tests, nil
}

// stageEffects resolves the runtime effects for a stage from its
// implementing package's traits, and verifies the package built. The
// second return is a non-empty skip reason when the stage cannot run.
func (sp *Spec) stageEffects(ctx *valtest.Context, st Stage) (hepsim.Effects, string, error) {
	extRev := ctx.Externals.NumericRev(externals.ROOT)
	pkgName, ok := sp.StagePackages[st]
	if !ok {
		// Stage not tied to a package: clean code, only external revs
		// apply.
		return hepsim.Effects{SmearRev: extRev}, "", nil
	}
	if ctx.Build != nil {
		if pr, found := ctx.Build.Find(pkgName); found && !pr.Succeeded() {
			return hepsim.Effects{}, fmt.Sprintf("package %s did not build (%v)", pkgName, pr.Status), nil
		}
	}
	pkg, err := ctx.Repo.Get(pkgName)
	if err != nil {
		return hepsim.Effects{}, "", err
	}
	eff, err := hepsim.EffectsFor(ctx.Config, ctx.Registry, pkg.Traits(), extRev)
	if err != nil {
		return hepsim.Effects{}, "", err
	}
	return eff, "", nil
}

func errorResult(detail string) valtest.Result {
	return valtest.Result{Outcome: valtest.OutcomeError, Detail: detail}
}

func skipResult(detail string) valtest.Result {
	return valtest.Result{Outcome: valtest.OutcomeSkip, Detail: detail}
}

func (sp *Spec) runGen(ctx *valtest.Context) valtest.Result {
	eff, skip, err := sp.stageEffects(ctx, StageGen)
	if err != nil {
		return errorResult(err.Error())
	}
	if skip != "" {
		return skipResult(skip)
	}
	if eff.Crash {
		return errorResult("generator crashed (miscompiled aliasing violation)")
	}
	gen, err := hepsim.NewGenerator(sp.Gen)
	if err != nil {
		return errorResult(err.Error())
	}
	evs := gen.GenerateN(sp.Events)
	data, err := hepfile.WriteEvents(hepfile.GEN, evs)
	if err != nil {
		return errorResult(err.Error())
	}
	key := fileKey(ctx.Env, sp.Name, hepfile.GEN)
	if _, err := ctx.Store.Put(FilesNS, key, data); err != nil {
		return errorResult(err.Error())
	}
	return valtest.Result{
		Outcome:   valtest.OutcomePass,
		Detail:    fmt.Sprintf("generated %d events", len(evs)),
		OutputKey: key,
		Cost:      time.Duration(sp.Events) * 200 * time.Microsecond,
	}
}

func (sp *Spec) runSim(ctx *valtest.Context) valtest.Result {
	eff, skip, err := sp.stageEffects(ctx, StageSim)
	if err != nil {
		return errorResult(err.Error())
	}
	if skip != "" {
		return skipResult(skip)
	}
	data, err := ctx.Store.Get(FilesNS, fileKey(ctx.Env, sp.Name, hepfile.GEN))
	if err != nil {
		return errorResult(fmt.Sprintf("GEN file: %v", err))
	}
	_, evs, err := hepfile.ReadEvents(data)
	if err != nil {
		return errorResult(fmt.Sprintf("GEN file: %v", err))
	}
	sim, err := sp.Det.SimulateAll(evs, eff)
	if err != nil {
		return errorResult(err.Error())
	}
	out, err := hepfile.WriteEvents(hepfile.SIM, sim)
	if err != nil {
		return errorResult(err.Error())
	}
	key := fileKey(ctx.Env, sp.Name, hepfile.SIM)
	if _, err := ctx.Store.Put(FilesNS, key, out); err != nil {
		return errorResult(err.Error())
	}
	return valtest.Result{
		Outcome:   valtest.OutcomePass,
		Detail:    fmt.Sprintf("simulated %d events", len(sim)),
		OutputKey: key,
		Cost:      time.Duration(sp.Events) * 500 * time.Microsecond,
	}
}

func (sp *Spec) runReco(ctx *valtest.Context) valtest.Result {
	eff, skip, err := sp.stageEffects(ctx, StageReco)
	if err != nil {
		return errorResult(err.Error())
	}
	if skip != "" {
		return skipResult(skip)
	}
	data, err := ctx.Store.Get(FilesNS, fileKey(ctx.Env, sp.Name, hepfile.SIM))
	if err != nil {
		return errorResult(fmt.Sprintf("SIM file: %v", err))
	}
	_, evs, err := hepfile.ReadEvents(data)
	if err != nil {
		return errorResult(fmt.Sprintf("SIM file: %v", err))
	}
	recs, err := hepsim.ReconstructAll(evs, eff)
	if err != nil {
		return errorResult(err.Error())
	}
	out, err := hepfile.WriteReco(hepfile.DST, recs)
	if err != nil {
		return errorResult(err.Error())
	}
	key := fileKey(ctx.Env, sp.Name, hepfile.DST)
	if _, err := ctx.Store.Put(FilesNS, key, out); err != nil {
		return errorResult(err.Error())
	}
	return valtest.Result{
		Outcome:   valtest.OutcomePass,
		Detail:    fmt.Sprintf("reconstructed %d events", len(recs)),
		OutputKey: key,
		Cost:      time.Duration(sp.Events) * time.Millisecond,
	}
}

func (sp *Spec) runODS(ctx *valtest.Context) valtest.Result {
	eff, skip, err := sp.stageEffects(ctx, StageODS)
	if err != nil {
		return errorResult(err.Error())
	}
	if skip != "" {
		return skipResult(skip)
	}
	if eff.Crash {
		return errorResult("ODS selection crashed (miscompiled aliasing violation)")
	}
	data, err := ctx.Store.Get(FilesNS, fileKey(ctx.Env, sp.Name, hepfile.DST))
	if err != nil {
		return errorResult(fmt.Sprintf("DST file: %v", err))
	}
	_, recs, err := hepfile.ReadReco(data)
	if err != nil {
		return errorResult(fmt.Sprintf("DST file: %v", err))
	}
	selected := recs[:0]
	for _, r := range recs {
		if r.LeadPt >= sp.MinLeadPt && r.Multiplicity >= sp.MinMult {
			selected = append(selected, r)
		}
	}
	out, err := hepfile.WriteReco(hepfile.ODS, selected)
	if err != nil {
		return errorResult(err.Error())
	}
	key := fileKey(ctx.Env, sp.Name, hepfile.ODS)
	if _, err := ctx.Store.Put(FilesNS, key, out); err != nil {
		return errorResult(err.Error())
	}
	return valtest.Result{
		Outcome:   valtest.OutcomePass,
		Detail:    fmt.Sprintf("selected %d/%d events", len(selected), len(recs)),
		OutputKey: key,
		Cost:      time.Duration(sp.Events) * 100 * time.Microsecond,
	}
}

func (sp *Spec) runHAT(ctx *valtest.Context) valtest.Result {
	eff, skip, err := sp.stageEffects(ctx, StageHAT)
	if err != nil {
		return errorResult(err.Error())
	}
	if skip != "" {
		return skipResult(skip)
	}
	if eff.Crash {
		return errorResult("HAT production crashed (miscompiled aliasing violation)")
	}
	data, err := ctx.Store.Get(FilesNS, fileKey(ctx.Env, sp.Name, hepfile.ODS))
	if err != nil {
		return errorResult(fmt.Sprintf("ODS file: %v", err))
	}
	_, recs, err := hepfile.ReadReco(data)
	if err != nil {
		return errorResult(fmt.Sprintf("ODS file: %v", err))
	}
	sums := make([]hepsim.Summary, len(recs))
	for i, r := range recs {
		sums[i] = hepsim.Summarize(r)
	}
	out, err := hepfile.WriteSummaries(sums)
	if err != nil {
		return errorResult(err.Error())
	}
	key := fileKey(ctx.Env, sp.Name, hepfile.HAT)
	if _, err := ctx.Store.Put(FilesNS, key, out); err != nil {
		return errorResult(err.Error())
	}
	return valtest.Result{
		Outcome:   valtest.OutcomePass,
		Detail:    fmt.Sprintf("wrote %d summaries", len(sums)),
		OutputKey: key,
		Cost:      time.Duration(sp.Events) * 50 * time.Microsecond,
	}
}

func (sp *Spec) runAnalysis(ctx *valtest.Context) valtest.Result {
	eff, skip, err := sp.stageEffects(ctx, StageAnalysis)
	if err != nil {
		return errorResult(err.Error())
	}
	if skip != "" {
		return skipResult(skip)
	}
	if eff.Crash {
		return errorResult("analysis crashed (miscompiled aliasing violation)")
	}
	data, err := ctx.Store.Get(FilesNS, fileKey(ctx.Env, sp.Name, hepfile.HAT))
	if err != nil {
		return errorResult(fmt.Sprintf("HAT file: %v", err))
	}
	sums, err := hepfile.ReadSummaries(data)
	if err != nil {
		return errorResult(fmt.Sprintf("HAT file: %v", err))
	}
	res := hepsim.Analyze(sums, sp.Gen.ResonanceMass)
	var firstKey string
	for _, h := range res.Histograms() {
		blob, err := h.MarshalBinary()
		if err != nil {
			return errorResult(err.Error())
		}
		key := histKey(ctx.Env, sp.Name, h.Name())
		if _, err := ctx.Store.Put(FilesNS, key, blob); err != nil {
			return errorResult(err.Error())
		}
		if firstKey == "" {
			firstKey = key
		}
	}
	return valtest.Result{
		Outcome:   valtest.OutcomePass,
		Detail:    fmt.Sprintf("analysed %d events into %d histograms", len(sums), len(res.Histograms())),
		OutputKey: firstKey,
		Cost:      time.Duration(sp.Events) * 20 * time.Microsecond,
	}
}

func (sp *Spec) runValidate(ctx *valtest.Context) valtest.Result {
	extRev := ctx.Externals.NumericRev(externals.ROOT)
	names := []string{"ana/mass", "ana/leadpt", "ana/mult"}
	var worst float64
	established := 0
	for _, hn := range names {
		candKey := histKey(ctx.Env, sp.Name, hn)
		candData, err := ctx.Store.Get(FilesNS, candKey)
		if err != nil {
			return errorResult(fmt.Sprintf("candidate %s: %v", hn, err))
		}
		cand, err := histo.UnmarshalH1D(candData)
		if err != nil {
			return errorResult(fmt.Sprintf("candidate %s: %v", hn, err))
		}

		refKey := RefKey(ctx.Repo.Experiment, sp.Name, hn)
		if !ctx.Store.Exists(RefsNS, refKey) {
			// First successful pass establishes the reference.
			if _, err := ctx.Store.Put(RefsNS, refKey, candData); err != nil {
				return errorResult(err.Error())
			}
			prov, _ := json.Marshal(refProvenance{
				Config:     ctx.Config.String(),
				Externals:  ctx.Externals.String(),
				NumericRev: extRev,
				RunID:      ctx.Env[storage.EnvRunID],
			})
			if _, err := ctx.Store.Put(RefsNS, provKey(refKey), prov); err != nil {
				return errorResult(err.Error())
			}
			established++
			continue
		}

		refData, err := ctx.Store.Get(RefsNS, refKey)
		if err != nil {
			return errorResult(err.Error())
		}
		ref, err := histo.UnmarshalH1D(refData)
		if err != nil {
			return errorResult(fmt.Sprintf("reference %s: %v", hn, err))
		}
		var prov refProvenance
		if provData, err := ctx.Store.Get(RefsNS, provKey(refKey)); err == nil {
			_ = json.Unmarshal(provData, &prov)
		}

		var cmp histo.Comparison
		if prov.NumericRev == extRev {
			cmp, err = histo.MaxRelDiff(ref, cand, sp.RelTol)
		} else {
			cmp, err = histo.Chi2(ref, cand, sp.MaxChi2)
		}
		if err != nil {
			return errorResult(fmt.Sprintf("comparing %s: %v", hn, err))
		}
		if cmp.Statistic > worst {
			worst = cmp.Statistic
		}
		if !cmp.Compatible {
			return valtest.Result{
				Outcome:   valtest.OutcomeFail,
				Detail:    fmt.Sprintf("%s: %s", hn, cmp.Detail),
				Statistic: cmp.Statistic,
			}
		}
	}
	detail := fmt.Sprintf("%d histograms compatible with reference", len(names))
	if established > 0 {
		detail = fmt.Sprintf("%d references established, %d compared", established, len(names)-established)
	}
	return valtest.Result{
		Outcome:   valtest.OutcomePass,
		Detail:    detail,
		Statistic: worst,
		Cost:      time.Duration(len(names)) * 10 * time.Millisecond,
	}
}
