package chain

import (
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// Failure injection: the chain must fail loudly — never silently — when
// intermediate files or references are damaged on the common storage.

func TestSimStageRejectsCorruptGENFile(t *testing.T) {
	f := newFixture(t)
	ctx := f.context(t, platform.ReferenceConfig(), "5.34", "run-0001")
	sp := spec()
	tests, err := sp.Tests()
	if err != nil {
		t.Fatal(err)
	}
	// Run gen, then corrupt its output in place.
	if res := tests[0].Run(ctx); res.Outcome != valtest.OutcomePass {
		t.Fatalf("gen = %+v", res)
	}
	key := "run-0001/mainchain/GEN"
	data, err := f.store.Get(FilesNS, key)
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]byte, len(data))
	copy(bad, data)
	bad[len(bad)/3] ^= 0xFF
	if _, err := f.store.Put(FilesNS, key, bad); err != nil {
		t.Fatal(err)
	}

	res := tests[1].Run(ctx) // sim
	if res.Outcome != valtest.OutcomeError {
		t.Fatalf("sim on corrupt GEN = %v (%s), want error", res.Outcome, res.Detail)
	}
	if !strings.Contains(res.Detail, "GEN") {
		t.Fatalf("detail does not name the damaged input: %q", res.Detail)
	}
}

func TestValidateRejectsCorruptReference(t *testing.T) {
	f := newFixture(t)
	ctx := f.context(t, platform.ReferenceConfig(), "5.34", "run-0001")
	sp := spec()
	// Full first pass establishes references.
	for _, res := range runChain(t, sp, ctx) {
		if !res.Outcome.Passed() {
			t.Fatalf("first pass failed at %s", res.Test)
		}
	}
	// Corrupt one stored reference histogram.
	refKey := RefKey("H1", sp.Name, "ana/mass")
	if _, err := f.store.Put(RefsNS, refKey, []byte("not a histogram")); err != nil {
		t.Fatal(err)
	}
	ctx2 := f.context(t, platform.ReferenceConfig(), "5.34", "run-0002")
	results := runChain(t, sp, ctx2)
	val := results[6]
	if val.Outcome != valtest.OutcomeError {
		t.Fatalf("validate on corrupt reference = %v (%s), want error", val.Outcome, val.Detail)
	}
}

func TestStagesErrorWithoutUpstreamFiles(t *testing.T) {
	f := newFixture(t)
	ctx := f.context(t, platform.ReferenceConfig(), "5.34", "run-0001")
	sp := spec()
	tests, err := sp.Tests()
	if err != nil {
		t.Fatal(err)
	}
	// Run stages 1..5 without their inputs (gen never ran).
	for i := 1; i <= 5; i++ {
		res := tests[i].Run(ctx)
		if res.Outcome != valtest.OutcomeError {
			t.Fatalf("stage %s without input = %v, want error", tests[i].Name(), res.Outcome)
		}
	}
}

func TestChainIsolatedPerWorkdir(t *testing.T) {
	// Two runs with different SP_WORKDIR must not share files.
	f := newFixture(t)
	sp := spec()
	ctx1 := f.context(t, platform.ReferenceConfig(), "5.34", "run-A")
	for _, res := range runChain(t, sp, ctx1) {
		if !res.Outcome.Passed() {
			t.Fatalf("run-A failed at %s", res.Test)
		}
	}
	if !f.store.Exists(FilesNS, "run-A/mainchain/GEN") {
		t.Fatal("run-A files missing")
	}
	if f.store.Exists(FilesNS, "run-B/mainchain/GEN") {
		t.Fatal("run-B files exist before run-B ran")
	}
	ctx2 := f.context(t, platform.ReferenceConfig(), "5.34", "run-B")
	for _, res := range runChain(t, sp, ctx2) {
		if !res.Outcome.Passed() {
			t.Fatalf("run-B failed at %s", res.Test)
		}
	}
	// Keep-everything: run-A's files are still there.
	if !f.store.Exists(FilesNS, "run-A/mainchain/HAT") {
		t.Fatal("run-A files evicted by run-B")
	}
}

func TestValidateWithMissingWorkdirEnv(t *testing.T) {
	f := newFixture(t)
	ctx := f.context(t, platform.ReferenceConfig(), "5.34", "run-0001")
	delete(ctx.Env, storage.EnvWorkDir)
	sp := spec()
	tests, _ := sp.Tests()
	// gen writes under an empty workdir prefix; the chain still works as
	// a unit (keys are just unprefixed) — this documents tolerated
	// behaviour rather than an error path.
	res := tests[0].Run(ctx)
	if res.Outcome != valtest.OutcomePass {
		t.Fatalf("gen without workdir = %v (%s)", res.Outcome, res.Detail)
	}
	if res.OutputKey != "/mainchain/GEN" {
		t.Fatalf("output key = %q", res.OutputKey)
	}
}
