package chain

import (
	"strings"
	"testing"

	"repro/internal/buildsys"
	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/swrepo"
	"repro/internal/valtest"
)

// fixture assembles a complete execution context for chain tests. The
// repo's "reco" package carries the given traits.
type fixture struct {
	store *storage.Store
	reg   *platform.Registry
	cat   *externals.Catalogue
	repo  *swrepo.Repository
}

func newFixture(t *testing.T, recoTraits ...platform.Trait) *fixture {
	t.Helper()
	f := &fixture{
		store: storage.NewStore(),
		reg:   platform.NewRegistry(),
		cat:   externals.NewCatalogue(),
		repo:  swrepo.NewRepository("H1"),
	}
	mkPkg := func(name string, traits ...platform.Trait) *swrepo.Package {
		return &swrepo.Package{Name: name, Units: []*swrepo.SourceUnit{{
			Name: "main.cc", Language: swrepo.LangCxx,
			Traits: append([]platform.Trait{platform.TraitCxx98}, traits...),
			Lines:  300,
		}}}
	}
	f.repo.MustAdd(mkPkg("h1gen"))
	f.repo.MustAdd(mkPkg("h1sim"))
	f.repo.MustAdd(mkPkg("h1reco", recoTraits...))
	f.repo.MustAdd(mkPkg("h1ana"))
	return f
}

func (f *fixture) context(t *testing.T, cfg platform.Config, rootVersion, workdir string) *valtest.Context {
	t.Helper()
	root, err := f.cat.Get(externals.ROOT, rootVersion)
	if err != nil {
		t.Fatal(err)
	}
	exts := externals.MustSet(root)
	build, err := buildsys.NewBuilder(f.reg, f.store).Build(f.repo, cfg, exts)
	if err != nil {
		t.Fatal(err)
	}
	return &valtest.Context{
		Store: f.store,
		Env: storage.Env{
			storage.EnvWorkDir: workdir,
			storage.EnvRunID:   workdir,
			storage.EnvConfig:  cfg.String(),
		},
		Config:    cfg,
		Registry:  f.reg,
		Externals: exts,
		Repo:      f.repo,
		Build:     build,
	}
}

func spec() Spec {
	sp := DefaultSpec("mainchain", 2000, 77)
	sp.StagePackages = map[Stage]string{
		StageGen:      "h1gen",
		StageSim:      "h1sim",
		StageReco:     "h1reco",
		StageAnalysis: "h1ana",
	}
	return sp
}

// runChain executes all chain tests in order, stopping at the first
// non-pass if stopOnFailure.
func runChain(t *testing.T, sp Spec, ctx *valtest.Context) []valtest.Result {
	t.Helper()
	tests, err := sp.Tests()
	if err != nil {
		t.Fatal(err)
	}
	var out []valtest.Result
	failed := false
	for _, test := range tests {
		if failed {
			out = append(out, valtest.Result{Test: test.Name(), Outcome: valtest.OutcomeSkip})
			continue
		}
		res := test.Run(ctx)
		out = append(out, res)
		if !res.Outcome.Passed() {
			failed = true
		}
	}
	return out
}

func TestChainPassesOnReference(t *testing.T) {
	f := newFixture(t)
	ctx := f.context(t, platform.ReferenceConfig(), "5.34", "run-0001")
	results := runChain(t, spec(), ctx)
	if len(results) != 7 {
		t.Fatalf("stages = %d, want 7", len(results))
	}
	for _, r := range results {
		if r.Outcome != valtest.OutcomePass {
			t.Fatalf("%s: %v (%s)", r.Test, r.Outcome, r.Detail)
		}
	}
	if !strings.Contains(results[6].Detail, "references established") {
		t.Fatalf("first validate should establish references: %s", results[6].Detail)
	}
}

func TestChainReproducible(t *testing.T) {
	f := newFixture(t)
	ctx1 := f.context(t, platform.ReferenceConfig(), "5.34", "run-0001")
	_ = runChain(t, spec(), ctx1)
	// Second identical run must compare bit-identically against the
	// established references.
	ctx2 := f.context(t, platform.ReferenceConfig(), "5.34", "run-0002")
	results := runChain(t, spec(), ctx2)
	val := results[6]
	if val.Outcome != valtest.OutcomePass {
		t.Fatalf("revalidation failed: %s", val.Detail)
	}
	if val.Statistic != 0 {
		t.Fatalf("identical rerun has nonzero statistic %g", val.Statistic)
	}
}

func TestChainToleratesX87Drift(t *testing.T) {
	f := newFixture(t, platform.TraitX87Sensitive)
	ref := f.context(t, platform.ReferenceConfig(), "5.34", "run-0001")
	_ = runChain(t, spec(), ref)

	sl532 := platform.Config{OS: "SL5", Arch: platform.I386, Compiler: "gcc4.1"}
	ctx := f.context(t, sl532, "5.34", "run-0002")
	results := runChain(t, spec(), ctx)
	val := results[6]
	if val.Outcome != valtest.OutcomePass {
		t.Fatalf("x87 drift rejected: %s", val.Detail)
	}
}

func TestChainCatchesUninitMemoryBias(t *testing.T) {
	f := newFixture(t, platform.TraitUninitMemory)
	ref := f.context(t, platform.ReferenceConfig(), "5.34", "run-0001")
	for _, r := range runChain(t, spec(), ref) {
		if !r.Outcome.Passed() {
			t.Fatalf("reference run failed at %s: %s", r.Test, r.Detail)
		}
	}

	// Migrating to gcc4.4 activates the bias; validation must fail.
	sl6 := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
	ctx := f.context(t, sl6, "5.34", "run-0002")
	results := runChain(t, spec(), ctx)
	val := results[6]
	if val.Outcome != valtest.OutcomeFail {
		t.Fatalf("uninit-memory bias not caught: %v (%s)", val.Outcome, val.Detail)
	}
}

func TestChainCatchesPtrCastCorruption(t *testing.T) {
	// Reference on 32-bit (where the defect is harmless), then migrate to
	// 64-bit: corrupted events must fail validation.
	f := newFixture(t, platform.TraitPtrIntCast)
	sl532 := platform.Config{OS: "SL5", Arch: platform.I386, Compiler: "gcc4.1"}
	ref := f.context(t, sl532, "5.34", "run-0001")
	for _, r := range runChain(t, spec(), ref) {
		if !r.Outcome.Passed() {
			t.Fatalf("32-bit reference run failed at %s: %s", r.Test, r.Detail)
		}
	}
	ctx := f.context(t, platform.ReferenceConfig(), "5.34", "run-0002")
	results := runChain(t, spec(), ctx)
	val := results[6]
	if val.Outcome != valtest.OutcomeFail {
		t.Fatalf("64-bit corruption not caught: %v (%s)", val.Outcome, val.Detail)
	}
}

func TestChainCrashesOnAliasingUnderOptimizer(t *testing.T) {
	f := newFixture(t, platform.TraitStrictAliasing)
	ref := f.context(t, platform.ReferenceConfig(), "5.34", "run-0001")
	for _, r := range runChain(t, spec(), ref) {
		if !r.Outcome.Passed() {
			t.Fatalf("gcc4.1 run failed at %s: %s", r.Test, r.Detail)
		}
	}
	sl6 := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
	ctx := f.context(t, sl6, "5.34", "run-0002")
	results := runChain(t, spec(), ctx)
	// The reco stage must error; downstream stages skip.
	if results[2].Outcome != valtest.OutcomeError {
		t.Fatalf("reco = %v (%s), want error", results[2].Outcome, results[2].Detail)
	}
	for _, r := range results[3:] {
		if r.Outcome != valtest.OutcomeSkip {
			t.Fatalf("%s = %v, want skip after crash", r.Test, r.Outcome)
		}
	}
}

func TestChainCrossRevisionUsesChi2(t *testing.T) {
	f := newFixture(t)
	ref := f.context(t, platform.ReferenceConfig(), "5.26", "run-0001") // NumericRev 1
	_ = runChain(t, spec(), ref)

	// New ROOT revision: smearing stream changes, histograms differ
	// bin-by-bin but are statistically compatible — validation must pass
	// via the chi² path.
	ctx := f.context(t, platform.ReferenceConfig(), "5.34", "run-0002") // NumericRev 3
	results := runChain(t, spec(), ctx)
	val := results[6]
	if val.Outcome != valtest.OutcomePass {
		t.Fatalf("cross-revision validation failed: %s", val.Detail)
	}
	if val.Statistic == 0 {
		t.Fatal("cross-revision comparison should not be bit-identical")
	}
}

func TestChainSkipsWhenStagePackageBroken(t *testing.T) {
	f := newFixture(t, platform.TraitCxx11) // h1reco cannot build on gcc4.1
	ctx := f.context(t, platform.ReferenceConfig(), "5.34", "run-0001")
	results := runChain(t, spec(), ctx)
	if results[2].Outcome != valtest.OutcomeSkip {
		t.Fatalf("reco = %v, want skip when package failed to build", results[2].Outcome)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},
		{Name: "x"},
		func() Spec { s := DefaultSpec("x", 10, 1); s.RelTol = 0; return s }(),
		func() Spec { s := DefaultSpec("x", 10, 1); s.Gen.ResonanceMass = -1; return s }(),
	}
	for i, sp := range bad {
		if _, err := sp.Tests(); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestTestsWiring(t *testing.T) {
	sp := spec()
	tests, err := sp.Tests()
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) != 7 {
		t.Fatalf("tests = %d", len(tests))
	}
	if tests[0].DependsOn() != nil {
		t.Fatal("gen stage has dependencies")
	}
	for i := 1; i < len(tests); i++ {
		deps := tests[i].DependsOn()
		if len(deps) != 1 || deps[0] != tests[i-1].Name() {
			t.Fatalf("stage %d deps = %v", i, deps)
		}
		if tests[i].Category() != valtest.CatChain {
			t.Fatalf("stage %d category = %v", i, tests[i].Category())
		}
	}
}

func TestStageStrings(t *testing.T) {
	want := []string{"gen", "sim", "reco", "ods", "hat", "analysis", "validate"}
	for i, st := range Stages() {
		if st.String() != want[i] {
			t.Errorf("stage %d = %q", i, st.String())
		}
	}
}
