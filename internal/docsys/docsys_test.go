package docsys

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hepsim"
	"repro/internal/storage"
)

func TestArchiveAddGetBody(t *testing.T) {
	a := NewArchive(storage.NewStore())
	id, err := a.Add("H1", CatPublication, "Measurement of D* production",
		"Inclusive D* meson cross sections in ep collisions", 2011,
		[]byte("%PDF-1.4 ..."))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "h1-publication-") {
		t.Fatalf("id = %q", id)
	}
	doc, err := a.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Title != "Measurement of D* production" || doc.Year != 2011 {
		t.Fatalf("doc = %+v", doc)
	}
	body, err := a.Body(id)
	if err != nil || !strings.HasPrefix(string(body), "%PDF") {
		t.Fatalf("body = %q, %v", body, err)
	}
}

func TestArchiveValidation(t *testing.T) {
	a := NewArchive(storage.NewStore())
	if _, err := a.Add("", CatNote, "title", "", 2013, nil); err == nil {
		t.Error("empty experiment accepted")
	}
	if _, err := a.Add("H1", CatNote, "", "", 2013, nil); err == nil {
		t.Error("empty title accepted")
	}
	if _, err := a.Get("ghost"); err == nil {
		t.Error("unknown document returned")
	}
}

func TestArchiveSearch(t *testing.T) {
	a := NewArchive(storage.NewStore())
	mustAdd := func(exp string, cat Category, title, abstract string) {
		t.Helper()
		if _, err := a.Add(exp, cat, title, abstract, 2012, nil); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("H1", CatPublication, "Diffractive DIS at HERA", "measurement of diffractive structure functions")
	mustAdd("H1", CatThesis, "A search for leptoquarks", "first generation leptoquark limits")
	mustAdd("ZEUS", CatPublication, "Diffractive photoproduction", "diffractive cross sections")

	// Term search, case-insensitive, across title and abstract.
	hits, err := a.Search("", "diffractive")
	if err != nil || len(hits) != 2 {
		t.Fatalf("search diffractive = %d docs, %v", len(hits), err)
	}
	// Experiment filter.
	hits, _ = a.Search("H1", "diffractive")
	if len(hits) != 1 || hits[0].Experiment != "H1" {
		t.Fatalf("H1 diffractive = %v", hits)
	}
	// Multi-term AND.
	hits, _ = a.Search("", "leptoquark", "generation")
	if len(hits) != 1 || hits[0].Category != CatThesis {
		t.Fatalf("multi-term = %v", hits)
	}
	// No match.
	if hits, _ = a.Search("", "supersymmetry"); len(hits) != 0 {
		t.Fatalf("unexpected hits: %v", hits)
	}
	// Empty query matches everything for the experiment.
	if hits, _ = a.Search("H1"); len(hits) != 2 {
		t.Fatalf("H1 all = %d", len(hits))
	}
	if a.Count() != 3 {
		t.Fatalf("count = %d", a.Count())
	}
	byCat, err := a.CountByCategory()
	if err != nil || byCat[CatPublication] != 2 || byCat[CatThesis] != 1 {
		t.Fatalf("byCat = %v, %v", byCat, err)
	}
}

func sampleSummaries() []hepsim.Summary {
	return []hepsim.Summary{
		{ID: 1, Mass: 29.847, Pt: 14.9235, N: 9},
		{ID: 2, Mass: 31.02, Pt: 15.5, N: 11},
		{ID: 7, Mass: 12.5, Pt: 3.25, N: 4},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	sums := sampleSummaries()
	data, err := ExportCSV(sums)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "event_id,mass_gev,lead_pt_gev,multiplicity") {
		t.Fatalf("missing header: %q", string(data)[:40])
	}
	got, err := ImportCSV(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sums) {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range sums {
		if got[i] != sums[i] {
			t.Fatalf("row %d = %+v, want %+v", i, got[i], sums[i])
		}
	}
}

func TestCSVRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"wrong header": "a,b,c,d\n1,2,3,4\n",
		"bad value":    "event_id,mass_gev,lead_pt_gev,multiplicity\nx,2,3,4\n",
		"short row":    "event_id,mass_gev,lead_pt_gev,multiplicity\n1,2\n",
	}
	for name, in := range cases {
		if _, err := ImportCSV([]byte(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	sums := sampleSummaries()
	data, err := ExportJSON("H1", "outreach sample", sums)
	if err != nil {
		t.Fatal(err)
	}
	exp, got, err := ImportJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if exp != "H1" || len(got) != len(sums) {
		t.Fatalf("import = %q, %d events", exp, len(got))
	}
	for i := range sums {
		if got[i] != sums[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestJSONRejectsForeignData(t *testing.T) {
	if _, _, err := ImportJSON([]byte(`{"format":"something-else","version":1}`)); err == nil {
		t.Error("foreign format accepted")
	}
	if _, _, err := ImportJSON([]byte(`{"format":"dphep-level2-events","version":99}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, _, err := ImportJSON([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCSVProperty(t *testing.T) {
	f := func(id int64, mass, pt float64, n int32) bool {
		// CSV cannot represent NaN/Inf round-trippably in this schema;
		// restrict to finite values as the exporter's domain.
		if mass != mass || pt != pt { // NaN
			return true
		}
		in := []hepsim.Summary{{ID: id, Mass: mass, Pt: pt, N: n}}
		data, err := ExportCSV(in)
		if err != nil {
			return false
		}
		out, err := ImportCSV(data)
		return err == nil && len(out) == 1 && out[0] == in[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
