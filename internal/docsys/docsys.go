// Package docsys implements the complementary preservation initiatives
// of DPHEP levels 1 and 2 (Table 1): "documentation (level 1), outreach
// and simplified formats for data exchange (level 2)". The paper notes
// that "most collaborations involved in DPHEP pursue some form of level
// 1 and 2 strategies" alongside the technical levels 3–4 the sp-system
// serves.
//
// Level 1 is a documentation archive on the common storage: documents
// with categories, stable identifiers and full-text search over titles
// and abstracts — the "publication related info search" use case.
//
// Level 2 is a simplified-format exporter: HAT-level event summaries
// rendered to self-describing CSV and JSON that need no experiment
// software to read — the "outreach, simple training analyses" use case.
package docsys

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/hepsim"
	"repro/internal/runner"
	"repro/internal/storage"
)

// Category classifies archived documentation, following the paper's
// "various types of documentation, covering all facets of an
// experiment".
type Category int

const (
	// CatPublication is a journal paper or preprint.
	CatPublication Category = iota
	// CatThesis is a PhD or diploma thesis.
	CatThesis
	// CatManual is software or detector documentation.
	CatManual
	// CatNote is an internal analysis note.
	CatNote
	// CatMeeting is preserved meeting material (agendas, slides).
	CatMeeting
	numCategories int = iota
)

var categoryNames = [...]string{"publication", "thesis", "manual", "note", "meeting"}

// String returns the category's lower-case name.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Document is one archived item.
type Document struct {
	// ID is the archive identifier, e.g. "H1-pub-0042", assigned by the
	// archive.
	ID string `json:"id"`
	// Experiment owns the document.
	Experiment string `json:"experiment"`
	// Category classifies it.
	Category Category `json:"category"`
	// Title and Abstract are the searchable text.
	Title    string `json:"title"`
	Abstract string `json:"abstract"`
	// Year is the publication year.
	Year int `json:"year"`
	// BodyKey is the storage key of the full document body.
	BodyKey string `json:"body_key"`
}

// Storage namespaces of the documentation archive.
const (
	docIndexNS = "docs-index"
	docBodyNS  = "docs-body"
)

// Archive is the level 1 documentation store over the common storage.
type Archive struct {
	store *storage.Store
}

// NewArchive returns an archive using the given common storage.
func NewArchive(store *storage.Store) *Archive { return &Archive{store: store} }

// Add archives a document body with its metadata and returns the
// assigned document ID.
func (a *Archive) Add(experiment string, cat Category, title, abstract string, year int, body []byte) (string, error) {
	if experiment == "" || title == "" {
		return "", fmt.Errorf("docsys: experiment and title are required")
	}
	seq := len(a.store.List(docIndexNS)) + 1
	id := fmt.Sprintf("%s-%s-%04d", strings.ToLower(experiment), cat, seq)

	bodyKey := id + "/body"
	if _, err := a.store.Put(docBodyNS, bodyKey, body); err != nil {
		return "", err
	}
	doc := Document{
		ID:         id,
		Experiment: experiment,
		Category:   cat,
		Title:      title,
		Abstract:   abstract,
		Year:       year,
		BodyKey:    bodyKey,
	}
	meta, err := json.Marshal(doc)
	if err != nil {
		return "", err
	}
	if _, err := a.store.Put(docIndexNS, id, meta); err != nil {
		return "", err
	}
	return id, nil
}

// Get returns a document's metadata by ID.
func (a *Archive) Get(id string) (*Document, error) {
	data, err := a.store.Get(docIndexNS, id)
	if err != nil {
		return nil, fmt.Errorf("docsys: %w", err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("docsys: corrupt index entry %s: %w", id, err)
	}
	return &doc, nil
}

// Body returns a document's archived body.
func (a *Archive) Body(id string) ([]byte, error) {
	doc, err := a.Get(id)
	if err != nil {
		return nil, err
	}
	return a.store.Get(docBodyNS, doc.BodyKey)
}

// Count returns the number of archived documents.
func (a *Archive) Count() int { return len(a.store.List(docIndexNS)) }

// Search returns documents whose title or abstract contains every term
// (case-insensitive), sorted by ID — the level 1 "publication related
// info search" use case. An empty query matches everything.
func (a *Archive) Search(experiment string, terms ...string) ([]*Document, error) {
	var out []*Document
	for _, id := range a.store.List(docIndexNS) {
		doc, err := a.Get(id)
		if err != nil {
			return nil, err
		}
		if experiment != "" && doc.Experiment != experiment {
			continue
		}
		haystack := strings.ToLower(doc.Title + " " + doc.Abstract)
		match := true
		for _, term := range terms {
			if !strings.Contains(haystack, strings.ToLower(term)) {
				match = false
				break
			}
		}
		if match {
			out = append(out, doc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return runner.CompareIDs(out[i].ID, out[j].ID) < 0 })
	return out, nil
}

// CountByCategory tallies archived documents per category.
func (a *Archive) CountByCategory() (map[Category]int, error) {
	out := make(map[Category]int)
	for _, id := range a.store.List(docIndexNS) {
		doc, err := a.Get(id)
		if err != nil {
			return nil, err
		}
		out[doc.Category]++
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Level 2: simplified formats.

// csvHeader is the column layout of the level 2 CSV export.
var csvHeader = []string{"event_id", "mass_gev", "lead_pt_gev", "multiplicity"}

// ExportCSV renders HAT-level summaries as a self-describing CSV — a
// format any spreadsheet or teaching environment reads without
// experiment software.
func ExportCSV(sums []hepsim.Summary) ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(csvHeader); err != nil {
		return nil, err
	}
	for _, s := range sums {
		rec := []string{
			strconv.FormatInt(s.ID, 10),
			strconv.FormatFloat(s.Mass, 'g', 17, 64),
			strconv.FormatFloat(s.Pt, 'g', 17, 64),
			strconv.FormatInt(int64(s.N), 10),
		}
		if err := w.Write(rec); err != nil {
			return nil, err
		}
	}
	w.Flush()
	return buf.Bytes(), w.Error()
}

// ImportCSV parses a level 2 CSV export back into summaries, verifying
// the header.
func ImportCSV(data []byte) ([]hepsim.Summary, error) {
	r := csv.NewReader(bytes.NewReader(data))
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("docsys: malformed CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("docsys: CSV has no header")
	}
	if len(rows[0]) != len(csvHeader) {
		return nil, fmt.Errorf("docsys: CSV header has %d columns, want %d", len(rows[0]), len(csvHeader))
	}
	for i, col := range csvHeader {
		if rows[0][i] != col {
			return nil, fmt.Errorf("docsys: CSV column %d is %q, want %q", i, rows[0][i], col)
		}
	}
	sums := make([]hepsim.Summary, 0, len(rows)-1)
	for i, row := range rows[1:] {
		id, err1 := strconv.ParseInt(row[0], 10, 64)
		mass, err2 := strconv.ParseFloat(row[1], 64)
		pt, err3 := strconv.ParseFloat(row[2], 64)
		n, err4 := strconv.ParseInt(row[3], 10, 32)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("docsys: CSV row %d unparsable", i+2)
		}
		sums = append(sums, hepsim.Summary{ID: id, Mass: mass, Pt: pt, N: int32(n)})
	}
	return sums, nil
}

// jsonExport is the level 2 JSON envelope: self-describing, versioned.
type jsonExport struct {
	Format      string           `json:"format"`
	Version     int              `json:"version"`
	Experiment  string           `json:"experiment"`
	Description string           `json:"description"`
	Events      []hepsim.Summary `json:"events"`
}

// ExportJSON renders HAT-level summaries as self-describing JSON with
// provenance, the exchange format for the level 2 use case.
func ExportJSON(experiment, description string, sums []hepsim.Summary) ([]byte, error) {
	return json.MarshalIndent(jsonExport{
		Format:      "dphep-level2-events",
		Version:     1,
		Experiment:  experiment,
		Description: description,
		Events:      sums,
	}, "", "  ")
}

// ImportJSON parses a level 2 JSON export, verifying the format tag.
func ImportJSON(data []byte) (experiment string, sums []hepsim.Summary, err error) {
	var ex jsonExport
	if err := json.Unmarshal(data, &ex); err != nil {
		return "", nil, fmt.Errorf("docsys: malformed JSON export: %w", err)
	}
	if ex.Format != "dphep-level2-events" {
		return "", nil, fmt.Errorf("docsys: not a level 2 export (format %q)", ex.Format)
	}
	if ex.Version != 1 {
		return "", nil, fmt.Errorf("docsys: unsupported export version %d", ex.Version)
	}
	return ex.Experiment, ex.Events, nil
}
