// Package report renders the sp-system's status pages, reproducing the
// paper's §3.3: "Script-based web pages are used to record and display
// available validation runs for a given description and indicate the
// status of the compilation for the individual packages or tests within
// table cells, which are linked to a corresponding output file."
//
// Two renderers are provided: a fixed-width text matrix (the form of
// Figure 3, suitable for terminals and logs) and HTML pages with linked
// cells, written onto the common storage under the "web" namespace —
// the modern equivalent of the paper's script-generated pages.
package report

import (
	"fmt"
	"html/template"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/bookkeep"
	"repro/internal/runner"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// TextMatrix renders the Figure 3 status matrix: one row per
// (experiment, configuration, externals) cell with outcome counts and
// health.
func TextMatrix(cells []bookkeep.Cell) string {
	return TextMatrixNoted(cells, nil)
}

// TextMatrixNoted is TextMatrix with an extra per-cell NOTE column
// supplied by note — how `spsys campaign` and spd surface "skipped:
// up-to-date" cells after an incremental campaign. A nil note renders
// the plain matrix.
func TextMatrixNoted(cells []bookkeep.Cell, note func(bookkeep.Cell) string) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	header := "EXPERIMENT\tCONFIGURATION\tEXTERNALS\tTESTS\tPASS\tFAIL\tSKIP\tERROR\tRUNS\tSTATUS"
	if note != nil {
		header += "\tNOTE"
	}
	fmt.Fprintln(tw, header)
	lastExp := ""
	for _, c := range cells {
		exp := c.Experiment
		if exp == lastExp {
			exp = ""
		} else {
			lastExp = exp
		}
		status := "OK"
		if !c.Healthy() {
			status = "ATTENTION"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s",
			exp, c.Config, c.Externals, c.Total(), c.Pass, c.Fail, c.Skip, c.Error, c.Runs, status)
		if note != nil {
			fmt.Fprintf(tw, "\t%s", note(c))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return b.String()
}

// TextRun renders one run's job table.
func TextRun(rec *runner.RunRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Run %s — %s\n", rec.RunID, rec.Description)
	fmt.Fprintf(&b, "experiment=%s config=%s externals=%s revision=%d time=%s\n",
		rec.Experiment, rec.Config, rec.Externals, rec.RepoRevision,
		time.Unix(rec.Timestamp, 0).UTC().Format(time.RFC3339))
	counts := rec.Counts()
	fmt.Fprintf(&b, "jobs=%d pass=%d fail=%d skip=%d error=%d wall=%v serial=%v\n\n",
		len(rec.Jobs), counts[valtest.OutcomePass], counts[valtest.OutcomeFail],
		counts[valtest.OutcomeSkip], counts[valtest.OutcomeError], rec.WallCost, rec.SerialCost)

	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "JOB\tTEST\tCATEGORY\tOUTCOME\tDETAIL")
	for _, j := range rec.Jobs {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n",
			j.JobID, j.Result.Test, j.Result.Category, j.Result.Outcome, j.Result.Detail)
	}
	tw.Flush()
	return b.String()
}

// TextScrubHistory renders the archive's integrity-scrub verdicts,
// newest first: one line per recorded scrub run with its page/outcome
// counts. This is the operator's bit-rot ledger — a FAILED line names a
// scrub run whose job table (TextRun) identifies the damaged blobs.
func TextScrubHistory(metas []*bookkeep.RunMeta) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "RUN\tTIME\tPAGES\tPASS\tFAIL\tERROR\tVERDICT\tDESCRIPTION")
	for i := len(metas) - 1; i >= 0; i-- {
		m := metas[i]
		verdict := "clean"
		if !m.Passed {
			verdict = "FAILED"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%s\t%s\n",
			m.RunID, time.Unix(m.Timestamp, 0).UTC().Format(time.RFC3339),
			m.Jobs, m.Pass, m.Fail, m.Error, verdict, m.Description)
	}
	tw.Flush()
	return b.String()
}

// TextDiff renders a diff with its attribution — the examination report
// the paper prescribes after a failed validation.
func TextDiff(d *bookkeep.Diff) string {
	var b strings.Builder
	attr := bookkeep.Classify(d)
	fmt.Fprintf(&b, "Diff %s -> %s\n", d.BaselineRun, d.CurrentRun)
	fmt.Fprintf(&b, "changed inputs: config=%t externals=%t experiment-sw=%t\n",
		d.ConfigChanged, d.ExternalsChanged, d.RevisionChanged)
	fmt.Fprintf(&b, "attribution: %s (intervention: %s)\n", attr, attr.Responsible())
	if len(d.Regressions) == 0 {
		b.WriteString("no regressions\n")
	}
	for _, r := range d.Regressions {
		fmt.Fprintf(&b, "REGRESSION %s: %v -> %v  %s\n", r.Test, r.Before, r.After, r.Detail)
	}
	for _, f := range d.Fixes {
		fmt.Fprintf(&b, "fixed      %s: %v -> %v\n", f.Test, f.Before, f.After)
	}
	for _, a := range d.Added {
		fmt.Fprintf(&b, "added      %s\n", a)
	}
	for _, r := range d.Removed {
		fmt.Fprintf(&b, "removed    %s\n", r)
	}
	return b.String()
}

var matrixTmpl = template.Must(template.New("matrix").Parse(`<!DOCTYPE html>
<html><head><title>{{.Title}}</title><style>
table { border-collapse: collapse; font-family: sans-serif; }
td, th { border: 1px solid #888; padding: 4px 8px; }
.ok { background: #9e9; } .bad { background: #e99; }
</style></head><body>
<h1>{{.Title}}</h1>
<p>{{.Runs}} validation runs recorded.</p>
<table>
<tr><th>Experiment</th><th>Configuration</th><th>Externals</th><th>Pass</th><th>Fail</th><th>Skip</th><th>Error</th><th>Latest run</th>{{if .HasNotes}}<th>Freshness</th>{{end}}</tr>
{{range .Cells}}<tr class="{{if .Healthy}}ok{{else}}bad{{end}}">
<td>{{.Experiment}}</td><td>{{.Config}}</td><td>{{.Externals}}</td>
<td>{{.Pass}}</td><td>{{.Fail}}</td><td>{{.Skip}}</td><td>{{.Error}}</td>
<td><a href="{{.Href}}">{{.RunID}}</a></td>{{if $.HasNotes}}<td>{{.Note}}</td>{{end}}
</tr>{{end}}
</table></body></html>
`))

var runTmpl = template.Must(template.New("run").Parse(`<!DOCTYPE html>
<html><head><title>{{.RunID}}</title><style>
table { border-collapse: collapse; font-family: sans-serif; }
td, th { border: 1px solid #888; padding: 4px 8px; }
.pass { background: #9e9; } .fail { background: #e99; } .skip { background: #eeb; } .error { background: #e9b; }
</style></head><body>
<h1>Run {{.RunID}}</h1>
<p>{{.Description}} — experiment {{.Experiment}}, {{.Config}}, {{.Externals}}, software revision {{.RepoRevision}}</p>
<table>
<tr><th>Job</th><th>Test</th><th>Category</th><th>Outcome</th><th>Detail</th><th>Output</th></tr>
{{range .Jobs}}<tr class="{{.Result.Outcome}}">
<td>{{.JobID}}</td><td>{{.Result.Test}}</td><td>{{.Result.Category}}</td>
<td>{{.Result.Outcome}}</td><td>{{.Result.Detail}}</td>
<td>{{if .OutputHref}}<a href="{{.OutputHref}}">output</a>{{end}}</td>
</tr>{{end}}
</table></body></html>
`))

// matrixRow is one matrix table row: the cell plus the link target of
// its latest-run column, so the same template serves both the static
// site (relative "run-0001.html" pages) and spserve ("/runs/run-0001"),
// and an optional freshness note.
type matrixRow struct {
	bookkeep.Cell
	Href string
	Note string
}

// HTMLMatrixLinked renders the status matrix page with runHref
// supplying each cell's latest-run link target.
func HTMLMatrixLinked(title string, cells []bookkeep.Cell, totalRuns int, runHref func(runID string) string) (string, error) {
	return HTMLMatrixNoted(title, cells, totalRuns, runHref, nil)
}

// HTMLMatrixNoted is HTMLMatrixLinked with a per-cell freshness column
// supplied by note — how spserve surfaces the cells the producer's last
// plan skipped as up-to-date. A nil note omits the column.
func HTMLMatrixNoted(title string, cells []bookkeep.Cell, totalRuns int, runHref func(runID string) string, note func(bookkeep.Cell) string) (string, error) {
	rows := make([]matrixRow, len(cells))
	for i, c := range cells {
		rows[i] = matrixRow{Cell: c, Href: runHref(c.RunID)}
		if note != nil {
			rows[i].Note = note(c)
		}
	}
	var b strings.Builder
	err := matrixTmpl.Execute(&b, struct {
		Title    string
		Runs     int
		HasNotes bool
		Cells    []matrixRow
	}{title, totalRuns, note != nil, rows})
	if err != nil {
		return "", fmt.Errorf("report: %w", err)
	}
	return b.String(), nil
}

// HTMLMatrix renders the status matrix page for the static site, where
// run pages sit next to the index.
func HTMLMatrix(title string, cells []bookkeep.Cell, totalRuns int) (string, error) {
	return HTMLMatrixLinked(title, cells, totalRuns, func(runID string) string { return runID + ".html" })
}

// runRow is one job table row: the job record plus its output link
// target ("" for no link).
type runRow struct {
	runner.JobRecord
	OutputHref string
}

// HTMLRunLinked renders one run's page with outputHref supplying each
// job's output link target from its storage key ("" suppresses the
// link).
func HTMLRunLinked(rec *runner.RunRecord, outputHref func(outputKey string) string) (string, error) {
	rows := make([]runRow, len(rec.Jobs))
	for i, j := range rec.Jobs {
		rows[i] = runRow{JobRecord: j}
		if j.Result.OutputKey != "" {
			rows[i].OutputHref = outputHref(j.Result.OutputKey)
		}
	}
	var b strings.Builder
	err := runTmpl.Execute(&b, struct {
		*runner.RunRecord
		Jobs []runRow
	}{rec, rows})
	if err != nil {
		return "", fmt.Errorf("report: %w", err)
	}
	return b.String(), nil
}

// HTMLRun renders one run's page for the static site, with cells linked
// to output blobs under the relative blob/ prefix.
func HTMLRun(rec *runner.RunRecord) (string, error) {
	return HTMLRunLinked(rec, func(key string) string { return "blob/" + key })
}

// WebNS is the storage namespace the generated site is written to.
const WebNS = "web"

// siteFormatNS/siteFormatKey name the marker binding recording which
// site format (template revision) the stored pages were rendered with.
// It lives outside WebNS so the web namespace holds exactly the pages.
const (
	siteFormatNS  = "meta"
	siteFormatKey = "site_format"
	// siteFormat identifies the current page templates. Bump it when a
	// template changes so PublishSiteIndexed re-renders pages it would
	// otherwise skip as already stored (run records are immutable, so a
	// stored page only goes stale when the rendering itself changes).
	siteFormat = "1"
)

// SiteFormat returns the current site format marker. Besides gating
// PublishSiteIndexed's re-renders, it is folded into the status
// service's response validators (internal/serve), so bumping the
// templates invalidates both the stored site and every client-held
// ETag at once.
func SiteFormat() string { return siteFormat }

// RenderSite renders the whole static site — index.html plus one page
// per run — from the index, loading each full record from storage on
// demand (the index holds only metas). The map is keyed by page name.
// This materializes every page at once; it backs the batch exporter
// (spreport -out). The incremental publisher below renders only what
// the store does not already hold.
func RenderSite(x *bookkeep.Index, title string) (map[string][]byte, error) {
	pages := make(map[string][]byte)
	index, err := HTMLMatrix(title, x.Matrix(), x.TotalRuns())
	if err != nil {
		return nil, err
	}
	pages["index.html"] = []byte(index)
	for _, m := range x.Runs() {
		rec, err := x.Run(m.RunID)
		if err != nil {
			return nil, err
		}
		page, err := HTMLRun(rec)
		if err != nil {
			return nil, err
		}
		pages[rec.RunID+".html"] = []byte(page)
	}
	return pages, nil
}

// PublishStats summarizes one PublishSite pass.
type PublishStats struct {
	// Pages is the number of pages the site comprises.
	Pages int
	// Written is how many were stored because their content changed (or
	// was new); Skipped counts pages whose stored content was already
	// identical. Republishing after each run of a long campaign is
	// therefore incremental: old runs' pages hash-match and are skipped.
	Written, Skipped int
}

// PublishSiteIndexed regenerates the site from the (already refreshed)
// index onto the common storage, doing O(what changed) work:
//
//   - A run page already bound in WebNS is skipped without loading the
//     record or rendering anything — run records are immutable, so a
//     stored page can only go stale if the templates change, which the
//     site-format marker detects (then everything re-renders once, with
//     hash-skip writes).
//   - A missing run page loads its record on demand and renders it.
//   - The index page is always re-rendered (it summarizes the whole
//     matrix) but only written when its content hash changed.
//
// No step materializes the full run list or all pages in memory, so a
// republish over a million-run archive costs the index page plus the
// new runs.
func PublishSiteIndexed(store *storage.Store, x *bookkeep.Index, title string) (PublishStats, error) {
	var stats PublishStats
	storedFormat, _ := store.Get(siteFormatNS, siteFormatKey)
	rerenderAll := string(storedFormat) != siteFormat

	publish := func(name string, content []byte) error {
		if prior, err := store.Hash(WebNS, name); err == nil && prior == storage.HashBytes(content) {
			stats.Skipped++
			return nil
		}
		if _, err := store.Put(WebNS, name, content); err != nil {
			return err
		}
		stats.Written++
		return nil
	}

	index, err := HTMLMatrix(title, x.Matrix(), x.TotalRuns())
	if err != nil {
		return stats, err
	}
	stats.Pages++
	if err := publish("index.html", []byte(index)); err != nil {
		return stats, err
	}

	const pageSize = 512
	for after, done := "", false; !done; {
		metas, next := x.RunsPage(after, pageSize)
		for _, m := range metas {
			stats.Pages++
			name := m.RunID + ".html"
			if !rerenderAll && store.Exists(WebNS, name) {
				stats.Skipped++
				continue
			}
			rec, err := x.Run(m.RunID)
			if err != nil {
				return stats, err
			}
			page, err := HTMLRun(rec)
			if err != nil {
				return stats, err
			}
			if err := publish(name, []byte(page)); err != nil {
				return stats, err
			}
		}
		after, done = next, next == ""
	}
	if rerenderAll {
		if _, err := store.Put(siteFormatNS, siteFormatKey, []byte(siteFormat)); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// PublishSite regenerates the whole site onto the common storage,
// returning the number of pages the site comprises. This is the
// "script-based web pages" machinery: derived entirely from the
// bookkeeping records, rerunnable at any time. Unchanged pages are
// skipped (see PublishSiteIndexed); callers that want the
// written/skipped split should build an index and use that directly.
func PublishSite(store *storage.Store, title string) (int, error) {
	x, err := bookkeep.BuildIndex(store)
	if err != nil {
		return 0, err
	}
	stats, err := PublishSiteIndexed(store, x, title)
	return stats.Pages, err
}

// TextRunsByDescription renders the paper's "available validation runs
// for a given description" view: runs grouped by their description tag,
// in execution order within each group.
func TextRunsByDescription(book *bookkeep.Book) (string, error) {
	runs, err := book.Runs()
	if err != nil {
		return "", err
	}
	groups := make(map[string][]*runner.RunRecord)
	var order []string
	for _, r := range runs {
		if _, seen := groups[r.Description]; !seen {
			order = append(order, r.Description)
		}
		groups[r.Description] = append(groups[r.Description], r)
	}
	var b strings.Builder
	for _, desc := range order {
		fmt.Fprintf(&b, "%q (%d runs)\n", desc, len(groups[desc]))
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		for _, r := range groups[desc] {
			counts := r.Counts()
			status := "OK"
			if !r.Passed() {
				status = "FAILED"
			}
			fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\tpass=%d fail=%d\t%s\n",
				r.RunID, r.Experiment, r.Config, r.Externals,
				counts[valtest.OutcomePass], counts[valtest.OutcomeFail], status)
		}
		tw.Flush()
	}
	return b.String(), nil
}

// ExperimentSummary is a compact per-experiment rollup used by the CLI.
type ExperimentSummary struct {
	Experiment string
	Cells      int
	Healthy    int
	TotalRuns  int
}

// Summarize rolls the matrix up per experiment.
func Summarize(cells []bookkeep.Cell) []ExperimentSummary {
	byExp := make(map[string]*ExperimentSummary)
	for _, c := range cells {
		s, ok := byExp[c.Experiment]
		if !ok {
			s = &ExperimentSummary{Experiment: c.Experiment}
			byExp[c.Experiment] = s
		}
		s.Cells++
		if c.Healthy() {
			s.Healthy++
		}
		s.TotalRuns += c.Runs
	}
	out := make([]ExperimentSummary, 0, len(byExp))
	for _, s := range byExp {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Experiment < out[j].Experiment })
	return out
}
