package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bookkeep"
	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/swrepo"
	"repro/internal/valtest"
)

func sampleCells() []bookkeep.Cell {
	return []bookkeep.Cell{
		{Experiment: "H1", Config: "SL5/64bit gcc4.1", Externals: "ROOT-5.34",
			RunID: "run-0001", Pass: 500, Runs: 120},
		{Experiment: "H1", Config: "SL6/64bit gcc4.4", Externals: "ROOT-5.34",
			RunID: "run-0002", Pass: 480, Fail: 12, Skip: 8, Runs: 40},
		{Experiment: "ZEUS", Config: "SL6/64bit gcc4.4", Externals: "ROOT-5.34",
			RunID: "run-0003", Pass: 150, Runs: 80},
	}
}

func minimalCtx(store *storage.Store) *valtest.Context {
	cat := externals.NewCatalogue()
	root, _ := cat.Get(externals.ROOT, "5.34")
	return &valtest.Context{
		Store:     store,
		Env:       storage.Env{},
		Config:    platform.ReferenceConfig(),
		Registry:  platform.NewRegistry(),
		Externals: externals.MustSet(root),
		Repo:      swrepo.NewRepository("H1"),
	}
}

func sampleRun(t *testing.T) *runner.RunRecord {
	t.Helper()
	store := storage.NewStore()
	rn := runner.New(store, simclock.New())
	suite := valtest.NewSuite("H1")
	suite.MustAdd(&valtest.FuncTest{TestName: "ok-test", Cat: valtest.CatStandalone,
		Fn: func(*valtest.Context) valtest.Result {
			return valtest.Result{Outcome: valtest.OutcomePass, Detail: "fine", OutputKey: "some/key", Cost: time.Second}
		}})
	suite.MustAdd(&valtest.FuncTest{TestName: "bad-test", Cat: valtest.CatStandalone,
		Fn: func(*valtest.Context) valtest.Result {
			return valtest.Result{Outcome: valtest.OutcomeFail, Detail: "broke"}
		}})
	rec, err := rn.Run(suite, minimalCtx(store), "demo run")
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestTextMatrixShape(t *testing.T) {
	out := TextMatrix(sampleCells())
	for _, want := range []string{"EXPERIMENT", "H1", "ZEUS", "SL6/64bit gcc4.4", "ATTENTION", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q:\n%s", want, out)
		}
	}
	// The experiment name appears once per group, not per row.
	if strings.Count(out, "H1") != 1 {
		t.Errorf("H1 should appear once (grouped):\n%s", out)
	}
}

func TestTextRun(t *testing.T) {
	rec := sampleRun(t)
	out := TextRun(rec)
	for _, want := range []string{rec.RunID, "demo run", "ok-test", "bad-test", "pass=1 fail=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("run report missing %q:\n%s", want, out)
		}
	}
}

func TestTextDiff(t *testing.T) {
	d := &bookkeep.Diff{
		BaselineRun: "run-0001", CurrentRun: "run-0002",
		ConfigChanged: true,
		Regressions: []bookkeep.TestDiff{
			{Test: "chain/reco", Before: valtest.OutcomePass, After: valtest.OutcomeFail, Detail: "mass shifted"},
		},
		Fixes: []bookkeep.TestDiff{{Test: "compile/x", Before: valtest.OutcomeFail, After: valtest.OutcomePass}},
	}
	out := TextDiff(d)
	for _, want := range []string{"REGRESSION chain/reco", "mass shifted", "attribution: os", "host IT department", "fixed      compile/x"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff report missing %q:\n%s", want, out)
		}
	}
}

func TestHTMLMatrixEscapingAndLinks(t *testing.T) {
	cells := sampleCells()
	cells[0].Externals = "ROOT<6" // must be escaped
	out, err := HTMLMatrix("sp-system status", cells, 240)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ROOT&lt;6") {
		t.Error("HTML not escaped")
	}
	if !strings.Contains(out, `href="run-0002.html"`) {
		t.Error("cells not linked to run pages")
	}
	if !strings.Contains(out, `class="bad"`) || !strings.Contains(out, `class="ok"`) {
		t.Error("health classes missing")
	}
	if !strings.Contains(out, "240 validation runs") {
		t.Error("run count missing")
	}
}

func TestHTMLRunLinksOutputs(t *testing.T) {
	rec := sampleRun(t)
	out, err := HTMLRun(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `href="blob/some/key"`) {
		t.Error("output link missing")
	}
	if !strings.Contains(out, `class="fail"`) {
		t.Error("fail styling missing")
	}
}

func TestPublishSite(t *testing.T) {
	store := storage.NewStore()
	rn := runner.New(store, simclock.New())
	suite := valtest.NewSuite("H1")
	suite.MustAdd(&valtest.FuncTest{TestName: "t", Cat: valtest.CatStandalone,
		Fn: func(*valtest.Context) valtest.Result {
			return valtest.Result{Outcome: valtest.OutcomePass}
		}})
	if _, err := rn.Run(suite, minimalCtx(store), "r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := rn.Run(suite, minimalCtx(store), "r2"); err != nil {
		t.Fatal(err)
	}

	pages, err := PublishSite(store, "sp-system")
	if err != nil {
		t.Fatal(err)
	}
	if pages != 3 { // index + 2 runs
		t.Fatalf("pages = %d, want 3", pages)
	}
	index, err := store.Get(WebNS, "index.html")
	if err != nil || !strings.Contains(string(index), "sp-system") {
		t.Fatalf("index page missing: %v", err)
	}
	if keys := store.List(WebNS); len(keys) != 3 {
		t.Fatalf("web namespace = %v", keys)
	}
}

// TestPublishSiteIncremental is the regression test for the
// rewrite-everything bug: republishing an unchanged store must skip
// every page, and recording one more run must rewrite only the index
// and the new run's page.
func TestPublishSiteIncremental(t *testing.T) {
	store := storage.NewStore()
	rn := runner.New(store, simclock.New())
	suite := valtest.NewSuite("H1")
	suite.MustAdd(&valtest.FuncTest{TestName: "t", Cat: valtest.CatStandalone,
		Fn: func(*valtest.Context) valtest.Result {
			return valtest.Result{Outcome: valtest.OutcomePass}
		}})
	for i := 0; i < 3; i++ {
		if _, err := rn.Run(suite, minimalCtx(store), "r"); err != nil {
			t.Fatal(err)
		}
	}
	x, err := bookkeep.BuildIndex(store)
	if err != nil {
		t.Fatal(err)
	}
	first, err := PublishSiteIndexed(store, x, "sp")
	if err != nil {
		t.Fatal(err)
	}
	if first.Pages != 4 || first.Written != 4 || first.Skipped != 0 {
		t.Fatalf("first publish = %+v", first)
	}

	again, err := PublishSiteIndexed(store, x, "sp")
	if err != nil {
		t.Fatal(err)
	}
	if again.Pages != 4 || again.Written != 0 || again.Skipped != 4 {
		t.Fatalf("unchanged republish = %+v, want all 4 skipped", again)
	}

	// One more run: only the index page and the new run page change.
	if _, err := rn.Run(suite, minimalCtx(store), "r"); err != nil {
		t.Fatal(err)
	}
	if err := x.Refresh(); err != nil {
		t.Fatal(err)
	}
	grown, err := PublishSiteIndexed(store, x, "sp")
	if err != nil {
		t.Fatal(err)
	}
	if grown.Pages != 5 || grown.Written != 2 || grown.Skipped != 3 {
		t.Fatalf("incremental publish = %+v, want 2 written / 3 skipped", grown)
	}
}

func TestHTMLLinkedVariants(t *testing.T) {
	cells := sampleCells()
	out, err := HTMLMatrixLinked("s", cells, 9, func(id string) string { return "/runs/" + id })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `href="/runs/run-0002"`) {
		t.Errorf("custom matrix link missing:\n%s", out)
	}
	rec := sampleRun(t)
	page, err := HTMLRunLinked(rec, func(key string) string { return "/blob/abc123" })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page, `href="/blob/abc123"`) {
		t.Errorf("custom output link missing:\n%s", page)
	}
}

func TestTextRunsByDescription(t *testing.T) {
	store := storage.NewStore()
	rn := runner.New(store, simclock.New())
	suite := valtest.NewSuite("H1")
	suite.MustAdd(&valtest.FuncTest{TestName: "t", Cat: valtest.CatStandalone,
		Fn: func(*valtest.Context) valtest.Result {
			return valtest.Result{Outcome: valtest.OutcomePass}
		}})
	for _, desc := range []string{"SL6 migration", "SL6 migration", "nightly"} {
		if _, err := rn.Run(suite, minimalCtx(store), desc); err != nil {
			t.Fatal(err)
		}
	}
	out, err := TextRunsByDescription(bookkeep.New(store))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"SL6 migration" (2 runs)`) {
		t.Fatalf("grouping missing:\n%s", out)
	}
	if !strings.Contains(out, `"nightly" (1 runs)`) {
		t.Fatalf("nightly group missing:\n%s", out)
	}
	if !strings.Contains(out, "run-0001") || !strings.Contains(out, "OK") {
		t.Fatalf("run rows missing:\n%s", out)
	}
}

func TestSummarize(t *testing.T) {
	sums := Summarize(sampleCells())
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	h1 := sums[0]
	if h1.Experiment != "H1" || h1.Cells != 2 || h1.Healthy != 1 || h1.TotalRuns != 160 {
		t.Fatalf("H1 summary = %+v", h1)
	}
}
