package scrub

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/runner"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// populated returns an on-disk store holding n small distinct blobs.
func populated(t *testing.T, n int) (*storage.Store, []string) {
	t.Helper()
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	hashes := make([]string, n)
	for i := 0; i < n; i++ {
		h, err := st.Put("data", fmt.Sprintf("k%04d", i), []byte(fmt.Sprintf("payload %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		hashes[i] = h
	}
	return st, hashes
}

// runSuite executes the scrub suite over the store through the platform
// driver, like core.Scrub does.
func runSuite(t *testing.T, st *storage.Store, pageSize int) *runner.RunRecord {
	t.Helper()
	suite, err := BuildSuite(st, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	drv := &valtest.PlatformDriver{}
	ctx, err := drv.Provision(valtest.ProvisionRequest{Suite: suite, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := runner.New(st, simclock.New()).RunWith(drv, suite, ctx, "scrub test")
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestScrubCleanArchivePasses(t *testing.T) {
	st, _ := populated(t, 25)
	rec := runSuite(t, st, 10)
	if !rec.Passed() {
		t.Fatalf("clean archive scrub failed: %+v", rec.Counts())
	}
	// 25 data blobs + the meta counter blobs the run itself minted pages
	// at 10/page; at least 3 pages must exist.
	if len(rec.Jobs) < 3 {
		t.Fatalf("scrub of 25+ blobs produced %d pages, want >= 3", len(rec.Jobs))
	}
	if rec.Experiment != Experiment {
		t.Fatalf("scrub run recorded under %q, want %q", rec.Experiment, Experiment)
	}
}

func TestScrubDetectsSingleFlippedByte(t *testing.T) {
	st, hashes := populated(t, 25)
	victim := hashes[7]
	fsb, ok := st.Backend().(*storage.FSBackend)
	if !ok {
		t.Fatalf("backend is %T, want *storage.FSBackend", st.Backend())
	}
	if err := fsb.DamageBlob(victim, 3); err != nil {
		t.Fatal(err)
	}
	rec := runSuite(t, st, 10)
	if rec.Passed() {
		t.Fatal("scrub passed over a damaged blob")
	}
	counts := rec.Counts()
	if counts[valtest.OutcomeFail] != 1 {
		t.Fatalf("want exactly 1 failing page, got %+v", counts)
	}
	var failing *runner.JobRecord
	for i := range rec.Jobs {
		if rec.Jobs[i].Result.Outcome == valtest.OutcomeFail {
			failing = &rec.Jobs[i]
		}
	}
	if !strings.Contains(failing.Result.Detail, victim[:12]) {
		t.Fatalf("failing page detail %q does not name the damaged blob %s", failing.Result.Detail, victim[:12])
	}
	if failing.Result.Statistic != 1 {
		t.Fatalf("corrupt-count statistic = %v, want 1", failing.Result.Statistic)
	}
}

// TestScrubRecordedAsFirstClassRun: the verdict is in the store like
// any validation run — loadable, listed, digested.
func TestScrubRecordedAsFirstClassRun(t *testing.T) {
	st, _ := populated(t, 5)
	rec := runSuite(t, st, 0)
	back, err := runner.LoadRun(st, rec.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if back.Experiment != Experiment || back.InputDigest == "" {
		t.Fatalf("stored scrub run: experiment %q digest %q", back.Experiment, back.InputDigest)
	}
	found := false
	for _, id := range runner.ListRuns(st) {
		if id == rec.RunID {
			found = true
		}
	}
	if !found {
		t.Fatal("scrub run missing from the run listing")
	}
}

// TestScrubFingerprintTracksArchive: growing the archive changes the
// suite fingerprint, so a green scrub never vouches for blobs it did
// not read.
func TestScrubFingerprintTracksArchive(t *testing.T) {
	st, _ := populated(t, 5)
	a, err := BuildSuite(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("data", "new", []byte("grown")); err != nil {
		t.Fatal(err)
	}
	b, err := BuildSuite(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == b.Fingerprint {
		t.Fatalf("fingerprint %q unchanged after the archive grew", a.Fingerprint)
	}
}

func TestScrubEmptyArchive(t *testing.T) {
	st := storage.NewStore()
	suite, err := BuildSuite(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if suite.Len() != 1 {
		t.Fatalf("empty-archive suite has %d tests, want 1 sentinel", suite.Len())
	}
	drv := &valtest.PlatformDriver{}
	ctx, err := drv.Provision(valtest.ProvisionRequest{Suite: suite, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := runner.New(st, simclock.New()).RunWith(drv, suite, ctx, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Passed() {
		t.Fatal("empty-archive scrub did not pass")
	}
}
