// Package scrub builds archive-integrity suites: the periodic bit-rot
// scrubbing DPHEP's bit-preservation guidance prescribes for long-term
// archives, expressed as an ordinary validation suite so its verdicts
// are recorded, indexed and served exactly like experiment runs.
//
// The store is already content-addressed — every blob's name is its
// SHA-256 — and the on-disk backend verifies hashes on read. What no
// read path does is visit blobs nobody is asking for, which is exactly
// where bit rot hides. A scrub suite enumerates the whole archive,
// pages it into standalone tests (parallel, like any standalone
// validation), and re-reads and re-hashes every blob. A flipped byte
// anywhere surfaces as a failing test job naming the damaged blob.
package scrub

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/storage"
	"repro/internal/valtest"
)

// Experiment is the owning "collaboration" of scrub suites in the
// bookkeeping: scrub runs appear in the status matrix under this name.
const Experiment = "SCRUB"

// DefaultPageSize is the number of blobs per scrub test when the caller
// does not choose one.
const DefaultPageSize = 1000

// simulated scrub throughput, for the cost model: reading and hashing
// an archive is I/O work and the simulated wall cost should scale with
// bytes verified like real scrubbing would.
const bytesPerSecond = 256 << 20

// BuildSuite enumerates every blob in the store and returns a suite
// with one standalone test per page of pageSize blobs (DefaultPageSize
// if pageSize < 1). The suite is pure data bound to the blob listing at
// build time: drive it through any valtest.Driver. Each test re-reads
// its page through the context's store — not the enumeration store — so
// a driver that substitutes a client-scoped or fault-injected store is
// scrubbing what its tests actually see.
func BuildSuite(store *storage.Store, pageSize int) (*valtest.Suite, error) {
	if pageSize < 1 {
		pageSize = DefaultPageSize
	}
	hashes, err := store.Backend().ListBlobs()
	if err != nil {
		return nil, fmt.Errorf("scrub: listing archive blobs: %w", err)
	}
	// Backends may list blobs in map order; the test-to-page assignment
	// must be stable for equal archives. Hashes are fixed-width hex, so
	// plain lexicographic order is total.
	sort.Strings(hashes)
	suite := valtest.NewSuite(Experiment)
	// The fingerprint binds the digest to the archive state scrubbed:
	// a grown archive is a different scrub input, so a green scrub of
	// yesterday's blobs never marks today's archive verified.
	suite.Fingerprint = fmt.Sprintf("scrub blobs:%d pagesize:%d", len(hashes), pageSize)
	pages := (len(hashes) + pageSize - 1) / pageSize
	for p := 0; p < pages; p++ {
		page := hashes[p*pageSize : min(len(hashes), (p+1)*pageSize)]
		suite.MustAdd(&valtest.FuncTest{
			TestName: fmt.Sprintf("scrub/page-%04d", p),
			Cat:      valtest.CatStandalone,
			Fn:       pageTest(page),
		})
	}
	if pages == 0 {
		suite.MustAdd(&valtest.FuncTest{
			TestName: "scrub/page-0000",
			Cat:      valtest.CatStandalone,
			Fn: func(*valtest.Context) valtest.Result {
				return valtest.Result{Outcome: valtest.OutcomePass, Detail: "archive empty: 0 blobs verified"}
			},
		})
	}
	return suite, nil
}

// pageTest verifies one page of blobs: every blob must be readable and
// its content must hash back to its name. The backend's own read-time
// verification catches on-disk corruption; re-hashing here additionally
// catches backends (or fault-injection wrappers) that return wrong
// bytes without erroring.
func pageTest(page []string) func(*valtest.Context) valtest.Result {
	return func(ctx *valtest.Context) valtest.Result {
		var corrupt int
		var firstBad, firstErr string
		var bytes int64
		for _, h := range page {
			data, err := ctx.Store.GetBlob(h)
			if err != nil {
				corrupt++
				if firstBad == "" {
					firstBad, firstErr = h, err.Error()
				}
				continue
			}
			bytes += int64(len(data))
			if storage.HashBytes(data) != h {
				corrupt++
				if firstBad == "" {
					firstBad, firstErr = h, "content does not hash to its name"
				}
			}
		}
		res := valtest.Result{
			Statistic: float64(corrupt),
			Cost:      time.Duration(bytes) * time.Second / bytesPerSecond,
		}
		if corrupt > 0 {
			res.Outcome = valtest.OutcomeFail
			res.Detail = fmt.Sprintf("%d of %d blobs corrupt; first: %s (%s)", corrupt, len(page), short(firstBad), firstErr)
			return res
		}
		res.Outcome = valtest.OutcomePass
		res.Detail = fmt.Sprintf("%d blobs verified, %d bytes", len(page), bytes)
		return res
	}
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
