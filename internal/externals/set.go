package externals

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/platform"
)

// Set is a concrete selection of external releases installed together in
// one virtual-machine image: at most one release per product. The
// paper's images carry "the set of external software required by the
// experiments".
type Set struct {
	releases map[Name]*Release
}

// NewSet returns a Set containing the given releases. It returns an error
// if two releases of the same product are supplied: an image installs one
// version of each product.
func NewSet(releases ...*Release) (*Set, error) {
	s := &Set{releases: make(map[Name]*Release, len(releases))}
	for _, r := range releases {
		if prev, dup := s.releases[r.Name]; dup {
			return nil, fmt.Errorf("externals: set contains both %s and %s", prev.ID(), r.ID())
		}
		s.releases[r.Name] = r
	}
	return s, nil
}

// MustSet is NewSet that panics on error, for static configuration.
func MustSet(releases ...*Release) *Set {
	s, err := NewSet(releases...)
	if err != nil {
		panic(err)
	}
	return s
}

// Get returns the installed release of the product and whether one is
// present.
func (s *Set) Get(name Name) (*Release, bool) {
	r, ok := s.releases[name]
	return r, ok
}

// Releases returns the installed releases sorted by product name. A
// nil set has none: repository-less suites (the archive scrub) carry no
// externals, and every label/key path must render them as "(no
// externals)" rather than panic.
func (s *Set) Releases() []*Release {
	if s == nil {
		return nil
	}
	out := make([]*Release, 0, len(s.releases))
	for _, r := range s.releases {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of installed products.
func (s *Set) Len() int { return len(s.releases) }

// ProvidesAPI reports whether any installed release provides the API and,
// if so, which release.
func (s *Set) ProvidesAPI(api string) (*Release, bool) {
	for _, r := range s.releases {
		if r.ProvidesAPI(api) {
			return r, true
		}
	}
	return nil, false
}

// MissingAPIs returns the subset of the given APIs that no installed
// release provides, sorted.
func (s *Set) MissingAPIs(apis []string) []string {
	var missing []string
	for _, api := range apis {
		if _, ok := s.ProvidesAPI(api); !ok {
			missing = append(missing, api)
		}
	}
	sort.Strings(missing)
	return missing
}

// InstallableOn reports whether every release in the set can be installed
// on the configuration, returning the first incompatibility found.
func (s *Set) InstallableOn(cfg platform.Config, reg *platform.Registry) error {
	for _, r := range s.Releases() {
		if err := r.InstallableOn(cfg, reg); err != nil {
			return err
		}
	}
	return nil
}

// NumericRev returns the numeric revision of the installed release of the
// product, or 0 if the product is absent. The physics simulation folds
// this into its deterministic perturbation model.
func (s *Set) NumericRev(name Name) int {
	if r, ok := s.releases[name]; ok {
		return r.NumericRev
	}
	return 0
}

// With returns a copy of the set with the given release replacing any
// installed release of the same product — the operation performed when
// "new OS and software versions [are] integrated into the system".
func (s *Set) With(r *Release) *Set {
	out := &Set{releases: make(map[Name]*Release, len(s.releases)+1)}
	for n, rel := range s.releases {
		out.releases[n] = rel
	}
	out.releases[r.Name] = r
	return out
}

// String renders the set compactly, e.g. "CERNLIB-2006+MCGen-1.4+ROOT-5.34".
func (s *Set) String() string {
	rs := s.Releases()
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.ID()
	}
	if len(parts) == 0 {
		return "(no externals)"
	}
	return strings.Join(parts, "+")
}

// Key returns a filesystem-safe identifier for the set, used in storage
// namespaces and artifact paths.
func (s *Set) Key() string {
	return strings.ToLower(strings.ReplaceAll(s.String(), "+", "_"))
}
