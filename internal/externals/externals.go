// Package externals models the external software dependencies of the
// experiments — the second of the paper's three separated inputs to the
// validation system ("experiment specific software, any external software
// dependencies and finally the operating system").
//
// The catalogue reproduces the external software the paper names: "the
// ROOT versions used by the experiments: 5.26, 5.28, 5.30, 5.32, and
// 5.34", the upcoming ROOT 6 whose compatibility testing the paper lists
// among "the next challenges", plus the legacy CERNLIB stack and a toy
// Monte-Carlo generator library that HERA-era software universally
// depends on.
//
// What the validation framework observes about an external dependency:
//
//   - whether it can be installed on a given platform configuration
//     (e.g. ROOT 6 requires a C++11 compiler),
//   - which API surfaces it provides (experiment packages link against
//     named APIs; removing one — as ROOT 6 did with the ROOT 5 I/O
//     layer — breaks the packages using it), and
//   - its numeric behaviour revision (minor releases legitimately shift
//     numerically sensitive results, which validation must tolerate,
//     distinguish from bugs, and bookkeep).
package externals

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/platform"
)

// Name identifies an external software product, e.g. "ROOT".
type Name string

// Well-known products in the default catalogue.
const (
	ROOT    Name = "ROOT"
	CERNLIB Name = "CERNLIB"
	// MCGen is the toy Monte-Carlo generator library standing in for the
	// zoo of HERA-era generators (PYTHIA, HERWIG, DJANGOH, ...).
	MCGen Name = "MCGen"
)

// Release is one installable version of an external product.
type Release struct {
	Name    Name
	Version string
	// Released is when this version became available for integration
	// into the sp-system.
	Released time.Time
	// RequiredStandard is the minimum C++ standard the product needs
	// from the compiler ("" means any, "c++11" excludes pre-4.8 gcc in
	// the default platform catalogue).
	RequiredStandard string
	// NeedsFortran marks products containing FORTRAN components, which
	// inherit the platform's Fortran toolchain verdict.
	NeedsFortran bool
	// APIs is the set of API surfaces this release provides. Experiment
	// packages declare the APIs they use; a missing API is a build
	// failure.
	APIs []string
	// NumericRev is the numeric behaviour revision. Releases with
	// different revisions produce slightly different results in
	// numerically sensitive analysis code; validation must classify the
	// shift as a legitimate external change rather than an experiment
	// bug.
	NumericRev int
	// Deprecated marks releases no longer receiving fixes; images built
	// with them validate but are flagged in reports.
	Deprecated bool
}

// ID returns the canonical "Name-Version" identifier, e.g. "ROOT-5.34".
func (r *Release) ID() string { return fmt.Sprintf("%s-%s", r.Name, r.Version) }

// ProvidesAPI reports whether the release provides the named API surface.
func (r *Release) ProvidesAPI(api string) bool {
	for _, a := range r.APIs {
		if a == api {
			return true
		}
	}
	return false
}

// InstallableOn reports whether the release can be built and installed on
// the given configuration, consulting the platform registry for compiler
// capabilities. The error explains the incompatibility.
func (r *Release) InstallableOn(cfg platform.Config, reg *platform.Registry) error {
	comp, err := reg.Compiler(cfg.Compiler)
	if err != nil {
		return err
	}
	if r.RequiredStandard == "c++11" && comp.CxxStandard != "c++11" {
		return fmt.Errorf("externals: %s requires C++11, %s supports only %s",
			r.ID(), comp.ID, comp.CxxStandard)
	}
	if r.NeedsFortran && comp.Judge(platform.TraitFortran77) == platform.VerdictError {
		return fmt.Errorf("externals: %s needs a Fortran toolchain absent from %s", r.ID(), comp.ID)
	}
	return nil
}

// Catalogue is the registry of external software releases known to the
// sp-system.
type Catalogue struct {
	releases map[string]*Release // keyed by ID()
}

// NewCatalogue returns the external-software catalogue of the paper's
// campaign: ROOT 5.26–5.34 plus ROOT 6.02, CERNLIB 2006, and two MCGen
// generations.
func NewCatalogue() *Catalogue {
	c := &Catalogue{releases: make(map[string]*Release)}

	root5APIs := []string{"root/core", "root/hist", "root/tree", "root/io/v5", "root/math"}
	rootReleases := []struct {
		ver  string
		rel  time.Time
		nrev int
	}{
		{"5.26", time.Date(2009, 12, 14, 0, 0, 0, 0, time.UTC), 1},
		{"5.28", time.Date(2010, 12, 15, 0, 0, 0, 0, time.UTC), 1},
		{"5.30", time.Date(2011, 6, 28, 0, 0, 0, 0, time.UTC), 2},
		{"5.32", time.Date(2011, 12, 2, 0, 0, 0, 0, time.UTC), 2},
		{"5.34", time.Date(2012, 5, 30, 0, 0, 0, 0, time.UTC), 3},
	}
	for _, rr := range rootReleases {
		c.Add(&Release{
			Name: ROOT, Version: rr.ver, Released: rr.rel,
			APIs: root5APIs, NumericRev: rr.nrev,
		})
	}
	c.Add(&Release{
		Name: ROOT, Version: "6.02",
		Released:         time.Date(2014, 9, 29, 0, 0, 0, 0, time.UTC),
		RequiredStandard: "c++11",
		// ROOT 6 drops the v5 I/O layer (CINT-era streamers) and adds the
		// cling interpreter API.
		APIs:       []string{"root/core", "root/hist", "root/tree", "root/io/v6", "root/math", "root/cling"},
		NumericRev: 4,
	})

	c.Add(&Release{
		Name: CERNLIB, Version: "2006",
		Released:     time.Date(2006, 10, 1, 0, 0, 0, 0, time.UTC),
		NeedsFortran: true,
		APIs:         []string{"cernlib/hbook", "cernlib/paw", "cernlib/kernlib", "cernlib/geant3"},
		NumericRev:   1,
		Deprecated:   true,
	})

	c.Add(&Release{
		Name: MCGen, Version: "1.4",
		Released:     time.Date(2005, 3, 1, 0, 0, 0, 0, time.UTC),
		NeedsFortran: true,
		APIs:         []string{"mcgen/lepto", "mcgen/lund"},
		NumericRev:   1,
	})
	c.Add(&Release{
		Name: MCGen, Version: "2.1",
		Released:   time.Date(2011, 9, 1, 0, 0, 0, 0, time.UTC),
		APIs:       []string{"mcgen/lepto", "mcgen/lund", "mcgen/ascii"},
		NumericRev: 2,
	})
	return c
}

// Add registers a release. It panics on duplicates: the catalogue is
// configuration and a clash is a programming error.
func (c *Catalogue) Add(r *Release) {
	if _, dup := c.releases[r.ID()]; dup {
		panic(fmt.Sprintf("externals: duplicate release %s", r.ID()))
	}
	c.releases[r.ID()] = r
}

// Get returns the release with the given product name and version.
func (c *Catalogue) Get(name Name, version string) (*Release, error) {
	r, ok := c.releases[fmt.Sprintf("%s-%s", name, version)]
	if !ok {
		return nil, fmt.Errorf("externals: unknown release %s-%s", name, version)
	}
	return r, nil
}

// Versions returns all releases of the given product sorted by release
// date.
func (c *Catalogue) Versions(name Name) []*Release {
	var out []*Release
	for _, r := range c.releases {
		if r.Name == name {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Released.Before(out[j].Released) })
	return out
}

// Products returns the distinct product names in the catalogue, sorted.
func (c *Catalogue) Products() []Name {
	seen := make(map[Name]bool)
	for _, r := range c.releases {
		seen[r.Name] = true
	}
	out := make([]Name, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Latest returns the most recent release of the product available at the
// given instant, or an error if none has been released yet.
func (c *Catalogue) Latest(name Name, at time.Time) (*Release, error) {
	var best *Release
	for _, r := range c.releases {
		if r.Name != name || r.Released.After(at) {
			continue
		}
		if best == nil || r.Released.After(best.Released) {
			best = r
		}
	}
	if best == nil {
		return nil, fmt.Errorf("externals: no release of %s as of %v", name, at)
	}
	return best, nil
}
