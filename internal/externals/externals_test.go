package externals

import (
	"testing"
	"time"

	"repro/internal/platform"
)

func TestCatalogueHasPaperROOTVersions(t *testing.T) {
	c := NewCatalogue()
	// "the ROOT versions used by the experiments: 5.26, 5.28, 5.30, 5.32, and 5.34"
	for _, v := range []string{"5.26", "5.28", "5.30", "5.32", "5.34", "6.02"} {
		if _, err := c.Get(ROOT, v); err != nil {
			t.Errorf("ROOT %s missing: %v", v, err)
		}
	}
	if _, err := c.Get(ROOT, "4.00"); err == nil {
		t.Error("Get(ROOT 4.00) succeeded, want error")
	}
}

func TestVersionsSorted(t *testing.T) {
	c := NewCatalogue()
	vs := c.Versions(ROOT)
	if len(vs) != 6 {
		t.Fatalf("ROOT versions = %d, want 6", len(vs))
	}
	for i := 1; i < len(vs); i++ {
		if vs[i].Released.Before(vs[i-1].Released) {
			t.Fatalf("versions not sorted at %d", i)
		}
	}
	if vs[0].Version != "5.26" || vs[len(vs)-1].Version != "6.02" {
		t.Fatalf("order: first=%s last=%s", vs[0].Version, vs[len(vs)-1].Version)
	}
}

func TestProducts(t *testing.T) {
	got := NewCatalogue().Products()
	want := []Name{CERNLIB, MCGen, ROOT}
	if len(got) != len(want) {
		t.Fatalf("products = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("products = %v, want %v", got, want)
		}
	}
}

func TestLatest(t *testing.T) {
	c := NewCatalogue()
	r, err := c.Latest(ROOT, time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil || r.Version != "5.34" {
		t.Fatalf("Latest(ROOT, 2013) = %v, %v; want 5.34", r, err)
	}
	r, err = c.Latest(ROOT, time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil || r.Version != "6.02" {
		t.Fatalf("Latest(ROOT, 2015) = %v, %v; want 6.02", r, err)
	}
	if _, err := c.Latest(ROOT, time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)); err == nil {
		t.Fatal("Latest(ROOT, 2008) succeeded, want error")
	}
}

func TestROOT6RequiresCxx11(t *testing.T) {
	c := NewCatalogue()
	reg := platform.NewRegistry()
	root6, _ := c.Get(ROOT, "6.02")
	sl6gcc44 := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
	if err := root6.InstallableOn(sl6gcc44, reg); err == nil {
		t.Error("ROOT 6 should not install with gcc4.4")
	}
	sl6gcc48 := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.8"}
	if err := root6.InstallableOn(sl6gcc48, reg); err != nil {
		t.Errorf("ROOT 6 should install with gcc4.8: %v", err)
	}
}

func TestROOT5OnAllPaperConfigs(t *testing.T) {
	c := NewCatalogue()
	reg := platform.NewRegistry()
	root534, _ := c.Get(ROOT, "5.34")
	for _, cfg := range platform.PaperConfigs() {
		if err := root534.InstallableOn(cfg, reg); err != nil {
			t.Errorf("ROOT 5.34 on %v: %v", cfg, err)
		}
	}
}

func TestROOT6DropsV5IO(t *testing.T) {
	c := NewCatalogue()
	root534, _ := c.Get(ROOT, "5.34")
	root6, _ := c.Get(ROOT, "6.02")
	if !root534.ProvidesAPI("root/io/v5") {
		t.Error("ROOT 5.34 should provide root/io/v5")
	}
	if root6.ProvidesAPI("root/io/v5") {
		t.Error("ROOT 6 should not provide root/io/v5")
	}
	if !root6.ProvidesAPI("root/io/v6") {
		t.Error("ROOT 6 should provide root/io/v6")
	}
}

func TestSetRejectsDuplicateProduct(t *testing.T) {
	c := NewCatalogue()
	a, _ := c.Get(ROOT, "5.32")
	b, _ := c.Get(ROOT, "5.34")
	if _, err := NewSet(a, b); err == nil {
		t.Fatal("NewSet with two ROOT versions succeeded, want error")
	}
}

func TestSetLookupAndAPIs(t *testing.T) {
	c := NewCatalogue()
	root, _ := c.Get(ROOT, "5.34")
	cern, _ := c.Get(CERNLIB, "2006")
	s := MustSet(root, cern)

	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if r, ok := s.Get(ROOT); !ok || r.Version != "5.34" {
		t.Fatalf("Get(ROOT) = %v, %v", r, ok)
	}
	if _, ok := s.Get(MCGen); ok {
		t.Fatal("Get(MCGen) should be absent")
	}
	if _, ok := s.ProvidesAPI("cernlib/hbook"); !ok {
		t.Error("set should provide cernlib/hbook")
	}
	missing := s.MissingAPIs([]string{"root/hist", "mcgen/lepto", "root/io/v5", "mcgen/ascii"})
	if len(missing) != 2 || missing[0] != "mcgen/ascii" || missing[1] != "mcgen/lepto" {
		t.Fatalf("MissingAPIs = %v", missing)
	}
}

func TestSetWithReplaces(t *testing.T) {
	c := NewCatalogue()
	old, _ := c.Get(ROOT, "5.26")
	neu, _ := c.Get(ROOT, "5.34")
	s := MustSet(old)
	s2 := s.With(neu)
	if r, _ := s.Get(ROOT); r.Version != "5.26" {
		t.Fatal("With mutated the original set")
	}
	if r, _ := s2.Get(ROOT); r.Version != "5.34" {
		t.Fatal("With did not replace the release")
	}
}

func TestSetString(t *testing.T) {
	c := NewCatalogue()
	root, _ := c.Get(ROOT, "5.34")
	cern, _ := c.Get(CERNLIB, "2006")
	s := MustSet(root, cern)
	if got := s.String(); got != "CERNLIB-2006+ROOT-5.34" {
		t.Fatalf("String = %q", got)
	}
	empty := MustSet()
	if empty.String() != "(no externals)" {
		t.Fatalf("empty String = %q", empty.String())
	}
}

func TestSetInstallableOn(t *testing.T) {
	c := NewCatalogue()
	reg := platform.NewRegistry()
	root6, _ := c.Get(ROOT, "6.02")
	s := MustSet(root6)
	cfg := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
	if err := s.InstallableOn(cfg, reg); err == nil {
		t.Fatal("set with ROOT 6 should fail on gcc4.4")
	}
}

func TestNumericRevIncreasesAcrossROOT(t *testing.T) {
	c := NewCatalogue()
	vs := c.Versions(ROOT)
	for i := 1; i < len(vs); i++ {
		if vs[i].NumericRev < vs[i-1].NumericRev {
			t.Fatalf("numeric revision regressed between %s and %s", vs[i-1].Version, vs[i].Version)
		}
	}
}

func TestCatalogueDuplicatePanics(t *testing.T) {
	c := NewCatalogue()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	c.Add(&Release{Name: ROOT, Version: "5.34"})
}
