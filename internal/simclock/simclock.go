// Package simclock supplies simulated time to the sp-system.
//
// The paper's framework stamps every validation job with a Unix timestamp
// and schedules work with cron; for a deterministic, replayable
// reproduction no component may read the wall clock. A Clock starts at a
// fixed epoch and only moves when explicitly advanced, so an entire
// multi-year preservation campaign runs in microseconds and produces the
// same timestamps every time.
package simclock

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Clock is a simulated clock. The zero value is not usable; create one
// with New. Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// DefaultEpoch is the instant new clocks start at: the beginning of 2013,
// the year the paper's validation campaign ran.
var DefaultEpoch = time.Date(2013, time.January, 1, 0, 0, 0, 0, time.UTC)

// New returns a Clock set to DefaultEpoch.
func New() *Clock { return NewAt(DefaultEpoch) }

// NewAt returns a Clock set to the given instant.
func NewAt(t time.Time) *Clock { return &Clock{now: t.UTC()} }

// Now returns the current simulated instant.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Unix returns the current simulated Unix timestamp in seconds.
func (c *Clock) Unix() int64 { return c.Now().Unix() }

// Advance moves the clock forward by d. It panics if d is negative:
// simulated time, like real time, never runs backwards.
func (c *Clock) Advance(d time.Duration) time.Time {
	if d < 0 {
		panic(fmt.Sprintf("simclock: cannot advance by negative duration %v", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// AdvanceTo moves the clock forward to the instant t. It panics if t is
// before the current instant.
func (c *Clock) AdvanceTo(t time.Time) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t = t.UTC()
	if t.Before(c.now) {
		panic(fmt.Sprintf("simclock: cannot move backwards from %v to %v", c.now, t))
	}
	c.now = t
	return c.now
}

// Event is a timestamped occurrence on a Timeline.
type Event struct {
	At   time.Time
	Name string
	// Payload carries arbitrary event context, e.g. an OS release record.
	Payload any
}

// Timeline is an ordered sequence of future events, used to script
// multi-year scenarios (OS releases, EOL dates, expert availability
// windows). Events may be added in any order; they are replayed in
// chronological order. Timeline is safe for concurrent use.
type Timeline struct {
	mu     sync.Mutex
	events []Event
	sorted bool
}

// Add schedules an event. Events sharing an instant replay in insertion
// order.
func (tl *Timeline) Add(at time.Time, name string, payload any) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.events = append(tl.events, Event{At: at.UTC(), Name: name, Payload: payload})
	tl.sorted = false
}

// Len reports the number of events remaining on the timeline.
func (tl *Timeline) Len() int {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return len(tl.events)
}

// PopUntil removes and returns, in chronological order, every event with
// At <= t.
func (tl *Timeline) PopUntil(t time.Time) []Event {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.sortLocked()
	t = t.UTC()
	i := sort.Search(len(tl.events), func(i int) bool { return tl.events[i].At.After(t) })
	due := make([]Event, i)
	copy(due, tl.events[:i])
	tl.events = tl.events[i:]
	return due
}

// Peek returns the next event without removing it, and false if the
// timeline is empty.
func (tl *Timeline) Peek() (Event, bool) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.sortLocked()
	if len(tl.events) == 0 {
		return Event{}, false
	}
	return tl.events[0], true
}

func (tl *Timeline) sortLocked() {
	if tl.sorted {
		return
	}
	sort.SliceStable(tl.events, func(i, j int) bool { return tl.events[i].At.Before(tl.events[j].At) })
	tl.sorted = true
}
