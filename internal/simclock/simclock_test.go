package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestNewStartsAtEpoch(t *testing.T) {
	c := New()
	if !c.Now().Equal(DefaultEpoch) {
		t.Fatalf("Now() = %v, want %v", c.Now(), DefaultEpoch)
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	got := c.Advance(48 * time.Hour)
	want := DefaultEpoch.Add(48 * time.Hour)
	if !got.Equal(want) {
		t.Fatalf("Advance = %v, want %v", got, want)
	}
	if !c.Now().Equal(want) {
		t.Fatalf("Now after Advance = %v, want %v", c.Now(), want)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-time.Second)
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	target := DefaultEpoch.AddDate(1, 0, 0)
	c.AdvanceTo(target)
	if !c.Now().Equal(target) {
		t.Fatalf("Now = %v, want %v", c.Now(), target)
	}
}

func TestAdvanceToBackwardsPanics(t *testing.T) {
	c := New()
	c.Advance(time.Hour)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	c.AdvanceTo(DefaultEpoch)
}

func TestUnixTimestamp(t *testing.T) {
	c := NewAt(time.Unix(1382400000, 0)) // 2013-10-22, around the paper's submission
	if c.Unix() != 1382400000 {
		t.Fatalf("Unix = %d", c.Unix())
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Advance(time.Minute)
		}()
	}
	wg.Wait()
	want := DefaultEpoch.Add(50 * time.Minute)
	if !c.Now().Equal(want) {
		t.Fatalf("after 50 concurrent 1m advances Now = %v, want %v", c.Now(), want)
	}
}

func TestTimelineOrdering(t *testing.T) {
	var tl Timeline
	t2 := DefaultEpoch.Add(2 * time.Hour)
	t1 := DefaultEpoch.Add(1 * time.Hour)
	t3 := DefaultEpoch.Add(3 * time.Hour)
	tl.Add(t2, "b", nil)
	tl.Add(t1, "a", nil)
	tl.Add(t3, "c", nil)

	due := tl.PopUntil(DefaultEpoch.Add(2 * time.Hour))
	if len(due) != 2 || due[0].Name != "a" || due[1].Name != "b" {
		t.Fatalf("PopUntil = %+v, want [a b]", due)
	}
	if tl.Len() != 1 {
		t.Fatalf("remaining = %d, want 1", tl.Len())
	}
	rest := tl.PopUntil(t3)
	if len(rest) != 1 || rest[0].Name != "c" {
		t.Fatalf("second PopUntil = %+v", rest)
	}
}

func TestTimelineStableOrderAtSameInstant(t *testing.T) {
	var tl Timeline
	at := DefaultEpoch.Add(time.Hour)
	tl.Add(at, "first", nil)
	tl.Add(at, "second", nil)
	due := tl.PopUntil(at)
	if len(due) != 2 || due[0].Name != "first" || due[1].Name != "second" {
		t.Fatalf("same-instant events out of insertion order: %+v", due)
	}
}

func TestTimelinePeek(t *testing.T) {
	var tl Timeline
	if _, ok := tl.Peek(); ok {
		t.Fatal("Peek on empty timeline returned ok")
	}
	tl.Add(DefaultEpoch.Add(time.Hour), "x", 42)
	ev, ok := tl.Peek()
	if !ok || ev.Name != "x" || ev.Payload.(int) != 42 {
		t.Fatalf("Peek = %+v, %v", ev, ok)
	}
	if tl.Len() != 1 {
		t.Fatal("Peek must not remove the event")
	}
}

func TestTimelinePopUntilEmptyBeforeFirst(t *testing.T) {
	var tl Timeline
	tl.Add(DefaultEpoch.Add(time.Hour), "x", nil)
	if due := tl.PopUntil(DefaultEpoch); len(due) != 0 {
		t.Fatalf("PopUntil before first event returned %+v", due)
	}
}
